package profiler_test

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"xtenergy/internal/core"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/profiler"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/workloads"
)

var (
	modelOnce sync.Once
	model     *core.MacroModel
	modelErr  error
)

func sharedModel(t *testing.T) *core.MacroModel {
	t.Helper()
	modelOnce.Do(func() {
		cr, err := core.Characterize(context.Background(), procgen.Default(), rtlpower.FastTechnology(),
			workloads.CharacterizationSuite(), core.Options{})
		if err != nil {
			modelErr = err
			return
		}
		model = cr.Model
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return model
}

func profileWorkload(t *testing.T, name string) (*profiler.Report, core.Estimate) {
	t.Helper()
	m := sharedModel(t)
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("workload %s missing", name)
	}
	proc, prog, err := w.Build(procgen.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := iss.New(proc).Run(prog, iss.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := profiler.Profile(m, proc, prog, res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	est, err := m.EstimateWorkload(procgen.Default(), w)
	if err != nil {
		t.Fatal(err)
	}
	return rep, est
}

// The profiler's attribution must be exact: line energies sum to the
// macro-model's whole-program estimate, for base-only and
// custom-instruction workloads alike.
func TestAttributionSumsToEstimate(t *testing.T) {
	for _, name := range []string{"rs_base", "des", "accumulate", "rs_gffold"} {
		name := name
		t.Run(name, func(t *testing.T) {
			rep, est := profileWorkload(t, name)
			if math.Abs(rep.TotalPJ-est.EnergyPJ) > 1e-6*est.EnergyPJ {
				t.Fatalf("profile total %.3f pJ != estimate %.3f pJ", rep.TotalPJ, est.EnergyPJ)
			}
			if rep.Cycles != est.Cycles {
				t.Fatalf("profile cycles %d != estimate %d", rep.Cycles, est.Cycles)
			}
			var sum float64
			for _, ln := range rep.Lines {
				sum += ln.EnergyPJ
			}
			if math.Abs(sum-rep.TotalPJ) > 1e-9*rep.TotalPJ {
				t.Fatal("line energies do not sum to total")
			}
		})
	}
}

func TestRegionsCoverAndRank(t *testing.T) {
	rep, _ := profileWorkload(t, "gcd")
	if len(rep.Regions) < 3 {
		t.Fatalf("only %d regions", len(rep.Regions))
	}
	var pct, pj float64
	for i, r := range rep.Regions {
		pct += r.Percent
		pj += r.EnergyPJ
		if i > 0 && r.EnergyPJ > rep.Regions[i-1].EnergyPJ {
			t.Fatal("regions not sorted by energy")
		}
		if r.StartPC >= r.EndPC {
			t.Fatalf("malformed region %+v", r)
		}
	}
	if math.Abs(pct-100) > 0.01 {
		t.Fatalf("region shares sum to %.2f%%", pct)
	}
	if math.Abs(pj-rep.TotalPJ) > 1e-9*rep.TotalPJ {
		t.Fatal("region energies do not sum to total")
	}
	// The GCD inner loop must dominate.
	top := rep.Regions[0].Label
	if !strings.Contains(top, "g_") && !strings.Contains(top, "start") {
		t.Fatalf("unexpected hottest region %q", top)
	}
}

func TestHotLines(t *testing.T) {
	rep, _ := profileWorkload(t, "bubsort")
	text := rep.FormatHotLines(5)
	if !strings.Contains(text, "hottest 5 instructions") {
		t.Fatalf("hot lines malformed:\n%s", text)
	}
	// The inner-loop loads should be among the hottest.
	if !strings.Contains(text, "l32i") {
		t.Fatalf("expected inner-loop loads among hot lines:\n%s", text)
	}
	if !strings.Contains(rep.FormatRegions(), "energy by code region") {
		t.Fatal("region format malformed")
	}
}

func TestProfileErrors(t *testing.T) {
	m := sharedModel(t)
	proc, _ := procgen.Generate(procgen.Default(), nil)
	if _, err := profiler.Profile(nil, proc, &iss.Program{}, []iss.TraceEntry{{}}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := profiler.Profile(m, proc, &iss.Program{}, nil); err == nil {
		t.Fatal("empty trace accepted")
	}
}
