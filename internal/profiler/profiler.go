// Package profiler attributes a program's macro-model energy to
// individual instructions and labeled code regions — a software energy
// profiler in the tradition of the instruction-level power profilers the
// paper builds on, but driven by the characterized macro-model instead
// of measurements.
//
// Attribution is exact by construction: each retired instruction's
// contribution to the 21 macro-model variables is priced with the fitted
// coefficients, so the per-instruction energies sum to precisely the
// macro-model's whole-program estimate.
package profiler

import (
	"fmt"
	"sort"
	"strings"

	"xtenergy/internal/core"
	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/plan"
	"xtenergy/internal/procgen"
)

// Line is the profile of one static instruction.
type Line struct {
	// PC is the instruction's word index.
	PC int
	// Instr is the static instruction.
	Instr isa.Instr
	// Count is how many times it retired.
	Count uint64
	// Cycles is the total cycles charged to it (including stalls).
	Cycles uint64
	// EnergyPJ is the macro-model energy attributed to it.
	EnergyPJ float64
}

// Region aggregates the lines between two consecutive code labels.
type Region struct {
	// Label names the region (the label opening it; "(entry)" before the
	// first label).
	Label string
	// StartPC and EndPC bound the region: [StartPC, EndPC).
	StartPC, EndPC int
	Cycles         uint64
	EnergyPJ       float64
	// Percent is the region's share of total energy.
	Percent float64
}

// Report is a program's energy profile.
type Report struct {
	// Lines holds every executed static instruction, by PC.
	Lines []Line
	// Regions holds the label-level aggregation, sorted by energy
	// descending.
	Regions []Region
	// TotalPJ is the whole-program macro-model energy; it equals the sum
	// of the line energies exactly.
	TotalPJ float64
	// Cycles is the total cycle count.
	Cycles uint64
}

// Profile attributes the model's energy over the program's trace.
// The trace must have been collected on proc (Options.CollectTrace).
func Profile(model *core.MacroModel, proc *procgen.Processor, prog *iss.Program, trace []iss.TraceEntry) (*Report, error) {
	if model == nil {
		return nil, fmt.Errorf("profiler: nil model")
	}
	if len(trace) == 0 {
		return nil, fmt.Errorf("profiler: empty trace")
	}

	icPen := proc.Config.ICache.MissPenalty
	dcPen := proc.Config.DCache.MissPenalty
	pl := prog.Plan(proc.TIE)

	perPC := make(map[int]*Line)
	var totalPJ float64
	var totalCycles uint64

	var scratch plan.Rec
	for i := range trace {
		te := &trace[i]
		rec := pl.Rec(int(te.PC))
		if rec == nil || rec.Instr != te.Instr {
			// The entry no longer matches its plan record (e.g. a trace
			// altered by a fault-injection harness): the entry's own
			// instruction stays authoritative, priced via a standalone
			// record.
			scratch = plan.Describe(proc.TIE, te.Instr)
			rec = &scratch
		}
		pj, err := entryEnergy(model, proc, pl, rec, te, icPen, dcPen)
		if err != nil {
			return nil, err
		}
		ln := perPC[int(te.PC)]
		if ln == nil {
			ln = &Line{PC: int(te.PC), Instr: te.Instr}
			perPC[int(te.PC)] = ln
		}
		ln.Count++
		ln.Cycles += uint64(te.Cycles)
		ln.EnergyPJ += pj
		totalPJ += pj
		totalCycles += uint64(te.Cycles)
	}

	rep := &Report{TotalPJ: totalPJ, Cycles: totalCycles}
	for _, ln := range perPC {
		rep.Lines = append(rep.Lines, *ln)
	}
	sort.Slice(rep.Lines, func(a, b int) bool { return rep.Lines[a].PC < rep.Lines[b].PC })

	rep.Regions = buildRegions(prog, rep.Lines, totalPJ)
	return rep, nil
}

// entryEnergy prices one retired instruction: its contribution to each
// macro-model variable, dotted with the fitted coefficients. rec is the
// instruction's plan record (or a Describe fallback for entries that no
// longer match the program).
func entryEnergy(model *core.MacroModel, proc *procgen.Processor, pl *plan.Plan, rec *plan.Rec, te *iss.TraceEntry, icPen, dcPen int) (float64, error) {
	var v core.Vars
	in := te.Instr

	// Event variables.
	if te.ICMiss {
		v[core.VICacheMiss] = 1
	}
	if te.DCMiss {
		v[core.VDCacheMiss] = 1
	}
	if te.Uncached {
		v[core.VUncachedFetch] = 1
	}
	if te.Interlock {
		v[core.VInterlock] = 1
	}

	if in.IsCustom() {
		ci := rec.CI
		if ci == nil {
			// Cold path: re-query the extension so callers get the
			// original undefined-instruction error.
			_, err := proc.TIE.Instruction(in.CustomID)
			return 0, err
		}
		if rec.RegfileActive {
			v[core.VCustomSideEffect] = float64(ci.Latency)
		}
		for k := range rec.CustomWeights {
			v[core.VCustomBase+k] = rec.CustomWeights[k] * float64(ci.Latency)
		}
		return model.EstimatePJ(v), nil
	}

	// Base instruction: class cycles are the entry's cycles minus its
	// stalls (cache fill, uncached fetch, interlock).
	classCycles := int(te.Cycles)
	if te.ICMiss {
		classCycles -= icPen
	}
	if te.DCMiss {
		classCycles -= dcPen
	}
	if te.Uncached {
		classCycles -= iss.UncachedFetchPenalty
	}
	if te.Interlock {
		classCycles--
	}
	if classCycles < 0 {
		classCycles = 0
	}
	switch rec.Def.Class {
	case isa.ClassArith:
		v[core.VArith] = float64(classCycles)
		// Base-to-custom side effect: bus-tapped components (hoisted to
		// one plan-level precomputation instead of a per-entry query).
		for k := range pl.BusTap {
			v[core.VCustomBase+k] += pl.BusTap[k]
		}
	case isa.ClassLoad:
		v[core.VLoad] = float64(classCycles)
	case isa.ClassStore:
		v[core.VStore] = float64(classCycles)
	case isa.ClassJump:
		v[core.VJump] = float64(classCycles)
	case isa.ClassBranch:
		if te.Taken {
			v[core.VBranchTaken] = float64(classCycles)
		} else {
			v[core.VBranchUntaken] = float64(classCycles)
		}
	}
	return model.EstimatePJ(v), nil
}

// buildRegions aggregates lines into [label, next-label) regions.
func buildRegions(prog *iss.Program, lines []Line, totalPJ float64) []Region {
	type bound struct {
		pc    int
		label string
	}
	var bounds []bound
	for label, pc := range prog.Labels {
		bounds = append(bounds, bound{pc, label})
	}
	sort.Slice(bounds, func(a, b int) bool {
		if bounds[a].pc != bounds[b].pc {
			return bounds[a].pc < bounds[b].pc
		}
		return bounds[a].label < bounds[b].label
	})
	// Collapse labels at the same PC into one region name.
	var regions []Region
	if len(bounds) == 0 || bounds[0].pc > 0 {
		regions = append(regions, Region{Label: "(entry)", StartPC: 0})
	}
	for i := 0; i < len(bounds); i++ {
		if len(regions) > 0 && regions[len(regions)-1].StartPC == bounds[i].pc {
			regions[len(regions)-1].Label += "/" + bounds[i].label
			continue
		}
		regions = append(regions, Region{Label: bounds[i].label, StartPC: bounds[i].pc})
	}
	for i := range regions {
		if i+1 < len(regions) {
			regions[i].EndPC = regions[i+1].StartPC
		} else {
			regions[i].EndPC = len(prog.Code)
		}
	}

	for _, ln := range lines {
		for i := range regions {
			if ln.PC >= regions[i].StartPC && ln.PC < regions[i].EndPC {
				regions[i].Cycles += ln.Cycles
				regions[i].EnergyPJ += ln.EnergyPJ
				break
			}
		}
	}
	var out []Region
	for _, r := range regions {
		if r.Cycles == 0 {
			continue
		}
		if totalPJ > 0 {
			r.Percent = 100 * r.EnergyPJ / totalPJ
		}
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].EnergyPJ > out[b].EnergyPJ })
	return out
}

// FormatRegions renders the region-level profile.
func (r *Report) FormatRegions() string {
	var b strings.Builder
	b.WriteString("energy by code region (macro-model attribution)\n")
	fmt.Fprintf(&b, "%-28s %10s %12s %8s\n", "region", "cycles", "energy (nJ)", "share")
	for _, reg := range r.Regions {
		bar := strings.Repeat("#", int(reg.Percent/2+0.5))
		fmt.Fprintf(&b, "%-28s %10d %12.2f %7.1f%% %s\n",
			reg.Label, reg.Cycles, reg.EnergyPJ*1e-3, reg.Percent, bar)
	}
	fmt.Fprintf(&b, "total %.3f uJ over %d cycles\n", r.TotalPJ*1e-6, r.Cycles)
	return b.String()
}

// FormatHotLines renders the top-n instructions by energy.
func (r *Report) FormatHotLines(n int) string {
	lines := make([]Line, len(r.Lines))
	copy(lines, r.Lines)
	sort.Slice(lines, func(a, b int) bool { return lines[a].EnergyPJ > lines[b].EnergyPJ })
	if n > len(lines) {
		n = len(lines)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "hottest %d instructions\n", n)
	fmt.Fprintf(&b, "%6s  %-28s %10s %10s %12s\n", "pc", "instruction", "count", "cycles", "energy (nJ)")
	for _, ln := range lines[:n] {
		fmt.Fprintf(&b, "%6d  %-28s %10d %10d %12.2f\n",
			ln.PC, ln.Instr.String(), ln.Count, ln.Cycles, ln.EnergyPJ*1e-3)
	}
	return b.String()
}
