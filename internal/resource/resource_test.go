package resource_test

import (
	"testing"

	"xtenergy/internal/asm"
	"xtenergy/internal/hwlib"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/resource"
	"xtenergy/internal/tie"
	"xtenergy/internal/workloads"
)

func macExt() *tie.Extension {
	return &tie.Extension{
		Name:          "m",
		NumCustomRegs: 1,
		Instructions: []*tie.Instruction{
			{
				Name: "macc", Latency: 2, ReadsGeneral: true,
				Datapath: []tie.DatapathElem{
					{Component: hwlib.Component{Name: "mu", Cat: hwlib.TIEMac, Width: 16}, OnBus: true},
					{Component: hwlib.Component{Name: "ar", Cat: hwlib.CustomRegister, Width: 32}},
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					s.Regs[0] += op.RsVal * op.RtVal
					return 0
				},
			},
		},
	}
}

func run(t *testing.T, src string, ext *tie.Extension) (*tie.Compiled, *iss.Result) {
	t.Helper()
	proc, err := procgen.Generate(procgen.Default(), ext)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.New(proc.TIE).Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := iss.New(proc).Run(prog, iss.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	return proc.TIE, res
}

const macSrc = `
    movi a2, 20
    movi a3, 3
loop:
    macc a1, a2, a3
    add a3, a3, a2
    addi a2, a2, -1
    bnez a2, loop
    ret
`

func TestFromStatsCounts(t *testing.T) {
	comp, res := run(t, macSrc, macExt())
	vars, err := resource.FromStats(comp, &res.Stats)
	if err != nil {
		t.Fatal(err)
	}
	// 20 executions x latency 2 x weight (16/32)^2 for the TIE mac,
	// plus bus taps from base arith instructions.
	macWeight := hwlib.Component{Name: "x", Cat: hwlib.TIEMac, Width: 16}.Complexity()
	fromInstr := 20.0 * 2 * macWeight
	arithCount := 2.0 + 2*20 // movi x2 + (add+addi) x 20
	fromTaps := arithCount * macWeight
	want := fromInstr + fromTaps
	if vars[hwlib.TIEMac] != want {
		t.Fatalf("tie-mac var = %g, want %g", vars[hwlib.TIEMac], want)
	}
	// Custom register: instruction's 32-bit reg (1.0) + generated
	// regfile, both for 2 cycles x 20 execs; no bus taps.
	if vars[hwlib.CustomRegister] <= 40 {
		t.Fatalf("custom-reg var = %g, want > 40", vars[hwlib.CustomRegister])
	}
	// Control logic active on custom cycles.
	if vars[hwlib.LogicRedMux] <= 0 {
		t.Fatal("control logic variable missing")
	}
	// Unused categories stay zero.
	for _, cat := range []hwlib.Category{hwlib.Multiplier, hwlib.Shifter, hwlib.Table} {
		if vars[cat] != 0 {
			t.Fatalf("unused category %s = %g", cat, vars[cat])
		}
	}
}

func TestFromTraceMatchesFromStats(t *testing.T) {
	comp, res := run(t, macSrc, macExt())
	fromStats, err := resource.FromStats(comp, &res.Stats)
	if err != nil {
		t.Fatal(err)
	}
	fromTrace, err := resource.FromTrace(comp, res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if fromStats != fromTrace {
		t.Fatalf("stats path %v != trace path %v", fromStats, fromTrace)
	}
}

func TestFromStatsBaseOnly(t *testing.T) {
	comp, res := run(t, "movi a1, 5\n add a2, a1, a1\n ret\n", nil)
	vars, err := resource.FromStats(comp, &res.Stats)
	if err != nil {
		t.Fatal(err)
	}
	if vars.Total() != 0 {
		t.Fatalf("base-only program has structural activity: %v", vars)
	}
}

func TestNilCompiledRejected(t *testing.T) {
	var st iss.Stats
	if _, err := resource.FromStats(nil, &st); err == nil {
		t.Fatal("nil compiled accepted")
	}
	if _, err := resource.FromTrace(nil, nil); err == nil {
		t.Fatal("nil compiled accepted")
	}
}

func TestVarsHelpers(t *testing.T) {
	var v resource.Vars
	v[0] = 1
	v[3] = 2
	var w resource.Vars
	w[0] = 10
	v.Add(w)
	if v[0] != 11 || v.Total() != 13 {
		t.Fatalf("Add/Total wrong: %v", v)
	}
}

// The two analysis paths must agree on every workload in the repository
// (the compact-statistics path is the one used for estimation; the trace
// path is the paper's description).
func TestPathsAgreeOnAllWorkloads(t *testing.T) {
	all := workloads.CharacterizationSuite()
	all = append(all, workloads.Applications()...)
	all = append(all, workloads.ReedSolomonConfigurations()...)
	cfg := procgen.Default()
	for _, w := range all {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			proc, prog, err := w.Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := iss.New(proc).Run(prog, iss.Options{CollectTrace: true})
			if err != nil {
				t.Fatal(err)
			}
			a, err := resource.FromStats(proc.TIE, &res.Stats)
			if err != nil {
				t.Fatal(err)
			}
			b, err := resource.FromTrace(proc.TIE, res.Trace)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("paths disagree: %v vs %v", a, b)
			}
		})
	}
}
