// Package resource implements dynamic resource-usage analysis (step 10
// of the paper's flow): it maps a program's execution onto activation
// counts of the custom hardware, producing the ten structural
// macro-model variables.
//
// Each structural variable is Σ_j f(C_j)·ActiveCycles_j over the custom
// hardware components of one library category, where f(C) is the
// bit-width complexity from hwlib. Activations come from two sources:
// custom instructions activate their datapath (plus the generated TIE
// control logic) for their full latency, and base arithmetic
// instructions activate the bus-tapped custom components for one cycle
// (the base-to-custom side effect of the paper's Example 1).
package resource

import (
	"fmt"

	"xtenergy/internal/hwlib"
	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/tie"
)

// Vars is the vector of the ten structural macro-model variables, in
// hwlib category order.
type Vars [hwlib.NumCategories]float64

// Add accumulates o into v.
func (v *Vars) Add(o Vars) {
	for i := range v {
		v[i] += o[i]
	}
}

// Total returns the sum of all category variables.
func (v Vars) Total() float64 {
	var t float64
	for _, x := range v {
		t += x
	}
	return t
}

// FromStats computes the structural variables from compact execution
// statistics. This is the fast path used during application energy
// estimation: no trace is needed, only per-custom-instruction execution
// counts and per-opcode counts.
func FromStats(comp *tie.Compiled, st *iss.Stats) (Vars, error) {
	var out Vars
	if comp == nil {
		return out, fmt.Errorf("resource: nil compiled extension")
	}
	for id := 0; id < comp.NumInstructions(); id++ {
		cnt := st.CustomExecCount(id)
		if cnt == 0 {
			continue
		}
		ci, err := comp.Instruction(uint8(id))
		if err != nil {
			return out, err
		}
		w, err := comp.CategoryActiveWeights(uint8(id))
		if err != nil {
			return out, err
		}
		cycles := float64(cnt) * float64(ci.Latency)
		for k := range w {
			out[k] += w[k] * cycles
		}
	}
	if len(comp.BusTapped) > 0 {
		bw := comp.BusTapWeights()
		arith := arithInstrCount(st)
		for k := range bw {
			out[k] += bw[k] * float64(arith)
		}
	}
	return out, nil
}

// FromTrace computes the structural variables by walking the dynamic
// execution trace instruction by instruction. It must agree exactly with
// FromStats; it exists because the paper's flow describes resource
// analysis as a pass over the trace, and because it validates the
// compact path in tests.
func FromTrace(comp *tie.Compiled, trace []iss.TraceEntry) (Vars, error) {
	var out Vars
	if comp == nil {
		return out, fmt.Errorf("resource: nil compiled extension")
	}
	bw := comp.BusTapWeights()
	for i := range trace {
		in := trace[i].Instr
		if in.IsCustom() {
			ci, err := comp.Instruction(in.CustomID)
			if err != nil {
				return out, err
			}
			w, err := comp.CategoryActiveWeights(in.CustomID)
			if err != nil {
				return out, err
			}
			for k := range w {
				out[k] += w[k] * float64(ci.Latency)
			}
			continue
		}
		if isa.ClassOf(in.Op) == isa.ClassArith && len(comp.BusTapped) > 0 {
			for k := range bw {
				out[k] += bw[k]
			}
		}
	}
	return out, nil
}

// arithInstrCount counts retired arithmetic-class instructions.
func arithInstrCount(st *iss.Stats) uint64 {
	var n uint64
	for _, op := range isa.BaseOpcodes() {
		if isa.ClassOf(op) == isa.ClassArith {
			n += st.OpcodeExec[op]
		}
	}
	return n
}
