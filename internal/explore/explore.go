// Package explore implements design-space exploration on top of the
// energy macro-model — the use case the paper builds toward: "our
// methodology is easily usable for evaluating energy-performance
// trade-offs among different candidate custom instructions."
//
// A Candidate pairs a processor configuration with a workload (the same
// kernel implemented against some custom-instruction choice). Evaluate
// prices every candidate with the fast macro-model path in parallel, and
// ParetoFrontier marks the candidates that are not dominated in the
// (cycles, energy) plane.
package explore

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"xtenergy/internal/core"
	"xtenergy/internal/procgen"
)

// Candidate is one point of the design space.
type Candidate struct {
	// Name labels the candidate (defaults to the workload name).
	Name string
	// Config is the base-core configuration the candidate runs on.
	Config procgen.Config
	// Workload is the kernel with its custom-instruction choice.
	Workload core.Workload
}

// Point is an evaluated candidate.
type Point struct {
	Candidate
	// Cycles and EnergyPJ are the macro-model results.
	Cycles   uint64
	EnergyPJ float64
	// EDP is the energy-delay product in pJ·cycles.
	EDP float64
	// Pareto marks points on the (cycles, energy) Pareto frontier.
	Pareto bool
}

// EnergyUJ returns the point's energy in microjoules.
func (p Point) EnergyUJ() float64 { return p.EnergyPJ * 1e-6 }

// Evaluate prices every candidate with the macro-model (no synthesis,
// no reference simulation) and marks the Pareto frontier. Candidates
// are evaluated concurrently; the result preserves input order.
func Evaluate(model *core.MacroModel, candidates []Candidate) ([]Point, error) {
	if model == nil {
		return nil, fmt.Errorf("explore: nil macro-model")
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("explore: no candidates")
	}
	points := make([]Point, len(candidates))
	errs := make([]error, len(candidates))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range candidates {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := candidates[i]
			if c.Name == "" {
				c.Name = c.Workload.Name
			}
			est, err := model.EstimateWorkload(c.Config, c.Workload)
			if err != nil {
				errs[i] = fmt.Errorf("explore: candidate %s: %w", c.Name, err)
				return
			}
			points[i] = Point{
				Candidate: c,
				Cycles:    est.Cycles,
				EnergyPJ:  est.EnergyPJ,
				EDP:       est.EnergyPJ * float64(est.Cycles),
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	markPareto(points)
	return points, nil
}

// markPareto sets Pareto on every non-dominated point: a point is
// dominated if another point has <= cycles and <= energy with at least
// one strict inequality.
func markPareto(points []Point) {
	for i := range points {
		dominated := false
		for j := range points {
			if i == j {
				continue
			}
			a, b := &points[j], &points[i]
			if a.Cycles <= b.Cycles && a.EnergyPJ <= b.EnergyPJ &&
				(a.Cycles < b.Cycles || a.EnergyPJ < b.EnergyPJ) {
				dominated = true
				break
			}
		}
		points[i].Pareto = !dominated
	}
}

// Remark recomputes the Pareto flags over an arbitrary set of points
// (e.g. the union of several Evaluate calls) and returns the same slice.
func Remark(points []Point) []Point {
	markPareto(points)
	return points
}

// ParetoFrontier returns only the Pareto-optimal points, sorted by
// ascending cycle count.
func ParetoFrontier(points []Point) []Point {
	var out []Point
	for _, p := range points {
		if p.Pareto {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Cycles != out[b].Cycles {
			return out[a].Cycles < out[b].Cycles
		}
		return out[a].EnergyPJ < out[b].EnergyPJ
	})
	return out
}

// MinEnergy returns the lowest-energy point.
func MinEnergy(points []Point) (Point, error) {
	if len(points) == 0 {
		return Point{}, fmt.Errorf("explore: no points")
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.EnergyPJ < best.EnergyPJ {
			best = p
		}
	}
	return best, nil
}

// MinEDP returns the lowest energy-delay-product point.
func MinEDP(points []Point) (Point, error) {
	if len(points) == 0 {
		return Point{}, fmt.Errorf("explore: no points")
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.EDP < best.EDP {
			best = p
		}
	}
	return best, nil
}

// Format renders the evaluated design space as a table, Pareto points
// starred.
func Format(points []Point) string {
	var b strings.Builder
	b.WriteString("DESIGN SPACE (macro-model; * = Pareto-optimal in cycles x energy)\n")
	fmt.Fprintf(&b, "  %-24s %-20s %10s %12s %16s\n", "candidate", "config", "cycles", "energy (uJ)", "EDP (uJ*kcyc)")
	for _, p := range points {
		star := " "
		if p.Pareto {
			star = "*"
		}
		fmt.Fprintf(&b, "%s %-24s %-20s %10d %12.3f %16.3f\n",
			star, p.Name, p.Config.Name, p.Cycles, p.EnergyUJ(), p.EDP*1e-6/1000)
	}
	return b.String()
}
