package explore_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"xtenergy/internal/core"
	"xtenergy/internal/explore"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/workloads"
)

var (
	modelOnce sync.Once
	model     *core.MacroModel
	modelErr  error
)

func sharedModel(t *testing.T) *core.MacroModel {
	t.Helper()
	modelOnce.Do(func() {
		cr, err := core.Characterize(context.Background(), procgen.Default(), rtlpower.FastTechnology(),
			workloads.CharacterizationSuite(), core.Options{})
		if err != nil {
			modelErr = err
			return
		}
		model = cr.Model
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return model
}

func TestEvaluateReedSolomonSpace(t *testing.T) {
	m := sharedModel(t)
	var cands []explore.Candidate
	for _, w := range workloads.ReedSolomonConfigurations() {
		cands = append(cands, explore.Candidate{Config: procgen.Default(), Workload: w})
	}
	points, err := explore.Evaluate(m, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	// Order preserved; names defaulted from workloads.
	if points[0].Name != "rs_base" || points[3].Name != "rs_gffold" {
		t.Fatalf("order/names wrong: %v, %v", points[0].Name, points[3].Name)
	}
	// The RS space is monotone: every added custom instruction reduces
	// both cycles and energy, so every point is Pareto-optimal... except
	// those dominated. rs_gffold dominates in both axes -> it is Pareto.
	best, err := explore.MinEnergy(points)
	if err != nil {
		t.Fatal(err)
	}
	if best.Name != "rs_gffold" {
		t.Fatalf("min energy = %s", best.Name)
	}
	if !best.Pareto {
		t.Fatal("min-energy point not marked Pareto")
	}
	edp, err := explore.MinEDP(points)
	if err != nil {
		t.Fatal(err)
	}
	if edp.Name != "rs_gffold" {
		t.Fatalf("min EDP = %s", edp.Name)
	}
	text := explore.Format(points)
	if !strings.Contains(text, "rs_gfmac") || !strings.Contains(text, "DESIGN SPACE") {
		t.Fatalf("format malformed:\n%s", text)
	}
}

func TestParetoLogic(t *testing.T) {
	mk := func(name string, cycles uint64, pj float64) explore.Point {
		return explore.Point{
			Candidate: explore.Candidate{Name: name},
			Cycles:    cycles, EnergyPJ: pj, EDP: pj * float64(cycles),
		}
	}
	points := []explore.Point{
		mk("a", 100, 50), // Pareto (fewest cycles)
		mk("b", 200, 40), // Pareto (less energy than a)
		mk("c", 300, 45), // dominated by b
		mk("d", 400, 30), // Pareto (least energy)
		mk("e", 100, 50), // tie with a: neither dominates
	}
	// Re-run the marking through Evaluate's helper via ParetoFrontier on
	// manually marked points: mark by constructing through the exported
	// path instead.
	marked := markViaFrontier(points)
	want := map[string]bool{"a": true, "b": true, "c": false, "d": true, "e": true}
	for _, p := range marked {
		if p.Pareto != want[p.Name] {
			t.Errorf("%s pareto = %v, want %v", p.Name, p.Pareto, want[p.Name])
		}
	}
	front := explore.ParetoFrontier(marked)
	if len(front) != 4 {
		t.Fatalf("frontier has %d points, want 4", len(front))
	}
	for i := 1; i < len(front); i++ {
		if front[i-1].Cycles > front[i].Cycles {
			t.Fatal("frontier not sorted by cycles")
		}
	}
}

// markViaFrontier replicates Evaluate's marking on prebuilt points by
// exercising the exported surface (ParetoFrontier relies on the Pareto
// flags, so we recompute them with the same dominance rule).
func markViaFrontier(points []explore.Point) []explore.Point {
	out := make([]explore.Point, len(points))
	copy(out, points)
	for i := range out {
		dominated := false
		for j := range out {
			if i == j {
				continue
			}
			a, b := &out[j], &out[i]
			if a.Cycles <= b.Cycles && a.EnergyPJ <= b.EnergyPJ &&
				(a.Cycles < b.Cycles || a.EnergyPJ < b.EnergyPJ) {
				dominated = true
				break
			}
		}
		out[i].Pareto = !dominated
	}
	return out
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := explore.Evaluate(nil, []explore.Candidate{{}}); err == nil {
		t.Fatal("nil model accepted")
	}
	m := sharedModel(t)
	if _, err := explore.Evaluate(m, nil); err == nil {
		t.Fatal("empty candidates accepted")
	}
	bad := []explore.Candidate{{
		Config:   procgen.Default(),
		Workload: core.Workload{Name: "x", Source: "bogus\n"},
	}}
	if _, err := explore.Evaluate(m, bad); err == nil {
		t.Fatal("broken candidate accepted")
	}
	if _, err := explore.MinEnergy(nil); err == nil {
		t.Fatal("MinEnergy on empty accepted")
	}
	if _, err := explore.MinEDP(nil); err == nil {
		t.Fatal("MinEDP on empty accepted")
	}
}

func TestMixedConfigSpace(t *testing.T) {
	m := sharedModel(t)
	loops := procgen.Default()
	loops.Name = "with-loops"
	loops.HasLoops = true
	w, _ := workloads.ApplicationByName("accumulate")
	cands := []explore.Candidate{
		{Name: "acc/default", Config: procgen.Default(), Workload: w},
		{Name: "acc/loops", Config: loops, Workload: w},
	}
	points, err := explore.Evaluate(m, cands)
	if err != nil {
		t.Fatal(err)
	}
	// The workload does not use LOOP instructions, so both configurations
	// behave identically; neither strictly dominates, so both are Pareto.
	if points[0].Cycles != points[1].Cycles {
		t.Fatalf("cycles differ without loop usage: %d vs %d", points[0].Cycles, points[1].Cycles)
	}
	if !points[0].Pareto || !points[1].Pareto {
		t.Fatal("tied points must both be Pareto")
	}
}
