package isa

import "testing"

// FuzzDecode checks that any 32-bit word either fails to decode or
// decodes to an instruction that re-encodes to an equivalent word
// (decode-encode-decode is a fixed point).
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xFFFFFFFF))
	for _, op := range BaseOpcodes() {
		f.Add(uint32(op) << 24)
	}
	f.Fuzz(func(t *testing.T, w uint32) {
		in, err := Decode(w)
		if err != nil {
			return
		}
		// The encoding may not round-trip bit-for-bit (unused fields are
		// not preserved), but the decoded instruction itself must.
		w2, err := in.Encode()
		if err != nil {
			t.Fatalf("decoded instruction %v does not re-encode: %v", in, err)
		}
		in2, err := Decode(w2)
		if err != nil {
			t.Fatalf("re-encoded word %#x does not decode: %v", w2, err)
		}
		if in2 != in {
			t.Fatalf("decode not idempotent: %v vs %v", in, in2)
		}
		_ = in.String() // must not panic
	})
}
