package isa

import (
	"testing"
	"testing/quick"
)

func TestBaseOpcodeCount(t *testing.T) {
	// "The base ISA defines approximately 80 instructions."
	n := NumBaseOpcodes()
	if n < 70 || n > 90 {
		t.Fatalf("base ISA has %d instructions, want ~80", n)
	}
}

func TestEveryBaseOpcodeHasDef(t *testing.T) {
	for _, op := range BaseOpcodes() {
		d, ok := Lookup(op)
		if !ok {
			t.Fatalf("opcode %d has no definition", op)
		}
		if d.Name == "" {
			t.Fatalf("opcode %d has empty mnemonic", op)
		}
		if d.Cycles < 1 {
			t.Fatalf("%s has %d cycles", d.Name, d.Cycles)
		}
		if d.Op != op {
			t.Fatalf("%s definition self-reference mismatch", d.Name)
		}
	}
}

func TestByNameRoundTrip(t *testing.T) {
	for _, op := range BaseOpcodes() {
		d, _ := Lookup(op)
		got, ok := ByName(d.Name)
		if !ok || got != op {
			t.Fatalf("ByName(%q) = %v, %v; want %v", d.Name, got, ok, op)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Fatal("ByName accepted a bogus mnemonic")
	}
}

func TestMnemonicsUnique(t *testing.T) {
	seen := map[string]Opcode{}
	for _, op := range BaseOpcodes() {
		d, _ := Lookup(op)
		if prev, dup := seen[d.Name]; dup {
			t.Fatalf("mnemonic %q used by %v and %v", d.Name, prev, op)
		}
		seen[d.Name] = op
	}
}

func TestLookupInvalid(t *testing.T) {
	if _, ok := Lookup(OpInvalid); ok {
		t.Fatal("OpInvalid looked up")
	}
	if _, ok := Lookup(Opcode(255)); ok {
		t.Fatal("out-of-range opcode looked up")
	}
	if OpInvalid.Name() != "invalid" {
		t.Fatalf("OpInvalid name = %q", OpInvalid.Name())
	}
}

func TestClassCoverage(t *testing.T) {
	counts := map[Class]int{}
	for _, op := range BaseOpcodes() {
		counts[ClassOf(op)]++
	}
	for _, c := range []Class{ClassArith, ClassLoad, ClassStore, ClassJump, ClassBranch} {
		if counts[c] == 0 {
			t.Fatalf("no instructions in class %s", c)
		}
	}
	if counts[ClassArith] < 30 {
		t.Fatalf("arith class suspiciously small: %d", counts[ClassArith])
	}
	if counts[ClassBranch] < 15 {
		t.Fatalf("branch class suspiciously small: %d", counts[ClassBranch])
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		ClassArith:         "arith",
		ClassLoad:          "load",
		ClassStore:         "store",
		ClassJump:          "jump",
		ClassBranch:        "branch",
		ClassBranchTaken:   "branch-taken",
		ClassBranchUntaken: "branch-untaken",
		ClassCustom:        "custom",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if Class(200).String() != "invalid" {
		t.Fatal("out-of-range class string")
	}
}

func TestRegisterUsageConsistency(t *testing.T) {
	for _, op := range BaseOpcodes() {
		d, _ := Lookup(op)
		switch d.Format {
		case FormatRRR:
			if !d.ReadsRs || !d.ReadsRt || !d.WritesRd {
				t.Errorf("%s: RRR format must read rs,rt and write rd", d.Name)
			}
		case FormatBranchRR:
			if !d.ReadsRs || !d.ReadsRt || d.WritesRd {
				t.Errorf("%s: branch must read rs,rt and not write rd", d.Name)
			}
		case FormatMem:
			if ClassOf(op) == ClassLoad && !d.WritesRd {
				t.Errorf("%s: load must write rd", d.Name)
			}
			if ClassOf(op) == ClassStore && d.WritesRd {
				t.Errorf("%s: store must not write rd", d.Name)
			}
		}
	}
}

func TestParseReg(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want uint8
		ok   bool
	}{
		{"a0", 0, true}, {"a63", 63, true}, {"A5", 5, true},
		{"a64", 0, false}, {"a-1", 0, false}, {"b0", 0, false}, {"a", 0, false}, {"", 0, false},
	} {
		got, err := ParseReg(tc.in)
		if (err == nil) != tc.ok {
			t.Fatalf("ParseReg(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && got != tc.want {
			t.Fatalf("ParseReg(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRegNameRoundTripProperty(t *testing.T) {
	f := func(r uint8) bool {
		r %= NumRegs
		got, err := ParseReg(RegName(r))
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
