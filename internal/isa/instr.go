package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Instr is one decoded XT32 instruction. Programs are represented as
// slices of Instr; a packed 32-bit machine encoding is available through
// Encode/Decode for binary round-tripping.
type Instr struct {
	Op Opcode
	// Rd, Rs, Rt are register numbers (0..NumRegs-1). Which of them are
	// meaningful depends on the instruction format.
	Rd, Rs, Rt uint8
	// Imm is the immediate operand: an arithmetic constant, a load/store
	// byte offset, a branch offset in instruction words, or a jump target
	// in instruction words, per the format.
	Imm int32
	// CustomID selects the TIE extension when Op == OpCUSTOM.
	CustomID uint8
}

// Def returns the static definition of the instruction's opcode.
func (in Instr) Def() Def {
	d, _ := Lookup(in.Op)
	return d
}

// Class returns the static energy class of the instruction.
func (in Instr) Class() Class { return ClassOf(in.Op) }

// IsBranch reports whether the instruction is a conditional branch.
func (in Instr) IsBranch() bool { return ClassOf(in.Op) == ClassBranch }

// IsCustom reports whether the instruction is a TIE custom instruction.
func (in Instr) IsCustom() bool { return in.Op == OpCUSTOM }

// RegName returns the assembler name of register r ("a0".."a63").
func RegName(r uint8) string { return "a" + strconv.Itoa(int(r)) }

// ParseReg parses an "aN" register name.
func ParseReg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'a' && s[0] != 'A') {
		return 0, fmt.Errorf("isa: invalid register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("isa: invalid register %q", s)
	}
	return uint8(n), nil
}

// String disassembles the instruction.
func (in Instr) String() string {
	d, ok := Lookup(in.Op)
	if !ok {
		return fmt.Sprintf("invalid(%d)", in.Op)
	}
	switch d.Format {
	case FormatRRR:
		return fmt.Sprintf("%s %s, %s, %s", d.Name, RegName(in.Rd), RegName(in.Rs), RegName(in.Rt))
	case FormatRRI:
		return fmt.Sprintf("%s %s, %s, %d", d.Name, RegName(in.Rd), RegName(in.Rs), in.Imm)
	case FormatRR:
		return fmt.Sprintf("%s %s, %s", d.Name, RegName(in.Rd), RegName(in.Rs))
	case FormatRI:
		return fmt.Sprintf("%s %s, %d", d.Name, RegName(in.Rd), in.Imm)
	case FormatMem:
		return fmt.Sprintf("%s %s, %s, %d", d.Name, RegName(in.Rd), RegName(in.Rs), in.Imm)
	case FormatBranchRR:
		return fmt.Sprintf("%s %s, %s, %d", d.Name, RegName(in.Rs), RegName(in.Rt), in.Imm)
	case FormatBranchRI:
		return fmt.Sprintf("%s %s, %d, %d", d.Name, RegName(in.Rs), in.Rt, in.Imm)
	case FormatBranchR:
		return fmt.Sprintf("%s %s, %d", d.Name, RegName(in.Rs), in.Imm)
	case FormatJump:
		return fmt.Sprintf("%s %d", d.Name, in.Imm)
	case FormatJumpR:
		return fmt.Sprintf("%s %s", d.Name, RegName(in.Rs))
	case FormatNone:
		return d.Name
	case FormatCustom:
		return fmt.Sprintf("custom.%d %s, %s, %s", in.CustomID, RegName(in.Rd), RegName(in.Rs), RegName(in.Rt))
	}
	return d.Name
}

// Machine encoding layout (32 bits):
//
//	[31:24] opcode
//	[23:18] field A (rd, or rs for branches)
//	[17:12] field B (rs, or rt / small constant for branches)
//	[11:0]  imm12 (signed), or rt in [5:0] for RRR,
//	        or CustomID in [11:6] plus rt in [5:0] for OpCUSTOM.
//
// FormatRI uses fields B+imm12 as a signed 18-bit immediate and FormatJump
// uses A+B+imm12 as a 24-bit word target.
const (
	immBits12 = 12
	immBits18 = 18
	immBits24 = 24
)

func signExtend(v uint32, bits int) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

func fits(v int32, bits int) bool {
	min := int32(-1) << (bits - 1)
	max := -min - 1
	return v >= min && v <= max
}

// Encode packs the instruction into its 32-bit machine form.
func (in Instr) Encode() (uint32, error) {
	d, ok := Lookup(in.Op)
	if !ok {
		return 0, fmt.Errorf("isa: cannot encode invalid opcode %d", in.Op)
	}
	if int(in.Rd) >= NumRegs || int(in.Rs) >= NumRegs || int(in.Rt) >= NumRegs {
		return 0, fmt.Errorf("isa: register out of range in %v", in)
	}
	w := uint32(in.Op) << 24
	a := func(r uint8) uint32 { return uint32(r) << 18 }
	b := func(r uint8) uint32 { return uint32(r) << 12 }
	imm12 := func(v int32) (uint32, error) {
		if !fits(v, immBits12) {
			return 0, fmt.Errorf("isa: immediate %d does not fit in 12 bits for %s", v, d.Name)
		}
		return uint32(v) & 0xFFF, nil
	}
	switch d.Format {
	case FormatRRR:
		w |= a(in.Rd) | b(in.Rs) | uint32(in.Rt)
	case FormatRRI, FormatMem:
		iv, err := imm12(in.Imm)
		if err != nil {
			return 0, err
		}
		w |= a(in.Rd) | b(in.Rs) | iv
	case FormatRR:
		w |= a(in.Rd) | b(in.Rs)
	case FormatRI:
		if !fits(in.Imm, immBits18) {
			return 0, fmt.Errorf("isa: immediate %d does not fit in 18 bits for %s", in.Imm, d.Name)
		}
		w |= a(in.Rd) | (uint32(in.Imm) & 0x3FFFF)
	case FormatBranchRR:
		iv, err := imm12(in.Imm)
		if err != nil {
			return 0, err
		}
		w |= a(in.Rs) | b(in.Rt) | iv
	case FormatBranchRI:
		if in.Rt >= 64 {
			return 0, fmt.Errorf("isa: branch constant %d out of range for %s", in.Rt, d.Name)
		}
		iv, err := imm12(in.Imm)
		if err != nil {
			return 0, err
		}
		w |= a(in.Rs) | b(in.Rt) | iv
	case FormatBranchR:
		iv, err := imm12(in.Imm)
		if err != nil {
			return 0, err
		}
		w |= a(in.Rs) | iv
	case FormatJump:
		if in.Imm < 0 || !fits(in.Imm, immBits24+1) {
			return 0, fmt.Errorf("isa: jump target %d out of range for %s", in.Imm, d.Name)
		}
		w |= uint32(in.Imm) & 0xFFFFFF
	case FormatJumpR:
		w |= a(in.Rs)
	case FormatNone:
		// opcode only
	case FormatCustom:
		w |= a(in.Rd) | b(in.Rs) | uint32(in.CustomID)<<6 | uint32(in.Rt)&0x3F
	}
	return w, nil
}

// Decode unpacks a 32-bit machine word into an Instr.
func Decode(w uint32) (Instr, error) {
	op := Opcode(w >> 24)
	d, ok := Lookup(op)
	if !ok {
		return Instr{}, fmt.Errorf("isa: invalid opcode byte %#x", w>>24)
	}
	fa := uint8((w >> 18) & 0x3F)
	fb := uint8((w >> 12) & 0x3F)
	i12 := signExtend(w&0xFFF, immBits12)
	in := Instr{Op: op}
	switch d.Format {
	case FormatRRR:
		in.Rd, in.Rs, in.Rt = fa, fb, uint8(w&0x3F)
	case FormatRRI, FormatMem:
		in.Rd, in.Rs, in.Imm = fa, fb, i12
	case FormatRR:
		in.Rd, in.Rs = fa, fb
	case FormatRI:
		in.Rd, in.Imm = fa, signExtend(w&0x3FFFF, immBits18)
	case FormatBranchRR:
		in.Rs, in.Rt, in.Imm = fa, fb, i12
	case FormatBranchRI:
		in.Rs, in.Rt, in.Imm = fa, fb, i12
	case FormatBranchR:
		in.Rs, in.Imm = fa, i12
	case FormatJump:
		in.Imm = int32(w & 0xFFFFFF)
	case FormatJumpR:
		in.Rs = fa
	case FormatNone:
		// nothing
	case FormatCustom:
		in.Rd, in.Rs = fa, fb
		in.CustomID = uint8((w >> 6) & 0x3F)
		in.Rt = uint8(w & 0x3F)
	}
	return in, nil
}

// Disassemble renders a program listing with word indices.
func Disassemble(prog []Instr) string {
	var sb strings.Builder
	for i, in := range prog {
		fmt.Fprintf(&sb, "%6d: %s\n", i, in.String())
	}
	return sb.String()
}
