// Package isa defines XT32, the base instruction set architecture of the
// extensible processor modeled in this repository.
//
// XT32 is a 32-bit RISC ISA in the mold of Tensilica's Xtensa base ISA
// (DATE 2003 paper, Section II): roughly 80 instructions built around a
// traditional five-stage pipeline, a 32-bit address space, and a general
// register file of 64 32-bit registers. Instructions fall into the six
// energy classes the paper's macro-model clusters them into: arithmetic,
// load, store, jump, branch taken, and branch untaken (branch class is
// resolved dynamically per execution).
//
// The ISA is extensible: custom (TIE-like) instructions occupy a reserved
// opcode and are identified by an extension index; their definitions live
// in the tie package.
package isa

// Architectural constants of the XT32 base core.
const (
	// NumRegs is the size of the general register file (the paper's
	// configuration: "a generic register file with 64 32-bit registers").
	NumRegs = 64
	// WordBytes is the architectural word size in bytes.
	WordBytes = 4
	// AddrBits is the width of the address space.
	AddrBits = 32
)

// Class is the energy class of an instruction: the macro-model clusters
// the base ISA into six classes (paper Eq. 3), with custom instructions
// handled separately.
type Class uint8

// Instruction energy classes.
const (
	// ClassArith covers ALU, shift, move and multiply instructions.
	ClassArith Class = iota
	// ClassLoad covers all memory loads.
	ClassLoad
	// ClassStore covers all memory stores.
	ClassStore
	// ClassJump covers unconditional jumps, calls and returns.
	ClassJump
	// ClassBranch covers conditional branches; the dynamic class is
	// ClassBranchTaken or ClassBranchUntaken depending on the outcome.
	ClassBranch
	// ClassBranchTaken is the dynamic class of a taken branch.
	ClassBranchTaken
	// ClassBranchUntaken is the dynamic class of an untaken branch.
	ClassBranchUntaken
	// ClassCustom marks a custom (TIE) instruction; its energy is modeled
	// through the structural macro-model variables, plus the side-effect
	// variable when it reads or writes the general register file.
	ClassCustom

	numClasses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassArith:
		return "arith"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassJump:
		return "jump"
	case ClassBranch:
		return "branch"
	case ClassBranchTaken:
		return "branch-taken"
	case ClassBranchUntaken:
		return "branch-untaken"
	case ClassCustom:
		return "custom"
	}
	return "invalid"
}

// Format describes how an instruction's operand fields are interpreted.
type Format uint8

// Operand formats.
const (
	// FormatRRR: rd <- op(rs, rt).
	FormatRRR Format = iota
	// FormatRRI: rd <- op(rs, imm).
	FormatRRI
	// FormatRR: rd <- op(rs).
	FormatRR
	// FormatRI: rd <- imm.
	FormatRI
	// FormatMem: load rd <- mem[rs+imm] or store mem[rs+imm] <- rd.
	FormatMem
	// FormatBranchRR: compare rs with rt, branch by imm offset (words).
	FormatBranchRR
	// FormatBranchRI: compare rs with imm-coded constant, branch by offset
	// held in Rt-extended encoding; assembled as "op rs, imm, label".
	FormatBranchRI
	// FormatBranchR: compare rs with zero (or test bits), branch by imm.
	FormatBranchR
	// FormatJump: unconditional jump to absolute word target imm.
	FormatJump
	// FormatJumpR: indirect jump/call through rs.
	FormatJumpR
	// FormatNone: no operands (NOP, RET).
	FormatNone
	// FormatCustom: operand interpretation is defined by the TIE
	// extension identified by Instr.CustomID.
	FormatCustom
)

// Opcode enumerates the base XT32 instructions plus the reserved custom
// opcode. The zero value is OpInvalid so that a zero Instr is detectably
// invalid.
type Opcode uint8

// Base ISA opcodes. The set is modeled on the Xtensa base ISA ("the base
// ISA defines approximately 80 instructions").
const (
	OpInvalid Opcode = iota

	// Arithmetic and logic.
	OpADD
	OpADDI
	OpSUB
	OpNEG
	OpAND
	OpANDI
	OpOR
	OpORI
	OpXOR
	OpXORI
	OpNOT
	OpSLL
	OpSLLI
	OpSRL
	OpSRLI
	OpSRA
	OpSRAI
	OpSLT
	OpSLTI
	OpSLTU
	OpSLTIU
	OpMOVI
	OpMOV
	OpMOVEQZ
	OpMOVNEZ
	OpMOVLTZ
	OpMOVGEZ
	OpMUL
	OpMULH
	OpMULHU
	OpMIN
	OpMAX
	OpMINU
	OpMAXU
	OpABS
	OpSEXT8
	OpSEXT16
	OpCLAMPS
	OpNSA
	OpNSAU
	OpEXTUI
	OpNOP

	// Loads.
	OpL8UI
	OpL8SI
	OpL16UI
	OpL16SI
	OpL32I
	OpL32R

	// Stores.
	OpS8I
	OpS16I
	OpS32I

	// Jumps, calls, returns.
	OpJ
	OpJX
	OpCALL
	OpCALLX
	OpRET

	// Conditional branches: register-register.
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU
	OpBANY
	OpBNONE
	OpBALL
	OpBNALL

	// Conditional branches: register-immediate.
	OpBEQI
	OpBNEI
	OpBLTI
	OpBGEI
	OpBLTUI
	OpBGEUI

	// Conditional branches: register-zero and bit tests.
	OpBEQZ
	OpBNEZ
	OpBLTZ
	OpBGEZ
	OpBBCI
	OpBBSI

	// Zero-overhead loop option (configurable, like Xtensa's loop
	// option): LOOP sets up a hardware loop over the instructions up to
	// (but excluding) the target; LOOPNEZ additionally skips the body
	// when the trip count is zero. Executing either on a core configured
	// without the option is an illegal-instruction error.
	OpLOOP
	OpLOOPNEZ

	// OpCUSTOM is the reserved opcode for TIE custom instructions; the
	// concrete extension is selected by Instr.CustomID.
	OpCUSTOM

	numOpcodes
)

// NumOpcodes is the size of the opcode space (including OpInvalid and
// OpCUSTOM); useful for opcode-indexed tables.
const NumOpcodes = int(numOpcodes)

// Def is the static definition of one base instruction.
type Def struct {
	Op     Opcode
	Name   string // assembler mnemonic, lower case
	Format Format
	Class  Class
	// Cycles is the base occupancy of the instruction in the pipeline in
	// the absence of stalls. Most instructions take one cycle; the 32-bit
	// multiply option is iterative and takes two.
	Cycles int
	// ReadsRs, ReadsRt, WritesRd describe register usage for hazard
	// detection.
	ReadsRs, ReadsRt, WritesRd bool
}

var defs = [numOpcodes]Def{
	OpADD:    {OpADD, "add", FormatRRR, ClassArith, 1, true, true, true},
	OpADDI:   {OpADDI, "addi", FormatRRI, ClassArith, 1, true, false, true},
	OpSUB:    {OpSUB, "sub", FormatRRR, ClassArith, 1, true, true, true},
	OpNEG:    {OpNEG, "neg", FormatRR, ClassArith, 1, true, false, true},
	OpAND:    {OpAND, "and", FormatRRR, ClassArith, 1, true, true, true},
	OpANDI:   {OpANDI, "andi", FormatRRI, ClassArith, 1, true, false, true},
	OpOR:     {OpOR, "or", FormatRRR, ClassArith, 1, true, true, true},
	OpORI:    {OpORI, "ori", FormatRRI, ClassArith, 1, true, false, true},
	OpXOR:    {OpXOR, "xor", FormatRRR, ClassArith, 1, true, true, true},
	OpXORI:   {OpXORI, "xori", FormatRRI, ClassArith, 1, true, false, true},
	OpNOT:    {OpNOT, "not", FormatRR, ClassArith, 1, true, false, true},
	OpSLL:    {OpSLL, "sll", FormatRRR, ClassArith, 1, true, true, true},
	OpSLLI:   {OpSLLI, "slli", FormatRRI, ClassArith, 1, true, false, true},
	OpSRL:    {OpSRL, "srl", FormatRRR, ClassArith, 1, true, true, true},
	OpSRLI:   {OpSRLI, "srli", FormatRRI, ClassArith, 1, true, false, true},
	OpSRA:    {OpSRA, "sra", FormatRRR, ClassArith, 1, true, true, true},
	OpSRAI:   {OpSRAI, "srai", FormatRRI, ClassArith, 1, true, false, true},
	OpSLT:    {OpSLT, "slt", FormatRRR, ClassArith, 1, true, true, true},
	OpSLTI:   {OpSLTI, "slti", FormatRRI, ClassArith, 1, true, false, true},
	OpSLTU:   {OpSLTU, "sltu", FormatRRR, ClassArith, 1, true, true, true},
	OpSLTIU:  {OpSLTIU, "sltiu", FormatRRI, ClassArith, 1, true, false, true},
	OpMOVI:   {OpMOVI, "movi", FormatRI, ClassArith, 1, false, false, true},
	OpMOV:    {OpMOV, "mov", FormatRR, ClassArith, 1, true, false, true},
	OpMOVEQZ: {OpMOVEQZ, "moveqz", FormatRRR, ClassArith, 1, true, true, true},
	OpMOVNEZ: {OpMOVNEZ, "movnez", FormatRRR, ClassArith, 1, true, true, true},
	OpMOVLTZ: {OpMOVLTZ, "movltz", FormatRRR, ClassArith, 1, true, true, true},
	OpMOVGEZ: {OpMOVGEZ, "movgez", FormatRRR, ClassArith, 1, true, true, true},
	OpMUL:    {OpMUL, "mul", FormatRRR, ClassArith, 2, true, true, true},
	OpMULH:   {OpMULH, "mulh", FormatRRR, ClassArith, 2, true, true, true},
	OpMULHU:  {OpMULHU, "mulhu", FormatRRR, ClassArith, 2, true, true, true},
	OpMIN:    {OpMIN, "min", FormatRRR, ClassArith, 1, true, true, true},
	OpMAX:    {OpMAX, "max", FormatRRR, ClassArith, 1, true, true, true},
	OpMINU:   {OpMINU, "minu", FormatRRR, ClassArith, 1, true, true, true},
	OpMAXU:   {OpMAXU, "maxu", FormatRRR, ClassArith, 1, true, true, true},
	OpABS:    {OpABS, "abs", FormatRR, ClassArith, 1, true, false, true},
	OpSEXT8:  {OpSEXT8, "sext8", FormatRR, ClassArith, 1, true, false, true},
	OpSEXT16: {OpSEXT16, "sext16", FormatRR, ClassArith, 1, true, false, true},
	OpCLAMPS: {OpCLAMPS, "clamps", FormatRRI, ClassArith, 1, true, false, true},
	OpNSA:    {OpNSA, "nsa", FormatRR, ClassArith, 1, true, false, true},
	OpNSAU:   {OpNSAU, "nsau", FormatRR, ClassArith, 1, true, false, true},
	OpEXTUI:  {OpEXTUI, "extui", FormatRRI, ClassArith, 1, true, false, true},
	OpNOP:    {OpNOP, "nop", FormatNone, ClassArith, 1, false, false, false},

	OpL8UI:  {OpL8UI, "l8ui", FormatMem, ClassLoad, 1, true, false, true},
	OpL8SI:  {OpL8SI, "l8si", FormatMem, ClassLoad, 1, true, false, true},
	OpL16UI: {OpL16UI, "l16ui", FormatMem, ClassLoad, 1, true, false, true},
	OpL16SI: {OpL16SI, "l16si", FormatMem, ClassLoad, 1, true, false, true},
	OpL32I:  {OpL32I, "l32i", FormatMem, ClassLoad, 1, true, false, true},
	OpL32R:  {OpL32R, "l32r", FormatRI, ClassLoad, 1, false, false, true},

	OpS8I:  {OpS8I, "s8i", FormatMem, ClassStore, 1, true, false, false},
	OpS16I: {OpS16I, "s16i", FormatMem, ClassStore, 1, true, false, false},
	OpS32I: {OpS32I, "s32i", FormatMem, ClassStore, 1, true, false, false},

	OpJ:     {OpJ, "j", FormatJump, ClassJump, 1, false, false, false},
	OpJX:    {OpJX, "jx", FormatJumpR, ClassJump, 1, true, false, false},
	OpCALL:  {OpCALL, "call", FormatJump, ClassJump, 1, false, false, false},
	OpCALLX: {OpCALLX, "callx", FormatJumpR, ClassJump, 1, true, false, false},
	OpRET:   {OpRET, "ret", FormatNone, ClassJump, 1, false, false, false},

	OpBEQ:   {OpBEQ, "beq", FormatBranchRR, ClassBranch, 1, true, true, false},
	OpBNE:   {OpBNE, "bne", FormatBranchRR, ClassBranch, 1, true, true, false},
	OpBLT:   {OpBLT, "blt", FormatBranchRR, ClassBranch, 1, true, true, false},
	OpBGE:   {OpBGE, "bge", FormatBranchRR, ClassBranch, 1, true, true, false},
	OpBLTU:  {OpBLTU, "bltu", FormatBranchRR, ClassBranch, 1, true, true, false},
	OpBGEU:  {OpBGEU, "bgeu", FormatBranchRR, ClassBranch, 1, true, true, false},
	OpBANY:  {OpBANY, "bany", FormatBranchRR, ClassBranch, 1, true, true, false},
	OpBNONE: {OpBNONE, "bnone", FormatBranchRR, ClassBranch, 1, true, true, false},
	OpBALL:  {OpBALL, "ball", FormatBranchRR, ClassBranch, 1, true, true, false},
	OpBNALL: {OpBNALL, "bnall", FormatBranchRR, ClassBranch, 1, true, true, false},

	OpBEQI:  {OpBEQI, "beqi", FormatBranchRI, ClassBranch, 1, true, false, false},
	OpBNEI:  {OpBNEI, "bnei", FormatBranchRI, ClassBranch, 1, true, false, false},
	OpBLTI:  {OpBLTI, "blti", FormatBranchRI, ClassBranch, 1, true, false, false},
	OpBGEI:  {OpBGEI, "bgei", FormatBranchRI, ClassBranch, 1, true, false, false},
	OpBLTUI: {OpBLTUI, "bltui", FormatBranchRI, ClassBranch, 1, true, false, false},
	OpBGEUI: {OpBGEUI, "bgeui", FormatBranchRI, ClassBranch, 1, true, false, false},

	OpBEQZ: {OpBEQZ, "beqz", FormatBranchR, ClassBranch, 1, true, false, false},
	OpBNEZ: {OpBNEZ, "bnez", FormatBranchR, ClassBranch, 1, true, false, false},
	OpBLTZ: {OpBLTZ, "bltz", FormatBranchR, ClassBranch, 1, true, false, false},
	OpBGEZ: {OpBGEZ, "bgez", FormatBranchR, ClassBranch, 1, true, false, false},
	OpBBCI: {OpBBCI, "bbci", FormatBranchRI, ClassBranch, 1, true, false, false},
	OpBBSI: {OpBBSI, "bbsi", FormatBranchRI, ClassBranch, 1, true, false, false},

	OpLOOP:    {OpLOOP, "loop", FormatBranchR, ClassArith, 1, true, false, false},
	OpLOOPNEZ: {OpLOOPNEZ, "loopnez", FormatBranchR, ClassArith, 1, true, false, false},

	OpCUSTOM: {OpCUSTOM, "custom", FormatCustom, ClassCustom, 1, false, false, false},
}

var byName = func() map[string]Opcode {
	m := make(map[string]Opcode, numOpcodes)
	for op := OpInvalid + 1; op < numOpcodes; op++ {
		m[defs[op].Name] = op
	}
	return m
}()

// Lookup returns the definition of op. It returns false for OpInvalid or
// out-of-range values.
func Lookup(op Opcode) (Def, bool) {
	if op <= OpInvalid || op >= numOpcodes {
		return Def{}, false
	}
	return defs[op], true
}

// ByName returns the opcode for an assembler mnemonic.
func ByName(name string) (Opcode, bool) {
	op, ok := byName[name]
	return op, ok
}

// BaseOpcodes returns the list of all valid base opcodes (excluding
// OpCUSTOM), in declaration order. The slice is freshly allocated.
func BaseOpcodes() []Opcode {
	out := make([]Opcode, 0, int(numOpcodes)-2)
	for op := OpInvalid + 1; op < numOpcodes; op++ {
		if op != OpCUSTOM {
			out = append(out, op)
		}
	}
	return out
}

// NumBaseOpcodes reports the number of base instructions defined
// (approximately 80, per the Xtensa base ISA).
func NumBaseOpcodes() int { return len(BaseOpcodes()) }

// Name returns the mnemonic for op, or "invalid".
func (op Opcode) Name() string {
	d, ok := Lookup(op)
	if !ok {
		return "invalid"
	}
	return d.Name
}

// ClassOf returns the static energy class of op (branches report
// ClassBranch; the dynamic taken/untaken split happens at execution).
func ClassOf(op Opcode) Class {
	d, ok := Lookup(op)
	if !ok {
		return ClassArith
	}
	return d.Class
}
