package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randomInstr draws a valid instruction for the encode/decode property.
func randomInstr(r *rand.Rand) Instr {
	ops := BaseOpcodes()
	op := ops[r.Intn(len(ops))]
	d, _ := Lookup(op)
	in := Instr{Op: op}
	reg := func() uint8 { return uint8(r.Intn(NumRegs)) }
	imm12 := func() int32 { return int32(r.Intn(4096)) - 2048 }
	switch d.Format {
	case FormatRRR:
		in.Rd, in.Rs, in.Rt = reg(), reg(), reg()
	case FormatRRI, FormatMem:
		in.Rd, in.Rs, in.Imm = reg(), reg(), imm12()
	case FormatRR:
		in.Rd, in.Rs = reg(), reg()
	case FormatRI:
		in.Rd, in.Imm = reg(), int32(r.Intn(1<<18))-1<<17
	case FormatBranchRR:
		in.Rs, in.Rt, in.Imm = reg(), reg(), imm12()
	case FormatBranchRI:
		in.Rs, in.Rt, in.Imm = reg(), uint8(r.Intn(64)), imm12()
	case FormatBranchR:
		in.Rs, in.Imm = reg(), imm12()
	case FormatJump:
		in.Imm = int32(r.Intn(1 << 24))
	case FormatJumpR:
		in.Rs = reg()
	case FormatNone:
	}
	return in
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstr(r)
		w, err := in.Encode()
		if err != nil {
			t.Logf("encode %v: %v", in, err)
			return false
		}
		back, err := Decode(w)
		if err != nil {
			t.Logf("decode %#x: %v", w, err)
			return false
		}
		if back != in {
			t.Logf("round trip %v -> %#x -> %v", in, w, back)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeCustom(t *testing.T) {
	in := Instr{Op: OpCUSTOM, Rd: 5, Rs: 17, Rt: 33, CustomID: 42}
	w, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if back != in {
		t.Fatalf("custom round trip: %v -> %v", in, back)
	}
}

func TestEncodeRejectsOversizedImmediates(t *testing.T) {
	cases := []Instr{
		{Op: OpADDI, Rd: 1, Rs: 2, Imm: 5000},   // > 12 bits
		{Op: OpADDI, Rd: 1, Rs: 2, Imm: -3000},  // < -2048
		{Op: OpMOVI, Rd: 1, Imm: 1 << 20},       // > 18 bits
		{Op: OpJ, Imm: -1},                      // negative jump target
		{Op: OpADD, Rd: 64, Rs: 0, Rt: 0},       // bad register
		{Op: OpBEQ, Rs: 1, Rt: 2, Imm: 1 << 13}, // branch offset too far
		{Op: OpInvalid},                         // invalid opcode
		{Op: OpBEQI, Rs: 1, Rt: 64, Imm: 0},     // branch constant out of range
	}
	for _, in := range cases {
		if _, err := in.Encode(); err == nil {
			t.Errorf("Encode(%v) succeeded, want error", in)
		}
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	if _, err := Decode(0); err == nil {
		t.Fatal("decoded opcode byte 0")
	}
	if _, err := Decode(0xFF << 24); err == nil {
		t.Fatal("decoded out-of-range opcode byte")
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpADD, Rd: 1, Rs: 2, Rt: 3}, "add a1, a2, a3"},
		{Instr{Op: OpADDI, Rd: 1, Rs: 2, Imm: -7}, "addi a1, a2, -7"},
		{Instr{Op: OpMOVI, Rd: 4, Imm: 100}, "movi a4, 100"},
		{Instr{Op: OpL32I, Rd: 9, Rs: 2, Imm: 8}, "l32i a9, a2, 8"},
		{Instr{Op: OpBEQ, Rs: 1, Rt: 2, Imm: -3}, "beq a1, a2, -3"},
		{Instr{Op: OpBEQZ, Rs: 1, Imm: 4}, "beqz a1, 4"},
		{Instr{Op: OpJ, Imm: 12}, "j 12"},
		{Instr{Op: OpJX, Rs: 7}, "jx a7"},
		{Instr{Op: OpNOP}, "nop"},
		{Instr{Op: OpRET}, "ret"},
		{Instr{Op: OpCUSTOM, CustomID: 3, Rd: 1, Rs: 2, Rt: 4}, "custom.3 a1, a2, a4"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestDisassemble(t *testing.T) {
	prog := []Instr{{Op: OpMOVI, Rd: 1, Imm: 5}, {Op: OpRET}}
	text := Disassemble(prog)
	if !strings.Contains(text, "movi a1, 5") || !strings.Contains(text, "ret") {
		t.Fatalf("disassembly missing instructions:\n%s", text)
	}
	if !strings.Contains(text, "0:") || !strings.Contains(text, "1:") {
		t.Fatalf("disassembly missing indices:\n%s", text)
	}
}

func TestInstrPredicates(t *testing.T) {
	if !(Instr{Op: OpBEQ}).IsBranch() {
		t.Fatal("beq not a branch")
	}
	if (Instr{Op: OpADD}).IsBranch() {
		t.Fatal("add is a branch")
	}
	if !(Instr{Op: OpCUSTOM}).IsCustom() {
		t.Fatal("custom not custom")
	}
	if (Instr{Op: OpADD}).IsCustom() {
		t.Fatal("add is custom")
	}
}
