package analyzers

// Package loading without golang.org/x/tools/go/packages: `go list
// -export -deps` resolves the import graph and compiles export data
// into the build cache, and the gc importer reads dependency types from
// those files while the target packages themselves are parsed and
// type-checked from source. Works fully offline — the only external
// process is the go tool itself.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Incomplete bool
}

// Load lists, parses, and type-checks the packages matching patterns in
// dir (the module root or any directory inside it). Test files are not
// included — the invariants under analysis are production-code
// properties.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadContext(context.Background(), dir, patterns...)
}

// LoadContext is Load bounded by ctx: cancellation kills the go tool
// subprocess (the one long leg of a load) and aborts the type-check
// between packages.
func LoadContext(ctx context.Context, dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.CommandContext(ctx, "go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analyzers: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listEntry
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analyzers: go list output: %v", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Incomplete && len(e.GoFiles) > 0 {
			targets = append(targets, e)
		}
	}

	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analyzers: no export data for %q", path)
		}
		return os.Open(f)
	}

	var out []*Package
	for _, e := range targets {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("analyzers: load cancelled: %w", cerr)
		}
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range e.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analyzers: %v", err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{
			Importer: importer.ForCompiler(fset, "gc", lookup),
			Error:    func(error) {}, // collect what we can; first error returned below
		}
		tpkg, err := conf.Check(e.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analyzers: typecheck %s: %v", e.ImportPath, err)
		}
		out = append(out, &Package{
			PkgPath: e.ImportPath,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return out, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// CheckSource type-checks synthetic source files under the given import
// path against an importer fed by a previously loaded module — the
// negative-test harness, so analyzer tests can exercise violations
// without planting them in the real tree.
func CheckSource(pkgPath string, srcs map[string]string, exportsFrom string) (*Package, error) {
	args := []string{"list", "-e", "-json", "-export", "-deps", "std", "./..."}
	cmd := exec.Command("go", args...)
	cmd.Dir = exportsFrom
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analyzers: go list std: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analyzers: go list output: %v", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analyzers: no export data for %q", path)
		}
		return os.Open(f)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for name, src := range srcs {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analyzers: %v", err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analyzers: typecheck %s: %v", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// isIssPackage gates the internal/iss-specific analyzers so synthetic
// test packages under other module paths participate too.
func isIssPackage(pkgPath string) bool {
	return strings.HasSuffix(pkgPath, "internal/iss")
}
