package analyzers

import (
	"go/ast"
	"strings"
)

// hotPathDirective marks a function as per-retire hot: executed once per
// simulated instruction (ISS step, exec-table entries) or once per trace
// entry (stream pricing). The directive is a comment line in the
// function's doc block.
const hotPathDirective = "//xtenergy:hotpath"

// HotPath forbids fmt and errors calls inside directive-marked
// functions. Both allocate on every call; the predecode refactor exists
// precisely to keep per-retire work allocation-free, and a stray
// fmt.Errorf in a fault branch that the compiler cannot prove cold will
// keep the whole function from staying on the fast path. Only direct
// calls are checked — push error formatting into a cold helper and call
// that instead.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "//xtenergy:hotpath functions must not call fmt or errors (allocation per retired instruction)",
	Run:  runHotPath,
}

func runHotPath(p *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil || !hasHotPathDirective(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, isCall := n.(*ast.CallExpr)
				if !isCall {
					return true
				}
				pkgPath, fn, ok := p.calleePkgFunc(call)
				if !ok {
					return true
				}
				if pkgPath == "fmt" || pkgPath == "errors" {
					out = p.diag(out, "hotpath", call.Pos(),
						"hot-path function "+fd.Name.Name+" calls "+pkgPath+"."+fn+": allocates per retired instruction")
				}
				return true
			})
		}
	}
	return out
}

// HotPathFuncs returns the names of the functions in f carrying the
// hotpath directive, so tests can assert the per-retire core stays
// annotated.
func HotPathFuncs(f *ast.File) []string {
	var names []string
	for _, decl := range f.Decls {
		if fd, isFunc := decl.(*ast.FuncDecl); isFunc && hasHotPathDirective(fd) {
			names = append(names, fd.Name.Name)
		}
	}
	return names
}

func hasHotPathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotPathDirective) {
			return true
		}
	}
	return false
}
