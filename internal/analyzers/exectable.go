package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ExecTable proves dispatch-table completeness: every isa.Op* opcode
// constant (except OpInvalid and OpCUSTOM, which dispatch elsewhere)
// must have a `t[isa.OpX] = ...` entry somewhere in internal/iss. A new
// opcode without an executor is otherwise only discovered when a program
// faults at runtime on the nil table entry.
var ExecTable = &Analyzer{
	Name: "exectable",
	Doc:  "the ISS exec table must cover every base opcode the ISA enumerates",
	Run:  runExecTable,
}

// execTableExempt are opcodes intentionally absent from the table.
var execTableExempt = map[string]bool{
	"OpInvalid": true, // zero value: detectably uninitialized, faults on purpose
	"OpCUSTOM":  true, // custom instructions dispatch through the TIE extension
}

func runExecTable(p *Pass) []Diagnostic {
	if !isIssPackage(p.Pkg.PkgPath) {
		return nil
	}
	isaPkg := importedPkg(p.Pkg.Types, "internal/isa")
	if isaPkg == nil {
		return nil
	}

	// The full opcode enumeration, from the type-checked isa package.
	want := make(map[string]bool)
	scope := isaPkg.Scope()
	for _, name := range scope.Names() {
		c, isConst := scope.Lookup(name).(*types.Const)
		if !isConst || !strings.HasPrefix(name, "Op") || execTableExempt[name] {
			continue
		}
		if named, isNamed := c.Type().(*types.Named); isNamed && named.Obj().Name() == "Opcode" {
			want[name] = true
		}
	}

	// Every `<indexable>[isa.OpX] = ...` assignment counts as coverage.
	var tablePos token.Pos
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			asn, isAssign := n.(*ast.AssignStmt)
			if !isAssign {
				return true
			}
			for _, lhs := range asn.Lhs {
				idx, isIndex := lhs.(*ast.IndexExpr)
				if !isIndex {
					continue
				}
				sel, isSel := idx.Index.(*ast.SelectorExpr)
				if !isSel {
					continue
				}
				obj := p.Pkg.Info.Uses[sel.Sel]
				c, isConst := obj.(*types.Const)
				if !isConst || c.Pkg() != isaPkg {
					continue
				}
				if want[c.Name()] {
					delete(want, c.Name())
					if !tablePos.IsValid() {
						tablePos = idx.Pos()
					}
				}
			}
			return true
		})
	}

	if len(want) == 0 {
		return nil
	}
	missing := make([]string, 0, len(want))
	for name := range want {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	pos := tablePos
	if !pos.IsValid() && len(p.Pkg.Files) > 0 {
		pos = p.Pkg.Files[0].Pos()
	}
	return p.diag(nil, "exectable", pos,
		"exec table missing executors for: "+strings.Join(missing, ", "))
}

// importedPkg finds a direct or transitive import whose path ends in
// suffix.
func importedPkg(pkg *types.Package, suffix string) *types.Package {
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		for _, imp := range p.Imports() {
			if strings.HasSuffix(imp.Path(), suffix) {
				return imp
			}
			if found := walk(imp); found != nil {
				return found
			}
		}
		return nil
	}
	return walk(pkg)
}
