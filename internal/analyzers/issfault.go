package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// issFaultAllowlist names the internal/iss functions that may construct
// plain (non-Fault) errors: construction-time validation and harness
// APIs whose callers never triage by fault kind.
var issFaultAllowlist = map[string]bool{
	"(*Program).Validate":  true,
	"(*Simulator).ReadMem": true,
}

// IssFault enforces the fault taxonomy: errors born inside internal/iss
// must be typed *Fault (constructed via newFault) or wrap an underlying
// error with %w so the Fault survives errors.As. A bare errors.New or
// fmt.Errorf would hand the measurement pipeline an untriageable error
// and silently degrade its typed-retry logic.
var IssFault = &Analyzer{
	Name: "issfault",
	Doc:  "internal/iss errors must be typed Faults or %w-wraps (allowlist: construction-time validation)",
	Run:  runIssFault,
}

func runIssFault(p *Pass) []Diagnostic {
	if !isIssPackage(p.Pkg.PkgPath) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			allowed := issFaultAllowlist[funcDisplayName(fd)]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, isCall := n.(*ast.CallExpr)
				if !isCall {
					return true
				}
				pkgPath, fn, ok := p.calleePkgFunc(call)
				if !ok {
					return true
				}
				switch {
				case pkgPath == "errors" && fn == "New":
					out = p.diag(out, "issfault", call.Pos(),
						"errors.New in internal/iss: construct a typed *Fault (newFault) instead")
				case pkgPath == "fmt" && fn == "Errorf":
					if wrapsError(call) || allowed {
						return true
					}
					out = p.diag(out, "issfault", call.Pos(),
						"fmt.Errorf in internal/iss without %w: construct a typed *Fault (newFault) or wrap the cause")
				}
				return true
			})
		}
	}
	return out
}

// wrapsError reports whether the fmt.Errorf call's literal format
// contains a %w verb. A non-literal format cannot be proven to wrap, so
// it does not count.
func wrapsError(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, isLit := call.Args[0].(*ast.BasicLit)
	if !isLit || lit.Kind != token.STRING {
		return false
	}
	return strings.Contains(lit.Value, "%w")
}
