package analyzers_test

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"xtenergy/internal/analyzers"
)

// moduleRoot finds the repository root from this test file's location.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

func runAll(pkgs []*analyzers.Package) []analyzers.Diagnostic {
	var out []analyzers.Diagnostic
	for _, pkg := range pkgs {
		pass := &analyzers.Pass{Pkg: pkg}
		for _, a := range analyzers.All() {
			out = append(out, a.Run(pass)...)
		}
	}
	return out
}

func runOne(t *testing.T, a *analyzers.Analyzer, pkg *analyzers.Package) []analyzers.Diagnostic {
	t.Helper()
	return a.Run(&analyzers.Pass{Pkg: pkg})
}

func find(all []*analyzers.Analyzer, name string) *analyzers.Analyzer {
	for _, a := range all {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// TestRepoIsClean is the project gate: the full analyzer suite over the
// whole module must report nothing. Any finding here is a real invariant
// violation in production code.
func TestRepoIsClean(t *testing.T) {
	pkgs, err := analyzers.Load(moduleRoot(t))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("Load returned only %d packages; loader is broken", len(pkgs))
	}
	for _, d := range runAll(pkgs) {
		t.Errorf("%s: %s: %s", d.Pos, d.Analyzer, d.Msg)
	}
}

// TestHotPathDirectivesPresent guards the annotation set itself: the
// per-retire core (ISS step, trace pricing) must stay marked, or the
// hotpath analyzer silently stops covering it.
func TestHotPathDirectivesPresent(t *testing.T) {
	pkgs, err := analyzers.Load(moduleRoot(t), "./internal/iss", "./internal/rtlpower")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	marked := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, name := range analyzers.HotPathFuncs(f) {
				marked[pkg.PkgPath+"."+name] = true
			}
		}
	}
	for _, want := range []string{
		"xtenergy/internal/iss.step",
		"xtenergy/internal/iss.loopBack",
		"xtenergy/internal/iss.alu",
		"xtenergy/internal/rtlpower.foldChunk",
		"xtenergy/internal/rtlpower.simulateNets",
	} {
		if !marked[want] {
			t.Errorf("expected //xtenergy:hotpath on %s; have %v", want, marked)
		}
	}
}

func TestIssFaultFlagsPlainErrors(t *testing.T) {
	pkg, err := analyzers.CheckSource("example.com/internal/iss", map[string]string{
		"bad.go": `package iss

import (
	"errors"
	"fmt"
)

func a() error { return errors.New("plain") }

func b() error { return fmt.Errorf("pc %d out of range", 7) }

func c(cause error) error { return fmt.Errorf("wrapping: %w", cause) }

type Program struct{}

func (p *Program) Validate() error { return fmt.Errorf("bad program") }
`,
	}, moduleRoot(t))
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	diags := runOne(t, find(analyzers.All(), "issfault"), pkg)
	if len(diags) != 2 {
		t.Fatalf("want 2 findings (errors.New in a, fmt.Errorf in b), got %d: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Msg, "errors.New") {
		t.Errorf("first finding should be the errors.New: %v", diags[0])
	}
	if !strings.Contains(diags[1].Msg, "fmt.Errorf") {
		t.Errorf("second finding should be the bare fmt.Errorf: %v", diags[1])
	}
}

func TestIssFaultIgnoresOtherPackages(t *testing.T) {
	pkg, err := analyzers.CheckSource("example.com/internal/other", map[string]string{
		"ok.go": `package other

import "errors"

func a() error { return errors.New("fine outside iss") }
`,
	}, moduleRoot(t))
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	if diags := runOne(t, find(analyzers.All(), "issfault"), pkg); len(diags) != 0 {
		t.Fatalf("issfault must only apply to internal/iss, got %v", diags)
	}
}

func TestHotPathFlagsFmtCalls(t *testing.T) {
	pkg, err := analyzers.CheckSource("example.com/internal/hot", map[string]string{
		"hot.go": `package hot

import "fmt"

// step is the per-retire core.
//
//xtenergy:hotpath
func step(pc int) error {
	if pc < 0 {
		return fmt.Errorf("pc %d negative", pc)
	}
	return nil
}

// cold formats freely.
func cold(pc int) string { return fmt.Sprintf("%d", pc) }
`,
	}, moduleRoot(t))
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	diags := runOne(t, find(analyzers.All(), "hotpath"), pkg)
	if len(diags) != 1 {
		t.Fatalf("want exactly the fmt.Errorf in step flagged, got %v", diags)
	}
	if !strings.Contains(diags[0].Msg, "step") || !strings.Contains(diags[0].Msg, "fmt.Errorf") {
		t.Errorf("finding should name the function and callee: %v", diags[0])
	}
}

func TestExecTableReportsMissingOps(t *testing.T) {
	pkg, err := analyzers.CheckSource("example.com/internal/iss", map[string]string{
		"exec.go": `package iss

import "xtenergy/internal/isa"

type execFn func()

var execTable = func() [isa.NumOpcodes]execFn {
	var t [isa.NumOpcodes]execFn
	t[isa.OpADD] = func() {}
	t[isa.OpSUB] = func() {}
	return t
}()
`,
	}, moduleRoot(t))
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	diags := runOne(t, find(analyzers.All(), "exectable"), pkg)
	if len(diags) != 1 {
		t.Fatalf("want one completeness finding, got %v", diags)
	}
	msg := diags[0].Msg
	for _, op := range []string{"OpMOVI", "OpBNEZ", "OpL32I"} {
		if !strings.Contains(msg, op) {
			t.Errorf("missing-op list should include %s: %s", op, msg)
		}
	}
	for _, op := range []string{"OpADD,", "OpSUB,", "OpInvalid", "OpCUSTOM"} {
		if strings.Contains(msg+",", op) {
			t.Errorf("covered/exempt opcode %s must not be reported: %s", op, msg)
		}
	}
}
