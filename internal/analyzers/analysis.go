// Package analyzers is a self-contained static-analysis suite for this
// repository's project invariants — the checks `go vet` cannot express
// and golang.org/x/tools-based analyzers would need a network fetch for
// (this module is intentionally dependency-free). The framework mirrors
// go/analysis in miniature: an Analyzer inspects one type-checked
// package and reports diagnostics.
//
// The shipped analyzers enforce:
//
//   - issfault: errors constructed in internal/iss are typed Faults (or
//     wrap one with %w) so callers can triage them with iss.AsFault;
//     ad-hoc errors.New/fmt.Errorf escape the fault taxonomy.
//   - hotpath: functions annotated //xtenergy:hotpath (per-retire ISS
//     and trace-pricing code) must not call fmt or errors — those
//     allocate, and one allocation per retired instruction erases the
//     predecoded-plan speedup.
//   - exectable: the ISS dispatch table covers every base opcode the
//     ISA enumerates, so adding an isa.Op* constant without an executor
//     is caught at analysis time instead of as a runtime fault.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command
	// line.
	Name string
	// Doc is the one-line description `xanalyze -list` prints.
	Doc string
	// Run inspects the package and returns its diagnostics.
	Run func(*Pass) []Diagnostic
}

// Pass is the per-package unit of work handed to an Analyzer.
type Pass struct {
	// Pkg is the loaded, type-checked package under analysis.
	Pkg *Package
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{IssFault, HotPath, ExecTable}
}

// diag appends a finding at pos. The analyzer is named by string so Run
// functions don't reference their own Analyzer variable (initialization
// cycle).
func (p *Pass) diag(out []Diagnostic, analyzer string, pos token.Pos, msg string) []Diagnostic {
	return append(out, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: analyzer,
		Msg:      msg,
	})
}

// calleePkgFunc resolves a call expression to (package path, function
// name) when the callee is a package-level function of another package
// (fmt.Errorf, errors.New, ...); ok is false otherwise.
func (p *Pass) calleePkgFunc(call *ast.CallExpr) (pkgPath, fn string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	ident, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := p.Pkg.Info.Uses[ident].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// funcDisplayName renders a FuncDecl as it is written in an allowlist:
// "Name" for plain functions, "(T).Name" or "(*T).Name" for methods.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	star := ""
	if se, isStar := recv.(*ast.StarExpr); isStar {
		star = "*"
		recv = se.X
	}
	id, isIdent := recv.(*ast.Ident)
	if !isIdent {
		return fd.Name.Name
	}
	return "(" + star + id.Name + ")." + fd.Name.Name
}
