// Package memo is the content-addressed artifact store behind the
// estimation engine (internal/engine): a bounded in-memory LRU layered
// over an on-disk CAS, both keyed by the SHA-256 digest of a
// canonically-serialized request, with singleflight coalescing so a
// thundering herd of identical requests costs exactly one computation.
//
// Not to be confused with internal/cache, which is the hardware
// instruction/data-cache *timing model* of the simulated processor;
// this package memoizes estimation *results* across requests and
// processes.
//
// Corrupted or truncated disk entries never poison the store: every
// entry carries a checksum, a failed verification surfaces as a typed
// iss.Fault (FaultArtifact) through the OnCorrupt hook and the corrupt
// counter, the entry is deleted, and the request falls through to
// recomputation, which rewrites it.
package memo

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"xtenergy/internal/iss"
)

// Digest is the SHA-256 content address of one artifact: the hash of
// the canonically-serialized request that produced it.
type Digest [sha256.Size]byte

// DigestBytes hashes a canonical serialization into its address.
func DigestBytes(b []byte) Digest { return sha256.Sum256(b) }

// Hex renders the digest as the lowercase hex string used for on-disk
// entry names.
func (d Digest) Hex() string { return hex.EncodeToString(d[:]) }

// Outcome classifies how one Do call was served.
type Outcome int

const (
	// OutcomeMiss: computed fresh (and stored).
	OutcomeMiss Outcome = iota
	// OutcomeMemHit: served from the in-memory LRU tier.
	OutcomeMemHit
	// OutcomeDiskHit: served from the on-disk CAS tier (and promoted
	// into memory).
	OutcomeDiskHit
	// OutcomeCoalesced: an identical request was already in flight;
	// this call waited for its result instead of computing.
	OutcomeCoalesced
	// OutcomeBypass: the caller asked for an uncached computation
	// (engine NoCache); nothing was read or written.
	OutcomeBypass
)

// String names the outcome for logs and test failures.
func (o Outcome) String() string {
	switch o {
	case OutcomeMiss:
		return "miss"
	case OutcomeMemHit:
		return "mem-hit"
	case OutcomeDiskHit:
		return "disk-hit"
	case OutcomeCoalesced:
		return "coalesced"
	case OutcomeBypass:
		return "bypass"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Counters is a point-in-time snapshot of the store's accounting; it is
// what `xpowerd health` reports and what the coalescing tests assert
// against.
type Counters struct {
	// MemHits and DiskHits count requests served from each tier; Hits
	// is their sum, kept explicit so wire consumers need no arithmetic.
	Hits     uint64 `json:"hits"`
	MemHits  uint64 `json:"mem_hits"`
	DiskHits uint64 `json:"disk_hits"`
	// Misses counts requests that fell through to computation — each
	// miss is exactly one pipeline execution.
	Misses uint64 `json:"misses"`
	// Coalesced counts requests that waited on an identical in-flight
	// computation instead of starting their own.
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts in-memory LRU entries dropped for capacity.
	Evictions uint64 `json:"evictions"`
	// Corrupt counts disk entries that failed checksum or framing
	// verification and were deleted and recomputed.
	Corrupt uint64 `json:"corrupt"`
}

// Options configures a Store.
type Options struct {
	// Dir is the on-disk CAS root; "" disables the disk tier
	// (memory-only store).
	Dir string
	// MaxEntries bounds the in-memory LRU entry count (0 = 1024).
	MaxEntries int
	// MaxBytes bounds the summed payload bytes held in memory
	// (0 = 64 MiB).
	MaxBytes int64
	// OnCorrupt, when non-nil, observes the typed iss.Fault raised for
	// every corrupt disk entry (tests and logs; the request itself
	// recomputes and succeeds).
	OnCorrupt func(error)
}

// flight is one in-progress computation identical requests coalesce on.
type flight struct {
	done chan struct{}
	val  []byte
	out  Outcome
	err  error
}

// Store is the two-tier artifact store. It is safe for concurrent use;
// the disk tier is additionally safe across processes (entries are
// written to a temp file and atomically renamed into place, and readers
// verify checksums).
type Store struct {
	dir        string
	maxEntries int
	maxBytes   int64
	onCorrupt  func(error)

	mu      sync.Mutex
	ll      *list.List // front = most recent
	idx     map[Digest]*list.Element
	bytes   int64
	flights map[Digest]*flight

	hitsMem, hitsDisk, misses, coalesced, evictions, corrupt atomic.Uint64
}

type entry struct {
	d    Digest
	data []byte
}

// New opens a store. A non-empty Dir is created if missing; failure to
// create it is returned rather than silently degrading, so callers can
// decide to fall back to a memory-only store.
func New(o Options) (*Store, error) {
	if o.MaxEntries <= 0 {
		o.MaxEntries = 1024
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 64 << 20
	}
	if o.Dir != "" {
		if err := os.MkdirAll(o.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("memo: create store dir: %w", err)
		}
	}
	return &Store{
		dir:        o.Dir,
		maxEntries: o.MaxEntries,
		maxBytes:   o.MaxBytes,
		onCorrupt:  o.OnCorrupt,
		ll:         list.New(),
		idx:        make(map[Digest]*list.Element),
		flights:    make(map[Digest]*flight),
	}, nil
}

// Counters returns a snapshot of the store's accounting.
func (s *Store) Counters() Counters {
	c := Counters{
		MemHits:   s.hitsMem.Load(),
		DiskHits:  s.hitsDisk.Load(),
		Misses:    s.misses.Load(),
		Coalesced: s.coalesced.Load(),
		Evictions: s.evictions.Load(),
		Corrupt:   s.corrupt.Load(),
	}
	c.Hits = c.MemHits + c.DiskHits
	return c
}

// Do resolves digest d: memory tier, then disk tier, then compute —
// with identical concurrent requests coalesced onto one computation.
// The returned bytes are shared with the store's memory tier; callers
// must not mutate them. Compute errors are not cached: every waiter
// receives the error and the next request computes again. A corrupt
// disk entry is counted, reported through OnCorrupt as a typed
// iss.Fault, deleted, and recomputed — never returned.
//
// ctx cancels this caller's wait; the in-flight computation itself runs
// on the leader's context. A follower whose leader was cancelled
// retries the resolution itself rather than inheriting the
// cancellation.
func (s *Store) Do(ctx context.Context, d Digest, compute func(context.Context) ([]byte, error)) ([]byte, Outcome, error) {
	for {
		s.mu.Lock()
		if el, ok := s.idx[d]; ok {
			s.ll.MoveToFront(el)
			data := el.Value.(*entry).data
			s.mu.Unlock()
			s.hitsMem.Add(1)
			return data, OutcomeMemHit, nil
		}
		if fl, ok := s.flights[d]; ok {
			s.mu.Unlock()
			s.coalesced.Add(1)
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, OutcomeCoalesced, &iss.Fault{
					Kind: iss.FaultCancelled, PC: -1,
					Msg: "memo: wait for coalesced result cancelled", Err: ctx.Err(),
				}
			}
			if fl.err != nil {
				// A leader cancelled out from under us is not our
				// failure: take over the computation ourselves.
				if f, ok := iss.AsFault(fl.err); ok && f.Kind == iss.FaultCancelled && ctx.Err() == nil {
					continue
				}
				return nil, OutcomeCoalesced, fl.err
			}
			return fl.val, OutcomeCoalesced, nil
		}
		fl := &flight{done: make(chan struct{})}
		s.flights[d] = fl
		s.mu.Unlock()

		fl.val, fl.out, fl.err = s.lead(ctx, d, compute)
		s.mu.Lock()
		delete(s.flights, d)
		s.mu.Unlock()
		close(fl.done)
		return fl.val, fl.out, fl.err
	}
}

// lead is the leader's half of Do: disk lookup, then computation and
// store-back.
func (s *Store) lead(ctx context.Context, d Digest, compute func(context.Context) ([]byte, error)) ([]byte, Outcome, error) {
	if data, err := s.readDisk(d); err == nil && data != nil {
		s.putMem(d, data)
		s.hitsDisk.Add(1)
		return data, OutcomeDiskHit, nil
	} else if err != nil {
		s.corrupt.Add(1)
		if s.onCorrupt != nil {
			s.onCorrupt(err)
		}
		os.Remove(s.path(d)) // never read a poisoned entry twice
	}
	s.misses.Add(1) // counted at computation start: one miss == one pipeline execution
	data, err := compute(ctx)
	if err != nil {
		return nil, OutcomeMiss, err
	}
	s.putMem(d, data)
	s.writeDisk(d, data)
	return data, OutcomeMiss, nil
}

// Get resolves d from the two tiers without computing: (nil, miss, nil)
// on absence, a typed iss.Fault on a corrupt disk entry (which is also
// counted and deleted). Mainly a test and inspection surface; Do is the
// serving path.
func (s *Store) Get(d Digest) ([]byte, Outcome, error) {
	s.mu.Lock()
	if el, ok := s.idx[d]; ok {
		s.ll.MoveToFront(el)
		data := el.Value.(*entry).data
		s.mu.Unlock()
		s.hitsMem.Add(1)
		return data, OutcomeMemHit, nil
	}
	s.mu.Unlock()
	data, err := s.readDisk(d)
	switch {
	case err != nil:
		s.corrupt.Add(1)
		if s.onCorrupt != nil {
			s.onCorrupt(err)
		}
		os.Remove(s.path(d))
		return nil, OutcomeMiss, err
	case data == nil:
		return nil, OutcomeMiss, nil
	}
	s.putMem(d, data)
	s.hitsDisk.Add(1)
	return data, OutcomeDiskHit, nil
}

// Put stores data under d in both tiers (test seeding and write-through
// callers; Do stores automatically on a miss).
func (s *Store) Put(d Digest, data []byte) {
	s.putMem(d, data)
	s.writeDisk(d, data)
}

func (s *Store) putMem(d Digest, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.idx[d]; ok {
		s.bytes += int64(len(data)) - int64(len(el.Value.(*entry).data))
		el.Value.(*entry).data = data
		s.ll.MoveToFront(el)
	} else {
		s.idx[d] = s.ll.PushFront(&entry{d: d, data: data})
		s.bytes += int64(len(data))
	}
	for s.ll.Len() > s.maxEntries || (s.bytes > s.maxBytes && s.ll.Len() > 1) {
		back := s.ll.Back()
		e := back.Value.(*entry)
		s.ll.Remove(back)
		delete(s.idx, e.d)
		s.bytes -= int64(len(e.data))
		s.evictions.Add(1)
	}
}

// ---- disk tier ----

// Disk entry framing: magic, SHA-256 checksum of the payload, payload
// length, payload. The checksum is of the *payload*, not the digest key
// (the key is the request's digest, not the artifact's), so bit flips
// and truncations anywhere in the file fail verification.
const diskMagic = "xtmemo1\n"

const diskHeaderSize = len(diskMagic) + sha256.Size + 8

func (s *Store) path(d Digest) string {
	h := d.Hex()
	return filepath.Join(s.dir, h[:2], h+".art")
}

func corruptf(d Digest, format string, args ...any) *iss.Fault {
	return &iss.Fault{
		Kind: iss.FaultArtifact, PC: -1,
		Msg: fmt.Sprintf("memo: entry %s: %s", d.Hex()[:12], fmt.Sprintf(format, args...)),
	}
}

// readDisk returns (nil, nil) when the disk tier is disabled or the
// entry does not exist, the payload when it verifies, and a typed
// iss.Fault (FaultArtifact) when the entry exists but is truncated,
// misframed, or checksum-corrupt.
func (s *Store) readDisk(d Digest) ([]byte, error) {
	if s.dir == "" {
		return nil, nil
	}
	raw, err := os.ReadFile(s.path(d))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, corruptf(d, "unreadable: %v", err)
	}
	if len(raw) < diskHeaderSize {
		return nil, corruptf(d, "truncated header: %d bytes", len(raw))
	}
	if string(raw[:len(diskMagic)]) != diskMagic {
		return nil, corruptf(d, "bad magic")
	}
	var want [sha256.Size]byte
	copy(want[:], raw[len(diskMagic):])
	n := binary.BigEndian.Uint64(raw[len(diskMagic)+sha256.Size:])
	payload := raw[diskHeaderSize:]
	if uint64(len(payload)) != n {
		return nil, corruptf(d, "declared %d payload bytes, have %d", n, len(payload))
	}
	if sha256.Sum256(payload) != want {
		return nil, corruptf(d, "checksum mismatch")
	}
	return payload, nil
}

// writeDisk stores the entry atomically: temp file in the same
// directory, then rename. The disk tier is best-effort — an unwritable
// store never fails a request that already holds its result.
func (s *Store) writeDisk(d Digest, payload []byte) {
	if s.dir == "" {
		return
	}
	p := s.path(d)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return
	}
	f, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return
	}
	sum := sha256.Sum256(payload)
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(len(payload)))
	_, werr := f.Write([]byte(diskMagic))
	if werr == nil {
		_, werr = f.Write(sum[:])
	}
	if werr == nil {
		_, werr = f.Write(hdr[:])
	}
	if werr == nil {
		_, werr = f.Write(payload)
	}
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(f.Name())
		return
	}
	if err := os.Rename(f.Name(), p); err != nil {
		os.Remove(f.Name())
	}
}
