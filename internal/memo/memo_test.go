package memo

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"xtenergy/internal/iss"
)

func newTestStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDoMissThenHits(t *testing.T) {
	dir := t.TempDir()
	s := newTestStore(t, dir)
	d := DigestBytes([]byte("req"))
	var computes atomic.Int64
	compute := func(context.Context) ([]byte, error) {
		computes.Add(1)
		return []byte("artifact"), nil
	}

	got, out, err := s.Do(context.Background(), d, compute)
	if err != nil || string(got) != "artifact" || out != OutcomeMiss {
		t.Fatalf("first Do = %q, %v, %v", got, out, err)
	}
	got, out, err = s.Do(context.Background(), d, compute)
	if err != nil || string(got) != "artifact" || out != OutcomeMemHit {
		t.Fatalf("second Do = %q, %v, %v", got, out, err)
	}

	// A fresh store over the same directory must hit the disk tier.
	s2 := newTestStore(t, dir)
	got, out, err = s2.Do(context.Background(), d, compute)
	if err != nil || string(got) != "artifact" || out != OutcomeDiskHit {
		t.Fatalf("disk-tier Do = %q, %v, %v", got, out, err)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	c := s.Counters()
	if c.Misses != 1 || c.MemHits != 1 || c.Hits != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c2 := s2.Counters(); c2.DiskHits != 1 || c2.Hits != 1 {
		t.Fatalf("fresh-store counters = %+v", c2)
	}
}

func TestMemoryOnlyStore(t *testing.T) {
	s := newTestStore(t, "")
	d := DigestBytes([]byte("x"))
	if _, out, err := s.Do(context.Background(), d, func(context.Context) ([]byte, error) {
		return []byte("v"), nil
	}); err != nil || out != OutcomeMiss {
		t.Fatalf("Do = %v, %v", out, err)
	}
	if _, out, _ := s.Do(context.Background(), d, nil); out != OutcomeMemHit {
		t.Fatalf("second Do outcome = %v", out)
	}
}

func TestLRUEviction(t *testing.T) {
	s, err := New(Options{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Digest, 3)
	for i := range keys {
		keys[i] = DigestBytes([]byte{byte(i)})
		s.Put(keys[i], []byte{byte(i)})
	}
	if c := s.Counters(); c.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions)
	}
	if _, out, _ := s.Get(keys[0]); out != OutcomeMiss {
		t.Fatalf("oldest entry outcome = %v, want miss", out)
	}
	if _, out, _ := s.Get(keys[2]); out != OutcomeMemHit {
		t.Fatalf("newest entry outcome = %v, want mem-hit", out)
	}
}

func TestByteBoundEviction(t *testing.T) {
	s, err := New(Options{MaxBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	a, b := DigestBytes([]byte("a")), DigestBytes([]byte("b"))
	s.Put(a, make([]byte, 8))
	s.Put(b, make([]byte, 8))
	if c := s.Counters(); c.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions)
	}
	if _, out, _ := s.Get(b); out != OutcomeMemHit {
		t.Fatalf("latest entry evicted")
	}
}

// corruptEntry rewrites the stored file through fn.
func corruptEntry(t *testing.T, s *Store, d Digest, fn func([]byte) []byte) {
	t.Helper()
	raw, err := os.ReadFile(s.path(d))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(d), fn(raw), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptEntriesRecompute(t *testing.T) {
	cases := []struct {
		name string
		fn   func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }},
		{"bit-flipped", func(b []byte) []byte {
			b[len(b)-1] ^= 0x40
			return b
		}},
		{"header-only", func(b []byte) []byte { return b[:4] }},
		{"bad-magic", func(b []byte) []byte {
			b[0] ^= 0xFF
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			var faults []error
			s, err := New(Options{Dir: dir, OnCorrupt: func(err error) { faults = append(faults, err) }})
			if err != nil {
				t.Fatal(err)
			}
			d := DigestBytes([]byte("req"))
			s.Put(d, []byte("payload"))
			corruptEntry(t, s, d, tc.fn)

			// Read through a fresh store so the memory tier cannot mask
			// the corruption.
			var faults2 []error
			s2, err := New(Options{Dir: dir, OnCorrupt: func(err error) { faults2 = append(faults2, err) }})
			if err != nil {
				t.Fatal(err)
			}
			got, out, err := s2.Do(context.Background(), d, func(context.Context) ([]byte, error) {
				return []byte("payload"), nil
			})
			if err != nil || string(got) != "payload" || out != OutcomeMiss {
				t.Fatalf("Do after corruption = %q, %v, %v", got, out, err)
			}
			if len(faults2) != 1 {
				t.Fatalf("OnCorrupt called %d times, want 1", len(faults2))
			}
			f, ok := iss.AsFault(faults2[0])
			if !ok || f.Kind != iss.FaultArtifact {
				t.Fatalf("corruption error %v is not a typed FaultArtifact", faults2[0])
			}
			if c := s2.Counters(); c.Corrupt != 1 || c.Misses != 1 {
				t.Fatalf("counters = %+v", c)
			}

			// The recompute rewrote the entry: a third store reads it clean.
			s3 := newTestStore(t, dir)
			got, out, err = s3.Get(d)
			if err != nil || string(got) != "payload" || out != OutcomeDiskHit {
				t.Fatalf("entry not rewritten: %q, %v, %v", got, out, err)
			}
		})
	}
}

func TestThunderingHerdCoalesces(t *testing.T) {
	s := newTestStore(t, t.TempDir())
	d := DigestBytes([]byte("herd"))
	const n = 32
	var computes atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{}, n)

	var wg sync.WaitGroup
	results := make([]string, n)
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			got, out, err := s.Do(context.Background(), d, func(context.Context) ([]byte, error) {
				computes.Add(1)
				<-release // hold the leader so the herd piles up
				return []byte("one"), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = string(got)
			outcomes[i] = out
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("computed %d times under the herd, want exactly 1", got)
	}
	var miss, coalesced int
	for i := range results {
		if results[i] != "one" {
			t.Fatalf("goroutine %d got %q", i, results[i])
		}
		switch outcomes[i] {
		case OutcomeMiss:
			miss++
		case OutcomeCoalesced, OutcomeMemHit:
			coalesced++
		default:
			t.Fatalf("goroutine %d outcome %v", i, outcomes[i])
		}
	}
	if miss != 1 {
		t.Fatalf("%d leaders, want 1", miss)
	}
	c := s.Counters()
	if c.Misses != 1 {
		t.Fatalf("misses = %d, want 1", c.Misses)
	}
	if c.Coalesced+c.MemHits != n-1 {
		t.Fatalf("coalesced %d + mem hits %d != %d", c.Coalesced, c.MemHits, n-1)
	}
}

func TestComputeErrorsAreNotCached(t *testing.T) {
	s := newTestStore(t, t.TempDir())
	d := DigestBytes([]byte("err"))
	boom := fmt.Errorf("boom")
	if _, _, err := s.Do(context.Background(), d, func(context.Context) ([]byte, error) {
		return nil, boom
	}); err != boom {
		t.Fatalf("err = %v", err)
	}
	got, out, err := s.Do(context.Background(), d, func(context.Context) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || string(got) != "ok" || out != OutcomeMiss {
		t.Fatalf("retry = %q, %v, %v", got, out, err)
	}
}

func TestFollowerRetriesAfterCancelledLeader(t *testing.T) {
	s := newTestStore(t, t.TempDir())
	d := DigestBytes([]byte("cancel"))
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := s.Do(leaderCtx, d, func(ctx context.Context) ([]byte, error) {
			close(leaderIn)
			<-release
			return nil, &iss.Fault{Kind: iss.FaultCancelled, PC: -1, Msg: "cancelled", Err: ctx.Err()}
		})
		if f, ok := iss.AsFault(err); !ok || f.Kind != iss.FaultCancelled {
			t.Errorf("leader err = %v", err)
		}
	}()
	<-leaderIn

	wg.Add(1)
	go func() {
		defer wg.Done()
		got, _, err := s.Do(context.Background(), d, func(context.Context) ([]byte, error) {
			return []byte("fresh"), nil
		})
		if err != nil || string(got) != "fresh" {
			t.Errorf("follower = %q, %v", got, err)
		}
	}()

	cancelLeader()
	close(release)
	wg.Wait()
}
