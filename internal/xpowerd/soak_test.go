package xpowerd_test

import (
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"xtenergy/internal/chaos"
	"xtenergy/internal/xpowerd"
)

// TestSoakConcurrentSessions hammers one daemon with concurrent
// sessions mixing every client behavior the robustness layers exist
// for — happy-path work on both listeners, mid-frame disconnects,
// oversized frames, client-side cancellations mid-flight, poisoned
// requests — then drains and checks every goroutine came home. Run
// under -race (the tier-1 invocation), this is the leak-and-race gate
// from the issue's chaos criteria.
func TestSoakConcurrentSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	sockPath := filepath.Join(t.TempDir(), "d.sock")
	cfg := xpowerd.Config{
		TCPAddr:      "127.0.0.1:0",
		UnixPath:     sockPath,
		Workers:      2,
		QueueDepth:   8,
		DrainTimeout: 20 * time.Second,
		ReadTimeout:  5 * time.Second,
		RequestHook:  chaos.PanicOnWorkload("poisoned"),
	}
	srv := xpowerd.New(cfg)
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()

	tcpAddr := srv.Addrs()[0].String()
	addrs := []string{tcpAddr, "unix:" + sockPath}

	const sessions = 21
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
			addr := addrs[i%len(addrs)]
			switch i % 7 {
			case 0: // full estimate round-trip
				client, err := xpowerd.Dial(addr, 5*time.Second)
				if err != nil {
					t.Error(err)
					return
				}
				defer client.Close()
				resp, err := client.Do(context.Background(), &xpowerd.Request{
					Op: xpowerd.OpEstimate, Workload: "accumulate", Fast: true,
				})
				if err != nil {
					var we *xpowerd.WireError
					// Sheddings under pressure are legitimate outcomes.
					if !errors.As(err, &we) || we.Code != xpowerd.ErrCodeUnavailable {
						t.Errorf("session %d estimate: %v", i, err)
					}
					return
				}
				if resp.Status != xpowerd.StatusOK {
					t.Errorf("session %d estimate status %d", i, resp.Status)
				}
			case 1: // lint round-trip
				client, err := xpowerd.Dial(addr, 5*time.Second)
				if err != nil {
					t.Error(err)
					return
				}
				defer client.Close()
				if _, err := client.Do(context.Background(), &xpowerd.Request{
					Op: xpowerd.OpLint, Workload: "rs_gffold",
				}); err != nil {
					var we *xpowerd.WireError
					if !errors.As(err, &we) || we.Code != xpowerd.ErrCodeUnavailable {
						t.Errorf("session %d lint: %v", i, err)
					}
				}
			case 2: // simulate inline source
				client, err := xpowerd.Dial(addr, 5*time.Second)
				if err != nil {
					t.Error(err)
					return
				}
				defer client.Close()
				if _, err := client.Do(context.Background(), &xpowerd.Request{
					Op: xpowerd.OpSimulate, Source: tinySource, SourceName: "soak.s",
				}); err != nil {
					var we *xpowerd.WireError
					if !errors.As(err, &we) || we.Code != xpowerd.ErrCodeUnavailable {
						t.Errorf("session %d simulate: %v", i, err)
					}
				}
			case 3: // mid-frame disconnect
				conn, err := net.Dial("tcp", tcpAddr)
				if err != nil {
					t.Error(err)
					return
				}
				tc := &chaos.TruncateConn{Conn: conn, Budget: 5 + rng.Intn(10)}
				xpowerd.WriteFrame(tc, &xpowerd.Request{Op: xpowerd.OpEstimate, Workload: "accumulate"})
			case 4: // oversized frame
				conn, err := net.Dial("tcp", tcpAddr)
				if err != nil {
					t.Error(err)
					return
				}
				defer conn.Close()
				var hdr [4]byte
				binary.BigEndian.PutUint32(hdr[:], xpowerd.DefaultMaxFrame+1)
				conn.Write(hdr[:])
				conn.SetReadDeadline(time.Now().Add(10 * time.Second))
				xpowerd.ReadFrame(conn, 0) // parting protocol error, then close
			case 5: // client gives up mid-flight
				client, err := xpowerd.Dial(addr, 5*time.Second)
				if err != nil {
					t.Error(err)
					return
				}
				defer client.Close()
				cctx, ccancel := context.WithTimeout(context.Background(), time.Duration(1+rng.Intn(10))*time.Millisecond)
				defer ccancel()
				client.Do(cctx, &xpowerd.Request{Op: xpowerd.OpEstimate, Workload: "accumulate", Fast: true})
			case 6: // poisoned request (hook panics server-side)
				client, err := xpowerd.Dial(addr, 5*time.Second)
				if err != nil {
					t.Error(err)
					return
				}
				defer client.Close()
				_, err = client.Do(context.Background(), &xpowerd.Request{
					Op: xpowerd.OpEstimate, Workload: "poisoned",
				})
				var we *xpowerd.WireError
				if !errors.As(err, &we) {
					t.Errorf("session %d poisoned request: %v, want a wire error", i, err)
					return
				}
				if we.Code != xpowerd.ErrCodeFault && we.Code != xpowerd.ErrCodeUnavailable {
					t.Errorf("session %d poisoned request code %q", i, we.Code)
				}
			}
		}(i)
	}
	wg.Wait()

	// The daemon survived the abuse; health must still answer.
	client, err := xpowerd.Dial(tcpAddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(context.Background(), &xpowerd.Request{Op: xpowerd.OpHealth})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Health.State != "serving" {
		t.Fatalf("health after soak: %+v", resp.Health)
	}
	client.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain after soak returned %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after drain")
	}

	// Every session, worker, and accept goroutine must be gone. Allow
	// the runtime a moment to unwind stacks (same settle idiom as the
	// chaos harness tests).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
