package xpowerd

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Admission failures. Both are load-shedding outcomes the session layer
// maps to fast "unavailable" responses: the caller spent no pipeline
// work and holds no pool resources.
var (
	// ErrUnavailable means the admission queue is full: the daemon is
	// saturated and sheds this request instead of queueing unboundedly.
	ErrUnavailable = errors.New("xpowerd: overloaded, admission queue full")
	// ErrDraining means the pool has begun shutdown and admits no new
	// work.
	ErrDraining = errors.New("xpowerd: draining, not accepting work")
)

// poolJob is one admitted unit of work.
type poolJob struct {
	ctx  context.Context
	fn   func(context.Context)
	done chan struct{}
}

// Pool is the bounded worker pool behind the work ops: a fixed worker
// count bounds concurrent pipeline runs, and an explicit fixed-depth
// admission queue in front of it turns overload into an immediate
// ErrUnavailable instead of an unbounded goroutine or queue pile-up.
type Pool struct {
	jobs    chan *poolJob
	workers int

	mu     sync.RWMutex // guards closed vs. in-flight submits
	closed bool

	wg     sync.WaitGroup
	active atomic.Int64
}

// NewPool starts workers goroutines servicing an admission queue of
// queueDepth pending jobs (workers <= 0 means GOMAXPROCS, queueDepth
// < 0 means 0: no queueing beyond the workers themselves).
func NewPool(workers, queueDepth int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	p := &Pool{jobs: make(chan *poolJob, queueDepth), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		// A job whose session died while queued is completed without
		// running: its submitter already returned, and its context is
		// the only thing the work would have had to live under.
		if j.ctx.Err() == nil {
			p.active.Add(1)
			p.runOne(j)
			p.active.Add(-1)
		}
		close(j.done)
	}
}

// runOne executes one job with panic containment: a poisoned request
// must cost exactly one response, never a worker goroutine (which would
// silently shrink the pool) and never the daemon. The session-layer
// closure converts its own panics into typed faults first; this recover
// is the backstop for panics escaping that closure itself.
func (p *Pool) runOne(j *poolJob) {
	defer func() { recover() }()
	j.fn(j.ctx)
}

// Do admits fn and waits for it to finish. It fails fast with
// ErrUnavailable when the admission queue is full and ErrDraining after
// Close has begun, and returns ctx.Err() if ctx ends first (the worker
// then skips or abandons the job on its own; fn must confine its
// effects to memory the submitter only reads on a nil return).
func (p *Pool) Do(ctx context.Context, fn func(context.Context)) error {
	j := &poolJob{ctx: ctx, fn: fn, done: make(chan struct{})}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrDraining
	}
	select {
	case p.jobs <- j:
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		return ErrUnavailable
	}
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops admission and waits for the workers to finish every job
// already admitted (queued jobs whose contexts have ended are skipped,
// so a force-cancelled drain converges quickly).
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// QueueDepth is the number of admitted jobs not yet picked up.
func (p *Pool) QueueDepth() int { return len(p.jobs) }

// QueueCap is the admission queue's capacity.
func (p *Pool) QueueCap() int { return cap(p.jobs) }

// Active is the number of jobs currently executing.
func (p *Pool) Active() int { return int(p.active.Load()) }

// Workers is the fixed worker count.
func (p *Pool) Workers() int { return p.workers }
