package xpowerd

import (
	"context"
	"fmt"
	"sync/atomic"

	"xtenergy/internal/core"
	"xtenergy/internal/engine"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/workloads"
	"xtenergy/internal/xlint"
)

// This file holds the work-op entry points. The one-shot CLIs render
// through the same functions (cmd/xpower calls EstimateReport, the
// plain-text path of cmd/xlint calls LintReport), so a remote response
// is byte-identical to the one-shot tool's stdout by construction, not
// by parallel maintenance of two formatters.
//
// Every entry point resolves through the content-addressed estimation
// engine (internal/engine): identical requests are answered from the
// memoizing artifact store — and coalesced while in flight — instead of
// re-running the pipeline. Cached and uncached responses are
// byte-identical because the artifact stores the report's inputs and
// rendering is this same shared code.

// engOverride, when set, routes the ops through a specific engine
// instead of the process-wide default (daemon -memo-dir flag, tests).
var engOverride atomic.Pointer[engine.Engine]

// Engine returns the engine serving this process's ops.
func Engine() *engine.Engine {
	if e := engOverride.Load(); e != nil {
		return e
	}
	return engine.Default()
}

// SetEngine routes subsequent ops through e; nil restores the default.
func SetEngine(e *engine.Engine) { engOverride.Store(e) }

// InvalidRequestError marks a request the daemon can never serve —
// unknown workload, missing program, bad lint codes. The session layer
// maps it to ErrCodeInvalid; retrying is pointless.
type InvalidRequestError struct{ Msg string }

func (e *InvalidRequestError) Error() string { return e.Msg }

func invalidf(format string, args ...any) error {
	return &InvalidRequestError{Msg: fmt.Sprintf(format, args...)}
}

// resolveWorkload picks the program: a registry name, or inline XT32
// assembly (base ISA) when allowed, labeled sourceName ("inline" when
// empty — the CLIs pass the file path so findings keep their familiar
// prefix).
func resolveWorkload(name, source, sourceName string, allowSource bool) (core.Workload, error) {
	switch {
	case name != "" && source != "":
		return core.Workload{}, invalidf("workload and source are mutually exclusive")
	case name != "":
		w, ok := workloads.ByName(name)
		if !ok {
			return core.Workload{}, invalidf("unknown workload %q (try -list)", name)
		}
		return w, nil
	case source != "":
		if !allowSource {
			return core.Workload{}, invalidf("this op requires a registry workload, not inline source")
		}
		if sourceName == "" {
			sourceName = "inline"
		}
		return core.Workload{Name: sourceName, Source: source}, nil
	default:
		return core.Workload{}, invalidf("request names no workload")
	}
}

// cancelled wraps a context end into the typed fault taxonomy so wire
// errors carry the same kinds local callers see.
func cancelled(prog, what string, cerr error) error {
	return &iss.Fault{Kind: iss.FaultCancelled, Prog: prog, PC: -1, Msg: what + " cancelled", Err: cerr}
}

// EstimateParams selects one reference power estimation (the xpower
// path: RTL-level streamed estimator over the named workload).
type EstimateParams struct {
	// Workload is the registry workload to estimate.
	Workload string
	// Fast selects the reduced-resolution reference technology.
	Fast bool
	// Shards is StreamEstimator.Shards; 0 means 1 (sequential). Shards
	// change nothing about the result (the sharded estimator is
	// bit-identical), so they do not split the artifact cache.
	Shards int
	// ProfileWindow, when nonzero, appends the power-vs-time profile
	// with that window in cycles.
	ProfileWindow uint64
	// NoCache bypasses the artifact store: the pipeline always runs,
	// and nothing is read or written (`xpower -no-cache`).
	NoCache bool
}

// EstimateReport runs (or recalls) one streamed reference estimation
// and renders the exact report `xpower [-fast] [-j] [-profile]` prints
// for the same inputs. Cancelling ctx aborts at the next batch boundary
// with a typed cancelled fault.
func EstimateReport(ctx context.Context, p EstimateParams) (string, error) {
	w, err := resolveWorkload(p.Workload, "", "", false)
	if err != nil {
		return "", err
	}
	tech := rtlpower.DefaultTechnology()
	if p.Fast {
		tech = rtlpower.FastTechnology()
	}
	a, _, err := Engine().Estimate(ctx, engine.EstimateSpec{
		Workload: w, Config: procgen.Default(), Tech: tech,
		Shards: p.Shards, ProfileWindow: p.ProfileWindow, NoCache: p.NoCache,
	})
	if err != nil {
		return "", err
	}
	return a.Render(), nil
}

// SimulateParams selects one ISS run (the xsim path: execution
// statistics, no power estimation).
type SimulateParams struct {
	// Workload is a registry name; Source is inline XT32 assembly
	// (base ISA) labeled SourceName. Exactly one of Workload/Source
	// must be set.
	Workload   string
	Source     string
	SourceName string
	// Vars appends the nonzero macro-model variables. Render-only: the
	// artifact always carries the variables, so -vars and plain runs
	// share one cache entry.
	Vars bool
	// NoCache bypasses the artifact store.
	NoCache bool
}

// SimulateReport runs (or recalls) the ISS and renders the report
// `xsim [-vars]` prints for the same program.
func SimulateReport(ctx context.Context, p SimulateParams) (string, error) {
	w, err := resolveWorkload(p.Workload, p.Source, p.SourceName, true)
	if err != nil {
		return "", err
	}
	a, _, err := Engine().Simulate(ctx, engine.SimulateSpec{
		Workload: w, Config: procgen.Default(), NoCache: p.NoCache,
	})
	if err != nil {
		return "", err
	}
	return a.Render(p.Vars), nil
}

// LintParams selects one static analysis (the xlint plain-text path).
type LintParams struct {
	// Workload is a registry name; Source is inline XT32 assembly
	// (base ISA) labeled SourceName. Exactly one of Workload/Source
	// must be set.
	Workload   string
	Source     string
	SourceName string
	// Notes includes note-severity findings. Render-only: the artifact
	// holds every finding down to note severity.
	Notes bool
	// Disable suppresses the named finding codes (validated; unknown
	// codes are an invalid request, mirroring `xlint -disable`).
	Disable []string
	// NoCache bypasses the artifact store.
	NoCache bool
}

// LintReport runs (or recalls) the static analyzer and renders exactly
// what `xlint [-notes] [-disable]` prints in its default text mode,
// with the same 0/1 status. Invalid disable codes are rejected before
// the engine is consulted, so they can never reach (or pollute) the
// artifact store.
func LintReport(ctx context.Context, p LintParams) (string, int, error) {
	w, err := resolveWorkload(p.Workload, p.Source, p.SourceName, true)
	if err != nil {
		return "", StatusFailed, err
	}
	if len(p.Disable) > 0 {
		if err := xlint.ValidateCodes(p.Disable); err != nil {
			return "", StatusFailed, &InvalidRequestError{Msg: err.Error()}
		}
	}
	a, _, err := Engine().Lint(ctx, engine.LintSpec{
		Workload: w, Config: procgen.Default(), Disable: p.Disable, NoCache: p.NoCache,
	})
	if err != nil {
		return "", StatusFailed, err
	}
	text, degraded := a.Render(p.Notes)
	status := StatusOK
	if degraded {
		status = StatusDegraded
	}
	return text, status, nil
}
