package xpowerd

import (
	"context"
	"fmt"
	"strings"

	"xtenergy/internal/core"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/workloads"
	"xtenergy/internal/xlint"
)

// This file holds the work-op entry points. The one-shot CLIs render
// through the same functions (cmd/xpower calls EstimateReport, the
// plain-text path of cmd/xlint calls LintReport), so a remote response
// is byte-identical to the one-shot tool's stdout by construction, not
// by parallel maintenance of two formatters.

// InvalidRequestError marks a request the daemon can never serve —
// unknown workload, missing program, bad lint codes. The session layer
// maps it to ErrCodeInvalid; retrying is pointless.
type InvalidRequestError struct{ Msg string }

func (e *InvalidRequestError) Error() string { return e.Msg }

func invalidf(format string, args ...any) error {
	return &InvalidRequestError{Msg: fmt.Sprintf(format, args...)}
}

// resolveWorkload picks the program: a registry name, or inline XT32
// assembly (base ISA) when allowed, labeled sourceName ("inline" when
// empty — the CLIs pass the file path so findings keep their familiar
// prefix).
func resolveWorkload(name, source, sourceName string, allowSource bool) (core.Workload, error) {
	switch {
	case name != "" && source != "":
		return core.Workload{}, invalidf("workload and source are mutually exclusive")
	case name != "":
		w, ok := workloads.ByName(name)
		if !ok {
			return core.Workload{}, invalidf("unknown workload %q (try -list)", name)
		}
		return w, nil
	case source != "":
		if !allowSource {
			return core.Workload{}, invalidf("this op requires a registry workload, not inline source")
		}
		if sourceName == "" {
			sourceName = "inline"
		}
		return core.Workload{Name: sourceName, Source: source}, nil
	default:
		return core.Workload{}, invalidf("request names no workload")
	}
}

// cancelled wraps a context end into the typed fault taxonomy so wire
// errors carry the same kinds local callers see.
func cancelled(prog, what string, cerr error) error {
	return &iss.Fault{Kind: iss.FaultCancelled, Prog: prog, PC: -1, Msg: what + " cancelled", Err: cerr}
}

// EstimateParams selects one reference power estimation (the xpower
// path: RTL-level streamed estimator over the named workload).
type EstimateParams struct {
	// Workload is the registry workload to estimate.
	Workload string
	// Fast selects the reduced-resolution reference technology.
	Fast bool
	// Shards is StreamEstimator.Shards; 0 means 1 (sequential).
	Shards int
	// ProfileWindow, when nonzero, appends the power-vs-time profile
	// with that window in cycles.
	ProfileWindow uint64
}

// EstimateReport runs one streamed reference estimation and renders the
// exact report `xpower [-fast] [-j] [-profile]` prints for the same
// inputs. Cancelling ctx aborts at the next batch boundary with a typed
// cancelled fault.
func EstimateReport(ctx context.Context, p EstimateParams) (string, error) {
	w, err := resolveWorkload(p.Workload, "", "", false)
	if err != nil {
		return "", err
	}

	cfg := procgen.Default()
	tech := rtlpower.DefaultTechnology()
	if p.Fast {
		tech = rtlpower.FastTechnology()
	}

	proc, prog, err := w.Build(cfg)
	if err != nil {
		return "", err
	}
	est, err := rtlpower.New(proc, tech)
	if err != nil {
		return "", err
	}

	// One streamed pass, exactly as cmd/xpower: the ISS feeds
	// retired-instruction batches to the incremental estimator through
	// a bounded channel; the profile, when requested, hangs off the
	// same pass.
	st := est.Stream()
	st.Shards = p.Shards
	if st.Shards == 0 {
		st.Shards = 1
	}
	var acc *rtlpower.ProfileAccumulator
	if p.ProfileWindow > 0 {
		acc = rtlpower.NewProfileAccumulator(p.ProfileWindow)
		st.OnEntry = acc.OnEntry
	}
	res, err := rtlpower.RunStreamed(ctx, iss.New(proc), prog, iss.Options{}, st)
	if err != nil {
		return "", err
	}
	rep, err := st.Finish()
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "workload %s: %d instructions, %d cycles\n\n", w.Name, res.Stats.Retired, rep.Cycles)
	rows, err := rep.Breakdown(proc)
	if err != nil {
		return "", err
	}
	b.WriteString(rtlpower.FormatBreakdown(rows, cfg.ClockMHz, rep.Cycles))

	base, custom, err := rep.BaseCustomSplit(proc)
	if err != nil {
		return "", err
	}
	if custom > 0 {
		fmt.Fprintf(&b, "\nbase core: %.3f uJ (%.1f%%), custom hardware: %.3f uJ (%.1f%%)\n",
			base*1e-6, 100*base/rep.TotalPJ, custom*1e-6, 100*custom/rep.TotalPJ)
	}

	if acc != nil {
		b.WriteString("\n")
		b.WriteString(rtlpower.FormatProfile(acc.Points(), cfg.ClockMHz))
	}
	return b.String(), nil
}

// SimulateParams selects one ISS run (the xsim path: execution
// statistics, no power estimation).
type SimulateParams struct {
	// Workload is a registry name; Source is inline XT32 assembly
	// (base ISA) labeled SourceName. Exactly one of Workload/Source
	// must be set.
	Workload   string
	Source     string
	SourceName string
	// Vars appends the nonzero macro-model variables.
	Vars bool
}

// SimulateReport runs the ISS and renders the report `xsim [-vars]`
// prints for the same program.
func SimulateReport(ctx context.Context, p SimulateParams) (string, error) {
	w, err := resolveWorkload(p.Workload, p.Source, p.SourceName, true)
	if err != nil {
		return "", err
	}
	proc, prog, err := w.Build(procgen.Default())
	if err != nil {
		return "", err
	}
	res, err := iss.New(proc).RunContext(ctx, prog, iss.Options{})
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "workload %s (%d instructions)\n", w.Name, len(prog.Code))
	b.WriteString(res.Stats.String())
	if p.Vars {
		vars, err := core.Extract(proc.TIE, &res.Stats)
		if err != nil {
			return "", err
		}
		b.WriteString("macro-model variables:\n")
		for i, v := range vars {
			if v != 0 {
				fmt.Fprintf(&b, "  %-20s %14.1f\n", core.VarName(i), v)
			}
		}
	}
	return b.String(), nil
}

// LintParams selects one static analysis (the xlint plain-text path).
type LintParams struct {
	// Workload is a registry name; Source is inline XT32 assembly
	// (base ISA) labeled SourceName. Exactly one of Workload/Source
	// must be set.
	Workload   string
	Source     string
	SourceName string
	// Notes includes note-severity findings.
	Notes bool
	// Disable suppresses the named finding codes (validated; unknown
	// codes are an invalid request, mirroring `xlint -disable`).
	Disable []string
}

// LintReport runs the static analyzer and renders exactly what
// `xlint [-notes] [-disable]` prints in its default text mode, with the
// same 0/1 status. The analyzer itself is not cancellable, so ctx is
// honored at the phase boundaries (before assembling and before
// analyzing) — both phases are bounded by program size, not input data.
func LintReport(ctx context.Context, p LintParams) (string, int, error) {
	w, err := resolveWorkload(p.Workload, p.Source, p.SourceName, true)
	if err != nil {
		return "", StatusFailed, err
	}
	var opts []xlint.Option
	if len(p.Disable) > 0 {
		if err := xlint.ValidateCodes(p.Disable); err != nil {
			return "", StatusFailed, &InvalidRequestError{Msg: err.Error()}
		}
		opts = append(opts, xlint.Disable(p.Disable...))
	}
	if cerr := ctx.Err(); cerr != nil {
		return "", StatusFailed, cancelled(w.Name, "lint", cerr)
	}
	proc, prog, err := w.Build(procgen.Default())
	if err != nil {
		return "", StatusFailed, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return "", StatusFailed, cancelled(w.Name, "lint", cerr)
	}
	rep := xlint.Analyze(prog, proc, opts...)

	minSev := xlint.SevWarn
	if p.Notes {
		minSev = xlint.SevNote
	}
	shown := rep.Filter(minSev)
	status := StatusOK
	if rep.Count(xlint.SevWarn) > 0 {
		status = StatusDegraded
	}

	var b strings.Builder
	for _, f := range shown {
		fmt.Fprintf(&b, "%s:%s\n", prog.Name, f)
	}
	if status == StatusOK {
		fmt.Fprintf(&b, "%s: clean (%d instructions, %d blocks)\n",
			prog.Name, len(prog.Code), len(rep.CFG.Blocks))
	}
	return b.String(), status, nil
}
