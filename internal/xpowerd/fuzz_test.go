package xpowerd

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzReadFrame throws arbitrary byte streams at the frame decoder with
// a small cap. Whatever the peer sends, the decoder must return the
// payload or a typed error — never panic, and never hand back more
// bytes than the declared cap (the allocation bound: the payload buffer
// is sized from the validated header).
func FuzzReadFrame(f *testing.F) {
	header := func(n uint32) []byte {
		var h [4]byte
		binary.BigEndian.PutUint32(h[:], n)
		return h[:]
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add(header(0))
	f.Add(header(1 << 30))
	f.Add(append(header(5), []byte(`{"op"`)...))
	f.Add(append(header(2), []byte(`{}extra`)...))
	good := append(header(9), []byte(`{"op":"x"}`)...)
	f.Add(good)

	const cap = 256
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data), cap)
		if err != nil {
			if payload != nil {
				t.Fatalf("error %v must not also return a payload", err)
			}
			switch {
			case errors.Is(err, ErrFrameTooLarge),
				errors.Is(err, ErrFrameEmpty),
				errors.Is(err, ErrFrameTruncated),
				errors.Is(err, io.EOF):
			default:
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if len(payload) == 0 || len(payload) > cap {
			t.Fatalf("payload of %d bytes escaped the (0, %d] bound", len(payload), cap)
		}
		if uint32(len(payload)) != binary.BigEndian.Uint32(data[:4]) {
			t.Fatalf("payload length %d disagrees with header", len(payload))
		}
	})
}
