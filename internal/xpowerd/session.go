package xpowerd

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"xtenergy/internal/iss"
)

// session is one connection's request loop: read a frame under the
// read deadline, run the op (work ops through the bounded pool, health
// inline), write the response under the write deadline, repeat. Every
// failure mode — malformed frame, poisoned program, panicking pipeline,
// mid-flight disconnect — ends at worst this one session.
type session struct {
	srv  *Server
	conn net.Conn
	// busy is true while a request is between decode and response
	// write; the drain logic uses it to tell sessions it may close
	// immediately (idle) from sessions it must wait for.
	busy atomic.Bool
}

// serve runs the request loop. ctx is the server's session context:
// it ends only when the drain deadline force-cancels stragglers.
func (ss *session) serve(ctx context.Context) {
	defer ss.srv.unregister(ss)
	defer ss.conn.Close()
	br := bufio.NewReaderSize(ss.conn, 4<<10)
	for {
		// Per-frame read deadline: a peer that trickles bytes
		// (slowloris) or goes silent is cut off; an idle-but-healthy
		// client simply reconnects for its next command.
		ss.conn.SetReadDeadline(time.Now().Add(ss.srv.cfg.ReadTimeout))
		payload, err := ReadFrame(br, ss.srv.cfg.MaxFrame)
		if err != nil {
			// Protocol violations get a parting diagnostic; plain
			// disconnects and timeouts do not warrant a write to a
			// peer that is gone or hostile.
			if errors.Is(err, ErrFrameTooLarge) || errors.Is(err, ErrFrameEmpty) {
				ss.write(&Response{Status: StatusFailed, Error: &WireError{
					Code: ErrCodeProtocol, Msg: err.Error(), PC: -1,
				}})
			}
			return
		}
		ss.busy.Store(true)
		resp := ss.handle(ctx, payload)
		werr := ss.write(resp)
		ss.busy.Store(false)
		if werr != nil {
			return
		}
		// A drain that began while this request ran let it finish;
		// the session ends here instead of parking in another read.
		if ss.srv.health.draining.Load() {
			return
		}
	}
}

func (ss *session) write(resp *Response) error {
	ss.conn.SetWriteDeadline(time.Now().Add(ss.srv.cfg.WriteTimeout))
	return WriteFrame(ss.conn, resp)
}

// handle decodes and dispatches one request. The deferred recover is
// the session-level panic containment: whatever goes wrong composing
// the response, the daemon answers with a typed panic fault and lives.
func (ss *session) handle(ctx context.Context, payload []byte) (resp *Response) {
	defer func() {
		if r := recover(); r != nil {
			err := &iss.Fault{Kind: iss.FaultPanic, PC: -1, Msg: fmt.Sprint(r)}
			ss.srv.health.countFault(err)
			resp = &Response{Status: StatusFailed, Error: wireError(ErrCodeInternal, err)}
		}
	}()
	ss.srv.health.requests.Add(1)
	var req Request
	if err := json.Unmarshal(payload, &req); err != nil {
		return &Response{Status: StatusFailed, Error: &WireError{
			Code: ErrCodeProtocol, Msg: fmt.Sprintf("undecodable request: %v", err), PC: -1,
		}}
	}
	switch req.Op {
	case OpHealth:
		// Health bypasses the pool: it must answer exactly when the
		// pool is too saturated to.
		h := ss.srv.Health()
		return &Response{Status: h.status(), Health: h}
	case OpEstimate, OpSimulate, OpLint, OpProfile:
		return ss.runWork(ctx, &req)
	default:
		return &Response{Status: StatusFailed, Error: &WireError{
			Code: ErrCodeInvalid, Msg: fmt.Sprintf("unknown op %q", req.Op), PC: -1,
		}}
	}
}

// runWork submits one work op to the bounded pool and shapes the
// outcome into a response. Admission failure is the backpressure path:
// no pipeline work has started, and the client gets a fast, explicitly
// transient "unavailable".
func (ss *session) runWork(ctx context.Context, req *Request) *Response {
	var (
		out    string
		status int
		opErr  error
	)
	err := ss.srv.pool.Do(ctx, func(jctx context.Context) {
		// Worker-side panic containment: a poisoned program (or a
		// panicking chaos hook) becomes this request's typed fault.
		defer func() {
			if r := recover(); r != nil {
				opErr = &iss.Fault{Kind: iss.FaultPanic, Prog: req.Workload, PC: -1,
					Msg: fmt.Sprintf("op %s panicked: %v", req.Op, r)}
			}
		}()
		if hook := ss.srv.cfg.RequestHook; hook != nil {
			hook(req)
		}
		out, status, opErr = runOp(jctx, req)
	})
	switch {
	case errors.Is(err, ErrUnavailable), errors.Is(err, ErrDraining):
		ss.srv.health.shed.Add(1)
		return &Response{Status: StatusFailed, Error: &WireError{
			Code: ErrCodeUnavailable, Msg: err.Error(), PC: -1, Transient: true,
		}}
	case err != nil:
		// Session context ended mid-request (force-cancelled drain or
		// a dead connection): report a typed cancelled fault; the
		// write will likely fail too, which is fine.
		fault := cancelled(req.Workload, "session", err)
		ss.srv.health.countFault(fault)
		return &Response{Status: StatusFailed, Error: wireError(ErrCodeFault, fault)}
	}
	if opErr != nil {
		ss.srv.health.countFault(opErr)
		code := ErrCodeInternal
		var inv *InvalidRequestError
		if errors.As(opErr, &inv) {
			code = ErrCodeInvalid
		}
		return &Response{Status: StatusFailed, Error: wireError(code, opErr)}
	}
	return &Response{Status: status, Output: out}
}

// runOp dispatches to the shared pipeline entry points.
func runOp(ctx context.Context, req *Request) (out string, status int, err error) {
	switch req.Op {
	case OpEstimate:
		out, err = EstimateReport(ctx, EstimateParams{
			Workload: req.Workload, Fast: req.Fast,
			Shards: req.Shards, ProfileWindow: req.ProfileWindow, NoCache: req.NoCache,
		})
	case OpProfile:
		if req.ProfileWindow == 0 {
			return "", StatusFailed, invalidf("profile requires profile_window > 0")
		}
		out, err = EstimateReport(ctx, EstimateParams{
			Workload: req.Workload, Fast: req.Fast,
			Shards: req.Shards, ProfileWindow: req.ProfileWindow, NoCache: req.NoCache,
		})
	case OpSimulate:
		out, err = SimulateReport(ctx, SimulateParams{
			Workload: req.Workload, Source: req.Source, SourceName: req.SourceName,
			Vars: req.Vars, NoCache: req.NoCache,
		})
	case OpLint:
		return LintReport(ctx, LintParams{
			Workload: req.Workload, Source: req.Source, SourceName: req.SourceName,
			Notes: req.Notes, Disable: req.Disable, NoCache: req.NoCache,
		})
	default:
		return "", StatusFailed, invalidf("unknown op %q", req.Op)
	}
	if err != nil {
		return "", StatusFailed, err
	}
	return out, StatusOK, nil
}
