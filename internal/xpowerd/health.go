package xpowerd

import (
	"sync/atomic"

	"xtenergy/internal/iss"
	"xtenergy/internal/memo"
	"xtenergy/internal/rtlpower"
)

// Health is the server snapshot the health op returns. Its status
// follows the 0/1/2 convention: a serving daemon with admission
// headroom answers StatusOK, a saturated or draining daemon answers
// StatusDegraded (it is still up, but new work is or soon will be
// shed); StatusFailed is never sent for health — a daemon that cannot
// answer at all is simply unreachable.
type Health struct {
	// State is "serving" or "draining".
	State string `json:"state"`
	// ActiveSessions is the number of open connections.
	ActiveSessions int `json:"active_sessions"`
	// ActiveJobs and QueueDepth/QueueCapacity describe the worker
	// pool: jobs executing now, and the admission queue's fill level.
	ActiveJobs    int `json:"active_jobs"`
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Workers is the pool's fixed concurrency bound.
	Workers int `json:"workers"`
	// Kernel is the net-simulation walker tier in effect (runtime
	// feature selection, or an XTENERGY_KERNEL override) — the tier
	// every estimate this daemon serves is computed on.
	Kernel string `json:"kernel"`
	// Requests counts every decoded request since start; Shed counts
	// the ones rejected for load (queue full, connection limit,
	// draining).
	Requests uint64 `json:"requests"`
	Shed     uint64 `json:"shed"`
	// Faults counts failed work requests by iss.FaultKind name, with
	// untyped failures under "error".
	Faults map[string]uint64 `json:"faults,omitempty"`
	// Memo is the estimation engine's artifact-store accounting:
	// hits (by tier), misses, coalesced requests, evictions, and
	// corrupt-entry recoveries.
	Memo *memo.Counters `json:"memo,omitempty"`
}

// numFaultCounters is one slot per iss.FaultKind plus the trailing
// untyped-"error" slot.
const numFaultCounters = int(iss.FaultArtifact) + 2

// healthState is the server's always-on accounting: plain atomics so
// the hot request path never takes a lock for it.
type healthState struct {
	draining atomic.Bool
	sessions atomic.Int64
	requests atomic.Uint64
	shed     atomic.Uint64
	faults   [numFaultCounters]atomic.Uint64
}

// countFault records a failed work request under its fault kind.
func (h *healthState) countFault(err error) {
	slot := numFaultCounters - 1
	if f, ok := iss.AsFault(err); ok {
		slot = int(f.Kind)
	}
	h.faults[slot].Add(1)
}

// snapshot assembles the wire Health from the live counters. A nil
// pool (server not yet serving) reports zero pool fields.
func (h *healthState) snapshot(p *Pool) *Health {
	out := &Health{
		State:          "serving",
		ActiveSessions: int(h.sessions.Load()),
		Requests:       h.requests.Load(),
		Shed:           h.shed.Load(),
		Kernel:         rtlpower.SelectedKernel().String(),
	}
	if p != nil {
		out.ActiveJobs = p.Active()
		out.QueueDepth = p.QueueDepth()
		out.QueueCapacity = p.QueueCap()
		out.Workers = p.Workers()
	}
	if h.draining.Load() {
		out.State = "draining"
	}
	faults := make(map[string]uint64)
	for i := range h.faults {
		if n := h.faults[i].Load(); n > 0 {
			name := "error"
			if i < numFaultCounters-1 {
				name = iss.FaultKind(i).String()
			}
			faults[name] = n
		}
	}
	if len(faults) > 0 {
		out.Faults = faults
	}
	mc := Engine().Counters()
	out.Memo = &mc
	return out
}

// status is the health response's 0/1 answer: degraded once draining
// or once the admission queue is full (new work is being shed).
func (hl *Health) status() int {
	if hl.State != "serving" || (hl.QueueCapacity > 0 && hl.QueueDepth >= hl.QueueCapacity) {
		return StatusDegraded
	}
	return StatusOK
}
