// Package xpowerd is the estimation-as-a-service daemon: a long-running
// server that accepts concurrent estimate/lint/profile/simulate sessions
// over a length-prefixed JSON frame protocol on TCP and unix sockets,
// threading a per-session context into the existing streamed pipelines
// (rtlpower.RunStreamed / EstimateProgram, xlint) and mapping every
// typed iss.Fault onto structured wire errors.
//
// The robustness machinery lives one concern per file: protocol.go (the
// wire format and its hard frame-size cap), pool.go (the bounded worker
// pool with an explicit admission queue — overload yields fast
// "unavailable" responses instead of unbounded goroutines), session.go
// (per-connection request loop with read/write deadlines and panic
// containment), server.go (accept loop, connection limits, and the
// graceful drain state machine), health.go (queue depth, active
// sessions, and fault counters behind the "health" op), ops.go (the
// pipeline entry points, shared with the one-shot CLIs so remote
// responses are byte-identical by construction), and client.go (the
// dialer behind `xpower -remote` / `xlint -remote`).
package xpowerd

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"xtenergy/internal/iss"
)

// DefaultMaxFrame is the frame-size cap applied when Config.MaxFrame is
// zero: one mebibyte comfortably holds any request or report this
// service produces, and bounds what a malicious or broken peer can make
// the decoder allocate.
const DefaultMaxFrame = 1 << 20

// frameHeaderSize is the fixed big-endian length prefix in front of
// every JSON payload.
const frameHeaderSize = 4

// Typed frame-decoding failures. ReadFrame never panics and never
// allocates more than the declared cap, whatever bytes the peer sends;
// a frame declaring more than the cap is rejected from its header
// alone, before any payload allocation.
var (
	// ErrFrameTooLarge means the length prefix declared a payload
	// beyond the negotiated cap.
	ErrFrameTooLarge = errors.New("xpowerd: frame exceeds size cap")
	// ErrFrameEmpty means the length prefix declared a zero-byte
	// payload, which can never hold a JSON document.
	ErrFrameEmpty = errors.New("xpowerd: empty frame")
	// ErrFrameTruncated means the stream ended inside a frame (header
	// or payload) — a mid-frame disconnect or a truncated write.
	ErrFrameTruncated = errors.New("xpowerd: truncated frame")
)

// WriteFrame marshals v and writes it as one length-prefixed frame.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("xpowerd: encode frame: %w", err)
	}
	if len(payload) > int(^uint32(0)) {
		return fmt.Errorf("xpowerd: frame payload of %d bytes overflows the length prefix", len(payload))
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload, enforcing the size cap
// (0 means DefaultMaxFrame) before allocating anything for the body.
// Truncations, empty frames, and oversized declarations come back as
// typed errors so the session layer can tell a protocol violation from
// a plain disconnect.
func ReadFrame(r io.Reader, max uint32) ([]byte, error) {
	if max == 0 {
		max = DefaultMaxFrame
	}
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF // clean close between frames
		}
		return nil, fmt.Errorf("%w: %v", ErrFrameTruncated, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, ErrFrameEmpty
	}
	if n > max {
		return nil, fmt.Errorf("%w: declared %d bytes, cap %d", ErrFrameTooLarge, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFrameTruncated, err)
	}
	return payload, nil
}

// Ops accepted by the daemon. Estimate, Simulate, Lint, and Profile run
// on the bounded worker pool; Health is answered inline so it stays
// responsive under saturation.
const (
	OpEstimate = "estimate"
	OpSimulate = "simulate"
	OpLint     = "lint"
	OpProfile  = "profile"
	OpHealth   = "health"
)

// Request is one client command. Exactly one of Workload (a registry
// name) or Source (inline XT32 assembly, base ISA) selects the program
// for the work ops; Health takes neither.
type Request struct {
	// Op selects the operation: estimate, simulate, lint, profile, or
	// health.
	Op string `json:"op"`
	// Workload names a built-in workload from the registry.
	Workload string `json:"workload,omitempty"`
	// Source is inline XT32 assembly (base ISA) analyzed instead of a
	// named workload. Lint and simulate accept it; the reference
	// estimator requires a registry workload. SourceName labels the
	// inline program in reports (e.g. the client-side file path;
	// "inline" when empty).
	Source     string `json:"source,omitempty"`
	SourceName string `json:"source_name,omitempty"`
	// Fast selects the reduced-resolution reference technology
	// (estimate/profile only).
	Fast bool `json:"fast,omitempty"`
	// Shards is forwarded to rtlpower.StreamEstimator.Shards
	// (estimate/profile only; 0 means sequential).
	Shards int `json:"shards,omitempty"`
	// ProfileWindow is the power-vs-time window in cycles. Required for
	// profile; optional for estimate (appends the profile section,
	// exactly like `xpower -profile`).
	ProfileWindow uint64 `json:"profile_window,omitempty"`
	// Vars appends the macro-model variable section to a simulate
	// report (`xsim -vars`).
	Vars bool `json:"vars,omitempty"`
	// Notes includes note-severity findings in a lint report
	// (`xlint -notes`).
	Notes bool `json:"notes,omitempty"`
	// Disable suppresses the named lint finding codes
	// (`xlint -disable`).
	Disable []string `json:"disable,omitempty"`
	// NoCache bypasses the daemon's artifact store for this request:
	// the pipeline always runs, and nothing is read or written
	// (`xpower -no-cache` / `xlint -no-cache` over -remote).
	NoCache bool `json:"no_cache,omitempty"`
}

// Response statuses follow the CLIs' 0/1/2 exit semantics: 0 clean,
// 1 completed with findings or in a degraded state (lint warnings, a
// draining daemon answering health), 2 failed (fault, invalid request,
// or load shed).
const (
	StatusOK       = 0
	StatusDegraded = 1
	StatusFailed   = 2
)

// Stable WireError codes.
const (
	// ErrCodeInvalid is a request the daemon can never serve: unknown
	// op, unknown workload, missing program, bad lint codes.
	ErrCodeInvalid = "invalid"
	// ErrCodeUnavailable is backpressure: the admission queue or the
	// connection limit is full, or the daemon is draining. The request
	// was rejected fast and cheaply; retrying later may succeed.
	ErrCodeUnavailable = "unavailable"
	// ErrCodeFault carries a typed iss.Fault from the pipeline; the
	// fault site fields are populated.
	ErrCodeFault = "fault"
	// ErrCodeProtocol is a malformed frame (the session is closed after
	// reporting it — the stream can no longer be trusted) or an
	// undecodable request (frame boundaries intact, so the session
	// continues).
	ErrCodeProtocol = "protocol"
	// ErrCodeInternal is any other server-side failure.
	ErrCodeInternal = "internal"
)

// Response is one command's outcome.
type Response struct {
	// Status is the 0/1/2 outcome (see the Status constants).
	Status int `json:"status"`
	// Output is the report text, byte-identical to the one-shot CLI's
	// stdout for the same inputs (the CLIs render through the same
	// ops.go entry points).
	Output string `json:"output,omitempty"`
	// Error describes the failure when Status is StatusFailed.
	Error *WireError `json:"error,omitempty"`
	// Health is the server snapshot (health op only).
	Health *Health `json:"health,omitempty"`
}

// WireError is the structured error a failed request carries. Typed
// iss.Faults keep their taxonomy and site on the wire, so a remote
// caller can triage exactly like a local one.
type WireError struct {
	// Code is one of the ErrCode constants.
	Code string `json:"code"`
	// Msg is the human-readable detail.
	Msg string `json:"msg"`
	// FaultKind is the iss.FaultKind name ("mem-fault", "watchdog",
	// ...) when Code is ErrCodeFault.
	FaultKind string `json:"fault_kind,omitempty"`
	// Prog, PC, Cycle, and Addr are the fault site (PC is -1 when the
	// fault has no instruction site).
	Prog  string `json:"prog,omitempty"`
	PC    int    `json:"pc"`
	Cycle uint64 `json:"cycle,omitempty"`
	Addr  uint32 `json:"addr,omitempty"`
	// Transient marks a failure worth retrying (iss.Fault.IsTransient,
	// and every unavailable response).
	Transient bool `json:"transient,omitempty"`
}

// Error renders the wire error; the client returns it as the remote
// call's error.
func (e *WireError) Error() string {
	return fmt.Sprintf("xpowerd: remote %s: %s", e.Code, e.Msg)
}

// wireError builds the WireError for err, preserving a typed fault's
// kind and site when one is present.
func wireError(code string, err error) *WireError {
	we := &WireError{Code: code, Msg: err.Error(), PC: -1}
	if f, ok := iss.AsFault(err); ok {
		we.Code = ErrCodeFault
		we.FaultKind = f.Kind.String()
		we.Prog = f.Prog
		we.PC = f.PC
		we.Cycle = f.Cycle
		we.Addr = f.Addr
		we.Transient = f.IsTransient()
	}
	return we
}
