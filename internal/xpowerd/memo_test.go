package xpowerd_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"xtenergy/internal/engine"
	"xtenergy/internal/xpowerd"
)

// freshEngine routes the daemon ops through a new memory-only engine
// for the duration of the test, so counter assertions see only this
// test's traffic.
func freshEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e, err := engine.New(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	xpowerd.SetEngine(e)
	t.Cleanup(func() { xpowerd.SetEngine(nil) })
	return e
}

// TestDaemonCoalescesThunderingHerd drives N concurrent identical
// estimate requests over N connections and asserts the engine ran the
// pipeline exactly once — every other request was coalesced onto the
// in-flight computation or served from memory — and that all N
// responses are byte-identical.
func TestDaemonCoalescesThunderingHerd(t *testing.T) {
	const n = 8
	e := freshEngine(t)
	// Admit the whole herd at once: coalescing happens in the engine,
	// so every request must reach a worker concurrently rather than be
	// shed by the admission queue.
	addr, _ := startServer(t, func(cfg *xpowerd.Config) {
		cfg.Workers = n
		cfg.QueueDepth = n
	})

	var wg sync.WaitGroup
	outputs := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client, err := xpowerd.Dial(addr, 5*time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			defer client.Close()
			resp, err := client.Do(context.Background(), &xpowerd.Request{
				Op: xpowerd.OpEstimate, Workload: "accumulate", Fast: true,
			})
			if err != nil {
				errs[i] = err
				return
			}
			outputs[i] = resp.Output
		}(i)
	}
	wg.Wait()

	for i := range outputs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if outputs[i] == "" || outputs[i] != outputs[0] {
			t.Fatalf("request %d output differs:\n%s\nvs\n%s", i, outputs[i], outputs[0])
		}
	}
	c := e.Counters()
	if c.Misses != 1 {
		t.Fatalf("herd of %d identical requests cost %d pipeline executions, want exactly 1 (counters %+v)", n, c.Misses, c)
	}
	if c.Coalesced+c.MemHits != n-1 {
		t.Fatalf("coalesced %d + mem hits %d != %d (counters %+v)", c.Coalesced, c.MemHits, n-1, c)
	}

	// The health op surfaces the same counters on the wire.
	client := dialClient(t, addr)
	resp, err := client.Do(context.Background(), &xpowerd.Request{Op: xpowerd.OpHealth})
	if err != nil {
		t.Fatal(err)
	}
	m := resp.Health.Memo
	if m == nil {
		t.Fatal("health response carries no memo counters")
	}
	if m.Misses != 1 || m.Coalesced+m.MemHits != n-1 {
		t.Fatalf("wire memo counters %+v disagree with the herd", m)
	}
}

// TestDaemonNoCacheBypassesStore sends the same request cached, then
// with no_cache: the bypass must leave the store untouched (no reads,
// no writes) while still answering byte-identically.
func TestDaemonNoCacheBypassesStore(t *testing.T) {
	e := freshEngine(t)
	addr, _ := startServer(t, nil)
	client := dialClient(t, addr)

	req := &xpowerd.Request{Op: xpowerd.OpSimulate, Workload: "gcd", Vars: true}
	warm, err := client.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Counters()
	if before.Misses != 1 {
		t.Fatalf("priming request: counters %+v", before)
	}

	uncached := *req
	uncached.NoCache = true
	resp, err := client.Do(context.Background(), &uncached)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Output != warm.Output {
		t.Fatalf("no_cache output differs from cached output:\n%s\nvs\n%s", resp.Output, warm.Output)
	}
	if after := e.Counters(); after != before {
		t.Fatalf("no_cache touched the store: %+v -> %+v", before, after)
	}
}
