package xpowerd

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// occupy parks one job in the pool and returns a release func plus a
// channel that closes once the job is actually running on a worker.
func occupy(t *testing.T, p *Pool) (release func(), running chan struct{}) {
	t.Helper()
	running = make(chan struct{})
	gate := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- p.Do(context.Background(), func(context.Context) {
			close(running)
			<-gate
		})
	}()
	select {
	case <-running:
	case <-time.After(5 * time.Second):
		t.Fatal("held job never reached a worker")
	}
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			close(gate)
			if err := <-errc; err != nil {
				t.Errorf("held job failed: %v", err)
			}
		}
	}, running
}

func TestPoolShedsWhenQueueFull(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	release, _ := occupy(t, p) // worker busy
	defer release()

	// Fill the one queue slot with a job that will run after release.
	queuedDone := make(chan error, 1)
	queuedRan := make(chan struct{})
	go func() {
		queuedDone <- p.Do(context.Background(), func(context.Context) { close(queuedRan) })
	}()
	// Wait for it to occupy the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for p.QueueDepth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p.QueueDepth() != 1 {
		t.Fatalf("queue depth = %d, want 1", p.QueueDepth())
	}

	// Worker busy + queue full: admission must shed, not block.
	start := time.Now()
	err := p.Do(context.Background(), func(context.Context) { t.Error("shed job must not run") })
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Do on saturated pool = %v, want ErrUnavailable", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("shedding took %v; it must be immediate", d)
	}

	release()
	if err := <-queuedDone; err != nil {
		t.Fatalf("queued job failed: %v", err)
	}
	<-queuedRan
}

func TestPoolDrainingAfterClose(t *testing.T) {
	p := NewPool(1, 4)
	p.Close()
	err := p.Do(context.Background(), func(context.Context) { t.Error("job must not run after Close") })
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("Do after Close = %v, want ErrDraining", err)
	}
	// Close is idempotent.
	p.Close()
}

func TestPoolSkipsAbandonedQueuedJobs(t *testing.T) {
	p := NewPool(1, 2)
	defer p.Close()
	release, _ := occupy(t, p)

	// Queue a job, then cancel its context before a worker frees up.
	ctx, cancel := context.WithCancel(context.Background())
	ran := make(chan struct{}, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- p.Do(ctx, func(context.Context) { ran <- struct{}{} })
	}()
	deadline := time.Now().Add(5 * time.Second)
	for p.QueueDepth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned Do = %v, want context.Canceled", err)
	}

	release()
	// The worker must skip the abandoned job, not run it.
	select {
	case <-ran:
		t.Fatal("worker ran a job whose caller had given up")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestPoolSurvivesPanickingJob(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	// The session layer recovers inside its closure; this exercises the
	// pool's own backstop for jobs submitted without one.
	if err := p.Do(context.Background(), func(context.Context) { panic("boom") }); err != nil {
		t.Fatalf("Do = %v", err)
	}
	// The lone worker must still be alive to take the next job.
	ran := false
	if err := p.Do(context.Background(), func(context.Context) { ran = true }); err != nil {
		t.Fatalf("Do after panic = %v", err)
	}
	if !ran {
		t.Fatal("worker did not survive the panicking job")
	}
}

func TestPoolDefaults(t *testing.T) {
	p := NewPool(0, -1)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", p.Workers())
	}
	if p.QueueCap() != 0 {
		t.Fatalf("QueueCap() = %d, want 0", p.QueueCap())
	}
}
