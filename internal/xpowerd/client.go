package xpowerd

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"time"
)

// Client is one connection to a running daemon, used by the CLIs'
// -remote mode. It is not safe for concurrent use; open one client per
// goroutine (the daemon multiplexes across connections, not within
// one).
type Client struct {
	conn net.Conn
	max  uint32
}

// Dial connects to a daemon. addr is either "unix:<path>" or a TCP
// host:port.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	network, target := "tcp", addr
	if p, ok := strings.CutPrefix(addr, "unix:"); ok {
		network, target = "unix", p
	}
	conn, err := net.DialTimeout(network, target, timeout)
	if err != nil {
		return nil, fmt.Errorf("xpowerd: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, max: DefaultMaxFrame}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and reads its response, honoring ctx's deadline
// and cancellation through the connection deadline. A response with a
// wire error returns it as the call's error (alongside the response,
// whose Status is preserved for exit-code mapping).
func (c *Client) Do(ctx context.Context, req *Request) (*Response, error) {
	deadline := time.Time{}
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	c.conn.SetDeadline(deadline)
	// Cancellation (not just deadline expiry) must unblock a client
	// parked in a read: force the deadline on ctx cancel, and make the
	// watcher's exit synchronous so it never outlives the call.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			c.conn.SetDeadline(time.Now())
		case <-watchDone:
		}
	}()

	if err := WriteFrame(c.conn, req); err != nil {
		return nil, fmt.Errorf("xpowerd: send: %w", err)
	}
	payload, err := ReadFrame(c.conn, c.max)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("xpowerd: receive: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(payload, &resp); err != nil {
		return nil, fmt.Errorf("xpowerd: undecodable response: %w", err)
	}
	if resp.Error != nil {
		return &resp, resp.Error
	}
	return &resp, nil
}
