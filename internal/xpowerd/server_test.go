package xpowerd_test

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"xtenergy/internal/chaos"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/xpowerd"
)

// startServer boots a daemon on an ephemeral TCP port and returns its
// address plus a shutdown func that drains it and returns Serve's error.
// Shutdown is idempotent and always runs via t.Cleanup.
func startServer(t *testing.T, mut func(*xpowerd.Config)) (addr string, shutdown func() error) {
	t.Helper()
	cfg := xpowerd.Config{
		TCPAddr:      "127.0.0.1:0",
		DrainTimeout: 10 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	srv := xpowerd.New(cfg)
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()

	var serveErr error
	stopped := false
	shutdown = func() error {
		if !stopped {
			stopped = true
			cancel()
			select {
			case serveErr = <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("Serve did not return after drain")
			}
		}
		return serveErr
	}
	t.Cleanup(func() { shutdown() })
	return srv.Addrs()[0].String(), shutdown
}

func dialClient(t *testing.T, addr string) *xpowerd.Client {
	t.Helper()
	client, err := xpowerd.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

const tinySource = "start:\n  movi a2, 5\n  movi a3, 7\n  add a2, a2, a3\n  ret\n"

func TestRemoteEstimateByteIdentical(t *testing.T) {
	addr, shutdown := startServer(t, nil)
	client := dialClient(t, addr)

	resp, err := client.Do(context.Background(), &xpowerd.Request{
		Op: xpowerd.OpEstimate, Workload: "accumulate", Fast: true, ProfileWindow: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != xpowerd.StatusOK {
		t.Fatalf("status = %d, want 0", resp.Status)
	}

	// The one-shot xpower CLI renders through the same entry point; the
	// remote output must match it byte for byte.
	local, err := xpowerd.EstimateReport(context.Background(), xpowerd.EstimateParams{
		Workload: "accumulate", Fast: true, ProfileWindow: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Output != local {
		t.Fatalf("remote output differs from local:\n--- remote ---\n%s\n--- local ---\n%s", resp.Output, local)
	}

	// A second request on the same connection must work (sessions are
	// request loops, not one-shots).
	resp2, err := client.Do(context.Background(), &xpowerd.Request{Op: xpowerd.OpHealth})
	if err != nil {
		t.Fatal(err)
	}
	h := resp2.Health
	if h == nil || h.State != "serving" || h.Workers < 1 || h.Requests < 2 {
		t.Fatalf("health snapshot off: %+v", h)
	}
	if h.Kernel != rtlpower.SelectedKernel().String() {
		t.Fatalf("health Kernel = %q, want %q", h.Kernel, rtlpower.SelectedKernel())
	}
	if h.ActiveSessions != 1 {
		t.Fatalf("ActiveSessions = %d, want 1", h.ActiveSessions)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
}

func TestRemoteLintStatusSemantics(t *testing.T) {
	addr, _ := startServer(t, nil)
	client := dialClient(t, addr)

	// Clean workload: status 0.
	resp, err := client.Do(context.Background(), &xpowerd.Request{Op: xpowerd.OpLint, Workload: "rs_gffold"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != xpowerd.StatusOK || !strings.Contains(resp.Output, "clean") {
		t.Fatalf("clean lint: status %d output %q", resp.Status, resp.Output)
	}

	// Stress kernel with warnings: status 1 (degraded, not an error).
	resp, err = client.Do(context.Background(), &xpowerd.Request{Op: xpowerd.OpLint, Workload: "tp01_alu_mix"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != xpowerd.StatusDegraded || resp.Output == "" {
		t.Fatalf("warning lint: status %d output %q", resp.Status, resp.Output)
	}

	local, localStatus, err := xpowerd.LintReport(context.Background(), xpowerd.LintParams{Workload: "tp01_alu_mix"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Output != local || resp.Status != localStatus {
		t.Fatalf("remote lint diverges from local: status %d vs %d", resp.Status, localStatus)
	}
}

func TestRemoteSimulateInlineSource(t *testing.T) {
	addr, _ := startServer(t, nil)
	client := dialClient(t, addr)
	resp, err := client.Do(context.Background(), &xpowerd.Request{
		Op: xpowerd.OpSimulate, Source: tinySource, SourceName: "tiny.s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != xpowerd.StatusOK || !strings.Contains(resp.Output, "workload tiny.s") {
		t.Fatalf("simulate: status %d output %q", resp.Status, resp.Output)
	}
}

func TestInvalidRequestsGetTypedErrors(t *testing.T) {
	addr, _ := startServer(t, nil)
	client := dialClient(t, addr)
	cases := []struct {
		name string
		req  *xpowerd.Request
	}{
		{"unknown op", &xpowerd.Request{Op: "explode"}},
		{"unknown workload", &xpowerd.Request{Op: xpowerd.OpEstimate, Workload: "no-such"}},
		{"profile without window", &xpowerd.Request{Op: xpowerd.OpProfile, Workload: "gcd"}},
		{"estimate without workload", &xpowerd.Request{Op: xpowerd.OpEstimate}},
		{"bad lint code", &xpowerd.Request{Op: xpowerd.OpLint, Workload: "gcd", Disable: []string{"bogus"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := client.Do(context.Background(), tc.req)
			var we *xpowerd.WireError
			if !errors.As(err, &we) {
				t.Fatalf("err = %v, want a WireError", err)
			}
			if we.Code != xpowerd.ErrCodeInvalid {
				t.Fatalf("code = %q, want invalid (%s)", we.Code, we.Msg)
			}
			if resp.Status != xpowerd.StatusFailed {
				t.Fatalf("status = %d, want 2", resp.Status)
			}
		})
	}
}

func TestMalformedFramesAndRecovery(t *testing.T) {
	addr, _ := startServer(t, nil)

	// Oversized declaration: one protocol-error response, then the
	// session is closed (the stream cannot be trusted any more).
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<31)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	payload, err := xpowerd.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(payload), xpowerd.ErrCodeProtocol) {
		t.Fatalf("oversized frame response = %s", payload)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := xpowerd.ReadFrame(conn, 0); err == nil {
		t.Fatal("session stayed open after an oversized frame")
	}

	// Undecodable JSON in a well-formed frame: protocol error, but the
	// session survives (frame boundaries are intact).
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	binary.BigEndian.PutUint32(hdr[:], 1)
	conn2.Write(hdr[:])
	conn2.Write([]byte("{"))
	payload, err = xpowerd.ReadFrame(conn2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(payload), "undecodable") {
		t.Fatalf("malformed JSON response = %s", payload)
	}
	if err := xpowerd.WriteFrame(conn2, &xpowerd.Request{Op: xpowerd.OpHealth}); err != nil {
		t.Fatal(err)
	}
	payload, err = xpowerd.ReadFrame(conn2, 0)
	if err != nil {
		t.Fatalf("session did not survive an undecodable request: %v", err)
	}
	if !strings.Contains(string(payload), "serving") {
		t.Fatalf("health after bad JSON = %s", payload)
	}

	// Mid-frame disconnect: the daemon just drops the session.
	conn3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	tc := &chaos.TruncateConn{Conn: conn3, Budget: 6}
	xpowerd.WriteFrame(tc, &xpowerd.Request{Op: xpowerd.OpEstimate, Workload: "accumulate"})

	// The daemon must still be healthy after all three abuses.
	client := dialClient(t, addr)
	if _, err := client.Do(context.Background(), &xpowerd.Request{Op: xpowerd.OpHealth}); err != nil {
		t.Fatalf("daemon unhealthy after malformed frames: %v", err)
	}
}

func TestSlowlorisDisconnected(t *testing.T) {
	addr, _ := startServer(t, func(c *xpowerd.Config) {
		c.ReadTimeout = 150 * time.Millisecond
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	slow := &chaos.SlowConn{Conn: conn, Delay: 30 * time.Millisecond}
	// ~25 bytes at 30ms/byte can never beat a 150ms frame deadline.
	go xpowerd.WriteFrame(slow, &xpowerd.Request{Op: xpowerd.OpHealth})

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := xpowerd.ReadFrame(conn, 0); err == nil {
		t.Fatal("server answered a slowloris client instead of cutting it off")
	}

	// The daemon still serves prompt clients.
	client := dialClient(t, addr)
	if _, err := client.Do(context.Background(), &xpowerd.Request{Op: xpowerd.OpHealth}); err != nil {
		t.Fatalf("daemon unhealthy after slowloris: %v", err)
	}
}

func TestConnectionLimitSheds(t *testing.T) {
	addr, _ := startServer(t, func(c *xpowerd.Config) { c.MaxConns = 1 })

	// First client occupies the one slot (a round-trip guarantees it is
	// registered before the second dial).
	client := dialClient(t, addr)
	if _, err := client.Do(context.Background(), &xpowerd.Request{Op: xpowerd.OpHealth}); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	payload, err := xpowerd.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(payload), xpowerd.ErrCodeUnavailable) ||
		!strings.Contains(string(payload), `"transient":true`) {
		t.Fatalf("over-limit connection got %s, want transient unavailable", payload)
	}
	if _, err := xpowerd.ReadFrame(conn, 0); err == nil {
		t.Fatal("over-limit connection was kept open")
	}
}

func TestBackpressureShedsRequests(t *testing.T) {
	hold := chaos.NewHoldRequests()
	addr, _ := startServer(t, func(c *xpowerd.Config) {
		c.Workers = 1
		c.QueueDepth = -1 // no queue: the single worker is the capacity
		c.RequestHook = hold.Hook("gcd")
	})

	// Park a request on the lone worker.
	heldResp := make(chan error, 1)
	go func() {
		client, err := xpowerd.Dial(addr, 5*time.Second)
		if err != nil {
			heldResp <- err
			return
		}
		defer client.Close()
		resp, err := client.Do(context.Background(), &xpowerd.Request{
			Op: xpowerd.OpSimulate, Workload: "gcd",
		})
		if err == nil && resp.Status != xpowerd.StatusOK {
			err = errors.New("held request finished with non-zero status")
		}
		heldResp <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for hold.Held() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if hold.Held() != 1 {
		t.Fatal("held request never reached the worker")
	}

	// Saturated pool: a second session's work request is shed fast.
	client := dialClient(t, addr)
	start := time.Now()
	resp, err := client.Do(context.Background(), &xpowerd.Request{
		Op: xpowerd.OpSimulate, Workload: "accumulate",
	})
	var we *xpowerd.WireError
	if !errors.As(err, &we) || we.Code != xpowerd.ErrCodeUnavailable || !we.Transient {
		t.Fatalf("saturated request: err %v, want transient unavailable", err)
	}
	if resp.Status != xpowerd.StatusFailed {
		t.Fatalf("shed status = %d, want 2", resp.Status)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("load shedding took %v; it must not wait on the pipeline", d)
	}

	// Health answers inline even while the pool is saturated.
	hresp, err := client.Do(context.Background(), &xpowerd.Request{Op: xpowerd.OpHealth})
	if err != nil {
		t.Fatal(err)
	}
	if hresp.Health.ActiveJobs != 1 || hresp.Health.Shed < 1 {
		t.Fatalf("health under saturation: %+v", hresp.Health)
	}

	hold.Release()
	if err := <-heldResp; err != nil {
		t.Fatalf("held request did not complete after release: %v", err)
	}
}

func TestPanicContainment(t *testing.T) {
	addr, shutdown := startServer(t, func(c *xpowerd.Config) {
		c.RequestHook = chaos.PanicOnWorkload("gcd")
	})
	client := dialClient(t, addr)

	resp, err := client.Do(context.Background(), &xpowerd.Request{Op: xpowerd.OpEstimate, Workload: "gcd"})
	var we *xpowerd.WireError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want a WireError", err)
	}
	if we.Code != xpowerd.ErrCodeFault || we.FaultKind != "panic" {
		t.Fatalf("poisoned request: code %q kind %q, want fault/panic", we.Code, we.FaultKind)
	}
	if resp.Status != xpowerd.StatusFailed {
		t.Fatalf("status = %d, want 2", resp.Status)
	}

	// Same session, same daemon: an untainted request still succeeds,
	// and the fault shows up in the health counters.
	resp, err = client.Do(context.Background(), &xpowerd.Request{Op: xpowerd.OpEstimate, Workload: "accumulate", Fast: true})
	if err != nil || resp.Status != xpowerd.StatusOK {
		t.Fatalf("daemon did not survive the poisoned request: %v (status %d)", err, resp.Status)
	}
	hresp, err := client.Do(context.Background(), &xpowerd.Request{Op: xpowerd.OpHealth})
	if err != nil {
		t.Fatal(err)
	}
	if hresp.Health.Faults["panic"] != 1 {
		t.Fatalf("fault counters = %v, want panic:1", hresp.Health.Faults)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("drain after contained panic returned %v", err)
	}
}

func TestGracefulDrainLetsInflightFinish(t *testing.T) {
	hold := chaos.NewHoldRequests()
	addr, shutdown := startServer(t, func(c *xpowerd.Config) {
		c.Workers = 1
		c.RequestHook = hold.Hook("gcd")
	})

	inflight := make(chan *xpowerd.Response, 1)
	inflightErr := make(chan error, 1)
	go func() {
		client, err := xpowerd.Dial(addr, 5*time.Second)
		if err != nil {
			inflightErr <- err
			return
		}
		defer client.Close()
		resp, err := client.Do(context.Background(), &xpowerd.Request{Op: xpowerd.OpSimulate, Workload: "gcd"})
		inflight <- resp
		inflightErr <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for hold.Held() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if hold.Held() != 1 {
		t.Fatal("request never reached the worker")
	}

	// Begin drain while the request is in flight, then let it finish.
	drained := make(chan error, 1)
	go func() { drained <- shutdown() }()
	time.Sleep(100 * time.Millisecond) // let the drain state machine engage
	hold.Release()

	if err := <-drained; err != nil {
		t.Fatalf("drain with a finishing request returned %v, want nil", err)
	}
	if err := <-inflightErr; err != nil {
		t.Fatalf("in-flight request failed during graceful drain: %v", err)
	}
	resp := <-inflight
	if resp.Status != xpowerd.StatusOK || resp.Output == "" {
		t.Fatalf("in-flight response incomplete: status %d output %q", resp.Status, resp.Output)
	}

	// New connections are refused once draining.
	if conn, err := net.Dial("tcp", addr); err == nil {
		conn.Close()
		t.Fatal("daemon still accepting after drain")
	}
}

func TestForcedDrainAfterDeadline(t *testing.T) {
	hold := chaos.NewHoldRequests()
	addr, shutdown := startServer(t, func(c *xpowerd.Config) {
		c.Workers = 1
		c.DrainTimeout = 100 * time.Millisecond
		c.RequestHook = hold.Hook("gcd")
	})

	reqErr := make(chan error, 1)
	go func() {
		client, err := xpowerd.Dial(addr, 5*time.Second)
		if err != nil {
			reqErr <- err
			return
		}
		defer client.Close()
		_, err = client.Do(context.Background(), &xpowerd.Request{Op: xpowerd.OpSimulate, Workload: "gcd"})
		reqErr <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for hold.Held() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if hold.Held() != 1 {
		t.Fatal("request never reached the worker")
	}

	// The hook never yields within the deadline: drain must force.
	drained := make(chan error, 1)
	go func() { drained <- shutdown() }()
	time.Sleep(300 * time.Millisecond) // well past DrainTimeout
	hold.Release()                     // the wedged op finally returns; the pool can close

	if err := <-drained; !errors.Is(err, xpowerd.ErrDrainForced) {
		t.Fatalf("drain = %v, want ErrDrainForced", err)
	}
	if err := <-reqErr; err == nil {
		t.Fatal("force-cancelled client reported success")
	}
}
