package xpowerd

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"
)

// Config describes one daemon instance. The zero value of every knob
// has a safe default (see withDefaults); at least one of TCPAddr /
// UnixPath must be set before Listen.
type Config struct {
	// TCPAddr is the TCP listen address ("" disables TCP).
	TCPAddr string
	// UnixPath is the unix-socket path ("" disables the socket). A
	// stale socket file from a crashed predecessor is removed on bind.
	UnixPath string
	// Workers bounds concurrent pipeline runs (0 = GOMAXPROCS).
	Workers int
	// QueueDepth is the admission queue in front of the workers;
	// requests beyond Workers+QueueDepth are shed with "unavailable"
	// (0 = 2x workers, <0 = no queue).
	QueueDepth int
	// MaxConns bounds open sessions; connections beyond it receive one
	// "unavailable" frame and are closed (0 = 64).
	MaxConns int
	// MaxFrame caps request/response frames (0 = DefaultMaxFrame).
	MaxFrame uint32
	// ReadTimeout is the per-frame read deadline: a peer that cannot
	// deliver a whole frame within it (slowloris, stalled link, or an
	// idle session) is disconnected (0 = 30s).
	ReadTimeout time.Duration
	// WriteTimeout is the per-response write deadline (0 = 30s).
	WriteTimeout time.Duration
	// DrainTimeout bounds graceful drain: after stop-accept, in-flight
	// sessions get this long to finish before their contexts are
	// force-cancelled (0 = 15s).
	DrainTimeout time.Duration
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
	// RequestHook, when non-nil, observes every decoded work request
	// before it runs. It is the chaos-injection seam (internal/chaos
	// uses it to poison selected requests); leave nil in production.
	// It runs inside the session's panic containment, so a panicking
	// hook costs one failed response, not the daemon.
	RequestHook func(*Request)
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 64
	}
	if c.MaxFrame == 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// ErrDrainForced is returned by Serve when the drain deadline expired
// with sessions still in flight and they had to be force-cancelled. The
// daemon still exits with every goroutine accounted for; the error only
// reports that some client saw a cancelled fault instead of its result.
var ErrDrainForced = errors.New("xpowerd: drain deadline exceeded, in-flight sessions force-cancelled")

// Server is one daemon instance: accept loops over the configured
// listeners, a session per connection, and the shared worker pool.
//
// Lifecycle: New -> Listen -> Serve(ctx). Cancelling ctx starts the
// drain state machine: stop accepting -> shed new requests -> let
// in-flight sessions finish under DrainTimeout -> force-cancel
// stragglers -> close the pool. Serve returns nil on a clean drain.
type Server struct {
	cfg       Config
	pool      *Pool
	health    *healthState
	listeners []net.Listener

	mu       sync.Mutex
	sessions map[*session]struct{}
}

// New builds a server; call Listen before Serve.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		health:   &healthState{},
		sessions: make(map[*session]struct{}),
	}
}

// Listen binds the configured TCP and/or unix listeners. It is split
// from Serve so callers (and tests) can learn the bound addresses —
// e.g. with TCPAddr "127.0.0.1:0" — before any client dials.
func (s *Server) Listen() error {
	if s.cfg.TCPAddr == "" && s.cfg.UnixPath == "" {
		return fmt.Errorf("xpowerd: no listen address configured")
	}
	if s.cfg.TCPAddr != "" {
		l, err := net.Listen("tcp", s.cfg.TCPAddr)
		if err != nil {
			return fmt.Errorf("xpowerd: listen tcp: %w", err)
		}
		s.listeners = append(s.listeners, l)
	}
	if s.cfg.UnixPath != "" {
		// A previous instance that died without cleanup leaves a stale
		// socket file that would fail the bind; removing a path nothing
		// is listening on is safe.
		os.Remove(s.cfg.UnixPath)
		l, err := net.Listen("unix", s.cfg.UnixPath)
		if err != nil {
			s.closeListeners()
			return fmt.Errorf("xpowerd: listen unix: %w", err)
		}
		s.listeners = append(s.listeners, l)
	}
	return nil
}

// Addrs returns the bound listener addresses (valid after Listen).
func (s *Server) Addrs() []net.Addr {
	var out []net.Addr
	for _, l := range s.listeners {
		out = append(out, l.Addr())
	}
	return out
}

// Health returns a live server snapshot (also served as the health op).
func (s *Server) Health() *Health { return s.health.snapshot(s.pool) }

func (s *Server) closeListeners() {
	for _, l := range s.listeners {
		l.Close()
	}
}

// Serve runs the daemon until ctx is cancelled, then drains. It returns
// nil when every in-flight session finished within DrainTimeout,
// ErrDrainForced when stragglers were force-cancelled, and a listener
// error if accepting failed outright. In every case all session and
// worker goroutines have exited by the time Serve returns.
func (s *Server) Serve(ctx context.Context) error {
	if len(s.listeners) == 0 {
		return fmt.Errorf("xpowerd: Serve before Listen")
	}
	s.pool = NewPool(s.cfg.Workers, s.cfg.QueueDepth)

	// Session contexts are NOT derived from ctx: cancelling ctx means
	// "begin drain", and in-flight sessions must be allowed to finish.
	// Only the drain deadline pulls this trigger.
	sessCtx, forceCancel := context.WithCancel(context.Background())
	defer forceCancel()

	var acceptWG, sessWG sync.WaitGroup
	for _, l := range s.listeners {
		acceptWG.Add(1)
		go func(l net.Listener) {
			defer acceptWG.Done()
			s.acceptLoop(l, sessCtx, &sessWG)
		}(l)
	}
	s.cfg.Logf("xpowerd: serving on %v (workers=%d queue=%d maxconns=%d)",
		s.Addrs(), s.cfg.Workers, s.cfg.QueueDepth, s.cfg.MaxConns)

	<-ctx.Done()

	// Drain state machine.
	s.health.draining.Store(true)
	s.closeListeners()
	acceptWG.Wait()
	s.cfg.Logf("xpowerd: draining: %d session(s) in flight, deadline %v",
		int(s.health.sessions.Load()), s.cfg.DrainTimeout)

	// Idle sessions (parked in a frame read) have nothing in flight;
	// closing their connections releases them immediately. Busy ones
	// notice the drain flag after writing their current response.
	s.mu.Lock()
	for sess := range s.sessions {
		if !sess.busy.Load() {
			sess.conn.Close()
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		sessWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		err = ErrDrainForced
		forceCancel()
		s.mu.Lock()
		n := len(s.sessions)
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		s.cfg.Logf("xpowerd: drain deadline exceeded, force-cancelling %d session(s)", n)
		<-done
	}
	s.pool.Close()
	if err == nil {
		s.cfg.Logf("xpowerd: drain complete")
	}
	return err
}

// acceptLoop admits connections on one listener until it closes,
// shedding connections beyond MaxConns with one unavailable frame.
func (s *Server) acceptLoop(l net.Listener, sessCtx context.Context, sessWG *sync.WaitGroup) {
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.health.draining.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept failure (fd exhaustion and friends):
			// back off briefly instead of spinning, and keep serving
			// the sessions we already have.
			s.cfg.Logf("xpowerd: accept: %v", err)
			time.Sleep(10 * time.Millisecond)
			continue
		}
		sess := &session{srv: s, conn: conn}
		if !s.register(sess) {
			s.health.shed.Add(1)
			// Shed without a session goroutine lingering: one best-
			// effort unavailable frame under the write deadline.
			go func() {
				conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
				WriteFrame(conn, &Response{Status: StatusFailed, Error: &WireError{
					Code: ErrCodeUnavailable, Msg: "connection limit reached", PC: -1, Transient: true,
				}})
				conn.Close()
			}()
			continue
		}
		sessWG.Add(1)
		go func() {
			defer sessWG.Done()
			sess.serve(sessCtx)
		}()
	}
}

// register admits a session under the connection limit; false means
// shed (limit reached or draining).
func (s *Server) register(sess *session) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.health.draining.Load() || len(s.sessions) >= s.cfg.MaxConns {
		return false
	}
	s.sessions[sess] = struct{}{}
	s.health.sessions.Add(1)
	return true
}

func (s *Server) unregister(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
	s.health.sessions.Add(-1)
}
