package xpowerd

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"xtenergy/internal/iss"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{Op: OpLint, Workload: "gcd", Notes: true, Disable: []string{"dead-write"}}
	if err := WriteFrame(&buf, req); err != nil {
		t.Fatal(err)
	}
	resp := &Response{Status: StatusDegraded, Output: "findings\n"}
	if err := WriteFrame(&buf, resp); err != nil {
		t.Fatal(err)
	}

	payload, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(payload), `"op":"lint"`) {
		t.Fatalf("first frame = %s", payload)
	}
	payload, err = ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(payload), `"status":1`) {
		t.Fatalf("second frame = %s", payload)
	}
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("after last frame: want io.EOF, got %v", err)
	}
}

func TestReadFrameTypedErrors(t *testing.T) {
	header := func(n uint32) []byte {
		var h [4]byte
		binary.BigEndian.PutUint32(h[:], n)
		return h[:]
	}
	cases := []struct {
		name string
		in   []byte
		max  uint32
		want error
	}{
		{"oversized", header(1 << 30), 1 << 20, ErrFrameTooLarge},
		{"barely over cap", header(65), 64, ErrFrameTooLarge},
		{"empty", header(0), 0, ErrFrameEmpty},
		{"truncated header", []byte{0, 0}, 0, ErrFrameTruncated},
		{"truncated payload", append(header(10), 'x', 'y'), 0, ErrFrameTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadFrame(bytes.NewReader(tc.in), tc.max)
			if !errors.Is(err, tc.want) {
				t.Fatalf("ReadFrame(%x) = %v, want %v", tc.in, err, tc.want)
			}
		})
	}
}

func TestReadFrameAtCap(t *testing.T) {
	payload := bytes.Repeat([]byte{'a'}, 64)
	var buf bytes.Buffer
	var h [4]byte
	binary.BigEndian.PutUint32(h[:], 64)
	buf.Write(h[:])
	buf.Write(payload)
	got, err := ReadFrame(&buf, 64)
	if err != nil {
		t.Fatalf("a frame exactly at the cap must pass: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch")
	}
}

func TestWireErrorPreservesFault(t *testing.T) {
	f := &iss.Fault{Kind: iss.FaultMem, Prog: "gcd", PC: 12, Cycle: 99, Addr: 0xdeadbeef, Msg: "boom"}
	we := wireError(ErrCodeInternal, f)
	if we.Code != ErrCodeFault {
		t.Fatalf("code = %q, want fault", we.Code)
	}
	if we.FaultKind != "mem-fault" || we.Prog != "gcd" || we.PC != 12 || we.Cycle != 99 || we.Addr != 0xdeadbeef {
		t.Fatalf("fault site lost on the wire: %+v", we)
	}
	transient := &iss.Fault{Kind: iss.FaultMeasurement, PC: -1, Transient: true}
	if we := wireError(ErrCodeInternal, transient); !we.Transient {
		t.Fatal("transient flag lost on the wire")
	}
	plain := errors.New("plain")
	if we := wireError(ErrCodeInternal, plain); we.Code != ErrCodeInternal || we.FaultKind != "" {
		t.Fatalf("untyped error should stay %q: %+v", ErrCodeInternal, we)
	}
}
