package tie

import (
	"testing"

	"xtenergy/internal/hwlib"
)

func noop(_ *State, _ Operands) uint32 { return 0 }

func simpleInstr(name string) *Instruction {
	return &Instruction{
		Name: name, Latency: 1, ReadsGeneral: true, WritesGeneral: true,
		Datapath: []DatapathElem{
			{Component: hwlib.Component{Name: name + "_u", Cat: hwlib.AddSubCmp, Width: 32}},
		},
		Semantics: noop,
	}
}

func TestStateLifecycle(t *testing.T) {
	s := NewState(4)
	if len(s.Regs) != 4 {
		t.Fatalf("state has %d regs", len(s.Regs))
	}
	s.Regs[2] = 99
	c := s.Clone()
	c.Regs[2] = 1
	if s.Regs[2] != 99 {
		t.Fatal("Clone shares storage")
	}
	s.Reset()
	if s.Regs[2] != 0 {
		t.Fatal("Reset did not zero registers")
	}
}

func TestInstructionValidate(t *testing.T) {
	if err := simpleInstr("ok").Validate(); err != nil {
		t.Fatalf("valid instruction rejected: %v", err)
	}
	bad := []*Instruction{
		{Name: "", Latency: 1, Semantics: noop, Datapath: simpleInstr("x").Datapath},
		{Name: "x", Latency: 0, Semantics: noop, Datapath: simpleInstr("x").Datapath},
		{Name: "x", Latency: 100, Semantics: noop, Datapath: simpleInstr("x").Datapath},
		{Name: "x", Latency: 1, Semantics: nil, Datapath: simpleInstr("x").Datapath},
		{Name: "x", Latency: 1, Semantics: noop}, // empty datapath
		{Name: "x", Latency: 1, Semantics: noop, Datapath: []DatapathElem{
			{Component: hwlib.Component{Name: "d", Cat: hwlib.AddSubCmp, Width: 32}},
			{Component: hwlib.Component{Name: "d", Cat: hwlib.Shifter, Width: 16}},
		}}, // duplicate component name within the instruction
		{Name: "x", Latency: 1, Semantics: noop, Datapath: []DatapathElem{
			{Component: hwlib.Component{Name: "bad", Cat: hwlib.Table, Width: 8}},
		}}, // invalid component (table without entries)
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad instruction %d accepted", i)
		}
	}
}

func TestExtensionValidate(t *testing.T) {
	good := &Extension{Name: "e", Instructions: []*Instruction{simpleInstr("a"), simpleInstr("b")}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid extension rejected: %v", err)
	}
	bad := []*Extension{
		{Name: "", Instructions: []*Instruction{simpleInstr("a")}},
		{Name: "e"}, // no instructions
		{Name: "e", NumCustomRegs: -1, Instructions: []*Instruction{simpleInstr("a")}},
		{Name: "e", NumCustomRegs: 1000, Instructions: []*Instruction{simpleInstr("a")}},
		{Name: "e", Instructions: []*Instruction{simpleInstr("a"), simpleInstr("a")}}, // dup names
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad extension %d accepted", i)
		}
	}
}

func TestTableValue(t *testing.T) {
	e := &Extension{Name: "e", Tables: map[string][]uint32{"t": {10, 20, 30}}}
	if e.TableValue("t", 1) != 20 {
		t.Fatal("table lookup wrong")
	}
	if e.TableValue("t", 4) != 20 { // wraps
		t.Fatal("table lookup does not wrap")
	}
	if e.TableValue("missing", 0) != 0 {
		t.Fatal("missing table not zero")
	}
}

func TestAccessesGeneralRegfile(t *testing.T) {
	in := simpleInstr("x")
	if !in.AccessesGeneralRegfile() {
		t.Fatal("reads+writes instruction does not access regfile")
	}
	in.ReadsGeneral = false
	if !in.AccessesGeneralRegfile() {
		t.Fatal("writes-only instruction does not access regfile")
	}
	in.WritesGeneral = false
	if in.AccessesGeneralRegfile() {
		t.Fatal("stateless instruction accesses regfile")
	}
}
