package tie

import (
	"fmt"

	"xtenergy/internal/hwlib"
)

// Compiled is the output of the TIE compiler: the extension with opcodes
// assigned, the flattened custom-hardware component list (including the
// automatically generated control logic), and the per-instruction
// activation map consumed by the resource-usage analyzer and the RTL
// power model.
type Compiled struct {
	// Ext is the validated source extension; nil for a base-only
	// configuration.
	Ext *Extension

	// Components is the flattened list of all custom hardware instances.
	// Generated control blocks (TIE decoder, bypass/interlock logic)
	// come first, followed by each instruction's datapath in order.
	Components []hwlib.Component

	// ActiveByInstr maps a custom instruction ID to the indices (into
	// Components) of the hardware active while it executes.
	ActiveByInstr [][]int

	// BusTapped lists the indices of components latched off the shared
	// operand buses; they are additionally activated for one cycle by
	// every base arithmetic instruction (the paper's base-to-custom
	// side effect).
	BusTapped []int

	// ControlIdx lists the indices of the generated control blocks; they
	// are active for every cycle of every custom instruction.
	ControlIdx []int

	byName map[string]uint8
}

// Compile runs the TIE compiler on ext. A nil extension compiles to a
// base-only configuration with no custom hardware.
//
// Mirroring the paper's description of the TIE flow, the compiler
// automatically generates the control logic required by the custom
// instructions — the TIE instruction decoder, bypass logic and interlock
// detection — as logic/reduction/mux category components whose size
// scales with the number of custom instructions, plus the custom
// register file declared by the extension.
func Compile(ext *Extension) (*Compiled, error) {
	if ext == nil {
		return &Compiled{byName: map[string]uint8{}}, nil
	}
	if err := ext.Validate(); err != nil {
		return nil, err
	}

	c := &Compiled{Ext: ext, byName: make(map[string]uint8, len(ext.Instructions))}

	// Generated control logic. Widths scale with instruction count so
	// that richer extensions pay more control overhead.
	n := len(ext.Instructions)
	decoder := hwlib.Component{Name: "tie_decoder", Cat: hwlib.LogicRedMux, Width: clampWidth(8 + 2*n)}
	bypass := hwlib.Component{Name: "tie_bypass", Cat: hwlib.LogicRedMux, Width: clampWidth(16 + n)}
	interlock := hwlib.Component{Name: "tie_interlock", Cat: hwlib.LogicRedMux, Width: clampWidth(8 + n)}
	c.Components = append(c.Components, decoder, bypass, interlock)
	c.ControlIdx = []int{0, 1, 2}

	if ext.NumCustomRegs > 0 {
		// The custom register file is shared state; it is active on every
		// custom instruction cycle (read/write/bypass paths).
		crf := hwlib.Component{
			Name:  "tie_regfile",
			Cat:   hwlib.CustomRegister,
			Width: clampWidth(ext.NumCustomRegs * 32 / 8), // scaled footprint
		}
		c.Components = append(c.Components, crf)
		c.ControlIdx = append(c.ControlIdx, len(c.Components)-1)
	}

	seen := make(map[string]int) // component name -> global index (sharing)
	for id, in := range ext.Instructions {
		if _, dup := c.byName[in.Name]; dup {
			return nil, fmt.Errorf("tie: duplicate instruction name %q", in.Name)
		}
		c.byName[in.Name] = uint8(id)

		var active []int
		active = append(active, c.ControlIdx...)
		for _, e := range in.Datapath {
			idx, ok := seen[e.Component.Name]
			if !ok {
				idx = len(c.Components)
				c.Components = append(c.Components, e.Component)
				seen[e.Component.Name] = idx
				if e.OnBus {
					c.BusTapped = append(c.BusTapped, idx)
				}
			} else if c.Components[idx] != e.Component {
				return nil, fmt.Errorf("tie: component %q redefined with different parameters", e.Component.Name)
			}
			active = append(active, idx)
		}
		c.ActiveByInstr = append(c.ActiveByInstr, active)
	}
	return c, nil
}

func clampWidth(w int) int {
	if w < 1 {
		return 1
	}
	if w > 128 {
		return 128
	}
	return w
}

// NumInstructions returns the number of custom instructions.
func (c *Compiled) NumInstructions() int {
	if c.Ext == nil {
		return 0
	}
	return len(c.Ext.Instructions)
}

// Instruction returns the spec of custom instruction id.
func (c *Compiled) Instruction(id uint8) (*Instruction, error) {
	if c.Ext == nil || int(id) >= len(c.Ext.Instructions) {
		return nil, fmt.Errorf("tie: no custom instruction with id %d", id)
	}
	return c.Ext.Instructions[id], nil
}

// IDByName returns the opcode id assigned to the named custom
// instruction.
func (c *Compiled) IDByName(name string) (uint8, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// CategoryActiveWeights returns, for instruction id, the summed
// complexity f(C) per hardware category of the components active during
// one of its cycles. This is the per-cycle contribution of the
// instruction to the ten structural macro-model variables.
func (c *Compiled) CategoryActiveWeights(id uint8) ([hwlib.NumCategories]float64, error) {
	var w [hwlib.NumCategories]float64
	if c.Ext == nil || int(id) >= len(c.ActiveByInstr) {
		return w, fmt.Errorf("tie: no custom instruction with id %d", id)
	}
	for _, idx := range c.ActiveByInstr[id] {
		comp := c.Components[idx]
		w[comp.Cat] += comp.Complexity()
	}
	return w, nil
}

// BusTapWeights returns the summed complexity per category of the
// bus-tapped components (activated by base arithmetic instructions).
func (c *Compiled) BusTapWeights() [hwlib.NumCategories]float64 {
	var w [hwlib.NumCategories]float64
	for _, idx := range c.BusTapped {
		comp := c.Components[idx]
		w[comp.Cat] += comp.Complexity()
	}
	return w
}
