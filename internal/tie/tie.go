// Package tie models Tensilica-Instruction-Extension-like custom
// instructions for the XT32 extensible processor.
//
// An Extension is a named set of custom instructions plus shared custom
// state (TIE registers). Each instruction declares its pipeline latency,
// whether it reads/writes the general register file (the source of the
// macro-model's custom-side-effect variable), a datapath built from
// hwlib components (the source of the structural macro-model variables),
// and executable semantics.
//
// The Compile step plays the role of the TIE compiler described in the
// paper (Section II): it validates the specification, assigns opcodes,
// and automatically generates the control logic — TIE instruction
// decoder, bypass logic, interlock detection, immediate generation —
// required to integrate the custom hardware with the base core.
package tie

import (
	"fmt"

	"xtenergy/internal/hwlib"
)

// State is the custom (TIE) architectural state shared by the
// instructions of one extension: a small file of 32-bit custom registers.
type State struct {
	Regs []uint32
}

// NewState allocates TIE state with n custom registers.
func NewState(n int) *State { return &State{Regs: make([]uint32, n)} }

// Reset zeroes all custom registers.
func (s *State) Reset() {
	for i := range s.Regs {
		s.Regs[i] = 0
	}
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := &State{Regs: make([]uint32, len(s.Regs))}
	copy(c.Regs, s.Regs)
	return c
}

// Operands carries a custom instruction's runtime inputs to its
// semantics function.
type Operands struct {
	// RsVal and RtVal are the values read from the general register file
	// (meaningful only when the instruction declares ReadsGeneral).
	RsVal, RtVal uint32
	// Rd, Rs, Rt are the raw instruction fields, available for indexing
	// custom registers.
	Rd, Rs, Rt uint8
	// Imm is reserved for immediate-operand custom instructions.
	Imm int32
}

// SemFunc implements a custom instruction: it may read and update the
// TIE state and returns the value destined for the general register Rd
// (ignored unless the instruction declares WritesGeneral).
type SemFunc func(s *State, op Operands) uint32

// DatapathElem is one hardware component instance in a custom
// instruction's datapath.
type DatapathElem struct {
	hwlib.Component
	// OnBus marks a component whose inputs are latched directly off the
	// base processor's shared operand buses. Such components see spurious
	// switching activity whenever a base arithmetic instruction drives
	// the buses (the paper's Example 1: the base ADD activates custom
	// hardware in its second cycle because the custom hardware and the
	// ALU share the same operand buses).
	OnBus bool
}

// Instruction is the specification of one TIE custom instruction.
type Instruction struct {
	// Name is the assembler mnemonic, unique within the extension
	// (lower case, e.g. "gfmul").
	Name string
	// Latency is the number of execution cycles the instruction occupies
	// ("custom instructions ... can take multiple clock cycles").
	// It must be at least 1.
	Latency int
	// ReadsGeneral reports that Rs/Rt are read from the general register
	// file; WritesGeneral that Rd is written back to it. Either one makes
	// the instruction contribute to the macro-model side-effect variable
	// N_cir (cycles of custom instructions accessing the generic
	// register file).
	ReadsGeneral, WritesGeneral bool
	// ImmOperand selects the immediate form: the third assembler operand
	// is a small signed constant (-32..31) delivered in Operands.Imm
	// instead of a register. The TIE compiler's generated
	// immediate-generation logic decodes it.
	ImmOperand bool
	// Datapath lists the custom hardware the instruction activates while
	// it executes.
	Datapath []DatapathElem
	// Semantics executes the instruction.
	Semantics SemFunc
}

// AccessesGeneralRegfile reports whether the instruction touches the
// general register file at all.
func (in *Instruction) AccessesGeneralRegfile() bool {
	return in.ReadsGeneral || in.WritesGeneral
}

// Validate checks one instruction spec.
func (in *Instruction) Validate() error {
	if in.Name == "" {
		return fmt.Errorf("tie: instruction with empty name")
	}
	if in.Latency < 1 || in.Latency > 64 {
		return fmt.Errorf("tie: instruction %q has latency %d, want 1..64", in.Name, in.Latency)
	}
	if in.Semantics == nil {
		return fmt.Errorf("tie: instruction %q has no semantics", in.Name)
	}
	if len(in.Datapath) == 0 {
		return fmt.Errorf("tie: instruction %q has an empty datapath", in.Name)
	}
	seen := make(map[string]bool, len(in.Datapath))
	for _, e := range in.Datapath {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("tie: instruction %q: %w", in.Name, err)
		}
		if seen[e.Component.Name] {
			return fmt.Errorf("tie: instruction %q has duplicate component %q", in.Name, e.Component.Name)
		}
		seen[e.Component.Name] = true
	}
	return nil
}

// Extension is a named set of custom instructions sharing TIE state.
type Extension struct {
	// Name identifies the extension (e.g. "rs_gfmac").
	Name string
	// NumCustomRegs is the number of 32-bit custom registers the
	// extension's state holds.
	NumCustomRegs int
	// Instructions are the custom instructions, in opcode-assignment
	// order.
	Instructions []*Instruction
	// Tables holds named lookup-table contents addressable by the
	// semantics functions (index parallel to nothing; looked up by name).
	Tables map[string][]uint32
}

// TableValue returns entry i of the named table, with index wrapping so
// that semantics functions cannot fault on synthetic data.
func (e *Extension) TableValue(name string, i uint32) uint32 {
	t := e.Tables[name]
	if len(t) == 0 {
		return 0
	}
	return t[int(i)%len(t)]
}

// Validate checks the whole extension spec.
func (e *Extension) Validate() error {
	if e.Name == "" {
		return fmt.Errorf("tie: extension with empty name")
	}
	if e.NumCustomRegs < 0 || e.NumCustomRegs > 256 {
		return fmt.Errorf("tie: extension %q declares %d custom registers, want 0..256", e.Name, e.NumCustomRegs)
	}
	if len(e.Instructions) == 0 {
		return fmt.Errorf("tie: extension %q has no instructions", e.Name)
	}
	if len(e.Instructions) > 64 {
		return fmt.Errorf("tie: extension %q has %d instructions, max 64", e.Name, len(e.Instructions))
	}
	names := make(map[string]bool, len(e.Instructions))
	for _, in := range e.Instructions {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("tie: extension %q: %w", e.Name, err)
		}
		if names[in.Name] {
			return fmt.Errorf("tie: extension %q has duplicate instruction %q", e.Name, in.Name)
		}
		names[in.Name] = true
	}
	return nil
}

// Empty returns an extension with no custom instructions, representing a
// pure base-processor configuration. It is nil-safe to compile.
func Empty() *Extension { return nil }

// Merge combines several extensions into one processor extension, the
// way multiple TIE files combine into one configuration. Custom-register
// indices are rebased transparently: each source extension's semantics
// see only their own slice of the merged state. Component and table
// names are prefixed with the source extension's name to keep them
// distinct; instruction mnemonics must already be unique across the
// sources.
func Merge(name string, exts ...*Extension) (*Extension, error) {
	if name == "" {
		return nil, fmt.Errorf("tie: merged extension needs a name")
	}
	if len(exts) == 0 {
		return nil, fmt.Errorf("tie: nothing to merge")
	}
	out := &Extension{Name: name, Tables: map[string][]uint32{}}
	seen := map[string]string{}
	offset := 0
	for _, e := range exts {
		if e == nil {
			return nil, fmt.Errorf("tie: cannot merge a nil extension")
		}
		if err := e.Validate(); err != nil {
			return nil, err
		}
		for tname, tv := range e.Tables {
			out.Tables[e.Name+"."+tname] = tv
		}
		base, n := offset, e.NumCustomRegs
		for _, in := range e.Instructions {
			if prev, dup := seen[in.Name]; dup {
				return nil, fmt.Errorf("tie: instruction %q defined by both %s and %s", in.Name, prev, e.Name)
			}
			seen[in.Name] = e.Name
			dp := make([]DatapathElem, len(in.Datapath))
			for i, el := range in.Datapath {
				el.Component.Name = e.Name + "." + el.Component.Name
				dp[i] = el
			}
			sem := in.Semantics
			merged := &Instruction{
				Name:          in.Name,
				Latency:       in.Latency,
				ReadsGeneral:  in.ReadsGeneral,
				WritesGeneral: in.WritesGeneral,
				ImmOperand:    in.ImmOperand,
				Datapath:      dp,
				Semantics: func(s *State, op Operands) uint32 {
					// The source semantics address registers 0..n-1 of
					// their own extension; hand them the rebased window.
					view := &State{Regs: s.Regs[base : base+n]}
					return sem(view, op)
				},
			}
			if n == 0 {
				merged.Semantics = sem
			}
			out.Instructions = append(out.Instructions, merged)
		}
		offset += n
	}
	out.NumCustomRegs = offset
	return out, out.Validate()
}
