package tie

import (
	"testing"

	"xtenergy/internal/hwlib"
)

func testExt() *Extension {
	return &Extension{
		Name:          "t",
		NumCustomRegs: 2,
		Instructions: []*Instruction{
			{
				Name: "mul16", Latency: 2, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []DatapathElem{
					{Component: hwlib.Component{Name: "mul", Cat: hwlib.Multiplier, Width: 16}, OnBus: true},
					{Component: hwlib.Component{Name: "acc", Cat: hwlib.CustomRegister, Width: 32}},
				},
				Semantics: func(_ *State, op Operands) uint32 { return op.RsVal * op.RtVal },
			},
			{
				Name: "share", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []DatapathElem{
					{Component: hwlib.Component{Name: "acc", Cat: hwlib.CustomRegister, Width: 32}},
					{Component: hwlib.Component{Name: "xorer", Cat: hwlib.LogicRedMux, Width: 32}},
				},
				Semantics: noop,
			},
		},
	}
}

func TestCompileNil(t *testing.T) {
	c, err := Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInstructions() != 0 || len(c.Components) != 0 {
		t.Fatal("nil extension compiled to non-empty hardware")
	}
	if _, err := c.Instruction(0); err == nil {
		t.Fatal("instruction lookup on empty compile succeeded")
	}
}

func TestCompileGeneratesControlLogic(t *testing.T) {
	c, err := Compile(testExt())
	if err != nil {
		t.Fatal(err)
	}
	// Decoder, bypass, interlock + custom regfile.
	if len(c.ControlIdx) != 4 {
		t.Fatalf("control blocks = %d, want 4", len(c.ControlIdx))
	}
	names := map[string]bool{}
	for _, comp := range c.Components {
		names[comp.Name] = true
	}
	for _, want := range []string{"tie_decoder", "tie_bypass", "tie_interlock", "tie_regfile"} {
		if !names[want] {
			t.Fatalf("generated control block %q missing", want)
		}
	}
}

func TestCompileNoRegfileWhenNoCustomRegs(t *testing.T) {
	ext := testExt()
	ext.NumCustomRegs = 0
	c, err := Compile(ext)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.IDByName("mul16"); !ok {
		t.Fatal("instruction missing")
	}
	for _, comp := range c.Components {
		if comp.Name == "tie_regfile" {
			t.Fatal("custom regfile generated despite zero registers")
		}
	}
}

func TestCompileSharesComponents(t *testing.T) {
	c, err := Compile(testExt())
	if err != nil {
		t.Fatal(err)
	}
	// "acc" appears in both instructions but must exist once.
	count := 0
	for _, comp := range c.Components {
		if comp.Name == "acc" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("shared component instantiated %d times", count)
	}
	// Both instructions' active sets include it.
	accIdx := -1
	for i, comp := range c.Components {
		if comp.Name == "acc" {
			accIdx = i
		}
	}
	for id := 0; id < 2; id++ {
		found := false
		for _, idx := range c.ActiveByInstr[id] {
			if idx == accIdx {
				found = true
			}
		}
		if !found {
			t.Fatalf("instruction %d does not activate shared component", id)
		}
	}
}

func TestCompileRejectsConflictingShare(t *testing.T) {
	ext := testExt()
	// Same name, different width.
	ext.Instructions[1].Datapath[0].Component.Width = 64
	if _, err := Compile(ext); err == nil {
		t.Fatal("conflicting component redefinition accepted")
	}
}

func TestCompileBusTaps(t *testing.T) {
	c, err := Compile(testExt())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.BusTapped) != 1 {
		t.Fatalf("bus taps = %d, want 1", len(c.BusTapped))
	}
	if c.Components[c.BusTapped[0]].Name != "mul" {
		t.Fatal("wrong component tapped")
	}
	w := c.BusTapWeights()
	wantMul := hwlib.Component{Name: "mul", Cat: hwlib.Multiplier, Width: 16}.Complexity()
	if w[hwlib.Multiplier] != wantMul {
		t.Fatalf("bus tap weight = %g, want %g", w[hwlib.Multiplier], wantMul)
	}
}

func TestCategoryActiveWeights(t *testing.T) {
	c, err := Compile(testExt())
	if err != nil {
		t.Fatal(err)
	}
	id, ok := c.IDByName("mul16")
	if !ok {
		t.Fatal("mul16 missing")
	}
	w, err := c.CategoryActiveWeights(id)
	if err != nil {
		t.Fatal(err)
	}
	// Multiplier 16-bit: (16/32)^2 = 0.25.
	if w[hwlib.Multiplier] != 0.25 {
		t.Fatalf("multiplier weight = %g, want 0.25", w[hwlib.Multiplier])
	}
	// Control logic contributes logic/red/mux weight on every custom
	// instruction.
	if w[hwlib.LogicRedMux] <= 0 {
		t.Fatal("control logic weight missing")
	}
	// Custom register: instruction's acc (32-bit -> 1) + generated
	// regfile.
	if w[hwlib.CustomRegister] <= 1 {
		t.Fatalf("custom register weight = %g, want > 1", w[hwlib.CustomRegister])
	}
	if _, err := c.CategoryActiveWeights(99); err == nil {
		t.Fatal("weights for bogus id")
	}
}

func TestIDAssignmentOrder(t *testing.T) {
	c, err := Compile(testExt())
	if err != nil {
		t.Fatal(err)
	}
	id0, _ := c.IDByName("mul16")
	id1, _ := c.IDByName("share")
	if id0 != 0 || id1 != 1 {
		t.Fatalf("ids = %d,%d; want 0,1", id0, id1)
	}
	in, err := c.Instruction(0)
	if err != nil || in.Name != "mul16" {
		t.Fatalf("Instruction(0) = %v, %v", in, err)
	}
}

func TestCompileValidates(t *testing.T) {
	if _, err := Compile(&Extension{Name: ""}); err == nil {
		t.Fatal("invalid extension compiled")
	}
}

func TestMergeExtensions(t *testing.T) {
	a := &Extension{
		Name:          "alpha",
		NumCustomRegs: 2,
		Tables:        map[string][]uint32{"t": {1, 2, 3}},
		Instructions: []*Instruction{{
			Name: "inca", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
			Datapath: []DatapathElem{{
				Component: hwlib.Component{Name: "u", Cat: hwlib.AddSubCmp, Width: 32},
			}},
			Semantics: func(s *State, op Operands) uint32 {
				s.Regs[0]++ // extension-local register 0
				return s.Regs[0]
			},
		}},
	}
	b := &Extension{
		Name:          "beta",
		NumCustomRegs: 1,
		Instructions: []*Instruction{{
			Name: "incb", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
			Datapath: []DatapathElem{{
				Component: hwlib.Component{Name: "u", Cat: hwlib.Shifter, Width: 16},
			}},
			Semantics: func(s *State, op Operands) uint32 {
				s.Regs[0] += 10 // beta's register 0, rebased in the merge
				return s.Regs[0]
			},
		}},
	}
	m, err := Merge("combo", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCustomRegs != 3 {
		t.Fatalf("merged regs = %d, want 3", m.NumCustomRegs)
	}
	// Component names are namespaced, so same-named components coexist.
	comp, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	foundA, foundB := false, false
	for _, c := range comp.Components {
		switch c.Name {
		case "alpha.u":
			foundA = true
		case "beta.u":
			foundB = true
		}
	}
	if !foundA || !foundB {
		t.Fatal("namespaced components missing")
	}
	// Rebased state: inca writes merged reg 0, incb writes merged reg 2.
	st := NewState(3)
	ia, _ := comp.IDByName("inca")
	ib, _ := comp.IDByName("incb")
	insA, _ := comp.Instruction(ia)
	insB, _ := comp.Instruction(ib)
	insA.Semantics(st, Operands{})
	insB.Semantics(st, Operands{})
	if st.Regs[0] != 1 || st.Regs[1] != 0 || st.Regs[2] != 10 {
		t.Fatalf("rebased state wrong: %v", st.Regs)
	}
	// Tables are namespaced.
	if m.TableValue("alpha.t", 1) != 2 {
		t.Fatal("merged table missing")
	}
}

func TestMergeConflicts(t *testing.T) {
	mk := func(extName, insName string) *Extension {
		return &Extension{
			Name: extName,
			Instructions: []*Instruction{{
				Name: insName, Latency: 1, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []DatapathElem{{
					Component: hwlib.Component{Name: "u", Cat: hwlib.AddSubCmp, Width: 32},
				}},
				Semantics: noop,
			}},
		}
	}
	if _, err := Merge("m", mk("a", "dup"), mk("b", "dup")); err == nil {
		t.Fatal("duplicate mnemonic merge accepted")
	}
	if _, err := Merge("", mk("a", "x")); err == nil {
		t.Fatal("unnamed merge accepted")
	}
	if _, err := Merge("m"); err == nil {
		t.Fatal("empty merge accepted")
	}
	if _, err := Merge("m", nil); err == nil {
		t.Fatal("nil merge accepted")
	}
}

// A merged extension must run end-to-end on the simulator.
func TestMergedExtensionSimulates(t *testing.T) {
	m, err := Merge("combo2", testExt(), &Extension{
		Name:          "extra",
		NumCustomRegs: 1,
		Instructions: []*Instruction{{
			Name: "spin2", Latency: 2,
			Datapath: []DatapathElem{{
				Component: hwlib.Component{Name: "r", Cat: hwlib.CustomRegister, Width: 32},
			}},
			Semantics: func(s *State, _ Operands) uint32 { s.Regs[0]++; return 0 },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(m); err != nil {
		t.Fatal(err)
	}
}
