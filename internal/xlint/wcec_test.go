package xlint_test

import (
	"math"
	"testing"

	"xtenergy/internal/core"
	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/randprog"
	"xtenergy/internal/workloads"
	"xtenergy/internal/xlint"
)

// tripCounter counts dynamic back-edge traversals from a streamed trace:
// a transition from the last pc of a term's source block to the term's
// header pc is one traversal.
type tripCounter struct {
	keys   map[[2]int]int // (latch last pc, header pc) -> term index
	counts []float64
	prev   int
}

func newTripCounter(cfg *xlint.CFG, terms []xlint.WCECTerm) *tripCounter {
	tc := &tripCounter{keys: make(map[[2]int]int), counts: make([]float64, len(terms)), prev: -1}
	for i, t := range terms {
		from := cfg.BlockAt(t.FromPC)
		tc.keys[[2]int{from.End - 1, t.HeaderPC}] = i
	}
	return tc
}

func (tc *tripCounter) Sink(batch []iss.TraceEntry) error {
	for i := range batch {
		pc := int(batch[i].PC)
		if tc.prev >= 0 {
			if idx, ok := tc.keys[[2]int{tc.prev, pc}]; ok {
				tc.counts[idx]++
			}
		}
		tc.prev = pc
	}
	return nil
}

// TestWCECBracketEveryWorkload is the acceptance criterion for the
// concrete bounds: for every registered workload the measured energy
// must satisfy BCEC ≤ measured ≤ WCEC, the dynamic back-edge traversal
// counts must lie inside the inferred trip intervals, and at least 90%
// of the corpus must get finite bounds at all.
func TestWCECBracketEveryWorkload(t *testing.T) {
	model := boundsModel()
	cfgP := procgen.Default()
	all := workloads.All()
	bounded := 0
	for _, w := range all {
		w := w
		var wasBounded bool
		t.Run(w.Name, func(t *testing.T) {
			proc, prog, err := w.Build(cfgP)
			if err != nil {
				t.Fatal(err)
			}
			rep := xlint.Analyze(prog, proc)
			wc, err := xlint.ComputeWCEC(rep.CFG, rep.Abs, proc, model)
			if err != nil {
				t.Fatal(err)
			}
			wasBounded = wc.Bounded

			tc := newTripCounter(rep.CFG, wc.Terms)
			res, err := iss.New(proc).Run(prog, iss.Options{TraceSink: tc.Sink})
			if err != nil {
				t.Fatal(err)
			}
			for i, term := range wc.Terms {
				k := tc.counts[i]
				if k < term.TripLo-eps || k > term.TripHi+eps {
					t.Errorf("back edge pc %d -> pc %d: dynamic trips %g outside inferred [%g, %g] (%s)",
						term.FromPC, term.HeaderPC, k, term.TripLo, term.TripHi, term.Source)
				}
			}

			actual, err := core.Extract(proc.TIE, &res.Stats)
			if err != nil {
				t.Fatal(err)
			}
			est := model.EstimatePJ(actual)
			if est < wc.BCEC-eps {
				t.Errorf("measured %.3f pJ below BCEC %.3f pJ", est, wc.BCEC)
			}
			if est > wc.WCEC+eps {
				t.Errorf("measured %.3f pJ above WCEC %.3f pJ", est, wc.WCEC)
			}
		})
		if wasBounded {
			bounded++
		}
	}
	if frac := float64(bounded) / float64(len(all)); frac < 0.9 {
		t.Errorf("only %d/%d workloads (%.0f%%) got finite [BCEC, WCEC]; want >= 90%%",
			bounded, len(all), 100*frac)
	}
}

// TestWCECRandprogDifferential fuzzes the whole chain over generated
// programs: the abstract state must contain every ISS-observed register
// value at every pc (the soundness oracle), and when the run halts
// normally the measured energy must lie inside [BCEC, WCEC].
func TestWCECRandprogDifferential(t *testing.T) {
	const programs = 1200
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	model := boundsModel()
	sim := iss.New(proc)
	bounded := 0
	for seed := int64(1); seed <= programs; seed++ {
		prog := randprog.Generate(seed, randprog.Options{AllowLoops: true})
		rep := xlint.Analyze(prog, proc)
		var violation error
		res, runErr := sim.Run(prog, iss.Options{
			MaxCycles: 500_000,
			RegProbe: func(pc int, regs *[isa.NumRegs]uint32) {
				if violation == nil {
					violation = rep.Abs.Check(pc, regs)
				}
			},
		})
		if violation != nil {
			t.Fatalf("seed %d: abstract state violated: %v", seed, violation)
		}
		if runErr != nil {
			continue // runaway or faulting program: no halting-energy claim
		}
		wc, err := xlint.ComputeWCEC(rep.CFG, rep.Abs, proc, model)
		if err != nil {
			continue // e.g. no acyclic entry->exit path
		}
		actual, err := core.Extract(proc.TIE, &res.Stats)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		est := model.EstimatePJ(actual)
		if est < wc.BCEC-eps || est > wc.WCEC+eps {
			t.Fatalf("seed %d: measured %.3f pJ outside [BCEC %.3f, WCEC %.3f]",
				seed, est, wc.BCEC, wc.WCEC)
		}
		if wc.Bounded {
			bounded++
		}
	}
	// The generator's loops are exact constant-count decrements; the vast
	// majority must come out finite or the trip engine regressed.
	if bounded < programs/2 {
		t.Errorf("only %d/%d random programs got finite bounds", bounded, programs)
	}
}

// TestWCECUnboundedIsHonest: a data-dependent loop (trip count driven by
// a loaded value) must report Bounded == false, never a wrong finite
// bound.
func TestWCECUnboundedIsHonest(t *testing.T) {
	rep, proc, _ := analyzeAsm(t, `
    movi a2, 0x100
    l32i a3, a2, 0
top:
    addi a3, a3, -1
    bnez a3, top
    ret
`)
	wc, err := xlint.ComputeWCEC(rep.CFG, rep.Abs, proc, unitModel())
	if err != nil {
		t.Fatal(err)
	}
	if wc.Bounded {
		t.Errorf("data-dependent loop reported bounded: %+v", wc)
	}
	if !math.IsInf(wc.WCEC, 1) {
		t.Errorf("WCEC = %g, want +Inf", wc.WCEC)
	}
}
