package xlint

// WCEC/BCEC: concrete static energy bounds. PathBounds expresses every
// halting execution's energy as Acyclic + Σ k_i·PerIter_i with symbolic
// per-back-edge traversal counts k_i; the abstract interpreter's trip
// bounds close the formula. The result brackets the measured energy of
// every input: BCEC ≤ measured ≤ WCEC whenever both ends are finite.

import (
	"math"

	"xtenergy/internal/core"
	"xtenergy/internal/procgen"
)

// WCECTerm is one back edge's concrete contribution: the symbolic
// per-iteration energy interval from PathBounds paired with the inferred
// traversal bounds.
type WCECTerm struct {
	// FromPC/HeaderPC identify the back edge (LoopTerm's naming).
	FromPC, HeaderPC int
	// PerIter is the energy added per traversal (extremal acyclic
	// header→latch path).
	PerIter Interval
	// TripLo/TripHi bound the traversals over a whole invocation; TripHi
	// is +Inf when the trip-count engine found no pattern.
	TripLo, TripHi float64
	// Source names the trip inference (Trip.Source).
	Source string
}

// WCECReport is the concrete static energy bound of one program under
// one model.
type WCECReport struct {
	// Acyclic is the loop-free entry→exit energy interval.
	Acyclic Interval
	// Terms holds one entry per CFG back edge, aligned with
	// PathBounds' Loops.
	Terms []WCECTerm
	// BCEC/WCEC are the closed-form best/worst-case energy bounds.
	// WCEC is +Inf (and Bounded false) when any traversed loop is
	// unbounded.
	BCEC, WCEC float64
	// Bounded reports that both bounds are finite.
	Bounded bool
}

// ComputeWCEC instantiates the program's symbolic path bounds with
// abstract-interpretation trip counts. abs may be nil, in which case the
// interpreter runs here.
func ComputeWCEC(cfg *CFG, abs *AbsResult, proc *procgen.Processor, m *core.MacroModel) (*WCECReport, error) {
	b, err := ComputeBounds(cfg, proc)
	if err != nil {
		return nil, err
	}
	pb, err := b.PathBounds(m)
	if err != nil {
		return nil, err
	}
	if abs == nil {
		abs = cfg.Interpret(proc)
	}
	trips := inferTrips(cfg, abs)

	rep := &WCECReport{Acyclic: pb.Acyclic, BCEC: pb.Acyclic.Lo, WCEC: pb.Acyclic.Hi}
	for i, lt := range pb.Loops {
		t := trips[i]
		term := WCECTerm{
			FromPC:   lt.FromPC,
			HeaderPC: lt.HeaderPC,
			PerIter:  lt.PerIter,
			TripLo:   t.Lo,
			TripHi:   t.Hi,
			Source:   t.Source,
		}
		rep.Terms = append(rep.Terms, term)
		rep.WCEC += maxContrib(lt.PerIter, t)
		rep.BCEC += minContrib(lt.PerIter, t)
	}
	rep.Bounded = !math.IsInf(rep.WCEC, 0) && !math.IsInf(rep.BCEC, 0)
	return rep, nil
}

// maxContrib maximizes k·e over k ∈ [t.Lo, t.Hi], e ∈ PerIter. A zero
// trip bound contributes nothing even when PerIter is degenerate (an
// unreachable loop body yields an infinite empty interval).
func maxContrib(per Interval, t Trip) float64 {
	if t.Hi == 0 {
		return 0
	}
	if per.Hi > 0 {
		return t.Hi * per.Hi
	}
	return t.Lo * per.Hi
}

// minContrib minimizes k·e over the same box.
func minContrib(per Interval, t Trip) float64 {
	if t.Hi == 0 {
		return 0
	}
	if per.Lo >= 0 {
		return t.Lo * per.Lo
	}
	return t.Hi * per.Lo
}
