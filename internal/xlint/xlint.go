// Package xlint is a static analyzer for assembled XT32+TIE programs:
// the simulation-free counterpart of the instruction-set simulator. It
// builds a basic-block control-flow graph, runs forward def-use dataflow
// to flag uninitialized register reads, dead writes and unreachable
// blocks, detects statically guaranteed pipeline interlock pairs, and
// validates custom-instruction operands against the compiled TIE
// extension. On the same CFG it computes static per-invocation energy
// bounds — per-block intervals of the 21 macro-model variables that,
// combined with a fitted core.MacroModel, bracket the energy of any
// execution without running the ISS (in the spirit of static energy
// complexity analysis; bounds, not point estimates, because energy is
// input dependent).
package xlint

import (
	"fmt"
	"sort"
	"strings"

	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
)

// Severity ranks a finding.
type Severity uint8

const (
	// SevNote is informational (e.g. a guaranteed interlock pair: correct
	// code, but each execution pays a stall cycle).
	SevNote Severity = iota
	// SevWarn is suspicious but not certainly fatal (maybe-uninitialized
	// read, dead write, unreachable block).
	SevWarn
	// SevError means the program faults, panics, or reads garbage on
	// every path that reaches the instruction.
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevNote:
		return "note"
	case SevWarn:
		return "warning"
	case SevError:
		return "error"
	}
	return "severity(?)"
}

// Finding is one diagnostic.
type Finding struct {
	// Code is the stable machine-readable finding class, e.g.
	// "uninit-read", "dead-write", "unreachable", "interlock",
	// "reg-range", "tie-undefined", "tie-operand", "loop-option",
	// "mul-option", "invalid-target".
	Code string
	Sev  Severity
	// PC is the instruction index the finding anchors to.
	PC int
	// Line is the 1-based source line (0 when the program carries no
	// source information).
	Line int
	// Reg is the register the finding concerns, or -1.
	Reg int
	Msg string
}

// String formats a finding as "prog:line: severity: [code] msg".
func (f Finding) String() string {
	pos := fmt.Sprintf("pc %d", f.PC)
	if f.Line > 0 {
		pos = fmt.Sprintf("line %d (pc %d)", f.Line, f.PC)
	}
	return fmt.Sprintf("%s: %s: [%s] %s", pos, f.Sev, f.Code, f.Msg)
}

// Report is the outcome of analyzing one program.
type Report struct {
	Prog     *iss.Program
	CFG      *CFG
	Findings []Finding
	// Abs is the converged abstract-interpretation result the value
	// analysis ran on — kept so downstream consumers (trip counts, WCEC,
	// soundness oracles) reuse the fixpoint instead of recomputing it.
	Abs *AbsResult

	disabled map[string]bool
}

// knownCodes enumerates every finding code any analysis can emit, in
// documentation order. New analyses must register their codes here:
// Disable validation (cmd/xlint -disable) rejects anything else.
var knownCodes = []string{
	"uninit-read", "dead-write", "unreachable", "interlock",
	"reg-range", "tie-undefined", "tie-operand", "loop-option",
	"mul-option", "invalid-target",
	"absint-dead-edge", "absint-zero-trip", "absint-loop-forever",
	"absint-mem-range",
}

// KnownCodes returns every finding code the analyzer can emit.
func KnownCodes() []string {
	out := make([]string, len(knownCodes))
	copy(out, knownCodes)
	return out
}

// ValidateCodes rejects finding codes the analyzer does not emit — the
// guard behind cmd/xlint -disable, so a typo suppresses nothing
// silently.
func ValidateCodes(codes []string) error {
	known := make(map[string]bool, len(knownCodes))
	for _, c := range knownCodes {
		known[c] = true
	}
	for _, c := range codes {
		if !known[c] {
			return fmt.Errorf("unknown finding code %q (valid: %s)", c, strings.Join(knownCodes, ", "))
		}
	}
	return nil
}

// Option configures one Analyze run.
type Option func(*Report)

// Disable suppresses the given finding codes. Characterization stress
// kernels disable "dead-write" and "uninit-read": they intentionally
// write ALU-toggling results nobody reads and read reset-zero scratch
// registers — defined behavior on this core, noise for this corpus.
func Disable(codes ...string) Option {
	return func(r *Report) {
		if r.disabled == nil {
			r.disabled = make(map[string]bool, len(codes))
		}
		for _, c := range codes {
			r.disabled[c] = true
		}
	}
}

// Max returns the highest severity present, and false when there are no
// findings at all.
func (r *Report) Max() (Severity, bool) {
	if len(r.Findings) == 0 {
		return SevNote, false
	}
	max := SevNote
	for _, f := range r.Findings {
		if f.Sev > max {
			max = f.Sev
		}
	}
	return max, true
}

// Count returns the number of findings at or above sev.
func (r *Report) Count(sev Severity) int {
	n := 0
	for _, f := range r.Findings {
		if f.Sev >= sev {
			n++
		}
	}
	return n
}

// Filter returns the findings at or above sev.
func (r *Report) Filter(sev Severity) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Sev >= sev {
			out = append(out, f)
		}
	}
	return out
}

// Err summarizes error-severity findings as a single error, or nil.
func (r *Report) Err() error {
	errs := r.Filter(SevError)
	if len(errs) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "xlint: %s: %d error(s):", r.Prog.Name, len(errs))
	for _, f := range errs {
		b.WriteString("\n  ")
		b.WriteString(f.String())
	}
	return fmt.Errorf("%s", b.String())
}

func (r *Report) add(code string, sev Severity, pc, reg int, format string, args ...any) {
	if r.disabled[code] {
		return
	}
	r.Findings = append(r.Findings, Finding{
		Code: code,
		Sev:  sev,
		PC:   pc,
		Line: r.Prog.Line(pc),
		Reg:  reg,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Analyze runs every static check over prog as it would execute on proc
// and returns the collected findings, ordered by instruction index.
func Analyze(prog *iss.Program, proc *procgen.Processor, opts ...Option) *Report {
	r := &Report{Prog: prog, CFG: BuildCFG(prog, proc.TIE)}
	for _, o := range opts {
		o(r)
	}
	checkInstructions(r, proc)
	analyzeInit(r, proc)
	analyzeDeadWrites(r, proc)
	analyzeUnreachable(r)
	analyzeInterlocks(r, proc)
	analyzeValues(r, proc)
	sort.SliceStable(r.Findings, func(i, j int) bool {
		return r.Findings[i].PC < r.Findings[j].PC
	})
	return r
}

// AsmCheck adapts the analyzer into an asm.WithProgramCheck hook:
// assembly fails when the program has error-severity findings (warnings
// and notes pass — they are reported by the CLI and the test sweep, not
// enforced at build time).
func AsmCheck(proc *procgen.Processor) func(*iss.Program) error {
	return func(prog *iss.Program) error {
		return Analyze(prog, proc).Err()
	}
}
