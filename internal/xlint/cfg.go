package xlint

import (
	"sort"

	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/plan"
	"xtenergy/internal/tie"
)

// ExitID is the virtual exit node: the target of halting control flow
// (falling off the end of code, RET/JX through the halt sentinel, or any
// transfer to instruction index len(Code)).
const ExitID = -1

// EdgeKind classifies a CFG edge by the control-flow mechanism that
// takes it. The kind determines whether pipeline hazards can carry
// across the edge: only Fall and LoopBack edges retire the predecessor
// block's last instruction immediately before the successor's first with
// no intervening front-end flush.
type EdgeKind uint8

const (
	// EdgeFall is sequential flow into the next block: the predecessor
	// ends because the successor's first instruction is a leader, not
	// because of a control transfer (this includes LOOP/LOOPNEZ entering
	// their body).
	EdgeFall EdgeKind = iota
	// EdgeTaken is a taken conditional branch (2-cycle redirect, flush).
	EdgeTaken
	// EdgeUntaken is the fallthrough of an untaken conditional branch.
	EdgeUntaken
	// EdgeJump is a direct jump or call (J, CALL).
	EdgeJump
	// EdgeIndirect is an indirect transfer (JX, CALLX, RET) to a
	// statically over-approximated target.
	EdgeIndirect
	// EdgeLoopBack is the zero-overhead loop-back redirect from an edge
	// that reaches a loop's end address (no flush, no penalty).
	EdgeLoopBack
	// EdgeLoopSkip is LOOPNEZ skipping a zero-trip body (flush).
	EdgeLoopSkip
)

var edgeKindNames = [...]string{
	"fall", "taken", "untaken", "jump", "indirect", "loopback", "loopskip",
}

func (k EdgeKind) String() string {
	if int(k) < len(edgeKindNames) {
		return edgeKindNames[k]
	}
	return "edge(?)"
}

// CarriesHazard reports whether a pipeline hazard armed by the
// predecessor block's last instruction can stall the successor's first:
// true only for edges with no front-end flush originating from an
// instruction that can be a load or multiply (loads and multiplies never
// redirect, so only sequential and loop-back edges qualify).
func (k EdgeKind) CarriesHazard() bool {
	return k == EdgeFall || k == EdgeLoopBack
}

// Edge is one directed CFG edge. To is ExitID for the virtual exit.
type Edge struct {
	From, To int
	Kind     EdgeKind
}

// Block is one basic block: the half-open instruction range
// [Start, End). Blocks partition the full code array, including
// statically unreachable regions.
type Block struct {
	ID         int
	Start, End int
	Succs      []Edge
	Preds      []Edge
	// Reachable reports whether the block is reachable from the entry
	// block along CFG edges.
	Reachable bool
}

// Loop is one static zero-overhead loop: the LOOP/LOOPNEZ at At, its
// body [Begin, End).
type Loop struct {
	At, Begin, End int
}

// CFG is the basic-block control-flow graph of a program.
type CFG struct {
	Prog *iss.Program
	// Plan is the predecoded instruction plan the graph was built from;
	// every downstream analysis (dataflow, interlocks, energy bounds)
	// reads instruction metadata from its records rather than re-deriving
	// it, so the static analyses and the simulator share one decode.
	Plan   *plan.Plan
	Blocks []*Block
	Loops  []Loop
	// IndirectTargets is the over-approximated target set of JX/CALLX:
	// every code label plus every call return site. Sound for the
	// corpus's call/return idiom (call f; ... f: ...; jx a0).
	IndirectTargets []int
	// ReturnSites is the instruction index after each CALL/CALLX — the
	// only addresses a call ever writes into a0. When no other
	// instruction clobbers a0, RET's target set shrinks to these plus
	// the halt sentinel.
	ReturnSites []int

	byPC []int // instruction index -> block ID
}

// BlockAt returns the block containing instruction index pc (nil when
// out of range).
func (c *CFG) BlockAt(pc int) *Block {
	if pc < 0 || pc >= len(c.byPC) {
		return nil
	}
	return c.Blocks[c.byPC[pc]]
}

// Entry returns the entry block.
func (c *CFG) Entry() *Block { return c.BlockAt(c.Prog.Entry) }

// BuildCFG constructs the basic-block graph of prog. The compiled TIE
// extension refines the indirect-target analysis (whether a custom
// instruction can write the link register); it may be nil, in which
// case custom instructions are treated conservatively. Control-flow
// targets outside [0, len(Code)] produce no edge — Analyze flags them
// as errors separately — so the graph is always well formed.
func BuildCFG(prog *iss.Program, comp *tie.Compiled) *CFG {
	n := len(prog.Code)
	pl := prog.Plan(comp)
	cfg := &CFG{Prog: prog, Plan: pl, byPC: make([]int, n)}

	// Indirect-target over-approximation: labels and call return sites.
	seen := make(map[int]bool)
	for _, pc := range prog.Labels {
		if pc >= 0 && pc < n && !seen[pc] {
			seen[pc] = true
			cfg.IndirectTargets = append(cfg.IndirectTargets, pc)
		}
	}

	leader := make([]bool, n+1)
	mark := func(pc int) {
		if pc >= 0 && pc < n {
			leader[pc] = true
		}
	}
	mark(0)
	mark(prog.Entry)
	for pc := range prog.Code {
		rec := &pl.Recs[pc]
		in := rec.Instr
		if !rec.Valid {
			continue
		}
		switch {
		case in.Op == isa.OpLOOP || in.Op == isa.OpLOOPNEZ:
			begin, end := pc+1, rec.Target
			mark(begin)
			mark(end)
			if end > pc+1 && end <= n {
				cfg.Loops = append(cfg.Loops, Loop{At: pc, Begin: begin, End: end})
			}
		case rec.Def.Class == isa.ClassBranch:
			mark(rec.Target)
			mark(pc + 1)
		case in.Op == isa.OpJ:
			mark(rec.Target)
			mark(pc + 1)
		case in.Op == isa.OpCALL, in.Op == isa.OpCALLX:
			if in.Op == isa.OpCALL {
				mark(int(in.Imm))
			}
			mark(pc + 1) // return site
			if t := pc + 1; t < n {
				cfg.ReturnSites = append(cfg.ReturnSites, t)
				if !seen[t] {
					seen[t] = true
					cfg.IndirectTargets = append(cfg.IndirectTargets, t)
				}
			}
		case in.Op == isa.OpJX || in.Op == isa.OpRET:
			mark(pc + 1)
		}
	}
	for _, pc := range cfg.IndirectTargets {
		mark(pc)
	}
	sort.Ints(cfg.IndirectTargets)
	sort.Ints(cfg.ReturnSites)

	// RET target refinement: a0 starts as the halt sentinel and calls
	// overwrite it with their return site. Unless some other instruction
	// can clobber a0, a RET goes to a return site or the exit — never to
	// an arbitrary label.
	retTargets := cfg.ReturnSites
	for pc := range prog.Code {
		in := pl.Recs[pc].Instr
		if in.Op == isa.OpCALL || in.Op == isa.OpCALLX {
			continue
		}
		clobbers := pl.Recs[pc].Use.Writes&1 != 0
		if in.IsCustom() && comp == nil && in.Rd == 0 {
			clobbers = true // unknown extension: assume the worst
		}
		if clobbers {
			retTargets = cfg.IndirectTargets
			break
		}
	}

	// Cut blocks at leaders.
	start := 0
	for pc := 1; pc <= n; pc++ {
		if pc == n || leader[pc] {
			b := &Block{ID: len(cfg.Blocks), Start: start, End: pc}
			cfg.Blocks = append(cfg.Blocks, b)
			for i := start; i < pc; i++ {
				cfg.byPC[i] = b.ID
			}
			start = pc
		}
	}

	// Successor edges.
	loopEnds := make(map[int][]Loop) // end pc -> loops ending there
	for _, l := range cfg.Loops {
		loopEnds[l.End] = append(loopEnds[l.End], l)
	}
	addEdge := func(b *Block, toPC int, kind EdgeKind) {
		if toPC < 0 || toPC > n {
			return // invalid static target: flagged by checks, no edge
		}
		to := ExitID
		if toPC < n {
			to = cfg.byPC[toPC]
		}
		b.Succs = append(b.Succs, Edge{From: b.ID, To: to, Kind: kind})
		// The zero-overhead loop hardware redirects any transfer that
		// reaches a loop end back to the loop begin while iterations
		// remain; model it as an additional edge (a loop may legally end
		// at index n, so this applies to exit-bound edges too).
		if kind != EdgeLoopBack {
			for _, l := range loopEnds[toPC] {
				b.Succs = append(b.Succs, Edge{From: b.ID, To: cfg.byPC[l.Begin], Kind: EdgeLoopBack})
			}
		}
	}
	for _, b := range cfg.Blocks {
		last := b.End - 1
		rec := &pl.Recs[last]
		in := rec.Instr
		if !rec.Valid {
			addEdge(b, b.End, EdgeFall)
			continue
		}
		switch {
		case in.Op == isa.OpLOOP:
			addEdge(b, b.End, EdgeFall)
		case in.Op == isa.OpLOOPNEZ:
			addEdge(b, b.End, EdgeFall)
			addEdge(b, rec.Target, EdgeLoopSkip)
		case rec.Def.Class == isa.ClassBranch:
			addEdge(b, rec.Target, EdgeTaken)
			addEdge(b, b.End, EdgeUntaken)
		case in.Op == isa.OpJ || in.Op == isa.OpCALL:
			addEdge(b, rec.Target, EdgeJump)
		case in.Op == isa.OpJX || in.Op == isa.OpRET:
			targets := cfg.IndirectTargets
			if in.Op == isa.OpRET {
				targets = retTargets
			}
			for _, t := range targets {
				addEdge(b, t, EdgeIndirect)
			}
			addEdge(b, n, EdgeIndirect) // halt through the sentinel
		case in.Op == isa.OpCALLX:
			for _, t := range cfg.IndirectTargets {
				addEdge(b, t, EdgeIndirect)
			}
		default:
			addEdge(b, b.End, EdgeFall)
		}
	}

	// Predecessor lists and reachability.
	for _, b := range cfg.Blocks {
		for _, e := range b.Succs {
			if e.To != ExitID {
				cfg.Blocks[e.To].Preds = append(cfg.Blocks[e.To].Preds, e)
			}
		}
	}
	var visit func(id int)
	visit = func(id int) {
		b := cfg.Blocks[id]
		if b.Reachable {
			return
		}
		b.Reachable = true
		for _, e := range b.Succs {
			if e.To != ExitID {
				visit(e.To)
			}
		}
	}
	if n > 0 {
		visit(cfg.byPC[prog.Entry])
	}
	return cfg
}

// ReversePostorder returns the reachable blocks in reverse postorder of
// a depth-first traversal from the entry — the canonical iteration order
// for forward dataflow.
func (c *CFG) ReversePostorder() []*Block {
	var post []*Block
	state := make([]uint8, len(c.Blocks)) // 0 unvisited, 1 on stack, 2 done
	var dfs func(id int)
	dfs = func(id int) {
		if state[id] != 0 {
			return
		}
		state[id] = 1
		for _, e := range c.Blocks[id].Succs {
			if e.To != ExitID {
				dfs(e.To)
			}
		}
		state[id] = 2
		post = append(post, c.Blocks[id])
	}
	if len(c.Blocks) > 0 {
		dfs(c.Entry().ID)
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
