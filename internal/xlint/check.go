package xlint

import (
	"xtenergy/internal/isa"
	"xtenergy/internal/plan"
	"xtenergy/internal/procgen"
)

// checkInstructions validates every instruction in isolation: register
// encodings the simulator would panic on, custom-instruction IDs and
// operand fields against the compiled TIE extension, configuration
// options the instruction requires, and static control-flow targets.
// These run over the whole code array (reachable or not): an invalid
// encoding is wrong wherever it sits.
func checkInstructions(r *Report, proc *procgen.Processor) {
	prog := r.Prog
	n := len(prog.Code)
	for pc := range prog.Code {
		rec := &r.CFG.Plan.Recs[pc]
		in := rec.Instr
		if in.IsCustom() {
			ci := rec.CI
			if ci == nil {
				r.add("tie-undefined", SevError, pc, -1,
					"custom instruction id %d is not defined by the compiled extension", in.CustomID)
				continue
			}
			// The simulator indexes the register file with exactly these
			// fields; out-of-range encodings panic.
			if ci.ReadsGeneral && int(in.Rs) >= isa.NumRegs {
				r.add("reg-range", SevError, pc, int(in.Rs),
					"%s reads rs field a%d beyond the %d-entry register file", ci.Name, in.Rs, isa.NumRegs)
			}
			if ci.ReadsGeneral && !ci.ImmOperand && int(in.Rt) >= isa.NumRegs {
				r.add("reg-range", SevError, pc, int(in.Rt),
					"%s reads rt field a%d beyond the %d-entry register file", ci.Name, in.Rt, isa.NumRegs)
			}
			if ci.WritesGeneral && int(in.Rd) >= isa.NumRegs {
				r.add("reg-range", SevError, pc, int(in.Rd),
					"%s writes rd field a%d beyond the %d-entry register file", ci.Name, in.Rd, isa.NumRegs)
			}
			// The immediate form decodes a 6-bit signed constant from the
			// Rt field; higher bits are silently truncated by the decoder.
			if ci.ImmOperand && in.Rt >= 1<<plan.Imm6Bits {
				r.add("tie-operand", SevError, pc, -1,
					"%s immediate field %#x overflows the %d-bit operand encoding", ci.Name, in.Rt, plan.Imm6Bits)
			}
			continue
		}

		if !rec.Valid {
			r.add("tie-undefined", SevError, pc, -1, "invalid opcode %d", in.Op)
			continue
		}
		d := rec.Def
		// The base execution path unconditionally latches regs[Rs] and
		// regs[Rt] onto the operand buses, so those fields must encode
		// valid registers even when unused; Rd is indexed only when the
		// instruction reads or writes it architecturally.
		u := rec.Use
		if int(in.Rs) >= isa.NumRegs {
			r.add("reg-range", SevError, pc, int(in.Rs),
				"%s rs field a%d beyond the %d-entry register file", d.Name, in.Rs, isa.NumRegs)
		}
		if int(in.Rt) >= isa.NumRegs {
			r.add("reg-range", SevError, pc, int(in.Rt),
				"%s rt field a%d beyond the %d-entry register file", d.Name, in.Rt, isa.NumRegs)
		}
		if int(in.Rd) >= isa.NumRegs && (u.WritesRd || readsRdField(in.Op)) {
			r.add("reg-range", SevError, pc, int(in.Rd),
				"%s rd field a%d beyond the %d-entry register file", d.Name, in.Rd, isa.NumRegs)
		}

		switch in.Op {
		case isa.OpLOOP, isa.OpLOOPNEZ:
			if !proc.Config.HasLoops {
				r.add("loop-option", SevError, pc, -1,
					"%s requires the zero-overhead loop option (Config.HasLoops)", d.Name)
			}
			if end := pc + 1 + int(in.Imm); end <= pc+1 || end > n {
				r.add("invalid-target", SevError, pc, -1,
					"%s end %d out of range (%d,%d]", d.Name, end, pc+1, n)
			}
		case isa.OpMUL, isa.OpMULH, isa.OpMULHU:
			if !proc.Config.HasMul32 {
				r.add("mul-option", SevWarn, pc, -1,
					"%s on a core without the 32-bit multiplier option (Config.HasMul32)", d.Name)
			}
		}
		switch d.Format {
		case isa.FormatBranchRR, isa.FormatBranchRI, isa.FormatBranchR:
			if in.Op == isa.OpLOOP || in.Op == isa.OpLOOPNEZ {
				break // validated above with the loop-specific range
			}
			if t := pc + 1 + int(in.Imm); t < 0 || t > n {
				r.add("invalid-target", SevError, pc, -1,
					"%s target %d out of range [0,%d]", d.Name, t, n)
			}
		case isa.FormatJump:
			if t := int(in.Imm); t < 0 || t > n {
				r.add("invalid-target", SevError, pc, -1,
					"%s target %d out of range [0,%d]", d.Name, t, n)
			}
		}
	}
}

// readsRdField reports whether the base instruction architecturally
// reads its Rd field (store data registers and conditional-move old
// values), which makes an out-of-range Rd fatal even though WritesRd is
// false or the register-use bitmask cannot represent the overflow.
func readsRdField(op isa.Opcode) bool {
	switch op {
	case isa.OpS8I, isa.OpS16I, isa.OpS32I,
		isa.OpMOVEQZ, isa.OpMOVNEZ, isa.OpMOVLTZ, isa.OpMOVGEZ:
		return true
	}
	return false
}
