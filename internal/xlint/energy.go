package xlint

import (
	"fmt"
	"math"

	"xtenergy/internal/core"
	"xtenergy/internal/hwlib"
	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/pipeline"
	"xtenergy/internal/procgen"
)

// VarBounds is a per-execution interval of the 21 macro-model variables:
// any single execution of the associated block contributes between Lo[i]
// and Hi[i] to variable i. Most contributions are exact (Lo == Hi): the
// class cycles of almost every instruction are input independent. The
// interval sources are cache misses (0 or 1 per access), branch
// direction, RET/JX halting vs. redirecting, LOOPNEZ skipping a
// zero-trip body, and interlocks that only some entry paths guarantee.
type VarBounds struct {
	Lo, Hi core.Vars
}

func (v *VarBounds) addExact(i int, x float64) { v.Lo[i] += x; v.Hi[i] += x }
func (v *VarBounds) addRange(i int, lo, hi float64) {
	v.Lo[i] += lo
	v.Hi[i] += hi
}

// Bounds holds the static per-block variable intervals of a program.
type Bounds struct {
	CFG *CFG
	// Block[id] bounds one execution of block id.
	Block []VarBounds
}

// ComputeBounds derives per-execution macro-model variable intervals for
// every basic block of the CFG, mirroring the simulator's cost
// accounting instruction by instruction. It fails on programs whose
// custom instructions are not defined by proc's compiled extension (run
// Analyze first; it flags those as errors).
func ComputeBounds(cfg *CFG, proc *procgen.Processor) (*Bounds, error) {
	comp := proc.TIE
	pipe := pipeline.New()
	pl := cfg.Plan

	b := &Bounds{CFG: cfg, Block: make([]VarBounds, len(cfg.Blocks))}
	for _, blk := range cfg.Blocks {
		vb := &b.Block[blk.ID]
		for pc := blk.Start; pc < blk.End; pc++ {
			rec := &pl.Recs[pc]
			in := rec.Instr

			// Fetch: uncached fetches are certain; cached fetches may
			// miss the I-cache depending on history.
			if rec.Uncached {
				vb.addExact(core.VUncachedFetch, 1)
			} else {
				vb.addRange(core.VICacheMiss, 0, 1)
			}

			// Interlocks: an adjacent in-block pair stalls on every
			// execution; the block's first instruction stalls depending
			// on which predecessor path entered.
			if pc > blk.Start {
				prev := &pl.Recs[pc-1]
				if hazardBetween(prev.Use, rec.Use, prev.Instr.Rd, in.Rs, in.Rt) {
					vb.addExact(core.VInterlock, 1)
				}
			} else if guaranteed, possible := entryHazard(cfg, blk); guaranteed {
				vb.addExact(core.VInterlock, 1)
			} else if possible {
				vb.addRange(core.VInterlock, 0, 1)
			}

			if in.IsCustom() {
				ci := rec.CI
				if ci == nil {
					// Cold path: re-query the extension so the error wraps
					// the original cause, exactly as before.
					_, err := comp.Instruction(in.CustomID)
					return nil, fmt.Errorf("xlint: %s pc %d: %w", cfg.Prog.Name, pc, err)
				}
				lat := float64(ci.Latency)
				if rec.RegfileActive {
					vb.addExact(core.VCustomSideEffect, lat)
				}
				for k := 0; k < hwlib.NumCategories; k++ {
					vb.addExact(core.VCustomBase+k, rec.CustomWeights[k]*lat)
				}
				continue
			}

			if !rec.Valid {
				return nil, fmt.Errorf("xlint: %s pc %d: invalid opcode %d", cfg.Prog.Name, pc, in.Op)
			}
			d := rec.Def
			// Base arithmetic retires tap the bus-latched custom
			// components for one cycle (Example 1's base-to-custom side
			// effect) — deterministic per retire.
			if pl.HasBusTaps && d.Class == isa.ClassArith {
				for k := 0; k < hwlib.NumCategories; k++ {
					vb.addExact(core.VCustomBase+k, pl.BusTap[k])
				}
			}

			cyc := float64(d.Cycles)
			switch {
			case in.Op == isa.OpLOOP:
				vb.addExact(core.VArith, cyc) // always enters the body
			case in.Op == isa.OpLOOPNEZ:
				// Entering costs 1 arith cycle; skipping a zero-trip body
				// is a taken-style redirect charged to arith.
				vb.addRange(core.VArith, cyc, cyc+float64(pipe.TakenPenalty))
			case in.Op == isa.OpJX || in.Op == isa.OpRET:
				// Halting through the sentinel costs the base cycle;
				// redirecting adds the jump penalty.
				vb.addRange(core.VJump, cyc, cyc+float64(pipe.JumpPenalty))
			case in.Op == isa.OpJ || in.Op == isa.OpCALL || in.Op == isa.OpCALLX:
				vb.addExact(core.VJump, cyc+float64(pipe.JumpPenalty))
			case d.Format == isa.FormatBranchRR || d.Format == isa.FormatBranchRI || d.Format == isa.FormatBranchR:
				// Exactly one of taken/untaken occurs per execution; the
				// per-variable intervals each admit the zero case.
				vb.addRange(core.VBranchTaken, 0, cyc+float64(pipe.TakenPenalty))
				vb.addRange(core.VBranchUntaken, 0, cyc)
			case d.Class == isa.ClassLoad:
				vb.addExact(core.VLoad, cyc)
				vb.addRange(core.VDCacheMiss, 0, 1)
			case d.Class == isa.ClassStore:
				vb.addExact(core.VStore, cyc)
				vb.addRange(core.VDCacheMiss, 0, 1)
			default:
				vb.addExact(core.VArith, cyc)
			}
		}
	}
	return b, nil
}

// InstantiateVars turns per-block intervals into whole-run variable
// bounds given per-block execution counts (len(counts) == len(Blocks)).
func (b *Bounds) InstantiateVars(counts []uint64) (lo, hi core.Vars, err error) {
	if len(counts) != len(b.Block) {
		return lo, hi, fmt.Errorf("xlint: %d block counts for %d blocks", len(counts), len(b.Block))
	}
	for id, vb := range b.Block {
		c := float64(counts[id])
		if c == 0 {
			continue
		}
		for i := 0; i < core.NumVars; i++ {
			lo[i] += c * vb.Lo[i]
			hi[i] += c * vb.Hi[i]
		}
	}
	return lo, hi, nil
}

// EnergyInterval brackets the macro-model energy over a variable box:
// each coefficient picks whichever end of its variable's interval
// minimizes/maximizes its contribution, so negative coefficients are
// handled correctly.
func EnergyInterval(m *core.MacroModel, lo, hi core.Vars) (eLo, eHi float64) {
	for i, c := range m.Coef {
		a, b := c*lo[i], c*hi[i]
		eLo += math.Min(a, b)
		eHi += math.Max(a, b)
	}
	return eLo, eHi
}

// BlockEnergy returns each block's per-execution energy interval under
// the model.
func (b *Bounds) BlockEnergy(m *core.MacroModel) []Interval {
	out := make([]Interval, len(b.Block))
	for id, vb := range b.Block {
		lo, hi := EnergyInterval(m, vb.Lo, vb.Hi)
		out[id] = Interval{Lo: lo, Hi: hi}
	}
	return out
}

// Interval is a closed numeric interval.
type Interval struct{ Lo, Hi float64 }

// LoopTerm is the symbolic contribution of one CFG back edge: each
// additional traversal of the edge adds an energy amount within PerIter
// (the extremal acyclic path through the loop body, from the loop header
// back to the edge source).
type LoopTerm struct {
	// FromPC/HeaderPC identify the back edge by the first instruction of
	// its source and target blocks.
	FromPC, HeaderPC int
	PerIter          Interval
}

// PathReport is the static per-invocation energy bound: the energy of
// any halting execution lies in
//
//	Acyclic + Σ_i k_i · Loops[i].PerIter
//
// where k_i ≥ 0 is the (input-dependent) number of times execution
// traverses back edge i. Acyclic is the min/max over back-edge-free
// entry→exit paths.
type PathReport struct {
	Acyclic Interval
	Loops   []LoopTerm
}

// edgeRef identifies one CFG successor edge by source block ID and
// index into that block's Succs.
type edgeRef struct{ from, idx int }

// backEdges classifies the CFG's back edges with a DFS from the entry
// (gray-node detection). The returned slice is in deterministic DFS
// discovery order — PathBounds' loop terms and the trip-count engine's
// bounds are index-aligned through it — and the set holds the same refs
// for membership tests. Edges to unreachable blocks never execute and
// are not classified.
func (c *CFG) backEdges() ([]edgeRef, map[edgeRef]bool) {
	var refs []edgeRef
	isBack := make(map[edgeRef]bool)
	if len(c.Blocks) == 0 {
		return refs, isBack
	}
	color := make([]uint8, len(c.Blocks)) // 0 white, 1 gray, 2 black
	var dfs func(id int)
	dfs = func(id int) {
		color[id] = 1
		for i, e := range c.Blocks[id].Succs {
			if e.To == ExitID {
				continue
			}
			switch color[e.To] {
			case 0:
				dfs(e.To)
			case 1:
				ref := edgeRef{id, i}
				isBack[ref] = true
				refs = append(refs, ref)
			}
		}
		color[id] = 2
	}
	dfs(c.Entry().ID)
	return refs, isBack
}

// PathBounds computes the acyclic entry→exit energy interval and the
// per-back-edge symbolic loop terms under the model. It fails when no
// back-edge-free path from the entry reaches the exit (the program
// cannot halt without iterating, so no finite acyclic bound exists).
func (b *Bounds) PathBounds(m *core.MacroModel) (*PathReport, error) {
	cfg := b.CFG
	nb := len(cfg.Blocks)
	blockE := b.BlockEnergy(m)

	backEdges, isBack := cfg.backEdges()
	entry := cfg.Entry().ID

	// Topological order of the DAG that remains (reachable blocks only).
	var topo []int
	state := make([]uint8, nb)
	var order func(id int)
	order = func(id int) {
		state[id] = 1
		for i, e := range cfg.Blocks[id].Succs {
			if e.To == ExitID || isBack[edgeRef{id, i}] || state[e.To] != 0 {
				continue
			}
			order(e.To)
		}
		topo = append(topo, id) // postorder: successors first
	}
	order(entry)

	inf := math.Inf(1)
	// DP over the DAG: extremal path energy from each block to the exit.
	minTo := make([]float64, nb)
	maxTo := make([]float64, nb)
	for i := range minTo {
		minTo[i], maxTo[i] = inf, math.Inf(-1)
	}
	for _, id := range topo { // postorder = successors before predecessors
		sMin, sMax := inf, math.Inf(-1)
		for i, e := range cfg.Blocks[id].Succs {
			if isBack[edgeRef{id, i}] {
				continue
			}
			var lo, hi float64
			if e.To == ExitID {
				lo, hi = 0, 0
			} else {
				lo, hi = minTo[e.To], maxTo[e.To]
			}
			sMin = math.Min(sMin, lo)
			sMax = math.Max(sMax, hi)
		}
		minTo[id] = blockE[id].Lo + sMin
		maxTo[id] = blockE[id].Hi + sMax
	}
	if math.IsInf(minTo[entry], 1) {
		return nil, fmt.Errorf("xlint: %s: no acyclic path from entry to exit", cfg.Prog.Name)
	}

	rep := &PathReport{Acyclic: Interval{Lo: minTo[entry], Hi: maxTo[entry]}}

	// Per-back-edge loop terms: extremal DAG path from the loop header
	// to the edge source, inclusive of both endpoint blocks.
	for _, be := range backEdges {
		header := cfg.Blocks[be.from].Succs[be.idx].To
		minFrom := make([]float64, nb)
		maxFrom := make([]float64, nb)
		for i := range minFrom {
			minFrom[i], maxFrom[i] = inf, math.Inf(-1)
		}
		minFrom[header] = blockE[header].Lo
		maxFrom[header] = blockE[header].Hi
		for i := len(topo) - 1; i >= 0; i-- { // reverse postorder: preds first
			id := topo[i]
			if math.IsInf(minFrom[id], 1) && math.IsInf(maxFrom[id], -1) {
				continue
			}
			for j, e := range cfg.Blocks[id].Succs {
				if e.To == ExitID || isBack[edgeRef{id, j}] {
					continue
				}
				if v := minFrom[id] + blockE[e.To].Lo; v < minFrom[e.To] {
					minFrom[e.To] = v
				}
				if v := maxFrom[id] + blockE[e.To].Hi; v > maxFrom[e.To] {
					maxFrom[e.To] = v
				}
			}
		}
		term := LoopTerm{
			FromPC:   cfg.Blocks[be.from].Start,
			HeaderPC: cfg.Blocks[header].Start,
			PerIter:  Interval{Lo: minFrom[be.from], Hi: maxFrom[be.from]},
		}
		rep.Loops = append(rep.Loops, term)
	}
	return rep, nil
}

// BlockCounter counts per-block executions from a streamed trace; plug
// its Sink into iss.Options.TraceSink to instantiate static bounds with
// the dynamic block counts of a concrete run.
type BlockCounter struct {
	cfg    *CFG
	counts []uint64
}

// NewBlockCounter returns a counter for this CFG.
func (c *CFG) NewBlockCounter() *BlockCounter {
	return &BlockCounter{cfg: c, counts: make([]uint64, len(c.Blocks))}
}

// Sink is an iss.Options.TraceSink that counts an execution of a block
// each time its leader instruction retires.
func (bc *BlockCounter) Sink(batch []iss.TraceEntry) error {
	for i := range batch {
		pc := int(batch[i].PC)
		if b := bc.cfg.BlockAt(pc); b != nil && b.Start == pc {
			bc.counts[b.ID]++
		}
	}
	return nil
}

// Counts returns the per-block execution counts accumulated so far.
func (bc *BlockCounter) Counts() []uint64 { return bc.counts }
