package xlint_test

import (
	"strings"
	"testing"

	"xtenergy/internal/asm"
	"xtenergy/internal/core"
	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/workloads"
	"xtenergy/internal/xlint"
)

// analyzeAsm assembles src on the default core and returns the report.
func analyzeAsm(t *testing.T, src string) (*xlint.Report, *procgen.Processor, *iss.Program) {
	t.Helper()
	proc, prog, err := (&core.Workload{Name: "t", Source: src}).Build(procgen.Default())
	if err != nil {
		t.Fatal(err)
	}
	return xlint.Analyze(prog, proc), proc, prog
}

func hasCode(rep *xlint.Report, code string) bool {
	for _, f := range rep.Findings {
		if f.Code == code {
			return true
		}
	}
	return false
}

// TestAbsintSoundEveryWorkload is the soundness oracle: for every
// registered workload, every register value the ISS observes at every pc
// must lie inside the abstract interpreter's converged interval for that
// register at that pc. Any violation means a transfer function or
// refinement disagrees with the exec table.
func TestAbsintSoundEveryWorkload(t *testing.T) {
	cfgP := procgen.Default()
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			proc, prog, err := w.Build(cfgP)
			if err != nil {
				t.Fatal(err)
			}
			rep := xlint.Analyze(prog, proc)
			if rep.Abs == nil {
				t.Fatal("Analyze left Report.Abs nil")
			}
			var violation error
			_, err = iss.New(proc).Run(prog, iss.Options{
				RegProbe: func(pc int, regs *[isa.NumRegs]uint32) {
					if violation == nil {
						violation = rep.Abs.Check(pc, regs)
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if violation != nil {
				t.Errorf("abstract state violated: %v", violation)
			}
		})
	}
}

// TestTripCountDownCounting pins the canonical decrement loop: movi 10
// then addi -1 / bnez means the back edge is traversed exactly 9 times.
func TestTripCountDownCounting(t *testing.T) {
	rep, proc, _ := analyzeAsm(t, `
    movi a2, 10
    movi a3, 0
top:
    addi a3, a3, 1
    addi a2, a2, -1
    bnez a2, top
    ret
`)
	m := unitModel()
	w, err := xlint.ComputeWCEC(rep.CFG, rep.Abs, proc, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Terms) != 1 {
		t.Fatalf("terms = %+v, want one back edge", w.Terms)
	}
	tr := w.Terms[0]
	if tr.TripLo != 9 || tr.TripHi != 9 {
		t.Errorf("trips [%g, %g] (%s), want exactly [9, 9]", tr.TripLo, tr.TripHi, tr.Source)
	}
	if !w.Bounded {
		t.Errorf("decrement loop not bounded: %+v", w)
	}
}

// TestTripCountUpCounting pins the compare-bounded shape: addi +1 with a
// blt against a loop-invariant register bound.
func TestTripCountUpCounting(t *testing.T) {
	rep, proc, _ := analyzeAsm(t, `
    movi a2, 0
    movi a3, 8
top:
    add  a4, a4, a2
    addi a2, a2, 1
    blt  a2, a3, top
    ret
`)
	w, err := xlint.ComputeWCEC(rep.CFG, rep.Abs, proc, unitModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Terms) != 1 {
		t.Fatalf("terms = %+v, want one back edge", w.Terms)
	}
	tr := w.Terms[0]
	// Tests at a2 = 1..8: seven continue (a2 < 8 for 1..7).
	if tr.TripLo != 7 || tr.TripHi != 7 {
		t.Errorf("trips [%g, %g] (%s), want exactly [7, 7]", tr.TripLo, tr.TripHi, tr.Source)
	}
}

// TestTripCountHeaderTest pins the header-tested (while-style) loop with
// the exit test before the body.
func TestTripCountHeaderTest(t *testing.T) {
	rep, proc, _ := analyzeAsm(t, `
    movi a2, 5
top:
    beqz a2, done
    add  a4, a4, a2
    addi a2, a2, -1
    j top
done:
    ret
`)
	w, err := xlint.ComputeWCEC(rep.CFG, rep.Abs, proc, unitModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Terms) != 1 {
		t.Fatalf("terms = %+v, want one back edge", w.Terms)
	}
	tr := w.Terms[0]
	if tr.TripLo != 5 || tr.TripHi != 5 {
		t.Errorf("trips [%g, %g] (%s), want exactly [5, 5]", tr.TripLo, tr.TripHi, tr.Source)
	}
}

// TestTripCountNested: the inner loop's total trips scale with the outer
// loop's trip count.
func TestTripCountNested(t *testing.T) {
	rep, proc, _ := analyzeAsm(t, `
    movi a2, 4
outer:
    movi a3, 3
inner:
    addi a3, a3, -1
    bnez a3, inner
    addi a2, a2, -1
    bnez a2, outer
    ret
`)
	w, err := xlint.ComputeWCEC(rep.CFG, rep.Abs, proc, unitModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Terms) != 2 {
		t.Fatalf("terms = %+v, want two back edges", w.Terms)
	}
	var inner, outer *xlint.WCECTerm
	for i := range w.Terms {
		if w.Terms[i].FromPC == w.Terms[i].HeaderPC {
			inner = &w.Terms[i]
		} else {
			outer = &w.Terms[i]
		}
	}
	if inner == nil || outer == nil {
		t.Fatalf("could not identify inner/outer terms: %+v", w.Terms)
	}
	if outer.TripLo != 3 || outer.TripHi != 3 {
		t.Errorf("outer trips [%g, %g], want [3, 3]", outer.TripLo, outer.TripHi)
	}
	// Inner: 2 per entry, 4 entries (outer trips + 1). Upper bound is the
	// product; the per-entry lower bound survives because the loop is
	// single-exit and on every path.
	if inner.TripHi != 8 {
		t.Errorf("inner TripHi = %g, want 2*(3+1) = 8", inner.TripHi)
	}
	if inner.TripLo != 2 {
		t.Errorf("inner TripLo = %g, want per-entry 2", inner.TripLo)
	}
}

// TestTripCountHardwareLoop: the LOOP count register's interval bounds
// the LoopBack edge exactly.
func TestTripCountHardwareLoop(t *testing.T) {
	cfg := procgen.Default()
	cfg.HasLoops = true
	proc, err := procgen.Generate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.New(proc.TIE).Assemble("hw", `
    movi a2, 6
    movi a3, 0
    loop a2, done
    addi a3, a3, 1
done:
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	rep := xlint.Analyze(prog, proc)
	w, err := xlint.ComputeWCEC(rep.CFG, rep.Abs, proc, unitModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Terms) != 1 {
		t.Fatalf("terms = %+v, want the LoopBack edge", w.Terms)
	}
	tr := w.Terms[0]
	if tr.TripLo != 5 || tr.TripHi != 5 || tr.Source != "hwloop" {
		t.Errorf("trips [%g, %g] (%s), want exactly [5, 5] (hwloop)", tr.TripLo, tr.TripHi, tr.Source)
	}
}

// TestAbsintDeadEdge: a branch whose condition is statically decided
// yields a dead-edge note on the impossible direction.
func TestAbsintDeadEdge(t *testing.T) {
	rep, _, _ := analyzeAsm(t, `
    movi a2, 3
    bnez a2, always
    movi a3, 99
always:
    ret
`)
	if !hasCode(rep, "absint-dead-edge") {
		t.Errorf("no absint-dead-edge finding; findings: %v", rep.Findings)
	}
}

// TestAbsintZeroTrip: a loop whose counter is provably zero at the test
// never iterates.
func TestAbsintZeroTrip(t *testing.T) {
	rep, _, _ := analyzeAsm(t, `
    movi a2, 0
top:
    beqz a2, done
    addi a2, a2, -1
    j top
done:
    ret
`)
	if !hasCode(rep, "absint-zero-trip") && !hasCode(rep, "absint-dead-edge") {
		t.Errorf("zero-trip loop not flagged; findings: %v", rep.Findings)
	}
}

// TestAbsintLoopForever: LOOP with a provably zero count register wraps
// to 2^32 iterations — flagged as a warning.
func TestAbsintLoopForever(t *testing.T) {
	cfg := procgen.Default()
	cfg.HasLoops = true
	proc, err := procgen.Generate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.New(proc.TIE).Assemble("forever", `
    movi a2, 0
    loop a2, done
    addi a3, a3, 1
done:
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	rep := xlint.Analyze(prog, proc)
	if !hasCode(rep, "absint-loop-forever") {
		t.Errorf("LOOP with zero count not flagged; findings: %v", rep.Findings)
	}
}

// TestAbsintMemRange: a load whose effective address provably exceeds
// data memory is flagged.
func TestAbsintMemRange(t *testing.T) {
	rep, _, _ := analyzeAsm(t, `
    movi a2, 1
    slli a2, a2, 24
    l32i a4, a2, 0
    ret
`)
	// a2 = 16 MiB, far beyond the 1 MiB data memory.
	if !hasCode(rep, "absint-mem-range") {
		t.Errorf("provably out-of-range load not flagged; findings: %v", rep.Findings)
	}
}

// TestAbsintCheckRejectsOutOfInterval: the oracle must actually fire on
// a fabricated out-of-interval value — guarding against a vacuously
// passing soundness sweep.
func TestAbsintCheckRejectsOutOfInterval(t *testing.T) {
	rep, _, _ := analyzeAsm(t, `
    movi a2, 7
    addi a2, a2, 1
    ret
`)
	var regs [isa.NumRegs]uint32
	regs[0] = 0xFFFF_FFFF // link-register halt sentinel, as at ISS reset
	regs[2] = 12345       // pc 1 should see exactly 7
	err := rep.Abs.Check(1, &regs)
	if err == nil {
		t.Fatal("Check accepted a register value outside its interval")
	}
	if !strings.Contains(err.Error(), "a2") {
		t.Errorf("error does not name the violating register: %v", err)
	}
	regs[2] = 7
	if err := rep.Abs.Check(1, &regs); err != nil {
		t.Errorf("Check rejected the in-interval value: %v", err)
	}
}

// unitModel prices every macro-model variable at 1 pJ, so WCEC tests
// count "weighted events" with no fit dependency.
func unitModel() *core.MacroModel {
	m := &core.MacroModel{}
	for i := range m.Coef {
		m.Coef[i] = 1
	}
	return m
}
