package xlint_test

import (
	"strings"
	"testing"

	"xtenergy/internal/asm"
	"xtenergy/internal/hwlib"
	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/tie"
	"xtenergy/internal/xlint"
)

func baseProc(t *testing.T) *procgen.Processor {
	t.Helper()
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return proc
}

func analyzeSrc(t *testing.T, proc *procgen.Processor, src string) *xlint.Report {
	t.Helper()
	prog, err := asm.New(proc.TIE).Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return xlint.Analyze(prog, proc)
}

// findings returns the findings with the given code.
func findings(r *xlint.Report, code string) []xlint.Finding {
	var out []xlint.Finding
	for _, f := range r.Findings {
		if f.Code == code {
			out = append(out, f)
		}
	}
	return out
}

func TestCleanProgramHasNoFindings(t *testing.T) {
	r := analyzeSrc(t, baseProc(t), `
    movi a2, 7
    movi a3, 5
    add  a1, a2, a3
    ret
`)
	if len(r.Findings) != 0 {
		t.Fatalf("clean program produced findings: %v", r.Findings)
	}
}

func TestDefiniteUninitRead(t *testing.T) {
	r := analyzeSrc(t, baseProc(t), `
    movi a2, 7
    add  a1, a2, a3
    ret
`)
	fs := findings(r, "uninit-read")
	if len(fs) != 1 || fs[0].Sev != xlint.SevError || fs[0].Reg != 3 || fs[0].PC != 1 {
		t.Fatalf("uninit-read findings = %v, want one error for a3 at pc 1", fs)
	}
	if fs[0].Line != 3 {
		t.Errorf("finding line = %d, want 3", fs[0].Line)
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "uninit-read") {
		t.Errorf("Err() = %v, want uninit-read summary", err)
	}
}

// A register written on only one side of a branch is maybe-uninitialized
// at the join.
func TestMaybeUninitRead(t *testing.T) {
	r := analyzeSrc(t, baseProc(t), `
    movi a2, 1
    beqz a2, join
    movi a3, 5
join:
    add  a1, a3, a2
    ret
`)
	fs := findings(r, "uninit-read")
	if len(fs) != 1 || fs[0].Sev != xlint.SevWarn || fs[0].Reg != 3 {
		t.Fatalf("findings = %v, want one warning for a3", fs)
	}
	// Initializing on both sides silences it.
	r = analyzeSrc(t, baseProc(t), `
    movi a2, 1
    beqz a2, other
    movi a3, 5
    j join
other:
    movi a3, 9
join:
    add  a1, a3, a2
    ret
`)
	if fs := findings(r, "uninit-read"); len(fs) != 0 {
		t.Fatalf("both-sides init still flagged: %v", fs)
	}
}

func TestDeadWrite(t *testing.T) {
	r := analyzeSrc(t, baseProc(t), `
    movi a2, 1
    movi a2, 2
    mov  a1, a2
    ret
`)
	fs := findings(r, "dead-write")
	if len(fs) != 1 || fs[0].PC != 0 || fs[0].Reg != 2 {
		t.Fatalf("dead-write findings = %v, want one at pc 0 for a2", fs)
	}
	// The final register file is observable: a last write is never dead.
	r = analyzeSrc(t, baseProc(t), `
    movi a2, 1
    ret
`)
	if fs := findings(r, "dead-write"); len(fs) != 0 {
		t.Fatalf("final write flagged dead: %v", fs)
	}
	// A conditional move reads its old destination value, keeping the
	// prior write live.
	r = analyzeSrc(t, baseProc(t), `
    movi a2, 1
    movi a3, 0
    moveqz a2, a3, a3
    mov a1, a2
    ret
`)
	if fs := findings(r, "dead-write"); len(fs) != 0 {
		t.Fatalf("write kept live by conditional move flagged dead: %v", fs)
	}
}

func TestUnreachableBlock(t *testing.T) {
	r := analyzeSrc(t, baseProc(t), `
    movi a1, 1
    ret
    movi a2, 2
    movi a1, 3
    ret
`)
	fs := findings(r, "unreachable")
	if len(fs) != 1 || fs[0].PC != 2 {
		t.Fatalf("unreachable findings = %v, want one at pc 2", fs)
	}
}

func TestGuaranteedInterlockPair(t *testing.T) {
	proc := baseProc(t)
	r := analyzeSrc(t, proc, `
    movi a2, 0x100
    l32i a3, a2, 0
    add  a1, a3, a2
    ret
`)
	fs := findings(r, "interlock")
	if len(fs) != 1 || fs[0].PC != 2 || fs[0].Sev != xlint.SevNote {
		t.Fatalf("interlock findings = %v, want one note at pc 2", fs)
	}
	// A multiply feeding its consumer interlocks too.
	r = analyzeSrc(t, proc, `
    movi a2, 3
    mul  a3, a2, a2
    add  a1, a3, a2
    ret
`)
	if fs := findings(r, "interlock"); len(fs) != 1 || !strings.Contains(fs[0].Msg, "multiply") {
		t.Fatalf("multiply interlock findings = %v", fs)
	}
	// An unrelated consumer does not.
	r = analyzeSrc(t, proc, `
    movi a2, 0x100
    l32i a3, a2, 0
    add  a1, a2, a2
    mov  a4, a3
    ret
`)
	if fs := findings(r, "interlock"); len(fs) != 0 {
		t.Fatalf("independent consumer flagged: %v", fs)
	}
}

// The immediate-form TIE distinction from the PR 1 phantom-interlock
// fix: an Rt-field constant aliasing the load destination must not be
// reported as a guaranteed interlock.
func TestInterlockImmediateFormTIE(t *testing.T) {
	ext := &tie.Extension{
		Name: "lint",
		Instructions: []*tie.Instruction{
			{
				Name: "addk", Latency: 1, ReadsGeneral: true, WritesGeneral: true, ImmOperand: true,
				Datapath:  []tie.DatapathElem{{Component: hwlib.Component{Name: "u", Cat: hwlib.TIEAdd, Width: 32}}},
				Semantics: func(_ *tie.State, op tie.Operands) uint32 { return op.RsVal + uint32(op.Imm) },
			},
			{
				Name: "gadd", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
				Datapath:  []tie.DatapathElem{{Component: hwlib.Component{Name: "u", Cat: hwlib.TIEAdd, Width: 32}}},
				Semantics: func(_ *tie.State, op tie.Operands) uint32 { return op.RsVal + op.RtVal },
			},
		},
	}
	proc, err := procgen.Generate(procgen.Default(), ext)
	if err != nil {
		t.Fatal(err)
	}
	// addk's constant 3 aliases the load destination a3: NOT an interlock.
	r := analyzeSrc(t, proc, `
    movi a2, 0x100
    l32i a3, a2, 0
    addk a1, a2, 3
    ret
`)
	if fs := findings(r, "interlock"); len(fs) != 0 {
		t.Fatalf("immediate-form alias flagged as interlock: %v", fs)
	}
	// The register form genuinely interlocks.
	r = analyzeSrc(t, proc, `
    movi a2, 0x100
    l32i a3, a2, 0
    gadd a1, a2, a3
    ret
`)
	if fs := findings(r, "interlock"); len(fs) != 1 {
		t.Fatalf("register-form interlock not found: %v", r.Findings)
	}
}

func TestOptionAndEncodingChecks(t *testing.T) {
	proc := baseProc(t) // Default(): HasLoops=false, HasMul32=true
	prog := &iss.Program{Name: "hand", Code: []isa.Instr{
		{Op: isa.OpMOVI, Rd: 2, Imm: 3},
		{Op: isa.OpLOOP, Rs: 2, Imm: 1},
		{Op: isa.OpADD, Rd: 1, Rs: 70, Rt: 2}, // rs beyond the register file
		{Op: isa.OpJ, Imm: 99},                // target out of range
		{Op: isa.OpCUSTOM, CustomID: 9},       // undefined TIE id
		{Op: isa.OpRET},
	}}
	r := xlint.Analyze(prog, proc)
	for _, code := range []string{"loop-option", "reg-range", "invalid-target", "tie-undefined"} {
		if fs := findings(r, code); len(fs) == 0 {
			t.Errorf("no %s finding: %v", code, r.Findings)
		}
	}
	if max, ok := r.Max(); !ok || max != xlint.SevError {
		t.Fatalf("Max() = %v,%v", max, ok)
	}

	cfgNoMul := procgen.Default()
	cfgNoMul.HasMul32 = false
	noMul, err := procgen.Generate(cfgNoMul, nil)
	if err != nil {
		t.Fatal(err)
	}
	r = analyzeSrc(t, noMul, `
    movi a2, 3
    mul  a1, a2, a2
    ret
`)
	if fs := findings(r, "mul-option"); len(fs) != 1 || fs[0].Sev != xlint.SevWarn {
		t.Fatalf("mul-option findings = %v", fs)
	}
}

func TestAsmCheckOption(t *testing.T) {
	proc := baseProc(t)
	a := asm.New(proc.TIE, asm.WithProgramCheck(xlint.AsmCheck(proc)))
	// Error-severity finding fails assembly.
	if _, err := a.Assemble("t", "    add a1, a2, a3\n    ret\n"); err == nil || !strings.Contains(err.Error(), "uninit-read") {
		t.Fatalf("uninit read not rejected at assembly: %v", err)
	}
	// Warnings (dead write) pass.
	if _, err := a.Assemble("t", "    movi a2, 1\n    movi a2, 2\n    mov a1, a2\n    ret\n"); err != nil {
		t.Fatalf("warning-only program rejected: %v", err)
	}
}

// The call f / jx a0 return idiom must analyze cleanly: the indirect
// jump's over-approximated target set includes the call return site.
func TestCallReturnIdiom(t *testing.T) {
	r := analyzeSrc(t, baseProc(t), `
start:
    movi a2, 5
    call double
    mov  a1, a3
    ret
double:
    add a3, a2, a2
    jx a0
`)
	for _, f := range r.Findings {
		if f.Sev >= xlint.SevWarn {
			t.Fatalf("call/return idiom flagged: %v", r.Findings)
		}
	}
}

func TestZeroOverheadLoopCFG(t *testing.T) {
	cfg := procgen.Default()
	cfg.HasLoops = true
	proc, err := procgen.Generate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// a4 is only written inside the loop body; reading it after the loop
	// is clean only if the analysis knows the body executes at least
	// once... it cannot (LOOPNEZ may skip), so a maybe warning is right.
	r := analyzeSrc(t, proc, `
    movi a2, 3
    loopnez a2, done
    movi a4, 7
done:
    mov a1, a4
    ret
`)
	fs := findings(r, "uninit-read")
	if len(fs) != 1 || fs[0].Sev != xlint.SevWarn || fs[0].Reg != 4 {
		t.Fatalf("loopnez skip path: findings = %v, want maybe-uninit a4", fs)
	}
	// With LOOP (always enters), the body dominates the exit.
	r = analyzeSrc(t, proc, `
    movi a2, 3
    loop a2, done
    movi a4, 7
done:
    mov a1, a4
    ret
`)
	if fs := findings(r, "uninit-read"); len(fs) != 0 {
		t.Fatalf("loop-dominated init flagged: %v", fs)
	}
}
