package xlint_test

import (
	"testing"

	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/randprog"
	"xtenergy/internal/xlint"
)

// FuzzUninitDifferential checks the soundness half of the
// initialization dataflow against the simulator: whenever xlint reports
// NO uninit-read finding (neither definite nor maybe), executing the
// program must never read a register that was not written first. The
// NOP mutation deletes instructions without moving any branch target,
// so knocking out prologue initializers manufactures exactly the
// uninitialized-read shapes the analysis has to catch.
//
// The converse direction is intentionally unchecked: a maybe-uninit
// warning on a path the concrete input never takes is a correct
// over-approximation, not a bug.
func FuzzUninitDifferential(f *testing.F) {
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(int64(1), uint64(0))
	f.Add(int64(2), uint64(0x0000_0000_0001_fffe)) // every prologue movi gone
	f.Add(int64(3), uint64(0xaaaa_5555_00ff_1234))
	f.Add(int64(-9), uint64(1)<<17|uint64(1)<<30)
	f.Fuzz(func(t *testing.T, seed int64, mask uint64) {
		prog := randprog.Generate(seed, randprog.Options{AllowLoops: true})
		for i := range prog.Code {
			if i >= 64 {
				break
			}
			if mask&(uint64(1)<<i) != 0 && prog.Code[i].Op != isa.OpRET {
				prog.Code[i] = isa.Instr{Op: isa.OpNOP}
			}
		}
		rep := xlint.Analyze(prog, proc)
		for _, fd := range rep.Findings {
			if fd.Code == "uninit-read" {
				return // flagged: the guarantee is only for clean programs
			}
		}
		// xlint says every read is initialized on every path; the ISS must
		// agree on this path. Mutations can create runaway loops, so cap
		// cycles and inspect the partial trace even when the run errors.
		sim := iss.New(proc)
		_, err := sim.Run(prog, iss.Options{
			RecordUninitReads: true,
			MaxCycles:         200_000,
		})
		if ur := sim.UninitReads(); len(ur) > 0 {
			t.Fatalf("xlint passed seed=%d mask=%#x as fully initialized, but the ISS read uninitialized a%d at pc %d (run err: %v)",
				seed, mask, ur[0].Reg, ur[0].PC, err)
		}
	})
}
