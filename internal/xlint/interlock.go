package xlint

import (
	"xtenergy/internal/plan"
	"xtenergy/internal/procgen"
)

// hazardBetween reports whether the producer instruction arms a
// load-use or multiply-use hazard that the consumer instruction trips:
// the producer is a load or iterative multiply writing Rd, and the
// consumer reads that register through one of the bus-latched operand
// ports the interlock comparator watches (this is where the
// immediate-form TIE distinction matters — an immediate Rt field never
// trips the comparator).
func hazardBetween(producer, consumer plan.RegUse, producerRd, consRs, consRt uint8) bool {
	if !(producer.IsLoad || producer.IsMult) || !producer.WritesRd {
		return false
	}
	return (consumer.ReadsRs && consRs == producerRd) ||
		(consumer.ReadsRt && consRt == producerRd)
}

// entryHazard classifies the interlock exposure of a block's first
// instruction: guaranteed reports that every reachable way of entering
// the block carries the hazard, possible that at least one does. The
// hazard can only carry over edges with no front-end flush (sequential
// fall and zero-overhead loop-back), from a predecessor whose last
// retired instruction is the load/multiply producer.
func entryHazard(cfg *CFG, b *Block) (guaranteed, possible bool) {
	first := cfg.Plan.Recs[b.Start].Instr
	fu := cfg.Plan.Recs[b.Start].Use
	guaranteed = true
	if b.ID == cfg.Entry().ID {
		guaranteed = false // reset entry carries no hazard
	}
	anyPred := false
	for _, e := range b.Preds {
		p := cfg.Blocks[e.From]
		if !p.Reachable {
			continue
		}
		anyPred = true
		last := cfg.Plan.Recs[p.End-1].Instr
		pu := cfg.Plan.Recs[p.End-1].Use
		if e.Kind.CarriesHazard() && hazardBetween(pu, fu, last.Rd, first.Rs, first.Rt) {
			possible = true
		} else {
			guaranteed = false
		}
	}
	if !anyPred {
		guaranteed = false
	}
	return guaranteed && possible, possible
}

// analyzeInterlocks reports statically guaranteed interlock pairs: the
// consumer pays a stall cycle on every execution. Within a block the
// pair is adjacent instructions; across blocks it is a predecessor's
// last instruction feeding a successor's first over hazard-carrying
// edges from every reachable entry path.
func analyzeInterlocks(r *Report, proc *procgen.Processor) {
	cfg := r.CFG
	for _, b := range cfg.Blocks {
		if !b.Reachable {
			continue
		}
		for pc := b.Start + 1; pc < b.End; pc++ {
			prod, cons := cfg.Plan.Recs[pc-1].Instr, cfg.Plan.Recs[pc].Instr
			pu := cfg.Plan.Recs[pc-1].Use
			cu := cfg.Plan.Recs[pc].Use
			if hazardBetween(pu, cu, prod.Rd, cons.Rs, cons.Rt) {
				kind := "load"
				if pu.IsMult {
					kind = "multiply"
				}
				r.add("interlock", SevNote, pc, int(prod.Rd),
					"guaranteed %s-use interlock: a%d written at pc %d is consumed immediately (1 stall cycle per execution)",
					kind, prod.Rd, pc-1)
			}
		}
		if guaranteed, _ := entryHazard(cfg, b); guaranteed {
			r.add("interlock", SevNote, b.Start, -1,
				"guaranteed interlock on block entry: every path into pc %d ends with a load/multiply feeding it", b.Start)
		}
	}
}
