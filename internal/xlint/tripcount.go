package xlint

// Trip-count inference: turning the abstract interpreter's converged
// register intervals into finite bounds on back-edge traversals. Three
// structural patterns cover the corpus:
//
//   - zero-overhead hardware loops: the LOOP/LOOPNEZ count register's
//     interval at the setup instruction bounds body executions exactly;
//   - latch-tested counted loops ("addi r,r,-1; bnez r, head" and the
//     blt/bge up/down-counted variants): the induction step plus the
//     register's interval at the preheader bound taken-latch executions;
//   - header-tested loops ("head: beqz r, done; ...; addi r,r,1;
//     j head"): same induction reasoning with the test before the step.
//
// Every inference is guarded: a single latch per header, exactly one
// induction write (an ADDI with Rd == Rs, recognized via the plan's
// value-flow metadata) located in the latch block, a loop-invariant
// bound register, no inner cycle re-executing the latch block, and
// sign-safe arithmetic. Any guard failure degrades to an unbounded
// trip count — never to a wrong finite one. Lower bounds additionally
// require the loop to be single-exit (so no iteration can leave early)
// and its header to lie on every entry→exit path (so the loop cannot
// be bypassed entirely); otherwise the lower bound is 0, which is
// always sound for BCEC.

import (
	"math"

	"xtenergy/internal/isa"
	"xtenergy/internal/plan"
)

// Trip bounds the total number of traversals of one back edge over a
// whole program invocation. Hi is +Inf when no finite bound could be
// inferred. The slice returned by inferTrips is index-aligned with
// CFG.backEdges() and therefore with PathBounds' Loops.
type Trip struct {
	Lo, Hi float64
	// Source names the inference that produced the bound: "hwloop",
	// "latch-dec", "latch-cmp", "header-test", "nested" (a finite
	// per-entry bound scaled by enclosing loops), "unreachable", or
	// "unbounded".
	Source string
}

// Bounded reports whether the trip count has a finite upper bound.
func (t Trip) Bounded() bool { return !math.IsInf(t.Hi, 1) }

// inferTrips bounds every back edge of the CFG using the converged
// abstract states in abs.
func inferTrips(cfg *CFG, abs *AbsResult) []Trip {
	refs, isBack := cfg.backEdges()
	out := make([]Trip, len(refs))
	if len(refs) == 0 {
		return out
	}

	headers := make([]int, len(refs))
	lsets := make([]map[int]bool, len(refs))
	latches := make(map[int]int)
	for i, ref := range refs {
		headers[i] = cfg.Blocks[ref.from].Succs[ref.idx].To
		lsets[i] = naturalLoop(cfg, ref.from, headers[i])
		latches[headers[i]]++
	}

	type pe struct {
		lo, hi     float64
		src        string
		singleExit bool
	}
	per := make([]pe, len(refs))
	for i, ref := range refs {
		e := cfg.Blocks[ref.from].Succs[ref.idx]
		if abs.In[ref.from] == nil || abs.deadEdge[ref] {
			per[i] = pe{0, 0, "unreachable", true}
			continue
		}
		if e.Kind == EdgeLoopBack {
			lo, hi := hwLoopTrips(cfg, abs, headers[i])
			per[i] = pe{lo, hi, "hwloop", true}
			continue
		}
		lo, hi, src, single := branchTrips(cfg, abs, refs, isBack, lsets, latches, headers, i)
		per[i] = pe{lo, hi, src, single}
	}

	// Totals: a per-entry bound multiplies by (trips+1) of every strictly
	// enclosing loop (each pass of an enclosing body re-enters this one
	// at most once). Lower bounds survive only for single-exit loops
	// whose header no halting execution can bypass.
	for i := range refs {
		p := per[i]
		hi := p.hi
		src := p.src
		if hi > 0 && !math.IsInf(hi, 1) {
			for j := range refs {
				if j == i || !containsAll(lsets[j], lsets[i]) {
					continue
				}
				if math.IsInf(per[j].hi, 1) {
					hi = math.Inf(1)
					src = "unbounded"
					break
				}
				if per[j].hi > 0 {
					hi *= per[j].hi + 1
					src = "nested"
				}
			}
		}
		lo := p.lo
		if !p.singleExit || !headerMandatory(cfg, headers[i]) {
			lo = 0
		}
		out[i] = Trip{Lo: lo, Hi: hi, Source: src}
	}
	return out
}

// naturalLoop returns the blocks of the natural loop of back edge S→H:
// H plus every block that reaches S without passing through H.
func naturalLoop(cfg *CFG, s, h int) map[int]bool {
	l := map[int]bool{h: true}
	if s == h {
		return l
	}
	l[s] = true
	stack := []int{s}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range cfg.Blocks[id].Preds {
			if !l[e.From] {
				l[e.From] = true
				stack = append(stack, e.From)
			}
		}
	}
	return l
}

// containsAll reports sup ⊇ sub.
func containsAll(sup, sub map[int]bool) bool {
	if len(sup) < len(sub) {
		return false
	}
	for id := range sub {
		if !sup[id] {
			return false
		}
	}
	return true
}

// headerMandatory reports whether every entry→exit path of the full CFG
// passes through block h — the condition under which a loop's per-entry
// lower bound survives as a whole-invocation lower bound.
func headerMandatory(cfg *CFG, h int) bool {
	entry := cfg.Entry().ID
	if entry == h {
		return true
	}
	seen := make([]bool, len(cfg.Blocks))
	stack := []int{entry}
	seen[entry] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range cfg.Blocks[id].Succs {
			if e.To == ExitID {
				return false // exit reachable without visiting h
			}
			if e.To != h && !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return true
}

// hwLoopTrips bounds the LoopBack edge into header block h: body
// executions are the count register's value at the LOOP site (2^32 when
// LOOP sees zero), so traversals are one fewer.
func hwLoopTrips(cfg *CFG, abs *AbsResult, h int) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	found := false
	for _, l := range cfg.Loops {
		if l.Begin >= len(cfg.byPC) || cfg.byPC[l.Begin] != h {
			continue
		}
		st := abs.StateAt(l.At)
		if st == nil {
			continue // this setup site never executes
		}
		in := cfg.Plan.Recs[l.At].Instr
		cnt := st.get(in.Rs)
		var cLo, cHi float64
		if in.Op == isa.OpLOOPNEZ {
			// The body (and hence the back edge) is only reached when the
			// count was nonzero.
			v, ok := cnt.meet(Itv{1, maxU32})
			if !ok {
				cLo, cHi = 0, 0
			} else {
				cLo, cHi = float64(v.Lo-1), float64(v.Hi-1)
			}
		} else {
			switch {
			case cnt.Lo >= 1:
				cLo, cHi = float64(cnt.Lo-1), float64(cnt.Hi-1)
			case cnt == Itv{0, 0}:
				cLo, cHi = float64(maxU32), float64(maxU32) // LOOP 0: 2^32 iterations
			default:
				cLo, cHi = 0, float64(maxU32)
			}
		}
		found = true
		lo = math.Min(lo, cLo)
		hi = math.Max(hi, cHi)
	}
	if !found {
		return 0, 0 // no live setup site: the redirect can never arm
	}
	return lo, hi
}

// contCond is the loop-continuation condition on the induction register:
// the loop keeps iterating while the condition holds.
type contCond struct {
	kind   uint8 // ccNEZ: r != 0; ccLT: r < K; ccGE: r >= K
	signed bool
	k      Itv  // the bound K (constant interval, or the bound register's)
	ok     bool // condition recognized
}

const (
	ccNEZ = iota
	ccLT
	ccGE
)

// branchCont maps a conditional branch plus the continuing direction to
// a continuation condition on the branch's Rs register. kOf resolves the
// bound operand (register interval or immediate) for compares.
func branchCont(rec *plan.Rec, contTaken bool, kOf func(reg uint8) (Itv, bool)) contCond {
	in := rec.Instr
	kReg := func() (Itv, bool) { return kOf(in.Rt) }
	switch in.Op {
	case isa.OpBNEZ:
		if contTaken {
			return contCond{kind: ccNEZ, ok: true}
		}
	case isa.OpBEQZ:
		if !contTaken {
			return contCond{kind: ccNEZ, ok: true}
		}
	case isa.OpBLT, isa.OpBLTU:
		k, ok := kReg()
		if !ok {
			return contCond{}
		}
		if contTaken {
			return contCond{kind: ccLT, signed: in.Op == isa.OpBLT, k: k, ok: true}
		}
		return contCond{kind: ccGE, signed: in.Op == isa.OpBLT, k: k, ok: true}
	case isa.OpBGE, isa.OpBGEU:
		k, ok := kReg()
		if !ok {
			return contCond{}
		}
		if contTaken {
			return contCond{kind: ccGE, signed: in.Op == isa.OpBGE, k: k, ok: true}
		}
		return contCond{kind: ccLT, signed: in.Op == isa.OpBGE, k: k, ok: true}
	case isa.OpBLTI, isa.OpBGEI:
		k := itvConst(uint32(rec.SImm))
		lt := (in.Op == isa.OpBLTI) == contTaken
		if lt {
			return contCond{kind: ccLT, signed: true, k: k, ok: true}
		}
		return contCond{kind: ccGE, signed: true, k: k, ok: true}
	case isa.OpBLTUI, isa.OpBGEUI:
		k := itvConst(uint32(in.Rt))
		lt := (in.Op == isa.OpBLTUI) == contTaken
		if lt {
			return contCond{kind: ccLT, k: k, ok: true}
		}
		return contCond{kind: ccGE, k: k, ok: true}
	case isa.OpBGEZ:
		// continue while r >= 0 (signed): GE with K = 0.
		if contTaken {
			return contCond{kind: ccGE, signed: true, k: Itv{0, 0}, ok: true}
		}
	}
	return contCond{}
}

// branchTrips bounds back edge i (a Taken/Jump/Untaken latch) via the
// latch-test and header-test counted-loop patterns. It returns the
// per-entry traversal bounds, the pattern that matched, and whether the
// loop is single-exit (the condition for the lower bound to be real).
func branchTrips(cfg *CFG, abs *AbsResult, refs []edgeRef, isBack map[edgeRef]bool,
	lsets []map[int]bool, latches map[int]int, headers []int, i int) (lo, hi float64, src string, singleExit bool) {

	unbounded := func() (float64, float64, string, bool) { return 0, math.Inf(1), "unbounded", false }

	ref := refs[i]
	h := headers[i]
	l := lsets[i]
	if latches[h] > 1 {
		return unbounded() // another latch reaches the header without the step
	}
	sBlk := cfg.Blocks[ref.from]
	e := sBlk.Succs[ref.idx]

	// No inner cycle may contain the latch block (the induction step must
	// run exactly once per traversal).
	for j, other := range refs {
		if j == i {
			continue
		}
		if l[other.from] && headers[j] != h && l[headers[j]] && lsets[j][ref.from] {
			return unbounded()
		}
	}

	// Preheader interval of a register: join over the non-back entry
	// edges of the header.
	preheader := func(r uint8) (Itv, bool) {
		var v Itv
		live := false
		for _, pe := range cfg.Blocks[h].Preds {
			pref := edgeRef{pe.From, predEdgeIndex(cfg, pe)}
			if isBack[pref] {
				continue
			}
			st := abs.EdgeOut(pe.From, pref.idx)
			if st == nil {
				continue
			}
			if !live {
				v, live = st.get(r), true
			} else {
				v = v.join(st.get(r))
			}
		}
		return v, live
	}

	// Exits of the loop.
	var exits []edgeRef
	for id := range l {
		for idx, se := range cfg.Blocks[id].Succs {
			if se.To == ExitID || !l[se.To] {
				exits = append(exits, edgeRef{id, idx})
			}
		}
	}

	// tryPattern validates the induction structure for a test at testPC
	// on register r with the given continuation condition and applies the
	// count formula. Whether the test observes pre- or post-step values
	// follows from the instruction positions: a step in the test's own
	// block always runs first (the test terminates the block), so every
	// test — including the first — sees the stepped value.
	tryPattern := func(rec *plan.Rec, testPC int, contTaken bool, expectExit edgeRef) (float64, float64, bool, bool) {
		in := rec.Instr
		r := in.Rs
		kOf := func(breg uint8) (Itv, bool) {
			// The bound register must be loop-invariant.
			if writesIn(cfg, l, breg) != 0 {
				return Itv{}, false
			}
			st := abs.StateAt(testPC)
			if st == nil {
				return Itv{}, false
			}
			return st.get(breg), true
		}
		cc := branchCont(rec, contTaken, kOf)
		if !cc.ok {
			return 0, 0, false, false
		}
		// Exactly one write to r inside the loop: an ADDI r, r, c in the
		// latch block.
		stepPC := -1
		for id := range l {
			blk := cfg.Blocks[id]
			for pc := blk.Start; pc < blk.End; pc++ {
				if cfg.Plan.Recs[pc].Use.Writes&(1<<r) == 0 {
					continue
				}
				if stepPC >= 0 {
					return 0, 0, false, false
				}
				stepPC = pc
			}
		}
		if stepPC < 0 || cfg.byPC[stepPC] != ref.from {
			return 0, 0, false, false
		}
		srec := &cfg.Plan.Recs[stepPC]
		if srec.Flow != plan.FlowAddImm || srec.Instr.Rd != r || srec.Instr.Rs != r {
			return 0, 0, false, false
		}
		c := int64(srec.FlowK)
		v0, live := preheader(r)
		if !live {
			return 0, 0, true, true // loop never entered
		}
		testAfterStep := cfg.byPC[stepPC] == cfg.byPC[testPC]
		klo, khi, ok := tripFormula(cc, v0, c, testAfterStep)
		if !ok {
			return 0, 0, false, false
		}
		single := len(exits) == 1 && exits[0] == expectExit
		return klo, khi, true, single
	}

	var results [][2]float64
	singleExit = false
	src = "unbounded"

	// Pattern A: the back edge is the taken side of the latch's own test.
	if e.Kind == EdgeTaken {
		rec := &cfg.Plan.Recs[sBlk.End-1]
		if rec.Valid && rec.Def.Class == isa.ClassBranch {
			// Expected sole exit: the untaken edge of the latch.
			expect := edgeRef{ref.from, -1}
			for idx, se := range sBlk.Succs {
				if se.Kind == EdgeUntaken {
					expect = edgeRef{ref.from, idx}
				}
			}
			if klo, khi, ok, single := tryPattern(rec, sBlk.End-1, true, expect); ok {
				results = append(results, [2]float64{klo, khi})
				singleExit = singleExit || single
				if src == "unbounded" {
					src = "latch-cmp"
					if rec.Instr.Op == isa.OpBNEZ {
						src = "latch-dec"
					}
				}
			}
		}
	}

	// Pattern B: the header block ends in a test with exactly one edge
	// leaving the loop; any latch kind works.
	hBlk := cfg.Blocks[h]
	hrec := &cfg.Plan.Recs[hBlk.End-1]
	if hrec.Valid && hrec.Def.Class == isa.ClassBranch {
		exitIdx, contIdx := -1, -1
		for idx, se := range hBlk.Succs {
			if se.Kind != EdgeTaken && se.Kind != EdgeUntaken {
				continue
			}
			if se.To == ExitID || !l[se.To] {
				if exitIdx >= 0 {
					exitIdx = -2 // both directions leave: not a loop test
				} else {
					exitIdx = idx
				}
			} else {
				contIdx = idx
			}
		}
		if exitIdx >= 0 && contIdx >= 0 {
			contTaken := hBlk.Succs[contIdx].Kind == EdgeTaken
			if klo, khi, ok, single := tryPattern(hrec, hBlk.End-1, contTaken, edgeRef{h, exitIdx}); ok {
				results = append(results, [2]float64{klo, khi})
				singleExit = singleExit || single
				if src == "unbounded" {
					src = "header-test"
				}
			}
		}
	}

	if len(results) == 0 {
		return unbounded()
	}
	// Multiple matching patterns bound the same count: intersect.
	lo, hi = results[0][0], results[0][1]
	for _, r := range results[1:] {
		lo = math.Max(lo, r[0])
		hi = math.Min(hi, r[1])
	}
	return lo, hi, src, singleExit
}

// predEdgeIndex recovers the successor index of a predecessor edge.
func predEdgeIndex(cfg *CFG, e Edge) int {
	for idx, se := range cfg.Blocks[e.From].Succs {
		if se == e {
			return idx
		}
	}
	return -1
}

// writesIn counts the instructions inside loop l that architecturally
// write register r.
func writesIn(cfg *CFG, l map[int]bool, r uint8) int {
	n := 0
	for id := range l {
		blk := cfg.Blocks[id]
		for pc := blk.Start; pc < blk.End; pc++ {
			if cfg.Plan.Recs[pc].Use.Writes&(1<<r) != 0 {
				n++
			}
		}
	}
	return n
}

// tripFormula counts back-edge traversals for induction value v0 (the
// preheader interval), step c per iteration, and continuation condition
// cc. testAfterStep: the test observes v0 + i*c after i steps (latch
// tests); otherwise v0 + i*c before step i+1 (header tests, where the
// traversal count equals the number of continuing tests).
func tripFormula(cc contCond, v0 Itv, c int64, testAfterStep bool) (lo, hi float64, ok bool) {
	max0 := func(v int64) float64 {
		if v < 0 {
			return 0
		}
		return float64(v)
	}
	switch cc.kind {
	case ccNEZ:
		if c == -1 {
			if testAfterStep {
				// t_i = v0 - i, taken while nonzero: v0 - 1 traversals,
				// but v0 = 0 wraps to ~2^32 — no bound unless v0 >= 1.
				if v0.Lo >= 1 {
					return float64(v0.Lo - 1), float64(v0.Hi - 1), true
				}
				return 0, 0, false
			}
			// Header test: v0 tests succeed before the value hits zero
			// exactly (any v0, no wrap possible).
			return float64(v0.Lo), float64(v0.Hi), true
		}
		if c < -1 && v0.IsConst() && v0.Lo%(-c) == 0 {
			n := v0.Lo / (-c)
			if testAfterStep {
				if n >= 1 {
					return float64(n - 1), float64(n - 1), true
				}
				return 0, 0, false
			}
			return float64(n), float64(n), true
		}
		return 0, 0, false
	case ccLT:
		if c < 1 {
			return 0, 0, false
		}
		a, b, ka, kb, okV := condViews(cc, v0)
		if !okV {
			return 0, 0, false
		}
		d := int64(0)
		if testAfterStep {
			d = 1
		}
		return max0(ceilDiv(ka-b, c) - d), max0(ceilDiv(kb-a, c) - d), true
	case ccGE:
		if c != -1 {
			return 0, 0, false
		}
		a, b, ka, kb, okV := condViews(cc, v0)
		if !okV {
			return 0, 0, false
		}
		if !cc.signed && ka < 1 {
			return 0, 0, false // unsigned >= 0 never exits: would wrap
		}
		d := int64(1)
		if testAfterStep {
			d = 0
		}
		return max0(a - kb + d), max0(b - ka + d), true
	}
	return 0, 0, false
}

// condViews resolves the numeric views of the induction start interval
// and the bound K under the condition's signedness; fails when a signed
// compare sees a sign-straddling interval.
func condViews(cc contCond, v0 Itv) (a, b, ka, kb int64, ok bool) {
	if cc.signed {
		a, b, ok = v0.signedView()
		if !ok {
			return
		}
		ka, kb, ok = cc.k.signedView()
		return
	}
	return v0.Lo, v0.Hi, cc.k.Lo, cc.k.Hi, true
}

func ceilDiv(x, c int64) int64 {
	if x <= 0 {
		return 0
	}
	return (x + c - 1) / c
}
