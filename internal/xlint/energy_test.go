package xlint_test

import (
	"testing"

	"xtenergy/internal/core"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/workloads"
	"xtenergy/internal/xlint"
)

// boundsModel is a handcrafted macro-model with every coefficient
// nonzero — including a negative one (OLS fits do produce them) — so the
// interval arithmetic's sign handling is exercised, not just the
// all-positive easy case.
func boundsModel() *core.MacroModel {
	m := &core.MacroModel{}
	for i := 0; i < core.NumVars; i++ {
		m.Coef[i] = 10 + float64(i)
	}
	m.Coef[core.VBranchUntaken] = -3.5 // negative coefficient on purpose
	m.Coef[core.VInterlock] = 25
	return m
}

const eps = 1e-6

// TestBoundsBracketEveryWorkload is the acceptance criterion: for every
// registered workload, the static per-block variable intervals —
// instantiated with the dynamic block execution counts — must bracket
// the variables the ISS actually measured, and the derived energy
// interval must bracket the macro-model estimate.
func TestBoundsBracketEveryWorkload(t *testing.T) {
	model := boundsModel()
	cfgP := procgen.Default()
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			proc, prog, err := w.Build(cfgP)
			if err != nil {
				t.Fatal(err)
			}
			cfg := xlint.BuildCFG(prog, proc.TIE)
			bounds, err := xlint.ComputeBounds(cfg, proc)
			if err != nil {
				t.Fatal(err)
			}

			counter := cfg.NewBlockCounter()
			res, err := iss.New(proc).Run(prog, iss.Options{TraceSink: counter.Sink})
			if err != nil {
				t.Fatal(err)
			}
			actual, err := core.Extract(proc.TIE, &res.Stats)
			if err != nil {
				t.Fatal(err)
			}

			lo, hi, err := bounds.InstantiateVars(counter.Counts())
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < core.NumVars; i++ {
				if actual[i] < lo[i]-eps || actual[i] > hi[i]+eps {
					t.Errorf("var %s: actual %.3f outside static bounds [%.3f, %.3f]",
						core.VarName(i), actual[i], lo[i], hi[i])
				}
			}

			eLo, eHi := xlint.EnergyInterval(model, lo, hi)
			est := model.EstimatePJ(actual)
			if est < eLo-eps || est > eHi+eps {
				t.Errorf("energy %.3f pJ outside static bounds [%.3f, %.3f]", est, eLo, eHi)
			}
			if eLo > eHi {
				t.Errorf("inverted energy interval [%.3f, %.3f]", eLo, eHi)
			}
		})
	}
}

// TestBoundsExactOnStraightLine pins the sharper property: on a
// straight-line program with no branches, loads, or cache variability
// beyond the first fetch, the only slack is the I-cache interval.
func TestBoundsExactOnStraightLine(t *testing.T) {
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	w := core.Workload{Name: "straight", Source: `
    movi a2, 7
    movi a3, 5
    add  a4, a2, a3
    sub  a1, a4, a3
    ret
`}
	_, prog, err := (&core.Workload{Name: w.Name, Source: w.Source}).Build(procgen.Default())
	if err != nil {
		t.Fatal(err)
	}
	cfg := xlint.BuildCFG(prog, proc.TIE)
	bounds, err := xlint.ComputeBounds(cfg, proc)
	if err != nil {
		t.Fatal(err)
	}
	counter := cfg.NewBlockCounter()
	res, err := iss.New(proc).Run(prog, iss.Options{TraceSink: counter.Sink})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := bounds.InstantiateVars(counter.Counts())
	if err != nil {
		t.Fatal(err)
	}
	// Four arith cycles exactly; the RET halts (lo), never redirects.
	if lo[core.VArith] != 4 || hi[core.VArith] != 4 {
		t.Errorf("VArith bounds [%g,%g], want exactly 4", lo[core.VArith], hi[core.VArith])
	}
	if lo[core.VJump] != 1 || hi[core.VJump] != 3 {
		t.Errorf("VJump bounds [%g,%g], want [1,3]", lo[core.VJump], hi[core.VJump])
	}
	actual, err := core.Extract(proc.TIE, &res.Stats)
	if err != nil {
		t.Fatal(err)
	}
	if actual[core.VJump] != 1 {
		t.Errorf("actual VJump = %g, want 1 (halting ret)", actual[core.VJump])
	}
}

// TestPathBounds exercises the simulation-free per-invocation bound: the
// acyclic interval plus symbolic loop terms must bracket the actual
// energy once the loop term is instantiated with the dynamic back-edge
// trip count.
func TestPathBounds(t *testing.T) {
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	model := boundsModel()
	w := &core.Workload{Name: "looped", Source: `
    movi a2, 10
    movi a1, 0
top:
    addi a1, a1, 3
    addi a2, a2, -1
    bnez a2, top
    ret
`}
	_, prog, err := w.Build(procgen.Default())
	if err != nil {
		t.Fatal(err)
	}
	cfg := xlint.BuildCFG(prog, proc.TIE)
	bounds, err := xlint.ComputeBounds(cfg, proc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := bounds.PathBounds(model)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loops) != 1 {
		t.Fatalf("loop terms = %+v, want exactly one back edge", rep.Loops)
	}
	if rep.Acyclic.Lo > rep.Acyclic.Hi || rep.Loops[0].PerIter.Lo > rep.Loops[0].PerIter.Hi {
		t.Fatalf("inverted intervals: %+v", rep)
	}

	res, err := iss.New(proc).Run(prog, iss.Options{})
	if err != nil {
		t.Fatal(err)
	}
	actual, err := core.Extract(proc.TIE, &res.Stats)
	if err != nil {
		t.Fatal(err)
	}
	est := model.EstimatePJ(actual)
	// The loop body runs 10 times: 9 of them via the back edge.
	const trips = 9
	lo := rep.Acyclic.Lo + trips*rep.Loops[0].PerIter.Lo
	hi := rep.Acyclic.Hi + trips*rep.Loops[0].PerIter.Hi
	if est < lo-eps || est > hi+eps {
		t.Errorf("energy %.3f outside path bounds [%.3f, %.3f] at %d trips", est, lo, hi, trips)
	}

	// A program that cannot halt without iterating has no acyclic bound.
	w2 := &core.Workload{Name: "forever", Source: `
spin:
    movi a2, 1
    bnez a2, spin
    j spin
`}
	_, prog2, err := w2.Build(procgen.Default())
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := xlint.BuildCFG(prog2, proc.TIE)
	bounds2, err := xlint.ComputeBounds(cfg2, proc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bounds2.PathBounds(model); err == nil {
		t.Error("non-halting program got an acyclic bound")
	}
}
