package xlint

// Abstract interpretation over the predecoded plan IR: an interval +
// constant-propagation domain for the 64 general registers, propagated
// to a fixpoint over the CFG with widening at loop headers. The
// converged per-pc states feed three consumers:
//
//   - value-aware findings (statically dead branch edges, zero-trip
//     and never-terminating zero-overhead loops, accesses that are
//     out of RAM on every execution),
//   - the trip-count engine (tripcount.go), which turns count-register
//     intervals and induction-variable steps into finite bounds on
//     back-edge traversals,
//   - the WCEC instantiation (wcec.go), which multiplies those bounds
//     into PathBounds' symbolic loop terms.
//
// Soundness contract: for every reachable pc, the interval of each
// register contains every value the ISS can observe in that register
// immediately before executing that pc (iss.Options.RegProbe is the
// dynamic oracle the differential tests check this against). Transfer
// functions mirror the exec-table semantics in internal/iss exactly;
// anything not modeled precisely degrades to [0, 2^32-1], never to a
// narrower guess.

import (
	"fmt"
	"math/bits"

	"xtenergy/internal/isa"
	"xtenergy/internal/plan"
	"xtenergy/internal/procgen"
)

// maxU32 is the top of the unsigned 32-bit value lattice.
const maxU32 = int64(1)<<32 - 1

// signBit is the unsigned value of the smallest negative int32.
const signBit = int64(1) << 31

// absHaltPC mirrors the simulator's link-register halt sentinel.
const absHaltPC = int64(0xFFFF_FFFF)

// Itv is a closed interval of unsigned 32-bit register values,
// Lo <= Hi, both within [0, 2^32-1].
type Itv struct{ Lo, Hi int64 }

func itvTop() Itv            { return Itv{0, maxU32} }
func itvConst(v uint32) Itv  { return Itv{int64(v), int64(v)} }
func (a Itv) IsTop() bool    { return a.Lo == 0 && a.Hi == maxU32 }
func (a Itv) IsConst() bool  { return a.Lo == a.Hi }
func (a Itv) Width() int64   { return a.Hi - a.Lo }
func (a Itv) String() string { return fmt.Sprintf("[%d,%d]", a.Lo, a.Hi) }

// Contains reports whether v lies in the interval.
func (a Itv) Contains(v uint32) bool { return int64(v) >= a.Lo && int64(v) <= a.Hi }

func (a Itv) join(b Itv) Itv {
	if b.Lo < a.Lo {
		a.Lo = b.Lo
	}
	if b.Hi > a.Hi {
		a.Hi = b.Hi
	}
	return a
}

// meet intersects; ok is false when the result is empty.
func (a Itv) meet(b Itv) (Itv, bool) {
	if b.Lo > a.Lo {
		a.Lo = b.Lo
	}
	if b.Hi < a.Hi {
		a.Hi = b.Hi
	}
	return a, a.Lo <= a.Hi
}

// signedView returns the interval reinterpreted as signed int32 values
// when it does not straddle the sign boundary (ok=false when it does).
func (a Itv) signedView() (lo, hi int64, ok bool) {
	switch {
	case a.Hi < signBit: // entirely non-negative
		return a.Lo, a.Hi, true
	case a.Lo >= signBit: // entirely negative
		return a.Lo - (maxU32 + 1), a.Hi - (maxU32 + 1), true
	}
	return 0, 0, false
}

// fromSigned encodes a signed int32 interval back into the unsigned
// domain; representable only when it does not cross zero into wraparound
// (i.e. it lies entirely in [-2^31, -1] or [0, 2^31-1]).
func fromSigned(lo, hi int64) (Itv, bool) {
	if lo > hi {
		return Itv{}, false
	}
	switch {
	case lo >= 0:
		return Itv{lo, hi}, true
	case hi < 0:
		return Itv{lo + maxU32 + 1, hi + maxU32 + 1}, true
	}
	return Itv{}, false
}

// modAdd adds two intervals with 32-bit wraparound: exact when the
// concrete sums all land in the same 2^32 window, top when they
// straddle a wrap boundary.
func modAdd(a, b Itv) Itv {
	lo, hi := a.Lo+b.Lo, a.Hi+b.Hi
	if hi <= maxU32 {
		return Itv{lo, hi}
	}
	if lo > maxU32 {
		return Itv{lo - (maxU32 + 1), hi - (maxU32 + 1)}
	}
	return itvTop()
}

func modSub(a, b Itv) Itv {
	lo, hi := a.Lo-b.Hi, a.Hi-b.Lo
	if lo >= 0 {
		return Itv{lo, hi}
	}
	if hi < 0 {
		return Itv{lo + maxU32 + 1, hi + maxU32 + 1}
	}
	return itvTop()
}

// bitLen returns the number of bits needed to represent v (0 for 0).
func bitLen(v int64) int { return bits.Len64(uint64(v)) }

// RegState is the abstract register file at one program point.
type RegState struct {
	R [isa.NumRegs]Itv
}

func (s *RegState) get(r uint8) Itv {
	if int(r) >= isa.NumRegs {
		return itvTop()
	}
	return s.R[r]
}

func (s *RegState) set(r uint8, v Itv) {
	if int(r) < isa.NumRegs {
		s.R[r] = v
	}
}

// joinInto merges o into s; returns true when s changed.
func (s *RegState) joinInto(o *RegState) bool {
	changed := false
	for i := range s.R {
		j := s.R[i].join(o.R[i])
		if j != s.R[i] {
			s.R[i] = j
			changed = true
		}
	}
	return changed
}

// widenFrom widens s relative to its previous value prev: any bound
// still moving after the join threshold jumps straight to the lattice
// extreme, guaranteeing termination.
func (s *RegState) widenFrom(prev *RegState) {
	for i := range s.R {
		if s.R[i].Lo < prev.R[i].Lo {
			s.R[i].Lo = 0
		}
		if s.R[i].Hi > prev.R[i].Hi {
			s.R[i].Hi = maxU32
		}
	}
}

// entryState is the abstract state at program entry: reset zeroes the
// register file and initializes a0 to the halt sentinel.
func entryState() *RegState {
	st := &RegState{}
	st.R[0] = Itv{absHaltPC, absHaltPC}
	return st
}

// widenThreshold is the number of in-state changes a loop-header block
// tolerates before its still-moving bounds are widened to the extremes.
const widenThreshold = 4

// narrowRounds caps the post-widening narrowing iterations (see
// Interpret); narrowing usually converges in one or two rounds.
const narrowRounds = 3

// AbsResult is the outcome of abstract interpretation of one program.
type AbsResult struct {
	CFG *CFG
	// In[id] is the converged abstract state at entry of block id; nil
	// when the interpreter never reached the block.
	In []*RegState
	// at[pc] is the pre-execution state per instruction; nil when the
	// instruction is unreachable.
	at []*RegState
	// deadEdge marks successor edges whose branch condition is
	// statically impossible at the converged states.
	deadEdge map[edgeRef]bool
	memBytes int64
}

// StateAt returns the converged abstract register state immediately
// before the instruction at pc executes, or nil when pc is statically
// unreachable (or out of range).
func (a *AbsResult) StateAt(pc int) *RegState {
	if pc < 0 || pc >= len(a.at) {
		return nil
	}
	return a.at[pc]
}

// Check validates one dynamic register-file observation against the
// static state at pc: every register's value must lie inside its
// interval. It returns a descriptive error on the first violation —
// the soundness oracle for iss.Options.RegProbe differential tests.
func (a *AbsResult) Check(pc int, regs *[isa.NumRegs]uint32) error {
	st := a.StateAt(pc)
	if st == nil {
		return fmt.Errorf("absint: pc %d executed but statically unreachable", pc)
	}
	for r := 0; r < isa.NumRegs; r++ {
		if !st.R[r].Contains(regs[r]) {
			return fmt.Errorf("absint: pc %d: a%d = %d outside %v", pc, r, regs[r], st.R[r])
		}
	}
	return nil
}

// Interpret runs the abstract interpreter over the CFG to a fixpoint
// and returns the per-block and per-pc states. proc supplies the memory
// size for address-range findings.
func (c *CFG) Interpret(proc *procgen.Processor) *AbsResult {
	res := &AbsResult{
		CFG:      c,
		In:       make([]*RegState, len(c.Blocks)),
		at:       make([]*RegState, len(c.Prog.Code)),
		deadEdge: make(map[edgeRef]bool),
		memBytes: int64(proc.Config.MemBytes),
	}
	if len(c.Blocks) == 0 {
		return res
	}

	_, isBack := c.backEdges()
	isHeader := make([]bool, len(c.Blocks))
	for ref := range isBack {
		isHeader[c.Blocks[ref.from].Succs[ref.idx].To] = true
	}

	entry := c.Entry().ID
	res.In[entry] = entryState()

	joins := make([]int, len(c.Blocks))
	inQueue := make([]bool, len(c.Blocks))
	queue := []int{entry}
	inQueue[entry] = true

	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		inQueue[id] = false

		blk := c.Blocks[id]
		out := *res.In[id]
		for pc := blk.Start; pc < blk.End; pc++ {
			transferRec(&out, &c.Plan.Recs[pc], pc)
		}
		for i, e := range blk.Succs {
			if e.To == ExitID {
				continue
			}
			refined := out
			if !refineEdge(&refined, c, blk, e.Kind) {
				continue // statically impossible edge
			}
			to := e.To
			if res.In[to] == nil {
				st := refined
				res.In[to] = &st
				joins[to] = 0
			} else {
				prev := *res.In[to]
				if !res.In[to].joinInto(&refined) {
					continue
				}
				// Widen only state growth carried by the loop's own back
				// edges. Growth arriving on forward edges stabilizes once
				// its source loop does; widening it away would destroy
				// bounds the enclosing loop maintains (e.g. an outer
				// induction variable that is invariant in the inner loop).
				if isBack[edgeRef{id, i}] {
					joins[to]++
					if isHeader[to] && joins[to] > widenThreshold {
						res.In[to].widenFrom(&prev)
						// re-check: widening may be a no-op rename
						if *res.In[to] == prev {
							continue
						}
					}
				}
			}
			if !inQueue[to] {
				inQueue[to] = true
				queue = append(queue, to)
			}
		}
	}

	// Narrowing: widening at one header can destroy bounds that belong to
	// an enclosing loop (the inner header sees the outer induction
	// variable change while the outer loop converges and widens it away).
	// From the widened post-fixpoint, re-applying the transfer recovers
	// such bounds: lfp ⊑ X implies lfp ⊑ F(X) by monotonicity, so every
	// round stays a sound over-approximation. A few rounds in reverse
	// postorder (reading already-narrowed predecessor states) suffice;
	// the cap guards against oscillation.
	rpo := c.ReversePostorder()
	for round := 0; round < narrowRounds; round++ {
		newIn := make([]*RegState, len(c.Blocks))
		stateOf := func(id int) *RegState {
			if newIn[id] != nil {
				return newIn[id]
			}
			return res.In[id]
		}
		for _, blk := range rpo {
			var acc *RegState
			if blk.ID == entry {
				e := entryState()
				acc = e
			}
			for _, pe := range blk.Preds {
				pin := stateOf(pe.From)
				if pin == nil {
					continue
				}
				pblk := c.Blocks[pe.From]
				out := *pin
				for pc := pblk.Start; pc < pblk.End; pc++ {
					transferRec(&out, &c.Plan.Recs[pc], pc)
				}
				if !refineEdge(&out, c, pblk, pe.Kind) {
					continue
				}
				if acc == nil {
					st := out
					acc = &st
				} else {
					acc.joinInto(&out)
				}
			}
			newIn[blk.ID] = acc
		}
		changed := false
		for id := range res.In {
			a, b := res.In[id], newIn[id]
			switch {
			case a == nil && b == nil:
			case a == nil || b == nil || *a != *b:
				changed = true
			}
		}
		res.In = newIn
		if !changed {
			break
		}
	}

	// Materialize per-pc pre-states and the final dead-edge set from the
	// converged block states.
	for _, blk := range c.Blocks {
		if res.In[blk.ID] == nil {
			continue
		}
		out := *res.In[blk.ID]
		for pc := blk.Start; pc < blk.End; pc++ {
			st := out
			res.at[pc] = &st
			transferRec(&out, &c.Plan.Recs[pc], pc)
		}
		for i, e := range blk.Succs {
			refined := out
			if !refineEdge(&refined, c, blk, e.Kind) {
				res.deadEdge[edgeRef{blk.ID, i}] = true
			}
		}
	}
	return res
}

// EdgeOut returns the abstract state flowing along successor edge idx of
// block from (the block's out-state refined by the edge's branch
// condition), or nil when the block is unreachable or the edge is dead.
func (a *AbsResult) EdgeOut(from, idx int) *RegState {
	if a.In[from] == nil || a.deadEdge[edgeRef{from, idx}] {
		return nil
	}
	blk := a.CFG.Blocks[from]
	out := *a.In[from]
	for pc := blk.Start; pc < blk.End; pc++ {
		transferRec(&out, &a.CFG.Plan.Recs[pc], pc)
	}
	if !refineEdge(&out, a.CFG, blk, blk.Succs[idx].Kind) {
		return nil
	}
	return &out
}

// refineEdge narrows st with the condition implied by taking an edge of
// the given kind out of blk, mirroring the exec-table branch semantics.
// It returns false when the condition is unsatisfiable under st (the
// edge cannot be taken).
func refineEdge(st *RegState, c *CFG, blk *Block, kind EdgeKind) bool {
	rec := &c.Plan.Recs[blk.End-1]
	if !rec.Valid {
		return true
	}
	in := rec.Instr
	switch kind {
	case EdgeTaken:
		return refineBranch(st, rec, true)
	case EdgeUntaken:
		return refineBranch(st, rec, false)
	case EdgeFall:
		if in.Op == isa.OpLOOPNEZ {
			// Entering the body implies the count register is nonzero.
			v, ok := st.get(in.Rs).meet(Itv{1, maxU32})
			if !ok {
				return false
			}
			st.set(in.Rs, v)
		}
	case EdgeLoopSkip:
		// LOOPNEZ skipped the body: the count register is zero.
		v, ok := st.get(in.Rs).meet(Itv{0, 0})
		if !ok {
			return false
		}
		st.set(in.Rs, v)
	}
	return true
}

// refineBranch narrows st with the outcome of the conditional branch in
// rec; returns false when that outcome is statically impossible.
func refineBranch(st *RegState, rec *plan.Rec, taken bool) bool {
	in := rec.Instr
	rs := st.get(in.Rs)

	// Same-register register-register compares decide unconditionally.
	if rec.Def.Format == isa.FormatBranchRR && in.Rs == in.Rt {
		switch in.Op {
		case isa.OpBEQ, isa.OpBGE, isa.OpBGEU, isa.OpBALL:
			return taken
		case isa.OpBNE, isa.OpBLT, isa.OpBLTU, isa.OpBNALL:
			return !taken
		case isa.OpBANY: // rs&rs != 0  <=>  rs != 0
			return refineNEZ(st, in.Rs, rs, taken)
		case isa.OpBNONE: // rs&rs == 0  <=>  rs == 0
			return refineNEZ(st, in.Rs, rs, !taken)
		}
		return true
	}

	switch in.Op {
	case isa.OpBEQZ:
		return refineNEZ(st, in.Rs, rs, !taken)
	case isa.OpBNEZ:
		return refineNEZ(st, in.Rs, rs, taken)
	case isa.OpBLTZ:
		if taken {
			return meetReg(st, in.Rs, Itv{signBit, maxU32})
		}
		return meetReg(st, in.Rs, Itv{0, signBit - 1})
	case isa.OpBGEZ:
		if taken {
			return meetReg(st, in.Rs, Itv{0, signBit - 1})
		}
		return meetReg(st, in.Rs, Itv{signBit, maxU32})
	case isa.OpBEQI:
		return refineEQ(st, in.Rs, itvConst(uint32(rec.SImm)), taken)
	case isa.OpBNEI:
		return refineEQ(st, in.Rs, itvConst(uint32(rec.SImm)), !taken)
	case isa.OpBLTI:
		return refineSignedLess(st, in.Rs, int64(rec.SImm), taken)
	case isa.OpBGEI:
		return refineSignedLess(st, in.Rs, int64(rec.SImm), !taken)
	case isa.OpBLTUI:
		return refineUnsignedLess(st, in.Rs, int64(in.Rt), taken)
	case isa.OpBGEUI:
		return refineUnsignedLess(st, in.Rs, int64(in.Rt), !taken)
	case isa.OpBBCI:
		// Taken means the bit is clear.
		return refineBit(rs, uint(in.Rt&31), taken)
	case isa.OpBBSI:
		return refineBit(rs, uint(in.Rt&31), !taken)
	case isa.OpBEQ:
		return refineEQRR(st, in.Rs, in.Rt, taken)
	case isa.OpBNE:
		return refineEQRR(st, in.Rs, in.Rt, !taken)
	case isa.OpBLT:
		return refineSignedLessRR(st, in.Rs, in.Rt, taken)
	case isa.OpBGE:
		return refineSignedLessRR(st, in.Rs, in.Rt, !taken)
	case isa.OpBLTU:
		return refineUnsignedLessRR(st, in.Rs, in.Rt, taken)
	case isa.OpBGEU:
		return refineUnsignedLessRR(st, in.Rs, in.Rt, !taken)
	case isa.OpBANY:
		rt := st.get(in.Rt)
		if rs.IsConst() && rt.IsConst() {
			return (uint32(rs.Lo)&uint32(rt.Lo) != 0) == taken
		}
		if taken && (rs == (Itv{0, 0}) || rt == (Itv{0, 0})) {
			return false
		}
	case isa.OpBNONE:
		rt := st.get(in.Rt)
		if rs.IsConst() && rt.IsConst() {
			return (uint32(rs.Lo)&uint32(rt.Lo) == 0) == taken
		}
		if !taken && (rs == (Itv{0, 0}) || rt == (Itv{0, 0})) {
			return false
		}
	case isa.OpBALL:
		rt := st.get(in.Rt)
		if rs.IsConst() && rt.IsConst() {
			return (uint32(rs.Lo)&uint32(rt.Lo) == uint32(rt.Lo)) == taken
		}
		if !taken && rt == (Itv{0, 0}) {
			return false // rs & 0 == 0 always holds
		}
	case isa.OpBNALL:
		rt := st.get(in.Rt)
		if rs.IsConst() && rt.IsConst() {
			return (uint32(rs.Lo)&uint32(rt.Lo) != uint32(rt.Lo)) == taken
		}
		if taken && rt == (Itv{0, 0}) {
			return false
		}
	}
	return true
}

func meetReg(st *RegState, r uint8, with Itv) bool {
	v, ok := st.get(r).meet(with)
	if !ok {
		return false
	}
	st.set(r, v)
	return true
}

// refineNEZ applies "r != 0" (nez=true) or "r == 0" (nez=false).
func refineNEZ(st *RegState, r uint8, v Itv, nez bool) bool {
	if !nez {
		return meetReg(st, r, Itv{0, 0})
	}
	if v.Lo == 0 {
		if v.Hi == 0 {
			return false
		}
		st.set(r, Itv{1, v.Hi})
	}
	return true
}

// refineEQ applies "r == k" (eq=true) or "r != k" against a constant.
func refineEQ(st *RegState, r uint8, k Itv, eq bool) bool {
	v := st.get(r)
	if eq {
		return meetReg(st, r, k)
	}
	if v.IsConst() && v == k {
		return false
	}
	if v.Lo == k.Lo && v.Lo < v.Hi {
		st.set(r, Itv{v.Lo + 1, v.Hi})
	} else if v.Hi == k.Hi && v.Lo < v.Hi {
		st.set(r, Itv{v.Lo, v.Hi - 1})
	}
	return true
}

// refineSignedLess applies "signed(r) < k" (less=true) or ">= k".
func refineSignedLess(st *RegState, r uint8, k int64, less bool) bool {
	v := st.get(r)
	lo, hi, ok := v.signedView()
	if !ok {
		return true // straddles the sign boundary: no refinement
	}
	if less {
		hi = min64(hi, k-1)
	} else {
		lo = max64(lo, k)
	}
	nv, ok := fromSigned(lo, hi)
	if lo > hi {
		return false
	}
	if ok {
		st.set(r, nv)
	}
	return true
}

// refineUnsignedLess applies "r < k" (less=true) or "r >= k".
func refineUnsignedLess(st *RegState, r uint8, k int64, less bool) bool {
	if less {
		if k == 0 {
			return false
		}
		return meetReg(st, r, Itv{0, k - 1})
	}
	return meetReg(st, r, Itv{k, maxU32})
}

// refineBit decides a single-bit test where the interval allows:
// clear=true asserts bit b of v is 0.
func refineBit(v Itv, b uint, clear bool) bool {
	mask := int64(1) << b
	if v.IsConst() {
		return (v.Lo&mask == 0) == clear
	}
	if v.Hi < mask {
		return clear // bit provably 0
	}
	if v.Lo >= mask && v.Hi < mask<<1 {
		return !clear // bit provably 1
	}
	return true
}

func refineEQRR(st *RegState, rRs, rRt uint8, eq bool) bool {
	rs, rt := st.get(rRs), st.get(rRt)
	if eq {
		m, ok := rs.meet(rt)
		if !ok {
			return false
		}
		st.set(rRs, m)
		st.set(rRt, m)
		return true
	}
	if rs.IsConst() && rt.IsConst() {
		return rs.Lo != rt.Lo
	}
	if rt.IsConst() {
		return refineEQ(st, rRs, rt, false)
	}
	if rs.IsConst() {
		return refineEQ(st, rRt, rs, false)
	}
	return true
}

func refineSignedLessRR(st *RegState, rRs, rRt uint8, less bool) bool {
	rs, rt := st.get(rRs), st.get(rRt)
	sLo, sHi, okS := rs.signedView()
	tLo, tHi, okT := rt.signedView()
	if !okS || !okT {
		return true
	}
	if less {
		if sLo >= tHi {
			return false
		}
		if nv, ok := fromSigned(sLo, min64(sHi, tHi-1)); ok {
			st.set(rRs, nv)
		}
		if nv, ok := fromSigned(max64(tLo, sLo+1), tHi); ok {
			st.set(rRt, nv)
		}
	} else {
		if sHi < tLo {
			return false
		}
		if nv, ok := fromSigned(max64(sLo, tLo), sHi); ok {
			st.set(rRs, nv)
		}
		if nv, ok := fromSigned(tLo, min64(tHi, sHi)); ok {
			st.set(rRt, nv)
		}
	}
	return true
}

func refineUnsignedLessRR(st *RegState, rRs, rRt uint8, less bool) bool {
	rs, rt := st.get(rRs), st.get(rRt)
	if less {
		if rs.Lo >= rt.Hi {
			return false
		}
		if v, ok := rs.meet(Itv{0, rt.Hi - 1}); ok {
			st.set(rRs, v)
		}
		if v, ok := rt.meet(Itv{rs.Lo + 1, maxU32}); ok {
			st.set(rRt, v)
		}
	} else {
		if rs.Hi < rt.Lo {
			return false
		}
		if v, ok := rs.meet(Itv{rt.Lo, maxU32}); ok {
			st.set(rRs, v)
		}
		if v, ok := rt.meet(Itv{0, rs.Hi}); ok {
			st.set(rRt, v)
		}
	}
	return true
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// transferRec applies the abstract semantics of the instruction at pc to
// st. Precise transfers mirror the iss exec table; everything else
// (loads of unknown memory, custom instructions, mixed-sign shifts)
// degrades each architecturally written register to top via the plan's
// register-port model, which is always sound.
func transferRec(st *RegState, rec *plan.Rec, pc int) {
	in := rec.Instr
	if !rec.Valid || in.IsCustom() {
		clobber(st, rec)
		return
	}
	rs := st.get(in.Rs)
	rt := st.get(in.Rt)
	imm := int64(uint32(in.Imm)) // the wrapped unsigned view of the immediate

	switch in.Op {
	case isa.OpADD:
		st.set(in.Rd, modAdd(rs, rt))
	case isa.OpADDI:
		st.set(in.Rd, modAdd(rs, Itv{imm, imm}))
	case isa.OpSUB:
		st.set(in.Rd, modSub(rs, rt))
	case isa.OpNEG:
		st.set(in.Rd, modSub(Itv{0, 0}, rs))
	case isa.OpMOVI:
		st.set(in.Rd, Itv{imm, imm})
	case isa.OpMOV:
		st.set(in.Rd, rs)
	case isa.OpAND:
		st.set(in.Rd, bitAnd(rs, rt))
	case isa.OpANDI:
		st.set(in.Rd, bitAnd(rs, Itv{imm, imm}))
	case isa.OpOR:
		st.set(in.Rd, bitOr(rs, rt))
	case isa.OpORI:
		st.set(in.Rd, bitOr(rs, Itv{imm, imm}))
	case isa.OpXOR:
		st.set(in.Rd, bitXor(rs, rt))
	case isa.OpXORI:
		st.set(in.Rd, bitXor(rs, Itv{imm, imm}))
	case isa.OpNOT:
		st.set(in.Rd, Itv{maxU32 - rs.Hi, maxU32 - rs.Lo})
	case isa.OpSLL:
		if rt.IsConst() {
			st.set(in.Rd, shiftLeft(rs, uint(rt.Lo&31)))
		} else {
			st.set(in.Rd, itvTop())
		}
	case isa.OpSLLI:
		st.set(in.Rd, shiftLeft(rs, uint(imm&31)))
	case isa.OpSRL:
		if rt.IsConst() {
			st.set(in.Rd, Itv{rs.Lo >> uint(rt.Lo&31), rs.Hi >> uint(rt.Lo&31)})
		} else {
			st.set(in.Rd, Itv{0, rs.Hi}) // right shifts never grow the value
		}
	case isa.OpSRLI:
		st.set(in.Rd, Itv{rs.Lo >> uint(imm&31), rs.Hi >> uint(imm&31)})
	case isa.OpSRA:
		if rt.IsConst() {
			st.set(in.Rd, shiftRightArith(rs, uint(rt.Lo&31)))
		} else {
			st.set(in.Rd, itvTop())
		}
	case isa.OpSRAI:
		st.set(in.Rd, shiftRightArith(rs, uint(imm&31)))
	case isa.OpSLT:
		st.set(in.Rd, cmpItv(signedLessItv(rs, rt)))
	case isa.OpSLTI:
		st.set(in.Rd, cmpItv(signedLessItv(rs, itvConst(uint32(in.Imm)))))
	case isa.OpSLTU:
		st.set(in.Rd, cmpItv(unsignedLessItv(rs, rt)))
	case isa.OpSLTIU:
		st.set(in.Rd, cmpItv(unsignedLessItv(rs, Itv{imm, imm})))
	case isa.OpMOVEQZ:
		st.set(in.Rd, cmovItv(st.get(in.Rd), rs, eqzDec(rt)))
	case isa.OpMOVNEZ:
		st.set(in.Rd, cmovItv(st.get(in.Rd), rs, -eqzDec(rt)))
	case isa.OpMOVLTZ:
		st.set(in.Rd, cmovItv(st.get(in.Rd), rs, ltzDec(rt)))
	case isa.OpMOVGEZ:
		st.set(in.Rd, cmovItv(st.get(in.Rd), rs, -ltzDec(rt)))
	case isa.OpMUL:
		// Division-form guard: the product bound itself can overflow
		// int64 when both operands approach 2^32.
		if rs.Hi == 0 || rt.Hi == 0 || rs.Hi <= maxU32/rt.Hi {
			st.set(in.Rd, Itv{rs.Lo * rt.Lo, rs.Hi * rt.Hi})
		} else if rs.IsConst() && rt.IsConst() {
			st.set(in.Rd, itvConst(uint32(rs.Lo)*uint32(rt.Lo)))
		} else {
			st.set(in.Rd, itvTop())
		}
	case isa.OpMULH:
		if rs.IsConst() && rt.IsConst() {
			v := uint32(uint64(int64(int32(uint32(rs.Lo)))*int64(int32(uint32(rt.Lo)))) >> 32)
			st.set(in.Rd, itvConst(v))
		} else {
			st.set(in.Rd, itvTop())
		}
	case isa.OpMULHU:
		st.set(in.Rd, Itv{
			int64(uint64(rs.Lo) * uint64(rt.Lo) >> 32),
			int64(uint64(rs.Hi) * uint64(rt.Hi) >> 32),
		})
	case isa.OpMINU:
		st.set(in.Rd, Itv{min64(rs.Lo, rt.Lo), min64(rs.Hi, rt.Hi)})
	case isa.OpMAXU:
		st.set(in.Rd, Itv{max64(rs.Lo, rt.Lo), max64(rs.Hi, rt.Hi)})
	case isa.OpMIN:
		if rs.Hi < signBit && rt.Hi < signBit {
			st.set(in.Rd, Itv{min64(rs.Lo, rt.Lo), min64(rs.Hi, rt.Hi)})
		} else {
			st.set(in.Rd, itvTop())
		}
	case isa.OpMAX:
		if rs.Hi < signBit && rt.Hi < signBit {
			st.set(in.Rd, Itv{max64(rs.Lo, rt.Lo), max64(rs.Hi, rt.Hi)})
		} else {
			st.set(in.Rd, itvTop())
		}
	case isa.OpABS:
		st.set(in.Rd, absItv(rs))
	case isa.OpSEXT8:
		if rs.Hi <= 127 {
			st.set(in.Rd, rs)
		} else if rs.IsConst() {
			st.set(in.Rd, itvConst(uint32(int32(int8(uint32(rs.Lo))))))
		} else {
			st.set(in.Rd, itvTop())
		}
	case isa.OpSEXT16:
		if rs.Hi <= 32767 {
			st.set(in.Rd, rs)
		} else if rs.IsConst() {
			st.set(in.Rd, itvConst(uint32(int32(int16(uint32(rs.Lo))))))
		} else {
			st.set(in.Rd, itvTop())
		}
	case isa.OpCLAMPS:
		st.set(in.Rd, clampsItv(rs, in.Imm))
	case isa.OpNSA:
		if rs.IsConst() {
			st.set(in.Rd, itvConst(nsaConst(uint32(rs.Lo))))
		} else {
			st.set(in.Rd, Itv{0, 31})
		}
	case isa.OpNSAU:
		if rs.IsConst() {
			st.set(in.Rd, itvConst(uint32(bits.LeadingZeros32(uint32(rs.Lo)))))
		} else {
			st.set(in.Rd, Itv{0, 32})
		}
	case isa.OpEXTUI:
		shift := uint(imm) & 31
		width := (uint(imm)>>5)&31 + 1
		mask := int64(1)<<width - 1
		if rs.IsConst() {
			st.set(in.Rd, itvConst(uint32((rs.Lo>>shift)&mask)))
		} else {
			st.set(in.Rd, Itv{0, min64(mask, rs.Hi>>shift)})
		}
	case isa.OpL8UI:
		st.set(in.Rd, Itv{0, 255})
	case isa.OpL16UI:
		st.set(in.Rd, Itv{0, 65535})
	case isa.OpCALL, isa.OpCALLX:
		st.set(0, itvConst(uint32(pc+1)))
	case isa.OpNOP, isa.OpJ, isa.OpJX, isa.OpRET,
		isa.OpLOOP, isa.OpLOOPNEZ,
		isa.OpS8I, isa.OpS16I, isa.OpS32I:
		// no register writes
	default:
		// Branches write nothing (empty write mask); sign-extending and
		// word loads write an unknown value.
		clobber(st, rec)
	}
}

// clobber tops every architecturally written register of rec.
func clobber(st *RegState, rec *plan.Rec) {
	w := rec.Use.Writes
	for w != 0 {
		r := uint8(trailingZeros64(w))
		st.R[r] = itvTop()
		w &= w - 1
	}
}

func trailingZeros64(v uint64) int { return bits.TrailingZeros64(v) }

func nsaConst(v uint32) uint32 {
	x := v
	if int32(v) < 0 {
		x = ^v
	}
	if x == 0 {
		return 31
	}
	return uint32(bits.LeadingZeros32(x)) - 1
}

// cmpItv turns a three-valued comparison into a {0,1}-interval.
func cmpItv(t int) Itv {
	switch t {
	case +1:
		return Itv{1, 1}
	case -1:
		return Itv{0, 0}
	}
	return Itv{0, 1}
}

// signedLessItv decides signed(a) < signed(b) over intervals:
// +1 definitely true, -1 definitely false, 0 unknown.
func signedLessItv(a, b Itv) int {
	aLo, aHi, okA := a.signedView()
	bLo, bHi, okB := b.signedView()
	if !okA || !okB {
		return 0
	}
	if aHi < bLo {
		return +1
	}
	if aLo >= bHi {
		return -1
	}
	return 0
}

func unsignedLessItv(a, b Itv) int {
	if a.Hi < b.Lo {
		return +1
	}
	if a.Lo >= b.Hi {
		return -1
	}
	return 0
}

// cmovItv models a conditional move given a three-valued condition
// decision (+1 holds for every value of rt, -1 fails for every value,
// 0 undecided): rd keeps its old value when the condition fails, takes
// rs when it holds, joins both when undecided.
func cmovItv(old, rs Itv, dec int) Itv {
	switch dec {
	case +1:
		return rs
	case -1:
		return old
	}
	return old.join(rs)
}

// eqzDec decides "v == 0" over an interval: +1 always, -1 never, 0 unknown.
func eqzDec(v Itv) int {
	if v == (Itv{0, 0}) {
		return +1
	}
	if v.Lo >= 1 {
		return -1
	}
	return 0
}

// ltzDec decides "signed(v) < 0" over an interval.
func ltzDec(v Itv) int {
	if v.Lo >= signBit {
		return +1
	}
	if v.Hi < signBit {
		return -1
	}
	return 0
}

func shiftLeft(a Itv, k uint) Itv {
	hi := a.Hi << k
	if hi <= maxU32 {
		return Itv{a.Lo << k, hi}
	}
	if a.IsConst() {
		return itvConst(uint32(a.Lo) << k)
	}
	return itvTop()
}

func shiftRightArith(a Itv, k uint) Itv {
	lo, hi, ok := a.signedView()
	if !ok {
		return itvTop()
	}
	nv, ok2 := fromSigned(lo>>k, hi>>k)
	if !ok2 {
		return itvTop()
	}
	return nv
}

func absItv(a Itv) Itv {
	lo, hi, ok := a.signedView()
	if !ok {
		return Itv{0, signBit} // |x| <= 2^31 always
	}
	if lo >= 0 {
		return a
	}
	// entirely negative: |x| = -x, anti-monotone
	return Itv{-hi, -lo}
}

func clampsItv(a Itv, bitsImm int32) Itv {
	b := bitsImm
	if b < 1 {
		b = 1
	}
	if b > 31 {
		b = 31
	}
	maxV := int64(1)<<(b-1) - 1
	minV := -(int64(1) << (b - 1))
	lo, hi, ok := a.signedView()
	if !ok {
		// Result always lies in the clamp range.
		nv, _ := fromSigned(minV, maxV)
		return nv
	}
	clamp := func(v int64) int64 {
		if v > maxV {
			return maxV
		}
		if v < minV {
			return minV
		}
		return v
	}
	nv, ok2 := fromSigned(clamp(lo), clamp(hi))
	if !ok2 {
		return itvTop()
	}
	return nv
}

// bitAnd/bitOr/bitXor: exact on constants, bit-length bounded otherwise.
func bitAnd(a, b Itv) Itv {
	if a.IsConst() && b.IsConst() {
		return itvConst(uint32(a.Lo) & uint32(b.Lo))
	}
	return Itv{0, min64(a.Hi, b.Hi)}
}

func bitOr(a, b Itv) Itv {
	if a.IsConst() && b.IsConst() {
		return itvConst(uint32(a.Lo) | uint32(b.Lo))
	}
	// a|b never exceeds 2^L - 1 where L is the wider operand's bit length.
	n := int64(1) << uint(max64(int64(bitLen(a.Hi)), int64(bitLen(b.Hi))))
	return Itv{max64(a.Lo, b.Lo), min64(maxU32, n-1)}
}

func bitXor(a, b Itv) Itv {
	if a.IsConst() && b.IsConst() {
		return itvConst(uint32(a.Lo) ^ uint32(b.Lo))
	}
	n := int64(1) << uint(max64(int64(bitLen(a.Hi)), int64(bitLen(b.Hi))))
	return Itv{0, min64(maxU32, n-1)}
}

// analyzeValues runs the abstract interpreter and reports value-aware
// findings: statically dead branch edges, zero-trip and effectively
// non-terminating zero-overhead loops, and memory accesses whose every
// possible address faults. Severities are calibrated so only definite
// bugs warn: a dead edge or a skipped LOOPNEZ body is legal (if wasteful)
// code, while an always-faulting access or a 2^32-iteration LOOP is a
// bug on every execution that reaches it.
func analyzeValues(r *Report, proc *procgen.Processor) {
	abs := r.CFG.Interpret(proc)
	r.Abs = abs
	pl := r.CFG.Plan

	for _, blk := range r.CFG.Blocks {
		if abs.In[blk.ID] == nil {
			continue
		}
		// Dead conditional edges: report once per branch site. Indirect
		// edges are skipped (their target sets are over-approximated, so
		// dead members are expected, not informative).
		var deadKinds []string
		for i, e := range blk.Succs {
			if !abs.deadEdge[edgeRef{blk.ID, i}] {
				continue
			}
			switch e.Kind {
			case EdgeTaken, EdgeUntaken, EdgeLoopSkip:
				deadKinds = append(deadKinds, e.Kind.String())
			}
		}
		if len(deadKinds) > 0 {
			pc := blk.End - 1
			rec := &pl.Recs[pc]
			r.add("absint-dead-edge", SevNote, pc, int(rec.Instr.Rs),
				"branch direction statically decided: %s edge can never be taken (%s)",
				deadKinds[0], describeItv(abs, pc, rec.Instr.Rs))
		}
	}

	for _, l := range r.CFG.Loops {
		st := abs.StateAt(l.At)
		if st == nil {
			continue
		}
		in := pl.Recs[l.At].Instr
		cnt := st.get(in.Rs)
		if in.Op == isa.OpLOOPNEZ && cnt == (Itv{0, 0}) {
			r.add("absint-zero-trip", SevNote, l.At, int(in.Rs),
				"LOOPNEZ count register a%d is always 0: body [%d,%d) never executes",
				in.Rs, l.Begin, l.End)
		}
		if in.Op == isa.OpLOOP && cnt == (Itv{0, 0}) {
			r.add("absint-loop-forever", SevWarn, l.At, int(in.Rs),
				"LOOP count register a%d is always 0: the hardware loops 2^32 times (effectively forever)",
				in.Rs)
		}
	}

	for pc := range r.CFG.Prog.Code {
		st := abs.StateAt(pc)
		if st == nil {
			continue
		}
		rec := &pl.Recs[pc]
		if !rec.Valid {
			continue
		}
		var addr Itv
		var size int64
		switch rec.Def.Class {
		case isa.ClassLoad:
			size = loadStoreSize(rec.Instr.Op)
			if rec.Instr.Op == isa.OpL32R {
				addr = itvConst(uint32(rec.Instr.Imm))
			} else {
				addr = modAdd(st.get(rec.Instr.Rs), itvConst(uint32(rec.Instr.Imm)))
			}
		case isa.ClassStore:
			size = loadStoreSize(rec.Instr.Op)
			addr = modAdd(st.get(rec.Instr.Rs), itvConst(uint32(rec.Instr.Imm)))
		default:
			continue
		}
		switch {
		case addr.Lo > abs.memBytes-size:
			r.add("absint-mem-range", SevWarn, pc, int(rec.Instr.Rs),
				"%s address is always out of RAM: addr in %v, memory is %d bytes",
				rec.Instr.Op.Name(), addr, abs.memBytes)
		case addr.IsConst() && addr.Lo%size != 0:
			r.add("absint-mem-range", SevWarn, pc, int(rec.Instr.Rs),
				"%s address %d is always misaligned for a %d-byte access",
				rec.Instr.Op.Name(), addr.Lo, size)
		}
	}
}

func describeItv(abs *AbsResult, pc int, r uint8) string {
	st := abs.StateAt(pc)
	if st == nil {
		return "unreachable"
	}
	return fmt.Sprintf("a%d in %v", r, st.get(r))
}

func loadStoreSize(op isa.Opcode) int64 {
	switch op {
	case isa.OpL8UI, isa.OpL8SI, isa.OpS8I:
		return 1
	case isa.OpL16UI, isa.OpL16SI, isa.OpS16I:
		return 2
	}
	return 4
}
