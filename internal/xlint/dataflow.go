package xlint

import (
	"xtenergy/internal/isa"
	"xtenergy/internal/procgen"
)

// Register sets are uint64 bitmasks over the 64 general registers,
// matching plan.RegUse.

// allRegs has every register bit set.
const allRegs = ^uint64(0)

// entryInit is the register set initialized by processor reset: the
// link register a0 holds the halt sentinel.
const entryInit = uint64(1) << 0

// analyzeInit runs the forward initialization dataflow: must-init
// (intersection over predecessors — definitely written on every path)
// and may-init (union — written on at least one path). A read of a
// register outside may-init reads the reset value on every path
// (definite, error); inside may but outside must, on some path
// (warning). Only reachable blocks are analyzed — code that cannot
// execute cannot read anything.
func analyzeInit(r *Report, proc *procgen.Processor) {
	cfg := r.CFG
	nb := len(cfg.Blocks)
	if nb == 0 {
		return
	}

	// Per-block transfer: out = in | writes (reads don't change facts).
	writes := make([]uint64, nb)
	for _, b := range cfg.Blocks {
		var w uint64
		for pc := b.Start; pc < b.End; pc++ {
			w |= cfg.Plan.Recs[pc].Use.Writes
		}
		writes[b.ID] = w
	}

	mustIn := make([]uint64, nb)
	mayIn := make([]uint64, nb)
	for i := range mustIn {
		mustIn[i] = allRegs // top for the intersection lattice
	}
	entry := cfg.Entry().ID
	mustIn[entry], mayIn[entry] = entryInit, entryInit

	order := cfg.ReversePostorder()
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			must, may := allRegs, uint64(0)
			if b.ID == entry {
				// Reset state joins any looping predecessors.
				must, may = entryInit, entryInit
			}
			for _, e := range b.Preds {
				p := cfg.Blocks[e.From]
				if !p.Reachable {
					continue
				}
				must &= mustIn[p.ID] | writes[p.ID]
				may |= mayIn[p.ID] | writes[p.ID]
			}
			if len(b.Preds) == 0 && b.ID != entry {
				must = entryInit // unreachable; keep the fact harmless
			}
			if must != mustIn[b.ID] || may != mayIn[b.ID] {
				mustIn[b.ID], mayIn[b.ID] = must, may
				changed = true
			}
		}
	}

	// Reporting pass: walk each reachable block with converged in-facts.
	for _, b := range order {
		must, may := mustIn[b.ID], mayIn[b.ID]
		for pc := b.Start; pc < b.End; pc++ {
			u := cfg.Plan.Recs[pc].Use
			if bad := u.Reads &^ may; bad != 0 {
				for reg := 0; reg < isa.NumRegs; reg++ {
					if bad&(1<<reg) != 0 {
						r.add("uninit-read", SevError, pc, reg,
							"a%d is read but never written on any path here", reg)
					}
				}
			} else if maybe := u.Reads &^ must; maybe != 0 {
				for reg := 0; reg < isa.NumRegs; reg++ {
					if maybe&(1<<reg) != 0 {
						r.add("uninit-read", SevWarn, pc, reg,
							"a%d may be read before initialization (unwritten on some path)", reg)
					}
				}
			}
			must |= u.Writes
			may |= u.Writes
		}
	}
}

// analyzeDeadWrites runs backward liveness and flags register writes
// whose value is overwritten on every path before any read. The exit
// live-out is all registers: the final register file is an observable
// result of a run, so only values dead *within* the program are flagged.
func analyzeDeadWrites(r *Report, proc *procgen.Processor) {
	cfg := r.CFG
	nb := len(cfg.Blocks)
	if nb == 0 {
		return
	}

	// liveIn[b] = use(b) | (liveOut(b) &^ defAll(b)) via per-instruction
	// backward scan; liveOut(b) = union of successor liveIns, with exit
	// edges contributing allRegs.
	liveIn := make([]uint64, nb)
	liveOutOf := func(b *Block) uint64 {
		var out uint64
		for _, e := range b.Succs {
			if e.To == ExitID {
				out = allRegs
				break
			}
			out |= liveIn[e.To]
		}
		return out
	}
	scan := func(b *Block, out uint64) uint64 {
		live := out
		for pc := b.End - 1; pc >= b.Start; pc-- {
			u := cfg.Plan.Recs[pc].Use
			live = (live &^ u.Writes) | u.Reads
		}
		return live
	}
	for changed := true; changed; {
		changed = false
		for id := nb - 1; id >= 0; id-- {
			b := cfg.Blocks[id]
			if in := scan(b, liveOutOf(b)); in != liveIn[id] {
				liveIn[id] = in
				changed = true
			}
		}
	}

	for _, b := range cfg.Blocks {
		if !b.Reachable {
			continue
		}
		live := liveOutOf(b)
		// Walk backward so each write is judged against liveness just
		// after it; collect findings forward-ordered by the final sort.
		for pc := b.End - 1; pc >= b.Start; pc-- {
			in := cfg.Plan.Recs[pc].Instr
			u := cfg.Plan.Recs[pc].Use
			if u.WritesRd && int(in.Rd) < isa.NumRegs && live&(1<<in.Rd) == 0 {
				r.add("dead-write", SevWarn, pc, int(in.Rd),
					"a%d is overwritten on every path before being read", in.Rd)
			}
			live = (live &^ u.Writes) | u.Reads
		}
	}
}

// analyzeUnreachable flags blocks no CFG path from the entry reaches.
func analyzeUnreachable(r *Report) {
	for _, b := range r.CFG.Blocks {
		if !b.Reachable {
			r.add("unreachable", SevWarn, b.Start, -1,
				"unreachable block of %d instruction(s)", b.End-b.Start)
		}
	}
}
