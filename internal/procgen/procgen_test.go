package procgen

import (
	"strings"
	"testing"

	"xtenergy/internal/cache"
	"xtenergy/internal/hwlib"
	"xtenergy/internal/tie"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.ClockMHz != 187 {
		t.Fatalf("clock = %g MHz, want 187 (T1040)", cfg.ClockMHz)
	}
	if !cfg.HasMul32 {
		t.Fatal("32-bit multiplication option missing")
	}
	if cfg.ICache.SizeBytes != 16*1024 || cfg.ICache.Ways != 4 {
		t.Fatalf("icache %+v, want 4-way 16KB", cfg.ICache)
	}
	if cfg.DCache.SizeBytes != 16*1024 || cfg.DCache.Ways != 4 {
		t.Fatalf("dcache %+v, want 4-way 16KB", cfg.DCache)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := Default()
	bad.ClockMHz = 0
	if bad.Validate() == nil {
		t.Fatal("zero clock accepted")
	}
	bad = Default()
	bad.ICache.LineBytes = 33
	if bad.Validate() == nil {
		t.Fatal("bad icache accepted")
	}
	bad = Default()
	bad.MemBytes = 0
	if bad.Validate() == nil {
		t.Fatal("zero memory accepted")
	}
	bad = Default()
	bad.UncachedBase = 0x1000 // overlaps RAM
	if bad.Validate() == nil {
		t.Fatal("overlapping uncached base accepted")
	}
}

func TestGenerateBaseOnly(t *testing.T) {
	p, err := Generate(Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCustomBlocks() != 0 {
		t.Fatalf("base-only processor has %d custom blocks", p.NumCustomBlocks())
	}
	for _, want := range []string{"fetch", "decode", "regfile", "alu", "shifter", "mult32", "lsu", "icache", "dcache", "bus", "pipectl", "clock"} {
		if _, ok := p.BlockByName(want); !ok {
			t.Fatalf("block %q missing", want)
		}
	}
}

func TestGenerateWithoutMultiplier(t *testing.T) {
	cfg := Default()
	cfg.HasMul32 = false
	p, err := Generate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.BlockByName("mult32"); ok {
		t.Fatal("multiplier generated despite option off")
	}
}

func TestGenerateWithExtension(t *testing.T) {
	ext := &tie.Extension{
		Name:          "e",
		NumCustomRegs: 1,
		Instructions: []*tie.Instruction{{
			Name: "foo", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
			Datapath: []tie.DatapathElem{{
				Component: hwlib.Component{Name: "fu", Cat: hwlib.Shifter, Width: 32},
			}},
			Semantics: func(_ *tie.State, op tie.Operands) uint32 { return op.RsVal },
		}},
	}
	p, err := Generate(Default(), ext)
	if err != nil {
		t.Fatal(err)
	}
	// 3 control blocks + regfile + 1 datapath component.
	if p.NumCustomBlocks() != 5 {
		t.Fatalf("custom blocks = %d, want 5", p.NumCustomBlocks())
	}
	b, ok := p.BlockByName("tie.fu")
	if !ok {
		t.Fatal("custom datapath block missing")
	}
	if b.Kind != BlockCustom || b.CustomIdx < 0 {
		t.Fatalf("custom block metadata wrong: %+v", b)
	}
	// Custom blocks come after base blocks and reference TIE components.
	for i := p.CustomBlockBase; i < len(p.Blocks); i++ {
		blk := p.Blocks[i]
		if blk.Kind != BlockCustom {
			t.Fatalf("block %d after CustomBlockBase is %s", i, blk.Kind)
		}
		if p.TIE.Components[blk.CustomIdx] != blk.Component {
			t.Fatalf("block %d component mismatch", i)
		}
	}
}

func TestGenerateRejectsBadExtension(t *testing.T) {
	if _, err := Generate(Default(), &tie.Extension{Name: ""}); err == nil {
		t.Fatal("invalid extension accepted")
	}
	bad := Default()
	bad.ClockMHz = -1
	if _, err := Generate(bad, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestCyclesToSeconds(t *testing.T) {
	p, err := Generate(Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := p.CyclesToSeconds(187_000_000)
	if s < 0.999 || s > 1.001 {
		t.Fatalf("187M cycles at 187 MHz = %g s, want 1", s)
	}
}

func TestBlockKindString(t *testing.T) {
	if BlockALU.String() != "alu" || BlockCustom.String() != "custom" {
		t.Fatal("block kind names wrong")
	}
	if BlockKind(99).String() == "" {
		t.Fatal("out-of-range kind empty")
	}
}

func TestCustomCacheConfig(t *testing.T) {
	cfg := Default()
	cfg.ICache = cache.Config{SizeBytes: 8 * 1024, LineBytes: 16, Ways: 2, MissPenalty: 6}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := Generate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Config.ICache.SizeBytes != 8*1024 {
		t.Fatal("config not preserved")
	}
}

func TestWriteNetlist(t *testing.T) {
	ext := &tie.Extension{
		Name:          "nl",
		NumCustomRegs: 2,
		Instructions: []*tie.Instruction{{
			Name: "foo", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
			Datapath: []tie.DatapathElem{
				{Component: hwlib.Component{Name: "tab", Cat: hwlib.Table, Width: 8, Entries: 256}},
				{Component: hwlib.Component{Name: "sh", Cat: hwlib.Shifter, Width: 32}},
			},
			Semantics: func(_ *tie.State, op tie.Operands) uint32 { return op.RsVal },
		}},
	}
	p, err := Generate(Default(), ext)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := p.WriteNetlist(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"module t1040-like;",
		"extension: nl",
		"block fetch",
		"block clock",
		"tie.tab",
		"entries=256",
		"tie.sh",
		"kind=custom cat=shifter",
		"1 custom instructions, 2 custom registers",
		"endmodule",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("netlist missing %q:\n%s", want, out)
		}
	}
	// Base-only netlist renders too, without the extension comment.
	p2, _ := Generate(Default(), nil)
	buf.Reset()
	if err := p2.WriteNetlist(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "custom instructions") {
		t.Fatal("base-only netlist mentions custom instructions")
	}
}
