// Package procgen is the processor generator: it combines a base-core
// configuration with a compiled TIE extension and produces a Processor
// instance, including the structural block netlist that the RTL-level
// reference power estimator simulates.
//
// This mirrors the Xtensa flow the paper describes: "after the custom
// instructions are incorporated, a processor generator automatically
// generates the enhanced processor" — here, the generated artifact is a
// structural model rather than Verilog.
package procgen

import (
	"fmt"
	"io"
	"strings"

	"xtenergy/internal/cache"
	"xtenergy/internal/hwlib"
	"xtenergy/internal/tie"
)

// Config is the base-core configuration (the configurable options of
// Section II: caches, register file, optional functional units).
type Config struct {
	// Name labels the configuration, e.g. "T1040-like".
	Name string
	// ClockMHz is the core clock; the paper's T1040 runs at 187 MHz.
	ClockMHz float64
	// HasMul32 includes the 32-bit multiplier option.
	HasMul32 bool
	// HasLoops includes the zero-overhead loop option (Xtensa's "loop"
	// instructions): LOOP/LOOPNEZ execute without per-iteration branch
	// penalties. Without the option they are illegal instructions.
	HasLoops bool
	// ICache and DCache are the cache geometries.
	ICache, DCache cache.Config
	// MemBytes is the size of the cacheable RAM image.
	MemBytes int
	// UncachedBase is the first address of the uncached region; code
	// fetched at or above it bypasses the instruction cache and counts
	// as an uncached instruction fetch.
	UncachedBase uint32
}

// Default returns the paper's experimental configuration: a T1040-like
// core at 187 MHz with the 32-bit multiply option, 4-way 16 KB I/D
// caches, and a 64-entry 32-bit register file (the register file size is
// fixed by the ISA).
func Default() Config {
	return Config{
		Name:         "T1040-like",
		ClockMHz:     187,
		HasMul32:     true,
		ICache:       cache.DefaultI(),
		DCache:       cache.DefaultD(),
		MemBytes:     1 << 20,
		UncachedBase: 0x2000_0000,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.ClockMHz <= 0 {
		return fmt.Errorf("procgen: non-positive clock %g MHz", c.ClockMHz)
	}
	if err := c.ICache.Validate(); err != nil {
		return fmt.Errorf("procgen: icache: %w", err)
	}
	if err := c.DCache.Validate(); err != nil {
		return fmt.Errorf("procgen: dcache: %w", err)
	}
	if c.MemBytes <= 0 {
		return fmt.Errorf("procgen: non-positive memory size %d", c.MemBytes)
	}
	if c.UncachedBase != 0 && int(c.UncachedBase) < c.MemBytes {
		return fmt.Errorf("procgen: uncached base %#x overlaps cacheable RAM of %d bytes", c.UncachedBase, c.MemBytes)
	}
	return nil
}

// BlockKind identifies a structural block of the generated processor.
type BlockKind uint8

// Base-core structural blocks plus the custom-hardware kind.
const (
	BlockFetch   BlockKind = iota // instruction fetch / PC unit
	BlockDecode                   // base instruction decoder
	BlockRegfile                  // general register file
	BlockALU                      // adder/logic/compare datapath
	BlockShifter                  // barrel shifter
	BlockMult                     // 32-bit multiplier option
	BlockLSU                      // load/store unit + alignment
	BlockICache                   // instruction cache (tag+data arrays)
	BlockDCache                   // data cache
	BlockBus                      // system bus interface (fills, uncached fetches)
	BlockPipeCtl                  // pipeline/interlock control
	BlockClock                    // clock tree (per-cycle baseline)
	BlockCustom                   // one TIE hardware component

	NumBaseBlockKinds = int(BlockCustom)
)

var blockKindNames = [...]string{
	"fetch", "decode", "regfile", "alu", "shifter", "mult", "lsu",
	"icache", "dcache", "bus", "pipectl", "clock", "custom",
}

// String returns the block kind's name.
func (k BlockKind) String() string {
	if int(k) < len(blockKindNames) {
		return blockKindNames[k]
	}
	return fmt.Sprintf("block(%d)", int(k))
}

// Block is one node of the generated processor's structural netlist.
type Block struct {
	Name string
	Kind BlockKind
	// CustomIdx indexes tie.Compiled.Components when Kind == BlockCustom;
	// -1 otherwise.
	CustomIdx int
	// Component is the hwlib description for custom blocks.
	Component hwlib.Component
}

// Processor is a generated processor instance: base configuration plus
// (optionally) compiled custom-instruction hardware.
type Processor struct {
	Config Config
	TIE    *tie.Compiled
	// Blocks is the structural netlist: base blocks first, then one block
	// per custom hardware component.
	Blocks []Block
	// CustomBlockBase is the index of the first custom block in Blocks.
	CustomBlockBase int
}

// Generate builds a processor from cfg and an extension (nil ext for a
// base-only core).
func Generate(cfg Config, ext *tie.Extension) (*Processor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	comp, err := tie.Compile(ext)
	if err != nil {
		return nil, err
	}
	p := &Processor{Config: cfg, TIE: comp}

	add := func(name string, kind BlockKind) {
		p.Blocks = append(p.Blocks, Block{Name: name, Kind: kind, CustomIdx: -1})
	}
	add("fetch", BlockFetch)
	add("decode", BlockDecode)
	add("regfile", BlockRegfile)
	add("alu", BlockALU)
	add("shifter", BlockShifter)
	if cfg.HasMul32 {
		add("mult32", BlockMult)
	}
	add("lsu", BlockLSU)
	add("icache", BlockICache)
	add("dcache", BlockDCache)
	add("bus", BlockBus)
	add("pipectl", BlockPipeCtl)
	add("clock", BlockClock)

	p.CustomBlockBase = len(p.Blocks)
	for i, c := range comp.Components {
		p.Blocks = append(p.Blocks, Block{
			Name:      "tie." + c.Name,
			Kind:      BlockCustom,
			CustomIdx: i,
			Component: c,
		})
	}
	return p, nil
}

// CyclesToSeconds converts a cycle count to seconds at the configured
// clock.
func (p *Processor) CyclesToSeconds(cycles uint64) float64 {
	return float64(cycles) / (p.Config.ClockMHz * 1e6)
}

// NumCustomBlocks returns the number of custom hardware blocks.
func (p *Processor) NumCustomBlocks() int {
	return len(p.Blocks) - p.CustomBlockBase
}

// BlockByName finds a block by name.
func (p *Processor) BlockByName(name string) (Block, bool) {
	for _, b := range p.Blocks {
		if b.Name == name {
			return b, true
		}
	}
	return Block{}, false
}

// WriteNetlist renders the generated processor's structural netlist in a
// compact, Verilog-flavoured text form — the inspectable artifact of the
// "processor generator" step (the paper's flow emits actual RTL here).
func (p *Processor) WriteNetlist(w io.Writer) error {
	name := strings.ReplaceAll(strings.ToLower(p.Config.Name), " ", "_")
	if name == "" {
		name = "xt32_core"
	}
	ext := "none"
	if p.TIE.Ext != nil {
		ext = p.TIE.Ext.Name
	}
	if _, err := fmt.Fprintf(w, "// generated processor: %s (%.0f MHz), extension: %s\nmodule %s;\n",
		p.Config.Name, p.Config.ClockMHz, ext, name); err != nil {
		return err
	}
	for _, b := range p.Blocks {
		if b.Kind == BlockCustom {
			c := b.Component
			if c.Cat.String() == "table" && c.Entries > 0 {
				if _, err := fmt.Fprintf(w, "  block %-18s kind=custom cat=%-13s width=%-3d entries=%-5d f=%.3f\n",
					b.Name, c.Cat, c.Width, c.Entries, c.Complexity()); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "  block %-18s kind=custom cat=%-13s width=%-3d f=%.3f\n",
				b.Name, c.Cat, c.Width, c.Complexity()); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "  block %-18s kind=%s\n", b.Name, b.Kind); err != nil {
			return err
		}
	}
	if p.TIE.Ext != nil {
		if _, err := fmt.Fprintf(w, "  // %d custom instructions, %d custom registers\n",
			len(p.TIE.Ext.Instructions), p.TIE.Ext.NumCustomRegs); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "endmodule")
	return err
}
