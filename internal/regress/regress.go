// Package regress implements the regression macro-model fitting of the
// paper's characterization flow (Fig. 2, step 8): given an N x K matrix
// of macro-model variable values (one row per test program) and the
// N-vector of measured energies, it solves E = X·C for the energy
// coefficient vector C by least squares (the pseudo-inverse method) and
// reports fit statistics.
//
// Variants used by the ablation studies — ridge regularization and a
// nonnegativity constraint on the coefficients — are available through
// Options.
package regress

import (
	"errors"
	"fmt"
	"math"

	"xtenergy/internal/linalg"
)

// Options selects the fitting variant.
type Options struct {
	// Ridge is the Tikhonov regularization strength λ (0 = plain least
	// squares, the paper's method).
	Ridge float64
	// NonNegative constrains coefficients to be >= 0 by iteratively
	// removing negative coefficients from the active set (a simplified
	// Lawson-Hanson NNLS). Energy coefficients are physically
	// nonnegative, so this is a natural ablation.
	NonNegative bool
}

// Fit is a fitted linear model plus its training diagnostics.
type Fit struct {
	// Coef is the coefficient vector C.
	Coef []float64
	// Fitted holds X·C per training observation.
	Fitted []float64
	// Residuals holds measured - fitted per observation.
	Residuals []float64
	// RelErr holds residual/measured per observation (0 when the
	// measurement is 0).
	RelErr []float64
	// RMSRel is the root-mean-square relative error over the training
	// set (the paper reports 3.8% for its 25 test programs).
	RMSRel float64
	// MaxAbsRel is the maximum |relative error| (paper: under 8.9%).
	MaxAbsRel float64
	// MeanAbsRel is the mean |relative error|.
	MeanAbsRel float64
	// R2 is the coefficient of determination.
	R2 float64
	// CondEstimate is a lower bound on the condition number of X.
	CondEstimate float64
	// StdErr holds the coefficient standard errors (sqrt of the
	// diagonal of s²(XᵀX)⁻¹); nil when the system has no residual
	// degrees of freedom or the ridge/nonnegative variants are used.
	StdErr []float64
}

// ErrUnderdetermined reports fewer observations than coefficients.
var ErrUnderdetermined = errors.New("regress: fewer observations than model variables")

// FitLinear fits E = X·C and returns the model with diagnostics.
func FitLinear(x *linalg.Matrix, y []float64, opts Options) (*Fit, error) {
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("regress: %d observations but %d measurements", x.Rows(), len(y))
	}
	if x.Rows() < x.Cols() {
		return nil, fmt.Errorf("%w: %d < %d", ErrUnderdetermined, x.Rows(), x.Cols())
	}

	coef, err := solve(x, y, opts)
	if err != nil {
		return nil, err
	}
	f := &Fit{Coef: coef}

	qr, err := linalg.FactorQR(x)
	if err != nil {
		return nil, err
	}
	f.CondEstimate = qr.ConditionEstimate()
	plainOLS := opts.Ridge == 0 && !opts.NonNegative

	fitted, err := x.MulVec(coef)
	if err != nil {
		return nil, err
	}
	f.Fitted = fitted
	f.Residuals = make([]float64, len(y))
	f.RelErr = make([]float64, len(y))

	var ssRes, ssTot, mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var sumSqRel, sumAbsRel float64
	for i, v := range y {
		r := v - fitted[i]
		f.Residuals[i] = r
		ssRes += r * r
		d := v - mean
		ssTot += d * d
		if v != 0 {
			rel := r / v
			f.RelErr[i] = rel
			sumSqRel += rel * rel
			if a := math.Abs(rel); a > f.MaxAbsRel {
				f.MaxAbsRel = a
			}
			sumAbsRel += math.Abs(rel)
		}
	}
	n := float64(len(y))
	f.RMSRel = math.Sqrt(sumSqRel / n)
	f.MeanAbsRel = sumAbsRel / n
	if ssTot > 0 {
		f.R2 = 1 - ssRes/ssTot
	} else if ssRes == 0 {
		f.R2 = 1
	}

	// Coefficient standard errors (classical OLS only): s²·diag((XᵀX)⁻¹)
	// with s² = SSR/(n-k).
	if dof := len(y) - x.Cols(); plainOLS && dof > 0 {
		if diag, derr := qr.GramInverseDiag(); derr == nil {
			s2 := ssRes / float64(dof)
			f.StdErr = make([]float64, len(coef))
			for j := range f.StdErr {
				f.StdErr[j] = math.Sqrt(s2 * diag[j])
			}
		}
	}
	return f, nil
}

func solve(x *linalg.Matrix, y []float64, opts Options) ([]float64, error) {
	if !opts.NonNegative {
		return linalg.SolveRidge(x, y, opts.Ridge)
	}
	// Simplified NNLS: solve on the active column set; drop columns with
	// negative coefficients and re-solve until all remaining are
	// nonnegative. Dropped coefficients are reported as 0.
	k := x.Cols()
	active := make([]int, 0, k)
	for j := 0; j < k; j++ {
		active = append(active, j)
	}
	for iter := 0; iter <= k; iter++ {
		if len(active) == 0 {
			return make([]float64, k), nil
		}
		sub := linalg.NewMatrix(x.Rows(), len(active))
		for i := 0; i < x.Rows(); i++ {
			for jj, j := range active {
				sub.Set(i, jj, x.At(i, j))
			}
		}
		c, err := linalg.SolveRidge(sub, y, opts.Ridge)
		if err != nil {
			return nil, err
		}
		next := active[:0]
		out := make([]float64, k)
		anyNeg := false
		for jj, j := range active {
			if c[jj] < 0 {
				anyNeg = true
				continue
			}
			out[j] = c[jj]
			next = append(next, j)
		}
		if !anyNeg {
			return out, nil
		}
		active = next
	}
	return nil, errors.New("regress: nonnegative fit did not converge")
}

// Predict evaluates the fitted model on a variable vector.
func (f *Fit) Predict(vars []float64) (float64, error) {
	if len(vars) != len(f.Coef) {
		return 0, fmt.Errorf("regress: %d variables for %d coefficients", len(vars), len(f.Coef))
	}
	return linalg.Dot(f.Coef, vars), nil
}
