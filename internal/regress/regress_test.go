package regress

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xtenergy/internal/linalg"
)

func design(rows [][]float64) *linalg.Matrix {
	m, err := linalg.FromRows(rows)
	if err != nil {
		panic(err)
	}
	return m
}

func TestExactFit(t *testing.T) {
	x := design([][]float64{
		{1, 0},
		{0, 1},
		{1, 1},
		{2, 1},
	})
	want := []float64{3, 5}
	y, _ := x.MulVec(want)
	fit, err := FitLinear(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(fit.Coef[i]-want[i]) > 1e-10 {
			t.Fatalf("coef = %v, want %v", fit.Coef, want)
		}
	}
	if fit.RMSRel > 1e-12 || fit.MaxAbsRel > 1e-12 {
		t.Fatalf("exact fit has residual: rms=%g max=%g", fit.RMSRel, fit.MaxAbsRel)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %g, want 1", fit.R2)
	}
}

func TestNoisyFitStatistics(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 50
	x := linalg.NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := r.Float64() * 10
		x.Set(i, 0, a)
		x.Set(i, 1, 1)
		y[i] = 4*a + 20 + r.NormFloat64() // small noise
	}
	fit, err := FitLinear(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Coef[0]-4) > 0.3 || math.Abs(fit.Coef[1]-20) > 2 {
		t.Fatalf("coef = %v, want ~[4 20]", fit.Coef)
	}
	if fit.R2 < 0.95 {
		t.Fatalf("R2 = %g", fit.R2)
	}
	if len(fit.Residuals) != n || len(fit.RelErr) != n || len(fit.Fitted) != n {
		t.Fatal("diagnostic lengths wrong")
	}
	if fit.MeanAbsRel <= 0 || fit.MaxAbsRel < fit.MeanAbsRel {
		t.Fatalf("error stats inconsistent: mean=%g max=%g", fit.MeanAbsRel, fit.MaxAbsRel)
	}
}

func TestUnderdetermined(t *testing.T) {
	x := design([][]float64{{1, 2, 3}})
	_, err := FitLinear(x, []float64{1}, Options{})
	if !errors.Is(err, ErrUnderdetermined) {
		t.Fatalf("err = %v, want ErrUnderdetermined", err)
	}
}

func TestDimensionMismatch(t *testing.T) {
	x := design([][]float64{{1}, {2}})
	if _, err := FitLinear(x, []float64{1, 2, 3}, Options{}); err == nil {
		t.Fatal("mismatched y accepted")
	}
}

func TestNonNegativeClampsNegatives(t *testing.T) {
	// Construct data where plain LS yields a negative coefficient:
	// y depends only on col0, col1 is noise-correlated negatively.
	x := design([][]float64{
		{1, 1},
		{2, 1.9},
		{3, 3.2},
		{4, 3.8},
		{5, 5.3},
	})
	y := []float64{1, 2, 3, 4, 5}
	plain, err := FitLinear(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nn, err := FitLinear(x, y, Options{NonNegative: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range nn.Coef {
		if c < 0 {
			t.Fatalf("nonnegative fit produced coef[%d] = %g", i, c)
		}
	}
	_ = plain
}

func TestNonNegativeAllPositiveUnchanged(t *testing.T) {
	x := design([][]float64{
		{1, 0},
		{0, 1},
		{1, 2},
	})
	y, _ := x.MulVec([]float64{2, 3})
	plain, _ := FitLinear(x, y, Options{})
	nn, _ := FitLinear(x, y, Options{NonNegative: true})
	for i := range plain.Coef {
		if math.Abs(plain.Coef[i]-nn.Coef[i]) > 1e-10 {
			t.Fatalf("nonnegative fit changed a positive solution: %v vs %v", plain.Coef, nn.Coef)
		}
	}
}

func TestRidgeShrinks(t *testing.T) {
	x := design([][]float64{
		{1, 0},
		{0, 1},
		{1, 1},
	})
	y, _ := x.MulVec([]float64{10, 10})
	plain, _ := FitLinear(x, y, Options{})
	ridge, _ := FitLinear(x, y, Options{Ridge: 10})
	if !(ridge.Coef[0] < plain.Coef[0]) {
		t.Fatalf("ridge did not shrink: %v vs %v", ridge.Coef, plain.Coef)
	}
}

func TestPredict(t *testing.T) {
	x := design([][]float64{{1, 0}, {0, 1}, {1, 1}})
	y, _ := x.MulVec([]float64{2, 3})
	fit, _ := FitLinear(x, y, Options{})
	got, err := fit.Predict([]float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("predict = %g, want 10", got)
	}
	if _, err := fit.Predict([]float64{1}); err == nil {
		t.Fatal("bad predict length accepted")
	}
}

func TestZeroMeasurementRelErr(t *testing.T) {
	x := design([][]float64{{1}, {2}, {0}})
	y := []float64{1, 2, 0}
	fit, err := FitLinear(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fit.RelErr[2] != 0 {
		t.Fatal("zero measurement produced nonzero relative error")
	}
}

// Property: fitting a planted nonnegative model recovers it under both
// plain and nonnegative options.
func TestRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k := 12, 3
		x := linalg.NewMatrix(n, k)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				x.Set(i, j, r.Float64()*5)
			}
		}
		want := []float64{r.Float64() * 10, r.Float64() * 10, r.Float64() * 10}
		y, _ := x.MulVec(want)
		for _, opts := range []Options{{}, {NonNegative: true}} {
			fit, err := FitLinear(x, y, opts)
			if err != nil {
				return true // skip ill-conditioned draws
			}
			for j := range want {
				if math.Abs(fit.Coef[j]-want[j]) > 1e-6*(1+want[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStdErrKnownSystem(t *testing.T) {
	// y = 2x with additive residuals of known size on a simple design.
	x := design([][]float64{{1}, {2}, {3}, {4}})
	y := []float64{2.1, 3.9, 6.1, 7.9}
	fit, err := FitLinear(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fit.StdErr == nil || len(fit.StdErr) != 1 {
		t.Fatalf("stderr missing: %v", fit.StdErr)
	}
	// Hand computation: coef = sum(xy)/sum(x²) = 59.8/30;
	// SSR = sum((y - coef*x)²); s² = SSR/3; se = sqrt(s²/30).
	coef := 59.8 / 30
	var ssr float64
	for i, xv := range []float64{1, 2, 3, 4} {
		r := y[i] - coef*xv
		ssr += r * r
	}
	want := math.Sqrt(ssr / 3 / 30)
	if math.Abs(fit.StdErr[0]-want) > 1e-12 {
		t.Fatalf("stderr = %g, want %g", fit.StdErr[0], want)
	}
}

func TestStdErrAbsentWithoutDOF(t *testing.T) {
	// Square system: zero residual degrees of freedom -> no stderr.
	x := design([][]float64{{1, 0}, {0, 1}})
	fit, err := FitLinear(x, []float64{1, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fit.StdErr != nil {
		t.Fatal("stderr reported with zero degrees of freedom")
	}
	// Ridge variant: stderr undefined.
	x2 := design([][]float64{{1}, {2}, {3}})
	fit2, err := FitLinear(x2, []float64{1, 2, 3}, Options{Ridge: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fit2.StdErr != nil {
		t.Fatal("stderr reported for ridge fit")
	}
}
