// Property-based tests over randomly generated programs: ISS accounting
// invariants, determinism, resource-analysis agreement, and the
// disassemble/reassemble round trip.
package randprog_test

import (
	"testing"

	"xtenergy/internal/asm"
	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/randprog"
	"xtenergy/internal/rtlpower"
)

func runProg(t *testing.T, prog *iss.Program, trace bool) *iss.Result {
	t.Helper()
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := iss.New(proc).Run(prog, iss.Options{CollectTrace: trace, MaxCycles: 5_000_000})
	if err != nil {
		t.Fatalf("seeded program failed: %v", err)
	}
	return res
}

func TestGeneratedProgramsHaltAndValidate(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		prog := randprog.Generate(seed, randprog.Options{AllowLoops: true})
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res := runProg(t, prog, false)
		if res.Stats.Retired == 0 {
			t.Fatalf("seed %d retired nothing", seed)
		}
	}
}

// Invariant: total cycles decompose exactly into class cycles + custom
// cycles + stall cycles, and retired instructions match opcode counts.
func TestCycleAccountingInvariant(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		prog := randprog.Generate(seed, randprog.Options{AllowLoops: true, Blocks: 60})
		res := runProg(t, prog, true)
		st := res.Stats
		if got := st.BaseCycles() + st.CustomCycles + st.StallCycles; got != st.Cycles {
			t.Fatalf("seed %d: %d classified vs %d total cycles", seed, got, st.Cycles)
		}
		var opTotal uint64
		for _, n := range st.OpcodeExec {
			opTotal += n
		}
		if opTotal != st.Retired {
			t.Fatalf("seed %d: opcode counts %d vs retired %d", seed, opTotal, st.Retired)
		}
		if uint64(len(res.Trace)) != st.Retired {
			t.Fatalf("seed %d: trace %d entries vs retired %d", seed, len(res.Trace), st.Retired)
		}
	}
}

// Invariant: simulation is deterministic.
func TestSimulationDeterminism(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		prog := randprog.Generate(seed, randprog.Options{AllowLoops: true})
		a := runProg(t, prog, false)
		b := runProg(t, prog, false)
		if a.Stats.Cycles != b.Stats.Cycles ||
			a.Stats.Retired != b.Stats.Retired ||
			a.Stats.ClassCycles != b.Stats.ClassCycles ||
			a.Stats.ICacheMisses != b.Stats.ICacheMisses ||
			a.Stats.DCacheMisses != b.Stats.DCacheMisses ||
			a.Stats.Interlocks != b.Stats.Interlocks ||
			a.Stats.OpcodeExec != b.Stats.OpcodeExec {
			t.Fatalf("seed %d: nondeterministic stats", seed)
		}
		if a.Regs != b.Regs {
			t.Fatalf("seed %d: nondeterministic registers", seed)
		}
	}
}

// Invariant: the reference power estimator is deterministic and finite
// on arbitrary traces.
func TestReferenceEstimatorOnRandomPrograms(t *testing.T) {
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tech := rtlpower.FastTechnology()
	tech.Detail = 0.02
	for seed := int64(0); seed < 8; seed++ {
		prog := randprog.Generate(seed, randprog.Options{AllowLoops: true, Blocks: 30})
		res, err := iss.New(proc).Run(prog, iss.Options{CollectTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		est, err := rtlpower.New(proc, tech)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := est.EstimateTrace(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		if r1.TotalPJ <= 0 {
			t.Fatalf("seed %d: non-positive energy", seed)
		}
		est2, _ := rtlpower.New(proc, tech)
		r2, err := est2.EstimateTrace(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		if r1.TotalPJ != r2.TotalPJ {
			t.Fatalf("seed %d: nondeterministic reference", seed)
		}
	}
}

// Round trip: disassembling a generated program and reassembling the
// text must produce a program with identical architectural behaviour.
func TestDisassembleReassembleRoundTrip(t *testing.T) {
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	a := asm.New(proc.TIE)
	for seed := int64(0); seed < 15; seed++ {
		prog := randprog.Generate(seed, randprog.Options{AllowLoops: true})
		text := isa.Disassemble(prog.Code)
		// The disassembly includes "index:" prefixes; strip them into
		// plain instruction lines.
		src := ""
		for _, line := range splitLines(text) {
			if i := indexByte(line, ':'); i >= 0 {
				src += line[i+1:] + "\n"
			}
		}
		prog2, err := a.Assemble("rt", src)
		if err != nil {
			t.Fatalf("seed %d: reassembly failed: %v\n%s", seed, err, src)
		}
		if len(prog2.Code) != len(prog.Code) {
			t.Fatalf("seed %d: %d vs %d instructions", seed, len(prog2.Code), len(prog.Code))
		}
		for i := range prog.Code {
			if prog.Code[i] != prog2.Code[i] {
				t.Fatalf("seed %d: instruction %d differs: %v vs %v",
					seed, i, prog.Code[i], prog2.Code[i])
			}
		}
		// And identical runs (data segment carried over manually).
		prog2.Data = prog.Data
		r1 := runProg(t, prog, false)
		r2 := runProg(t, prog2, false)
		if r1.Regs != r2.Regs || r1.Stats.Cycles != r2.Stats.Cycles {
			t.Fatalf("seed %d: behaviour differs after round trip", seed)
		}
	}
}

// Machine-code round trip: Encode/Decode over whole generated programs.
func TestEncodeDecodeWholeProgram(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		prog := randprog.Generate(seed, randprog.Options{AllowLoops: true})
		for i, in := range prog.Code {
			w, err := in.Encode()
			if err != nil {
				t.Fatalf("seed %d instr %d (%v): %v", seed, i, in, err)
			}
			back, err := isa.Decode(w)
			if err != nil {
				t.Fatalf("seed %d instr %d: %v", seed, i, err)
			}
			if back != in {
				t.Fatalf("seed %d instr %d: %v -> %v", seed, i, in, back)
			}
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Invariant: the reference estimator's per-block energies always sum to
// the reported total, on arbitrary generated programs.
func TestPerBlockConservationOnRandomPrograms(t *testing.T) {
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tech := rtlpower.FastTechnology()
	tech.Detail = 0.02
	for seed := int64(100); seed < 106; seed++ {
		prog := randprog.Generate(seed, randprog.Options{AllowLoops: true, Blocks: 25})
		res, err := iss.New(proc).Run(prog, iss.Options{CollectTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		est, err := rtlpower.New(proc, tech)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := est.EstimateTrace(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range rep.PerBlockPJ {
			if v < 0 {
				t.Fatalf("seed %d: negative block energy", seed)
			}
			sum += v
		}
		if diff := sum - rep.TotalPJ; diff > 1e-6*rep.TotalPJ || diff < -1e-6*rep.TotalPJ {
			t.Fatalf("seed %d: blocks sum %g vs total %g", seed, sum, rep.TotalPJ)
		}
	}
}
