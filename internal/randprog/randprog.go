// Package randprog generates random, guaranteed-halting XT32 programs
// for property-based testing of the instruction-set simulator, the
// assembler/disassembler round trip, and the analysis passes.
//
// Generated programs use only constructs that terminate by
// construction: straight-line arithmetic, loads and stores confined to
// a scratch region, short always-forward branch skips, and counted
// loops that decrement a dedicated register. No indirect jumps or
// calls are emitted.
package randprog

import (
	"math/rand"

	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
)

// scratchBase is the data region used by generated loads/stores.
const scratchBase = 0x1000

// scratchWords is the size of the scratch region in words.
const scratchWords = 512

// Options tunes generation.
type Options struct {
	// Blocks is the number of code blocks to generate (each a handful
	// of instructions); the default is 40.
	Blocks int
	// AllowLoops enables counted loops (default behaviour when using
	// Generate; disable for purely straight-line programs).
	AllowLoops bool
	// MaxLoopCount bounds each counted loop's trip count (default 6).
	MaxLoopCount int
}

// Generate returns a random halting program drawn from seed.
func Generate(seed int64, opts Options) *iss.Program {
	if opts.Blocks <= 0 {
		opts.Blocks = 40
	}
	if opts.MaxLoopCount <= 0 {
		opts.MaxLoopCount = 6
	}
	r := rand.New(rand.NewSource(seed))
	g := &gen{r: r, opts: opts}
	g.prologue()
	for b := 0; b < opts.Blocks; b++ {
		switch {
		case opts.AllowLoops && r.Intn(4) == 0:
			g.loop()
		case r.Intn(3) == 0:
			g.branchSkip()
		default:
			g.block(2 + r.Intn(5))
		}
	}
	g.emit(isa.Instr{Op: isa.OpRET})
	return &iss.Program{
		Name: "randprog",
		Code: g.code,
		Data: []iss.Segment{{Addr: scratchBase, Bytes: g.data(seed)}},
	}
}

type gen struct {
	r    *rand.Rand
	opts Options
	code []isa.Instr
}

func (g *gen) emit(in isa.Instr) { g.code = append(g.code, in) }

// Register conventions: a2 = scratch base (never overwritten),
// a3 = loop counter, a8..a23 = general scratch.
const (
	regBase    = 2
	regCounter = 3
	scratchLo  = 8
	scratchHi  = 24
)

func (g *gen) reg() uint8 {
	return uint8(scratchLo + g.r.Intn(scratchHi-scratchLo))
}

func (g *gen) prologue() {
	g.emit(isa.Instr{Op: isa.OpMOVI, Rd: regBase, Imm: scratchBase})
	for r := scratchLo; r < scratchHi; r++ {
		g.emit(isa.Instr{Op: isa.OpMOVI, Rd: uint8(r), Imm: int32(g.r.Intn(100000) - 50000)})
	}
}

// block emits n random safe instructions.
func (g *gen) block(n int) {
	for i := 0; i < n; i++ {
		switch g.r.Intn(10) {
		case 0: // load
			op := []isa.Opcode{isa.OpL32I, isa.OpL16UI, isa.OpL16SI, isa.OpL8UI, isa.OpL8SI}[g.r.Intn(5)]
			g.emit(isa.Instr{Op: op, Rd: g.reg(), Rs: regBase, Imm: g.wordOffset(op)})
		case 1: // store
			op := []isa.Opcode{isa.OpS32I, isa.OpS16I, isa.OpS8I}[g.r.Intn(3)]
			g.emit(isa.Instr{Op: op, Rd: g.reg(), Rs: regBase, Imm: g.wordOffset(op)})
		case 2: // multiply (multi-cycle)
			op := []isa.Opcode{isa.OpMUL, isa.OpMULH, isa.OpMULHU}[g.r.Intn(3)]
			g.emit(isa.Instr{Op: op, Rd: g.reg(), Rs: g.reg(), Rt: g.reg()})
		case 3: // shift immediate
			op := []isa.Opcode{isa.OpSLLI, isa.OpSRLI, isa.OpSRAI}[g.r.Intn(3)]
			g.emit(isa.Instr{Op: op, Rd: g.reg(), Rs: g.reg(), Imm: int32(g.r.Intn(31))})
		case 4: // unary
			op := []isa.Opcode{isa.OpNEG, isa.OpNOT, isa.OpABS, isa.OpSEXT8, isa.OpSEXT16, isa.OpNSA, isa.OpNSAU, isa.OpMOV}[g.r.Intn(8)]
			g.emit(isa.Instr{Op: op, Rd: g.reg(), Rs: g.reg()})
		case 5: // immediate arithmetic
			op := []isa.Opcode{isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI, isa.OpSLTI}[g.r.Intn(5)]
			g.emit(isa.Instr{Op: op, Rd: g.reg(), Rs: g.reg(), Imm: int32(g.r.Intn(4000) - 2000)})
		case 6: // conditional move
			op := []isa.Opcode{isa.OpMOVEQZ, isa.OpMOVNEZ, isa.OpMOVLTZ, isa.OpMOVGEZ}[g.r.Intn(4)]
			g.emit(isa.Instr{Op: op, Rd: g.reg(), Rs: g.reg(), Rt: g.reg()})
		default: // three-register arithmetic
			op := []isa.Opcode{isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR,
				isa.OpSLT, isa.OpSLTU, isa.OpMIN, isa.OpMAX, isa.OpMINU, isa.OpMAXU,
				isa.OpSLL, isa.OpSRL, isa.OpSRA}[g.r.Intn(14)]
			g.emit(isa.Instr{Op: op, Rd: g.reg(), Rs: g.reg(), Rt: g.reg()})
		}
	}
}

// wordOffset returns an aligned in-bounds scratch offset for op.
func (g *gen) wordOffset(op isa.Opcode) int32 {
	switch op {
	case isa.OpL8UI, isa.OpL8SI, isa.OpS8I:
		return int32(g.r.Intn(scratchWords * 4))
	case isa.OpL16UI, isa.OpL16SI, isa.OpS16I:
		return int32(g.r.Intn(scratchWords*2) * 2)
	default:
		return int32(g.r.Intn(scratchWords) * 4)
	}
}

// branchSkip emits a conditional branch over a short block; whichever
// way it resolves, execution proceeds forward.
func (g *gen) branchSkip() {
	ops := []isa.Opcode{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU,
		isa.OpBANY, isa.OpBNONE, isa.OpBALL, isa.OpBNALL,
		isa.OpBEQZ, isa.OpBNEZ, isa.OpBLTZ, isa.OpBGEZ, isa.OpBBCI, isa.OpBBSI,
		isa.OpBEQI, isa.OpBNEI, isa.OpBLTI, isa.OpBGEI, isa.OpBLTUI, isa.OpBGEUI}
	op := ops[g.r.Intn(len(ops))]
	d, _ := isa.Lookup(op)
	skip := 1 + g.r.Intn(3)
	in := isa.Instr{Op: op, Rs: g.reg(), Imm: int32(skip)}
	switch d.Format {
	case isa.FormatBranchRR:
		in.Rt = g.reg()
	case isa.FormatBranchRI:
		if op == isa.OpBBCI || op == isa.OpBBSI {
			in.Rt = uint8(g.r.Intn(32))
		} else {
			in.Rt = uint8(g.r.Intn(32)) // constants 0..31 are valid for both signed and unsigned
		}
	}
	g.emit(in)
	g.block(skip)
}

// loop emits a counted loop: movi counter; body; addi -1; bnez back.
func (g *gen) loop() {
	count := 1 + g.r.Intn(g.opts.MaxLoopCount)
	g.emit(isa.Instr{Op: isa.OpMOVI, Rd: regCounter, Imm: int32(count)})
	bodyLen := 2 + g.r.Intn(4)
	g.block(bodyLen)
	g.emit(isa.Instr{Op: isa.OpADDI, Rd: regCounter, Rs: regCounter, Imm: -1})
	// bnez back over the body and the addi: offset = -(bodyLen+2).
	g.emit(isa.Instr{Op: isa.OpBNEZ, Rs: regCounter, Imm: int32(-(bodyLen + 2))})
}

// data builds the deterministic initial scratch contents.
func (g *gen) data(seed int64) []byte {
	out := make([]byte, scratchWords*4)
	state := uint32(seed)*2654435761 + 12345
	for i := range out {
		state = state*1664525 + 1013904223
		out[i] = byte(state >> 24)
	}
	return out
}
