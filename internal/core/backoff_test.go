package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
)

func transientMeasure(calls *atomic.Int64) MeasureFunc {
	return func(ctx context.Context, cfg procgen.Config, tech rtlpower.Technology, w Workload) (Measurement, error) {
		calls.Add(1)
		return Measurement{}, &iss.Fault{
			Kind: iss.FaultMeasurement, Prog: w.Name, PC: -1, Transient: true, Msg: "injected",
		}
	}
}

func TestRetryDelayShape(t *testing.T) {
	// Exponential growth with a cap, scaled by jitter in [0.75, 1.25).
	base := 100 * time.Millisecond
	for attempt, wantBase := range []time.Duration{
		base, 2 * base, 4 * base, 8 * base, 16 * base, 32 * base, 32 * base, 32 * base,
	} {
		d := retryDelay(base, "tp01", attempt)
		lo := time.Duration(float64(wantBase) * 0.75)
		hi := time.Duration(float64(wantBase) * 1.25)
		if d < lo || d >= hi {
			t.Errorf("retryDelay(attempt %d) = %v, want in [%v, %v)", attempt, d, lo, hi)
		}
	}
	// Deterministic: same inputs, same delay (no shared RNG to race on).
	if a, b := retryDelay(base, "tp01", 2), retryDelay(base, "tp01", 2); a != b {
		t.Errorf("retryDelay not deterministic: %v vs %v", a, b)
	}
	// Jittered: different workloads should not retry in lockstep.
	same := 0
	names := []string{"tp01", "tp02", "tp03", "tp04", "tp05", "tp06"}
	for _, n := range names[1:] {
		if retryDelay(base, n, 1) == retryDelay(base, names[0], 1) {
			same++
		}
	}
	if same == len(names)-1 {
		t.Error("every workload got an identical delay; jitter is not applied")
	}
	// Zero means the default base; negative disables the delay.
	if d := retryDelay(0, "tp01", 0); d < 75*time.Millisecond || d >= 125*time.Millisecond {
		t.Errorf("retryDelay(0) = %v, want ~%v", d, defaultRetryBackoff)
	}
	if d := retryDelay(-1, "tp01", 3); d != 0 {
		t.Errorf("negative backoff must disable the delay, got %v", d)
	}
}

func TestBackoffPacesRetries(t *testing.T) {
	var calls atomic.Int64
	w := Workload{Name: "flaky"}
	start := time.Now()
	_, attempts, err := measureWithRetry(context.Background(), procgen.Default(), rtlpower.FastTechnology(),
		w, transientMeasure(&calls), Options{Retries: 2, Backoff: 30 * time.Millisecond})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("want the injected transient fault after exhausting retries")
	}
	if attempts != 3 || calls.Load() != 3 {
		t.Fatalf("attempts = %d, calls = %d, want 3", attempts, calls.Load())
	}
	// Two backoffs: ~30ms + ~60ms, jittered down to at worst 0.75x.
	if min := time.Duration(float64(90*time.Millisecond) * 0.75); elapsed < min {
		t.Fatalf("retries took %v; backoff (>= %v) was not applied", elapsed, min)
	}
}

func TestBackoffImmediateWhenDisabled(t *testing.T) {
	var calls atomic.Int64
	start := time.Now()
	_, _, err := measureWithRetry(context.Background(), procgen.Default(), rtlpower.FastTechnology(),
		Workload{Name: "flaky"}, transientMeasure(&calls), Options{Retries: 3, Backoff: -1})
	if err == nil || calls.Load() != 4 {
		t.Fatalf("err = %v, calls = %d", err, calls.Load())
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("disabled backoff still slept: %v", elapsed)
	}
}

func TestBackoffSleepInterruptedByCancel(t *testing.T) {
	var calls atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// A huge backoff: if cancellation did not interrupt the sleep, this
	// test would sit for minutes.
	_, attempts, err := measureWithRetry(ctx, procgen.Default(), rtlpower.FastTechnology(),
		Workload{Name: "flaky"}, transientMeasure(&calls), Options{Retries: 5, Backoff: 5 * time.Minute})
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to interrupt the backoff sleep", elapsed)
	}
	f, ok := iss.AsFault(err)
	if !ok || f.Kind != iss.FaultCancelled {
		t.Fatalf("err = %v, want a cancelled fault", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fault must wrap context.Canceled, got %v", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (cancelled during the first backoff)", attempts)
	}
}
