package core

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"xtenergy/internal/regress"
)

// modelFile is the on-disk representation of a characterized
// macro-model. Coefficients are stored by variable name so the file
// survives reordering of the variable indices, and a format version
// guards against silent misreads.
type modelFile struct {
	Format       int                `json:"format"`
	Description  string             `json:"description,omitempty"`
	NumVars      int                `json:"num_vars,omitempty"`
	Coefficients map[string]float64 `json:"coefficients_pj"`
	// Training diagnostics (informational).
	R2           float64 `json:"r2,omitempty"`
	RMSRelPct    float64 `json:"rms_rel_pct,omitempty"`
	MaxAbsRelPct float64 `json:"max_abs_rel_pct,omitempty"`
	Programs     int     `json:"training_programs,omitempty"`
}

const modelFormatVersion = 1

// validateCoefficients rejects coefficient vectors that would yield
// garbage estimates: NaN or infinite entries (a corrupt file, or a fit
// gone numerically wrong) have no meaningful energy interpretation.
func validateCoefficients(coef *Vars) error {
	for i, c := range coef {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("core: coefficient %q is %v; the model is corrupt or the fit diverged", VarName(i), c)
		}
	}
	return nil
}

// MarshalJSON encodes the model with named coefficients. Models with
// NaN/Inf coefficients are rejected rather than written: a file that
// LoadModel would refuse must never be produced.
func (m *MacroModel) MarshalJSON() ([]byte, error) {
	if err := validateCoefficients(&m.Coef); err != nil {
		return nil, err
	}
	f := modelFile{
		Format:       modelFormatVersion,
		NumVars:      NumVars,
		Coefficients: make(map[string]float64, NumVars),
	}
	for i := 0; i < NumVars; i++ {
		f.Coefficients[VarName(i)] = m.Coef[i]
	}
	if m.Fit != nil {
		f.R2 = m.Fit.R2
		f.RMSRelPct = 100 * m.Fit.RMSRel
		f.MaxAbsRelPct = 100 * m.Fit.MaxAbsRel
		f.Programs = len(m.Fit.Residuals)
	}
	return json.MarshalIndent(f, "", "  ")
}

// UnmarshalJSON decodes a model written by MarshalJSON and validates
// it: the format version must match, the coefficient vector must have
// the expected length (when the file declares num_vars), every name
// must be known, and no coefficient may be NaN or infinite — a
// truncated or corrupted file fails loudly here instead of silently
// yielding garbage estimates. Missing names default to zero (files
// written before num_vars was recorded are accepted).
func (m *MacroModel) UnmarshalJSON(data []byte) error {
	var f modelFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("core: parsing model: %w", err)
	}
	if f.Format != modelFormatVersion {
		return fmt.Errorf("core: model format %d, want %d", f.Format, modelFormatVersion)
	}
	if f.NumVars != 0 && f.NumVars != NumVars {
		return fmt.Errorf("core: model has %d variables, want %d (wrong-length coefficient vector)", f.NumVars, NumVars)
	}
	if len(f.Coefficients) == 0 {
		return fmt.Errorf("core: model has no coefficients")
	}
	if f.NumVars != 0 && len(f.Coefficients) != NumVars {
		return fmt.Errorf("core: model has %d coefficients, want %d (truncated file?)", len(f.Coefficients), NumVars)
	}
	byName := make(map[string]int, NumVars)
	for i := 0; i < NumVars; i++ {
		byName[VarName(i)] = i
	}
	var coef Vars
	for name, v := range f.Coefficients {
		i, ok := byName[name]
		if !ok {
			return fmt.Errorf("core: model has unknown coefficient %q", name)
		}
		coef[i] = v
	}
	if err := validateCoefficients(&coef); err != nil {
		return err
	}
	m.Coef = coef
	// Reconstruct summary-level diagnostics so consumers can report them.
	m.Fit = &regress.Fit{
		R2:        f.R2,
		RMSRel:    f.RMSRelPct / 100,
		MaxAbsRel: f.MaxAbsRelPct / 100,
	}
	if f.Programs > 0 {
		m.Fit.Residuals = make([]float64, f.Programs)
	}
	return nil
}

// Save writes the model to path as JSON, so a characterized processor
// family can be reused without re-running the (slow) characterization.
func (m *MacroModel) Save(path string) error {
	data, err := m.MarshalJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadModel reads a model previously written by Save.
func LoadModel(path string) (*MacroModel, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m MacroModel
	if err := m.UnmarshalJSON(data); err != nil {
		return nil, fmt.Errorf("core: %s: %w", path, err)
	}
	return &m, nil
}
