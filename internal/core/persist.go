package core

import (
	"encoding/json"
	"fmt"
	"os"

	"xtenergy/internal/regress"
)

// modelFile is the on-disk representation of a characterized
// macro-model. Coefficients are stored by variable name so the file
// survives reordering of the variable indices, and a format version
// guards against silent misreads.
type modelFile struct {
	Format       int                `json:"format"`
	Description  string             `json:"description,omitempty"`
	Coefficients map[string]float64 `json:"coefficients_pj"`
	// Training diagnostics (informational).
	R2           float64 `json:"r2,omitempty"`
	RMSRelPct    float64 `json:"rms_rel_pct,omitempty"`
	MaxAbsRelPct float64 `json:"max_abs_rel_pct,omitempty"`
	Programs     int     `json:"training_programs,omitempty"`
}

const modelFormatVersion = 1

// MarshalJSON encodes the model with named coefficients.
func (m *MacroModel) MarshalJSON() ([]byte, error) {
	f := modelFile{
		Format:       modelFormatVersion,
		Coefficients: make(map[string]float64, NumVars),
	}
	for i := 0; i < NumVars; i++ {
		f.Coefficients[VarName(i)] = m.Coef[i]
	}
	if m.Fit != nil {
		f.R2 = m.Fit.R2
		f.RMSRelPct = 100 * m.Fit.RMSRel
		f.MaxAbsRelPct = 100 * m.Fit.MaxAbsRel
		f.Programs = len(m.Fit.Residuals)
	}
	return json.MarshalIndent(f, "", "  ")
}

// UnmarshalJSON decodes a model written by MarshalJSON. Unknown
// coefficient names are rejected (they signal a version mismatch);
// missing names default to zero.
func (m *MacroModel) UnmarshalJSON(data []byte) error {
	var f modelFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("core: parsing model: %w", err)
	}
	if f.Format != modelFormatVersion {
		return fmt.Errorf("core: model format %d, want %d", f.Format, modelFormatVersion)
	}
	byName := make(map[string]int, NumVars)
	for i := 0; i < NumVars; i++ {
		byName[VarName(i)] = i
	}
	var coef Vars
	for name, v := range f.Coefficients {
		i, ok := byName[name]
		if !ok {
			return fmt.Errorf("core: model has unknown coefficient %q", name)
		}
		coef[i] = v
	}
	m.Coef = coef
	// Reconstruct summary-level diagnostics so consumers can report them.
	m.Fit = &regress.Fit{
		R2:        f.R2,
		RMSRel:    f.RMSRelPct / 100,
		MaxAbsRel: f.MaxAbsRelPct / 100,
	}
	if f.Programs > 0 {
		m.Fit.Residuals = make([]float64, f.Programs)
	}
	return nil
}

// Save writes the model to path as JSON, so a characterized processor
// family can be reused without re-running the (slow) characterization.
func (m *MacroModel) Save(path string) error {
	data, err := m.MarshalJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadModel reads a model previously written by Save.
func LoadModel(path string) (*MacroModel, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m MacroModel
	if err := m.UnmarshalJSON(data); err != nil {
		return nil, fmt.Errorf("core: %s: %w", path, err)
	}
	return &m, nil
}
