package core_test

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"xtenergy/internal/core"
	"xtenergy/internal/hwlib"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/tie"
	"xtenergy/internal/workloads"
)

func miniExt() *tie.Extension {
	return &tie.Extension{
		Name:          "mini",
		NumCustomRegs: 1,
		Instructions: []*tie.Instruction{
			{
				Name: "crunch", Latency: 2, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					{Component: hwlib.Component{Name: "cu", Cat: hwlib.Multiplier, Width: 16}, OnBus: true},
					{Component: hwlib.Component{Name: "cr", Cat: hwlib.CustomRegister, Width: 32}},
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					s.Regs[0] ^= op.RsVal
					return op.RsVal*3 + op.RtVal
				},
			},
		},
	}
}

// The characterized model is expensive to build, so the package's tests
// share one instance (the suite and technology are deterministic).
var (
	charOnce sync.Once
	charRes  *core.CharacterizationResult
	charErr  error
)

func fastChar(t *testing.T) *core.CharacterizationResult {
	t.Helper()
	charOnce.Do(func() {
		charRes, charErr = core.Characterize(context.Background(),
			procgen.Default(), rtlpower.FastTechnology(),
			workloads.CharacterizationSuite(), core.Options{})
	})
	if charErr != nil {
		t.Fatal(charErr)
	}
	return charRes
}

func TestVarNames(t *testing.T) {
	names := core.VarNames()
	if len(names) != core.NumVars || core.NumVars != 21 {
		t.Fatalf("got %d variables, want the paper's 21", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Fatalf("bad or duplicate variable name %q", n)
		}
		seen[n] = true
	}
	if names[0] != "arith" || names[core.VCustomBase] != "hw:mult" {
		t.Fatalf("variable order wrong: %v", names)
	}
	if core.VarName(-1) == "" || core.VarName(999) == "" {
		t.Fatal("out-of-range VarName empty")
	}
}

func TestExtract(t *testing.T) {
	w := core.Workload{Name: "x", Ext: miniExt(), Source: `
start:
    movi a3, 30
    movi a4, 5
loop:
    crunch a5, a4, a3
    addi a3, a3, -1
    bnez a3, loop
    ret
`}
	proc, prog, err := w.Build(procgen.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := iss.New(proc).Run(prog, iss.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vars, err := core.Extract(proc.TIE, &res.Stats)
	if err != nil {
		t.Fatal(err)
	}
	if vars[core.VArith] == 0 || vars[core.VBranchTaken] == 0 {
		t.Fatalf("instruction-level variables missing: %v", vars)
	}
	// crunch executes 30 times, latency 2, accesses the regfile.
	if vars[core.VCustomSideEffect] != 60 {
		t.Fatalf("side-effect cycles = %g, want 60", vars[core.VCustomSideEffect])
	}
	if vars[core.VCustomBase+int(hwlib.Multiplier)] <= 0 {
		t.Fatal("structural multiplier variable missing")
	}
}

func TestWorkloadBuildErrors(t *testing.T) {
	w := core.Workload{Name: "bad", Source: "    bogus\n"}
	if _, _, err := w.Build(procgen.Default()); err == nil {
		t.Fatal("bad source built")
	}
	w2 := core.Workload{Name: "badext", Source: "ret\n", Ext: &tie.Extension{Name: ""}}
	if _, _, err := w2.Build(procgen.Default()); err == nil {
		t.Fatal("bad extension built")
	}
}

func TestCharacterizeProducesUsableModel(t *testing.T) {
	cr := fastChar(t)
	if len(cr.Observations) != len(workloads.CharacterizationSuite()) {
		t.Fatalf("observations = %d", len(cr.Observations))
	}
	m := cr.Model
	if m.Fit == nil {
		t.Fatal("no fit diagnostics")
	}
	if m.Fit.R2 < 0.99 {
		t.Fatalf("R2 = %g, characterization failed", m.Fit.R2)
	}
	// Fitting errors must be small on the training set (paper Fig. 3:
	// max < 8.9%).
	for _, o := range cr.Observations {
		if math.Abs(o.RelErr) > 0.12 {
			t.Fatalf("%s fit error %.1f%%", o.Name, 100*o.RelErr)
		}
		if o.MeasuredPJ <= 0 || o.FittedPJ <= 0 {
			t.Fatalf("%s has non-positive energies", o.Name)
		}
	}
	// Base per-cycle coefficients must be positive and plausible for a
	// few-hundred-pJ/cycle core.
	for _, v := range []int{core.VArith, core.VLoad, core.VStore, core.VJump, core.VBranchTaken, core.VBranchUntaken} {
		if m.Coef[v] < 50 || m.Coef[v] > 2000 {
			t.Fatalf("%s coefficient = %g pJ, implausible", core.VarName(v), m.Coef[v])
		}
	}
	// Event coefficients are per-event and larger.
	for _, v := range []int{core.VICacheMiss, core.VDCacheMiss, core.VUncachedFetch} {
		if m.Coef[v] < 500 || m.Coef[v] > 20000 {
			t.Fatalf("%s coefficient = %g pJ, implausible", core.VarName(v), m.Coef[v])
		}
	}
}

func TestCharacterizeGeneralizes(t *testing.T) {
	cr := fastChar(t)
	// Held-out applications (not in the training suite).
	for _, name := range []string{"alphablend", "des", "gcd"} {
		w, ok := workloads.ApplicationByName(name)
		if !ok {
			t.Fatal("application missing")
		}
		cmp, err := cr.Model.Compare(context.Background(), procgen.Default(), rtlpower.FastTechnology(), w)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cmp.RelErrPct) > 12 {
			t.Fatalf("%s held-out error %.1f%%, model does not generalize", name, cmp.RelErrPct)
		}
	}
}

func TestEstimateWorkloadFastPath(t *testing.T) {
	cr := fastChar(t)
	w := workloads.CharacterizationSuite()[1]
	est, err := cr.Model.EstimateWorkload(procgen.Default(), w)
	if err != nil {
		t.Fatal(err)
	}
	if est.EnergyPJ <= 0 || est.Cycles == 0 {
		t.Fatalf("estimate = %+v", est)
	}
	if est.EnergyUJ() != est.EnergyPJ*1e-6 {
		t.Fatal("unit conversion wrong")
	}
	// The fast path must match the training fit for a training program.
	var obs *core.Observation
	for i := range cr.Observations {
		if cr.Observations[i].Name == w.Name {
			obs = &cr.Observations[i]
		}
	}
	if obs == nil {
		t.Fatal("training observation missing")
	}
	if math.Abs(est.EnergyPJ-obs.FittedPJ) > 1e-6*obs.FittedPJ {
		t.Fatalf("fast path %g != fitted %g", est.EnergyPJ, obs.FittedPJ)
	}
}

func TestEstimateWithoutModelFails(t *testing.T) {
	var m core.MacroModel
	if _, err := m.EstimateWorkload(procgen.Default(), workloads.Applications()[0]); err == nil {
		t.Fatal("empty model estimated")
	}
}

func TestCharacterizeErrors(t *testing.T) {
	cfg := procgen.Default()
	tech := rtlpower.FastTechnology()
	if _, err := core.Characterize(context.Background(), cfg, tech, nil, core.Options{}); err == nil {
		t.Fatal("empty suite accepted")
	}
	// Too few programs for the active variables.
	if _, err := core.Characterize(context.Background(), cfg, tech, workloads.CharacterizationSuite()[:3], core.Options{}); err == nil {
		t.Fatal("underdetermined suite accepted")
	}
	// A broken program fails characterization.
	bad := []core.Workload{{Name: "x", Source: "bogus\n"}}
	if _, err := core.Characterize(context.Background(), cfg, tech, bad, core.Options{}); err == nil {
		t.Fatal("broken program accepted")
	}
}

func TestReferenceEnergy(t *testing.T) {
	ref, err := core.ReferenceEnergy(context.Background(), procgen.Default(), rtlpower.FastTechnology(), workloads.Applications()[5])
	if err != nil {
		t.Fatal(err)
	}
	if ref.EnergyPJ <= 0 || ref.Cycles == 0 {
		t.Fatalf("reference = %+v", ref)
	}
	if ref.EnergyUJ() != ref.EnergyPJ*1e-6 {
		t.Fatal("unit conversion wrong")
	}
}

func TestCoefByName(t *testing.T) {
	cr := fastChar(t)
	v, err := cr.Model.CoefByName("arith")
	if err != nil || v != cr.Model.Coef[core.VArith] {
		t.Fatalf("CoefByName arith = %g, %v", v, err)
	}
	if _, err := cr.Model.CoefByName("nope"); err == nil {
		t.Fatal("bogus name accepted")
	}
}

func TestEstimatePJLinear(t *testing.T) {
	m := &core.MacroModel{}
	m.Coef[core.VArith] = 2
	m.Coef[core.VLoad] = 3
	var v core.Vars
	v[core.VArith] = 10
	v[core.VLoad] = 5
	if got := m.EstimatePJ(v); got != 35 {
		t.Fatalf("EstimatePJ = %g, want 35", got)
	}
}

// Recovery check: the fitted custom-hardware coefficients should land
// near the technology's true unit energies (Table I seeding), since the
// reference model's custom energy is linear in the structural variables
// up to activity noise. Tolerances are wide because the per-cycle base
// overhead of custom instructions is shared between the side-effect and
// structural coefficients.
func TestCustomCoefficientsNearTruth(t *testing.T) {
	cr := fastChar(t)
	truth := rtlpower.DefaultTechnology().CustomUnitPJ
	for _, cat := range hwlib.Categories() {
		got := cr.Model.Coef[core.VCustomBase+int(cat)]
		want := truth[cat]
		if math.Abs(got-want) > 0.6*want+80 {
			t.Errorf("category %s coefficient %.1f pJ, truth %.1f pJ", cat, got, want)
		}
	}
}

func TestCoefficientStandardErrors(t *testing.T) {
	cr := fastChar(t)
	m := cr.Model
	// Major per-cycle coefficients must come with defined, reasonably
	// tight standard errors (the suite leaves 19 degrees of freedom).
	for _, v := range []int{core.VArith, core.VLoad, core.VStore} {
		se := m.CoefStdErr[v]
		if se <= 0 {
			t.Fatalf("%s has no standard error", core.VarName(v))
		}
		if se > 0.25*m.Coef[v] {
			t.Fatalf("%s standard error %.1f is %.0f%% of the coefficient",
				core.VarName(v), se, 100*se/m.Coef[v])
		}
	}
}

func TestBreakdownSumsToEstimate(t *testing.T) {
	cr := fastChar(t)
	w, _ := workloads.ApplicationByName("des")
	est, err := cr.Model.EstimateWorkload(procgen.Default(), w)
	if err != nil {
		t.Fatal(err)
	}
	rows := cr.Model.Breakdown(est.Vars)
	if len(rows) == 0 {
		t.Fatal("empty breakdown")
	}
	var sum, pct float64
	for i, r := range rows {
		sum += r.EnergyPJ
		pct += r.Percent
		if i > 0 && r.EnergyPJ > rows[i-1].EnergyPJ {
			t.Fatal("breakdown not sorted")
		}
	}
	if math.Abs(sum-est.EnergyPJ) > 1e-9*math.Abs(est.EnergyPJ) {
		t.Fatalf("breakdown sums to %g, estimate is %g", sum, est.EnergyPJ)
	}
	if math.Abs(pct-100) > 0.01 {
		t.Fatalf("breakdown shares sum to %.2f%%", pct)
	}
	text := core.FormatBreakdown(rows)
	if !strings.Contains(text, "estimate breakdown") || !strings.Contains(text, "arith") {
		t.Fatalf("breakdown text malformed:\n%s", text)
	}
}

// TestCharacterizeSerialIdentical pins Options.Parallelism: a fully
// serialized run (Parallelism 1) must fit exactly the same model as the
// default GOMAXPROCS-wide worker pool — worker scheduling cannot change
// any measured energy, so the coefficients are bit-identical.
func TestCharacterizeSerialIdentical(t *testing.T) {
	want := fastChar(t)
	got, err := core.Characterize(context.Background(),
		procgen.Default(), rtlpower.FastTechnology(),
		workloads.CharacterizationSuite(), core.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Model.Coef {
		if got.Model.Coef[i] != want.Model.Coef[i] {
			t.Fatalf("coef %d: serial %v != parallel %v (bit-identical expected)",
				i, got.Model.Coef[i], want.Model.Coef[i])
		}
	}
}
