package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
)

// Estimate is a fast macro-model energy estimate for one application.
type Estimate struct {
	// Name is the application name.
	Name string
	// EnergyPJ is the macro-model estimate.
	EnergyPJ float64
	// Vars are the extracted macro-model variables.
	Vars Vars
	// Cycles is the application's simulated cycle count.
	Cycles uint64
}

// EnergyUJ returns the estimate in microjoules (Table II's unit).
func (e Estimate) EnergyUJ() float64 { return e.EnergyPJ * 1e-6 }

// EstimateWorkload runs the fast estimation path (paper Fig. 2, steps
// 9-11): instruction-set simulation for execution statistics, dynamic
// resource-usage analysis for custom-hardware activations, and the
// macro-model dot product. No RTL generation or simulation is involved —
// this is what makes the approach usable for exploring candidate custom
// instructions.
func (m *MacroModel) EstimateWorkload(cfg procgen.Config, w Workload) (Estimate, error) {
	if m.Fit == nil && m.Coef == (Vars{}) {
		return Estimate{}, fmt.Errorf("core: macro-model has no coefficients; run Characterize first")
	}
	_, res, vars, err := w.Simulate(cfg, false)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{
		Name:     w.Name,
		EnergyPJ: m.EstimatePJ(vars),
		Vars:     vars,
		Cycles:   res.Stats.Cycles,
	}, nil
}

// Reference is the slow-path measurement used to validate estimates.
type Reference struct {
	Name     string
	EnergyPJ float64
	Cycles   uint64
	Report   rtlpower.Report
}

// EnergyUJ returns the reference energy in microjoules.
func (r Reference) EnergyUJ() float64 { return r.EnergyPJ * 1e-6 }

// ReferenceEnergy measures a workload's energy with the RTL-level
// reference estimator (the WattWatcher leg of Table II). The ISS
// streams into the estimator (rtlpower.EstimateProgram), so the
// measurement runs in O(1) memory regardless of workload length.
// Cancelling ctx aborts within one batch boundary with a typed
// cancelled fault.
func ReferenceEnergy(ctx context.Context, cfg procgen.Config, tech rtlpower.Technology, w Workload) (Reference, error) {
	proc, prog, err := w.Build(cfg)
	if err != nil {
		return Reference{}, err
	}
	est, err := rtlpower.New(proc, tech)
	if err != nil {
		return Reference{}, err
	}
	rep, res, err := est.EstimateProgram(ctx, prog, iss.Options{})
	if err != nil {
		return Reference{}, fmt.Errorf("core: workload %s: %w", w.Name, err)
	}
	return Reference{
		Name:     w.Name,
		EnergyPJ: rep.TotalPJ,
		Cycles:   res.Stats.Cycles,
		Report:   rep,
	}, nil
}

// Comparison pairs the fast estimate with the reference measurement for
// one application (one row of the paper's Table II).
type Comparison struct {
	Name        string
	EstimatePJ  float64
	ReferencePJ float64
	// RelErrPct is 100*(Estimate-Reference)/Reference, the signed error
	// percentage as reported in Table II.
	RelErrPct float64
}

// Compare runs both paths for a workload and reports the error.
func (m *MacroModel) Compare(ctx context.Context, cfg procgen.Config, tech rtlpower.Technology, w Workload) (Comparison, error) {
	est, err := m.EstimateWorkload(cfg, w)
	if err != nil {
		return Comparison{}, err
	}
	ref, err := ReferenceEnergy(ctx, cfg, tech, w)
	if err != nil {
		return Comparison{}, err
	}
	c := Comparison{Name: w.Name, EstimatePJ: est.EnergyPJ, ReferencePJ: ref.EnergyPJ}
	if ref.EnergyPJ != 0 {
		c.RelErrPct = 100 * (est.EnergyPJ - ref.EnergyPJ) / ref.EnergyPJ
	}
	return c, nil
}

// Contribution is one macro-model term of an estimate.
type Contribution struct {
	// Variable is the macro-model variable name.
	Variable string
	// Value is the variable's extracted value.
	Value float64
	// CoefPJ is the fitted coefficient.
	CoefPJ float64
	// EnergyPJ is Value * CoefPJ.
	EnergyPJ float64
	// Percent is the share of the total estimate.
	Percent float64
}

// Breakdown decomposes an estimate into its 21 coefficient terms, sorted
// by energy descending (zero terms omitted). The terms sum to
// EstimatePJ(v) exactly.
func (m *MacroModel) Breakdown(v Vars) []Contribution {
	total := m.EstimatePJ(v)
	var out []Contribution
	for i := 0; i < NumVars; i++ {
		e := m.Coef[i] * v[i]
		if e == 0 {
			continue
		}
		c := Contribution{
			Variable: VarName(i),
			Value:    v[i],
			CoefPJ:   m.Coef[i],
			EnergyPJ: e,
		}
		if total != 0 {
			c.Percent = 100 * e / total
		}
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].EnergyPJ > out[b].EnergyPJ })
	return out
}

// FormatBreakdown renders an estimate decomposition.
func FormatBreakdown(rows []Contribution) string {
	var b strings.Builder
	b.WriteString("estimate breakdown by macro-model term\n")
	fmt.Fprintf(&b, "%-20s %14s %12s %12s %8s\n", "term", "variable", "coef (pJ)", "energy (nJ)", "share")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %14.0f %12.1f %12.2f %7.1f%%\n",
			r.Variable, r.Value, r.CoefPJ, r.EnergyPJ*1e-3, r.Percent)
	}
	return b.String()
}
