package core_test

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xtenergy/internal/core"
	"xtenergy/internal/procgen"
	"xtenergy/internal/workloads"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	cr := fastChar(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := cr.Model.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < core.NumVars; i++ {
		if loaded.Coef[i] != cr.Model.Coef[i] {
			t.Fatalf("coefficient %s changed: %g vs %g",
				core.VarName(i), loaded.Coef[i], cr.Model.Coef[i])
		}
	}
	// Diagnostics survive at summary level.
	if math.Abs(loaded.Fit.R2-cr.Model.Fit.R2) > 1e-12 {
		t.Fatalf("R2 lost: %g vs %g", loaded.Fit.R2, cr.Model.Fit.R2)
	}
	// A loaded model estimates identically.
	w, _ := workloads.ApplicationByName("des")
	a, err := cr.Model.EstimateWorkload(procgen.Default(), w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.EstimateWorkload(procgen.Default(), w)
	if err != nil {
		t.Fatal(err)
	}
	if a.EnergyPJ != b.EnergyPJ {
		t.Fatalf("loaded model estimates differently: %g vs %g", a.EnergyPJ, b.EnergyPJ)
	}
}

func TestModelFileIsReadable(t *testing.T) {
	cr := fastChar(t)
	data, err := cr.Model.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"format": 1`, `"arith"`, `"hw:table"`, `"r2"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("model JSON missing %q:\n%s", want, s)
		}
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := core.LoadModel("/nonexistent/model.json"); err == nil {
		t.Fatal("missing file loaded")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")

	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadModel(bad); err == nil {
		t.Fatal("garbage loaded")
	}

	if err := os.WriteFile(bad, []byte(`{"format": 99, "coefficients_pj": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadModel(bad); err == nil {
		t.Fatal("wrong format version loaded")
	}

	if err := os.WriteFile(bad, []byte(`{"format": 1, "coefficients_pj": {"bogus-var": 1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadModel(bad); err == nil {
		t.Fatal("unknown coefficient name loaded")
	}
}

func TestLoadModelRejectsCorruptCoefficients(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	cases := []struct {
		name, json, wantErr string
	}{
		{"nan", `{"format": 1, "coefficients_pj": {"arith": NaN}}`, ""},
		{"nan_string_rejected_by_json", `{"format": 1, "coefficients_pj": {"arith": "NaN"}}`, ""},
		{"wrong_num_vars", `{"format": 1, "num_vars": 7, "coefficients_pj": {"arith": 5}}`, "wrong-length"},
		{"truncated_vector", `{"format": 1, "num_vars": 21, "coefficients_pj": {"arith": 5}}`, "truncated"},
		{"empty_coefficients", `{"format": 1, "coefficients_pj": {}}`, "no coefficients"},
		{"cut_off_file", `{"format": 1, "coefficients_pj": {"arith":`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(bad, []byte(tc.json), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := core.LoadModel(bad)
			if err == nil {
				t.Fatalf("corrupt model loaded: %s", tc.json)
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestLoadModelRejectsNonFiniteValues(t *testing.T) {
	// JSON cannot encode NaN/Inf literally, but a hand-edited or
	// corrupted file can smuggle huge values through exponents that
	// overflow to +Inf on some writers; build one via Save refusing
	// first, then a forged in-range file with an Inf written as 1e999.
	dir := t.TempDir()
	bad := filepath.Join(dir, "inf.json")
	if err := os.WriteFile(bad, []byte(`{"format": 1, "coefficients_pj": {"arith": 1e999}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadModel(bad); err == nil {
		t.Fatal("infinite coefficient loaded")
	}
}

func TestSaveRejectsNonFiniteModel(t *testing.T) {
	cr := fastChar(t)
	m := *cr.Model
	m.Coef[core.VArith] = math.NaN()
	dir := t.TempDir()
	path := filepath.Join(dir, "nan.json")
	if err := m.Save(path); err == nil {
		t.Fatal("model with NaN coefficient saved")
	} else if !strings.Contains(err.Error(), "arith") {
		t.Fatalf("error %q does not name the bad coefficient", err)
	}
	if _, statErr := os.Stat(path); statErr == nil {
		t.Fatal("rejected save still wrote a file")
	}
	m.Coef[core.VArith] = math.Inf(1)
	if err := m.Save(path); err == nil {
		t.Fatal("model with Inf coefficient saved")
	}
}

func TestLoadModelMissingCoefficientsDefaultZero(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "partial.json")
	if err := os.WriteFile(path, []byte(`{"format": 1, "coefficients_pj": {"arith": 5}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := core.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Coef[core.VArith] != 5 || m.Coef[core.VLoad] != 0 {
		t.Fatalf("partial load wrong: %v", m.Coef)
	}
}
