package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"strings"
	"sync"
	"time"

	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/linalg"
	"xtenergy/internal/procgen"
	"xtenergy/internal/regress"
	"xtenergy/internal/rtlpower"
)

// Observation is one test program's characterization record.
type Observation struct {
	// Name is the test program name.
	Name string
	// Vars are its macro-model variable values.
	Vars Vars
	// OpcodeExec records per-opcode execution counts (used by the
	// per-opcode ablation, which demonstrates why the paper clusters
	// instructions into six classes).
	OpcodeExec [isa.NumOpcodes]uint64
	// MeasuredPJ is the reference (RTL-level) energy.
	MeasuredPJ float64
	// FittedPJ is the macro-model energy after fitting.
	FittedPJ float64
	// RelErr is (Measured-Fitted)/Measured.
	RelErr float64
	// Cycles is the simulated cycle count.
	Cycles uint64
}

// Measurement is the raw outcome of one workload's reference leg
// (processor generation, streamed simulation + RTL-level estimation,
// resource analysis) before any fitting.
type Measurement struct {
	Vars       Vars
	OpcodeExec [isa.NumOpcodes]uint64
	MeasuredPJ float64
	Cycles     uint64
}

// MeasureFunc produces one workload's reference measurement. The
// default is MeasureWorkload; the chaos harness substitutes wrappers
// that sabotage the leg. Implementations must respect ctx.
type MeasureFunc func(ctx context.Context, cfg procgen.Config, tech rtlpower.Technology, w Workload) (Measurement, error)

// Options configures a characterization run.
type Options struct {
	// Regress selects the fitting variant and its options.
	Regress regress.Options
	// Partial enables graceful degradation: workloads whose reference
	// leg fails (after retries) are dropped and recorded in
	// CharacterizationResult.Failures, and fitting proceeds on the
	// survivors as long as the reduced suite is still well-posed (see
	// Characterize). Without Partial any workload failure aborts the
	// run with a joined error naming every broken program.
	Partial bool
	// Timeout bounds each workload's reference leg; 0 means no
	// per-workload deadline. A timed-out leg raises a cancelled fault
	// that counts as transient (see iss.Fault.IsTransient) and is
	// retried if Retries allows.
	Timeout time.Duration
	// Retries is the number of extra attempts granted to a workload
	// whose failure is transient (iss.Fault.IsTransient). Hard faults
	// (memory faults, illegal instructions, watchdogs...) are
	// deterministic and never retried.
	Retries int
	// Backoff is the base delay inserted before each transient-fault
	// retry, growing exponentially per attempt (capped at 32x) with
	// deterministic per-workload jitter so a pool of flaky legs does
	// not retry in lockstep. 0 means the 100ms default; negative
	// disables the delay (retry immediately). The sleep honors ctx:
	// cancellation interrupts it.
	Backoff time.Duration
	// Measure overrides the reference measurement leg; nil means
	// MeasureWorkload. This is the seam the internal/chaos harness
	// injects failures through.
	Measure MeasureFunc
	// Parallelism bounds how many workload legs run concurrently;
	// 0 (or negative) means runtime.GOMAXPROCS(0). 1 serializes the
	// suite, which is useful when each leg is itself sharded
	// (rtlpower.StreamEstimator.Shards) or when measuring.
	Parallelism int
}

// Failure records one workload dropped from a partial characterization.
type Failure struct {
	// Name is the failed workload's name.
	Name string
	// Attempts is how many times the leg was tried (1 + retries used).
	Attempts int
	// Err is the last attempt's error; when the leg failed with a
	// typed fault it is reachable via errors.As or Failure.Fault.
	Err error
}

// Fault returns the typed fault behind the failure, if any.
func (f Failure) Fault() (*iss.Fault, bool) { return iss.AsFault(f.Err) }

// Kind returns the fault-kind label for reports ("mem-fault",
// "watchdog", ...), or "error" for untyped failures.
func (f Failure) Kind() string {
	if flt, ok := iss.AsFault(f.Err); ok {
		return flt.Kind.String()
	}
	return "error"
}

// CharacterizationResult is the outcome of building a macro-model.
type CharacterizationResult struct {
	Model        *MacroModel
	Observations []Observation
	// Failures lists workloads dropped under Options.Partial, in suite
	// order. Empty on a clean run.
	Failures []Failure
	// Config and Tech record what was characterized.
	Config procgen.Config
	Tech   rtlpower.Technology
}

// Degraded reports whether the model was fitted on a reduced suite.
func (r *CharacterizationResult) Degraded() bool { return len(r.Failures) > 0 }

// MeasureWorkload is the production reference leg: it generates the
// workload's processor, streams the ISS into the RTL-level estimator
// (O(1) memory, cancellable at batch boundaries), and extracts the
// macro-model variables. It also cross-checks the stream: the
// estimator must have consumed exactly the cycles the ISS retired, so
// a consumer that silently drops batches is caught as a measurement
// fault rather than biasing the fit.
func MeasureWorkload(ctx context.Context, cfg procgen.Config, tech rtlpower.Technology, w Workload) (Measurement, error) {
	proc, prog, err := w.Build(cfg)
	if err != nil {
		return Measurement{}, err
	}
	est, err := rtlpower.New(proc, tech)
	if err != nil {
		return Measurement{}, fmt.Errorf("core: workload %s: %w", w.Name, err)
	}
	rep, res, err := est.EstimateProgram(ctx, prog, iss.Options{})
	if err != nil {
		return Measurement{}, fmt.Errorf("core: workload %s: %w", w.Name, err)
	}
	if rep.Cycles != res.Stats.Cycles {
		return Measurement{}, &iss.Fault{
			Kind: iss.FaultMeasurement, Prog: w.Name, PC: -1,
			Msg: fmt.Sprintf("trace integrity: estimator consumed %d cycles, ISS retired %d (dropped batches?)", rep.Cycles, res.Stats.Cycles),
		}
	}
	vars, err := Extract(proc.TIE, &res.Stats)
	if err != nil {
		return Measurement{}, fmt.Errorf("core: workload %s: %w", w.Name, err)
	}
	return Measurement{
		Vars:       vars,
		OpcodeExec: res.Stats.OpcodeExec,
		MeasuredPJ: rep.TotalPJ,
		Cycles:     res.Stats.Cycles,
	}, nil
}

// measureOnce runs one attempt of the reference leg under the
// per-workload deadline, recovering a panicking leg into a typed fault
// so one broken workload cannot tear down the whole pool.
func measureOnce(ctx context.Context, cfg procgen.Config, tech rtlpower.Technology, w Workload, measure MeasureFunc, timeout time.Duration) (m Measurement, err error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = &iss.Fault{Kind: iss.FaultPanic, Prog: w.Name, PC: -1,
				Msg: fmt.Sprintf("measurement leg panicked: %v", r)}
		}
	}()
	return measure(ctx, cfg, tech, w)
}

// measureWithRetry drives one workload's attempts: transient faults
// (flaky oracle, per-workload deadline) are retried up to opts.Retries
// extra times, with exponential backoff between attempts; hard faults
// and parent cancellation stop immediately.
func measureWithRetry(ctx context.Context, cfg procgen.Config, tech rtlpower.Technology, w Workload, measure MeasureFunc, opts Options) (Measurement, int, error) {
	attempts := 0
	for attempt := 0; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return Measurement{}, attempts, &iss.Fault{
				Kind: iss.FaultCancelled, Prog: w.Name, PC: -1,
				Msg: "characterization cancelled", Err: cerr,
			}
		}
		attempts++
		m, err := measureOnce(ctx, cfg, tech, w, measure, opts.Timeout)
		if err == nil {
			if math.IsNaN(m.MeasuredPJ) || math.IsInf(m.MeasuredPJ, 0) {
				err = &iss.Fault{Kind: iss.FaultMeasurement, Prog: w.Name, PC: -1,
					Msg: fmt.Sprintf("reference energy is %v", m.MeasuredPJ)}
			} else {
				return m, attempts, nil
			}
		}
		f, ok := iss.AsFault(err)
		if !ok || !f.IsTransient() || attempt >= opts.Retries || ctx.Err() != nil {
			return Measurement{}, attempts, err
		}
		if cerr := sleepBackoff(ctx, retryDelay(opts.Backoff, w.Name, attempt)); cerr != nil {
			return Measurement{}, attempts, &iss.Fault{
				Kind: iss.FaultCancelled, Prog: w.Name, PC: -1,
				Msg: "characterization cancelled during retry backoff", Err: cerr,
			}
		}
	}
}

// defaultRetryBackoff is the base retry delay when Options.Backoff is 0.
const defaultRetryBackoff = 100 * time.Millisecond

// retryDelay computes the pause before retry number attempt+1 (attempt
// counts completed attempts, so the first retry sees attempt 0):
// exponential in the attempt, capped at 32x the base, with ±25% jitter
// derived deterministically from the workload name and attempt — no
// shared RNG, so concurrent legs stay race-free and runs reproducible,
// yet a pool of flaky legs never retries in lockstep.
func retryDelay(base time.Duration, name string, attempt int) time.Duration {
	if base < 0 {
		return 0
	}
	if base == 0 {
		base = defaultRetryBackoff
	}
	shift := attempt
	if shift > 5 {
		shift = 5
	}
	d := base << shift
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", name, attempt)
	frac := float64(h.Sum64()%1024) / 1024 // [0, 1)
	return time.Duration(float64(d) * (0.75 + 0.5*frac))
}

// sleepBackoff waits d, returning early with ctx.Err() on cancellation
// (a cancelled characterization must not sit out its backoff).
func sleepBackoff(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// staticCover marks the macro-model columns a workload can possibly
// drive among those decidable without running it: the custom-hardware
// category columns (from the extension's declared datapaths) and the
// register-file side-effect column. The instruction-level columns are
// dynamic and are handled by the zero-column exclusion instead.
func staticCover(w *Workload, cover *[NumVars]bool) {
	if w.Ext == nil {
		return
	}
	for _, in := range w.Ext.Instructions {
		if in.AccessesGeneralRegfile() {
			cover[VCustomSideEffect] = true
		}
		for _, el := range in.Datapath {
			cover[VCustomBase+int(el.Cat)] = true
		}
	}
}

// Characterize runs the full characterization flow (paper Fig. 2, steps
// 1-8): for every test program it generates the custom processor,
// streams instruction-set simulation directly into the RTL-level
// reference estimator (no trace is materialized), performs dynamic
// resource-usage analysis, and finally fits the 21 energy coefficients
// by regression.
//
// The test suite must exercise enough variable diversity for the system
// to be well-posed: at least NumVars programs, covering the base
// instruction classes, the non-ideal cases, and all ten custom-hardware
// categories. Columns that are identically zero across the suite (e.g.
// an unused hardware category) are excluded from the regression and
// their coefficients reported as zero.
//
// Fault tolerance: each workload leg runs under opts.Timeout with
// opts.Retries extra attempts for transient faults; a panicking leg is
// recovered into a typed fault. Under opts.Partial, failed workloads
// are dropped and recorded in the result's Failures, and fitting
// proceeds iff the surviving suite is still well-posed — at least
// NumVars observations remain, and no statically-covered custom column
// lost all of its covering workloads (the banded cover design of
// internal/workloads puts every category in three programs precisely so
// isolated failures cannot silence a column). Cancelling ctx aborts
// the pool and returns ctx.Err() directly.
func Characterize(ctx context.Context, cfg procgen.Config, tech rtlpower.Technology, programs []Workload, opts Options) (*CharacterizationResult, error) {
	if len(programs) == 0 {
		return nil, fmt.Errorf("core: no test programs")
	}
	measure := opts.Measure
	if measure == nil {
		measure = MeasureWorkload
	}

	// Each test program's leg — processor generation, streamed simulation
	// + reference power estimation, resource analysis — is independent of
	// the others, so the suite is measured with a worker pool. Within
	// each worker the ISS feeds the incremental estimator through a
	// bounded batch channel (rtlpower.RunStreamed via EstimateProgram):
	// no execution trace is ever materialized, so memory stays O(1) in
	// workload length and simulation overlaps with per-net estimation.
	// Results are deterministic regardless of scheduling: every program
	// gets its own simulator and stream estimator (with the technology's
	// fixed seed).
	obs := make([]Observation, len(programs))
	errs := make([]error, len(programs))
	attempts := make([]int, len(programs))
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i := range programs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			w := programs[i]
			m, n, err := measureWithRetry(ctx, cfg, tech, w, measure, opts)
			attempts[i] = n
			if err != nil {
				errs[i] = err
				return
			}
			obs[i] = Observation{
				Name:       w.Name,
				Vars:       m.Vars,
				OpcodeExec: m.OpcodeExec,
				MeasuredPJ: m.MeasuredPJ,
				Cycles:     m.Cycles,
			}
		}(i)
	}
	wg.Wait()
	// Parent cancellation dominates per-workload noise: every pending leg
	// failed with a cancelled fault, so report the context error itself.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var failures []Failure
	for i, err := range errs {
		if err != nil {
			failures = append(failures, Failure{Name: programs[i].Name, Attempts: attempts[i], Err: err})
		}
	}
	if len(failures) > 0 && !opts.Partial {
		// A failing suite reports every broken program, not just the
		// first: each per-workload error is named, and errors.Join skips
		// the programs that succeeded.
		return nil, errors.Join(errs...)
	}

	// Surviving observations, in suite order.
	surviving := obs[:0:0]
	for i := range obs {
		if errs[i] == nil {
			surviving = append(surviving, obs[i])
		}
	}
	if len(failures) > 0 {
		// Well-posedness of the reduced suite. Observation count first...
		if len(surviving) < NumVars {
			return nil, fmt.Errorf("core: partial characterization ill-posed: %d of %d workloads failed, %d survivors < %d variables: %w",
				len(failures), len(programs), len(surviving), NumVars, errors.Join(errs...))
		}
		// ...then column coverage: a custom column covered by the full
		// suite must still be covered by a survivor, else the fit would
		// silently zero a coefficient the caller expects to be trained.
		var full, surv [NumVars]bool
		for i := range programs {
			staticCover(&programs[i], &full)
			if errs[i] == nil {
				staticCover(&programs[i], &surv)
			}
		}
		for j := VCustomSideEffect; j < NumVars; j++ {
			if full[j] && !surv[j] {
				return nil, fmt.Errorf("core: partial characterization ill-posed: variable %s lost every covering workload: %w",
					VarName(j), errors.Join(errs...))
			}
		}
	}

	rows := make([][]float64, len(surviving))
	energies := make([]float64, len(surviving))
	for i := range surviving {
		rows[i] = surviving[i].Vars[:]
		energies[i] = surviving[i].MeasuredPJ
	}

	// Exclude identically-zero columns so QR stays full rank when a
	// category is unused by the suite.
	used := make([]int, 0, NumVars)
	for j := 0; j < NumVars; j++ {
		for _, r := range rows {
			if r[j] != 0 {
				used = append(used, j)
				break
			}
		}
	}
	if len(rows) < len(used) {
		return nil, fmt.Errorf("core: %d test programs cannot identify %d active variables; add programs", len(rows), len(used))
	}

	x := linalg.NewMatrix(len(rows), len(used))
	for i, r := range rows {
		for jj, j := range used {
			x.Set(i, jj, r[j])
		}
	}
	fit, err := regress.FitLinear(x, energies, opts.Regress)
	if err != nil {
		return nil, fmt.Errorf("core: regression failed: %w", err)
	}

	model := &MacroModel{Fit: fit}
	for jj, j := range used {
		model.Coef[j] = fit.Coef[jj]
		if fit.StdErr != nil {
			model.CoefStdErr[j] = fit.StdErr[jj]
		}
	}
	for i := range surviving {
		surviving[i].FittedPJ = model.EstimatePJ(surviving[i].Vars)
		if surviving[i].MeasuredPJ != 0 {
			surviving[i].RelErr = (surviving[i].MeasuredPJ - surviving[i].FittedPJ) / surviving[i].MeasuredPJ
		}
	}
	return &CharacterizationResult{
		Model:        model,
		Observations: surviving,
		Failures:     failures,
		Config:       cfg,
		Tech:         tech,
	}, nil
}

// FormatFailures renders the failure report of a degraded
// characterization, one line per dropped workload.
func FormatFailures(fails []Failure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d workload(s) failed characterization:\n", len(fails))
	for _, f := range fails {
		fmt.Fprintf(&b, "  %-12s %-15s attempts=%d  %v\n", f.Name, f.Kind(), f.Attempts, f.Err)
	}
	return b.String()
}
