package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"xtenergy/internal/isa"
	"xtenergy/internal/linalg"
	"xtenergy/internal/procgen"
	"xtenergy/internal/regress"
	"xtenergy/internal/rtlpower"
)

// Observation is one test program's characterization record.
type Observation struct {
	// Name is the test program name.
	Name string
	// Vars are its macro-model variable values.
	Vars Vars
	// OpcodeExec records per-opcode execution counts (used by the
	// per-opcode ablation, which demonstrates why the paper clusters
	// instructions into six classes).
	OpcodeExec [isa.NumOpcodes]uint64
	// MeasuredPJ is the reference (RTL-level) energy.
	MeasuredPJ float64
	// FittedPJ is the macro-model energy after fitting.
	FittedPJ float64
	// RelErr is (Measured-Fitted)/Measured.
	RelErr float64
	// Cycles is the simulated cycle count.
	Cycles uint64
}

// CharacterizationResult is the outcome of building a macro-model.
type CharacterizationResult struct {
	Model        *MacroModel
	Observations []Observation
	// Config and Tech record what was characterized.
	Config procgen.Config
	Tech   rtlpower.Technology
}

// Characterize runs the full characterization flow (paper Fig. 2, steps
// 1-8): for every test program it generates the custom processor,
// streams instruction-set simulation directly into the RTL-level
// reference estimator (no trace is materialized), performs dynamic
// resource-usage analysis, and finally fits the 21 energy coefficients
// by regression.
//
// The test suite must exercise enough variable diversity for the system
// to be well-posed: at least NumVars programs, covering the base
// instruction classes, the non-ideal cases, and all ten custom-hardware
// categories. Columns that are identically zero across the suite (e.g.
// an unused hardware category) are excluded from the regression and
// their coefficients reported as zero.
func Characterize(cfg procgen.Config, tech rtlpower.Technology, programs []Workload, opts regress.Options) (*CharacterizationResult, error) {
	if len(programs) == 0 {
		return nil, fmt.Errorf("core: no test programs")
	}

	// Each test program's leg — processor generation, streamed simulation
	// + reference power estimation, resource analysis — is independent of
	// the others, so the suite is measured with a worker pool. Within
	// each worker the ISS feeds the incremental estimator through a
	// bounded batch channel (rtlpower.RunStreamed via EstimateProgram):
	// no execution trace is ever materialized, so memory stays O(1) in
	// workload length and simulation overlaps with per-net estimation.
	// Results are deterministic regardless of scheduling: every program
	// gets its own simulator and stream estimator (with the technology's
	// fixed seed).
	obs := make([]Observation, len(programs))
	errs := make([]error, len(programs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range programs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			w := &programs[i]
			proc, prog, err := w.Build(cfg)
			if err != nil {
				errs[i] = err
				return
			}
			est, err := rtlpower.New(proc, tech)
			if err != nil {
				errs[i] = fmt.Errorf("core: workload %s: %w", w.Name, err)
				return
			}
			rep, res, err := est.EstimateProgram(prog)
			if err != nil {
				errs[i] = fmt.Errorf("core: workload %s: %w", w.Name, err)
				return
			}
			vars, err := Extract(proc.TIE, &res.Stats)
			if err != nil {
				errs[i] = fmt.Errorf("core: workload %s: %w", w.Name, err)
				return
			}
			obs[i] = Observation{
				Name:       w.Name,
				Vars:       vars,
				OpcodeExec: res.Stats.OpcodeExec,
				MeasuredPJ: rep.TotalPJ,
				Cycles:     res.Stats.Cycles,
			}
		}(i)
	}
	wg.Wait()
	// A failing suite reports every broken program, not just the first:
	// each per-workload error above is named, and errors.Join skips the
	// programs that succeeded.
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	rows := make([][]float64, len(programs))
	energies := make([]float64, len(programs))
	for i := range obs {
		rows[i] = obs[i].Vars[:]
		energies[i] = obs[i].MeasuredPJ
	}

	// Exclude identically-zero columns so QR stays full rank when a
	// category is unused by the suite.
	used := make([]int, 0, NumVars)
	for j := 0; j < NumVars; j++ {
		for _, r := range rows {
			if r[j] != 0 {
				used = append(used, j)
				break
			}
		}
	}
	if len(rows) < len(used) {
		return nil, fmt.Errorf("core: %d test programs cannot identify %d active variables; add programs", len(rows), len(used))
	}

	x := linalg.NewMatrix(len(rows), len(used))
	for i, r := range rows {
		for jj, j := range used {
			x.Set(i, jj, r[j])
		}
	}
	fit, err := regress.FitLinear(x, energies, opts)
	if err != nil {
		return nil, fmt.Errorf("core: regression failed: %w", err)
	}

	model := &MacroModel{Fit: fit}
	for jj, j := range used {
		model.Coef[j] = fit.Coef[jj]
		if fit.StdErr != nil {
			model.CoefStdErr[j] = fit.StdErr[jj]
		}
	}
	for i := range obs {
		obs[i].FittedPJ = model.EstimatePJ(obs[i].Vars)
		if obs[i].MeasuredPJ != 0 {
			obs[i].RelErr = (obs[i].MeasuredPJ - obs[i].FittedPJ) / obs[i].MeasuredPJ
		}
	}
	return &CharacterizationResult{
		Model:        model,
		Observations: obs,
		Config:       cfg,
		Tech:         tech,
	}, nil
}
