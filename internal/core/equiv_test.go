package core_test

// Differential equivalence suite for the predecoded-plan refactor: every
// built-in workload is executed through the streamed reference pipeline
// and its full observable behavior — the exact TraceEntry stream, the
// complete Stats, the final register file, and the streamed reference
// energy — is reduced to digests and compared against goldens recorded
// from the pre-plan decode path. Bit-identical digests prove the
// table-driven plan execution retires the same instructions with the
// same cycles, events, and operand values as the original nested-switch
// decoder, and that the estimator prices them identically.
//
// Regenerate the goldens (only when an intentional behavior change is
// made) with:
//
//	go test ./internal/core -run TestPlanEquivalence -update-equiv
//
// In -short mode (the tier-1 verify smoke) a fixed subset of workloads
// runs; the full registry runs otherwise.

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"testing"

	"xtenergy/internal/core"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/workloads"
)

var updateEquiv = flag.Bool("update-equiv", false, "rewrite the plan-equivalence goldens")

const equivGoldenPath = "testdata/equiv_goldens.json"

// equivGolden is one workload's recorded behavior digest.
type equivGolden struct {
	Name       string `json:"name"`
	Retired    uint64 `json:"retired"`
	Cycles     uint64 `json:"cycles"`
	Interlocks uint64 `json:"interlocks"`
	TraceFNV   string `json:"trace_fnv"`
	StatsFNV   string `json:"stats_fnv"`
	RegsFNV    string `json:"regs_fnv"`
	// EnergyBits is math.Float64bits of the streamed reference TotalPJ,
	// in hex: float equality must be exact, not approximate.
	EnergyBits string `json:"energy_bits"`
}

// hashingConsumer digests the trace stream while forwarding it to the
// real stream estimator, so one run yields both the trace digest and the
// reference energy.
type hashingConsumer struct {
	h  hash.Hash64
	st *rtlpower.StreamEstimator
}

func (c *hashingConsumer) Consume(batch []iss.TraceEntry) error {
	var buf [45]byte
	for i := range batch {
		te := &batch[i]
		binary.LittleEndian.PutUint32(buf[0:], uint32(te.PC))
		buf[4] = uint8(te.Instr.Op)
		buf[5], buf[6], buf[7] = te.Instr.Rd, te.Instr.Rs, te.Instr.Rt
		binary.LittleEndian.PutUint32(buf[8:], uint32(te.Instr.Imm))
		buf[12] = te.Instr.CustomID
		binary.LittleEndian.PutUint32(buf[13:], te.Cycles)
		var flags byte
		for bit, b := range []bool{te.ICMiss, te.DCMiss, te.Uncached, te.Interlock, te.Taken} {
			if b {
				flags |= 1 << bit
			}
		}
		buf[17] = flags
		binary.LittleEndian.PutUint32(buf[18:], te.RsVal)
		binary.LittleEndian.PutUint32(buf[22:], te.RtVal)
		binary.LittleEndian.PutUint32(buf[26:], te.Result)
		binary.LittleEndian.PutUint32(buf[30:], te.Addr)
		c.h.Write(buf[:34])
	}
	return c.st.Consume(batch)
}

// measureEquiv runs one workload through the streamed pipeline and
// digests everything observable about the run.
func measureEquiv(t *testing.T, w core.Workload) equivGolden {
	t.Helper()
	cfg := procgen.Default()
	proc, prog, err := w.Build(cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	est, err := rtlpower.New(proc, rtlpower.FastTechnology())
	if err != nil {
		t.Fatalf("estimator: %v", err)
	}
	hc := &hashingConsumer{h: fnv.New64a(), st: est.Stream()}
	res, err := rtlpower.RunStreamed(t.Context(), iss.New(proc), prog, iss.Options{}, hc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rep, err := hc.st.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}

	sh := fnv.New64a()
	fmt.Fprintf(sh, "%+v", res.Stats)
	rh := fnv.New64a()
	for _, r := range res.Regs {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], r)
		rh.Write(b[:])
	}
	return equivGolden{
		Name:       w.Name,
		Retired:    res.Stats.Retired,
		Cycles:     res.Stats.Cycles,
		Interlocks: res.Stats.Interlocks,
		TraceFNV:   fmt.Sprintf("%#016x", hc.h.Sum64()),
		StatsFNV:   fmt.Sprintf("%#016x", sh.Sum64()),
		RegsFNV:    fmt.Sprintf("%#016x", rh.Sum64()),
		EnergyBits: fmt.Sprintf("%#016x", math.Float64bits(rep.TotalPJ)),
	}
}

// equivWorkloads returns the registry under test: the full corpus, or a
// fixed cross-section in -short mode (one representative of each family:
// stress kernels, custom-instruction programs, applications, validation
// apps, and the Reed-Solomon sweep).
func equivWorkloads(t *testing.T) []core.Workload {
	all := workloads.All()
	if !testing.Short() {
		return all
	}
	want := map[string]bool{
		"tp01_alu_mix": true, "tp11_interlock": true, "tp14_uncached": true,
		"tp24_cover_table": true, "tp40_mixed_custom": true,
		"gcd": true, "des": true, "crc32": true, "rs_base": true, "rs_gffold": true,
	}
	var out []core.Workload
	for _, w := range all {
		if want[w.Name] {
			out = append(out, w)
		}
	}
	if len(out) != len(want) {
		t.Fatalf("short subset resolved %d of %d workloads; registry names changed?", len(out), len(want))
	}
	return out
}

// TestPlanEquivalence holds the plan-path execution to the recorded
// behavior of the original per-step decode path, over the whole workload
// registry: traces, stats, final registers, and streamed reference
// energies must be bit-identical.
func TestPlanEquivalence(t *testing.T) {
	ws := equivWorkloads(t)

	if *updateEquiv {
		if testing.Short() {
			t.Fatal("-update-equiv needs the full registry; drop -short")
		}
		goldens := make(map[string]equivGolden, len(ws))
		for _, w := range ws {
			goldens[w.Name] = measureEquiv(t, w)
		}
		blob, err := json.MarshalIndent(goldens, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(equivGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(equivGoldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %d goldens to %s", len(goldens), equivGoldenPath)
		return
	}

	blob, err := os.ReadFile(equivGoldenPath)
	if err != nil {
		t.Fatalf("read goldens (regenerate with -update-equiv): %v", err)
	}
	var goldens map[string]equivGolden
	if err := json.Unmarshal(blob, &goldens); err != nil {
		t.Fatal(err)
	}

	for _, w := range ws {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			want, ok := goldens[w.Name]
			if !ok {
				t.Fatalf("no golden for %q; regenerate with -update-equiv", w.Name)
			}
			got := measureEquiv(t, w)
			if got != want {
				t.Errorf("behavior diverged from recorded decode path:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}
