// Package core implements the paper's primary contribution: a hybrid
// instruction-level + structural energy macro-model for extensible
// processors, built by in-situ regression characterization and applied
// through fast instruction-set simulation.
//
// The macro-model template (paper Eq. 2-4) is linear in 21 variables:
//
//	E = Σ c_i · N_i
//
// with eleven instruction-level variables — cycles of the six base
// instruction classes (arith, load, store, jump, branch-taken,
// branch-untaken), four non-ideal-case counts (I-cache misses, D-cache
// misses, uncached instruction fetches, processor interlocks), and the
// custom-instruction register-file side-effect cycles — and ten
// structural variables, the complexity-weighted active-cycle counts of
// the custom-hardware library categories.
//
// Characterize fits the coefficients against the slow RTL-level
// reference estimator over a suite of test programs; the resulting
// MacroModel estimates any application — with any custom instructions —
// from ISS statistics alone, with no synthesis or RTL simulation.
package core

import (
	"fmt"

	"xtenergy/internal/hwlib"
	"xtenergy/internal/iss"
	"xtenergy/internal/regress"
	"xtenergy/internal/resource"
	"xtenergy/internal/tie"
)

// Macro-model variable indices (paper Table I order).
const (
	VArith = iota
	VLoad
	VStore
	VJump
	VBranchTaken
	VBranchUntaken
	VICacheMiss
	VDCacheMiss
	VUncachedFetch
	VInterlock
	VCustomSideEffect
	// VCustomBase is the first structural variable; the ten hwlib
	// categories follow in order.
	VCustomBase

	// NumVars is the total number of macro-model variables (21).
	NumVars = VCustomBase + hwlib.NumCategories
)

var instVarNames = [VCustomBase]string{
	"arith", "load", "store", "jump", "branch-taken", "branch-untaken",
	"icache-miss", "dcache-miss", "uncached-fetch", "interlock",
	"custom-side-effect",
}

// VarName returns the display name of macro-model variable i.
func VarName(i int) string {
	switch {
	case i >= 0 && i < VCustomBase:
		return instVarNames[i]
	case i >= VCustomBase && i < NumVars:
		return "hw:" + hwlib.Category(i-VCustomBase).String()
	}
	return fmt.Sprintf("var(%d)", i)
}

// VarNames returns all 21 variable names in order.
func VarNames() []string {
	out := make([]string, NumVars)
	for i := range out {
		out[i] = VarName(i)
	}
	return out
}

// Vars is one observation of the 21 macro-model variables.
type Vars [NumVars]float64

// Extract computes the macro-model variable vector of one program run
// from its ISS statistics and the processor's compiled TIE extension
// (steps 9-10 of the paper's flow: instruction-set simulation followed
// by dynamic resource-usage analysis).
func Extract(comp *tie.Compiled, st *iss.Stats) (Vars, error) {
	var v Vars
	v[VArith] = float64(st.ClassCycles[iss.CArith])
	v[VLoad] = float64(st.ClassCycles[iss.CLoad])
	v[VStore] = float64(st.ClassCycles[iss.CStore])
	v[VJump] = float64(st.ClassCycles[iss.CJump])
	v[VBranchTaken] = float64(st.ClassCycles[iss.CBranchTaken])
	v[VBranchUntaken] = float64(st.ClassCycles[iss.CBranchUntaken])
	v[VICacheMiss] = float64(st.ICacheMisses)
	v[VDCacheMiss] = float64(st.DCacheMisses)
	v[VUncachedFetch] = float64(st.UncachedFetches)
	v[VInterlock] = float64(st.Interlocks)
	v[VCustomSideEffect] = float64(st.CustomRegfileCycles)

	sv, err := resource.FromStats(comp, st)
	if err != nil {
		return v, err
	}
	for k := 0; k < hwlib.NumCategories; k++ {
		v[VCustomBase+k] = sv[k]
	}
	return v, nil
}

// MacroModel is a characterized energy macro-model for one extensible
// processor family (base configuration + technology): the fitted energy
// coefficients plus the training diagnostics.
type MacroModel struct {
	// Coef holds the 21 energy coefficients in pJ per unit of each
	// variable (per cycle, per miss, per fetch, per interlock, or per
	// complexity-weighted active cycle).
	Coef Vars
	// CoefStdErr holds the OLS standard error of each coefficient
	// (zero for variables excluded from the fit, or when the fitting
	// variant does not define standard errors).
	CoefStdErr Vars
	// Fit holds the regression diagnostics from characterization.
	Fit *regress.Fit
}

// EstimatePJ evaluates the macro-model on a variable vector, returning
// energy in picojoules.
func (m *MacroModel) EstimatePJ(v Vars) float64 {
	var e float64
	for i, c := range m.Coef {
		e += c * v[i]
	}
	return e
}

// CoefByName returns the coefficient of the named variable.
func (m *MacroModel) CoefByName(name string) (float64, error) {
	for i := 0; i < NumVars; i++ {
		if VarName(i) == name {
			return m.Coef[i], nil
		}
	}
	return 0, fmt.Errorf("core: unknown macro-model variable %q", name)
}
