package core

import (
	"fmt"

	"xtenergy/internal/asm"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/tie"
)

// Workload is one program to characterize or estimate: XT32 assembly
// source plus (optionally) the TIE extension whose custom instructions
// it uses. Each workload can carry a different extension — the paper's
// characterization generates a custom processor per test program, and
// the fitted macro-model then applies to *any* extension.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// Source is the XT32 assembly text.
	Source string
	// Ext is the TIE extension the program's custom mnemonics come from;
	// nil for base-only programs.
	Ext *tie.Extension
	// LintExempt lists xlint finding codes this workload is allowed to
	// trigger, declared where the workload is defined so the exemption
	// travels with it. Stress kernels use it for the dataflow checks
	// their toggling patterns intentionally violate; structural checks
	// can't be exempted this way unless a test opts in.
	LintExempt []string
}

// Build generates the workload's processor instance under cfg and
// assembles its program (the per-test-program "processor generator" leg
// of the characterization flow).
func (w *Workload) Build(cfg procgen.Config) (*procgen.Processor, *iss.Program, error) {
	proc, err := procgen.Generate(cfg, w.Ext)
	if err != nil {
		return nil, nil, fmt.Errorf("core: workload %s: %w", w.Name, err)
	}
	prog, err := asm.New(proc.TIE).Assemble(w.Name, w.Source)
	if err != nil {
		return nil, nil, fmt.Errorf("core: workload %s: %w", w.Name, err)
	}
	return proc, prog, nil
}

// Simulate builds and runs the workload on the ISS, returning the
// processor, the run result, and the extracted macro-model variables.
func (w *Workload) Simulate(cfg procgen.Config, collectTrace bool) (*procgen.Processor, *iss.Result, Vars, error) {
	proc, prog, err := w.Build(cfg)
	if err != nil {
		return nil, nil, Vars{}, err
	}
	res, err := iss.New(proc).Run(prog, iss.Options{CollectTrace: collectTrace})
	if err != nil {
		return nil, nil, Vars{}, fmt.Errorf("core: workload %s: %w", w.Name, err)
	}
	vars, err := Extract(proc.TIE, &res.Stats)
	if err != nil {
		return nil, nil, Vars{}, fmt.Errorf("core: workload %s: %w", w.Name, err)
	}
	return proc, res, vars, nil
}
