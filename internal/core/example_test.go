package core_test

import (
	"fmt"

	"xtenergy/internal/core"
)

// A macro-model is a plain dot product over the 21 variables, so
// estimates are trivially fast once characterized.
func ExampleMacroModel_EstimatePJ() {
	var m core.MacroModel
	m.Coef[core.VArith] = 400 // pJ per arithmetic cycle
	m.Coef[core.VLoad] = 500  // pJ per load cycle
	m.Coef[core.VICacheMiss] = 3000

	var v core.Vars
	v[core.VArith] = 1000
	v[core.VLoad] = 200
	v[core.VICacheMiss] = 4
	fmt.Printf("%.1f uJ\n", m.EstimatePJ(v)*1e-6)
	// Output:
	// 0.5 uJ
}
