// Package hwlib defines the custom-hardware component library from which
// TIE custom-instruction datapaths are built.
//
// The paper (Section IV-B.1) classifies the library's primitives into ten
// categories: (1) multiplier, (2) adder/subtractor/comparator, (3)
// bit-wise logic, reduction logic and multiplexers, (4) shifter, (5)
// custom registers, plus the specialized TIE modules (6) TIE mult,
// (7) TIE mac, (8) TIE add, (9) TIE csa, and (10) table. Each structural
// macro-model variable is the active-cycle count of one category,
// weighted by a bit-width complexity function f(C): linear in width for
// most components and quadratic for multipliers.
package hwlib

import "fmt"

// Category identifies one of the paper's ten custom-hardware component
// categories.
type Category uint8

// The ten component categories (paper Table I, bottom half).
const (
	Multiplier     Category = iota // array multiplier: quadratic in width
	AddSubCmp                      // adder, subtractor, comparator
	LogicRedMux                    // bit-wise logic, reduction logic, multiplexer
	Shifter                        // barrel shifter
	CustomRegister                 // TIE state register / custom register file
	TIEMult                        // specialized TIE multiplier module
	TIEMac                         // specialized TIE multiply-accumulate module
	TIEAdd                         // specialized TIE adder module
	TIECsa                         // specialized TIE carry-save adder module
	Table                          // lookup table (ROM)

	NumCategories = 10
)

// refWidth is the reference bit-width at which a component's complexity
// f(C) equals 1, so that Table I's "unit" energies are per active cycle of
// a 32-bit-normalized instance.
const refWidth = 32

// refTableEntries is the reference entry count for Table components.
const refTableEntries = 16

var categoryNames = [NumCategories]string{
	"mult", "add/sub/cmp", "logic/red/mux", "shifter", "custom-reg",
	"tie-mult", "tie-mac", "tie-add", "tie-csa", "table",
}

// String returns the category's display name.
func (c Category) String() string {
	if int(c) >= NumCategories {
		return fmt.Sprintf("category(%d)", int(c))
	}
	return categoryNames[c]
}

// Quadratic reports whether the category's energy grows quadratically
// with bit-width (multiplier-like structures; paper Section IV-B.1).
func (c Category) Quadratic() bool {
	switch c {
	case Multiplier, TIEMult, TIEMac:
		return true
	}
	return false
}

// Categories returns all ten categories in Table I order.
func Categories() []Category {
	out := make([]Category, NumCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// Component is one hardware instance inside a custom-instruction datapath.
type Component struct {
	// Name is the instance name, unique within a datapath (e.g. "gfmul0").
	Name string
	// Cat is the library category.
	Cat Category
	// Width is the bit-width of the datapath through the component
	// (for Table, the bit-width of one entry).
	Width int
	// Entries is the number of table entries; only meaningful (and
	// required) for Cat == Table.
	Entries int
}

// Validate checks the component description.
func (c Component) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("hwlib: component with empty name")
	}
	if int(c.Cat) >= NumCategories {
		return fmt.Errorf("hwlib: component %q has invalid category %d", c.Name, c.Cat)
	}
	if c.Width <= 0 || c.Width > 128 {
		return fmt.Errorf("hwlib: component %q has width %d, want 1..128", c.Name, c.Width)
	}
	if c.Cat == Table {
		if c.Entries <= 0 || c.Entries > 65536 {
			return fmt.Errorf("hwlib: table %q has %d entries, want 1..65536", c.Name, c.Entries)
		}
	} else if c.Entries != 0 {
		return fmt.Errorf("hwlib: non-table component %q has entries=%d", c.Name, c.Entries)
	}
	return nil
}

// Complexity returns f(C): the bit-width (and, for tables, entry-count)
// dependence of the component's per-cycle energy, normalized so that a
// 32-bit instance (16-entry x 32-bit for tables) has complexity 1.
// Linear categories scale as width/32; multiplier-like categories as
// (width/32)^2; tables as (entries*width)/(16*32).
func (c Component) Complexity() float64 {
	w := float64(c.Width) / refWidth
	switch {
	case c.Cat == Table:
		return float64(c.Entries) * float64(c.Width) / (refTableEntries * refWidth)
	case c.Cat.Quadratic():
		return w * w
	default:
		return w
	}
}

// ParseCategory maps a spec string to a category. Accepted names are the
// display names plus common aliases ("mul", "adder", "mux", "reg", "mac",
// "csa", "rom").
func ParseCategory(s string) (Category, error) {
	switch s {
	case "mult", "mul", "multiplier":
		return Multiplier, nil
	case "add/sub/cmp", "add", "adder", "sub", "cmp", "comparator":
		return AddSubCmp, nil
	case "logic/red/mux", "logic", "mux", "reduction":
		return LogicRedMux, nil
	case "shifter", "shift":
		return Shifter, nil
	case "custom-reg", "reg", "register", "customreg":
		return CustomRegister, nil
	case "tie-mult", "tiemult":
		return TIEMult, nil
	case "tie-mac", "tiemac", "mac":
		return TIEMac, nil
	case "tie-add", "tieadd":
		return TIEAdd, nil
	case "tie-csa", "tiecsa", "csa":
		return TIECsa, nil
	case "table", "rom", "lut":
		return Table, nil
	}
	return 0, fmt.Errorf("hwlib: unknown component category %q", s)
}
