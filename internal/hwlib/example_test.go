package hwlib_test

import (
	"fmt"

	"xtenergy/internal/hwlib"
)

// Complexity normalizes each component to a 32-bit reference instance:
// linear categories scale with width, multiplier-like categories
// quadratically, tables with entries x width.
func ExampleComponent_Complexity() {
	adder := hwlib.Component{Name: "add", Cat: hwlib.AddSubCmp, Width: 64}
	mult := hwlib.Component{Name: "mul", Cat: hwlib.Multiplier, Width: 64}
	table := hwlib.Component{Name: "rom", Cat: hwlib.Table, Width: 8, Entries: 512}
	fmt.Printf("64-bit adder      f = %.2f\n", adder.Complexity())
	fmt.Printf("64-bit multiplier f = %.2f\n", mult.Complexity())
	fmt.Printf("512x8 table       f = %.2f\n", table.Complexity())
	// Output:
	// 64-bit adder      f = 2.00
	// 64-bit multiplier f = 4.00
	// 512x8 table       f = 8.00
}
