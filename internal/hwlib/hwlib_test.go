package hwlib

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCategoriesComplete(t *testing.T) {
	cats := Categories()
	if len(cats) != NumCategories || NumCategories != 10 {
		t.Fatalf("got %d categories, want the paper's 10", len(cats))
	}
	seen := map[string]bool{}
	for _, c := range cats {
		name := c.String()
		if seen[name] {
			t.Fatalf("duplicate category name %q", name)
		}
		seen[name] = true
	}
}

func TestCategoryNames(t *testing.T) {
	want := map[Category]string{
		Multiplier:     "mult",
		AddSubCmp:      "add/sub/cmp",
		LogicRedMux:    "logic/red/mux",
		Shifter:        "shifter",
		CustomRegister: "custom-reg",
		TIEMult:        "tie-mult",
		TIEMac:         "tie-mac",
		TIEAdd:         "tie-add",
		TIECsa:         "tie-csa",
		Table:          "table",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestQuadraticCategories(t *testing.T) {
	// The paper: multiplier-like structures scale quadratically with
	// bit-width, the rest linearly.
	for _, c := range Categories() {
		want := c == Multiplier || c == TIEMult || c == TIEMac
		if c.Quadratic() != want {
			t.Fatalf("%s.Quadratic() = %v, want %v", c, c.Quadratic(), want)
		}
	}
}

func TestComplexityReference(t *testing.T) {
	// A 32-bit instance (16x32 table) has complexity exactly 1.
	for _, c := range Categories() {
		comp := Component{Name: "x", Cat: c, Width: 32}
		if c == Table {
			comp.Entries = 16
		}
		if got := comp.Complexity(); math.Abs(got-1) > 1e-12 {
			t.Fatalf("%s reference complexity = %g, want 1", c, got)
		}
	}
}

func TestComplexityScaling(t *testing.T) {
	lin := Component{Name: "a", Cat: AddSubCmp, Width: 64}
	if lin.Complexity() != 2 {
		t.Fatalf("64-bit adder complexity = %g, want 2 (linear)", lin.Complexity())
	}
	quad := Component{Name: "m", Cat: Multiplier, Width: 64}
	if quad.Complexity() != 4 {
		t.Fatalf("64-bit multiplier complexity = %g, want 4 (quadratic)", quad.Complexity())
	}
	tab := Component{Name: "t", Cat: Table, Width: 8, Entries: 512}
	want := 512.0 * 8 / (16 * 32)
	if tab.Complexity() != want {
		t.Fatalf("table complexity = %g, want %g", tab.Complexity(), want)
	}
}

func TestValidate(t *testing.T) {
	good := []Component{
		{Name: "m", Cat: Multiplier, Width: 16},
		{Name: "t", Cat: Table, Width: 8, Entries: 256},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Fatalf("valid component rejected: %v", err)
		}
	}
	bad := []Component{
		{Name: "", Cat: Multiplier, Width: 16},
		{Name: "x", Cat: Category(200), Width: 16},
		{Name: "x", Cat: Multiplier, Width: 0},
		{Name: "x", Cat: Multiplier, Width: 1000},
		{Name: "x", Cat: Table, Width: 8},                   // table without entries
		{Name: "x", Cat: Table, Width: 8, Entries: 1 << 20}, // too many entries
		{Name: "x", Cat: AddSubCmp, Width: 8, Entries: 4},   // entries on non-table
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad component %d accepted: %+v", i, c)
		}
	}
}

func TestParseCategory(t *testing.T) {
	cases := map[string]Category{
		"mult": Multiplier, "mul": Multiplier,
		"adder": AddSubCmp, "cmp": AddSubCmp,
		"mux": LogicRedMux, "logic": LogicRedMux,
		"shifter": Shifter,
		"reg":     CustomRegister,
		"tiemult": TIEMult,
		"mac":     TIEMac,
		"tieadd":  TIEAdd,
		"csa":     TIECsa,
		"rom":     Table, "table": Table,
	}
	for s, want := range cases {
		got, err := ParseCategory(s)
		if err != nil || got != want {
			t.Fatalf("ParseCategory(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseCategory("flux-capacitor"); err == nil {
		t.Fatal("unknown category parsed")
	}
}

// Property: complexity is positive and monotonically non-decreasing in
// width for every category.
func TestComplexityMonotoneProperty(t *testing.T) {
	f := func(catRaw, w1Raw, w2Raw uint8) bool {
		cat := Category(int(catRaw) % NumCategories)
		w1 := 1 + int(w1Raw)%128
		w2 := 1 + int(w2Raw)%128
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		entries := 0
		if cat == Table {
			entries = 64
		}
		c1 := Component{Name: "a", Cat: cat, Width: w1, Entries: entries}
		c2 := Component{Name: "b", Cat: cat, Width: w2, Entries: entries}
		return c1.Complexity() > 0 && c1.Complexity() <= c2.Complexity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
