package linalg

import (
	"errors"
	"fmt"
	"math"
)

// QR holds a Householder QR factorization of an m x n matrix with m >= n:
// A = Q * R, where Q is m x m orthogonal and R is m x n upper triangular.
// The factors are stored compactly: the upper triangle of qr holds R and
// the lower triangle (plus tau) holds the Householder reflectors.
type QR struct {
	qr   *Matrix   // packed factors
	tau  []float64 // scalar factors of the reflectors
	perm []int     // column permutation (identity when no pivoting)
}

// ErrRankDeficient reports that the coefficient matrix does not have full
// column rank at working precision.
var ErrRankDeficient = errors.New("linalg: matrix is rank deficient")

// FactorQR computes the Householder QR factorization of a.
// a must have at least as many rows as columns.
func FactorQR(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	tau := make([]float64, n)
	perm := make([]int, n)
	for j := range perm {
		perm[j] = j
	}
	for k := 0; k < n; k++ {
		// Build the Householder reflector for column k.
		col := make([]float64, m-k)
		for i := k; i < m; i++ {
			col[i-k] = qr.At(i, k)
		}
		alpha := Norm2(col)
		if alpha == 0 {
			tau[k] = 0
			continue
		}
		if qr.At(k, k) > 0 {
			alpha = -alpha
		}
		// v = x - alpha*e1, normalized so v[0] = 1.
		v0 := qr.At(k, k) - alpha
		tau[k] = -v0 / alpha
		qr.Set(k, k, alpha)
		for i := k + 1; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/v0)
		}
		// Apply the reflector to the trailing columns.
		for j := k + 1; j < n; j++ {
			s := qr.At(k, j)
			for i := k + 1; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s *= tau[k]
			qr.Set(k, j, qr.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)-s*qr.At(i, k))
			}
		}
	}
	return &QR{qr: qr, tau: tau, perm: perm}, nil
}

// applyQT overwrites b (length m) with Qᵀ·b.
func (f *QR) applyQT(b []float64) {
	m, n := f.qr.Rows(), f.qr.Cols()
	for k := 0; k < n; k++ {
		if f.tau[k] == 0 {
			continue
		}
		s := b[k]
		for i := k + 1; i < m; i++ {
			s += f.qr.At(i, k) * b[i]
		}
		s *= f.tau[k]
		b[k] -= s
		for i := k + 1; i < m; i++ {
			b[i] -= s * f.qr.At(i, k)
		}
	}
}

// Solve returns the least-squares solution x minimizing ||A·x - b||₂.
// b must have length equal to the number of rows of A.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows(), f.qr.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: Solve rhs length %d, want %d", len(b), m)
	}
	work := make([]float64, m)
	copy(work, b)
	f.applyQT(work)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		rii := f.qr.At(i, i)
		if math.Abs(rii) < rankTol(f.qr) {
			return nil, ErrRankDeficient
		}
		s := work[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / rii
	}
	return x, nil
}

// Rank estimates the numerical rank of A from the diagonal of R.
func (f *QR) Rank() int {
	n := f.qr.Cols()
	tol := rankTol(f.qr)
	rank := 0
	for i := 0; i < n; i++ {
		if math.Abs(f.qr.At(i, i)) >= tol {
			rank++
		}
	}
	return rank
}

// ConditionEstimate returns |r_max|/|r_min| over the diagonal of R, a cheap
// lower bound on the 2-norm condition number of A. It returns +Inf for a
// numerically rank-deficient factorization.
func (f *QR) ConditionEstimate() float64 {
	n := f.qr.Cols()
	mx, mn := 0.0, math.Inf(1)
	for i := 0; i < n; i++ {
		a := math.Abs(f.qr.At(i, i))
		if a > mx {
			mx = a
		}
		if a < mn {
			mn = a
		}
	}
	if mn == 0 {
		return math.Inf(1)
	}
	return mx / mn
}

func rankTol(qr *Matrix) float64 {
	// Standard heuristic: eps * max(m,n) * max|R_ii|.
	n := qr.Cols()
	var mx float64
	for i := 0; i < n; i++ {
		if a := math.Abs(qr.At(i, i)); a > mx {
			mx = a
		}
	}
	dim := qr.Rows()
	if n > dim {
		dim = n
	}
	return 2.220446049250313e-16 * float64(dim) * mx
}

// LeastSquares solves min ||A·x - b||₂ by Householder QR.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// PseudoInverse returns the Moore-Penrose pseudo-inverse A⁺ of a full
// column rank matrix A with rows >= cols, computed column-by-column from
// the QR factorization (A⁺ = R⁻¹ Qᵀ). This is the "pseudo-inverse method"
// the paper uses to fit the energy macro-model.
func PseudoInverse(a *Matrix) (*Matrix, error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, err
	}
	m, n := a.Rows(), a.Cols()
	pinv := NewMatrix(n, m)
	e := make([]float64, m)
	for j := 0; j < m; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		x, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			pinv.Set(i, j, x[i])
		}
	}
	return pinv, nil
}

// SolveRidge returns the Tikhonov-regularized solution
// x = (AᵀA + λI)⁻¹ Aᵀ b, computed by QR on the augmented system
// [A; sqrt(λ)·I]. λ must be non-negative.
func SolveRidge(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("linalg: negative ridge parameter %g", lambda)
	}
	if lambda == 0 {
		return LeastSquares(a, b)
	}
	m, n := a.Rows(), a.Cols()
	aug := NewMatrix(m+n, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			aug.Set(i, j, a.At(i, j))
		}
	}
	sq := math.Sqrt(lambda)
	for j := 0; j < n; j++ {
		aug.Set(m+j, j, sq)
	}
	rhs := make([]float64, m+n)
	copy(rhs, b)
	return LeastSquares(aug, rhs)
}

// GramInverseDiag returns the diagonal of (AᵀA)⁻¹ for the factored
// matrix, computed as the squared row norms of R⁻¹. This is the
// ingredient of regression coefficient standard errors. It fails for
// rank-deficient factorizations.
func (f *QR) GramInverseDiag() ([]float64, error) {
	n := f.qr.Cols()
	tol := rankTol(f.qr)
	// Invert the upper-triangular R by back substitution, one unit
	// vector at a time; rInv is upper triangular as well.
	rInv := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := j; i >= 0; i-- {
			rii := f.qr.At(i, i)
			if math.Abs(rii) < tol {
				return nil, ErrRankDeficient
			}
			var s float64
			if i == j {
				s = 1
			}
			for k := i + 1; k <= j; k++ {
				s -= f.qr.At(i, k) * rInv.At(k, j)
			}
			rInv.Set(i, j, s/rii)
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := i; j < n; j++ {
			v := rInv.At(i, j)
			s += v * v
		}
		out[i] = s
	}
	return out, nil
}
