package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %g, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewMatrixPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {2, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMatrix(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewMatrix(dims[0], dims[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("unexpected contents: %v", m)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty rows accepted")
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(1, 0, 42)
	if m.At(1, 0) != 42 {
		t.Fatalf("At after Set = %g", m.At(1, 0))
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	m.At(2, 0)
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("product (%d,%d) = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("mismatched product accepted")
	}
}

func TestMulIdentity(t *testing.T) {
	a, _ := FromRows([][]float64{{2, -1, 0.5}, {3, 7, -2}, {0, 1, 4}})
	id := Identity(3)
	left, _ := id.Mul(a)
	right, _ := a.Mul(id)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if left.At(i, j) != a.At(i, j) || right.At(i, j) != a.At(i, j) {
				t.Fatalf("identity product differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v, err := a.MulVec([]float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != -2 || v[1] != -2 {
		t.Fatalf("MulVec = %v", v)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("bad vector length accepted")
	}
}

func TestAddSubScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{4, 3}, {2, 1}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := sum.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if diff.At(i, j) != a.At(i, j) {
				t.Fatal("a+b-b != a")
			}
			if sum.At(i, j) != 5 {
				t.Fatalf("sum(%d,%d) = %g, want 5", i, j, sum.At(i, j))
			}
		}
	}
	sc := a.Scale(2)
	if sc.At(1, 1) != 8 {
		t.Fatalf("scale = %g", sc.At(1, 1))
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestRowColCopies(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	r := a.Row(1)
	r[0] = 99
	if a.At(1, 0) != 3 {
		t.Fatal("Row returned a view, want a copy")
	}
	c := a.Col(0)
	c[1] = 99
	if a.At(1, 0) != 3 {
		t.Fatal("Col returned a view, want a copy")
	}
}

func TestColVector(t *testing.T) {
	v := NewVector([]float64{1, 2, 3})
	got := v.ColVector()
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("ColVector = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ColVector on wide matrix did not panic")
		}
	}()
	NewMatrix(2, 2).ColVector()
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEqual(got, 5, 1e-14) {
		t.Fatalf("Norm2(3,4) = %g", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %g", got)
	}
	// Large entries must not overflow.
	big := 1e300
	if got := Norm2([]float64{big, big}); math.IsInf(got, 0) {
		t.Fatal("Norm2 overflowed")
	}
}

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
}

func TestFrobeniusAndMaxAbs(t *testing.T) {
	a, _ := FromRows([][]float64{{3, 0}, {0, -4}})
	if !almostEqual(a.FrobeniusNorm(), 5, 1e-14) {
		t.Fatalf("frobenius = %g", a.FrobeniusNorm())
	}
	if a.MaxAbs() != 4 {
		t.Fatalf("maxabs = %g", a.MaxAbs())
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random small matrices.
func TestTransposeProductProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := seededRand(seed)
		a := randomMatrix(r, 4, 3)
		b := randomMatrix(r, 3, 5)
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		lhs := ab.T()
		rhs, err := b.T().Mul(a.T())
		if err != nil {
			return false
		}
		diff, err := lhs.Sub(rhs)
		if err != nil {
			return false
		}
		return diff.MaxAbs() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Norm2(v)² ≈ Dot(v, v).
func TestNorm2DotProperty(t *testing.T) {
	f := func(vals []float64) bool {
		// Filter non-finite and huge inputs.
		v := make([]float64, 0, len(vals))
		for _, x := range vals {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue
			}
			v = append(v, x)
		}
		n := Norm2(v)
		return almostEqual(n*n, Dot(v, v), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- shared helpers for the package tests ---

type xorshift struct{ s uint64 }

func seededRand(seed int64) *xorshift {
	return &xorshift{s: uint64(seed)*2862933555777941757 + 3037000493}
}

func (x *xorshift) float() float64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return float64(int64(x.s%2000001)-1000000) / 1000.0
}

func randomMatrix(r *xorshift, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, r.float())
		}
	}
	return m
}
