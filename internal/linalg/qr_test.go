package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQRReconstruction(t *testing.T) {
	// For a square invertible system, the QR least-squares solution must
	// solve it exactly.
	a, _ := FromRows([][]float64{
		{2, 1, 0},
		{1, 3, 1},
		{0, 1, 4},
	})
	want := []float64{1, -2, 3}
	b, _ := a.MulVec(want)
	got, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 through noisy-free points: exact recovery.
	xs := []float64{0, 1, 2, 3, 4, 5}
	a := NewMatrix(len(xs), 2)
	b := make([]float64, len(xs))
	for i, x := range xs {
		a.Set(i, 0, x)
		a.Set(i, 1, 1)
		b[i] = 2*x + 1
	}
	c, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c[0], 2, 1e-12) || !almostEqual(c[1], 1, 1e-12) {
		t.Fatalf("fit = %v, want [2 1]", c)
	}
}

func TestLeastSquaresMinimizesResidual(t *testing.T) {
	// With inconsistent data, the residual must be orthogonal to the
	// column space (normal equations): Aᵀ(b - Ax) = 0.
	a, _ := FromRows([][]float64{
		{1, 0},
		{1, 1},
		{1, 2},
		{1, 3},
	})
	b := []float64{1, 0, 2, 1}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := a.MulVec(x)
	resid := make([]float64, len(b))
	for i := range b {
		resid[i] = b[i] - ax[i]
	}
	atr, _ := a.T().MulVec(resid)
	for i, v := range atr {
		if math.Abs(v) > 1e-10 {
			t.Fatalf("normal equation residual %d = %g", i, v)
		}
	}
}

func TestQRRequiresTall(t *testing.T) {
	if _, err := FactorQR(NewMatrix(2, 3)); err == nil {
		t.Fatal("wide matrix accepted")
	}
}

func TestRankDeficientDetected(t *testing.T) {
	// Duplicate column -> rank deficient.
	a, _ := FromRows([][]float64{
		{1, 1},
		{2, 2},
		{3, 3},
	})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("rank-deficient system solved without error")
	}
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.Rank() != 1 {
		t.Fatalf("rank = %d, want 1", f.Rank())
	}
	if c := f.ConditionEstimate(); c < 1e12 {
		t.Fatalf("condition estimate = %g, want huge (rank deficient)", c)
	}
}

func TestSolveRhsLength(t *testing.T) {
	a := Identity(3)
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestPseudoInverseIdentityProperty(t *testing.T) {
	// For full column rank A, A⁺·A = I.
	r := seededRand(7)
	a := randomMatrix(r, 6, 3)
	pinv, err := PseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := pinv.Mul(a)
	if err != nil {
		t.Fatal(err)
	}
	diff, _ := prod.Sub(Identity(3))
	if diff.MaxAbs() > 1e-9 {
		t.Fatalf("A+A deviates from I by %g", diff.MaxAbs())
	}
}

func TestPseudoInverseSolvesLeastSquares(t *testing.T) {
	r := seededRand(12)
	a := randomMatrix(r, 8, 4)
	b := make([]float64, 8)
	for i := range b {
		b[i] = r.float()
	}
	x1, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pinv, err := PseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := pinv.MulVec(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if !almostEqual(x1[i], x2[i], 1e-9) {
			t.Fatalf("pseudo-inverse solution differs: %v vs %v", x1, x2)
		}
	}
}

func TestSolveRidge(t *testing.T) {
	a := Identity(2)
	b := []float64{2, 4}
	// Ridge with λ shrinks the identity solution by 1/(1+λ).
	x, err := SolveRidge(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-10) || !almostEqual(x[1], 2, 1e-10) {
		t.Fatalf("ridge solution = %v, want [1 2]", x)
	}
	if _, err := SolveRidge(a, b, -1); err == nil {
		t.Fatal("negative lambda accepted")
	}
	x0, err := SolveRidge(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x0[0], 2, 1e-12) {
		t.Fatalf("lambda=0 must match plain least squares, got %v", x0)
	}
}

func TestRidgeStabilizesNearCollinear(t *testing.T) {
	// Two nearly identical columns: plain LS gives huge coefficients;
	// ridge keeps them bounded.
	a, _ := FromRows([][]float64{
		{1, 1 + 1e-9},
		{2, 2 - 1e-9},
		{3, 3 + 1e-9},
		{4, 4},
	})
	b := []float64{1, 2, 3, 4.1}
	x, err := SolveRidge(a, b, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]) > 10 || math.Abs(x[1]) > 10 {
		t.Fatalf("ridge coefficients exploded: %v", x)
	}
}

// Property: QR least squares reproduces a planted solution exactly for
// random well-conditioned tall systems.
func TestLeastSquaresRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := seededRand(seed)
		a := randomMatrix(r, 10, 4)
		// Guard against accidental near-rank-deficiency.
		qr, err := FactorQR(a)
		if err != nil || qr.Rank() < 4 || qr.ConditionEstimate() > 1e6 {
			return true // skip pathological draws
		}
		want := []float64{r.float(), r.float(), r.float(), r.float()}
		b, _ := a.MulVec(want)
		got, err := LeastSquares(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: ||b - A·x_ls|| <= ||b - A·z|| for random alternative z.
func TestLeastSquaresOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := seededRand(seed)
		a := randomMatrix(r, 9, 3)
		qr, err := FactorQR(a)
		if err != nil || qr.Rank() < 3 {
			return true
		}
		b := make([]float64, 9)
		for i := range b {
			b[i] = r.float()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return true
		}
		ax, _ := a.MulVec(x)
		best := residNorm(b, ax)
		for trial := 0; trial < 5; trial++ {
			z := []float64{x[0] + r.float()/10, x[1] + r.float()/10, x[2] + r.float()/10}
			az, _ := a.MulVec(z)
			if residNorm(b, az) < best-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func residNorm(b, ax []float64) float64 {
	var s float64
	for i := range b {
		d := b[i] - ax[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestGramInverseDiag(t *testing.T) {
	// Verify against an explicitly computed (XᵀX)⁻¹ on a small system.
	a, _ := FromRows([][]float64{
		{1, 2},
		{3, 1},
		{2, 2},
		{1, 0},
	})
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := f.GramInverseDiag()
	if err != nil {
		t.Fatal(err)
	}
	// X'X = [[15, 9], [9, 9]]; inverse = 1/54 * [[9, -9], [-9, 15]].
	want := []float64{9.0 / 54, 15.0 / 54}
	for i := range want {
		if !almostEqual(diag[i], want[i], 1e-12) {
			t.Fatalf("diag[%d] = %g, want %g", i, diag[i], want[i])
		}
	}
}

func TestGramInverseDiagRankDeficient(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.GramInverseDiag(); err == nil {
		t.Fatal("rank-deficient gram inverse accepted")
	}
}

// Property: the pseudo-inverse satisfies the Moore-Penrose conditions
// A·A⁺·A = A and A⁺·A·A⁺ = A⁺ for random full-rank tall matrices.
func TestMoorePenroseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := seededRand(seed)
		a := randomMatrix(r, 7, 3)
		qr, err := FactorQR(a)
		if err != nil || qr.Rank() < 3 || qr.ConditionEstimate() > 1e6 {
			return true
		}
		pinv, err := PseudoInverse(a)
		if err != nil {
			return false
		}
		apa, _ := a.Mul(pinv)
		apa, _ = apa.Mul(a)
		d1, _ := apa.Sub(a)
		pap, _ := pinv.Mul(a)
		pap, _ = pap.Mul(pinv)
		d2, _ := pap.Sub(pinv)
		scale := 1 + a.MaxAbs() + pinv.MaxAbs()
		return d1.MaxAbs() < 1e-8*scale && d2.MaxAbs() < 1e-8*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
