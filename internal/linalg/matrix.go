// Package linalg provides the dense linear algebra needed by the
// regression macro-modeling flow: matrices, Householder QR factorization,
// least-squares solving, and the Moore-Penrose pseudo-inverse.
//
// The package is self-contained (stdlib only) and sized for the small,
// tall-skinny systems that arise in processor energy characterization
// (tens of test programs by ~21 model variables).
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// NewMatrix returns a zero-valued rows x cols matrix.
// It panics if either dimension is not positive.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("linalg: FromRows requires at least one non-empty row")
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: row %d has %d entries, want %d", i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// NewVector returns a column vector holding a copy of v.
func NewVector(v []float64) *Matrix {
	m := NewMatrix(len(v), 1)
	copy(m.data, v)
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: col %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// ColVector returns a copy of the single column of a column vector as a slice.
// It panics if m has more than one column.
func (m *Matrix) ColVector() []float64 {
	if m.cols != 1 {
		panic(fmt.Sprintf("linalg: ColVector on %dx%d matrix", m.rows, m.cols))
	}
	return m.Col(0)
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m*b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols)
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m*v as a slice.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d * vec(%d)", m.rows, m.cols, len(v))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, mij := range mi {
			s += mij * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d + %dx%d", m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out, nil
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d - %dx%d", m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out, nil
}

// Scale returns s*m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// MaxAbs returns the largest absolute entry of m.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%10.4g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// Dot returns the inner product of two equal-length slices.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, ai := range a {
		s += ai * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Scaled accumulation to avoid overflow for large entries.
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}
