// Package cpufeat detects, at process start, the CPU features the
// rtlpower stripe-walker dispatch ladder can use: AVX2 and AVX-512 on
// amd64 (CPUID plus an XGETBV check that the OS actually saves the
// wider register state), and ASIMD/NEON on arm64 (Linux HWCAP). It is
// stdlib-only by design — the same job golang.org/x/sys/cpu or the
// vendored templexxx/cpu do for klauspost/reedsolomon — so the module
// keeps its zero-dependency property.
//
// The flags are plain bools set once during package init and never
// written again; readers need no synchronization.
package cpufeat

// Feature flags for the current CPU. A flag is true only when both the
// hardware instruction set and the required OS register-state support
// are present, so a kernel gated on it can be called unconditionally.
var (
	// AVX2 reports 256-bit integer SIMD (and the OS saving YMM state).
	AVX2 bool
	// AVX512 reports the F+BW+DQ+VL subset the 32-lane walker needs
	// (and the OS saving ZMM/opmask state).
	AVX512 bool
	// NEON reports AArch64 Advanced SIMD.
	NEON bool
)

// Summary returns a short human-readable feature list, e.g. for logs
// and health output.
func Summary() string {
	s := ""
	add := func(on bool, name string) {
		if !on {
			return
		}
		if s != "" {
			s += "+"
		}
		s += name
	}
	add(AVX2, "avx2")
	add(AVX512, "avx512")
	add(NEON, "neon")
	if s == "" {
		s = "baseline"
	}
	return s
}
