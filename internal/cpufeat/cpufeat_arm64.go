package cpufeat

import (
	"encoding/binary"
	"os"
	"runtime"
)

func init() {
	if runtime.GOOS != "linux" {
		// Darwin, the BSDs, and Windows only run on ARMv8-A cores,
		// where Advanced SIMD is part of the required baseline.
		NEON = true
		return
	}
	NEON = linuxHWCAPASIMD()
}

// linuxHWCAPASIMD reads the auxiliary vector for the ASIMD HWCAP bit.
// The kernel exposes the auxv it handed the process at
// /proc/self/auxv as (tag, value) machine-word pairs.
func linuxHWCAPASIMD() bool {
	const (
		atHWCAP    = 16
		hwcapASIMD = 1 << 1
	)
	buf, err := os.ReadFile("/proc/self/auxv")
	if err != nil {
		// No /proc (minimal container): ASIMD is mandatory for the
		// AArch64 Linux ABI targets Go supports, so default to true.
		return true
	}
	for i := 0; i+16 <= len(buf); i += 16 {
		if binary.LittleEndian.Uint64(buf[i:]) == atHWCAP {
			return binary.LittleEndian.Uint64(buf[i+8:])&hwcapASIMD != 0
		}
	}
	return true
}
