package cpufeat

import (
	"runtime"
	"testing"
)

// TestFlagsMatchArch checks the flags are internally consistent with
// the architecture they were detected on: no cross-ISA leakage.
func TestFlagsMatchArch(t *testing.T) {
	t.Logf("GOARCH=%s features=%s", runtime.GOARCH, Summary())
	switch runtime.GOARCH {
	case "amd64":
		if NEON {
			t.Error("NEON reported on amd64")
		}
	case "arm64":
		if AVX2 || AVX512 {
			t.Error("AVX reported on arm64")
		}
	default:
		if AVX2 || AVX512 || NEON {
			t.Errorf("SIMD features reported on %s", runtime.GOARCH)
		}
	}
	if Summary() == "" {
		t.Error("empty Summary")
	}
}
