//go:build !amd64 && !arm64

package cpufeat

// No SIMD kernels exist for other architectures; every flag stays
// false and the dispatch ladder settles on the portable walker.
