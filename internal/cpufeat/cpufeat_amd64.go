package cpufeat

// cpuid and xgetbv are implemented in cpuid_amd64.s.

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// XCR0 state-component bits the OS must be saving for a kernel to use
// the corresponding registers safely.
const (
	xcr0SSE    = 1 << 1 // XMM
	xcr0AVX    = 1 << 2 // YMM upper halves
	xcr0Opmask = 1 << 5 // AVX-512 k0-k7
	xcr0ZMMHi  = 1 << 6 // ZMM0-15 upper halves
	xcr0HiZMM  = 1 << 7 // ZMM16-31

	ymmState = xcr0SSE | xcr0AVX
	zmmState = ymmState | xcr0Opmask | xcr0ZMMHi | xcr0HiZMM
)

func init() {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if ecx1&osxsave == 0 {
		// Without OSXSAVE the OS saves no extended state; even if the
		// hardware has AVX, using YMM/ZMM would corrupt other threads.
		return
	}
	xlo, _ := xgetbv()

	ebx7, _, _, _ := cpuid7()
	const (
		avx2     = 1 << 5
		avx512f  = 1 << 16
		avx512dq = 1 << 17
		avx512bw = 1 << 30
		avx512vl = 1 << 31
	)
	if xlo&ymmState == ymmState && ebx7&avx2 != 0 {
		AVX2 = true
	}
	const avx512need = avx512f | avx512dq | avx512bw | avx512vl
	if xlo&zmmState == zmmState && ebx7&avx512need == avx512need {
		AVX512 = true
	}
}

// cpuid7 returns leaf 7 subleaf 0 with ebx first (the register carrying
// the AVX2/AVX-512 bits), keeping init readable.
func cpuid7() (ebx, ecx, edx, eax uint32) {
	eax, ebx, ecx, edx = cpuid(7, 0)
	return ebx, ecx, edx, eax
}
