package pipeline

import "testing"

func load(rd uint8) Use {
	return Use{IsLoad: true, WritesRd: true, Rd: rd}
}

func alu(rd, rs, rt uint8) Use {
	return Use{ReadsRs: true, ReadsRt: true, Rs: rs, Rt: rt, WritesRd: true, Rd: rd}
}

func mult(rd, rs, rt uint8) Use {
	return Use{ReadsRs: true, ReadsRt: true, Rs: rs, Rt: rt, IsMult: true, WritesRd: true, Rd: rd}
}

func TestLoadUseInterlock(t *testing.T) {
	m := New()
	if s := m.Interlock(load(4)); s != 0 {
		t.Fatalf("load stalled: %d", s)
	}
	if s := m.Interlock(alu(5, 4, 6)); s != 1 {
		t.Fatalf("load-use did not stall: %d", s)
	}
}

func TestLoadUseViaRt(t *testing.T) {
	m := New()
	m.Interlock(load(4))
	if s := m.Interlock(alu(5, 6, 4)); s != 1 {
		t.Fatalf("load-use through rt did not stall: %d", s)
	}
}

func TestNoInterlockWithoutDependence(t *testing.T) {
	m := New()
	m.Interlock(load(4))
	if s := m.Interlock(alu(5, 6, 7)); s != 0 {
		t.Fatalf("independent instruction stalled: %d", s)
	}
}

func TestInterlockOnlyOneSlot(t *testing.T) {
	// The hazard window is a single slot: load, unrelated, use -> no stall.
	m := New()
	m.Interlock(load(4))
	m.Interlock(alu(9, 10, 11))
	if s := m.Interlock(alu(5, 4, 6)); s != 0 {
		t.Fatalf("stale hazard stalled: %d", s)
	}
}

func TestMultInterlock(t *testing.T) {
	m := New()
	m.Interlock(mult(4, 1, 2))
	if s := m.Interlock(alu(5, 4, 6)); s != 1 {
		t.Fatalf("mult-use did not stall: %d", s)
	}
}

func TestStoreDoesNotCreateHazard(t *testing.T) {
	m := New()
	// A store reads registers but writes none.
	m.Interlock(Use{ReadsRs: true, Rs: 4})
	if s := m.Interlock(alu(5, 4, 6)); s != 0 {
		t.Fatalf("store created a hazard: %d", s)
	}
}

func TestFlushClearsHazards(t *testing.T) {
	m := New()
	m.Interlock(load(4))
	m.Flush()
	if s := m.Interlock(alu(5, 4, 6)); s != 0 {
		t.Fatalf("hazard survived flush: %d", s)
	}
}

func TestResetClearsHazards(t *testing.T) {
	m := New()
	m.Interlock(load(4))
	m.Reset()
	if s := m.Interlock(alu(5, 4, 6)); s != 0 {
		t.Fatalf("hazard survived reset: %d", s)
	}
}

func TestDefaultPenalties(t *testing.T) {
	m := New()
	if m.TakenPenalty != 2 || m.JumpPenalty != 2 {
		t.Fatalf("penalties %d/%d, want 2/2", m.TakenPenalty, m.JumpPenalty)
	}
}

func TestNonReadingInstructionNeverStalls(t *testing.T) {
	m := New()
	m.Interlock(load(4))
	// A movi-like instruction reads nothing.
	if s := m.Interlock(Use{WritesRd: true, Rd: 4}); s != 0 {
		t.Fatalf("non-reading instruction stalled: %d", s)
	}
}
