// Package pipeline models the timing behaviour of the XT32 five-stage
// RISC pipeline that the instruction-set simulator needs in order to
// count the macro-model's non-ideal-case variables: data- and
// control-dependent interlocks and control-flow penalties.
//
// The model is deliberately compact — the macro-model consumes event
// counts and per-class cycle counts, not a cycle-by-cycle pipe diagram —
// but it reproduces the classic five-stage hazards:
//
//   - load-use interlock: an instruction consuming the destination of the
//     immediately preceding load stalls one cycle (the MEM->EX bypass
//     gap);
//   - multiplier interlock: the iterative 32-bit multiplier occupies EX
//     for two cycles, so an immediately dependent consumer stalls;
//   - taken-branch and jump penalties: redirecting the front end costs
//     TakenPenalty/JumpPenalty bubble cycles.
package pipeline

// Model tracks the pipeline hazards of consecutive instructions.
type Model struct {
	// TakenPenalty is the bubble cost of a taken conditional branch.
	TakenPenalty int
	// JumpPenalty is the bubble cost of an unconditional jump/call/return.
	JumpPenalty int

	// lastLoadDest is the register written by the load retired in the
	// previous slot, or -1.
	lastLoadDest int
	// lastMultDest is the register written by a multiply retired in the
	// previous slot, or -1.
	lastMultDest int
}

// New returns a pipeline model with the default XT32 penalties
// (2-cycle redirect for taken branches and jumps).
func New() *Model {
	return &Model{TakenPenalty: 2, JumpPenalty: 2, lastLoadDest: -1, lastMultDest: -1}
}

// Reset clears hazard-tracking state.
func (m *Model) Reset() {
	m.lastLoadDest = -1
	m.lastMultDest = -1
}

// Use describes the register usage of the instruction entering the
// pipeline this slot.
type Use struct {
	ReadsRs, ReadsRt bool
	Rs, Rt           uint8
	// IsLoad / IsMult / WritesRd / Rd describe the instruction itself so
	// the model can set up hazards for its successor.
	IsLoad, IsMult bool
	WritesRd       bool
	Rd             uint8
}

// Interlock returns the number of stall cycles charged to the incoming
// instruction due to dependences on its predecessor, and updates hazard
// state for the next slot. A non-zero return corresponds to one
// "processor interlock" event in the macro-model.
func (m *Model) Interlock(u Use) int {
	stall := 0
	if m.lastLoadDest >= 0 {
		if (u.ReadsRs && int(u.Rs) == m.lastLoadDest) || (u.ReadsRt && int(u.Rt) == m.lastLoadDest) {
			stall = 1
		}
	}
	if stall == 0 && m.lastMultDest >= 0 {
		if (u.ReadsRs && int(u.Rs) == m.lastMultDest) || (u.ReadsRt && int(u.Rt) == m.lastMultDest) {
			stall = 1
		}
	}

	m.lastLoadDest = -1
	m.lastMultDest = -1
	if u.WritesRd {
		if u.IsLoad {
			m.lastLoadDest = int(u.Rd)
		} else if u.IsMult {
			m.lastMultDest = int(u.Rd)
		}
	}
	return stall
}

// Flush clears hazard state after a control-flow redirect (the bubble
// slots cannot carry hazards into the new path).
func (m *Model) Flush() {
	m.lastLoadDest = -1
	m.lastMultDest = -1
}
