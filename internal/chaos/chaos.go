// Package chaos is the fault-injection harness for the
// characterization pipeline. It sabotages selected workloads' reference
// legs — memory faults at chosen program counters, NaN reference
// energies, stalled or dropped trace batches, panicking workers, flaky
// oracles — through the core.Options.Measure seam, without touching any
// production code path. The robustness tests use it to prove that
// partial characterization degrades gracefully (dropping exactly the
// sabotaged workloads, recovering coefficients close to the clean fit)
// and that cancellation never leaks goroutines.
package chaos

import (
	"context"
	"fmt"
	"math"
	"sync"

	"xtenergy/internal/core"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
)

// Mode selects how a targeted workload's reference leg is sabotaged.
type Mode int

const (
	// MemFault injects a memory fault from inside the ISS once
	// execution first reaches Sabotage.PC (or immediately when PC < 0):
	// a deterministic, hard simulator fault.
	MemFault Mode = iota
	// NaNEnergy lets the leg complete, then corrupts the reference
	// energy to NaN — the classic silent measurement failure the
	// pipeline must refuse to fit against.
	NaNEnergy
	// StallStream substitutes a trace consumer that never consumes:
	// the stream backs up, and only the per-workload deadline (or
	// cancellation) can end the run.
	StallStream
	// DropBatches substitutes a consumer that silently discards every
	// other trace batch — an integrity failure the measurement
	// cross-check must catch (the estimate would otherwise just be
	// quietly low).
	DropBatches
	// PanicWorker makes the measurement leg panic outright.
	PanicWorker
	// Flaky fails the first Sabotage.FailFirst attempts with a
	// transient fault and then succeeds: the retry policy's test case.
	Flaky
)

// String returns the mode name used in test output.
func (m Mode) String() string {
	switch m {
	case MemFault:
		return "mem-fault"
	case NaNEnergy:
		return "nan-energy"
	case StallStream:
		return "stall-stream"
	case DropBatches:
		return "drop-batches"
	case PanicWorker:
		return "panic-worker"
	case Flaky:
		return "flaky"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Sabotage describes one workload's injected failure.
type Sabotage struct {
	Mode Mode
	// PC is the program counter MemFault triggers at; -1 faults on the
	// first retired instruction.
	PC int
	// FailFirst is how many attempts Flaky fails before succeeding.
	FailFirst int
}

// Plan maps workload names to their sabotage. Workloads not in the
// plan are measured by the production leg unchanged.
type Plan map[string]Sabotage

// Measure returns the sabotaging core.MeasureFunc implementing the
// plan. The returned function is safe for the characterization worker
// pool (attempt counters are locked).
func (p Plan) Measure() core.MeasureFunc {
	var mu sync.Mutex
	attempts := make(map[string]int)
	return func(ctx context.Context, cfg procgen.Config, tech rtlpower.Technology, w core.Workload) (core.Measurement, error) {
		sab, ok := p[w.Name]
		if !ok {
			return core.MeasureWorkload(ctx, cfg, tech, w)
		}
		switch sab.Mode {
		case MemFault:
			return measureStreamed(ctx, cfg, tech, w, iss.Options{
				InjectFault: func(pc int, cycle uint64) *iss.Fault {
					if sab.PC < 0 || pc == sab.PC {
						return &iss.Fault{Kind: iss.FaultMem, Addr: 0xdead_beef, Msg: "injected memory fault"}
					}
					return nil
				},
			}, nil)
		case NaNEnergy:
			m, err := core.MeasureWorkload(ctx, cfg, tech, w)
			if err != nil {
				return m, err
			}
			m.MeasuredPJ = math.NaN()
			return m, nil
		case StallStream:
			return measureStreamed(ctx, cfg, tech, w, iss.Options{}, func(c rtlpower.Consumer) rtlpower.Consumer {
				return stallConsumer{ctx: ctx}
			})
		case DropBatches:
			return measureStreamed(ctx, cfg, tech, w, iss.Options{}, func(c rtlpower.Consumer) rtlpower.Consumer {
				return &dropConsumer{inner: c}
			})
		case PanicWorker:
			panic("chaos: injected worker panic for " + w.Name)
		case Flaky:
			mu.Lock()
			attempts[w.Name]++
			n := attempts[w.Name]
			mu.Unlock()
			if n <= sab.FailFirst {
				return core.Measurement{}, &iss.Fault{
					Kind: iss.FaultMeasurement, Prog: w.Name, PC: -1,
					Msg: fmt.Sprintf("flaky oracle (attempt %d)", n), Transient: true,
				}
			}
			return core.MeasureWorkload(ctx, cfg, tech, w)
		}
		return core.Measurement{}, fmt.Errorf("chaos: unknown sabotage mode %v", sab.Mode)
	}
}

// stallConsumer never consumes: it parks until the run's context ends,
// modelling a wedged external estimator. It respects ctx, as the
// rtlpower.Consumer contract requires.
type stallConsumer struct{ ctx context.Context }

func (s stallConsumer) Consume(batch []iss.TraceEntry) error {
	<-s.ctx.Done()
	return &iss.Fault{Kind: iss.FaultCancelled, PC: -1, Msg: "stalled trace consumer gave up", Err: s.ctx.Err()}
}

// dropConsumer silently forwards only every other batch, corrupting
// the estimate without raising any error of its own.
type dropConsumer struct {
	inner rtlpower.Consumer
	n     int
}

func (d *dropConsumer) Consume(batch []iss.TraceEntry) error {
	d.n++
	if d.n%2 == 0 {
		return nil
	}
	return d.inner.Consume(batch)
}

// measureStreamed is the harness's own reference leg: the same flow as
// core.MeasureWorkload (including the cycle-integrity cross-check) but
// with injectable iss.Options and an optional consumer wrapper between
// the stream and the estimator.
func measureStreamed(ctx context.Context, cfg procgen.Config, tech rtlpower.Technology, w core.Workload, issOpts iss.Options, wrap func(rtlpower.Consumer) rtlpower.Consumer) (core.Measurement, error) {
	proc, prog, err := w.Build(cfg)
	if err != nil {
		return core.Measurement{}, err
	}
	est, err := rtlpower.New(proc, tech)
	if err != nil {
		return core.Measurement{}, err
	}
	st := est.Stream()
	var c rtlpower.Consumer = st
	if wrap != nil {
		c = wrap(c)
	}
	res, err := rtlpower.RunStreamed(ctx, iss.New(proc), prog, issOpts, c)
	if err != nil {
		return core.Measurement{}, err
	}
	rep, err := st.Finish()
	if err != nil {
		return core.Measurement{}, err
	}
	if rep.Cycles != res.Stats.Cycles {
		return core.Measurement{}, &iss.Fault{
			Kind: iss.FaultMeasurement, Prog: w.Name, PC: -1,
			Msg: fmt.Sprintf("trace integrity: estimator consumed %d cycles, ISS retired %d (dropped batches?)", rep.Cycles, res.Stats.Cycles),
		}
	}
	vars, err := core.Extract(proc.TIE, &res.Stats)
	if err != nil {
		return core.Measurement{}, err
	}
	return core.Measurement{
		Vars:       vars,
		OpcodeExec: res.Stats.OpcodeExec,
		MeasuredPJ: rep.TotalPJ,
		Cycles:     res.Stats.Cycles,
	}, nil
}
