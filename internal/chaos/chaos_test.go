package chaos_test

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"xtenergy/internal/chaos"
	"xtenergy/internal/core"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/workloads"
)

// victim returns a characterization workload known to retire well over
// one trace batch, so batch-level sabotage (drops, stalls) has
// something to bite on.
func victim(t *testing.T) core.Workload {
	t.Helper()
	for _, w := range workloads.CharacterizationSuite() {
		if w.Name == "tp37_memheavy_custom" {
			return w
		}
	}
	t.Fatal("tp37_memheavy_custom missing from the suite")
	return core.Workload{}
}

// measure applies a one-workload plan to the victim.
func measure(t *testing.T, ctx context.Context, sab chaos.Sabotage) (core.Measurement, error) {
	t.Helper()
	w := victim(t)
	m := chaos.Plan{w.Name: sab}.Measure()
	return m(ctx, procgen.Default(), rtlpower.FastTechnology(), w)
}

func wantKind(t *testing.T, err error, kind iss.FaultKind) *iss.Fault {
	t.Helper()
	f, ok := iss.AsFault(err)
	if !ok || f.Kind != kind {
		t.Fatalf("want %s fault, got %v", kind, err)
	}
	return f
}

func TestMemFaultMode(t *testing.T) {
	_, err := measure(t, context.Background(), chaos.Sabotage{Mode: chaos.MemFault, PC: -1})
	f := wantKind(t, err, iss.FaultMem)
	if f.Addr != 0xdead_beef {
		t.Fatalf("addr = %#x", f.Addr)
	}
	if f.IsTransient() {
		t.Fatal("injected memory fault must be hard (not retried)")
	}
}

func TestNaNEnergyMode(t *testing.T) {
	m, err := measure(t, context.Background(), chaos.Sabotage{Mode: chaos.NaNEnergy})
	if err != nil {
		t.Fatalf("NaN sabotage must complete the leg: %v", err)
	}
	if !math.IsNaN(m.MeasuredPJ) {
		t.Fatalf("MeasuredPJ = %v, want NaN", m.MeasuredPJ)
	}
}

func TestStallStreamMode(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := measure(t, ctx, chaos.Sabotage{Mode: chaos.StallStream})
	f := wantKind(t, err, iss.FaultCancelled)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stall must end via the deadline: %v", err)
	}
	if !f.IsTransient() {
		t.Fatal("deadline-induced stall must count as transient")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled leg took %v to give up", elapsed)
	}
}

func TestDropBatchesMode(t *testing.T) {
	_, err := measure(t, context.Background(), chaos.Sabotage{Mode: chaos.DropBatches})
	f := wantKind(t, err, iss.FaultMeasurement)
	if f.Prog != "tp37_memheavy_custom" {
		t.Fatalf("fault prog = %q", f.Prog)
	}
}

func TestPanicWorkerMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic-worker mode did not panic (the pool's recover is the safety net)")
		}
	}()
	_, _ = measure(t, context.Background(), chaos.Sabotage{Mode: chaos.PanicWorker})
}

func TestFlakyModeRecovers(t *testing.T) {
	w := victim(t)
	m := chaos.Plan{w.Name: {Mode: chaos.Flaky, FailFirst: 1}}.Measure()
	_, err := m(context.Background(), procgen.Default(), rtlpower.FastTechnology(), w)
	f := wantKind(t, err, iss.FaultMeasurement)
	if !f.IsTransient() {
		t.Fatal("flaky fault must be transient")
	}
	got, err := m(context.Background(), procgen.Default(), rtlpower.FastTechnology(), w)
	if err != nil {
		t.Fatalf("second attempt must succeed: %v", err)
	}
	if got.MeasuredPJ <= 0 {
		t.Fatal("recovered measurement is empty")
	}
}

func TestUnsabotagedWorkloadUntouched(t *testing.T) {
	w := victim(t)
	clean, err := core.MeasureWorkload(context.Background(), procgen.Default(), rtlpower.FastTechnology(), w)
	if err != nil {
		t.Fatal(err)
	}
	m := chaos.Plan{"someone-else": {Mode: chaos.PanicWorker}}.Measure()
	got, err := m(context.Background(), procgen.Default(), rtlpower.FastTechnology(), w)
	if err != nil {
		t.Fatal(err)
	}
	if got.MeasuredPJ != clean.MeasuredPJ {
		t.Fatalf("plan leaked onto an untargeted workload: %g vs %g", got.MeasuredPJ, clean.MeasuredPJ)
	}
}

// TestCharacterizeCancelNoLeak cancels a characterization run from
// inside a measurement leg (mid-stream, while the worker pool is busy):
// Characterize must return context.Canceled and the pool plus every
// stream pipeline must wind down without leaking goroutines.
func TestCharacterizeCancelNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The first leg to start pulls the plug partway through its own
	// simulation; every other in-flight leg sees the cancellation at a
	// batch boundary.
	trip := func(ctx context.Context, cfg procgen.Config, tech rtlpower.Technology, w core.Workload) (core.Measurement, error) {
		proc, prog, err := w.Build(cfg)
		if err != nil {
			return core.Measurement{}, err
		}
		est, err := rtlpower.New(proc, tech)
		if err != nil {
			return core.Measurement{}, err
		}
		fired := false
		opts := iss.Options{InjectFault: func(pc int, cycle uint64) *iss.Fault {
			if cycle > 1000 && !fired {
				fired = true
				cancel()
			}
			return nil
		}}
		_, err = rtlpower.RunStreamed(ctx, iss.New(proc), prog, opts, est.Stream())
		if err != nil {
			return core.Measurement{}, err
		}
		return core.Measurement{}, errors.New("run survived cancellation")
	}

	cr, err := core.Characterize(ctx, procgen.Default(), rtlpower.FastTechnology(),
		workloads.CharacterizationSuite(), core.Options{Partial: true, Measure: trip})
	if cr != nil {
		t.Fatal("cancelled characterization returned a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d running, started with %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
