package chaos

import (
	"net"
	"sync"
	"time"

	"xtenergy/internal/xpowerd"
)

// Network- and request-level injection for the xpowerd daemon. The
// connection wrappers sabotage the client side of a session (the daemon
// must survive whatever a peer does to its half of the socket); the
// request hooks plug into xpowerd.Config.RequestHook, the server-side
// seam, to poison selected requests without touching production code —
// the same philosophy as the core.Options.Measure seam above.

// TruncateConn cuts the connection after writing Budget more bytes:
// the daemon sees a frame header whose payload never fully arrives (a
// mid-frame disconnect). Reads pass through untouched.
type TruncateConn struct {
	net.Conn
	// Budget is the number of bytes still allowed out.
	Budget int
}

// Write forwards at most the remaining budget, then closes the
// connection mid-stream.
func (c *TruncateConn) Write(p []byte) (int, error) {
	if c.Budget <= 0 {
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	if len(p) <= c.Budget {
		n, err := c.Conn.Write(p)
		c.Budget -= n
		return n, err
	}
	n, _ := c.Conn.Write(p[:c.Budget])
	c.Budget = 0
	c.Conn.Close()
	return n, net.ErrClosed
}

// SlowConn trickles writes one byte per Delay — the slowloris client a
// per-frame read deadline exists to disconnect.
type SlowConn struct {
	net.Conn
	// Delay is the pause before each byte.
	Delay time.Duration
}

// Write emits p one byte at a time, pausing Delay before each.
func (c *SlowConn) Write(p []byte) (int, error) {
	for i := range p {
		time.Sleep(c.Delay)
		if _, err := c.Conn.Write(p[i : i+1]); err != nil {
			return i, err
		}
	}
	return len(p), nil
}

// PanicOnWorkload returns an xpowerd request hook that panics whenever
// a request names the given workload — the poisoned program whose
// session the daemon must contain without going down.
func PanicOnWorkload(name string) func(*xpowerd.Request) {
	return func(req *xpowerd.Request) {
		if req.Workload == name {
			panic("chaos: poisoned request for workload " + name)
		}
	}
}

// HoldRequests returns an xpowerd request hook that blocks every
// matched request until Release is called (or forever when the hook is
// released with nil channels). Saturating the worker pool with held
// requests is how the backpressure tests force the admission queue
// full.
type HoldRequests struct {
	mu      sync.Mutex
	release chan struct{}
	held    int
}

// NewHoldRequests builds a hook-bearing holder.
func NewHoldRequests() *HoldRequests {
	return &HoldRequests{release: make(chan struct{})}
}

// Hook is the xpowerd.Config.RequestHook: it parks matched requests on
// the holder's release channel.
func (h *HoldRequests) Hook(match string) func(*xpowerd.Request) {
	return func(req *xpowerd.Request) {
		if match != "" && req.Workload != match {
			return
		}
		h.mu.Lock()
		h.held++
		ch := h.release
		h.mu.Unlock()
		<-ch
	}
}

// Held reports how many requests are currently parked (monotonic count
// of arrivals; parked requests only leave on Release).
func (h *HoldRequests) Held() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.held
}

// Release lets every parked (and future) request through.
func (h *HoldRequests) Release() {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case <-h.release:
	default:
		close(h.release)
	}
}
