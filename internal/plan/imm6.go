package plan

import (
	"xtenergy/internal/isa"
	"xtenergy/internal/tie"
)

// The 6-bit signed constant encoding shared by register-immediate
// branch compares and immediate-form TIE instructions: both reuse the
// 6-bit Rt register field to carry a small constant, decoded by the
// same generated immediate-generation logic. This file is the single
// definition of that encoding — the assembler encodes with it, the
// simulator and plan decode with it, and xlint validates against it.
// (It used to be spelled out independently in asm, iss and xlint; the
// copies drifting apart is how the phantom-interlock bug of PR 1 could
// have recurred.)
const (
	// Imm6Bits is the width of the constant field (the Rt register
	// field).
	Imm6Bits = 6
	// MinImm6 and MaxImm6 bound the encodable signed constant.
	MinImm6 = -(1 << (Imm6Bits - 1))    // -32
	MaxImm6 = (1 << (Imm6Bits - 1)) - 1 // 31
)

// DecodeImm6 decodes the 6-bit signed constant carried in an Rt field
// (sign-extend bit 5 through bit 31).
func DecodeImm6(rt uint8) int32 {
	return int32(int8(rt<<(8-Imm6Bits))) >> (8 - Imm6Bits)
}

// EncodeImm6 encodes v into an Rt field, reporting false when v is
// outside [MinImm6, MaxImm6].
func EncodeImm6(v int64) (uint8, bool) {
	if v < MinImm6 || v > MaxImm6 {
		return 0, false
	}
	return uint8(v) & (1<<Imm6Bits - 1), true
}

// ImmFormRt reports whether in's Rt field carries an immediate-form
// constant rather than a register number — true for immediate-form TIE
// instructions and for register-immediate branch compares. Such a field
// is never a register read: it must not arm the interlock comparator
// (the PR-1 phantom-interlock fix) and must not contribute to dataflow
// read sets.
func ImmFormRt(comp *tie.Compiled, in isa.Instr) bool {
	if in.IsCustom() {
		if comp == nil {
			return false
		}
		ci, err := comp.Instruction(in.CustomID)
		return err == nil && ci.ImmOperand
	}
	d, ok := isa.Lookup(in.Op)
	return ok && d.Format == isa.FormatBranchRI
}
