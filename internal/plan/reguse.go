package plan

import (
	"xtenergy/internal/isa"
	"xtenergy/internal/tie"
)

// RegUse describes the general-register ports of one instruction: the
// full architectural read/write sets (what the execution stage actually
// touches) and the narrower hazard view (what the pipeline interlock
// comparator latches off the operand buses). The two differ: a store
// reads its data register Rd and RET reads the link register a0 in the
// execute stage, but neither arms the interlock comparator, while an
// immediate-form custom instruction carries a constant in its Rt field
// that must not be treated as a register read at all.
//
// The simulator's hazard detection and the xlint static analyzer both
// read their register model from plan records, so the two can never
// disagree about what an instruction reads or writes.
type RegUse struct {
	// Reads and Writes are bitmasks over the 64 general registers
	// (bit r set = register ar is read/written architecturally).
	Reads, Writes uint64

	// ReadsRs and ReadsRt report whether the Rs/Rt instruction fields
	// name register operands latched from the shared operand buses —
	// the ports the interlock comparator watches. False for immediate
	// fields (e.g. the Rt constant of branch-immediate forms and of
	// immediate-form TIE instructions).
	ReadsRs, ReadsRt bool
	// WritesRd reports whether the Rd field names a written register.
	WritesRd bool
	// IsLoad and IsMult classify the producer side of the two interlock
	// hazards (load-use and iterative-multiply-use).
	IsLoad, IsMult bool
}

// regBit returns the bitmask bit for register r, tolerating out-of-range
// encodings (they contribute no bit; xlint flags them separately).
func regBit(r uint8) uint64 {
	if int(r) >= isa.NumRegs {
		return 0
	}
	return 1 << r
}

// RegUseOf computes the register ports of in. The compiled extension
// supplies the port declarations of custom instructions; it may be nil
// (or base-only) in which case custom instructions report no ports —
// exactly what the simulator's hazard logic assumes before it errors
// out on the undefined extension.
func RegUseOf(comp *tie.Compiled, in isa.Instr) RegUse {
	var u RegUse
	if in.IsCustom() {
		rs, rt := customRegReads(comp, in)
		u.ReadsRs, u.ReadsRt = rs, rt
		if rs {
			u.Reads |= regBit(in.Rs)
		}
		if rt {
			u.Reads |= regBit(in.Rt)
		}
		if customWritesGeneral(comp, in) {
			u.WritesRd = true
			u.Writes |= regBit(in.Rd)
		}
		return u
	}

	d, ok := isa.Lookup(in.Op)
	if !ok {
		return u
	}
	u.ReadsRs, u.ReadsRt, u.WritesRd = d.ReadsRs, d.ReadsRt, d.WritesRd
	u.IsLoad = d.Class == isa.ClassLoad
	u.IsMult = IsMult(in.Op)
	if d.ReadsRs {
		u.Reads |= regBit(in.Rs)
	}
	if d.ReadsRt {
		u.Reads |= regBit(in.Rt)
	}
	if d.WritesRd {
		u.Writes |= regBit(in.Rd)
	}

	// Architectural reads and writes beyond the bus-latched operands.
	switch in.Op {
	case isa.OpS8I, isa.OpS16I, isa.OpS32I:
		// The store data register is Rd.
		u.Reads |= regBit(in.Rd)
	case isa.OpMOVEQZ, isa.OpMOVNEZ, isa.OpMOVLTZ, isa.OpMOVGEZ:
		// Conditional moves keep the old Rd value when the condition
		// fails, so they read Rd.
		u.Reads |= regBit(in.Rd)
	case isa.OpRET:
		// RET jumps through the link register a0.
		u.Reads |= 1 << 0
	case isa.OpCALL, isa.OpCALLX:
		// Calls write the return address to a0.
		u.Writes |= 1 << 0
	}
	return u
}

// customRegReads reports which general-register operand fields a custom
// instruction actually reads. For the immediate form, the Rt field
// carries a 6-bit signed constant (see DecodeImm6), not a register
// number, so it must not arm the interlock comparator: treating it as a
// register read produced phantom interlock stalls whenever the constant
// happened to equal the previous load/mult destination, inflating N_ilk.
func customRegReads(comp *tie.Compiled, in isa.Instr) (rs, rt bool) {
	if comp == nil || !in.IsCustom() {
		return false, false
	}
	ci, err := comp.Instruction(in.CustomID)
	if err != nil || !ci.ReadsGeneral {
		return false, false
	}
	return true, !ci.ImmOperand
}

// customWritesGeneral reports whether a custom instruction writes its
// result to the general register file.
func customWritesGeneral(comp *tie.Compiled, in isa.Instr) bool {
	if comp == nil || !in.IsCustom() {
		return false
	}
	ci, err := comp.Instruction(in.CustomID)
	return err == nil && ci.WritesGeneral
}
