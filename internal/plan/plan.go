// Package plan is the predecoded program IR shared by every
// per-instruction consumer in the repository: the instruction-set
// simulator executes from it, xlint builds its CFG and dataflow facts
// from it, the energy profiler attributes against it, and the RTL
// reference estimator prices trace entries with it.
//
// The macro-model's value proposition is that estimation is ~1000x
// faster than RTL power simulation, which makes the ISS the inference
// hot path — yet instruction metadata (register ports, energy class,
// control-flow targets, custom-instruction attributes) is a pure
// function of the static instruction and the compiled TIE extension.
// A Plan resolves all of it exactly once per program: the hot loop
// becomes an indexed walk over prebuilt records instead of re-running
// nested opcode switches and register-use derivation on every retired
// instruction.
//
// Invariants:
//
//   - A Plan is immutable after Build returns. Nothing in this package
//     or its consumers writes to a record after construction.
//   - Because it is immutable, one Plan is safely shared across
//     goroutines — iss.Program caches a single Plan per compiled
//     extension and the parallel characterization workers all read it.
//   - A Rec never disagrees with the simulator: the simulator executes
//     *from* the records, and the static analyzers read the same
//     records, so the two cannot drift apart.
package plan

import (
	"xtenergy/internal/hwlib"
	"xtenergy/internal/isa"
	"xtenergy/internal/pipeline"
	"xtenergy/internal/tie"
)

// Flow classifies how an instruction computes its destination register
// as a function of its Rs operand — the value-flow shapes the abstract
// interpreter's induction-variable detection needs to recognize without
// re-deriving opcode semantics. Anything not exactly one of the listed
// shapes is FlowOpaque; consumers must treat opaque flows as arbitrary.
type Flow uint8

const (
	// FlowOpaque: the destination is not a recognized function of Rs.
	FlowOpaque Flow = iota
	// FlowConst: rd = FlowK (MOVI).
	FlowConst
	// FlowAddImm: rd = rs + FlowK with FlowK sign-extended (ADDI). When
	// Rd == Rs this is the canonical induction-variable step.
	FlowAddImm
	// FlowCopy: rd = rs (MOV).
	FlowCopy
)

// Rec is the fully resolved metadata of one static instruction. All
// fields are derivable from (Instr, compiled extension, pc, layout);
// they are materialized so per-retire consumers never re-derive them.
type Rec struct {
	// Instr is the instruction this record describes.
	Instr isa.Instr
	// Def is the resolved opcode definition (the zero Def when Valid is
	// false).
	Def isa.Def
	// Valid reports whether the opcode is defined (isa.Lookup). Plans
	// are built for unvalidated programs too — xlint flags invalid
	// opcodes as findings — so consumers must check Valid before
	// trusting Def.
	Valid bool

	// Use is the instruction's register-port model: architectural
	// read/write sets plus the narrower bus-latched hazard view.
	Use RegUse
	// PUse is Use prepackaged for the pipeline interlock comparator, so
	// the simulator's hazard check is a single struct pass.
	PUse pipeline.Use

	// Target is the statically resolved control-flow target in
	// instruction words: the taken target of a conditional branch, the
	// destination of J/CALL, or the end address of LOOP/LOOPNEZ.
	// -1 when the instruction has no static target (including indirect
	// transfers). Targets are resolved, not validated: they may lie
	// outside [0, len(code)] for malformed programs.
	Target int
	// SImm is the decoded 6-bit signed constant carried in the Rt field
	// by register-immediate branch compares and immediate-form TIE
	// instructions (see DecodeImm6); 0 otherwise.
	SImm int32

	// FetchAddr is the instruction's byte address (CodeBase + 4*pc),
	// the I-cache lookup key. Zero in records built by Describe.
	FetchAddr uint32
	// Uncached reports that the instruction resides in the uncached
	// region: its fetch bypasses the I-cache.
	Uncached bool

	// IsMult and IsShift classify the execution unit the instruction
	// occupies (iterative multiplier / barrel shifter), for structural
	// power attribution.
	IsMult, IsShift bool
	// RegfileActive reports whether the general register file is active
	// during execution (any bus-latched read or write; for custom
	// instructions, whether the extension touches the general file).
	RegfileActive bool

	// Flow is the instruction's value-flow shape (see Flow); FlowK is
	// the constant it carries (the MOVI immediate, the ADDI addend).
	Flow  Flow
	FlowK int32

	// CI is the compiled custom instruction when Instr is a defined
	// custom op; nil otherwise (including custom ops whose ID the
	// extension does not define — the simulator faults on those).
	CI *tie.Instruction
	// CustomWeights is CI's per-cycle structural category contribution
	// (tie.Compiled.CategoryActiveWeights); zero unless CI is set.
	CustomWeights [hwlib.NumCategories]float64
	// Active lists the component indices active while CI executes
	// (tie.Compiled.ActiveByInstr; shared with the compiled extension,
	// never mutated). Nil unless CI is set.
	Active []int
}

// Plan is the predecoded IR of one program against one compiled TIE
// extension: one Rec per instruction plus program-wide precomputations.
// Build once, read from anywhere.
type Plan struct {
	// Comp is the compiled extension the plan was resolved against.
	Comp *tie.Compiled
	// Recs has one record per instruction, indexed by pc.
	Recs []Rec
	// BusTap is the summed per-category complexity of the bus-tapped
	// custom components (tie.Compiled.BusTapWeights), precomputed
	// because every base arithmetic retire prices it.
	BusTap [hwlib.NumCategories]float64
	// HasBusTaps reports whether any custom component taps the operand
	// buses.
	HasBusTaps bool
}

// Build predecodes a program: code and layout metadata in, one immutable
// Rec per instruction out. comp supplies custom-instruction resolution
// and may be nil (base-only). Invalid opcodes and out-of-range register
// fields are tolerated — the record is marked accordingly and the
// simulator/analyzers handle them exactly as they did when deriving
// per step.
func Build(code []isa.Instr, codeBase uint32, uncached []bool, comp *tie.Compiled) *Plan {
	p := &Plan{Comp: comp, Recs: make([]Rec, len(code))}
	if comp != nil {
		p.BusTap = comp.BusTapWeights()
		p.HasBusTaps = len(comp.BusTapped) > 0
	}
	for pc := range code {
		r := &p.Recs[pc]
		*r = Describe(comp, code[pc])
		r.FetchAddr = codeBase + uint32(pc)*isa.WordBytes
		r.Uncached = uncached != nil && uncached[pc]
		// Resolve pc-relative targets (Describe leaves them at -1).
		in := code[pc]
		switch {
		case !r.Valid || in.IsCustom():
			// no static target
		case in.Op == isa.OpJ || in.Op == isa.OpCALL:
			r.Target = int(in.Imm)
		case in.Op == isa.OpLOOP || in.Op == isa.OpLOOPNEZ:
			r.Target = pc + 1 + int(in.Imm) // loop end (exclusive)
		case r.Def.Class == isa.ClassBranch:
			r.Target = pc + 1 + int(in.Imm)
		}
	}
	return p
}

// Rec returns the record at pc, or nil when pc is out of range — the
// lookup consumers of possibly-corrupted trace entries use before
// falling back to Describe.
func (p *Plan) Rec(pc int) *Rec {
	if pc < 0 || pc >= len(p.Recs) {
		return nil
	}
	return &p.Recs[pc]
}

// Describe resolves the position-independent metadata of a single
// instruction: everything in a Rec except the fetch address, uncached
// flag and control-flow target (left 0/false/-1). It allocates nothing
// and is the fallback for pricing trace entries that no longer match
// their plan record (fault-injection harnesses corrupt traces in
// flight; the entry's own instruction stays authoritative).
func Describe(comp *tie.Compiled, in isa.Instr) Rec {
	r := Rec{Instr: in, Target: -1}
	r.Def, r.Valid = isa.Lookup(in.Op)
	r.Use = RegUseOf(comp, in)
	r.PUse = pipeline.Use{
		ReadsRs:  r.Use.ReadsRs,
		ReadsRt:  r.Use.ReadsRt,
		Rs:       in.Rs,
		Rt:       in.Rt,
		IsLoad:   r.Use.IsLoad,
		IsMult:   r.Use.IsMult,
		WritesRd: r.Use.WritesRd,
		Rd:       in.Rd,
	}
	if in.IsCustom() {
		if comp != nil {
			if ci, err := comp.Instruction(in.CustomID); err == nil {
				r.CI = ci
				r.RegfileActive = ci.AccessesGeneralRegfile()
				if w, err := comp.CategoryActiveWeights(in.CustomID); err == nil {
					r.CustomWeights = w
				}
				r.Active = comp.ActiveByInstr[in.CustomID]
				if ci.ImmOperand {
					r.SImm = DecodeImm6(in.Rt)
				}
			}
		}
		return r
	}
	r.IsMult = IsMult(in.Op)
	r.IsShift = IsShift(in.Op)
	switch in.Op {
	case isa.OpMOVI:
		r.Flow, r.FlowK = FlowConst, in.Imm
	case isa.OpADDI:
		r.Flow, r.FlowK = FlowAddImm, in.Imm
	case isa.OpMOV:
		r.Flow = FlowCopy
	}
	r.RegfileActive = r.Def.ReadsRs || r.Def.ReadsRt || r.Def.WritesRd
	if r.Def.Format == isa.FormatBranchRI {
		// The Rt field of a register-immediate branch carries a
		// constant; the signed compares decode it exactly like the
		// immediate-form TIE operand (BLTUI/BGEUI/BBCI/BBSI read the
		// raw field instead and ignore SImm).
		r.SImm = DecodeImm6(in.Rt)
	}
	return r
}

// IsMult reports whether op occupies the iterative 32-bit multiplier.
func IsMult(op isa.Opcode) bool {
	return op == isa.OpMUL || op == isa.OpMULH || op == isa.OpMULHU
}

// IsShift reports whether op occupies the barrel shifter / bit-field
// unit.
func IsShift(op isa.Opcode) bool {
	switch op {
	case isa.OpSLL, isa.OpSLLI, isa.OpSRL, isa.OpSRLI, isa.OpSRA, isa.OpSRAI,
		isa.OpEXTUI, isa.OpNSA, isa.OpNSAU:
		return true
	}
	return false
}
