package plan_test

import (
	"testing"

	"xtenergy/internal/hwlib"
	"xtenergy/internal/isa"
	"xtenergy/internal/plan"
	"xtenergy/internal/tie"
)

// immExt declares an immediate-form and a register-form custom
// instruction over the same adder datapath — the pair the PR-1
// phantom-interlock regression needs.
func immExt(t *testing.T) *tie.Compiled {
	t.Helper()
	dp := []tie.DatapathElem{{
		Component: hwlib.Component{Name: "u", Cat: hwlib.TIEAdd, Width: 32},
	}}
	comp, err := tie.Compile(&tie.Extension{
		Name: "plantest",
		Instructions: []*tie.Instruction{
			{
				Name: "addk", Latency: 1, ReadsGeneral: true, WritesGeneral: true, ImmOperand: true,
				Datapath:  dp,
				Semantics: func(_ *tie.State, op tie.Operands) uint32 { return op.RsVal + uint32(op.Imm) },
			},
			{
				Name: "gadd", Latency: 2, ReadsGeneral: true, WritesGeneral: true,
				Datapath:  dp,
				Semantics: func(_ *tie.State, op tie.Operands) uint32 { return op.RsVal + op.RtVal },
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

// TestImmFormRtNoPhantomRead is the plan-level regression for the PR-1
// phantom-interlock bug: the Rt field of an immediate-form custom
// instruction is a constant, so the record must not present it as a
// bus-latched register read (which would arm the interlock comparator
// whenever the constant aliases the previous load's destination), while
// the register form and the Rs field must keep their genuine reads.
func TestImmFormRtNoPhantomRead(t *testing.T) {
	comp := immExt(t)
	// addk a1, a2, 3 — the constant 3 aliases register a3.
	imm := isa.Instr{Op: isa.OpCUSTOM, CustomID: 0, Rd: 1, Rs: 2, Rt: 3}
	rec := plan.Describe(comp, imm)
	if rec.Use.ReadsRt || rec.PUse.ReadsRt {
		t.Fatalf("imm-form Rt presented as a register read: Use=%+v PUse=%+v", rec.Use, rec.PUse)
	}
	if !rec.Use.ReadsRs || !rec.PUse.ReadsRs {
		t.Fatalf("imm-form must keep its genuine Rs read: %+v", rec.Use)
	}
	if rec.Use.Reads&(1<<3) != 0 {
		t.Fatalf("constant 3 leaked into the architectural read set: %064b", rec.Use.Reads)
	}
	if rec.SImm != 3 {
		t.Fatalf("SImm = %d, want 3", rec.SImm)
	}
	if !plan.ImmFormRt(comp, imm) {
		t.Fatal("ImmFormRt(imm-form custom) = false, want true")
	}

	reg := isa.Instr{Op: isa.OpCUSTOM, CustomID: 1, Rd: 1, Rs: 2, Rt: 3}
	rrec := plan.Describe(comp, reg)
	if !rrec.Use.ReadsRt || rrec.Use.Reads&(1<<3) == 0 {
		t.Fatalf("register-form Rt read lost: %+v", rrec.Use)
	}
	if plan.ImmFormRt(comp, reg) {
		t.Fatal("ImmFormRt(register-form custom) = true, want false")
	}

	// Branch-RI compares carry a constant in Rt through the same
	// encoding; register-register branches do not.
	if !plan.ImmFormRt(nil, isa.Instr{Op: isa.OpBEQI, Rs: 2, Rt: 3}) {
		t.Fatal("ImmFormRt(beqi) = false, want true")
	}
	if plan.ImmFormRt(nil, isa.Instr{Op: isa.OpBEQ, Rs: 2, Rt: 3}) {
		t.Fatal("ImmFormRt(beq) = true, want false")
	}
}

// TestImm6RoundTrip pins the shared 6-bit constant codec: every
// encodable value round-trips, and out-of-range values are rejected —
// the single range check the assembler now relies on.
func TestImm6RoundTrip(t *testing.T) {
	if plan.MinImm6 != -32 || plan.MaxImm6 != 31 {
		t.Fatalf("imm6 range [%d,%d], want [-32,31]", plan.MinImm6, plan.MaxImm6)
	}
	for v := int64(plan.MinImm6); v <= plan.MaxImm6; v++ {
		rt, ok := plan.EncodeImm6(v)
		if !ok {
			t.Fatalf("EncodeImm6(%d) rejected an in-range value", v)
		}
		if got := plan.DecodeImm6(rt); int64(got) != v {
			t.Fatalf("DecodeImm6(EncodeImm6(%d)) = %d", v, got)
		}
	}
	for _, v := range []int64{plan.MinImm6 - 1, plan.MaxImm6 + 1, 1000, -1000} {
		if _, ok := plan.EncodeImm6(v); ok {
			t.Fatalf("EncodeImm6(%d) accepted an out-of-range value", v)
		}
	}
	// The decoder sign-extends only the low 6 bits, mirroring the
	// hardware immediate-generation logic on a full 8-bit field.
	if got := plan.DecodeImm6(0x3F); got != -1 {
		t.Fatalf("DecodeImm6(0x3F) = %d, want -1", got)
	}
}

// TestBuildResolvesTargets checks the static control-flow resolution:
// branch/jump/loop targets come out of the record, not out of re-doing
// pc arithmetic at every consumer.
func TestBuildResolvesTargets(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.OpMOVI, Rd: 2, Imm: 5},      // 0
		{Op: isa.OpBNEZ, Rs: 2, Imm: 2},      // 1 -> 1+1+2 = 4
		{Op: isa.OpJ, Imm: 0},                // 2 -> 0
		{Op: isa.OpLOOP, Rs: 2, Imm: 1},      // 3 -> end 3+1+1 = 5
		{Op: isa.OpADD, Rd: 1, Rs: 2, Rt: 3}, // 4
		{Op: isa.OpRET},                      // 5
	}
	p := plan.Build(code, 0x100, []bool{false, false, false, false, false, true}, nil)
	wantTargets := []int{-1, 4, 0, 5, -1, -1}
	for pc, want := range wantTargets {
		if got := p.Recs[pc].Target; got != want {
			t.Errorf("Recs[%d].Target = %d, want %d", pc, got, want)
		}
	}
	for pc := range code {
		if got, want := p.Recs[pc].FetchAddr, uint32(0x100+4*pc); got != want {
			t.Errorf("Recs[%d].FetchAddr = %#x, want %#x", pc, got, want)
		}
	}
	if p.Recs[4].Uncached || !p.Recs[5].Uncached {
		t.Errorf("uncached flags wrong: %v %v", p.Recs[4].Uncached, p.Recs[5].Uncached)
	}
	if p.Recs[0].IsShift || !p.Recs[0].Valid {
		t.Errorf("movi record misclassified: %+v", p.Recs[0])
	}
}

// TestBuildMatchesDescribe: a plan record differs from the standalone
// Describe record only in its position-dependent fields — the guarantee
// that lets trace-entry consumers fall back to Describe for entries
// that no longer match their record.
func TestBuildMatchesDescribe(t *testing.T) {
	comp := immExt(t)
	code := []isa.Instr{
		{Op: isa.OpL32I, Rd: 3, Rs: 2, Imm: 0},
		{Op: isa.OpCUSTOM, CustomID: 0, Rd: 1, Rs: 2, Rt: 3},
		{Op: isa.OpMUL, Rd: 4, Rs: 3, Rt: 3},
		{Op: isa.OpBEQI, Rs: 4, Rt: 0x3F, Imm: -2},
	}
	p := plan.Build(code, 0, nil, comp)
	for pc, in := range code {
		got := p.Recs[pc]
		want := plan.Describe(comp, in)
		// Neutralize the position-dependent fields.
		got.FetchAddr, got.Uncached, got.Target = 0, false, -1
		if got.Use != want.Use || got.PUse != want.PUse || got.Def != want.Def ||
			got.CI != want.CI || got.SImm != want.SImm ||
			got.IsMult != want.IsMult || got.IsShift != want.IsShift ||
			got.RegfileActive != want.RegfileActive {
			t.Errorf("pc %d: Build rec %+v != Describe rec %+v", pc, got, want)
		}
	}
	// The branch-RI constant decodes through the shared codec.
	if p.Recs[3].SImm != -1 {
		t.Errorf("beqi SImm = %d, want -1", p.Recs[3].SImm)
	}
	// Custom attributes come from the compiled extension.
	if p.Recs[1].CI == nil || p.Recs[1].CI.Name != "addk" {
		t.Fatalf("custom record not resolved: %+v", p.Recs[1].CI)
	}
	w, err := comp.CategoryActiveWeights(0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Recs[1].CustomWeights != w {
		t.Errorf("CustomWeights = %v, want %v", p.Recs[1].CustomWeights, w)
	}
	if p.Recs[2].Use.IsMult != true || p.Recs[2].IsMult != true {
		t.Errorf("mul not classified as multiplier: %+v", p.Recs[2])
	}
}

// TestUndefinedCustomAndInvalidOpcode: plans are built for unvalidated
// programs, so undefined extensions and invalid opcodes must yield
// tolerant records (CI nil, Valid false, no ports) for the simulator
// and xlint to fault on.
func TestUndefinedCustomAndInvalidOpcode(t *testing.T) {
	comp := immExt(t)
	p := plan.Build([]isa.Instr{
		{Op: isa.OpCUSTOM, CustomID: 63, Rd: 1, Rs: 2, Rt: 3},
		{Op: isa.Opcode(250)},
	}, 0, nil, comp)
	if r := p.Recs[0]; r.CI != nil || r.Use != (plan.RegUse{}) {
		t.Errorf("undefined custom must have no ports: %+v", r)
	}
	if r := p.Recs[1]; r.Valid || r.Def != (isa.Def{}) {
		t.Errorf("invalid opcode must yield a zero Def: %+v", r)
	}
	if p.Rec(-1) != nil || p.Rec(2) != nil {
		t.Error("out-of-range Rec lookup must return nil")
	}
	if p.Rec(0) != &p.Recs[0] {
		t.Error("Rec(0) must alias the record")
	}
}

// TestDescribeAllocationFree pins the fallback path used per corrupted
// trace entry: resolving a standalone record allocates nothing.
func TestDescribeAllocationFree(t *testing.T) {
	comp := immExt(t)
	ins := []isa.Instr{
		{Op: isa.OpADD, Rd: 1, Rs: 2, Rt: 3},
		{Op: isa.OpCUSTOM, CustomID: 1, Rd: 1, Rs: 2, Rt: 3},
		{Op: isa.OpL32I, Rd: 3, Rs: 2},
	}
	var sink plan.Rec
	if avg := testing.AllocsPerRun(100, func() {
		for _, in := range ins {
			sink = plan.Describe(comp, in)
		}
	}); avg != 0 {
		t.Errorf("Describe allocates %v objects per call, want 0", avg)
	}
	_ = sink
}
