package engine

import (
	"fmt"
	"strings"

	"xtenergy/internal/core"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/regress"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/xlint"
)

// Artifacts are the *inputs* of a report, not its rendered text: every
// field survives a JSON round-trip exactly (Go float64 marshaling is
// shortest-round-trip), and rendering is shared code, so a cached
// response is byte-identical to a cold one by construction — there is
// no second formatter to drift.

// EstimateArtifact is the cached result of one reference power
// estimation (the xpower path).
type EstimateArtifact struct {
	Workload string                 `json:"workload"`
	Retired  uint64                 `json:"retired"`
	Cycles   uint64                 `json:"cycles"`
	ClockMHz float64                `json:"clock_mhz"`
	TotalPJ  float64                `json:"total_pj"`
	BasePJ   float64                `json:"base_pj"`
	CustomPJ float64                `json:"custom_pj"`
	Rows     []rtlpower.BlockEnergy `json:"rows"`
	// ProfileWindow is nonzero when the request asked for a
	// power-vs-time profile; Profile then holds its windows.
	ProfileWindow uint64                  `json:"profile_window,omitempty"`
	Profile       []rtlpower.ProfilePoint `json:"profile,omitempty"`
}

// Render produces exactly the report `xpower` prints for this
// estimation.
func (a *EstimateArtifact) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s: %d instructions, %d cycles\n\n", a.Workload, a.Retired, a.Cycles)
	b.WriteString(rtlpower.FormatBreakdown(a.Rows, a.ClockMHz, a.Cycles))
	if a.CustomPJ > 0 {
		fmt.Fprintf(&b, "\nbase core: %.3f uJ (%.1f%%), custom hardware: %.3f uJ (%.1f%%)\n",
			a.BasePJ*1e-6, 100*a.BasePJ/a.TotalPJ, a.CustomPJ*1e-6, 100*a.CustomPJ/a.TotalPJ)
	}
	if a.ProfileWindow > 0 {
		b.WriteString("\n")
		b.WriteString(rtlpower.FormatProfile(a.Profile, a.ClockMHz))
	}
	return b.String()
}

// SimulateArtifact is the cached result of one ISS run (the xsim
// path). Vars is always extracted so one artifact serves both the
// plain and the -vars rendering.
type SimulateArtifact struct {
	Workload     string    `json:"workload"`
	Instructions int       `json:"instructions"`
	Stats        iss.Stats `json:"stats"`
	Vars         core.Vars `json:"vars"`
}

// Render produces exactly the report `xsim [-vars]` prints for this
// run.
func (a *SimulateArtifact) Render(vars bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s (%d instructions)\n", a.Workload, a.Instructions)
	b.WriteString(a.Stats.String())
	if vars {
		b.WriteString("macro-model variables:\n")
		for i, v := range a.Vars {
			if v != 0 {
				fmt.Fprintf(&b, "  %-20s %14.1f\n", core.VarName(i), v)
			}
		}
	}
	return b.String()
}

// LintArtifact is the cached result of one static analysis. It holds
// every finding down to note severity; the -notes filter is applied at
// render time, so one artifact serves both renderings.
type LintArtifact struct {
	Prog         string `json:"prog"`
	Instructions int    `json:"instructions"`
	Blocks       int    `json:"blocks"`
	// Warnings counts findings at or above warning severity — the
	// degraded-status trigger.
	Warnings int             `json:"warnings"`
	Findings []xlint.Finding `json:"findings,omitempty"`
}

// Render produces exactly the text `xlint [-notes]` prints, plus
// whether the run is degraded (any warning-or-worse finding).
func (a *LintArtifact) Render(notes bool) (string, bool) {
	minSev := xlint.SevWarn
	if notes {
		minSev = xlint.SevNote
	}
	degraded := a.Warnings > 0
	var b strings.Builder
	for _, f := range a.Findings {
		if f.Sev < minSev {
			continue
		}
		fmt.Fprintf(&b, "%s:%s\n", a.Prog, f)
	}
	if !degraded {
		fmt.Fprintf(&b, "%s: clean (%d instructions, %d blocks)\n", a.Prog, a.Instructions, a.Blocks)
	}
	return b.String(), degraded
}

// charArtifact is the cached result of one full characterization. The
// model is flattened to its plain fields rather than stored through
// MacroModel's own (deliberately lossy) JSON encoding, so the restored
// model carries the full fit diagnostics and standard errors.
type charArtifact struct {
	Coef         core.Vars           `json:"coef"`
	CoefStdErr   core.Vars           `json:"coef_std_err"`
	Fit          *regress.Fit        `json:"fit"`
	Observations []core.Observation  `json:"observations"`
	Config       procgen.Config      `json:"config"`
	Tech         rtlpower.Technology `json:"tech"`
}

func (a *charArtifact) result() *core.CharacterizationResult {
	return &core.CharacterizationResult{
		Model:        &core.MacroModel{Coef: a.Coef, CoefStdErr: a.CoefStdErr, Fit: a.Fit},
		Observations: a.Observations,
		Config:       a.Config,
		Tech:         a.Tech,
	}
}
