package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"

	"xtenergy/internal/core"
	"xtenergy/internal/procgen"
	"xtenergy/internal/regress"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/tie"
)

// Schema versions the canonical request serialization and the artifact
// encodings. Bump it whenever either changes shape: a bumped schema
// changes every digest, so old artifacts are simply never addressed
// again (invalidation by unreachability, not deletion).
const Schema = 1

// envelope is the outermost canonical request record. Binary is the
// SHA-256 of the running executable: two different builds of the
// pipeline never share artifacts, which is what makes it sound to
// identify TIE semantics closures by instruction name and structure —
// within one binary, the spec determines the code.
type envelope struct {
	Schema int    `json:"schema"`
	Binary string `json:"binary"`
	Op     string `json:"op"`
	Req    any    `json:"req"`
}

// canonicalKey serializes one request for digesting. encoding/json is
// canonical here by construction: struct fields marshal in declaration
// order and map keys marshal sorted.
func canonicalKey(op string, req any) ([]byte, error) {
	fp, err := binaryFingerprint()
	if err != nil {
		return nil, err
	}
	return json.Marshal(envelope{Schema: Schema, Binary: fp, Op: op, Req: req})
}

var binFP struct {
	once sync.Once
	hex  string
	err  error
}

// binaryFingerprint hashes the running executable, once per process.
// Failure to resolve it disables caching (the engine bypasses the
// store) rather than risking stale artifacts across code versions.
func binaryFingerprint() (string, error) {
	binFP.once.Do(func() {
		path, err := os.Executable()
		if err != nil {
			binFP.err = err
			return
		}
		f, err := os.Open(path)
		if err != nil {
			binFP.err = err
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			binFP.err = err
			return
		}
		binFP.hex = hex.EncodeToString(h.Sum(nil))
	})
	return binFP.hex, binFP.err
}

// Per-op canonical request records. They cover everything that can
// change the *artifact*; render-only parameters (xpower -j shards,
// xsim -vars, xlint -notes) are deliberately absent so one artifact
// serves every rendering of the same computation.

type estimateReq struct {
	Workload      workloadRec         `json:"workload"`
	Config        procgen.Config      `json:"config"`
	Tech          rtlpower.Technology `json:"tech"`
	ProfileWindow uint64              `json:"profile_window,omitempty"`
}

type simulateReq struct {
	Workload workloadRec    `json:"workload"`
	Config   procgen.Config `json:"config"`
}

type lintReq struct {
	Workload workloadRec    `json:"workload"`
	Config   procgen.Config `json:"config"`
	Disable  []string       `json:"disable,omitempty"`
}

type characterizeReq struct {
	Config    procgen.Config      `json:"config"`
	Tech      rtlpower.Technology `json:"tech"`
	Workloads []workloadRec       `json:"workloads"`
	Regress   regress.Options     `json:"regress"`
}

type buildReq struct {
	Workload workloadRec    `json:"workload"`
	Config   procgen.Config `json:"config"`
}

// workloadRec is the content identity of one workload: name, source
// text, and the full TIE extension structure. Filenames play no part.
type workloadRec struct {
	Name       string   `json:"name"`
	Source     string   `json:"source"`
	Ext        *extRec  `json:"ext,omitempty"`
	LintExempt []string `json:"lint_exempt,omitempty"`
}

type extRec struct {
	Name          string              `json:"name"`
	NumCustomRegs int                 `json:"num_custom_regs"`
	Instructions  []instrRec          `json:"instructions"`
	Tables        map[string][]uint32 `json:"tables,omitempty"`
}

type instrRec struct {
	Name          string  `json:"name"`
	Latency       int     `json:"latency"`
	ReadsGeneral  bool    `json:"reads_general"`
	WritesGeneral bool    `json:"writes_general"`
	ImmOperand    bool    `json:"imm_operand"`
	Datapath      []dpRec `json:"datapath"`
}

type dpRec struct {
	Name    string `json:"name"`
	Cat     int    `json:"cat"`
	Width   int    `json:"width"`
	Entries int    `json:"entries,omitempty"`
	OnBus   bool   `json:"on_bus,omitempty"`
}

func workloadRecord(w core.Workload) workloadRec {
	r := workloadRec{Name: w.Name, Source: w.Source, LintExempt: w.LintExempt}
	if w.Ext != nil {
		r.Ext = extRecord(w.Ext)
	}
	return r
}

func extRecord(e *tie.Extension) *extRec {
	r := &extRec{Name: e.Name, NumCustomRegs: e.NumCustomRegs, Tables: e.Tables}
	for _, in := range e.Instructions {
		ir := instrRec{
			Name: in.Name, Latency: in.Latency,
			ReadsGeneral: in.ReadsGeneral, WritesGeneral: in.WritesGeneral,
			ImmOperand: in.ImmOperand,
		}
		for _, d := range in.Datapath {
			ir.Datapath = append(ir.Datapath, dpRec{
				Name: d.Name, Cat: int(d.Cat), Width: d.Width,
				Entries: d.Entries, OnBus: d.OnBus,
			})
		}
		r.Instructions = append(r.Instructions, ir)
	}
	return r
}

// sortedCodes copies and sorts lint disable codes so flag order does
// not split the cache.
func sortedCodes(codes []string) []string {
	if len(codes) == 0 {
		return nil
	}
	out := make([]string, len(codes))
	copy(out, codes)
	sort.Strings(out)
	return out
}
