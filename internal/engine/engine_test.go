package engine

import (
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"xtenergy/internal/iss"
	"xtenergy/internal/memo"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/workloads"
)

func testSpec(t *testing.T, name string) EstimateSpec {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("workload %q not in registry", name)
	}
	return EstimateSpec{
		Workload: w,
		Config:   procgen.Default(),
		Tech:     rtlpower.FastTechnology(),
	}
}

func newEngine(t *testing.T, o Options) *Engine {
	t.Helper()
	e, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEstimateColdWarmByteIdentity(t *testing.T) {
	e := newEngine(t, Options{})
	var computes atomic.Int64
	e.onCompute = func(string) { computes.Add(1) }

	spec := testSpec(t, "accumulate")
	spec.ProfileWindow = 400
	cold, out, err := e.Estimate(context.Background(), spec)
	if err != nil || out != memo.OutcomeMiss {
		t.Fatalf("cold Estimate: outcome %v, err %v", out, err)
	}
	warm, out, err := e.Estimate(context.Background(), spec)
	if err != nil || out != memo.OutcomeMemHit {
		t.Fatalf("warm Estimate: outcome %v, err %v", out, err)
	}
	if got, want := warm.Render(), cold.Render(); got != want {
		t.Fatalf("warm render differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", want, got)
	}
	if cold.Render() == "" || cold.Cycles == 0 {
		t.Fatalf("implausible artifact: %+v", cold)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("pipeline ran %d times, want 1", n)
	}
}

func TestShardsDoNotSplitTheCache(t *testing.T) {
	e := newEngine(t, Options{})
	spec := testSpec(t, "accumulate")
	if _, out, err := e.Estimate(context.Background(), spec); err != nil || out != memo.OutcomeMiss {
		t.Fatalf("cold: %v, %v", out, err)
	}
	spec.Shards = 4 // render-free performance knob: same digest
	if _, out, err := e.Estimate(context.Background(), spec); err != nil || out != memo.OutcomeMemHit {
		t.Fatalf("sharded request missed the cache: %v, %v", out, err)
	}
}

func TestNoCacheForcesRecompute(t *testing.T) {
	e := newEngine(t, Options{})
	var computes atomic.Int64
	e.onCompute = func(string) { computes.Add(1) }

	spec := testSpec(t, "accumulate")
	cold, _, err := e.Estimate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.NoCache = true
	again, out, err := e.Estimate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if out != memo.OutcomeBypass {
		t.Fatalf("NoCache outcome = %v, want bypass", out)
	}
	if n := computes.Load(); n != 2 {
		t.Fatalf("pipeline ran %d times, want 2 (NoCache must recompute)", n)
	}
	if again.Render() != cold.Render() {
		t.Fatal("recomputed render differs from cached render")
	}
	// NoCache neither reads nor writes: the cached artifact is intact.
	spec.NoCache = false
	if _, out, err := e.Estimate(context.Background(), spec); err != nil || out != memo.OutcomeMemHit {
		t.Fatalf("after NoCache: %v, %v", out, err)
	}
}

func TestThunderingHerd(t *testing.T) {
	e := newEngine(t, Options{})
	var computes atomic.Int64
	e.onCompute = func(string) { computes.Add(1) }

	spec := testSpec(t, "gcd")
	const n = 16
	var wg sync.WaitGroup
	renders := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, _, err := e.Estimate(context.Background(), spec)
			if err != nil {
				errs[i] = err
				return
			}
			renders[i] = a.Render()
		}(i)
	}
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("herd of %d identical requests ran the pipeline %d times, want exactly 1", n, got)
	}
	for i := range renders {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if renders[i] != renders[0] {
			t.Fatalf("request %d rendered differently", i)
		}
	}
	c := e.Counters()
	if c.Misses != 1 {
		t.Fatalf("misses = %d, want 1", c.Misses)
	}
	if c.Coalesced+c.MemHits != n-1 {
		t.Fatalf("coalesced %d + mem hits %d != %d", c.Coalesced, c.MemHits, n-1)
	}
}

// artifactFiles lists the .art entries under the store root.
func artifactFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".art" {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCorruptDiskArtifactRecomputes(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(t, Options{Dir: dir})
	spec := testSpec(t, "gcd")
	cold, _, err := e.Estimate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	files := artifactFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("store holds %d artifacts, want 1", len(files))
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x20
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh engine over the same directory (same process, same binary
	// fingerprint → same digest) must detect the corruption as a typed
	// fault, recompute, and answer identically.
	var faults []error
	e2 := newEngine(t, Options{Dir: dir, OnCorrupt: func(err error) { faults = append(faults, err) }})
	again, out, err := e2.Estimate(context.Background(), spec)
	if err != nil || out != memo.OutcomeMiss {
		t.Fatalf("post-corruption Estimate: %v, %v", out, err)
	}
	if again.Render() != cold.Render() {
		t.Fatal("recomputed render differs from the original")
	}
	if len(faults) != 1 {
		t.Fatalf("OnCorrupt fired %d times, want 1", len(faults))
	}
	if f, ok := iss.AsFault(faults[0]); !ok || f.Kind != iss.FaultArtifact {
		t.Fatalf("corruption fault = %v, want FaultArtifact", faults[0])
	}
	if c := e2.Counters(); c.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", c.Corrupt)
	}

	// The recompute rewrote the entry: a third engine hits disk clean.
	e3 := newEngine(t, Options{Dir: dir})
	if _, out, err := e3.Estimate(context.Background(), spec); err != nil || out != memo.OutcomeDiskHit {
		t.Fatalf("rewritten entry: %v, %v", out, err)
	}
}

func TestSimulateColdWarm(t *testing.T) {
	e := newEngine(t, Options{})
	w, _ := workloads.ByName("gcd")
	spec := SimulateSpec{Workload: w, Config: procgen.Default()}
	cold, out, err := e.Simulate(context.Background(), spec)
	if err != nil || out != memo.OutcomeMiss {
		t.Fatalf("cold: %v, %v", out, err)
	}
	warm, out, err := e.Simulate(context.Background(), spec)
	if err != nil || out != memo.OutcomeMemHit {
		t.Fatalf("warm: %v, %v", out, err)
	}
	for _, vars := range []bool{false, true} {
		if warm.Render(vars) != cold.Render(vars) {
			t.Fatalf("render(vars=%v) differs warm vs cold", vars)
		}
	}
	if cold.Stats.Cycles == 0 || cold.Instructions == 0 {
		t.Fatalf("implausible artifact: %+v", cold)
	}
}

func TestLintColdWarm(t *testing.T) {
	e := newEngine(t, Options{})
	w, _ := workloads.ByName("rs_gffold")
	spec := LintSpec{Workload: w, Config: procgen.Default()}
	cold, out, err := e.Lint(context.Background(), spec)
	if err != nil || out != memo.OutcomeMiss {
		t.Fatalf("cold: %v, %v", out, err)
	}
	warm, out, err := e.Lint(context.Background(), spec)
	if err != nil || out != memo.OutcomeMemHit {
		t.Fatalf("warm: %v, %v", out, err)
	}
	for _, notes := range []bool{false, true} {
		cr, cd := cold.Render(notes)
		wr, wd := warm.Render(notes)
		if cr != wr || cd != wd {
			t.Fatalf("render(notes=%v) differs warm vs cold", notes)
		}
	}
	// Disable codes are part of the identity: a disabled analysis is a
	// different request.
	spec.Disable = []string{"interlock"}
	if _, out, err := e.Lint(context.Background(), spec); err != nil || out != memo.OutcomeMiss {
		t.Fatalf("disabled-code request reused the undisabled artifact: %v, %v", out, err)
	}
}

func TestCharacterizeCache(t *testing.T) {
	if testing.Short() {
		t.Skip("full characterization in -short mode")
	}
	e := newEngine(t, Options{})
	var computes atomic.Int64
	e.onCompute = func(string) { computes.Add(1) }
	spec := CharacterizeSpec{
		Config:    procgen.Default(),
		Tech:      rtlpower.FastTechnology(),
		Workloads: workloads.CharacterizationSuite(),
	}
	cold, out, err := e.Characterize(context.Background(), spec)
	if err != nil || out != memo.OutcomeMiss {
		t.Fatalf("cold: %v, %v", out, err)
	}
	warm, out, err := e.Characterize(context.Background(), spec)
	if err != nil || out != memo.OutcomeMemHit {
		t.Fatalf("warm: %v, %v", out, err)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("characterized %d times, want 1", n)
	}
	if warm.Model.Coef != cold.Model.Coef || warm.Model.CoefStdErr != cold.Model.CoefStdErr {
		t.Fatal("restored model coefficients differ")
	}
	if warm.Model.Fit == nil || warm.Model.Fit.R2 != cold.Model.Fit.R2 ||
		warm.Model.Fit.CondEstimate != cold.Model.Fit.CondEstimate {
		t.Fatal("restored fit diagnostics differ")
	}
	if len(warm.Observations) != len(cold.Observations) {
		t.Fatal("observation count differs")
	}
	for i := range warm.Observations {
		if warm.Observations[i] != cold.Observations[i] {
			t.Fatalf("observation %d differs after round-trip", i)
		}
	}

	// Partial runs are not deterministic functions of the request and
	// must bypass the store.
	spec.Opts.Partial = true
	if _, out, err := e.Characterize(context.Background(), spec); err != nil || out != memo.OutcomeBypass {
		t.Fatalf("partial run: %v, %v", out, err)
	}
}
