// Package engine is the single front door of the estimation service:
// every CLI and every xpowerd session op builds a canonical request
// here, and the engine resolves it through a two-tier content-addressed
// artifact store (internal/memo) with singleflight coalescing — so the
// fastest simulation is the one that never runs, and a thundering herd
// of identical requests costs exactly one pipeline execution.
//
// Not to be confused with internal/cache, the hardware I/D-cache timing
// model of the simulated processor; this package (with internal/memo)
// memoizes estimation results.
//
// Identity is content-addressed: the SHA-256 digest of the
// canonically-serialized request — op, schema version, a fingerprint of
// the running binary, the workload's source text and full TIE extension
// structure, the processor configuration, and the technology — never a
// filename. Misses fall through to the existing pipelines unchanged;
// results are stored as serialized report *inputs* (see artifact.go),
// so cached and uncached renderings are byte-identical by construction.
// A new binary changes every digest, which is the entire invalidation
// story: stale artifacts are unreachable, not hunted down.
package engine

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"

	"xtenergy/internal/core"
	"xtenergy/internal/iss"
	"xtenergy/internal/memo"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/xlint"
)

// maxBuilds bounds the in-memory build cache: compiled (processor,
// program) pairs — and through the program, its predecoded plan IR —
// shared across requests that differ only in render parameters.
const maxBuilds = 64

// Options configures an Engine.
type Options struct {
	// Dir is the on-disk artifact store root; "" keeps the store
	// memory-only.
	Dir string
	// MaxEntries / MaxBytes bound the in-memory tier (0 = memo
	// defaults).
	MaxEntries int
	MaxBytes   int64
	// OnCorrupt observes the typed iss.Fault raised for every corrupt
	// disk entry (the request itself recomputes and succeeds).
	OnCorrupt func(error)
}

// Engine resolves canonical requests against the artifact store and
// shares compiled workload builds across them.
type Engine struct {
	store *memo.Store

	buildMu    sync.Mutex
	builds     map[memo.Digest]*buildEntry
	buildOrder []memo.Digest

	// onCompute, when set, observes every pipeline execution (cache
	// miss or bypass) by op name. Test seam for the herd assertions.
	onCompute func(op string)
}

type buildEntry struct {
	proc *procgen.Processor
	prog *iss.Program
}

// New opens an engine over its artifact store.
func New(o Options) (*Engine, error) {
	st, err := memo.New(memo.Options{
		Dir: o.Dir, MaxEntries: o.MaxEntries, MaxBytes: o.MaxBytes, OnCorrupt: o.OnCorrupt,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{store: st, builds: make(map[memo.Digest]*buildEntry)}, nil
}

// Counters snapshots the artifact store's accounting (hit / miss /
// coalesce / evict / corrupt) — surfaced by `xpowerd health`.
func (e *Engine) Counters() memo.Counters { return e.store.Counters() }

var defaultEngine struct {
	once sync.Once
	e    *Engine
}

// Default is the process-wide engine every CLI and the daemon share.
// Its disk tier lives at $XTENERGY_MEMO_DIR, or the user cache
// directory (<UserCacheDir>/xtenergy/memo) when unset;
// XTENERGY_MEMO_DIR=off keeps the store memory-only. A directory that
// cannot be created degrades to memory-only rather than failing.
func Default() *Engine {
	defaultEngine.once.Do(func() {
		dir := os.Getenv("XTENERGY_MEMO_DIR")
		switch dir {
		case "off":
			dir = ""
		case "":
			if base, err := os.UserCacheDir(); err == nil {
				dir = filepath.Join(base, "xtenergy", "memo")
			}
		}
		e, err := New(Options{Dir: dir})
		if err != nil {
			e, _ = New(Options{}) // memory-only never fails
		}
		defaultEngine.e = e
	})
	return defaultEngine.e
}

// resolve is the shared request path: canonicalize, digest, and answer
// from the store, coalescing concurrent identical requests; a miss runs
// compute and stores its marshaled artifact. NoCache — and a digest
// that cannot be formed (no binary fingerprint) — bypass the store
// entirely. Hits and misses alike decode from the stored bytes, so both
// paths render from the exact same data.
func resolve[A any](ctx context.Context, e *Engine, op string, req any, noCache bool, compute func(context.Context) (*A, error)) (*A, memo.Outcome, error) {
	run := func() (*A, memo.Outcome, error) {
		if e.onCompute != nil {
			e.onCompute(op)
		}
		a, err := compute(ctx)
		return a, memo.OutcomeBypass, err
	}
	if noCache {
		return run()
	}
	key, err := canonicalKey(op, req)
	if err != nil {
		return run()
	}
	data, out, err := e.store.Do(ctx, memo.DigestBytes(key), func(ctx context.Context) ([]byte, error) {
		if e.onCompute != nil {
			e.onCompute(op)
		}
		a, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		return json.Marshal(a)
	})
	if err != nil {
		return nil, out, err
	}
	a := new(A)
	if err := json.Unmarshal(data, a); err != nil {
		// The digest's schema+binary fingerprint should make this
		// unreachable; recompute rather than fail on a decode surprise.
		return run()
	}
	return a, out, nil
}

// build returns the workload's compiled processor and assembled
// program, shared across requests. The pair is read-only during
// simulation (each Simulator owns its registers, memory, TIE state, and
// cache models), and the program's predecoded plan is built once under
// its own lock — so caching here shares the plan IR too.
func (e *Engine) build(w core.Workload, cfg procgen.Config) (*procgen.Processor, *iss.Program, error) {
	key, err := json.Marshal(buildReq{Workload: workloadRecord(w), Config: cfg})
	if err != nil {
		return w.Build(cfg)
	}
	d := memo.DigestBytes(key)
	e.buildMu.Lock()
	if ent, ok := e.builds[d]; ok {
		e.buildMu.Unlock()
		return ent.proc, ent.prog, nil
	}
	e.buildMu.Unlock()
	proc, prog, err := w.Build(cfg)
	if err != nil {
		return nil, nil, err
	}
	e.buildMu.Lock()
	if _, ok := e.builds[d]; !ok {
		e.builds[d] = &buildEntry{proc: proc, prog: prog}
		e.buildOrder = append(e.buildOrder, d)
		if len(e.buildOrder) > maxBuilds {
			delete(e.builds, e.buildOrder[0])
			e.buildOrder = e.buildOrder[1:]
		}
	}
	e.buildMu.Unlock()
	return proc, prog, nil
}

// ---- ops ----

// EstimateSpec is one reference power estimation request. Shards is a
// render-free performance knob (the sharded estimator is bit-identical)
// and does not participate in the digest.
type EstimateSpec struct {
	Workload      core.Workload
	Config        procgen.Config
	Tech          rtlpower.Technology
	Shards        int
	ProfileWindow uint64
	NoCache       bool
}

// Estimate resolves one streamed reference estimation.
func (e *Engine) Estimate(ctx context.Context, spec EstimateSpec) (*EstimateArtifact, memo.Outcome, error) {
	req := estimateReq{
		Workload: workloadRecord(spec.Workload), Config: spec.Config,
		Tech: spec.Tech, ProfileWindow: spec.ProfileWindow,
	}
	return resolve(ctx, e, "estimate", req, spec.NoCache, func(ctx context.Context) (*EstimateArtifact, error) {
		return e.computeEstimate(ctx, spec)
	})
}

func (e *Engine) computeEstimate(ctx context.Context, spec EstimateSpec) (*EstimateArtifact, error) {
	proc, prog, err := e.build(spec.Workload, spec.Config)
	if err != nil {
		return nil, err
	}
	est, err := rtlpower.New(proc, spec.Tech)
	if err != nil {
		return nil, err
	}
	st := est.Stream()
	st.Shards = spec.Shards
	if st.Shards == 0 {
		st.Shards = 1
	}
	var acc *rtlpower.ProfileAccumulator
	if spec.ProfileWindow > 0 {
		acc = rtlpower.NewProfileAccumulator(spec.ProfileWindow)
		st.OnEntry = acc.OnEntry
	}
	res, err := rtlpower.RunStreamed(ctx, iss.New(proc), prog, iss.Options{}, st)
	if err != nil {
		return nil, err
	}
	rep, err := st.Finish()
	if err != nil {
		return nil, err
	}
	rows, err := rep.Breakdown(proc)
	if err != nil {
		return nil, err
	}
	base, custom, err := rep.BaseCustomSplit(proc)
	if err != nil {
		return nil, err
	}
	a := &EstimateArtifact{
		Workload: spec.Workload.Name, Retired: res.Stats.Retired, Cycles: rep.Cycles,
		ClockMHz: spec.Config.ClockMHz, TotalPJ: rep.TotalPJ, BasePJ: base, CustomPJ: custom,
		Rows: rows,
	}
	if acc != nil {
		a.ProfileWindow = spec.ProfileWindow
		a.Profile = acc.Points()
	}
	return a, nil
}

// SimulateSpec is one ISS run request.
type SimulateSpec struct {
	Workload core.Workload
	Config   procgen.Config
	NoCache  bool
}

// Simulate resolves one ISS run.
func (e *Engine) Simulate(ctx context.Context, spec SimulateSpec) (*SimulateArtifact, memo.Outcome, error) {
	req := simulateReq{Workload: workloadRecord(spec.Workload), Config: spec.Config}
	return resolve(ctx, e, "simulate", req, spec.NoCache, func(ctx context.Context) (*SimulateArtifact, error) {
		return e.computeSimulate(ctx, spec)
	})
}

func (e *Engine) computeSimulate(ctx context.Context, spec SimulateSpec) (*SimulateArtifact, error) {
	proc, prog, err := e.build(spec.Workload, spec.Config)
	if err != nil {
		return nil, err
	}
	res, err := iss.New(proc).RunContext(ctx, prog, iss.Options{})
	if err != nil {
		return nil, err
	}
	vars, err := core.Extract(proc.TIE, &res.Stats)
	if err != nil {
		return nil, err
	}
	return &SimulateArtifact{
		Workload: spec.Workload.Name, Instructions: len(prog.Code),
		Stats: res.Stats, Vars: vars,
	}, nil
}

// LintSpec is one static-analysis request. Disable codes must already
// be validated (xlint.ValidateCodes); they are digested sorted, so flag
// order does not split the cache.
type LintSpec struct {
	Workload core.Workload
	Config   procgen.Config
	Disable  []string
	NoCache  bool
}

// Lint resolves one static analysis.
func (e *Engine) Lint(ctx context.Context, spec LintSpec) (*LintArtifact, memo.Outcome, error) {
	req := lintReq{
		Workload: workloadRecord(spec.Workload), Config: spec.Config,
		Disable: sortedCodes(spec.Disable),
	}
	return resolve(ctx, e, "lint", req, spec.NoCache, func(ctx context.Context) (*LintArtifact, error) {
		return e.computeLint(ctx, spec)
	})
}

func (e *Engine) computeLint(ctx context.Context, spec LintSpec) (*LintArtifact, error) {
	// The analyzer is not cancellable; honor ctx at the phase
	// boundaries (both phases are bounded by program size).
	if cerr := ctx.Err(); cerr != nil {
		return nil, &iss.Fault{Kind: iss.FaultCancelled, Prog: spec.Workload.Name, PC: -1, Msg: "lint cancelled", Err: cerr}
	}
	proc, prog, err := e.build(spec.Workload, spec.Config)
	if err != nil {
		return nil, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, &iss.Fault{Kind: iss.FaultCancelled, Prog: spec.Workload.Name, PC: -1, Msg: "lint cancelled", Err: cerr}
	}
	var opts []xlint.Option
	if len(spec.Disable) > 0 {
		opts = append(opts, xlint.Disable(spec.Disable...))
	}
	rep := xlint.Analyze(prog, proc, opts...)
	return &LintArtifact{
		Prog: prog.Name, Instructions: len(prog.Code), Blocks: len(rep.CFG.Blocks),
		Warnings: rep.Count(xlint.SevWarn), Findings: rep.Filter(xlint.SevNote),
	}, nil
}

// CharacterizeSpec is one full macro-model characterization request.
type CharacterizeSpec struct {
	Config    procgen.Config
	Tech      rtlpower.Technology
	Workloads []core.Workload
	Opts      core.Options
	NoCache   bool
}

// Characterize resolves one characterization — the fitted-model cache.
// Runs that are not deterministic functions of the request (Partial
// degradation, an injected Measure leg) bypass the store and always
// compute.
func (e *Engine) Characterize(ctx context.Context, spec CharacterizeSpec) (*core.CharacterizationResult, memo.Outcome, error) {
	if spec.Opts.Partial || spec.Opts.Measure != nil {
		if e.onCompute != nil {
			e.onCompute("characterize")
		}
		cr, err := core.Characterize(ctx, spec.Config, spec.Tech, spec.Workloads, spec.Opts)
		return cr, memo.OutcomeBypass, err
	}
	req := characterizeReq{Config: spec.Config, Tech: spec.Tech, Regress: spec.Opts.Regress}
	for _, w := range spec.Workloads {
		req.Workloads = append(req.Workloads, workloadRecord(w))
	}
	a, out, err := resolve(ctx, e, "characterize", req, spec.NoCache, func(ctx context.Context) (*charArtifact, error) {
		cr, err := core.Characterize(ctx, spec.Config, spec.Tech, spec.Workloads, spec.Opts)
		if err != nil {
			return nil, err
		}
		return &charArtifact{
			Coef: cr.Model.Coef, CoefStdErr: cr.Model.CoefStdErr, Fit: cr.Model.Fit,
			Observations: cr.Observations, Config: cr.Config, Tech: cr.Tech,
		}, nil
	})
	if err != nil {
		return nil, out, err
	}
	return a.result(), out, nil
}
