package rtlpower

import (
	"errors"
	"testing"

	"xtenergy/internal/asm"
	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
)

// mixedSrc exercises every structural block class — loads, stores,
// multiply, shifts, ALU, branches — so the differential run covers
// active and idle segments of all blocks. (workloads would be the
// natural source here but would import-cycle back into rtlpower.)
const mixedSrc = `start:
    movi a2, 300
    movi a3, 0x1000
    movi a4, 12345
    movi a12, 0
loop:
    l32i a5, a3, 0
    add a5, a5, a4
    mul a6, a5, a4
    srli a7, a6, 3
    xor a12, a12, a7
    s32i a7, a3, 4
    slli a4, a4, 1
    addi a4, a4, 7
    addi a2, a2, -1
    bnez a2, loop
    movi a6, 0x2000
    s32i a12, a6, 0
    ret
.data 0x1000
    .word 0xdeadbeef
    .word 0
`

type onEntryRec struct {
	idx    int
	cycles uint64
	pj     float64
}

// streamRun consumes trace through a fresh StreamEstimator in ragged
// batches, recording every OnEntry callback.
func streamRun(t *testing.T, proc *procgen.Processor, trace []iss.TraceEntry, shards int, seq bool) (Report, []onEntryRec) {
	t.Helper()
	e, err := New(proc, FastTechnology())
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stream()
	st.forceSeq = seq
	st.Shards = shards
	var recs []onEntryRec
	st.OnEntry = func(idx int, cycles uint64, pj float64) {
		recs = append(recs, onEntryRec{idx, cycles, pj})
	}
	for i, n := 0, 1; i < len(trace); i, n = i+n, n%517+3 {
		end := i + n
		if end > len(trace) {
			end = len(trace)
		}
		if err := st.Consume(trace[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := st.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return rep, recs
}

// TestStreamLanesMatchSequential is the end-to-end bit-exactness proof
// for the lane kernel: the chunked jump-ahead path — single-walk and
// sharded — must produce a Report, per-block energies, and per-entry
// OnEntry energies bit-identical to the sequential reference path
// (forceSeq), which is the pre-kernel simulateNets walk unchanged.
func TestStreamLanesMatchSequential(t *testing.T) {
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.New(proc.TIE).Assemble("t", mixedSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := iss.New(proc).Run(prog, iss.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}

	wantRep, wantRecs := streamRun(t, proc, res.Trace, 0, true)

	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"lanes", 0},
		{"sharded", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			gotRep, gotRecs := streamRun(t, proc, res.Trace, tc.shards, false)
			if gotRep.TotalPJ != wantRep.TotalPJ {
				t.Errorf("TotalPJ = %v, want %v (bit-identical)", gotRep.TotalPJ, wantRep.TotalPJ)
			}
			if gotRep.Cycles != wantRep.Cycles {
				t.Errorf("Cycles = %d, want %d", gotRep.Cycles, wantRep.Cycles)
			}
			for i := range wantRep.PerBlockPJ {
				if gotRep.PerBlockPJ[i] != wantRep.PerBlockPJ[i] {
					t.Errorf("PerBlockPJ[%d] = %v, want %v", i, gotRep.PerBlockPJ[i], wantRep.PerBlockPJ[i])
				}
			}
			if len(gotRecs) != len(wantRecs) {
				t.Fatalf("OnEntry called %d times, want %d", len(gotRecs), len(wantRecs))
			}
			for i := range wantRecs {
				if gotRecs[i] != wantRecs[i] {
					t.Fatalf("OnEntry[%d] = %+v, want %+v (bit-identical)", i, gotRecs[i], wantRecs[i])
				}
			}
		})
	}
}

// TestStreamFaultCarriesTraceIndex pins the typed entry-level fault:
// an estimation failure mid-batch surfaces as an iss.Fault naming the
// faulting entry's global trace index and PC, with every entry before
// it fully folded — on both the chunked and the sequential paths.
func TestStreamFaultCarriesTraceIndex(t *testing.T) {
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.New(proc.TIE).Assemble("t", `
    movi a2, 200
    movi a3, 17
loop:
    add a4, a3, a2
    xor a3, a4, a3
    addi a2, a2, -1
    bnez a2, loop
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := iss.New(proc).Run(prog, iss.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	const badIdx = 100
	trace := append([]iss.TraceEntry(nil), res.Trace...)
	if len(trace) <= badIdx {
		t.Fatalf("trace too short: %d entries", len(trace))
	}
	// An undefined custom opcode: no extension is attached, so pricing
	// this entry must fail.
	trace[badIdx].Instr = isa.Instr{Op: isa.OpCUSTOM, CustomID: 63}

	for _, seq := range []bool{false, true} {
		e, err := New(proc, FastTechnology())
		if err != nil {
			t.Fatal(err)
		}
		st := e.Stream()
		st.forceSeq = seq
		folded := 0
		st.OnEntry = func(idx int, _ uint64, _ float64) {
			if idx != folded {
				t.Fatalf("seq=%v: OnEntry idx %d, want %d", seq, idx, folded)
			}
			folded++
		}
		consumeErr := st.Consume(trace)
		if consumeErr == nil {
			t.Fatalf("seq=%v: Consume accepted an undefined custom opcode", seq)
		}
		var f *iss.Fault
		if !errors.As(consumeErr, &f) {
			t.Fatalf("seq=%v: error %v is not an iss.Fault", seq, consumeErr)
		}
		if f.Kind != iss.FaultIllegalInstr {
			t.Errorf("seq=%v: fault kind %v, want FaultIllegalInstr", seq, f.Kind)
		}
		if f.PC != int(trace[badIdx].PC) {
			t.Errorf("seq=%v: fault PC %d, want %d", seq, f.PC, trace[badIdx].PC)
		}
		if want := "stream estimator: trace entry 100"; f.Msg != want {
			t.Errorf("seq=%v: fault msg %q, want %q", seq, f.Msg, want)
		}
		if f.Err == nil {
			t.Errorf("seq=%v: fault has no cause", seq)
		}
		if folded != badIdx {
			t.Errorf("seq=%v: %d entries folded before the fault, want %d", seq, folded, badIdx)
		}
	}
}
