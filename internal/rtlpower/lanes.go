package rtlpower

// The lane walker is the parallel core of the reference estimator. A
// chunk of trace entries compiles (see scheduleEntry) into a flat list
// of segments — runs of RNG draws sharing one toggle threshold — laid
// end to end on the single conceptual xorshift32 draw chain. The walker
// splits that chain into 8 equal stripes whose start states come from
// JumpAhead, clips segments at stripe boundaries into per-lane records,
// and advances all 8 lanes together: the serial latency-bound xorshift
// recurrence becomes 8 independent recurrences and the loop runs at ILP
// (or SIMD, see lanes_amd64.s) speed. Every lane enumerates exactly the
// states the sequential walk would have produced at its draw offsets,
// and toggle counts are integers accumulated per segment, so partition
// sums are bit-identical to the sequential counts.

// laneRec is one stripe-clipped run of draws under a single threshold.
// A segment split by a stripe boundary becomes two records with the
// same slot; the counts are additive. The 12-byte layout is indexed
// directly by lanes_amd64.s.
type laneRec struct {
	thr  uint32 // toggle threshold (raw; the SIMD walker biases it on load)
	rem  uint32 // number of draws in the run, ≥ 1
	slot uint32 // counts index receiving this run's toggles
}

// walk8 is the argument block of one 8-lane walk. Lane j owns records
// recs[off[j] : off[j]+cnt[j]] and starts from state st[j]; the walker
// adds each record's toggle count into counts[rec.slot]. off and cnt
// are consumed in place; st is overwritten with the lanes' final
// states, which for lanes that drained early include sentinel idle
// draws — diagnostic only, chunk RNG continuity uses JumpAhead. Field
// offsets are hardcoded in lanes_amd64.s and pinned by TestWalk8Layout.
type walk8 struct {
	recs   []laneRec
	counts []uint32
	off    [8]uint32
	cnt    [8]uint32
	st     [8]uint32
}

// walk16 is the argument block of one 16-lane walk, the AVX2 tier's
// form of walk8: lane j owns records recs[off[j] : off[j]+cnt[j]]
// starting from state st[j]. Field offsets are hardcoded in
// lanes16_amd64.s and pinned by TestWalk16Layout.
type walk16 struct {
	recs   []laneRec
	counts []uint32
	off    [16]uint32
	cnt    [16]uint32
	st     [16]uint32
}

// walk32 is the argument block of one 32-lane walk, the AVX-512 tier's
// form of walk8. Field offsets are hardcoded in lanes32_amd64.s and
// pinned by TestWalk32Layout.
type walk32 struct {
	recs   []laneRec
	counts []uint32
	off    [32]uint32
	cnt    [32]uint32
	st     [32]uint32
}

// sentinelRem marks an exhausted lane. Chunk totals are capped below
// 2^31 draws (see maxChunkDraws), so a sentinel can never decay below a
// live lane's remaining count.
const sentinelRem = ^uint32(0)

// countStripes8Go is the portable walker: the 8 lanes advance in
// lockstep rounds of m = min(remaining-in-current-record) draws, so the
// inner loop is 8 independent xorshift chains with branchless toggle
// counting and no per-draw bookkeeping. Exhausted lanes idle on a
// sentinel record with threshold 0 (counts nothing) until all lanes
// drain. It is the reference implementation the amd64 SIMD walker is
// differentially tested against, and the production walker elsewhere.
func countStripes8Go(w *walk8) {
	var rem, thr, acc, slot [8]uint32
	active := 0
	for j := 0; j < 8; j++ {
		rem[j] = sentinelRem
		if w.cnt[j] > 0 {
			r := w.recs[w.off[j]]
			rem[j], thr[j], slot[j] = r.rem, r.thr, r.slot
			w.off[j]++
			w.cnt[j]--
			active++
		}
	}
	s0, s1, s2, s3 := w.st[0], w.st[1], w.st[2], w.st[3]
	s4, s5, s6, s7 := w.st[4], w.st[5], w.st[6], w.st[7]
	for active > 0 {
		m := rem[0]
		for j := 1; j < 8; j++ {
			if rem[j] < m {
				m = rem[j]
			}
		}
		t0, t1, t2, t3 := uint64(thr[0]), uint64(thr[1]), uint64(thr[2]), uint64(thr[3])
		t4, t5, t6, t7 := uint64(thr[4]), uint64(thr[5]), uint64(thr[6]), uint64(thr[7])
		var c0, c1, c2, c3, c4, c5, c6, c7 uint32
		for i := uint32(0); i < m; i++ {
			s0 ^= s0 << 13
			s0 ^= s0 >> 17
			s0 ^= s0 << 5
			c0 += uint32((uint64(s0) - t0) >> 63)
			s1 ^= s1 << 13
			s1 ^= s1 >> 17
			s1 ^= s1 << 5
			c1 += uint32((uint64(s1) - t1) >> 63)
			s2 ^= s2 << 13
			s2 ^= s2 >> 17
			s2 ^= s2 << 5
			c2 += uint32((uint64(s2) - t2) >> 63)
			s3 ^= s3 << 13
			s3 ^= s3 >> 17
			s3 ^= s3 << 5
			c3 += uint32((uint64(s3) - t3) >> 63)
			s4 ^= s4 << 13
			s4 ^= s4 >> 17
			s4 ^= s4 << 5
			c4 += uint32((uint64(s4) - t4) >> 63)
			s5 ^= s5 << 13
			s5 ^= s5 >> 17
			s5 ^= s5 << 5
			c5 += uint32((uint64(s5) - t5) >> 63)
			s6 ^= s6 << 13
			s6 ^= s6 >> 17
			s6 ^= s6 << 5
			c6 += uint32((uint64(s6) - t6) >> 63)
			s7 ^= s7 << 13
			s7 ^= s7 >> 17
			s7 ^= s7 << 5
			c7 += uint32((uint64(s7) - t7) >> 63)
		}
		acc[0] += c0
		acc[1] += c1
		acc[2] += c2
		acc[3] += c3
		acc[4] += c4
		acc[5] += c5
		acc[6] += c6
		acc[7] += c7
		for j := 0; j < 8; j++ {
			rem[j] -= m
			if rem[j] != 0 {
				continue
			}
			w.counts[slot[j]] += acc[j]
			acc[j] = 0
			if w.cnt[j] > 0 {
				r := w.recs[w.off[j]]
				rem[j], thr[j], slot[j] = r.rem, r.thr, r.slot
				w.off[j]++
				w.cnt[j]--
			} else {
				rem[j], thr[j], slot[j] = sentinelRem, 0, 0
				active--
			}
		}
	}
	w.st[0], w.st[1], w.st[2], w.st[3] = s0, s1, s2, s3
	w.st[4], w.st[5], w.st[6], w.st[7] = s4, s5, s6, s7
}

// countStripesWideGo is the portable lockstep walker at any lane width
// up to 32: the width-generic twin of countStripes8Go, used as the
// reference implementation and non-amd64 fallback for the wide (AVX2 /
// AVX-512) argument blocks. Within a round the lanes advance
// sequentially instead of interleaved, which changes nothing observable
// — per-lane chains are independent and counts are integers.
func countStripesWideGo(recs []laneRec, counts []uint32, off, cnt, st []uint32) {
	width := len(off)
	var rem, thr, acc, slot [32]uint32
	active := 0
	for j := 0; j < width; j++ {
		rem[j] = sentinelRem
		if cnt[j] > 0 {
			r := recs[off[j]]
			rem[j], thr[j], slot[j] = r.rem, r.thr, r.slot
			off[j]++
			cnt[j]--
			active++
		}
	}
	for active > 0 {
		m := rem[0]
		for j := 1; j < width; j++ {
			if rem[j] < m {
				m = rem[j]
			}
		}
		for j := 0; j < width; j++ {
			s := st[j]
			t := uint64(thr[j])
			c := uint32(0)
			for i := uint32(0); i < m; i++ {
				s ^= s << 13
				s ^= s >> 17
				s ^= s << 5
				c += uint32((uint64(s) - t) >> 63)
			}
			st[j] = s
			acc[j] += c
		}
		for j := 0; j < width; j++ {
			rem[j] -= m
			if rem[j] != 0 {
				continue
			}
			counts[slot[j]] += acc[j]
			acc[j] = 0
			if cnt[j] > 0 {
				r := recs[off[j]]
				rem[j], thr[j], slot[j] = r.rem, r.thr, r.slot
				off[j]++
				cnt[j]--
			} else {
				rem[j], thr[j], slot[j] = sentinelRem, 0, 0
				active--
			}
		}
	}
}

// countStripes16Go and countStripes32Go run the portable walker over
// the wide argument blocks; they are the differential references for
// the AVX2 and AVX-512 kernels.
func countStripes16Go(w *walk16) {
	countStripesWideGo(w.recs, w.counts, w.off[:], w.cnt[:], w.st[:])
}

func countStripes32Go(w *walk32) {
	countStripesWideGo(w.recs, w.counts, w.off[:], w.cnt[:], w.st[:])
}
