package rtlpower_test

import (
	"context"
	"fmt"
	"testing"

	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/workloads"
)

// reportsIdentical requires bit-identical reports: the streaming
// estimator performs exactly the same float operations in the same
// order as the materialized walk, so even == on floats must hold.
func reportsIdentical(t *testing.T, want, got rtlpower.Report) {
	t.Helper()
	if got.TotalPJ != want.TotalPJ {
		t.Errorf("TotalPJ = %v, want %v (bit-identical)", got.TotalPJ, want.TotalPJ)
	}
	if got.Cycles != want.Cycles {
		t.Errorf("Cycles = %d, want %d", got.Cycles, want.Cycles)
	}
	if len(got.PerBlockPJ) != len(want.PerBlockPJ) {
		t.Fatalf("PerBlockPJ length %d, want %d", len(got.PerBlockPJ), len(want.PerBlockPJ))
	}
	for i := range want.PerBlockPJ {
		if got.PerBlockPJ[i] != want.PerBlockPJ[i] {
			t.Errorf("PerBlockPJ[%d] = %v, want %v (bit-identical)", i, got.PerBlockPJ[i], want.PerBlockPJ[i])
		}
	}
}

// TestStreamEquivalence asserts that for every built-in workload the
// streaming estimator — fed the trace in ragged batches — produces a
// Report bit-identical to EstimateTrace under the same technology seed,
// and that the fully streamed path (RunStreamed, where the ISS and the
// estimator overlap through the bounded batch channel) matches too.
func TestStreamEquivalence(t *testing.T) {
	cfg := procgen.Default()
	tech := rtlpower.FastTechnology()
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			proc, prog, err := w.Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := iss.New(proc).Run(prog, iss.Options{CollectTrace: true})
			if err != nil {
				t.Fatal(err)
			}

			eRef, err := rtlpower.New(proc, tech)
			if err != nil {
				t.Fatal(err)
			}
			want, err := eRef.EstimateTrace(res.Trace)
			if err != nil {
				t.Fatal(err)
			}

			// Incremental consumption in deliberately ragged batch sizes:
			// batch boundaries must not affect the estimate.
			eStream, err := rtlpower.New(proc, tech)
			if err != nil {
				t.Fatal(err)
			}
			st := eStream.Stream()
			for i, n := 0, 1; i < len(res.Trace); i, n = i+n, n%97+3 {
				end := i + n
				if end > len(res.Trace) {
					end = len(res.Trace)
				}
				if err := st.Consume(res.Trace[i:end]); err != nil {
					t.Fatal(err)
				}
			}
			got, err := st.Finish()
			if err != nil {
				t.Fatal(err)
			}
			reportsIdentical(t, want, got)

			// End-to-end streamed run: fresh simulator feeding the
			// estimator through the bounded batch channel.
			eProg, err := rtlpower.New(proc, tech)
			if err != nil {
				t.Fatal(err)
			}
			gotProg, resProg, err := eProg.EstimateProgram(context.Background(), prog, iss.Options{})
			if err != nil {
				t.Fatal(err)
			}
			reportsIdentical(t, want, gotProg)
			if resProg.Trace != nil {
				t.Error("EstimateProgram materialized a trace")
			}
			if resProg.Stats.Cycles != gotProg.Cycles {
				t.Errorf("Stats.Cycles %d != Report.Cycles %d", resProg.Stats.Cycles, gotProg.Cycles)
			}
		})
	}
}

// TestTraceSinkBatching checks the ISS side of the pipeline: the sink
// sees every retired instruction exactly once, in order, in batches of
// at most TraceBatchSize, and the streamed entries equal the
// materialized trace.
func TestTraceSinkBatching(t *testing.T) {
	w := workloads.ReedSolomonBase()
	proc, prog, err := w.Build(procgen.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := iss.New(proc).Run(prog, iss.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []iss.TraceEntry
	batches := 0
	_, err = iss.New(proc).Run(prog, iss.Options{TraceSink: func(batch []iss.TraceEntry) error {
		if len(batch) == 0 || len(batch) > iss.TraceBatchSize {
			t.Fatalf("batch of %d entries", len(batch))
		}
		batches++
		streamed = append(streamed, batch...)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Trace) {
		t.Fatalf("streamed %d entries, trace has %d", len(streamed), len(res.Trace))
	}
	if want := (len(streamed) + iss.TraceBatchSize - 1) / iss.TraceBatchSize; batches != want {
		t.Fatalf("sink called %d times, want %d", batches, want)
	}
	for i := range streamed {
		if streamed[i] != res.Trace[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, streamed[i], res.Trace[i])
		}
	}
}

// TestStreamConsumeAllocationFree pins the hot path: once a stream is
// set up, consuming batches allocates nothing, which is what makes the
// pipeline O(1) in retired-instruction count.
func TestStreamConsumeAllocationFree(t *testing.T) {
	proc, trace, _ := runTrace(t, loopSrc, nil)
	e, err := rtlpower.New(proc, testTech())
	if err != nil {
		t.Fatal(err)
	}
	batch := trace
	if len(batch) > iss.TraceBatchSize {
		batch = batch[:iss.TraceBatchSize]
	}
	st := e.Stream()
	if avg := testing.AllocsPerRun(20, func() {
		if err := st.Consume(batch); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("Consume allocates %v objects per call, want 0", avg)
	}
}

// BenchmarkStreamEstimatorMemory demonstrates that the streaming path's
// heap usage is independent of instruction count: allocs/op stays at
// the fixed stream-setup cost whether an op consumes 1k or 100k
// instructions (run with -benchmem).
func BenchmarkStreamEstimatorMemory(b *testing.B) {
	w := workloads.ReedSolomonBase()
	proc, prog, err := w.Build(procgen.Default())
	if err != nil {
		b.Fatal(err)
	}
	res, err := iss.New(proc).Run(prog, iss.Options{CollectTrace: true})
	if err != nil {
		b.Fatal(err)
	}
	batch := res.Trace
	if len(batch) > iss.TraceBatchSize {
		batch = batch[:iss.TraceBatchSize]
	}
	e, err := rtlpower.New(proc, rtlpower.FastTechnology())
	if err != nil {
		b.Fatal(err)
	}
	for _, instrs := range []int{1_000, 100_000} {
		b.Run(fmt.Sprintf("instrs=%d", instrs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st := e.Stream()
				for consumed := 0; consumed < instrs; consumed += len(batch) {
					if err := st.Consume(batch); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := st.Finish(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
