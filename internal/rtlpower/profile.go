package rtlpower

import (
	"fmt"
	"strings"

	"xtenergy/internal/iss"
)

// ProfilePoint is one window of a power-versus-time profile.
type ProfilePoint struct {
	// StartCycle is the first cycle of the window.
	StartCycle uint64
	// Cycles is the window length (the last window may be short).
	Cycles uint64
	// EnergyPJ is the energy consumed in the window.
	EnergyPJ float64
}

// PowerMW returns the window's average power at the given clock.
func (p ProfilePoint) PowerMW(clockMHz float64) float64 {
	if p.Cycles == 0 {
		return 0
	}
	return p.EnergyPJ / float64(p.Cycles) * clockMHz * 1e6 * 1e-9
}

// Profile runs the reference energy simulation windowed over time,
// returning one point per window of the given cycle length — the power
// waveform view an RTL power tool produces. The sum of the window
// energies equals the total of EstimateTrace on the same trace.
func (e *Estimator) Profile(trace []iss.TraceEntry, windowCycles uint64) ([]ProfilePoint, error) {
	if windowCycles == 0 {
		return nil, fmt.Errorf("rtlpower: zero window length")
	}
	if len(trace) == 0 {
		return nil, fmt.Errorf("rtlpower: empty trace")
	}
	var out []ProfilePoint
	cur := ProfilePoint{}
	// One shared estimation pass: windows are cut at instruction
	// granularity (an instruction's cycles and energy land in the window
	// containing its first cycle), and the window energies sum exactly
	// to EstimateTrace's total.
	_, err := e.estimateTrace(trace, func(_ int, cycles uint64, pj float64) {
		cur.Cycles += cycles
		cur.EnergyPJ += pj
		if cur.Cycles >= windowCycles {
			out = append(out, cur)
			cur = ProfilePoint{StartCycle: cur.StartCycle + cur.Cycles}
		}
	})
	if err != nil {
		return nil, err
	}
	if cur.Cycles > 0 {
		out = append(out, cur)
	}
	return out, nil
}

// FormatProfile renders a power waveform as a text chart.
func FormatProfile(points []ProfilePoint, clockMHz float64) string {
	var b strings.Builder
	b.WriteString("power profile\n")
	var peak float64
	for _, p := range points {
		if mw := p.PowerMW(clockMHz); mw > peak {
			peak = mw
		}
	}
	if peak == 0 {
		peak = 1
	}
	for _, p := range points {
		mw := p.PowerMW(clockMHz)
		bar := strings.Repeat("#", int(mw/peak*50+0.5))
		fmt.Fprintf(&b, "%8d %8.1f mW %s\n", p.StartCycle, mw, bar)
	}
	return b.String()
}
