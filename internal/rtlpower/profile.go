package rtlpower

import (
	"fmt"
	"strings"

	"xtenergy/internal/iss"
)

// ProfilePoint is one window of a power-versus-time profile.
type ProfilePoint struct {
	// StartCycle is the first cycle of the window.
	StartCycle uint64
	// Cycles is the window length (the last window may be short).
	Cycles uint64
	// EnergyPJ is the energy consumed in the window.
	EnergyPJ float64
}

// PowerMW returns the window's average power at the given clock.
func (p ProfilePoint) PowerMW(clockMHz float64) float64 {
	if p.Cycles == 0 {
		return 0
	}
	return p.EnergyPJ / float64(p.Cycles) * clockMHz * 1e6 * 1e-9
}

// ProfileAccumulator builds a power-vs-time profile incrementally from
// streamed per-entry energies. Hook OnEntry into a StreamEstimator to
// derive the profile from the same single estimation pass that produces
// the Report; the window energies then sum exactly to the report total.
type ProfileAccumulator struct {
	window uint64
	cur    ProfilePoint
	points []ProfilePoint
}

// NewProfileAccumulator returns an accumulator cutting windows of the
// given cycle length. Windows are cut at instruction granularity: an
// instruction's cycles and energy land in the window containing its
// first cycle.
func NewProfileAccumulator(windowCycles uint64) *ProfileAccumulator {
	return &ProfileAccumulator{window: windowCycles}
}

// OnEntry folds one retired instruction into the profile; it has the
// signature of StreamEstimator.OnEntry.
func (a *ProfileAccumulator) OnEntry(_ int, cycles uint64, pj float64) {
	a.cur.Cycles += cycles
	a.cur.EnergyPJ += pj
	if a.cur.Cycles >= a.window {
		a.points = append(a.points, a.cur)
		a.cur = ProfilePoint{StartCycle: a.cur.StartCycle + a.cur.Cycles}
	}
}

// Points flushes any trailing partial window and returns the profile.
func (a *ProfileAccumulator) Points() []ProfilePoint {
	if a.cur.Cycles > 0 {
		a.points = append(a.points, a.cur)
		a.cur = ProfilePoint{StartCycle: a.cur.StartCycle + a.cur.Cycles}
	}
	return a.points
}

// Profile runs the reference energy simulation windowed over time,
// returning one point per window of the given cycle length — the power
// waveform view an RTL power tool produces. The sum of the window
// energies equals the total of EstimateTrace on the same trace.
func (e *Estimator) Profile(trace []iss.TraceEntry, windowCycles uint64) ([]ProfilePoint, error) {
	if windowCycles == 0 {
		return nil, fmt.Errorf("rtlpower: zero window length")
	}
	if len(trace) == 0 {
		return nil, fmt.Errorf("rtlpower: empty trace")
	}
	acc := NewProfileAccumulator(windowCycles)
	st := e.Stream()
	st.OnEntry = acc.OnEntry
	if err := st.Consume(trace); err != nil {
		return nil, err
	}
	if _, err := st.Finish(); err != nil {
		return nil, err
	}
	return acc.Points(), nil
}

// FormatProfile renders a power waveform as a text chart.
func FormatProfile(points []ProfilePoint, clockMHz float64) string {
	var b strings.Builder
	b.WriteString("power profile\n")
	var peak float64
	for _, p := range points {
		if mw := p.PowerMW(clockMHz); mw > peak {
			peak = mw
		}
	}
	if peak == 0 {
		peak = 1
	}
	for _, p := range points {
		mw := p.PowerMW(clockMHz)
		bar := strings.Repeat("#", int(mw/peak*50+0.5))
		fmt.Fprintf(&b, "%8d %8.1f mW %s\n", p.StartCycle, mw, bar)
	}
	return b.String()
}
