//go:build !amd64 && !arm64

package rtlpower

// countStripes8 runs one 8-lane walk; without a SIMD implementation it
// is the portable lockstep walker, still ILP-bound instead of
// latency-bound.
func countStripes8(w *walk8) { countStripes8Go(w) }
