// AVX2 form of the stripe walker: 16 lanes in two 8-wide YMM xorshift32
// vectors (see lanes.go for the contract and countStripesWideGo for the
// reference implementation).
//
// Lane layout: Y0 holds lanes 0-7, Y1 lanes 8-15. The unsigned compare
// "state < threshold" is the signed VPCMPGTD after biasing both sides
// by 0x80000000 (thresholds once at record load, states per draw via
// Y7). Unlike the SSE2 kernel, the remaining-draw counters also live in
// YMM registers (Y8/Y9): the per-round min reduction is a VPMINUD tree,
// the round decrement a VPSUBD, and drained lanes fall out of a
// VPCMPEQD-against-zero sign mask — the scalar sweep then touches only
// the lanes whose bit is set, found by BSF. Exhausted lanes idle on a
// sentinel (rem=~0, biased threshold INT32_MIN, never counted); chunk
// totals are capped below 2^31 draws so decaying sentinels never reach
// a live range.
//
// Frame locals: remv[16] at -256(SP), count dump cbuf[16] at -192(SP),
// biased thresholds thrv[16] at -128(SP), slot[16] at -64(SP). The
// thrv/slot arrays are authoritative (edited at record load, vectors
// reloaded from them); remv/cbuf are dumped from the registers each
// round before the scalar sweep edits them.
// walk16 field offsets (pinned by TestWalk16Layout): recs.ptr +0,
// counts.ptr +24, off +48, cnt +112, st +176.

#include "textflag.h"

// func countStripes16AVX2(w *walk16)
TEXT ·countStripes16AVX2(SB), NOSPLIT, $256-8
	MOVQ w+0(FP), R9
	MOVQ 0(R9), SI             // recs data
	MOVQ 24(R9), DI            // counts data
	XORQ R15, R15              // live lane count

	// Load each lane's first record (or a sentinel).
	XORQ R12, R12
initlane:
	MOVL $0xFFFFFFFF, remv-256(SP)(R12*4)
	MOVL $0x80000000, thrv-128(SP)(R12*4)
	MOVL $0, slot-64(SP)(R12*4)
	MOVL 112(R9)(R12*4), CX    // cnt[j]
	TESTL CX, CX
	JZ initnext
	DECL CX
	MOVL CX, 112(R9)(R12*4)
	MOVL 48(R9)(R12*4), BX     // off[j]
	LEAL 1(BX), CX
	MOVL CX, 48(R9)(R12*4)
	LEAQ (BX)(BX*2), AX        // record at recs + off*12
	MOVL 0(SI)(AX*4), CX       // thr
	XORL $0x80000000, CX
	MOVL CX, thrv-128(SP)(R12*4)
	MOVL 4(SI)(AX*4), CX       // rem
	MOVL CX, remv-256(SP)(R12*4)
	MOVL 8(SI)(AX*4), CX       // slot
	MOVL CX, slot-64(SP)(R12*4)
	INCQ R15
initnext:
	INCQ R12
	CMPQ R12, $16
	JLT initlane

	VMOVDQU 176(R9), Y0        // states, lanes 0-7
	VMOVDQU 208(R9), Y1        // states, lanes 8-15
	VMOVDQU thrv-128(SP), Y2   // biased thresholds, lanes 0-7
	VMOVDQU thrv-96(SP), Y3    // biased thresholds, lanes 8-15
	VMOVDQU remv-256(SP), Y8   // remaining draws, lanes 0-7
	VMOVDQU remv-224(SP), Y9   // remaining draws, lanes 8-15
	MOVL $0x80000000, AX
	VMOVD AX, X7
	VPBROADCASTD X7, Y7        // sign-bias broadcast
	VPXOR Y4, Y4, Y4           // toggle counters, lanes 0-7
	VPXOR Y5, Y5, Y5           // toggle counters, lanes 8-15
	VPXOR Y14, Y14, Y14        // zero, for drained-lane compares

round:
	TESTQ R15, R15
	JZ walkdone

	// m = unsigned min over the 16 remaining-draw counters.
	VPMINUD Y8, Y9, Y10
	VEXTRACTI128 $1, Y10, X11
	VPMINUD X11, X10, X10
	VPSHUFD $0xEE, X10, X11
	VPMINUD X11, X10, X10
	VPSHUFD $0x55, X10, X11
	VPMINUD X11, X10, X10
	VMOVD X10, DX              // m >= 1

	// rem -= m; collect the drained-lane bitmask in R13.
	VPBROADCASTD X10, Y12
	VPSUBD Y12, Y8, Y8
	VPSUBD Y12, Y9, Y9
	VPCMPEQD Y14, Y8, Y10
	VMOVMSKPS Y10, AX
	VPCMPEQD Y14, Y9, Y10
	VMOVMSKPS Y10, BX
	SHLQ $8, BX
	ORQ BX, AX
	MOVQ AX, R13

inner:
	VPSLLD $13, Y0, Y6
	VPSLLD $13, Y1, Y10
	VPXOR Y6, Y0, Y0
	VPXOR Y10, Y1, Y1
	VPSRLD $17, Y0, Y6
	VPSRLD $17, Y1, Y10
	VPXOR Y6, Y0, Y0
	VPXOR Y10, Y1, Y1
	VPSLLD $5, Y0, Y6
	VPSLLD $5, Y1, Y10
	VPXOR Y6, Y0, Y0
	VPXOR Y10, Y1, Y1
	VPXOR Y7, Y0, Y6           // biased states 0-7
	VPXOR Y7, Y1, Y10          // biased states 8-15
	VPCMPGTD Y6, Y2, Y6        // thr_b > st_b  <=>  st < thr
	VPCMPGTD Y10, Y3, Y10
	VPSUBD Y6, Y4, Y4
	VPSUBD Y10, Y5, Y5
	DECL DX
	JNZ inner

	// Dump counters and remainders; the mask-driven sweep below edits
	// the drained lanes in place (thrv/slot are already authoritative).
	VMOVDQU Y4, cbuf-192(SP)
	VMOVDQU Y5, cbuf-160(SP)
	VMOVDQU Y8, remv-256(SP)
	VMOVDQU Y9, remv-224(SP)

drain:
	BSFQ R13, R12              // j = lowest drained lane
	LEAQ -1(R13), AX
	ANDQ AX, R13               // clear that bit
	MOVL slot-64(SP)(R12*4), AX
	MOVL cbuf-192(SP)(R12*4), BX
	ADDL BX, (DI)(AX*4)        // counts[slot[j]] += counter[j]
	MOVL $0, cbuf-192(SP)(R12*4)
	MOVL 112(R9)(R12*4), CX    // cnt[j]
	TESTL CX, CX
	JZ lanesent
	DECL CX
	MOVL CX, 112(R9)(R12*4)
	MOVL 48(R9)(R12*4), BX     // off[j]
	LEAL 1(BX), CX
	MOVL CX, 48(R9)(R12*4)
	LEAQ (BX)(BX*2), AX
	MOVL 0(SI)(AX*4), CX
	XORL $0x80000000, CX
	MOVL CX, thrv-128(SP)(R12*4)
	MOVL 4(SI)(AX*4), CX
	MOVL CX, remv-256(SP)(R12*4)
	MOVL 8(SI)(AX*4), CX
	MOVL CX, slot-64(SP)(R12*4)
	JMP drainnext
lanesent:
	MOVL $0xFFFFFFFF, remv-256(SP)(R12*4)
	MOVL $0x80000000, thrv-128(SP)(R12*4)
	MOVL $0, slot-64(SP)(R12*4)
	DECQ R15
drainnext:
	TESTQ R13, R13
	JNZ drain

	// Reinstall the vectors with drained lanes updated.
	VMOVDQU cbuf-192(SP), Y4
	VMOVDQU cbuf-160(SP), Y5
	VMOVDQU thrv-128(SP), Y2
	VMOVDQU thrv-96(SP), Y3
	VMOVDQU remv-256(SP), Y8
	VMOVDQU remv-224(SP), Y9
	JMP round

walkdone:
	VMOVDQU Y0, 176(R9)
	VMOVDQU Y1, 208(R9)
	VZEROUPPER
	RET
