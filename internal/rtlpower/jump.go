package rtlpower

// The reference estimator's toggle process draws one xorshift32 value
// per net per cycle (see simulateNets). xorshift32 is linear over
// GF(2): each step multiplies the 32-bit state, viewed as a bit vector,
// by a fixed invertible 32×32 bit matrix M (shifts and xors are linear
// maps). Jumping the generator k states ahead is therefore a
// multiplication by M^k, computable in O(32·log k) word operations from
// the precomputed binary powers M^(2^b) — no draw in between is ever
// materialized. This is what lets the stream estimator cut one serial
// RNG chain into independent lanes and shards whose start states are
// exact, so the parallel walk enumerates bit-for-bit the same states as
// the sequential reference walk.

// xorshiftStep advances the toggle RNG by one draw. It must stay in
// lockstep with the inline copies in simulateNets, the lane walkers,
// and lanes_amd64.s.
func xorshiftStep(s uint32) uint32 {
	s ^= s << 13
	s ^= s >> 17
	s ^= s << 5
	return s
}

// jumpMats[b] holds M^(2^b) column-major: jumpMats[b][i] is the image
// of the i'th basis state under 2^b xorshift steps. 64 powers cover any
// uint64 jump distance.
var jumpMats [64][32]uint32

func init() {
	for i := 0; i < 32; i++ {
		jumpMats[0][i] = xorshiftStep(1 << i)
	}
	for b := 1; b < 64; b++ {
		for i := 0; i < 32; i++ {
			jumpMats[b][i] = matVec(&jumpMats[b-1], jumpMats[b-1][i])
		}
	}
}

// matVec multiplies a column-major GF(2) matrix by a state vector: the
// xor of the columns selected by the set bits of v.
func matVec(m *[32]uint32, v uint32) uint32 {
	var acc uint32
	for i := 0; i < 32; i++ {
		acc ^= m[i] & -(v >> i & 1)
	}
	return acc
}

// JumpAhead returns the xorshift32 state exactly k draws ahead of
// state, in O(32·log k) word operations. JumpAhead(s, 0) == s, and
// JumpAhead(s, k) equals k applications of xorshiftStep for every k.
func JumpAhead(state uint32, k uint64) uint32 {
	for b := 0; k != 0; b, k = b+1, k>>1 {
		if k&1 != 0 {
			state = matVec(&jumpMats[b], state)
		}
	}
	return state
}
