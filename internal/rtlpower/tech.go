// Package rtlpower is the RTL-level reference power estimator — the
// stand-in for "ModelSim + Sente WattWatcher on the synthesized RTL" in
// the paper's characterization flow (Fig. 2, step 5).
//
// It consumes the dynamic execution trace recorded by the ISS and
// performs a structural, cycle-by-cycle energy simulation of the
// generated processor's block netlist. Each block is modeled as a
// population of nets whose per-cycle toggles are drawn from a
// deterministic pseudo-random process biased by the *actual data
// switching activity* on the operand/result buses, so the resulting
// energy is data dependent and not exactly linear in the macro-model's
// variables — just like real gate-level power. The per-net work is also
// what makes the reference estimator slow relative to the macro-model
// path, reproducing the paper's ~three-orders-of-magnitude speedup gap
// honestly rather than by a sleep.
package rtlpower

import (
	"fmt"

	"xtenergy/internal/hwlib"
	"xtenergy/internal/procgen"
)

// BlockParams are the technology parameters of one base-block kind.
type BlockParams struct {
	// Nets is the modeled net count at Detail 1.0 (a reduced-resolution
	// stand-in for the block's gate count).
	Nets int
	// ActivePJ is the target mean energy per active cycle (at nominal
	// 50% data switching).
	ActivePJ float64
	// IdlePJ is the target mean energy per idle cycle (clock loading and
	// leakage).
	IdlePJ float64
}

// Technology holds the "silicon truth" of the synthesized processor: the
// per-block energy parameters the macro-model characterization tries to
// recover. Energies are in picojoules.
type Technology struct {
	// Blocks maps each base block kind to its parameters.
	Blocks [procgen.NumBaseBlockKinds]BlockParams

	// CustomUnitPJ is the mean energy per active cycle of a custom
	// hardware component with complexity 1 (a 32-bit-normalized
	// instance), per category. The defaults are seeded from the paper's
	// Table I so the recovered coefficients land near the published
	// values.
	CustomUnitPJ [hwlib.NumCategories]float64
	// CustomIdleFrac is the idle energy of a custom block as a fraction
	// of its active energy.
	CustomIdleFrac float64
	// CustomNetsPerUnit is the modeled net count of a custom component
	// per unit complexity at Detail 1.0.
	CustomNetsPerUnit int

	// SwitchingWeight is the fraction of active energy that scales with
	// observed operand-bus switching activity (0 disables data
	// dependence; 1 makes active energy range over [0.5x, 1.5x]).
	SwitchingWeight float64

	// Detail scales all net counts: expected energies are invariant, but
	// runtime and sampling variance scale with it. 1.0 is full
	// resolution; the default technology uses 0.25; tests may use less.
	Detail float64

	// Seed initializes the deterministic toggle-sampling generator.
	Seed uint32
}

// DefaultTechnology returns the reference technology: a 0.25 µm-class,
// 187 MHz core whose per-cycle energy lands in the few-hundred-pJ range,
// with custom-hardware unit energies taken from the paper's Table I.
func DefaultTechnology() Technology {
	var t Technology
	t.Blocks[procgen.BlockFetch] = BlockParams{Nets: 1200, ActivePJ: 60, IdlePJ: 6}
	t.Blocks[procgen.BlockDecode] = BlockParams{Nets: 1500, ActivePJ: 38, IdlePJ: 5}
	t.Blocks[procgen.BlockRegfile] = BlockParams{Nets: 2400, ActivePJ: 52, IdlePJ: 8}
	t.Blocks[procgen.BlockALU] = BlockParams{Nets: 1800, ActivePJ: 55, IdlePJ: 5}
	t.Blocks[procgen.BlockShifter] = BlockParams{Nets: 900, ActivePJ: 48, IdlePJ: 3}
	t.Blocks[procgen.BlockMult] = BlockParams{Nets: 2600, ActivePJ: 170, IdlePJ: 7}
	t.Blocks[procgen.BlockLSU] = BlockParams{Nets: 1100, ActivePJ: 48, IdlePJ: 4}
	t.Blocks[procgen.BlockICache] = BlockParams{Nets: 3200, ActivePJ: 95, IdlePJ: 18}
	t.Blocks[procgen.BlockDCache] = BlockParams{Nets: 3200, ActivePJ: 105, IdlePJ: 18}
	t.Blocks[procgen.BlockBus] = BlockParams{Nets: 800, ActivePJ: 160, IdlePJ: 3}
	t.Blocks[procgen.BlockPipeCtl] = BlockParams{Nets: 700, ActivePJ: 18, IdlePJ: 4}
	t.Blocks[procgen.BlockClock] = BlockParams{Nets: 1000, ActivePJ: 90, IdlePJ: 0}

	// Paper Table I, custom hardware library rows.
	t.CustomUnitPJ = [hwlib.NumCategories]float64{
		hwlib.Multiplier:     152.0,
		hwlib.AddSubCmp:      70.0,
		hwlib.LogicRedMux:    12.0,
		hwlib.Shifter:        377.0,
		hwlib.CustomRegister: 177.0,
		hwlib.TIEMult:        165.0,
		hwlib.TIEMac:         190.0,
		hwlib.TIEAdd:         69.0,
		hwlib.TIECsa:         37.0,
		hwlib.Table:          27.0,
	}
	t.CustomIdleFrac = 0.06
	t.CustomNetsPerUnit = 1200
	t.SwitchingWeight = 0.15
	t.Detail = 0.25
	t.Seed = 0x2003_0307 // DATE 2003
	return t
}

// FastTechnology returns the same energy model at reduced net
// resolution, for unit tests that exercise the full flow quickly.
// Expected energies match DefaultTechnology; sampling variance is a
// little higher.
func FastTechnology() Technology {
	t := DefaultTechnology()
	t.Detail = 0.05
	return t
}

// Validate checks the technology parameters.
func (t Technology) Validate() error {
	if t.Detail <= 0 || t.Detail > 4 {
		return fmt.Errorf("rtlpower: detail %g out of range (0,4]", t.Detail)
	}
	if t.SwitchingWeight < 0 || t.SwitchingWeight > 1 {
		return fmt.Errorf("rtlpower: switching weight %g out of range [0,1]", t.SwitchingWeight)
	}
	if t.CustomIdleFrac < 0 || t.CustomIdleFrac > 0.5 {
		return fmt.Errorf("rtlpower: custom idle fraction %g out of range [0,0.5]", t.CustomIdleFrac)
	}
	if t.CustomNetsPerUnit <= 0 {
		return fmt.Errorf("rtlpower: custom nets per unit must be positive")
	}
	for k, b := range t.Blocks {
		if b.Nets <= 0 || b.ActivePJ < 0 || b.IdlePJ < 0 {
			return fmt.Errorf("rtlpower: invalid parameters for block kind %s: %+v", procgen.BlockKind(k), b)
		}
	}
	return nil
}
