package rtlpower

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"

	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/plan"
	"xtenergy/internal/procgen"
)

// StreamEstimator is the incremental form of the reference estimator:
// instead of walking a materialized []iss.TraceEntry, it consumes the
// execution trace batch by batch as the ISS retires instructions
// (iss.Options.TraceSink) and carries the per-block energy accumulators,
// the previous-entry switching state, and the xorshift toggle-RNG state
// across calls. For the same technology seed and the same entry
// sequence it produces a Report bit-identical to EstimateTrace, in O(1)
// memory regardless of how many instructions are consumed.
//
// A StreamEstimator is a single estimation pass: Consume any number of
// batches in retirement order, then Finish once. It is not safe for
// concurrent use; obtain one per run via Estimator.Stream.
type StreamEstimator struct {
	e *Estimator

	// OnEntry, if non-nil, is invoked after each consumed instruction
	// with its zero-based trace index, its cycle count and its energy.
	// Used by the windowed power profile; leave nil otherwise.
	OnEntry func(idx int, cycles uint64, pj float64)

	rng      uint32
	perBlock []float64
	activity []int // active cycles per block for the current instruction
	cycles   uint64
	entries  uint64
	prev     iss.TraceEntry
	havePrev bool

	// pl is the predecoded plan of the program being streamed, attached
	// by RunStreamed; entries are priced from its records. When nil (or
	// when an entry no longer matches its record), consumeEntry falls
	// back to describing the entry's instruction into scratch.
	pl      *plan.Plan
	scratch plan.Rec

	icPen, dcPen int
}

// Stream starts a fresh incremental estimation pass.
func (e *Estimator) Stream() *StreamEstimator {
	return &StreamEstimator{
		e:        e,
		rng:      e.tech.Seed | 1,
		perBlock: make([]float64, len(e.blocks)),
		activity: make([]int, len(e.blocks)),
		icPen:    e.proc.Config.ICache.MissPenalty,
		dcPen:    e.proc.Config.DCache.MissPenalty,
	}
}

// Consume folds a batch of retired instructions into the estimate. The
// batch slice may be reused by the caller after Consume returns; it
// allocates nothing.
func (s *StreamEstimator) Consume(batch []iss.TraceEntry) error {
	for i := range batch {
		if err := s.consumeEntry(&batch[i]); err != nil {
			return err
		}
	}
	return nil
}

// recFor returns the plan record describing te's instruction: the
// prebuilt record when the entry still matches the attached plan, or a
// standalone description into the estimator's scratch record otherwise
// (no plan attached, or a trace altered by a fault-injection harness —
// the entry's own instruction stays authoritative). Allocates nothing.
func (s *StreamEstimator) recFor(te *iss.TraceEntry) *plan.Rec {
	if s.pl != nil {
		if r := s.pl.Rec(int(te.PC)); r != nil && r.Instr == te.Instr {
			return r
		}
	}
	s.scratch = plan.Describe(s.e.proc.TIE, te.Instr)
	return &s.scratch
}

// consumeEntry simulates every structural block for every cycle of one
// retired instruction.
func (s *StreamEstimator) consumeEntry(te *iss.TraceEntry) error {
	e := s.e
	idx := e.kindIdx

	cyc := int(te.Cycles)
	if cyc <= 0 {
		cyc = 1
	}
	s.cycles += uint64(cyc)

	// Data switching activity on the operand/result buses relative
	// to the previous instruction: the data-dependent term a linear
	// macro-model cannot see.
	sw := 0.5
	if s.havePrev {
		h := bits.OnesCount32(te.RsVal^s.prev.RsVal) +
			bits.OnesCount32(te.RtVal^s.prev.RtVal) +
			bits.OnesCount32(te.Result^s.prev.Result)
		sw = float64(h) / 96
	}
	s.prev = *te
	s.havePrev = true

	for i := range s.activity {
		s.activity[i] = 0
	}
	activity := s.activity

	rec := s.recFor(te)
	in := rec.Instr
	d := rec.Def

	// Always-on blocks.
	activity[idx[procgen.BlockClock]] = cyc
	activity[idx[procgen.BlockPipeCtl]] = cyc
	activity[idx[procgen.BlockFetch]] = cyc
	activity[idx[procgen.BlockDecode]] = 1

	// Front end.
	if te.Uncached {
		activity[idx[procgen.BlockBus]] += iss.UncachedFetchPenalty
	} else {
		a := 1
		if te.ICMiss {
			a += s.icPen
			activity[idx[procgen.BlockBus]] += s.icPen
		}
		activity[idx[procgen.BlockICache]] = a
	}

	// Register file.
	if rec.RegfileActive {
		activity[idx[procgen.BlockRegfile]] = 1
	}

	// Execution units and memory pipeline.
	switch {
	case in.IsCustom():
		ci := rec.CI
		if ci == nil {
			// Cold path: re-query the extension so callers get the
			// original undefined-instruction error.
			_, err := e.proc.TIE.Instruction(in.CustomID)
			return err
		}
		for _, ci2 := range rec.Active {
			activity[e.proc.CustomBlockBase+ci2] += ci.Latency
		}
	case rec.IsMult:
		if mi, ok := idx[procgen.BlockMult]; ok {
			activity[mi] = d.Cycles
		} else {
			activity[idx[procgen.BlockALU]] = d.Cycles
		}
	case rec.IsShift:
		activity[idx[procgen.BlockShifter]] = 1
	case d.Class == isa.ClassArith:
		activity[idx[procgen.BlockALU]] = d.Cycles
	case d.Class == isa.ClassBranch:
		activity[idx[procgen.BlockALU]] = 1
	case d.Class == isa.ClassLoad || d.Class == isa.ClassStore:
		a := 1
		if te.DCMiss {
			a += s.dcPen
			activity[idx[procgen.BlockBus]] += s.dcPen
		}
		activity[idx[procgen.BlockLSU]] = a
		activity[idx[procgen.BlockDCache]] = a
	}

	// Base-to-custom side effect: custom hardware latched off the
	// shared operand buses switches when base arithmetic drives them
	// (paper Fig. 1 Example 1).
	if !in.IsCustom() && d.Class == isa.ClassArith {
		for _, ci2 := range e.proc.TIE.BusTapped {
			activity[e.proc.CustomBlockBase+ci2]++
		}
	}

	// Simulate every block for every cycle of this instruction.
	pAct := pActiveNominal * (1 + e.tech.SwitchingWeight*(2*sw-1))
	var entryPJ float64
	for bi := range e.blocks {
		bm := &e.blocks[bi]
		act := activity[bi]
		if act > cyc {
			act = cyc
		}
		if act > 0 {
			pj := s.simulateNets(bm.nets, act, pAct) * bm.activePJNet
			s.perBlock[bi] += pj
			entryPJ += pj
		}
		if idle := cyc - act; idle > 0 {
			pj := s.simulateNets(bm.nets, idle, pIdle) * bm.idlePJNet
			s.perBlock[bi] += pj
			entryPJ += pj
		}
	}
	if s.OnEntry != nil {
		s.OnEntry(int(s.entries), uint64(cyc), entryPJ)
	}
	s.entries++
	return nil
}

// simulateNets advances the toggle process of a net population for the
// given number of cycles and returns the number of observed toggles.
// This per-net work is what a gate-level power simulator fundamentally
// does, and is what makes the reference path slow.
func (s *StreamEstimator) simulateNets(nets, cycles int, p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	threshold := uint32(p * float64(1<<32-1))
	toggles := 0
	st := s.rng
	for c := 0; c < cycles; c++ {
		for n := 0; n < nets; n++ {
			// xorshift32
			st ^= st << 13
			st ^= st >> 17
			st ^= st << 5
			if st < threshold {
				toggles++
			}
		}
	}
	s.rng = st
	return float64(toggles)
}

// Finish closes the pass and returns the accumulated report.
func (s *StreamEstimator) Finish() (Report, error) {
	if s.entries == 0 {
		return Report{}, errors.New("rtlpower: empty trace (was the ISS run with CollectTrace or a TraceSink?)")
	}
	var total float64
	for _, v := range s.perBlock {
		total += v
	}
	return Report{TotalPJ: total, PerBlockPJ: s.perBlock, Cycles: s.cycles}, nil
}

// streamBatchBuffers bounds the number of trace batches in flight
// between the simulator and the estimator in RunStreamed. Memory is
// therefore capped at streamBatchBuffers*iss.TraceBatchSize entries per
// run, independent of how many instructions retire.
const streamBatchBuffers = 4

// errStreamAborted is returned to the simulator's TraceSink once the
// consumer has failed, so the run stops instead of simulating on.
var errStreamAborted = errors.New("rtlpower: stream estimator failed; aborting simulation")

// Consumer receives the execution trace batch by batch in retirement
// order. *StreamEstimator is the production implementation; the chaos
// harness wraps one to corrupt, stall, or drop batches. A Consumer used
// with RunStreamed must return promptly or watch the run's context:
// a Consume call that blocks forever deadlocks the stream shutdown.
type Consumer interface {
	Consume(batch []iss.TraceEntry) error
}

// safeConsume delivers one batch, recovering a panicking consumer into
// a typed fault so a broken (or chaos-sabotaged) estimator cannot tear
// down the process.
func safeConsume(c Consumer, batch []iss.TraceEntry) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &iss.Fault{Kind: iss.FaultPanic, PC: -1, Msg: fmt.Sprintf("trace consumer panicked: %v", r)}
		}
	}()
	return c.Consume(batch)
}

// RunStreamed executes prog on sim while c (usually a *StreamEstimator)
// estimates it concurrently: the simulator's TraceSink copies each
// retired batch into one of a fixed ring of buffers and hands it to a
// consumer goroutine over a bounded channel, so simulation overlaps
// with per-net estimation and the trace is never materialized. Batch
// boundaries do not affect the estimate, so the result is deterministic
// and bit-identical to EstimateTrace on the same run. Any
// CollectTrace/TraceSink already in opts is overridden. The caller
// still owns the consumer and, for a StreamEstimator, must call Finish.
//
// Cancelling ctx aborts the run within one batch boundary with a
// FaultCancelled fault (the simulator polls the context, and a sink
// blocked on a stalled consumer unblocks on ctx.Done). The consumer
// goroutine and both channels are always drained before RunStreamed
// returns — cancellation leaks nothing.
func RunStreamed(ctx context.Context, sim *iss.Simulator, prog *iss.Program, opts iss.Options, c Consumer) (*iss.Result, error) {
	if st, ok := c.(*StreamEstimator); ok && st.pl == nil {
		st.pl = prog.Plan(st.e.proc.TIE)
	}
	free := make(chan []iss.TraceEntry, streamBatchBuffers)
	for i := 0; i < streamBatchBuffers; i++ {
		free <- make([]iss.TraceEntry, 0, iss.TraceBatchSize)
	}
	work := make(chan []iss.TraceEntry, streamBatchBuffers)

	var (
		consumeErr error
		failed     atomic.Bool
		done       = make(chan struct{})
	)
	go func() {
		defer close(done)
		for b := range work {
			if consumeErr == nil {
				if err := safeConsume(c, b); err != nil {
					consumeErr = err
					failed.Store(true)
				}
			}
			free <- b[:0]
		}
	}()

	opts.CollectTrace = false
	opts.TraceSink = func(batch []iss.TraceEntry) error {
		if failed.Load() {
			return errStreamAborted
		}
		select {
		case buf := <-free:
			// work is as deep as the buffer ring, so this send never
			// blocks.
			work <- append(buf, batch...)
			return nil
		case <-ctx.Done():
			// The consumer is stalled (all buffers in flight) and the
			// run's deadline expired, or the run was cancelled: abort
			// at this batch boundary instead of waiting forever.
			return &iss.Fault{Kind: iss.FaultCancelled, PC: -1, Msg: "trace stream stalled or cancelled", Err: ctx.Err()}
		}
	}
	res, runErr := sim.RunContext(ctx, prog, opts)
	close(work)
	<-done
	if consumeErr != nil {
		return nil, consumeErr
	}
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}
