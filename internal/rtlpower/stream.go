package rtlpower

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/plan"
	"xtenergy/internal/procgen"
)

// StreamEstimator is the incremental form of the reference estimator:
// instead of walking a materialized []iss.TraceEntry, it consumes the
// execution trace batch by batch as the ISS retires instructions
// (iss.Options.TraceSink) and carries the per-block energy accumulators,
// the previous-entry switching state, and the xorshift toggle-RNG state
// across calls. For the same technology seed and the same entry
// sequence it produces a Report bit-identical to EstimateTrace, in O(1)
// memory regardless of how many instructions are consumed.
//
// Internally each consumed chunk is compiled into a draw schedule —
// the per-block segments of toggle-RNG draws an entry implies are a
// pure function of the trace entry and its plan record — and the
// schedule's one serial draw chain is then counted by jump-ahead lanes
// (see lanes.go and jump.go) instead of one latency-bound xorshift
// recurrence — 8, 16, or 32 lanes wide depending on the selected
// kernel tier (see kernel.go). The lanes enumerate exactly the states the
// sequential walk would, toggle counts are integers, and the energy
// fold replays the float operations in the sequential order, so
// reports, per-block energies, and per-entry (OnEntry) energies are
// bit-identical to the sequential path.
//
// A StreamEstimator is a single estimation pass: Consume any number of
// batches in retirement order, then Finish once. It is not safe for
// concurrent use; obtain one per run via Estimator.Stream.
type StreamEstimator struct {
	e *Estimator

	// OnEntry, if non-nil, is invoked after each consumed instruction
	// with its zero-based trace index, its cycle count and its energy.
	// Used by the windowed power profile; leave nil otherwise.
	OnEntry func(idx int, cycles uint64, pj float64)

	// Shards enables the opt-in sharded kernel: when > 1, each chunk's
	// draw chain is additionally split across up to Shards worker
	// goroutines (each running its own lane walk from exact
	// jump-ahead start states), giving multicore scaling on a single
	// program. Per-segment toggle counts are integers and additive, so
	// the result stays bit-identical to the single-goroutine walk.
	// 0 or 1 leaves the kernel on the calling goroutine.
	Shards int

	rng      uint32
	perBlock []float64
	activity []int // active cycles per block for the current instruction
	cycles   uint64
	entries  uint64
	prev     iss.TraceEntry
	havePrev bool

	// pl is the predecoded plan of the program being streamed, attached
	// by RunStreamed; entries are priced from its records. When nil (or
	// when an entry no longer matches its record), the entry falls
	// back to the estimator's Describe cache.
	pl *plan.Plan

	icPen, dcPen int

	thrIdle   uint32 // toggle threshold of the idle process, fixed per pass
	totalNets uint64 // Σ nets over all blocks: draws per simulated cycle
	sched     *schedule
	forceSeq  bool // tests: pin the sequential reference path
}

// Stream starts a fresh incremental estimation pass.
func (e *Estimator) Stream() *StreamEstimator {
	var totalNets uint64
	for i := range e.blocks {
		totalNets += uint64(e.blocks[i].nets)
	}
	return &StreamEstimator{
		e:         e,
		rng:       e.tech.Seed | 1,
		perBlock:  make([]float64, len(e.blocks)),
		activity:  make([]int, len(e.blocks)),
		icPen:     e.proc.Config.ICache.MissPenalty,
		dcPen:     e.proc.Config.DCache.MissPenalty,
		thrIdle:   toggleThreshold(pIdle),
		totalNets: totalNets,
	}
}

// Lane-kernel sizing. Every block draws exactly cyc draws per net each
// entry (active + idle split), so a chunk's draw total is
// Σcycles × Σnets — known before any state is mutated.
const (
	// laneMinDraws is the chunk size below which stripe clipping and
	// jump-ahead setup cost more than scalar drawing.
	laneMinDraws = 4096
	// maxChunkDraws caps the lane path: lane records and counts are
	// 32-bit, and exhausted-lane sentinels must stay above any live
	// remainder (see sentinelRem). Chunks past the cap — hundreds of
	// millions of draws in 256 entries, i.e. pathological per-entry
	// cycle counts — take the sequential path instead.
	maxChunkDraws = 1 << 30
	// shardMinDraws is the chunk size below which goroutine fan-out
	// isn't worth the synchronization.
	shardMinDraws = 1 << 16
	// shardMinLaneDraws keeps sharded stripes long enough that walker
	// setup stays amortized, bounding the effective shard count.
	shardMinLaneDraws = 512
)

// toggleThreshold maps a toggle probability to the strict upper bound
// its draws are compared against. This is the one conversion both the
// sequential and the lane paths must share bit-for-bit.
func toggleThreshold(p float64) uint32 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return uint32(p * float64(1<<32-1))
}

// segRec is one compiled draw segment. The three fields live in a
// single struct so the chunk compiler's hot append and the clip loop's
// reads touch one cache line per segment instead of three parallel
// arrays.
type segRec struct {
	thr   uint32 // toggle threshold
	draws uint32 // number of RNG draws, ≥ 1
	bk    uint32 // block index << 1, low bit set when idle
}

// schedule is the reusable per-chunk compilation of trace entries into
// toggle-draw segments, plus the lane-walk scratch built from them.
// Buffers are allocated once (first chunk) and reused; schedules
// themselves are pooled (schedPool) across estimation passes, so both
// Consume in the steady state and fresh StreamEstimators after warm-up
// allocate nothing.
type schedule struct {
	segs   []segRec // compiled draw segments, in sequential fold order
	counts []uint32 // per segment: toggle count, filled by the kernel
	entEnd []int32  // per entry: one-past-last segment index
	entCyc []uint32 // per entry: charged cycles
	total  uint64   // chunk draw total

	recs        []laneRec
	laneEnd     []int32
	laneStates  []uint32
	walks       []walk8
	walks16     []walk16
	walks32     []walk32
	shardCounts [][]uint32
}

// schedPool recycles schedule scratch across StreamEstimators. A
// schedule's buffers are several hundred KB once warm; before pooling,
// every fresh pass re-allocated them on its first chunk — the
// BENCH_iss.json reference_streamed alloc regression (29 → 39
// allocs/op), which git history places at the jump-ahead lane kernel
// (PR 5), not the memo engine.
var schedPool = sync.Pool{New: func() any { return new(schedule) }}

func (sc *schedule) begin(nblocks int) {
	// Grow, don't just warm: a pooled schedule may have been sized for
	// a processor with fewer blocks than this pass's.
	if segCap := maxConsumeEntries * 2 * nblocks; cap(sc.segs) < segCap {
		sc.segs = make([]segRec, 0, segCap)
		sc.counts = make([]uint32, 0, segCap)
		sc.entEnd = make([]int32, 0, maxConsumeEntries)
		sc.entCyc = make([]uint32, 0, maxConsumeEntries)
		sc.recs = make([]laneRec, 0, segCap+maxWalkLanes)
		sc.laneEnd = make([]int32, 0, maxWalkLanes)
		sc.laneStates = make([]uint32, 0, maxWalkLanes)
	}
	sc.segs = sc.segs[:0]
	sc.entEnd = sc.entEnd[:0]
	sc.entCyc = sc.entCyc[:0]
	sc.total = 0
}

// maxWalkLanes sizes width-independent scratch for the widest tier.
const maxWalkLanes = 32

// maxConsumeEntries is the largest chunk Consume compiles at once.
// Bigger chunks amortize the per-chunk fixed costs (jump-ahead lane
// seeding, schedule reset) over more draws; chunk boundaries never
// affect the result, so materialized traces are chunked wider than the
// streaming batch size.
const maxConsumeEntries = 4 * iss.TraceBatchSize

// Consume folds a batch of retired instructions into the estimate. The
// batch slice may be reused by the caller after Consume returns; after
// the first call's buffer warm-up it allocates nothing.
func (s *StreamEstimator) Consume(batch []iss.TraceEntry) error {
	for len(batch) > 0 {
		n := len(batch)
		if n > maxConsumeEntries {
			n = maxConsumeEntries
		}
		if err := s.consumeChunk(batch[:n]); err != nil {
			return err
		}
		batch = batch[n:]
	}
	return nil
}

// consumeChunk estimates up to one batch worth of entries through the
// three-phase pipeline: compile the entries into a draw schedule,
// count toggles with the jump-ahead lane kernel, then fold the counts
// into energies in the sequential order. Chunks too small or too large
// for 32-bit lane arithmetic fall back to the sequential reference
// path, which is bit-identical by construction.
func (s *StreamEstimator) consumeChunk(chunk []iss.TraceEntry) error {
	var sumCyc uint64
	for i := range chunk {
		c := uint64(chunk[i].Cycles)
		if c == 0 {
			c = 1
		}
		sumCyc += c
	}
	if s.forceSeq || sumCyc*s.totalNets > maxChunkDraws {
		// A wide chunk over the 32-bit draw cap is split, not
		// sequentialized: only a minimal chunk that still exceeds the
		// cap (pathological per-entry cycle counts) walks the scalar
		// reference path. Either way the result is bit-identical.
		if !s.forceSeq && len(chunk) > iss.TraceBatchSize {
			half := len(chunk) / 2
			if err := s.consumeChunk(chunk[:half]); err != nil {
				return err
			}
			return s.consumeChunk(chunk[half:])
		}
		for i := range chunk {
			if err := s.consumeEntrySeq(&chunk[i]); err != nil {
				return err
			}
		}
		return nil
	}

	sc := s.sched
	if sc == nil {
		sc = schedPool.Get().(*schedule)
		s.sched = sc
	}
	sc.begin(len(s.e.blocks))
	var (
		fault      error
		faultEntry *iss.TraceEntry
	)
	ne := 0
	for i := range chunk {
		te := &chunk[i]
		cyc, pAct, err := s.prepEntry(te)
		if err != nil {
			fault, faultEntry = err, te
			break
		}
		s.emitSegments(sc, cyc, pAct)
		ne++
	}

	if sc.total > 0 {
		if sc.total >= laneMinDraws {
			s.countChunkLanes(sc)
		} else {
			s.countChunkSeq(sc)
		}
	}
	s.foldChunk(sc, ne)

	if fault != nil {
		return s.wrapEntryFault(faultEntry, s.entries, fault)
	}
	return nil
}

// recFor returns the plan record describing te's instruction: the
// prebuilt record when the entry still matches the attached plan, or a
// description served from the estimator's direct-mapped cache otherwise
// (no plan attached, or a trace altered by a fault-injection harness —
// the entry's own instruction stays authoritative). Allocates nothing
// after the cache warms up.
func (s *StreamEstimator) recFor(te *iss.TraceEntry) *plan.Rec {
	if s.pl != nil {
		if r := s.pl.Rec(int(te.PC)); r != nil && r.Instr == te.Instr {
			return r
		}
	}
	e := s.e
	if e.desc == nil {
		e.desc = make([]descEntry, descCacheSize)
	}
	de := &e.desc[descIndex(te.Instr)]
	if !de.used || de.rec.Instr != te.Instr {
		de.rec = plan.Describe(e.proc.TIE, te.Instr)
		de.used = true
	}
	return &de.rec
}

// wrapEntryFault converts an entry-level estimation failure into a
// typed fault naming the offending entry — its zero-based global trace
// index and program counter — so chaos and partial-fit failure logs can
// point at the exact retired instruction instead of an anonymous error.
func (s *StreamEstimator) wrapEntryFault(te *iss.TraceEntry, idx uint64, err error) error {
	return &iss.Fault{
		Kind:  iss.FaultIllegalInstr,
		PC:    int(te.PC),
		Instr: te.Instr,
		Msg:   fmt.Sprintf("stream estimator: trace entry %d", idx),
		Err:   err,
	}
}

// prepEntry advances the per-entry sequential state (cycle total,
// switching history) and fills s.activity with the entry's per-block
// active cycle counts. It is the shared front half of the sequential
// and scheduled paths; both must charge blocks identically.
func (s *StreamEstimator) prepEntry(te *iss.TraceEntry) (cyc int, pAct float64, err error) {
	e := s.e
	idx := e.kindIdx

	cyc = int(te.Cycles)
	if cyc <= 0 {
		cyc = 1
	}
	s.cycles += uint64(cyc)

	// Data switching activity on the operand/result buses relative
	// to the previous instruction: the data-dependent term a linear
	// macro-model cannot see.
	sw := 0.5
	if s.havePrev {
		h := bits.OnesCount32(te.RsVal^s.prev.RsVal) +
			bits.OnesCount32(te.RtVal^s.prev.RtVal) +
			bits.OnesCount32(te.Result^s.prev.Result)
		sw = float64(h) / 96
	}
	s.prev = *te
	s.havePrev = true

	for i := range s.activity {
		s.activity[i] = 0
	}
	activity := s.activity

	rec := s.recFor(te)
	in := rec.Instr
	d := rec.Def

	// Always-on blocks.
	activity[idx[procgen.BlockClock]] = cyc
	activity[idx[procgen.BlockPipeCtl]] = cyc
	activity[idx[procgen.BlockFetch]] = cyc
	activity[idx[procgen.BlockDecode]] = 1

	// Front end.
	if te.Uncached {
		activity[idx[procgen.BlockBus]] += iss.UncachedFetchPenalty
	} else {
		a := 1
		if te.ICMiss {
			a += s.icPen
			activity[idx[procgen.BlockBus]] += s.icPen
		}
		activity[idx[procgen.BlockICache]] = a
	}

	// Register file.
	if rec.RegfileActive {
		activity[idx[procgen.BlockRegfile]] = 1
	}

	// Execution units and memory pipeline.
	switch {
	case in.IsCustom():
		ci := rec.CI
		if ci == nil {
			// Cold path: re-query the extension so callers get the
			// original undefined-instruction error as the cause.
			_, qerr := e.proc.TIE.Instruction(in.CustomID)
			return 0, 0, qerr
		}
		for _, ci2 := range rec.Active {
			activity[e.proc.CustomBlockBase+ci2] += ci.Latency
		}
	case rec.IsMult:
		if mi := idx[procgen.BlockMult]; mi >= 0 {
			activity[mi] = d.Cycles
		} else {
			activity[idx[procgen.BlockALU]] = d.Cycles
		}
	case rec.IsShift:
		activity[idx[procgen.BlockShifter]] = 1
	case d.Class == isa.ClassArith:
		activity[idx[procgen.BlockALU]] = d.Cycles
	case d.Class == isa.ClassBranch:
		activity[idx[procgen.BlockALU]] = 1
	case d.Class == isa.ClassLoad || d.Class == isa.ClassStore:
		a := 1
		if te.DCMiss {
			a += s.dcPen
			activity[idx[procgen.BlockBus]] += s.dcPen
		}
		activity[idx[procgen.BlockLSU]] = a
		activity[idx[procgen.BlockDCache]] = a
	}

	// Base-to-custom side effect: custom hardware latched off the
	// shared operand buses switches when base arithmetic drives them
	// (paper Fig. 1 Example 1).
	if !in.IsCustom() && d.Class == isa.ClassArith {
		for _, ci2 := range e.proc.TIE.BusTapped {
			activity[e.proc.CustomBlockBase+ci2]++
		}
	}

	pAct = pActiveNominal * (1 + e.tech.SwitchingWeight*(2*sw-1))
	return cyc, pAct, nil
}

// emitSegments compiles one prepped entry into draw segments, in the
// exact block and active-before-idle order the sequential path
// simulates them.
//
//xtenergy:hotpath
func (s *StreamEstimator) emitSegments(sc *schedule, cyc int, pAct float64) {
	thrA := toggleThreshold(pAct)
	thrI := s.thrIdle
	segs := sc.segs
	total := sc.total
	activity := s.activity
	blocks := s.e.blocks
	for bi := range blocks {
		nets := blocks[bi].nets
		act := activity[bi]
		if act > cyc {
			act = cyc
		}
		if act > 0 {
			d := uint32(act * nets)
			segs = append(segs, segRec{thr: thrA, draws: d, bk: uint32(bi) << 1})
			total += uint64(d)
		}
		if idle := cyc - act; idle > 0 {
			d := uint32(idle * nets)
			segs = append(segs, segRec{thr: thrI, draws: d, bk: uint32(bi)<<1 | 1})
			total += uint64(d)
		}
	}
	sc.segs = segs
	sc.total = total
	sc.entEnd = append(sc.entEnd, int32(len(segs)))
	sc.entCyc = append(sc.entCyc, uint32(cyc))
}

// countChunkSeq counts a small chunk's schedule with the plain scalar
// chain — the same walk simulateNets performs, minus the float fold.
//
//xtenergy:hotpath
func (s *StreamEstimator) countChunkSeq(sc *schedule) {
	st := s.rng
	sc.counts = sc.counts[:len(sc.segs)]
	for i := range sc.segs {
		thr := sc.segs[i].thr
		n := sc.segs[i].draws
		c := uint32(0)
		for k := uint32(0); k < n; k++ {
			st ^= st << 13
			st ^= st >> 17
			st ^= st << 5
			if st < thr {
				c++
			}
		}
		sc.counts[i] = c
	}
	s.rng = st
}

// countChunkLanes counts the chunk's schedule with the jump-ahead lane
// kernel at the process-selected tier (see kernel.go).
//
//xtenergy:hotpath
func (s *StreamEstimator) countChunkLanes(sc *schedule) {
	s.countChunkLanesKernel(sc, SelectedKernel())
}

// countChunkLanesKernel counts the chunk's schedule with the jump-ahead
// lane kernel of tier k: the draw chain is cut into equal stripes (one
// per lane of the tier's width, one walk per shard), segments are
// clipped at stripe boundaries into lane records, each stripe's start
// state comes from JumpAhead, and the walks run concurrently when
// sharding is enabled. Counts land in the same per-segment slots the
// sequential walk fills, additively for boundary-split segments, so
// the totals are identical integers whatever the tier's lane count.
// Taking the tier explicitly (rather than reading the process global)
// keeps the cross-kernel differential tests race-free.
//
//xtenergy:hotpath
func (s *StreamEstimator) countChunkLanesKernel(sc *schedule, k Kernel) {
	width := k.width()
	nseg := len(sc.segs)
	sc.counts = sc.counts[:nseg]
	for i := range sc.counts {
		sc.counts[i] = 0
	}

	nWalks := 1
	if s.Shards > 1 && sc.total >= shardMinDraws {
		nWalks = s.Shards
		if max := int(sc.total / uint64(width*shardMinLaneDraws)); nWalks > max {
			nWalks = max
		}
		if nWalks < 1 {
			nWalks = 1
		}
	}
	lanes := nWalks * width
	q := sc.total / uint64(lanes)

	// Clip segments into per-lane record runs: lanes 0..lanes-2 own q
	// draws each, the last lane owns the remainder. Indexed writes into
	// presized buffers, with a fast path for the common segment that
	// fits entirely inside the current stripe — at most lanes-1 of the
	// chunk's segments cross a boundary.
	if need := nseg + lanes; cap(sc.recs) < need {
		sc.recs = make([]laneRec, need)
	}
	if cap(sc.laneEnd) < lanes {
		sc.laneEnd = make([]int32, lanes)
	}
	recs := sc.recs[:cap(sc.recs)]
	laneEnd := sc.laneEnd[:lanes]
	segs := sc.segs
	nr := 0
	lane := 0
	left := q
	for i := 0; i < nseg; i++ {
		rem := uint64(segs[i].draws)
		if rem <= left {
			recs[nr] = laneRec{thr: segs[i].thr, rem: uint32(rem), slot: uint32(i)}
			nr++
			left -= rem
			continue
		}
		for rem > 0 {
			if left == 0 {
				laneEnd[lane] = int32(nr)
				lane++
				left = q
				if lane == lanes-1 {
					left = sc.total // the last lane takes all the rest
				}
			}
			take := rem
			if take > left {
				take = left
			}
			recs[nr] = laneRec{thr: segs[i].thr, rem: uint32(take), slot: uint32(i)}
			nr++
			rem -= take
			left -= take
		}
	}
	for ; lane < lanes; lane++ {
		laneEnd[lane] = int32(nr)
	}
	sc.recs, sc.laneEnd = recs[:nr], laneEnd

	// Exact lane start states via jump-ahead, and the chunk's exit
	// state for chain continuity into the next chunk.
	states := sc.laneStates[:0]
	st := s.rng
	for l := 0; l < lanes; l++ {
		states = append(states, st)
		if l < lanes-1 {
			st = JumpAhead(st, q)
		}
	}
	sc.laneStates = states
	s.rng = JumpAhead(s.rng, sc.total)

	for len(sc.shardCounts) < nWalks-1 {
		sc.shardCounts = append(sc.shardCounts, make([]uint32, 0, cap(sc.counts)))
	}
	switch width {
	case 32:
		if cap(sc.walks32) < nWalks {
			sc.walks32 = make([]walk32, nWalks)
		}
		sc.walks32 = sc.walks32[:nWalks]
		for w := range sc.walks32 {
			wk := &sc.walks32[w]
			wk.recs, wk.counts = recs, sc.countsFor(w, nseg)
			sc.fillLanes(w, width, wk.off[:], wk.cnt[:], wk.st[:])
		}
	case 16:
		if cap(sc.walks16) < nWalks {
			sc.walks16 = make([]walk16, nWalks)
		}
		sc.walks16 = sc.walks16[:nWalks]
		for w := range sc.walks16 {
			wk := &sc.walks16[w]
			wk.recs, wk.counts = recs, sc.countsFor(w, nseg)
			sc.fillLanes(w, width, wk.off[:], wk.cnt[:], wk.st[:])
		}
	default:
		if cap(sc.walks) < nWalks {
			sc.walks = make([]walk8, nWalks)
		}
		sc.walks = sc.walks[:nWalks]
		for w := range sc.walks {
			wk := &sc.walks[w]
			wk.recs, wk.counts = recs, sc.countsFor(w, nseg)
			sc.fillLanes(w, width, wk.off[:], wk.cnt[:], wk.st[:])
		}
	}

	if nWalks == 1 {
		sc.runWalk(0, width, k)
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < nWalks; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc.runWalk(w, width, k)
		}(w)
	}
	sc.runWalk(0, width, k)
	wg.Wait()
	for w := 1; w < nWalks; w++ {
		cnts := sc.shardCounts[w-1]
		for i := 0; i < nseg; i++ {
			sc.counts[i] += cnts[i]
		}
	}
}

// countsFor returns walk w's toggle-count destination: the schedule's
// own counts for walk 0, a zeroed per-shard buffer otherwise.
func (sc *schedule) countsFor(w, nseg int) []uint32 {
	if w == 0 {
		return sc.counts
	}
	cnts := sc.shardCounts[w-1]
	if cap(cnts) < nseg {
		cnts = make([]uint32, nseg)
	}
	cnts = cnts[:nseg]
	for i := range cnts {
		cnts[i] = 0
	}
	sc.shardCounts[w-1] = cnts
	return cnts
}

// fillLanes wires one walk block's lane window onto the clipped record
// runs and jump-ahead start states; the walk structs' fixed arrays are
// passed as slices so the setup is shared across the per-width types.
func (sc *schedule) fillLanes(w, width int, off, cnt, st []uint32) {
	for j := 0; j < width; j++ {
		l := w*width + j
		start := int32(0)
		if l > 0 {
			start = sc.laneEnd[l-1]
		}
		off[j] = uint32(start)
		cnt[j] = uint32(sc.laneEnd[l] - start)
		st[j] = sc.laneStates[l]
	}
}

// runWalk executes one walk block on tier k's stripe kernel.
func (sc *schedule) runWalk(w, width int, k Kernel) {
	switch {
	case width == 32:
		countStripes32(&sc.walks32[w])
	case width == 16:
		countStripes16(&sc.walks16[w])
	case k == KernelPortable:
		countStripes8Go(&sc.walks[w])
	default:
		countStripes8(&sc.walks[w])
	}
}

// foldChunk turns toggle counts into energies, replaying the float
// operations in the sequential order: per entry, per block, active
// then idle, each count scaled and added to the block and entry
// accumulators exactly as the sequential path does.
//
//xtenergy:hotpath
func (s *StreamEstimator) foldChunk(sc *schedule, ne int) {
	blocks := s.e.blocks
	perBlock := s.perBlock
	segs, counts := sc.segs, sc.counts
	si := 0
	for i := 0; i < ne; i++ {
		last := int(sc.entEnd[i])
		var entryPJ float64
		for ; si < last; si++ {
			bk := segs[si].bk
			pj := float64(counts[si]) * blocks[bk>>1].pjNet[bk&1]
			perBlock[bk>>1] += pj
			entryPJ += pj
		}
		if s.OnEntry != nil {
			s.OnEntry(int(s.entries), uint64(sc.entCyc[i]), entryPJ)
		}
		s.entries++
	}
}

// consumeEntrySeq simulates every structural block for every cycle of
// one retired instruction on the scalar chain — the sequential
// reference path, used for chunks outside the lane kernel's sizing
// envelope and as the differential oracle for the lane kernel.
func (s *StreamEstimator) consumeEntrySeq(te *iss.TraceEntry) error {
	e := s.e
	cyc, pAct, err := s.prepEntry(te)
	if err != nil {
		return s.wrapEntryFault(te, s.entries, err)
	}
	var entryPJ float64
	for bi := range e.blocks {
		bm := &e.blocks[bi]
		act := s.activity[bi]
		if act > cyc {
			act = cyc
		}
		if act > 0 {
			pj := s.simulateNets(bm.nets, act, pAct) * bm.pjNet[0]
			s.perBlock[bi] += pj
			entryPJ += pj
		}
		if idle := cyc - act; idle > 0 {
			pj := s.simulateNets(bm.nets, idle, pIdle) * bm.pjNet[1]
			s.perBlock[bi] += pj
			entryPJ += pj
		}
	}
	if s.OnEntry != nil {
		s.OnEntry(int(s.entries), uint64(cyc), entryPJ)
	}
	s.entries++
	return nil
}

// simulateNets advances the toggle process of a net population for the
// given number of cycles and returns the number of observed toggles.
// This per-net work is what a gate-level power simulator fundamentally
// does, and is what makes the reference path slow; the lane kernel
// (countChunkLanes) computes the same counts from the same states with
// the serial dependency broken by jump-ahead.
//
//xtenergy:hotpath
func (s *StreamEstimator) simulateNets(nets, cycles int, p float64) float64 {
	threshold := toggleThreshold(p)
	toggles := 0
	st := s.rng
	for c := 0; c < cycles; c++ {
		for n := 0; n < nets; n++ {
			// xorshift32
			st ^= st << 13
			st ^= st >> 17
			st ^= st << 5
			if st < threshold {
				toggles++
			}
		}
	}
	s.rng = st
	return float64(toggles)
}

// Finish closes the pass and returns the accumulated report.
func (s *StreamEstimator) Finish() (Report, error) {
	if s.sched != nil {
		schedPool.Put(s.sched)
		s.sched = nil
	}
	if s.entries == 0 {
		return Report{}, errors.New("rtlpower: empty trace (was the ISS run with CollectTrace or a TraceSink?)")
	}
	var total float64
	for _, v := range s.perBlock {
		total += v
	}
	return Report{TotalPJ: total, PerBlockPJ: s.perBlock, Cycles: s.cycles}, nil
}

// streamBatchBuffers bounds the number of trace batches in flight
// between the simulator and the estimator in RunStreamed. Memory is
// therefore capped at streamBatchBuffers*iss.TraceBatchSize entries per
// run, independent of how many instructions retire.
const streamBatchBuffers = 4

// errStreamAborted is returned to the simulator's TraceSink once the
// consumer has failed, so the run stops instead of simulating on.
var errStreamAborted = errors.New("rtlpower: stream estimator failed; aborting simulation")

// Consumer receives the execution trace batch by batch in retirement
// order. *StreamEstimator is the production implementation; the chaos
// harness wraps one to corrupt, stall, or drop batches. A Consumer used
// with RunStreamed must return promptly or watch the run's context:
// a Consume call that blocks forever deadlocks the stream shutdown.
type Consumer interface {
	Consume(batch []iss.TraceEntry) error
}

// safeConsume delivers one batch, recovering a panicking consumer into
// a typed fault so a broken (or chaos-sabotaged) estimator cannot tear
// down the process.
func safeConsume(c Consumer, batch []iss.TraceEntry) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &iss.Fault{Kind: iss.FaultPanic, PC: -1, Msg: fmt.Sprintf("trace consumer panicked: %v", r)}
		}
	}()
	return c.Consume(batch)
}

// RunStreamed executes prog on sim while c (usually a *StreamEstimator)
// estimates it concurrently: the simulator's TraceSink copies each
// retired batch into one of a fixed ring of buffers and hands it to a
// consumer goroutine over a bounded channel, so simulation overlaps
// with per-net estimation and the trace is never materialized. Batch
// boundaries do not affect the estimate, so the result is deterministic
// and bit-identical to EstimateTrace on the same run. Any
// CollectTrace/TraceSink already in opts is overridden. The caller
// still owns the consumer and, for a StreamEstimator, must call Finish.
//
// Cancelling ctx aborts the run within one batch boundary with a
// FaultCancelled fault (the simulator polls the context, and a sink
// blocked on a stalled consumer unblocks on ctx.Done). The consumer
// goroutine and both channels are always drained before RunStreamed
// returns — cancellation leaks nothing.
func RunStreamed(ctx context.Context, sim *iss.Simulator, prog *iss.Program, opts iss.Options, c Consumer) (*iss.Result, error) {
	if st, ok := c.(*StreamEstimator); ok && st.pl == nil {
		st.pl = prog.Plan(st.e.proc.TIE)
	}
	free := make(chan []iss.TraceEntry, streamBatchBuffers)
	for i := 0; i < streamBatchBuffers; i++ {
		free <- make([]iss.TraceEntry, 0, iss.TraceBatchSize)
	}
	work := make(chan []iss.TraceEntry, streamBatchBuffers)

	var (
		consumeErr error
		failed     atomic.Bool
		done       = make(chan struct{})
	)
	go func() {
		defer close(done)
		for b := range work {
			if consumeErr == nil {
				if err := safeConsume(c, b); err != nil {
					consumeErr = err
					failed.Store(true)
				}
			}
			free <- b[:0]
		}
	}()

	opts.CollectTrace = false
	opts.TraceSink = func(batch []iss.TraceEntry) error {
		if failed.Load() {
			return errStreamAborted
		}
		select {
		case buf := <-free:
			// work is as deep as the buffer ring, so this send never
			// blocks.
			work <- append(buf, batch...)
			return nil
		case <-ctx.Done():
			// The consumer is stalled (all buffers in flight) and the
			// run's deadline expired, or the run was cancelled: abort
			// at this batch boundary instead of waiting forever.
			return &iss.Fault{Kind: iss.FaultCancelled, PC: -1, Msg: "trace stream stalled or cancelled", Err: ctx.Err()}
		}
	}
	res, runErr := sim.RunContext(ctx, prog, opts)
	close(work)
	<-done
	if consumeErr != nil {
		return nil, consumeErr
	}
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}
