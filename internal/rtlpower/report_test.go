package rtlpower_test

import (
	"math"
	"strings"
	"testing"

	"xtenergy/internal/hwlib"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/tie"
)

func TestBreakdown(t *testing.T) {
	ext := &tie.Extension{
		Name: "e",
		Instructions: []*tie.Instruction{{
			Name: "hot", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
			Datapath: []tie.DatapathElem{{
				Component: hwlib.Component{Name: "big", Cat: hwlib.Shifter, Width: 64},
			}},
			Semantics: func(_ *tie.State, op tie.Operands) uint32 { return op.RsVal << 1 },
		}},
	}
	src := `
    movi a2, 300
    movi a3, 12345
loop:
    hot a3, a3, a2
    addi a2, a2, -1
    bnez a2, loop
    ret
`
	proc, trace, _ := runTrace(t, src, ext)
	e, err := rtlpower.New(proc, rtlpower.FastTechnology())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.EstimateTrace(trace)
	if err != nil {
		t.Fatal(err)
	}

	rows, err := rep.Breakdown(proc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(proc.Blocks) {
		t.Fatalf("breakdown rows = %d, want %d", len(rows), len(proc.Blocks))
	}
	// Sorted descending, percentages sum to ~100.
	var pct, tot float64
	for i, r := range rows {
		if i > 0 && r.PJ > rows[i-1].PJ {
			t.Fatal("breakdown not sorted")
		}
		pct += r.Percent
		tot += r.PJ
	}
	if math.Abs(pct-100) > 0.01 {
		t.Fatalf("percentages sum to %g", pct)
	}
	if math.Abs(tot-rep.TotalPJ) > 1e-6*rep.TotalPJ {
		t.Fatal("breakdown energies do not sum to total")
	}

	base, custom, err := rep.BaseCustomSplit(proc)
	if err != nil {
		t.Fatal(err)
	}
	if custom <= 0 || base <= 0 {
		t.Fatalf("split base=%g custom=%g", base, custom)
	}
	if math.Abs(base+custom-rep.TotalPJ) > 1e-6*rep.TotalPJ {
		t.Fatal("split does not sum to total")
	}

	text := rtlpower.FormatBreakdown(rows, 187, rep.Cycles)
	for _, want := range []string{"tie.big", "clock", "mW at 187 MHz"} {
		if !strings.Contains(text, want) {
			t.Fatalf("breakdown text missing %q:\n%s", want, text)
		}
	}
}

func TestBreakdownMismatchedReport(t *testing.T) {
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := rtlpower.Report{PerBlockPJ: []float64{1, 2}}
	if _, err := bad.Breakdown(proc); err == nil {
		t.Fatal("mismatched breakdown accepted")
	}
	if _, _, err := bad.BaseCustomSplit(proc); err == nil {
		t.Fatal("mismatched split accepted")
	}
}

func TestProfileSumsToTotal(t *testing.T) {
	proc, trace, _ := runTrace(t, loopSrc, nil)
	e, _ := rtlpower.New(proc, rtlpower.FastTechnology())
	total, err := e.EstimateTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := rtlpower.New(proc, rtlpower.FastTechnology())
	points, err := e2.Profile(trace, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("profile has %d windows", len(points))
	}
	var sumPJ float64
	var sumCycles uint64
	var lastStart uint64
	for i, p := range points {
		sumPJ += p.EnergyPJ
		sumCycles += p.Cycles
		if i > 0 && p.StartCycle <= lastStart {
			t.Fatal("profile windows not monotone")
		}
		lastStart = p.StartCycle
		if p.EnergyPJ <= 0 {
			t.Fatal("empty profile window")
		}
	}
	if math.Abs(sumPJ-total.TotalPJ) > 1e-9*total.TotalPJ {
		t.Fatalf("profile sums to %g, total is %g", sumPJ, total.TotalPJ)
	}
	if sumCycles != total.Cycles {
		t.Fatalf("profile cycles %d, total %d", sumCycles, total.Cycles)
	}
	if points[0].PowerMW(187) <= 0 {
		t.Fatal("zero window power")
	}
	text := rtlpower.FormatProfile(points, 187)
	if !strings.Contains(text, "mW") {
		t.Fatal("profile text malformed")
	}
}

func TestProfileErrors(t *testing.T) {
	proc, trace, _ := runTrace(t, "ret\n", nil)
	e, _ := rtlpower.New(proc, rtlpower.FastTechnology())
	if _, err := e.Profile(trace, 0); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := e.Profile(nil, 10); err == nil {
		t.Fatal("empty trace accepted")
	}
}
