// NEON (Advanced SIMD) form of the 8-lane stripe walker (see lanes.go
// for the contract and countStripes8Go for the reference
// implementation) — the arm64 port of lanes_amd64.s.
//
// Lane layout: V0 holds lanes 0-3, V1 lanes 4-7. The Go arm64
// assembler exposes no vector unsigned compare-greater, so the strict
// unsigned "state < thr" is computed as "umin(state, thr-1) == state"
// (VUMIN + VCMEQ): exact because xorshift32 states are never zero
// (seeds are or-ed with 1), and records with thr == 0 load a clamped
// thr-1 of 0, which no state ever equals — including the exhausted-lane
// sentinel. Toggle counters accumulate in V4/V5 (VSUB of the all-ones
// compare mask) and are flushed to counts[rec.slot] when a record
// drains. Chunk totals are capped below 2^31 draws so decaying
// sentinels (rem=~0) never reach live range.
//
// Frame locals: rem[8] at -128(SP), count dump cbuf[8] at -96(SP),
// clamped thresholds thrm[8] (thr-1, or 0 for thr==0) at -64(SP),
// slot[8] at -32(SP).
// walk8 field offsets (pinned by TestWalk8Layout): recs.ptr +0,
// counts.ptr +24, off +48, cnt +80, st +112.

#include "textflag.h"

// func countStripes8NEON(w *walk8)
TEXT ·countStripes8NEON(SB), NOSPLIT, $128-8
	MOVD w+0(FP), R9
	MOVD 0(R9), R10            // recs data
	MOVD 24(R9), R11           // counts data
	ADD $48, R9, R12           // &off[0]
	ADD $80, R9, R13           // &cnt[0]
	MOVD $rem-128(SP), R14
	MOVD $cbuf-96(SP), R15
	MOVD $thrm-64(SP), R16
	MOVD $slot-32(SP), R17
	MOVD ZR, R19               // live lane count

	// Load each lane's first record (or a sentinel).
	MOVD ZR, R5                // j
init:
	LSL $2, R5, R6
	MOVD $-1, R2
	ADD R6, R14, R7
	MOVW R2, (R7)              // rem[j] = sentinel
	ADD R6, R16, R7
	MOVW ZR, (R7)              // thrm[j] = 0 (never counts)
	ADD R6, R17, R7
	MOVW ZR, (R7)              // slot[j] = 0
	ADD R6, R13, R7
	MOVWU (R7), R2             // cnt[j]
	CBZ R2, initnext
	SUB $1, R2
	MOVW R2, (R7)
	ADD R6, R12, R7
	MOVWU (R7), R3             // off[j]
	ADD $1, R3, R2
	MOVW R2, (R7)
	ADD R3<<1, R3, R3          // off*3
	ADD R3<<2, R10, R3         // record at recs + off*12
	MOVWU (R3), R2             // thr
	SUBS $1, R2, R4            // thr-1, borrow iff thr == 0
	CSEL LO, ZR, R4, R4        // clamp thr==0 to 0
	ADD R6, R16, R7
	MOVW R4, (R7)
	MOVWU 4(R3), R2            // rem
	ADD R6, R14, R7
	MOVW R2, (R7)
	MOVWU 8(R3), R2            // slot
	ADD R6, R17, R7
	MOVW R2, (R7)
	ADD $1, R19
initnext:
	ADD $1, R5
	CMP $8, R5
	BLT init

	ADD $112, R9, R7
	VLD1 (R7), [V0.S4, V1.S4]  // states, lanes 0-3 / 4-7
	VLD1 (R16), [V2.S4, V3.S4] // clamped thresholds
	VEOR V4.B16, V4.B16, V4.B16 // toggle counters, lanes 0-3
	VEOR V5.B16, V5.B16, V5.B16 // toggle counters, lanes 4-7

round:
	CBZ R19, walkdone

	// m = unsigned min over the 8 remaining-draw counters.
	MOVWU (R14), R1
	MOVWU 4(R14), R2
	CMP R1, R2
	CSEL LO, R2, R1, R1
	MOVWU 8(R14), R2
	CMP R1, R2
	CSEL LO, R2, R1, R1
	MOVWU 12(R14), R2
	CMP R1, R2
	CSEL LO, R2, R1, R1
	MOVWU 16(R14), R2
	CMP R1, R2
	CSEL LO, R2, R1, R1
	MOVWU 20(R14), R2
	CMP R1, R2
	CSEL LO, R2, R1, R1
	MOVWU 24(R14), R2
	CMP R1, R2
	CSEL LO, R2, R1, R1
	MOVWU 28(R14), R2
	CMP R1, R2
	CSEL LO, R2, R1, R1

	MOVD R1, R4
inner:
	VSHL $13, V0.S4, V6.S4
	VSHL $13, V1.S4, V7.S4
	VEOR V6.B16, V0.B16, V0.B16
	VEOR V7.B16, V1.B16, V1.B16
	VUSHR $17, V0.S4, V6.S4
	VUSHR $17, V1.S4, V7.S4
	VEOR V6.B16, V0.B16, V0.B16
	VEOR V7.B16, V1.B16, V1.B16
	VSHL $5, V0.S4, V6.S4
	VSHL $5, V1.S4, V7.S4
	VEOR V6.B16, V0.B16, V0.B16
	VEOR V7.B16, V1.B16, V1.B16
	VUMIN V2.S4, V0.S4, V6.S4  // min(state, thr-1)
	VUMIN V3.S4, V1.S4, V7.S4
	VCMEQ V6.S4, V0.S4, V6.S4  // == state  <=>  state < thr
	VCMEQ V7.S4, V1.S4, V7.S4
	VSUB V6.S4, V4.S4, V4.S4   // counter -= all-ones mask
	VSUB V7.S4, V5.S4, V5.S4
	SUBS $1, R4
	BNE inner

	// Dump counters so drained lanes can flush scalar-side, then walk
	// all 8 lanes: subtract m, reload any that drained.
	VST1 [V4.S4, V5.S4], (R15)
	MOVD ZR, R5
drain:
	LSL $2, R5, R6
	ADD R6, R14, R7
	MOVWU (R7), R2
	SUB R1, R2, R2
	MOVW R2, (R7)              // rem[j] -= m
	CBNZ R2, drainnext
	ADD R6, R17, R7
	MOVWU (R7), R2             // slot[j]
	ADD R6, R15, R8
	MOVWU (R8), R3             // counter dump
	ADD R2<<2, R11, R2
	MOVWU (R2), R4
	ADD R3, R4
	MOVW R4, (R2)              // counts[slot[j]] += counter[j]
	MOVW ZR, (R8)
	ADD R6, R13, R7
	MOVWU (R7), R2             // cnt[j]
	CBZ R2, lanesent
	SUB $1, R2
	MOVW R2, (R7)
	ADD R6, R12, R7
	MOVWU (R7), R3             // off[j]
	ADD $1, R3, R2
	MOVW R2, (R7)
	ADD R3<<1, R3, R3
	ADD R3<<2, R10, R3         // record at recs + off*12
	MOVWU (R3), R2             // thr
	SUBS $1, R2, R4
	CSEL LO, ZR, R4, R4
	ADD R6, R16, R7
	MOVW R4, (R7)
	MOVWU 4(R3), R2
	ADD R6, R14, R7
	MOVW R2, (R7)
	MOVWU 8(R3), R2
	ADD R6, R17, R7
	MOVW R2, (R7)
	B drainnext
lanesent:
	MOVD $-1, R2
	ADD R6, R14, R7
	MOVW R2, (R7)
	ADD R6, R16, R7
	MOVW ZR, (R7)
	ADD R6, R17, R7
	MOVW ZR, (R7)
	SUB $1, R19
drainnext:
	ADD $1, R5
	CMP $8, R5
	BLT drain

	// Reinstall counters and thresholds with drained lanes updated.
	VLD1 (R15), [V4.S4, V5.S4]
	VLD1 (R16), [V2.S4, V3.S4]
	B round

walkdone:
	ADD $112, R9, R7
	VST1 [V0.S4, V1.S4], (R7)
	RET
