// AVX-512 form of the stripe walker: 32 lanes in two 16-wide ZMM
// xorshift32 vectors (see lanes.go for the contract and
// countStripesWideGo for the reference implementation).
//
// Lane layout: Z0 holds lanes 0-15, Z1 lanes 16-31. Unlike the
// SSE2/AVX2 tiers there is no sign-bias trick: VPCMPUD $1 compares
// unsigned less-than directly into an opmask, and the per-lane toggle
// counters (Z4/Z5) advance with a masked VPADDD of broadcast-one
// (Z10). Thresholds are kept raw; the exhausted-lane sentinel
// threshold is 0, which no state is ever unsigned-less-than.
//
// The two halves run as independent 16-lane walkers with separate
// round clocks, alternating one round each: a lockstep round advances
// its group by the minimum remaining draw count over 16 lanes (about
// twice the advance a 32-lane min would allow), and the two groups'
// round-boundary dependency chains — min reduction, drained-lane
// repair, next min — are independent, so the out-of-order window
// overlaps one group's boundary work with the other's draw loop.
// Results are unchanged: per-segment toggle counts are integers,
// accumulated per lane and flushed per record, whatever the relative
// progress of the groups.
//
// All per-round state is register-resident: thresholds (Z2/Z3),
// counters (Z4/Z5), and remaining draws (Z6/Z7) never round-trip
// through the stack between rounds — drained lanes are repaired in
// place with per-lane opmasks (VPBROADCASTD + merge-masked VMOVDQA32,
// VPCOMPRESSD to extract the drained counter). Only the slot indices
// live on the stack (scalar-read only). Chunk totals are capped below
// 2^31 draws, so decaying sentinels (rem=~0) never reach live range.
//
// Frame locals: init scratch thrv[32] at -384(SP) and remv[32] at
// -256(SP) (dead after the vectors first load), slot[32] at -128(SP).
// walk32 field offsets (pinned by TestWalk32Layout): recs.ptr +0,
// counts.ptr +24, off +48, cnt +176, st +304.

#include "textflag.h"

// func countStripes32AVX512(w *walk32)
TEXT ·countStripes32AVX512(SB), NOSPLIT, $384-8
	MOVQ w+0(FP), R9
	MOVQ 0(R9), SI             // recs data
	MOVQ 24(R9), DI            // counts data
	XORQ R15, R15              // live lanes, group A (0-15)
	XORQ R14, R14              // live lanes, group B (16-31)

	// Load each lane's first record (or a sentinel).
	XORQ R12, R12
initlane:
	MOVL $0xFFFFFFFF, remv-256(SP)(R12*4)
	MOVL $0, thrv-384(SP)(R12*4)
	MOVL $0, slot-128(SP)(R12*4)
	MOVL 176(R9)(R12*4), CX    // cnt[j]
	TESTL CX, CX
	JZ initnext
	DECL CX
	MOVL CX, 176(R9)(R12*4)
	MOVL 48(R9)(R12*4), BX     // off[j]
	LEAL 1(BX), CX
	MOVL CX, 48(R9)(R12*4)
	LEAQ (BX)(BX*2), AX        // record at recs + off*12
	MOVL 0(SI)(AX*4), CX       // thr (raw)
	MOVL CX, thrv-384(SP)(R12*4)
	MOVL 4(SI)(AX*4), CX       // rem
	MOVL CX, remv-256(SP)(R12*4)
	MOVL 8(SI)(AX*4), CX       // slot
	MOVL CX, slot-128(SP)(R12*4)
	CMPQ R12, $16
	JGE initliveb
	INCQ R15
	JMP initnext
initliveb:
	INCQ R14
initnext:
	INCQ R12
	CMPQ R12, $32
	JLT initlane

	VMOVDQU32 304(R9), Z0      // states, lanes 0-15
	VMOVDQU32 368(R9), Z1      // states, lanes 16-31
	VMOVDQU32 thrv-384(SP), Z2 // thresholds, lanes 0-15
	VMOVDQU32 thrv-320(SP), Z3 // thresholds, lanes 16-31
	VMOVDQU32 remv-256(SP), Z6 // remaining draws, lanes 0-15
	VMOVDQU32 remv-192(SP), Z7 // remaining draws, lanes 16-31
	VPXORD Z4, Z4, Z4          // toggle counters, lanes 0-15
	VPXORD Z5, Z5, Z5          // toggle counters, lanes 16-31
	VPXORD Z9, Z9, Z9          // zero, for drained-lane compares
	MOVL $1, AX
	VPBROADCASTD AX, Z10       // +1 per counting lane

	// The loop is rotated so each group's round-boundary work (min
	// reduction, remaining-draw update, drain mask) is staged right
	// after its own drain, BEFORE the other group's branch-heavy draw
	// loop: work preceding a mispredicted loop exit survives the
	// flush, so when one group's draw loop mispredicts its exit, the
	// other group's next round is already computed and its repairs and
	// draw loop issue immediately. The staging runs unconditionally —
	// on a dead group it only decays sentinel lanes in lockstep (they
	// all stay equal, so the min subtract zeroes them at worst) and
	// the staged m/mask are never consumed.
	//
	// Stage group A's first round: m = unsigned min over lanes 0-15
	// (DX), drain mask (R13).
	VEXTRACTI64X4 $1, Z6, Y8
	VPMINUD Y8, Y6, Y8
	VEXTRACTI128 $1, Y8, X11
	VPMINUD X11, X8, X8
	VPSHUFD $0xEE, X8, X11
	VPMINUD X11, X8, X8
	VPSHUFD $0x55, X8, X11
	VPMINUD X11, X8, X8
	VMOVD X8, DX
	VPBROADCASTD X8, Z12
	VPSUBD Z12, Z6, Z6
	VPCMPEQD Z9, Z6, K1
	KMOVW K1, R13

	// Stage group B's first round: m (R8), drain mask (R10).
	VEXTRACTI64X4 $1, Z7, Y8
	VPMINUD Y8, Y7, Y8
	VEXTRACTI128 $1, Y8, X11
	VPMINUD X11, X8, X8
	VPSHUFD $0xEE, X8, X11
	VPMINUD X11, X8, X8
	VPSHUFD $0x55, X8, X11
	VPMINUD X11, X8, X8
	VMOVD X8, R8
	VPBROADCASTD X8, Z12
	VPSUBD Z12, Z7, Z7
	VPCMPEQD Z9, Z7, K2
	KMOVW K2, R10

mainloop:
	TESTQ R15, R15
	JZ skipa

innera:
	VPSLLD $13, Z0, Z8
	VPXORD Z8, Z0, Z0
	VPSRLD $17, Z0, Z8
	VPXORD Z8, Z0, Z0
	VPSLLD $5, Z0, Z8
	VPXORD Z8, Z0, Z0
	VPCMPUD $1, Z2, Z0, K1     // K1 = state < thr, unsigned
	VPADDD Z10, Z4, K1, Z4
	DECL DX
	JNZ innera

draina:
	BSFQ R13, R12              // j = lowest drained lane (0-15)
	LEAQ -1(R13), AX
	ANDQ AX, R13               // clear that bit
	MOVQ R12, CX
	MOVL $1, AX
	SHLL CX, AX
	KMOVW AX, K3               // single-lane opmask
	VPCOMPRESSD.Z Z4, K3, Z8   // counter of lane j -> element 0
	VMOVD X8, BX
	MOVL slot-128(SP)(R12*4), AX
	ADDL BX, (DI)(AX*4)        // counts[slot[j]] += counter[j]
	VMOVDQA32 Z9, K3, Z4       // zero the drained counter lane
	MOVL 176(R9)(R12*4), CX    // cnt[j]
	TESTL CX, CX
	JZ lanesenta
	DECL CX
	MOVL CX, 176(R9)(R12*4)
	MOVL 48(R9)(R12*4), BX     // off[j]
	LEAL 1(BX), CX
	MOVL CX, 48(R9)(R12*4)
	LEAQ (BX)(BX*2), AX
	MOVL 0(SI)(AX*4), CX       // thr
	VPBROADCASTD CX, Z8
	VMOVDQA32 Z8, K3, Z2
	MOVL 4(SI)(AX*4), CX       // rem
	VPBROADCASTD CX, Z8
	VMOVDQA32 Z8, K3, Z6
	MOVL 8(SI)(AX*4), CX       // slot
	MOVL CX, slot-128(SP)(R12*4)
	PREFETCHT0 12(SI)(AX*4)    // lane j's next record (sequential run)
	JMP drainanext
lanesenta:
	VMOVDQA32 Z9, K3, Z2       // sentinel thr = 0
	MOVL $0xFFFFFFFF, CX
	VPBROADCASTD CX, Z8
	VMOVDQA32 Z8, K3, Z6       // sentinel rem = ~0
	DECQ R15
drainanext:
	TESTQ R13, R13
	JNZ draina

skipa:
	// Stage group A's next round while B's draw loop runs.
	VEXTRACTI64X4 $1, Z6, Y8
	VPMINUD Y8, Y6, Y8
	VEXTRACTI128 $1, Y8, X11
	VPMINUD X11, X8, X8
	VPSHUFD $0xEE, X8, X11
	VPMINUD X11, X8, X8
	VPSHUFD $0x55, X8, X11
	VPMINUD X11, X8, X8
	VMOVD X8, DX
	VPBROADCASTD X8, Z12
	VPSUBD Z12, Z6, Z6
	VPCMPEQD Z9, Z6, K1
	KMOVW K1, R13

	TESTQ R14, R14
	JZ skipb

innerb:
	VPSLLD $13, Z1, Z11
	VPXORD Z11, Z1, Z1
	VPSRLD $17, Z1, Z11
	VPXORD Z11, Z1, Z1
	VPSLLD $5, Z1, Z11
	VPXORD Z11, Z1, Z1
	VPCMPUD $1, Z3, Z1, K2
	VPADDD Z10, Z5, K2, Z5
	DECL R8                    // group B's staged m
	JNZ innerb

drainb:
	BSFQ R10, R12              // j-16 = lowest drained lane bit
	LEAQ -1(R10), AX
	ANDQ AX, R10
	MOVQ R12, CX
	MOVL $1, AX
	SHLL CX, AX
	KMOVW AX, K3
	ADDQ $16, R12              // j = lane index in walk order
	VPCOMPRESSD.Z Z5, K3, Z8
	VMOVD X8, BX
	MOVL slot-128(SP)(R12*4), AX
	ADDL BX, (DI)(AX*4)
	VMOVDQA32 Z9, K3, Z5       // zero the drained counter lane
	MOVL 176(R9)(R12*4), CX
	TESTL CX, CX
	JZ lanesentb
	DECL CX
	MOVL CX, 176(R9)(R12*4)
	MOVL 48(R9)(R12*4), BX
	LEAL 1(BX), CX
	MOVL CX, 48(R9)(R12*4)
	LEAQ (BX)(BX*2), AX
	MOVL 0(SI)(AX*4), CX
	VPBROADCASTD CX, Z8
	VMOVDQA32 Z8, K3, Z3
	MOVL 4(SI)(AX*4), CX
	VPBROADCASTD CX, Z8
	VMOVDQA32 Z8, K3, Z7
	MOVL 8(SI)(AX*4), CX
	MOVL CX, slot-128(SP)(R12*4)
	PREFETCHT0 12(SI)(AX*4)    // lane j's next record (sequential run)
	JMP drainbnext
lanesentb:
	VMOVDQA32 Z9, K3, Z3
	MOVL $0xFFFFFFFF, CX
	VPBROADCASTD CX, Z8
	VMOVDQA32 Z8, K3, Z7
	DECQ R14
drainbnext:
	TESTQ R10, R10
	JNZ drainb

skipb:
	// Stage group B's next round while A's draw loop runs.
	VEXTRACTI64X4 $1, Z7, Y8
	VPMINUD Y8, Y7, Y8
	VEXTRACTI128 $1, Y8, X11
	VPMINUD X11, X8, X8
	VPSHUFD $0xEE, X8, X11
	VPMINUD X11, X8, X8
	VPSHUFD $0x55, X8, X11
	VPMINUD X11, X8, X8
	VMOVD X8, R8
	VPBROADCASTD X8, Z12
	VPSUBD Z12, Z7, Z7
	VPCMPEQD Z9, Z7, K2
	KMOVW K2, R10

	MOVQ R15, AX
	ORQ R14, AX
	JNZ mainloop

	VMOVDQU32 Z0, 304(R9)
	VMOVDQU32 Z1, 368(R9)
	VZEROUPPER
	RET
