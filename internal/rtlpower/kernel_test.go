package rtlpower

import (
	"strings"
	"testing"
)

func TestParseKernel(t *testing.T) {
	for k, name := range kernelNames {
		got, err := ParseKernel(name)
		if err != nil || got != Kernel(k) {
			t.Errorf("ParseKernel(%q) = %v, %v; want %v, nil", name, got, err, Kernel(k))
		}
	}
	for _, bad := range []string{"", "AVX2", "sse", "avx1024"} {
		if _, err := ParseKernel(bad); err == nil {
			t.Errorf("ParseKernel(%q) succeeded, want error", bad)
		} else if !strings.Contains(err.Error(), "valid:") {
			t.Errorf("ParseKernel(%q) error %q does not list the valid names", bad, err)
		}
	}
}

func TestKernelWidth(t *testing.T) {
	widths := map[Kernel]int{
		KernelPortable: 8, KernelSSE2: 8, KernelAVX2: 16, KernelAVX512: 32, KernelNEON: 8,
	}
	for k, want := range widths {
		if got := k.width(); got != want {
			t.Errorf("%s.width() = %d, want %d", k, got, want)
		}
	}
}

func TestSetKernelRoundTrip(t *testing.T) {
	def := SelectedKernel()
	t.Cleanup(func() {
		if err := SetKernel(def.String()); err != nil {
			t.Fatalf("restoring default kernel: %v", err)
		}
	})

	for _, k := range SupportedKernels() {
		if err := SetKernel(k.String()); err != nil {
			t.Fatalf("SetKernel(%q): %v", k, err)
		}
		if got := SelectedKernel(); got != k {
			t.Fatalf("SelectedKernel() = %v after SetKernel(%q)", got, k)
		}
	}

	// A failed SetKernel must leave the current tier untouched.
	if err := SetKernel("portable"); err != nil {
		t.Fatalf("SetKernel(portable): %v", err)
	}
	if err := SetKernel("no-such-tier"); err == nil {
		t.Fatal("SetKernel(no-such-tier) succeeded, want error")
	}
	if got := SelectedKernel(); got != KernelPortable {
		t.Fatalf("failed SetKernel changed the tier to %v", got)
	}
}

func TestSetKernelUnsupported(t *testing.T) {
	supported := map[Kernel]bool{}
	for _, k := range SupportedKernels() {
		supported[k] = true
	}
	if !supported[KernelPortable] {
		t.Fatal("portable tier missing from SupportedKernels")
	}
	for k := Kernel(0); k < numKernels; k++ {
		if supported[k] {
			continue
		}
		err := SetKernel(k.String())
		if err == nil {
			t.Fatalf("SetKernel(%q) succeeded on a host that does not support it", k)
		}
		if !strings.Contains(err.Error(), "not supported on this host") {
			t.Errorf("SetKernel(%q) error %q lacks the host-support explanation", k, err)
		}
	}
}

func TestApplyKernelFlag(t *testing.T) {
	def := SelectedKernel()
	t.Cleanup(func() {
		if err := SetKernel(def.String()); err != nil {
			t.Fatalf("restoring default kernel: %v", err)
		}
	})

	// Empty flag defers to the (valid-or-absent here) environment value.
	if err := ApplyKernelFlag(""); err != EnvKernelError() {
		t.Errorf("ApplyKernelFlag(\"\") = %v, want EnvKernelError() = %v", err, EnvKernelError())
	}
	if err := ApplyKernelFlag("portable"); err != nil {
		t.Fatalf("ApplyKernelFlag(portable): %v", err)
	}
	if got := SelectedKernel(); got != KernelPortable {
		t.Fatalf("SelectedKernel() = %v after forcing portable", got)
	}
	if err := ApplyKernelFlag("bogus"); err == nil {
		t.Error("ApplyKernelFlag(bogus) succeeded, want error")
	}
}
