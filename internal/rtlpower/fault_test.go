package rtlpower_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"xtenergy/internal/asm"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
)

// longLoopSrc retires ~10k instructions: enough batches for mid-stream
// cancellation to land between batch boundaries.
const longLoopSrc = `
    movi a2, 2500
    movi a3, 17
loop:
    add a4, a3, a2
    xor a3, a4, a3
    addi a2, a2, -1
    bnez a2, loop
    ret
`

// settleGoroutines polls until the goroutine count returns to at most
// base (the stream pipeline's workers have exited) or the deadline
// passes.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d running, started with %d", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func buildLong(t *testing.T) (*procgen.Processor, *iss.Program) {
	t.Helper()
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.New(proc.TIE).Assemble("t", longLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	return proc, prog
}

// TestEstimateProgramWatchdog drives a watchdog abort through the
// streamed path: the fault must carry the right kind and the pipeline's
// goroutine must be gone afterwards.
func TestEstimateProgramWatchdog(t *testing.T) {
	proc, prog := buildLong(t)
	base := runtime.NumGoroutine()
	e, err := rtlpower.New(proc, testTech())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = e.EstimateProgram(context.Background(), prog, iss.Options{MaxCycles: 500})
	f, ok := iss.AsFault(err)
	if !ok || f.Kind != iss.FaultWatchdog {
		t.Fatalf("want watchdog fault, got %v", err)
	}
	settleGoroutines(t, base)
}

// cancellingConsumer cancels the run after the first batch, then keeps
// accepting batches so shutdown can drain the channel.
type cancellingConsumer struct {
	cancel  context.CancelFunc
	batches int
}

func (c *cancellingConsumer) Consume(batch []iss.TraceEntry) error {
	c.batches++
	if c.batches == 1 {
		c.cancel()
	}
	return nil
}

// TestRunStreamedCancelMidStream cancels the context from inside the
// consumer mid-run: the run must surface a cancelled fault wrapping
// context.Canceled within a batch boundary, and the pipeline must not
// leak its goroutine or deadlock on the bounded channels.
func TestRunStreamedCancelMidStream(t *testing.T) {
	proc, prog := buildLong(t)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := &cancellingConsumer{cancel: cancel}
	_, err := rtlpower.RunStreamed(ctx, iss.New(proc), prog, iss.Options{}, c)
	f, ok := iss.AsFault(err)
	if !ok || f.Kind != iss.FaultCancelled {
		t.Fatalf("want cancelled fault, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("fault does not wrap context.Canceled: %v", err)
	}
	// Cancellation is observed at batch granularity: the consumer must
	// not have seen anywhere near the full ~10k-entry trace.
	if c.batches > 8 {
		t.Fatalf("consumer saw %d batches after cancelling on the first", c.batches)
	}
	settleGoroutines(t, base)
}

// TestRunStreamedConsumerError aborts the run when the consumer rejects
// a batch; the sink error must surface and the pipeline must shut down.
func TestRunStreamedConsumerError(t *testing.T) {
	proc, prog := buildLong(t)
	base := runtime.NumGoroutine()
	boom := errors.New("consumer rejected batch")
	_, err := rtlpower.RunStreamed(context.Background(), iss.New(proc), prog, iss.Options{},
		consumerFunc(func(batch []iss.TraceEntry) error { return boom }))
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("consumer error lost: %v", err)
	}
	settleGoroutines(t, base)
}

// TestRunStreamedConsumerPanic converts a panicking consumer into a
// typed panic fault instead of tearing down the process.
func TestRunStreamedConsumerPanic(t *testing.T) {
	proc, prog := buildLong(t)
	base := runtime.NumGoroutine()
	_, err := rtlpower.RunStreamed(context.Background(), iss.New(proc), prog, iss.Options{},
		consumerFunc(func(batch []iss.TraceEntry) error { panic("consumer bug") }))
	f, ok := iss.AsFault(err)
	if !ok || f.Kind != iss.FaultPanic {
		t.Fatalf("want panic fault, got %v", err)
	}
	settleGoroutines(t, base)
}

type consumerFunc func(batch []iss.TraceEntry) error

func (f consumerFunc) Consume(batch []iss.TraceEntry) error { return f(batch) }
