//go:build !amd64 && !arm64

package rtlpower

// Architectures without a SIMD walker run the portable tier only.
func supportedKernels() []Kernel { return []Kernel{KernelPortable} }

func defaultKernel() Kernel { return KernelPortable }
