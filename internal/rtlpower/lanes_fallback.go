//go:build !amd64

package rtlpower

// The wide (16/32-lane) walks only have amd64 assembly; elsewhere they
// resolve to the portable walker. The dispatch ladder never selects
// the AVX tiers off amd64, so these exist to keep the width-generic
// chunk compiler compiling everywhere.
func countStripes16(w *walk16) { countStripes16Go(w) }
func countStripes32(w *walk32) { countStripes32Go(w) }
