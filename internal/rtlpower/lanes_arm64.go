package rtlpower

// countStripes8NEON is the Advanced SIMD form of the 8-lane walker
// (lanes_arm64.s): two 4-wide xorshift32 vectors, the same
// lockstep-round contract as countStripes8Go. The Go arm64 assembler
// has no vector unsigned-compare-greater, so the kernel counts
// "state < thr" as "umin(state, thr-1) == state" — exact because
// xorshift32 states are never zero (seeds are or-ed with 1) and
// records with thr == 0 load a clamped thr-1 of 0, which no state
// ever equals.
//
//go:noescape
func countStripes8NEON(w *walk8)

// countStripes8 runs one 8-lane walk; on arm64 it is the NEON walker.
func countStripes8(w *walk8) { countStripes8NEON(w) }
