// SSE2 form of the 8-lane stripe walker (see lanes.go for the
// contract and countStripes8Go for the reference implementation).
//
// Lane layout: X0 holds lanes 0-3, X8 lanes 4-7. The unsigned compare
// "state < threshold" is done with the signed PCMPGTD after biasing
// both sides by 0x80000000; thresholds are biased once at record load
// (X5/X13), states per draw (via X7). Per-lane toggle counters
// accumulate in X3/X11 across rounds and are flushed to
// counts[rec.slot] only when a record drains, so the per-round scalar
// sweep touches memory for at most the lanes that crossed a record
// boundary. Exhausted lanes idle on a sentinel record (rem=~0,
// biased threshold 0x80000000 = INT32_MIN, which PCMPGTD never counts)
// until every lane drains; chunk totals are capped below 2^31 draws so
// sentinels never decay into live range.
//
// Frame locals: rem[8] at -128(SP), count dump cbuf[8] at -96(SP),
// biased thresholds thrv[8] at -64(SP), slot[8] at -32(SP).
// walk8 field offsets (pinned by TestWalk8Layout): recs.ptr +0,
// counts.ptr +24, off +48, cnt +80, st +112.

#include "textflag.h"

// func countStripes8SSE2(w *walk8)
TEXT ·countStripes8SSE2(SB), NOSPLIT, $128-8
	MOVQ w+0(FP), R9
	MOVQ 0(R9), SI             // recs data
	MOVQ 24(R9), DI            // counts data
	MOVOU 112(R9), X0          // states, lanes 0-3
	MOVOU 128(R9), X8          // states, lanes 4-7
	MOVL $0x80000000, AX
	MOVD AX, X7
	PSHUFD $0, X7, X7          // sign-bias broadcast
	PXOR X3, X3
	MOVOU X3, cbuf-96(SP)
	MOVOU X3, cbuf-80(SP)
	XORQ R15, R15              // live lane count

	// Load each lane's first record (or a sentinel).
	XORQ R12, R12
initlane:
	MOVL $0xFFFFFFFF, rem-128(SP)(R12*4)
	MOVL $0x80000000, thrv-64(SP)(R12*4)
	MOVL $0, slot-32(SP)(R12*4)
	MOVL 80(R9)(R12*4), CX     // cnt[j]
	TESTL CX, CX
	JZ initnext
	DECL CX
	MOVL CX, 80(R9)(R12*4)
	MOVL 48(R9)(R12*4), BX     // off[j]
	LEAL 1(BX), CX
	MOVL CX, 48(R9)(R12*4)
	LEAQ (BX)(BX*2), AX        // record at recs + off*12
	MOVL 0(SI)(AX*4), CX       // thr
	XORL $0x80000000, CX
	MOVL CX, thrv-64(SP)(R12*4)
	MOVL 4(SI)(AX*4), CX       // rem
	MOVL CX, rem-128(SP)(R12*4)
	MOVL 8(SI)(AX*4), CX       // slot
	MOVL CX, slot-32(SP)(R12*4)
	INCQ R15
initnext:
	INCQ R12
	CMPQ R12, $8
	JLT initlane

	MOVOU thrv-64(SP), X5      // biased thresholds, lanes 0-3
	MOVOU thrv-48(SP), X13     // biased thresholds, lanes 4-7
	PXOR X3, X3                // toggle counters, lanes 0-3
	PXOR X11, X11              // toggle counters, lanes 4-7

round:
	TESTQ R15, R15
	JZ walkdone

	// m = min over the 8 remaining-draw counters.
	MOVL rem-128(SP), R10
	MOVL rem-124(SP), AX
	CMPL AX, R10
	CMOVLCS AX, R10
	MOVL rem-120(SP), AX
	CMPL AX, R10
	CMOVLCS AX, R10
	MOVL rem-116(SP), AX
	CMPL AX, R10
	CMOVLCS AX, R10
	MOVL rem-112(SP), AX
	CMPL AX, R10
	CMOVLCS AX, R10
	MOVL rem-108(SP), AX
	CMPL AX, R10
	CMOVLCS AX, R10
	MOVL rem-104(SP), AX
	CMPL AX, R10
	CMOVLCS AX, R10
	MOVL rem-100(SP), AX
	CMPL AX, R10
	CMOVLCS AX, R10

	MOVL R10, DX
inner:
	MOVOA X0, X1
	PSLLL $13, X1
	PXOR X1, X0
	MOVOA X8, X9
	PSLLL $13, X9
	PXOR X9, X8
	MOVOA X0, X1
	PSRLL $17, X1
	PXOR X1, X0
	MOVOA X8, X9
	PSRLL $17, X9
	PXOR X9, X8
	MOVOA X0, X1
	PSLLL $5, X1
	PXOR X1, X0
	MOVOA X8, X9
	PSLLL $5, X9
	PXOR X9, X8
	MOVOA X0, X1
	PXOR X7, X1                // biased states 0-3
	MOVOA X5, X2
	PCMPGTL X1, X2             // thr_b > st_b  <=>  st < thr
	PSUBL X2, X3
	MOVOA X8, X9
	PXOR X7, X9                // biased states 4-7
	MOVOA X13, X10
	PCMPGTL X9, X10
	PSUBL X10, X11
	DECL DX
	JNZ inner

	// Dump counters so drained lanes can flush scalar-side.
	MOVOU X3, cbuf-96(SP)
	MOVOU X11, cbuf-80(SP)

	// Lane 0.
	MOVL rem-128(SP), AX
	SUBL R10, AX
	MOVL AX, rem-128(SP)
	JNZ lane0done
	MOVL slot-32(SP), AX
	MOVL cbuf-96(SP), BX
	ADDL BX, (DI)(AX*4)
	MOVL $0, cbuf-96(SP)
	MOVL 80(R9), CX
	TESTL CX, CX
	JZ lane0out
	DECL CX
	MOVL CX, 80(R9)
	MOVL 48(R9), BX
	LEAL 1(BX), CX
	MOVL CX, 48(R9)
	LEAQ (BX)(BX*2), AX
	MOVL 0(SI)(AX*4), CX
	XORL $0x80000000, CX
	MOVL CX, thrv-64(SP)
	MOVL 4(SI)(AX*4), CX
	MOVL CX, rem-128(SP)
	MOVL 8(SI)(AX*4), CX
	MOVL CX, slot-32(SP)
	JMP lane0done
lane0out:
	MOVL $0xFFFFFFFF, rem-128(SP)
	MOVL $0x80000000, thrv-64(SP)
	MOVL $0, slot-32(SP)
	DECQ R15
lane0done:

	// Lane 1.
	MOVL rem-124(SP), AX
	SUBL R10, AX
	MOVL AX, rem-124(SP)
	JNZ lane1done
	MOVL slot-28(SP), AX
	MOVL cbuf-92(SP), BX
	ADDL BX, (DI)(AX*4)
	MOVL $0, cbuf-92(SP)
	MOVL 84(R9), CX
	TESTL CX, CX
	JZ lane1out
	DECL CX
	MOVL CX, 84(R9)
	MOVL 52(R9), BX
	LEAL 1(BX), CX
	MOVL CX, 52(R9)
	LEAQ (BX)(BX*2), AX
	MOVL 0(SI)(AX*4), CX
	XORL $0x80000000, CX
	MOVL CX, thrv-60(SP)
	MOVL 4(SI)(AX*4), CX
	MOVL CX, rem-124(SP)
	MOVL 8(SI)(AX*4), CX
	MOVL CX, slot-28(SP)
	JMP lane1done
lane1out:
	MOVL $0xFFFFFFFF, rem-124(SP)
	MOVL $0x80000000, thrv-60(SP)
	MOVL $0, slot-28(SP)
	DECQ R15
lane1done:

	// Lane 2.
	MOVL rem-120(SP), AX
	SUBL R10, AX
	MOVL AX, rem-120(SP)
	JNZ lane2done
	MOVL slot-24(SP), AX
	MOVL cbuf-88(SP), BX
	ADDL BX, (DI)(AX*4)
	MOVL $0, cbuf-88(SP)
	MOVL 88(R9), CX
	TESTL CX, CX
	JZ lane2out
	DECL CX
	MOVL CX, 88(R9)
	MOVL 56(R9), BX
	LEAL 1(BX), CX
	MOVL CX, 56(R9)
	LEAQ (BX)(BX*2), AX
	MOVL 0(SI)(AX*4), CX
	XORL $0x80000000, CX
	MOVL CX, thrv-56(SP)
	MOVL 4(SI)(AX*4), CX
	MOVL CX, rem-120(SP)
	MOVL 8(SI)(AX*4), CX
	MOVL CX, slot-24(SP)
	JMP lane2done
lane2out:
	MOVL $0xFFFFFFFF, rem-120(SP)
	MOVL $0x80000000, thrv-56(SP)
	MOVL $0, slot-24(SP)
	DECQ R15
lane2done:

	// Lane 3.
	MOVL rem-116(SP), AX
	SUBL R10, AX
	MOVL AX, rem-116(SP)
	JNZ lane3done
	MOVL slot-20(SP), AX
	MOVL cbuf-84(SP), BX
	ADDL BX, (DI)(AX*4)
	MOVL $0, cbuf-84(SP)
	MOVL 92(R9), CX
	TESTL CX, CX
	JZ lane3out
	DECL CX
	MOVL CX, 92(R9)
	MOVL 60(R9), BX
	LEAL 1(BX), CX
	MOVL CX, 60(R9)
	LEAQ (BX)(BX*2), AX
	MOVL 0(SI)(AX*4), CX
	XORL $0x80000000, CX
	MOVL CX, thrv-52(SP)
	MOVL 4(SI)(AX*4), CX
	MOVL CX, rem-116(SP)
	MOVL 8(SI)(AX*4), CX
	MOVL CX, slot-20(SP)
	JMP lane3done
lane3out:
	MOVL $0xFFFFFFFF, rem-116(SP)
	MOVL $0x80000000, thrv-52(SP)
	MOVL $0, slot-20(SP)
	DECQ R15
lane3done:

	// Lane 4.
	MOVL rem-112(SP), AX
	SUBL R10, AX
	MOVL AX, rem-112(SP)
	JNZ lane4done
	MOVL slot-16(SP), AX
	MOVL cbuf-80(SP), BX
	ADDL BX, (DI)(AX*4)
	MOVL $0, cbuf-80(SP)
	MOVL 96(R9), CX
	TESTL CX, CX
	JZ lane4out
	DECL CX
	MOVL CX, 96(R9)
	MOVL 64(R9), BX
	LEAL 1(BX), CX
	MOVL CX, 64(R9)
	LEAQ (BX)(BX*2), AX
	MOVL 0(SI)(AX*4), CX
	XORL $0x80000000, CX
	MOVL CX, thrv-48(SP)
	MOVL 4(SI)(AX*4), CX
	MOVL CX, rem-112(SP)
	MOVL 8(SI)(AX*4), CX
	MOVL CX, slot-16(SP)
	JMP lane4done
lane4out:
	MOVL $0xFFFFFFFF, rem-112(SP)
	MOVL $0x80000000, thrv-48(SP)
	MOVL $0, slot-16(SP)
	DECQ R15
lane4done:

	// Lane 5.
	MOVL rem-108(SP), AX
	SUBL R10, AX
	MOVL AX, rem-108(SP)
	JNZ lane5done
	MOVL slot-12(SP), AX
	MOVL cbuf-76(SP), BX
	ADDL BX, (DI)(AX*4)
	MOVL $0, cbuf-76(SP)
	MOVL 100(R9), CX
	TESTL CX, CX
	JZ lane5out
	DECL CX
	MOVL CX, 100(R9)
	MOVL 68(R9), BX
	LEAL 1(BX), CX
	MOVL CX, 68(R9)
	LEAQ (BX)(BX*2), AX
	MOVL 0(SI)(AX*4), CX
	XORL $0x80000000, CX
	MOVL CX, thrv-44(SP)
	MOVL 4(SI)(AX*4), CX
	MOVL CX, rem-108(SP)
	MOVL 8(SI)(AX*4), CX
	MOVL CX, slot-12(SP)
	JMP lane5done
lane5out:
	MOVL $0xFFFFFFFF, rem-108(SP)
	MOVL $0x80000000, thrv-44(SP)
	MOVL $0, slot-12(SP)
	DECQ R15
lane5done:

	// Lane 6.
	MOVL rem-104(SP), AX
	SUBL R10, AX
	MOVL AX, rem-104(SP)
	JNZ lane6done
	MOVL slot-8(SP), AX
	MOVL cbuf-72(SP), BX
	ADDL BX, (DI)(AX*4)
	MOVL $0, cbuf-72(SP)
	MOVL 104(R9), CX
	TESTL CX, CX
	JZ lane6out
	DECL CX
	MOVL CX, 104(R9)
	MOVL 72(R9), BX
	LEAL 1(BX), CX
	MOVL CX, 72(R9)
	LEAQ (BX)(BX*2), AX
	MOVL 0(SI)(AX*4), CX
	XORL $0x80000000, CX
	MOVL CX, thrv-40(SP)
	MOVL 4(SI)(AX*4), CX
	MOVL CX, rem-104(SP)
	MOVL 8(SI)(AX*4), CX
	MOVL CX, slot-8(SP)
	JMP lane6done
lane6out:
	MOVL $0xFFFFFFFF, rem-104(SP)
	MOVL $0x80000000, thrv-40(SP)
	MOVL $0, slot-8(SP)
	DECQ R15
lane6done:

	// Lane 7.
	MOVL rem-100(SP), AX
	SUBL R10, AX
	MOVL AX, rem-100(SP)
	JNZ lane7done
	MOVL slot-4(SP), AX
	MOVL cbuf-68(SP), BX
	ADDL BX, (DI)(AX*4)
	MOVL $0, cbuf-68(SP)
	MOVL 108(R9), CX
	TESTL CX, CX
	JZ lane7out
	DECL CX
	MOVL CX, 108(R9)
	MOVL 76(R9), BX
	LEAL 1(BX), CX
	MOVL CX, 76(R9)
	LEAQ (BX)(BX*2), AX
	MOVL 0(SI)(AX*4), CX
	XORL $0x80000000, CX
	MOVL CX, thrv-36(SP)
	MOVL 4(SI)(AX*4), CX
	MOVL CX, rem-100(SP)
	MOVL 8(SI)(AX*4), CX
	MOVL CX, slot-4(SP)
	JMP lane7done
lane7out:
	MOVL $0xFFFFFFFF, rem-100(SP)
	MOVL $0x80000000, thrv-36(SP)
	MOVL $0, slot-4(SP)
	DECQ R15
lane7done:

	// Reinstall counters and thresholds with drained lanes updated.
	MOVOU cbuf-96(SP), X3
	MOVOU cbuf-80(SP), X11
	MOVOU thrv-64(SP), X5
	MOVOU thrv-48(SP), X13
	JMP round

walkdone:
	MOVOU X0, 112(R9)
	MOVOU X8, 128(R9)
	RET
