package rtlpower

import (
	"math/rand"
	"testing"
)

// TestJumpAheadMatchesSequential pins the jump-ahead identity the lane
// walker is built on: JumpAhead(s, k) equals k applications of the
// xorshift32 step, for k spanning zero, small counts, powers of two,
// and multi-bit counts past 2^32.
func TestJumpAheadMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ks := []uint64{0, 1, 2, 3, 5, 13, 31, 32, 33, 100, 255, 256, 1 << 12, 1<<16 + 7, 1<<20 + 12345}
	for _, k := range ks {
		for trial := 0; trial < 4; trial++ {
			s := uint32(rng.Int63()) | 1
			want := s
			for i := uint64(0); i < k; i++ {
				want = xorshiftStep(want)
			}
			if got := JumpAhead(s, k); got != want {
				t.Fatalf("JumpAhead(%#x, %d) = %#x, want %#x", s, k, got, want)
			}
		}
	}
}

// TestJumpAheadComposes checks the group property jump-ahead inherits
// from matrix exponentiation — JumpAhead(JumpAhead(s,a), b) ==
// JumpAhead(s, a+b) — on large counts where sequential verification is
// impractical (covers every bit of the precomputed power table).
func TestJumpAheadComposes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 64; trial++ {
		s := uint32(rng.Int63()) | 1
		a := rng.Uint64() >> 1 // keep a+b from wrapping uint64
		b := rng.Uint64() >> 1
		got := JumpAhead(JumpAhead(s, a), b)
		want := JumpAhead(s, a+b)
		if got != want {
			t.Fatalf("compose mismatch: s=%#x a=%d b=%d: %#x != %#x", s, a, b, got, want)
		}
	}
}

// FuzzJumpAhead is the differential form of TestJumpAheadMatchesSequential
// over arbitrary (state, k) with k kept small enough to step sequentially.
func FuzzJumpAhead(f *testing.F) {
	f.Add(uint32(0x12345), uint16(77))
	f.Add(uint32(1), uint16(0))
	f.Add(^uint32(0), uint16(513))
	f.Fuzz(func(t *testing.T, s uint32, k16 uint16) {
		if s == 0 {
			s = 1 // zero is the fixed point of any linear map; uninteresting
		}
		k := uint64(k16)
		want := s
		for i := uint64(0); i < k; i++ {
			want = xorshiftStep(want)
		}
		if got := JumpAhead(s, k); got != want {
			t.Fatalf("JumpAhead(%#x, %d) = %#x, want %#x", s, k, got, want)
		}
	})
}
