package rtlpower

import (
	"math/rand"
	"testing"
	"unsafe"
)

// TestWalk8Layout pins the struct layout lanes_amd64.s hardcodes. If
// this fails, the assembly's field offsets must be updated in lockstep.
func TestWalk8Layout(t *testing.T) {
	var w walk8
	if got := unsafe.Sizeof(laneRec{}); got != 12 {
		t.Errorf("sizeof(laneRec) = %d, want 12", got)
	}
	offs := []struct {
		name string
		got  uintptr
		want uintptr
	}{
		{"recs", unsafe.Offsetof(w.recs), 0},
		{"counts", unsafe.Offsetof(w.counts), 24},
		{"off", unsafe.Offsetof(w.off), 48},
		{"cnt", unsafe.Offsetof(w.cnt), 80},
		{"st", unsafe.Offsetof(w.st), 112},
	}
	for _, o := range offs {
		if o.got != o.want {
			t.Errorf("offsetof(walk8.%s) = %d, want %d", o.name, o.got, o.want)
		}
	}
}

// TestWalk16Layout pins the struct layout lanes16_amd64.s hardcodes.
func TestWalk16Layout(t *testing.T) {
	var w walk16
	offs := []struct {
		name string
		got  uintptr
		want uintptr
	}{
		{"recs", unsafe.Offsetof(w.recs), 0},
		{"counts", unsafe.Offsetof(w.counts), 24},
		{"off", unsafe.Offsetof(w.off), 48},
		{"cnt", unsafe.Offsetof(w.cnt), 112},
		{"st", unsafe.Offsetof(w.st), 176},
	}
	for _, o := range offs {
		if o.got != o.want {
			t.Errorf("offsetof(walk16.%s) = %d, want %d", o.name, o.got, o.want)
		}
	}
}

// TestWalk32Layout pins the struct layout lanes32_amd64.s hardcodes.
func TestWalk32Layout(t *testing.T) {
	var w walk32
	offs := []struct {
		name string
		got  uintptr
		want uintptr
	}{
		{"recs", unsafe.Offsetof(w.recs), 0},
		{"counts", unsafe.Offsetof(w.counts), 24},
		{"off", unsafe.Offsetof(w.off), 48},
		{"cnt", unsafe.Offsetof(w.cnt), 176},
		{"st", unsafe.Offsetof(w.st), 304},
	}
	for _, o := range offs {
		if o.got != o.want {
			t.Errorf("offsetof(walk32.%s) = %d, want %d", o.name, o.got, o.want)
		}
	}
}

// walkOracle advances each lane's record runs on the scalar chain,
// mirroring the walk8 contract one lane at a time.
func walkOracle(w *walk8) {
	for j := 0; j < 8; j++ {
		st := w.st[j]
		for k := uint32(0); k < w.cnt[j]; k++ {
			r := w.recs[w.off[j]+k]
			for d := uint32(0); d < r.rem; d++ {
				st = xorshiftStep(st)
				if st < r.thr {
					w.counts[r.slot]++
				}
			}
		}
		w.st[j] = st
	}
}

// randomWalk builds a walk8 with lanes of random record runs laid out
// contiguously, including empty lanes and extreme thresholds.
func randomWalk(rng *rand.Rand, nslots int) *walk8 {
	w := &walk8{counts: make([]uint32, nslots)}
	for j := 0; j < 8; j++ {
		nrec := rng.Intn(5)
		if rng.Intn(8) == 0 {
			nrec = 0 // empty lane: starts and stays on the sentinel
		}
		w.off[j] = uint32(len(w.recs))
		w.cnt[j] = uint32(nrec)
		w.st[j] = rng.Uint32() | 1
		for k := 0; k < nrec; k++ {
			var thr uint32
			switch rng.Intn(5) {
			case 0:
				thr = 0 // never toggles
			case 1:
				thr = ^uint32(0) // toggles on everything but ^0 itself
			default:
				thr = rng.Uint32()
			}
			w.recs = append(w.recs, laneRec{
				thr:  thr,
				rem:  uint32(rng.Intn(700) + 1),
				slot: uint32(rng.Intn(nslots)),
			})
		}
	}
	return w
}

func cloneWalk(w *walk8) *walk8 {
	c := *w
	c.recs = append([]laneRec(nil), w.recs...)
	c.counts = make([]uint32, len(w.counts))
	copy(c.counts, w.counts)
	return &c
}

// TestCountStripes8MatchesOracle differentially tests both walker
// implementations — the portable lockstep walker and whatever
// countStripes8 dispatches to on this architecture (the SSE2 kernel on
// amd64) — against the one-lane-at-a-time scalar oracle, on random
// walks including empty lanes, shared slots, and boundary thresholds.
func TestCountStripes8MatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		w := randomWalk(rng, 1+rng.Intn(6))
		want := cloneWalk(w)
		walkOracle(want)

		gotGo := cloneWalk(w)
		countStripes8Go(gotGo)
		compareWalk(t, "countStripes8Go", trial, want, gotGo)

		gotDisp := cloneWalk(w)
		countStripes8(gotDisp)
		compareWalk(t, "countStripes8", trial, want, gotDisp)
	}
}

func compareWalk(t *testing.T, impl string, trial int, want, got *walk8) {
	t.Helper()
	for i := range want.counts {
		if got.counts[i] != want.counts[i] {
			t.Fatalf("trial %d: %s counts[%d] = %d, want %d", trial, impl, i, got.counts[i], want.counts[i])
		}
	}
	// Exit states are not compared: lanes that drain early keep
	// drawing on their sentinel record until every lane finishes, so
	// w.st is diagnostic only (chunk RNG continuity uses JumpAhead).
}

// wideOracle advances each lane of a generic (off/cnt/st slice) walk on
// the scalar chain, one lane at a time — the width-generic walkOracle.
func wideOracle(recs []laneRec, counts []uint32, off, cnt, st []uint32) {
	for j := range off {
		s := st[j]
		for k := uint32(0); k < cnt[j]; k++ {
			r := recs[off[j]+k]
			for d := uint32(0); d < r.rem; d++ {
				s = xorshiftStep(s)
				if s < r.thr {
					counts[r.slot]++
				}
			}
		}
		st[j] = s
	}
}

// randomLanes fills width lanes of random record runs laid out
// contiguously, including empty lanes and extreme thresholds.
func randomLanes(rng *rand.Rand, nslots, width int, off, cnt, st []uint32) []laneRec {
	var recs []laneRec
	for j := 0; j < width; j++ {
		nrec := rng.Intn(5)
		if rng.Intn(8) == 0 {
			nrec = 0 // empty lane: starts and stays on the sentinel
		}
		off[j] = uint32(len(recs))
		cnt[j] = uint32(nrec)
		st[j] = rng.Uint32() | 1
		for k := 0; k < nrec; k++ {
			var thr uint32
			switch rng.Intn(5) {
			case 0:
				thr = 0 // never toggles
			case 1:
				thr = ^uint32(0) // toggles on everything but ^0 itself
			default:
				thr = rng.Uint32()
			}
			recs = append(recs, laneRec{
				thr:  thr,
				rem:  uint32(rng.Intn(700) + 1),
				slot: uint32(rng.Intn(nslots)),
			})
		}
	}
	return recs
}

// kernelSupported reports whether the dispatch ladder can run tier k on
// this host.
func kernelSupported(k Kernel) bool {
	for _, s := range SupportedKernels() {
		if s == k {
			return true
		}
	}
	return false
}

// TestCountStripes16MatchesOracle differentially tests the 16-lane
// walkers — the portable wide walker always, and the AVX2 kernel when
// this host can run it — against the one-lane-at-a-time scalar oracle.
func TestCountStripes16MatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		nslots := 1 + rng.Intn(6)
		w := &walk16{counts: make([]uint32, nslots)}
		w.recs = randomLanes(rng, nslots, 16, w.off[:], w.cnt[:], w.st[:])

		want := make([]uint32, nslots)
		wideOracle(w.recs, want, append([]uint32(nil), w.off[:]...), append([]uint32(nil), w.cnt[:]...), append([]uint32(nil), w.st[:]...))

		gotGo := *w
		gotGo.counts = make([]uint32, nslots)
		countStripes16Go(&gotGo)
		compareCounts(t, "countStripes16Go", trial, want, gotGo.counts)

		if kernelSupported(KernelAVX2) {
			gotAsm := *w
			gotAsm.counts = make([]uint32, nslots)
			countStripes16(&gotAsm)
			compareCounts(t, "countStripes16AVX2", trial, want, gotAsm.counts)
		}
	}
}

// TestCountStripes32MatchesOracle is the 32-lane (AVX-512) twin.
func TestCountStripes32MatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		nslots := 1 + rng.Intn(6)
		w := &walk32{counts: make([]uint32, nslots)}
		w.recs = randomLanes(rng, nslots, 32, w.off[:], w.cnt[:], w.st[:])

		want := make([]uint32, nslots)
		wideOracle(w.recs, want, append([]uint32(nil), w.off[:]...), append([]uint32(nil), w.cnt[:]...), append([]uint32(nil), w.st[:]...))

		gotGo := *w
		gotGo.counts = make([]uint32, nslots)
		countStripes32Go(&gotGo)
		compareCounts(t, "countStripes32Go", trial, want, gotGo.counts)

		if kernelSupported(KernelAVX512) {
			gotAsm := *w
			gotAsm.counts = make([]uint32, nslots)
			countStripes32(&gotAsm)
			compareCounts(t, "countStripes32AVX512", trial, want, gotAsm.counts)
		}
	}
}

func compareCounts(t *testing.T, impl string, trial int, want, got []uint32) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trial %d: %s counts[%d] = %d, want %d", trial, impl, i, got[i], want[i])
		}
	}
}

// seqScheduleCounts is the sequential oracle for a whole chunk
// schedule: one scalar chain through every segment in order.
func seqScheduleCounts(state uint32, sc *schedule) ([]uint32, uint32) {
	out := make([]uint32, len(sc.segs))
	for i := range sc.segs {
		thr := sc.segs[i].thr
		for k := uint32(0); k < sc.segs[i].draws; k++ {
			state = xorshiftStep(state)
			if state < thr {
				out[i]++
			}
		}
	}
	return out, state
}

// TestCountChunkLanesMatchesSequential checks the full lane kernel —
// stripe clipping, jump-ahead start states, optional sharding — against
// the sequential chain on random schedules: identical per-segment
// counts and identical exit RNG state.
func TestCountChunkLanesMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		sc := &schedule{}
		nseg := 1 + rng.Intn(40)
		for i := 0; i < nseg; i++ {
			var thr uint32
			switch rng.Intn(4) {
			case 0:
				thr = 0
			default:
				thr = rng.Uint32()
			}
			draws := uint32(1 + rng.Intn(3000))
			sc.segs = append(sc.segs, segRec{thr: thr, draws: draws, bk: uint32(i) << 1})
			sc.total += uint64(draws)
		}
		if sc.total < laneMinDraws {
			// Pad the last segment so the schedule is inside the lane
			// kernel's sizing envelope, like consumeChunk guarantees.
			pad := uint32(laneMinDraws - sc.total)
			sc.segs[nseg-1].draws += pad
			sc.total += uint64(pad)
		}
		sc.counts = make([]uint32, nseg)

		seed := rng.Uint32() | 1
		want, wantState := seqScheduleCounts(seed, sc)
		shards := rng.Intn(5)

		// Every tier the host can run — not just the default dispatch —
		// must reproduce the sequential chain exactly.
		for _, k := range SupportedKernels() {
			s := &StreamEstimator{rng: seed, Shards: shards}
			s.countChunkLanesKernel(sc, k)

			for i := range want {
				if sc.counts[i] != want[i] {
					t.Fatalf("trial %d (%s, shards=%d): counts[%d] = %d, want %d",
						trial, k, shards, i, sc.counts[i], want[i])
				}
			}
			if s.rng != wantState {
				t.Fatalf("trial %d (%s): exit state %#x, want %#x", trial, k, s.rng, wantState)
			}
		}
	}
}
