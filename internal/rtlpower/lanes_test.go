package rtlpower

import (
	"math/rand"
	"testing"
	"unsafe"
)

// TestWalk8Layout pins the struct layout lanes_amd64.s hardcodes. If
// this fails, the assembly's field offsets must be updated in lockstep.
func TestWalk8Layout(t *testing.T) {
	var w walk8
	if got := unsafe.Sizeof(laneRec{}); got != 12 {
		t.Errorf("sizeof(laneRec) = %d, want 12", got)
	}
	offs := []struct {
		name string
		got  uintptr
		want uintptr
	}{
		{"recs", unsafe.Offsetof(w.recs), 0},
		{"counts", unsafe.Offsetof(w.counts), 24},
		{"off", unsafe.Offsetof(w.off), 48},
		{"cnt", unsafe.Offsetof(w.cnt), 80},
		{"st", unsafe.Offsetof(w.st), 112},
	}
	for _, o := range offs {
		if o.got != o.want {
			t.Errorf("offsetof(walk8.%s) = %d, want %d", o.name, o.got, o.want)
		}
	}
}

// walkOracle advances each lane's record runs on the scalar chain,
// mirroring the walk8 contract one lane at a time.
func walkOracle(w *walk8) {
	for j := 0; j < 8; j++ {
		st := w.st[j]
		for k := uint32(0); k < w.cnt[j]; k++ {
			r := w.recs[w.off[j]+k]
			for d := uint32(0); d < r.rem; d++ {
				st = xorshiftStep(st)
				if st < r.thr {
					w.counts[r.slot]++
				}
			}
		}
		w.st[j] = st
	}
}

// randomWalk builds a walk8 with lanes of random record runs laid out
// contiguously, including empty lanes and extreme thresholds.
func randomWalk(rng *rand.Rand, nslots int) *walk8 {
	w := &walk8{counts: make([]uint32, nslots)}
	for j := 0; j < 8; j++ {
		nrec := rng.Intn(5)
		if rng.Intn(8) == 0 {
			nrec = 0 // empty lane: starts and stays on the sentinel
		}
		w.off[j] = uint32(len(w.recs))
		w.cnt[j] = uint32(nrec)
		w.st[j] = rng.Uint32() | 1
		for k := 0; k < nrec; k++ {
			var thr uint32
			switch rng.Intn(5) {
			case 0:
				thr = 0 // never toggles
			case 1:
				thr = ^uint32(0) // toggles on everything but ^0 itself
			default:
				thr = rng.Uint32()
			}
			w.recs = append(w.recs, laneRec{
				thr:  thr,
				rem:  uint32(rng.Intn(700) + 1),
				slot: uint32(rng.Intn(nslots)),
			})
		}
	}
	return w
}

func cloneWalk(w *walk8) *walk8 {
	c := *w
	c.recs = append([]laneRec(nil), w.recs...)
	c.counts = make([]uint32, len(w.counts))
	copy(c.counts, w.counts)
	return &c
}

// TestCountStripes8MatchesOracle differentially tests both walker
// implementations — the portable lockstep walker and whatever
// countStripes8 dispatches to on this architecture (the SSE2 kernel on
// amd64) — against the one-lane-at-a-time scalar oracle, on random
// walks including empty lanes, shared slots, and boundary thresholds.
func TestCountStripes8MatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		w := randomWalk(rng, 1+rng.Intn(6))
		want := cloneWalk(w)
		walkOracle(want)

		gotGo := cloneWalk(w)
		countStripes8Go(gotGo)
		compareWalk(t, "countStripes8Go", trial, want, gotGo)

		gotDisp := cloneWalk(w)
		countStripes8(gotDisp)
		compareWalk(t, "countStripes8", trial, want, gotDisp)
	}
}

func compareWalk(t *testing.T, impl string, trial int, want, got *walk8) {
	t.Helper()
	for i := range want.counts {
		if got.counts[i] != want.counts[i] {
			t.Fatalf("trial %d: %s counts[%d] = %d, want %d", trial, impl, i, got.counts[i], want.counts[i])
		}
	}
	// Exit states are not compared: lanes that drain early keep
	// drawing on their sentinel record until every lane finishes, so
	// w.st is diagnostic only (chunk RNG continuity uses JumpAhead).
}

// seqScheduleCounts is the sequential oracle for a whole chunk
// schedule: one scalar chain through every segment in order.
func seqScheduleCounts(state uint32, sc *schedule) ([]uint32, uint32) {
	out := make([]uint32, len(sc.thr))
	for i := range sc.thr {
		thr := sc.thr[i]
		for k := uint32(0); k < sc.draws[i]; k++ {
			state = xorshiftStep(state)
			if state < thr {
				out[i]++
			}
		}
	}
	return out, state
}

// TestCountChunkLanesMatchesSequential checks the full lane kernel —
// stripe clipping, jump-ahead start states, optional sharding — against
// the sequential chain on random schedules: identical per-segment
// counts and identical exit RNG state.
func TestCountChunkLanesMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		sc := &schedule{}
		nseg := 1 + rng.Intn(40)
		for i := 0; i < nseg; i++ {
			var thr uint32
			switch rng.Intn(4) {
			case 0:
				thr = 0
			default:
				thr = rng.Uint32()
			}
			draws := uint32(1 + rng.Intn(3000))
			sc.thr = append(sc.thr, thr)
			sc.draws = append(sc.draws, draws)
			sc.bk = append(sc.bk, uint32(i)<<1)
			sc.total += uint64(draws)
		}
		if sc.total < laneMinDraws {
			// Pad the last segment so the schedule is inside the lane
			// kernel's sizing envelope, like consumeChunk guarantees.
			pad := uint32(laneMinDraws - sc.total)
			sc.draws[nseg-1] += pad
			sc.total += uint64(pad)
		}
		sc.counts = make([]uint32, nseg)

		seed := rng.Uint32() | 1
		want, wantState := seqScheduleCounts(seed, sc)

		s := &StreamEstimator{rng: seed, Shards: rng.Intn(5)}
		s.countChunkLanes(sc)

		for i := range want {
			if sc.counts[i] != want[i] {
				t.Fatalf("trial %d (shards=%d): counts[%d] = %d, want %d",
					trial, s.Shards, i, sc.counts[i], want[i])
			}
		}
		if s.rng != wantState {
			t.Fatalf("trial %d: exit state %#x, want %#x", trial, s.rng, wantState)
		}
	}
}
