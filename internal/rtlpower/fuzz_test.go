package rtlpower

import (
	"encoding/binary"
	"testing"
)

// FuzzKernelDifferential decodes an arbitrary byte string into a chunk
// schedule and checks every walker tier this host can run — portable
// and SIMD alike, sharded and not — against the sequential scalar
// chain: identical per-segment toggle counts and identical exit RNG
// state. The decoder keeps every schedule inside the lane kernel's
// contract (total draws in [laneMinDraws, maxChunkDraws)), which is
// what consumeChunk guarantees in production.
func FuzzKernelDifferential(f *testing.F) {
	f.Add([]byte{1}, uint32(1))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, uint32(0xdeadbeef))
	f.Add([]byte{
		0x00, 0x00, 0x00, 0x00, 0x10, // thr=0, tiny run
		0xff, 0xff, 0xff, 0xff, 0x80, // thr=^0, long run
		0x34, 0x12, 0x00, 0x80, 0x01,
	}, uint32(12345))

	f.Fuzz(func(t *testing.T, data []byte, seed uint32) {
		if seed == 0 {
			seed = 1 // the xorshift chain is seeded odd in production
		}
		sc := &schedule{}
		// Each 5-byte group is one segment: 4 bytes of threshold, 1 byte
		// scaled into a draw run of 1..4096.
		for i := 0; i+5 <= len(data) && len(sc.segs) < 64; i += 5 {
			thr := binary.LittleEndian.Uint32(data[i:])
			draws := uint32(data[i+4])*16 + 1
			sc.segs = append(sc.segs, segRec{thr: thr, draws: draws, bk: uint32(len(sc.segs)) << 1})
			sc.total += uint64(draws)
		}
		if len(sc.segs) == 0 {
			sc.segs = append(sc.segs, segRec{thr: seed, draws: 1})
			sc.total = 1
		}
		if sc.total < laneMinDraws {
			pad := uint32(laneMinDraws - sc.total)
			sc.segs[len(sc.segs)-1].draws += pad
			sc.total += uint64(pad)
		}
		sc.counts = make([]uint32, len(sc.segs))

		want, wantState := seqScheduleCounts(seed, sc)

		for _, k := range SupportedKernels() {
			for shards := 1; shards <= 3; shards += 2 {
				s := &StreamEstimator{rng: seed, Shards: shards}
				s.countChunkLanesKernel(sc, k)
				for i := range want {
					if sc.counts[i] != want[i] {
						t.Fatalf("%s shards=%d: counts[%d] = %d, want %d", k, shards, i, sc.counts[i], want[i])
					}
				}
				if s.rng != wantState {
					t.Fatalf("%s shards=%d: exit state %#x, want %#x", k, shards, s.rng, wantState)
				}
			}
		}
	})
}
