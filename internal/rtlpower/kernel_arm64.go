package rtlpower

import "xtenergy/internal/cpufeat"

// supportedKernels lists the runnable tiers on this arm64 host.
func supportedKernels() []Kernel {
	ks := []Kernel{KernelPortable}
	if cpufeat.NEON {
		ks = append(ks, KernelNEON)
	}
	return ks
}

// defaultKernel picks the widest supported tier at init. ASIMD is part
// of every AArch64 target Go supports, so this is NEON in practice.
func defaultKernel() Kernel {
	if cpufeat.NEON {
		return KernelNEON
	}
	return KernelPortable
}
