package rtlpower

import (
	"fmt"
	"os"
	"strings"
	"sync/atomic"
)

// Kernel identifies one tier of the stripe-walker dispatch ladder. The
// tiers compute bit-identical toggle counts — they differ only in lane
// width and instruction set — so switching tiers never changes a
// report, only how fast it is produced.
type Kernel uint32

const (
	// KernelPortable is the pure-Go lockstep walker (any architecture).
	KernelPortable Kernel = iota
	// KernelSSE2 is the 8-lane amd64 baseline kernel (lanes_amd64.s).
	KernelSSE2
	// KernelAVX2 is the 16-lane amd64 kernel (lanes16_amd64.s).
	KernelAVX2
	// KernelAVX512 is the 32-lane amd64 kernel (lanes32_amd64.s).
	KernelAVX512
	// KernelNEON is the 8-lane arm64 kernel (lanes_arm64.s).
	KernelNEON

	numKernels
)

var kernelNames = [numKernels]string{"portable", "sse2", "avx2", "avx512", "neon"}

// String returns the tier's flag-facing name.
func (k Kernel) String() string {
	if int(k) < len(kernelNames) {
		return kernelNames[k]
	}
	return fmt.Sprintf("kernel(%d)", uint32(k))
}

// width is the tier's lane count: how many stripes the draw chain is
// cut into per walk. The jump-ahead clipping in countChunkLanes adapts
// to it, so every tier stays bit-identical to the sequential oracle.
func (k Kernel) width() int {
	switch k {
	case KernelAVX2:
		return 16
	case KernelAVX512:
		return 32
	}
	return 8
}

// EnvKernel is the environment variable forcing a walker tier for the
// whole process (daemon included); the -kernel CLI flag overrides it.
const EnvKernel = "XTENERGY_KERNEL"

// activeKernel is the tier countChunkLanes dispatches on, stored
// atomically so the daemon's health snapshot can read it race-free.
var activeKernel atomic.Uint32

// envKernelErr records an invalid or unsupported EnvKernel value seen
// at init. Package init cannot exit; CLIs check EnvKernelError and
// reject the process with exit 2 instead of silently estimating on a
// different tier than the operator asked for.
var envKernelErr error

func init() {
	activeKernel.Store(uint32(defaultKernel()))
	if v := os.Getenv(EnvKernel); v != "" {
		if err := SetKernel(v); err != nil {
			envKernelErr = err
		}
	}
}

// EnvKernelError reports whether EnvKernel held a tier this host cannot
// run (or an unknown name) at process start.
func EnvKernelError() error { return envKernelErr }

// ApplyKernelFlag resolves a CLI's kernel selection: a non-empty
// -kernel value forces that tier (overriding EnvKernel), while an
// empty one surfaces any invalid EnvKernel value seen at init. CLIs
// treat an error as an operator mistake and exit 2 rather than
// silently estimating on a different tier than asked for.
func ApplyKernelFlag(name string) error {
	if name == "" {
		return EnvKernelError()
	}
	return SetKernel(name)
}

// SelectedKernel returns the walker tier currently in effect: the
// widest supported tier by default, or whatever SetKernel forced.
func SelectedKernel() Kernel { return Kernel(activeKernel.Load()) }

// SupportedKernels lists the tiers compiled in and runnable on this
// host, narrowest first.
func SupportedKernels() []Kernel { return supportedKernels() }

// ParseKernel resolves a tier name ("portable", "sse2", "avx2",
// "avx512", "neon") without checking host support.
func ParseKernel(name string) (Kernel, error) {
	for k, n := range kernelNames {
		if n == name {
			return Kernel(k), nil
		}
	}
	return 0, fmt.Errorf("rtlpower: unknown kernel %q (valid: %s)",
		name, strings.Join(kernelNames[:], ", "))
}

// SetKernel forces the walker tier by name, for debugging and oracle
// comparison. It fails — leaving the current tier in place — when the
// name is unknown or the tier cannot run on this host.
func SetKernel(name string) error {
	k, err := ParseKernel(name)
	if err != nil {
		return err
	}
	supported := supportedKernels()
	for _, s := range supported {
		if s == k {
			activeKernel.Store(uint32(k))
			return nil
		}
	}
	names := make([]string, len(supported))
	for i, s := range supported {
		names[i] = s.String()
	}
	return fmt.Errorf("rtlpower: kernel %q is not supported on this host (supported: %s)",
		name, strings.Join(names, ", "))
}
