package rtlpower

import (
	"fmt"
	"math/bits"

	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
)

// Report is the outcome of one reference power estimation.
type Report struct {
	// TotalPJ is the program's total energy in picojoules.
	TotalPJ float64
	// PerBlockPJ is the energy per structural block, indexed like
	// Processor.Blocks.
	PerBlockPJ []float64
	// Cycles is the number of simulated cycles.
	Cycles uint64
}

// TotalUJ returns the total energy in microjoules (the unit of the
// paper's Table II).
func (r Report) TotalUJ() float64 { return r.TotalPJ * 1e-6 }

// AveragePowerMW returns the mean power in milliwatts at the given clock.
func (r Report) AveragePowerMW(clockMHz float64) float64 {
	if r.Cycles == 0 {
		return 0
	}
	// pJ/cycle * cycles/s = pW; convert to mW.
	return r.TotalPJ / float64(r.Cycles) * clockMHz * 1e6 * 1e-9
}

// blockModel is the precomputed simulation state of one structural block.
type blockModel struct {
	nets        int
	activePJNet float64 // energy per toggled net while active
	idlePJNet   float64 // energy per toggled net while idle
}

// Per-cycle toggle probabilities of the net population.
const (
	pActiveNominal = 0.40
	pIdle          = 0.08
)

// Estimator performs structural, cycle-by-cycle energy estimation over a
// recorded execution trace. It is the slow, accurate reference tool of
// the characterization flow. An Estimator is not safe for concurrent
// use.
type Estimator struct {
	proc   *procgen.Processor
	tech   Technology
	blocks []blockModel
	rng    uint32
}

// New builds an estimator for proc under the given technology.
func New(proc *procgen.Processor, tech Technology) (*Estimator, error) {
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	e := &Estimator{proc: proc, tech: tech}
	for _, b := range proc.Blocks {
		var bm blockModel
		if b.Kind == procgen.BlockCustom {
			unit := tech.CustomUnitPJ[b.Component.Cat]
			cx := b.Component.Complexity()
			bm.nets = scaleNets(float64(tech.CustomNetsPerUnit)*cx, tech.Detail)
			active := unit * cx
			bm.activePJNet = active / (float64(bm.nets) * pActiveNominal)
			bm.idlePJNet = active * tech.CustomIdleFrac / (float64(bm.nets) * pIdle)
		} else {
			p := tech.Blocks[b.Kind]
			bm.nets = scaleNets(float64(p.Nets), tech.Detail)
			bm.activePJNet = p.ActivePJ / (float64(bm.nets) * pActiveNominal)
			bm.idlePJNet = p.IdlePJ / (float64(bm.nets) * pIdle)
		}
		e.blocks = append(e.blocks, bm)
	}
	return e, nil
}

func scaleNets(nets, detail float64) int {
	n := int(nets * detail)
	if n < 8 {
		n = 8
	}
	return n
}

// Technology returns the estimator's technology parameters.
func (e *Estimator) Technology() Technology { return e.tech }

// EstimateTrace runs the reference energy simulation over a trace
// recorded by the ISS (Options.CollectTrace). The same trace can be
// estimated repeatedly; results are deterministic for a given
// technology seed.
func (e *Estimator) EstimateTrace(trace []iss.TraceEntry) (Report, error) {
	return e.estimateTrace(trace, nil)
}

// estimateTrace is the shared walk; onEntry (optional) receives each
// retired instruction's index, cycle count and energy.
func (e *Estimator) estimateTrace(trace []iss.TraceEntry, onEntry func(idx int, cycles uint64, pj float64)) (Report, error) {
	if len(trace) == 0 {
		return Report{}, fmt.Errorf("rtlpower: empty trace (was the ISS run with CollectTrace?)")
	}
	e.rng = e.tech.Seed | 1

	perBlock := make([]float64, len(e.blocks))
	var cycles uint64

	// activity[i] = active cycles of block i for the current instruction.
	activity := make([]int, len(e.blocks))

	icPen := e.proc.Config.ICache.MissPenalty
	dcPen := e.proc.Config.DCache.MissPenalty

	var prev iss.TraceEntry
	havePrev := false

	// Indices of base blocks (the generator may omit the multiplier).
	idx := map[procgen.BlockKind]int{}
	for i, b := range e.proc.Blocks {
		if b.Kind != procgen.BlockCustom {
			idx[b.Kind] = i
		}
	}

	for ti := range trace {
		te := &trace[ti]
		cyc := int(te.Cycles)
		if cyc <= 0 {
			cyc = 1
		}
		cycles += uint64(cyc)

		// Data switching activity on the operand/result buses relative
		// to the previous instruction: the data-dependent term a linear
		// macro-model cannot see.
		s := 0.5
		if havePrev {
			h := bits.OnesCount32(te.RsVal^prev.RsVal) +
				bits.OnesCount32(te.RtVal^prev.RtVal) +
				bits.OnesCount32(te.Result^prev.Result)
			s = float64(h) / 96
		}
		prev = *te
		havePrev = true

		for i := range activity {
			activity[i] = 0
		}

		in := te.Instr
		d := in.Def()

		// Always-on blocks.
		activity[idx[procgen.BlockClock]] = cyc
		activity[idx[procgen.BlockPipeCtl]] = cyc
		activity[idx[procgen.BlockFetch]] = cyc
		activity[idx[procgen.BlockDecode]] = 1

		// Front end.
		if te.Uncached {
			activity[idx[procgen.BlockBus]] += iss.UncachedFetchPenalty
		} else {
			a := 1
			if te.ICMiss {
				a += icPen
				activity[idx[procgen.BlockBus]] += icPen
			}
			activity[idx[procgen.BlockICache]] = a
		}

		// Register file.
		regfileActive := d.ReadsRs || d.ReadsRt || d.WritesRd
		if in.IsCustom() {
			if ci, err := e.proc.TIE.Instruction(in.CustomID); err == nil {
				regfileActive = ci.AccessesGeneralRegfile()
			}
		}
		if regfileActive {
			activity[idx[procgen.BlockRegfile]] = 1
		}

		// Execution units and memory pipeline.
		switch {
		case in.IsCustom():
			ci, err := e.proc.TIE.Instruction(in.CustomID)
			if err != nil {
				return Report{}, err
			}
			for _, ci2 := range e.proc.TIE.ActiveByInstr[in.CustomID] {
				activity[e.proc.CustomBlockBase+ci2] += ci.Latency
			}
		case isMult(in.Op):
			if mi, ok := idx[procgen.BlockMult]; ok {
				activity[mi] = d.Cycles
			} else {
				activity[idx[procgen.BlockALU]] = d.Cycles
			}
		case isShift(in.Op):
			activity[idx[procgen.BlockShifter]] = 1
		case d.Class == isa.ClassArith:
			activity[idx[procgen.BlockALU]] = d.Cycles
		case d.Class == isa.ClassBranch:
			activity[idx[procgen.BlockALU]] = 1
		case d.Class == isa.ClassLoad || d.Class == isa.ClassStore:
			a := 1
			if te.DCMiss {
				a += dcPen
				activity[idx[procgen.BlockBus]] += dcPen
			}
			activity[idx[procgen.BlockLSU]] = a
			activity[idx[procgen.BlockDCache]] = a
		}

		// Base-to-custom side effect: custom hardware latched off the
		// shared operand buses switches when base arithmetic drives them
		// (paper Fig. 1 Example 1).
		if !in.IsCustom() && d.Class == isa.ClassArith {
			for _, ci2 := range e.proc.TIE.BusTapped {
				activity[e.proc.CustomBlockBase+ci2]++
			}
		}

		// Simulate every block for every cycle of this instruction.
		pAct := pActiveNominal * (1 + e.tech.SwitchingWeight*(2*s-1))
		var entryPJ float64
		for bi := range e.blocks {
			bm := &e.blocks[bi]
			act := activity[bi]
			if act > cyc {
				act = cyc
			}
			if act > 0 {
				pj := e.simulateNets(bm.nets, act, pAct) * bm.activePJNet
				perBlock[bi] += pj
				entryPJ += pj
			}
			if idle := cyc - act; idle > 0 {
				pj := e.simulateNets(bm.nets, idle, pIdle) * bm.idlePJNet
				perBlock[bi] += pj
				entryPJ += pj
			}
		}
		if onEntry != nil {
			onEntry(ti, uint64(cyc), entryPJ)
		}
	}

	var total float64
	for _, v := range perBlock {
		total += v
	}
	return Report{TotalPJ: total, PerBlockPJ: perBlock, Cycles: cycles}, nil
}

// simulateNets advances the toggle process of a net population for the
// given number of cycles and returns the number of observed toggles.
// This per-net work is what a gate-level power simulator fundamentally
// does, and is what makes the reference path slow.
func (e *Estimator) simulateNets(nets, cycles int, p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	threshold := uint32(p * float64(1<<32-1))
	toggles := 0
	st := e.rng
	for c := 0; c < cycles; c++ {
		for n := 0; n < nets; n++ {
			// xorshift32
			st ^= st << 13
			st ^= st >> 17
			st ^= st << 5
			if st < threshold {
				toggles++
			}
		}
	}
	e.rng = st
	return float64(toggles)
}

func isMult(op isa.Opcode) bool {
	return op == isa.OpMUL || op == isa.OpMULH || op == isa.OpMULHU
}

func isShift(op isa.Opcode) bool {
	switch op {
	case isa.OpSLL, isa.OpSLLI, isa.OpSRL, isa.OpSRLI, isa.OpSRA, isa.OpSRAI,
		isa.OpEXTUI, isa.OpNSA, isa.OpNSAU:
		return true
	}
	return false
}

// EstimateProgram is a convenience that runs the ISS with trace
// collection and then the reference estimation — the full "slow path"
// (RTL simulation of the synthesized processor) for one program.
func (e *Estimator) EstimateProgram(prog *iss.Program) (Report, *iss.Result, error) {
	sim := iss.New(e.proc)
	res, err := sim.Run(prog, iss.Options{CollectTrace: true})
	if err != nil {
		return Report{}, nil, err
	}
	rep, err := e.EstimateTrace(res.Trace)
	if err != nil {
		return Report{}, nil, err
	}
	return rep, res, nil
}
