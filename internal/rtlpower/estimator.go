package rtlpower

import (
	"context"
	"fmt"

	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/plan"
	"xtenergy/internal/procgen"
)

// Report is the outcome of one reference power estimation.
type Report struct {
	// TotalPJ is the program's total energy in picojoules.
	TotalPJ float64
	// PerBlockPJ is the energy per structural block, indexed like
	// Processor.Blocks.
	PerBlockPJ []float64
	// Cycles is the number of simulated cycles.
	Cycles uint64
}

// TotalUJ returns the total energy in microjoules (the unit of the
// paper's Table II).
func (r Report) TotalUJ() float64 { return r.TotalPJ * 1e-6 }

// AveragePowerMW returns the mean power in milliwatts at the given clock.
func (r Report) AveragePowerMW(clockMHz float64) float64 {
	if r.Cycles == 0 {
		return 0
	}
	// pJ/cycle * cycles/s = pW; convert to mW.
	return r.TotalPJ / float64(r.Cycles) * clockMHz * 1e6 * 1e-9
}

// blockModel is the precomputed simulation state of one structural block.
type blockModel struct {
	nets int
	// pjNet is the energy per toggled net, indexed by phase (0 active,
	// 1 idle) so the fold can select it branch-free from a slot's
	// phase bit.
	pjNet [2]float64
}

// Per-cycle toggle probabilities of the net population.
const (
	pActiveNominal = 0.40
	pIdle          = 0.08
)

// Estimator performs structural, cycle-by-cycle energy estimation over
// an execution trace — either materialized (EstimateTrace) or streamed
// incrementally from the ISS (Stream / EstimateProgram). It is the
// slow, accurate reference tool of the characterization flow. An
// Estimator is not safe for concurrent use.
type Estimator struct {
	proc   *procgen.Processor
	tech   Technology
	blocks []blockModel
	// kindIdx maps base block kinds to their Processor.Blocks index,
	// -1 when absent (the generator may omit the multiplier). A dense
	// array: the lookup sits on the per-entry pricing path, where a map
	// access per block kind is measurable.
	kindIdx [procgen.NumBaseBlockKinds]int32
	// desc is a lazily allocated direct-mapped cache of plan.Describe
	// results, used when entries are priced without a plan record (no
	// plan attached, or a fault-altered trace). Sharing it across
	// streaming passes is safe because an Estimator is documented as
	// not safe for concurrent use.
	desc []descEntry
}

// descEntry is one slot of the Describe cache; used distinguishes an
// empty slot from a cached zero-valued instruction.
type descEntry struct {
	used bool
	rec  plan.Rec
}

// descCacheSize is the direct-mapped Describe cache size; must be a
// power of two.
const descCacheSize = 1024

// descIndex hashes an instruction word into the Describe cache (FNV-1a
// over the fields that distinguish instructions).
func descIndex(in isa.Instr) uint32 {
	h := uint32(2166136261)
	h = (h ^ uint32(in.Op)) * 16777619
	h = (h ^ uint32(in.Rd)) * 16777619
	h = (h ^ uint32(in.Rs)) * 16777619
	h = (h ^ uint32(in.Rt)) * 16777619
	h = (h ^ uint32(in.Imm)) * 16777619
	h = (h ^ uint32(in.CustomID)) * 16777619
	return h & (descCacheSize - 1)
}

// New builds an estimator for proc under the given technology.
func New(proc *procgen.Processor, tech Technology) (*Estimator, error) {
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	e := &Estimator{proc: proc, tech: tech}
	for k := range e.kindIdx {
		e.kindIdx[k] = -1
	}
	for i, b := range proc.Blocks {
		if b.Kind != procgen.BlockCustom {
			e.kindIdx[b.Kind] = int32(i)
		}
	}
	for _, b := range proc.Blocks {
		var bm blockModel
		if b.Kind == procgen.BlockCustom {
			unit := tech.CustomUnitPJ[b.Component.Cat]
			cx := b.Component.Complexity()
			bm.nets = scaleNets(float64(tech.CustomNetsPerUnit)*cx, tech.Detail)
			active := unit * cx
			bm.pjNet[0] = active / (float64(bm.nets) * pActiveNominal)
			bm.pjNet[1] = active * tech.CustomIdleFrac / (float64(bm.nets) * pIdle)
		} else {
			p := tech.Blocks[b.Kind]
			bm.nets = scaleNets(float64(p.Nets), tech.Detail)
			bm.pjNet[0] = p.ActivePJ / (float64(bm.nets) * pActiveNominal)
			bm.pjNet[1] = p.IdlePJ / (float64(bm.nets) * pIdle)
		}
		e.blocks = append(e.blocks, bm)
	}
	return e, nil
}

func scaleNets(nets, detail float64) int {
	n := int(nets * detail)
	if n < 8 {
		n = 8
	}
	return n
}

// Technology returns the estimator's technology parameters.
func (e *Estimator) Technology() Technology { return e.tech }

// EstimateTrace runs the reference energy simulation over a trace
// recorded by the ISS (Options.CollectTrace). The same trace can be
// estimated repeatedly; results are deterministic for a given
// technology seed. It is a thin wrapper over the streaming form
// (Stream / StreamEstimator) and produces bit-identical reports.
func (e *Estimator) EstimateTrace(trace []iss.TraceEntry) (Report, error) {
	if len(trace) == 0 {
		return Report{}, fmt.Errorf("rtlpower: empty trace (was the ISS run with CollectTrace?)")
	}
	s := e.Stream()
	if err := s.Consume(trace); err != nil {
		return Report{}, err
	}
	return s.Finish()
}

// EstimateProgram runs the full "slow path" (RTL simulation of the
// synthesized processor) for one program: the ISS streams retired
// instructions into the incremental estimator through a bounded batch
// channel (see RunStreamed), so the trace is never materialized —
// memory stays O(1) in the run length and simulation overlaps with
// estimation. The returned Result carries statistics but no Trace.
//
// opts lets callers set watchdog limits or fault injection; any trace
// options in it are overridden by the stream (see RunStreamed).
// Cancelling ctx aborts within one batch boundary with a typed
// FaultCancelled error.
func (e *Estimator) EstimateProgram(ctx context.Context, prog *iss.Program, opts iss.Options) (Report, *iss.Result, error) {
	st := e.Stream()
	res, err := RunStreamed(ctx, iss.New(e.proc), prog, opts, st)
	if err != nil {
		return Report{}, nil, err
	}
	rep, err := st.Finish()
	if err != nil {
		return Report{}, nil, err
	}
	return rep, res, nil
}
