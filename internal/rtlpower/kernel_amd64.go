package rtlpower

import "xtenergy/internal/cpufeat"

// supportedKernels lists the runnable tiers on this amd64 host. SSE2 is
// part of the amd64 baseline; the wider tiers need CPU (and OS state)
// support detected by cpufeat.
func supportedKernels() []Kernel {
	ks := []Kernel{KernelPortable, KernelSSE2}
	if cpufeat.AVX2 {
		ks = append(ks, KernelAVX2)
	}
	if cpufeat.AVX512 {
		ks = append(ks, KernelAVX512)
	}
	return ks
}

// defaultKernel picks the widest supported tier at init.
func defaultKernel() Kernel {
	switch {
	case cpufeat.AVX512:
		return KernelAVX512
	case cpufeat.AVX2:
		return KernelAVX2
	}
	return KernelSSE2
}
