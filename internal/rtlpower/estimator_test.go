package rtlpower_test

import (
	"context"
	"math"
	"testing"

	"xtenergy/internal/asm"
	"xtenergy/internal/hwlib"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/tie"
)

func testTech() rtlpower.Technology {
	t := rtlpower.FastTechnology()
	return t
}

func runTrace(t *testing.T, src string, ext *tie.Extension) (*procgen.Processor, []iss.TraceEntry, *iss.Stats) {
	t.Helper()
	proc, err := procgen.Generate(procgen.Default(), ext)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.New(proc.TIE).Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := iss.New(proc).Run(prog, iss.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	return proc, res.Trace, &res.Stats
}

const loopSrc = `
    movi a2, 200
    movi a3, 17
loop:
    add a4, a3, a2
    xor a3, a4, a3
    addi a2, a2, -1
    bnez a2, loop
    ret
`

func TestTechnologyValidate(t *testing.T) {
	if err := rtlpower.DefaultTechnology().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := rtlpower.DefaultTechnology()
	bad.Detail = 0
	if bad.Validate() == nil {
		t.Fatal("zero detail accepted")
	}
	bad = rtlpower.DefaultTechnology()
	bad.SwitchingWeight = 2
	if bad.Validate() == nil {
		t.Fatal("bad switching weight accepted")
	}
	bad = rtlpower.DefaultTechnology()
	bad.CustomIdleFrac = 0.9
	if bad.Validate() == nil {
		t.Fatal("bad idle fraction accepted")
	}
	bad = rtlpower.DefaultTechnology()
	bad.CustomNetsPerUnit = 0
	if bad.Validate() == nil {
		t.Fatal("zero nets accepted")
	}
	bad = rtlpower.DefaultTechnology()
	bad.Blocks[procgen.BlockALU].Nets = -1
	if bad.Validate() == nil {
		t.Fatal("negative nets accepted")
	}
}

func TestEstimateDeterministic(t *testing.T) {
	proc, trace, _ := runTrace(t, loopSrc, nil)
	e1, err := rtlpower.New(proc, testTech())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e1.EstimateTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := rtlpower.New(proc, testTech())
	r2, err := e2.EstimateTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalPJ != r2.TotalPJ {
		t.Fatalf("nondeterministic: %g vs %g", r1.TotalPJ, r2.TotalPJ)
	}
	if r1.TotalPJ <= 0 {
		t.Fatal("non-positive energy")
	}
	if r1.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

func TestEmptyTraceRejected(t *testing.T) {
	proc, _, _ := runTrace(t, "ret\n", nil)
	e, _ := rtlpower.New(proc, testTech())
	if _, err := e.EstimateTrace(nil); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestEnergyScalesWithWork(t *testing.T) {
	proc, trace1, _ := runTrace(t, loopSrc, nil)
	e, _ := rtlpower.New(proc, testTech())
	r1, err := e.EstimateTrace(trace1)
	if err != nil {
		t.Fatal(err)
	}
	// Double the loop count: roughly double the energy.
	_, trace2, _ := runTrace(t, `
    movi a2, 400
    movi a3, 17
loop:
    add a4, a3, a2
    xor a3, a4, a3
    addi a2, a2, -1
    bnez a2, loop
    ret
`, nil)
	e2, _ := rtlpower.New(proc, testTech())
	r2, err := e2.EstimateTrace(trace2)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r2.TotalPJ / r1.TotalPJ
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("energy ratio = %g, want ~2", ratio)
	}
}

func TestDetailInvariance(t *testing.T) {
	// Expected energy must be (approximately) independent of the net
	// resolution.
	proc, trace, _ := runTrace(t, loopSrc, nil)
	lo := rtlpower.DefaultTechnology()
	lo.Detail = 0.05
	hi := rtlpower.DefaultTechnology()
	hi.Detail = 0.5
	eLo, _ := rtlpower.New(proc, lo)
	eHi, _ := rtlpower.New(proc, hi)
	rLo, err := eLo.EstimateTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	rHi, err := eHi.EstimateTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(rLo.TotalPJ-rHi.TotalPJ) / rHi.TotalPJ
	if rel > 0.05 {
		t.Fatalf("detail changed energy by %.1f%%", rel*100)
	}
}

func TestPerBlockAttribution(t *testing.T) {
	proc, trace, _ := runTrace(t, loopSrc, nil)
	e, _ := rtlpower.New(proc, testTech())
	r, err := e.EstimateTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerBlockPJ) != len(proc.Blocks) {
		t.Fatalf("per-block length %d, want %d", len(r.PerBlockPJ), len(proc.Blocks))
	}
	var sum float64
	byName := map[string]float64{}
	for i, v := range r.PerBlockPJ {
		if v < 0 {
			t.Fatalf("negative block energy %s", proc.Blocks[i].Name)
		}
		sum += v
		byName[proc.Blocks[i].Name] = v
	}
	if math.Abs(sum-r.TotalPJ) > 1e-6*r.TotalPJ {
		t.Fatal("per-block energies do not sum to total")
	}
	// An ALU-heavy loop: the ALU must consume more than the idle
	// multiplier.
	if byName["alu"] <= byName["mult32"] {
		t.Fatalf("alu %g <= idle mult %g", byName["alu"], byName["mult32"])
	}
	// The clock tree burns every cycle; it should be a top consumer.
	if byName["clock"] <= 0 {
		t.Fatal("clock tree consumed nothing")
	}
}

func TestCustomBlockEnergy(t *testing.T) {
	ext := &tie.Extension{
		Name: "e",
		Instructions: []*tie.Instruction{{
			Name: "burn", Latency: 2, ReadsGeneral: true, WritesGeneral: true,
			Datapath: []tie.DatapathElem{{
				Component: hwlib.Component{Name: "heavy", Cat: hwlib.Shifter, Width: 64},
			}},
			Semantics: func(_ *tie.State, op tie.Operands) uint32 { return op.RsVal >> 1 },
		}},
	}
	src := `
    movi a2, 150
    movi a3, 999
loop:
    burn a3, a3, a2
    addi a2, a2, -1
    bnez a2, loop
    ret
`
	proc, trace, _ := runTrace(t, src, ext)
	e, err := rtlpower.New(proc, testTech())
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.EstimateTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	var custom float64
	for i, b := range proc.Blocks {
		if b.Name == "tie.heavy" {
			custom = r.PerBlockPJ[i]
		}
	}
	// 150 executions x 2 cycles x ~377*2 pJ ~ 226 nJ (+/- activity).
	want := 150.0 * 2 * 377 * 2
	if custom < want*0.7 || custom > want*1.3 {
		t.Fatalf("custom block energy = %g pJ, want ~%g", custom, want)
	}
}

func TestBusTapEnergyFromBaseArith(t *testing.T) {
	// A program that never executes the custom instruction still burns
	// energy in the bus-tapped component because base arithmetic drives
	// the shared operand buses (paper Example 1).
	ext := &tie.Extension{
		Name: "e",
		Instructions: []*tie.Instruction{{
			Name: "tapme", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
			Datapath: []tie.DatapathElem{{
				Component: hwlib.Component{Name: "tap", Cat: hwlib.AddSubCmp, Width: 32},
				OnBus:     true,
			}},
			Semantics: func(_ *tie.State, op tie.Operands) uint32 { return op.RsVal },
		}},
	}
	proc, trace, st := runTrace(t, loopSrc, ext)
	if st.CustomCycles != 0 {
		t.Fatal("custom instruction executed unexpectedly")
	}
	e, _ := rtlpower.New(proc, testTech())
	r, err := e.EstimateTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tap, idleOnly float64
	for i, b := range proc.Blocks {
		switch b.Name {
		case "tie.tap":
			tap = r.PerBlockPJ[i]
		case "tie.tie_decoder":
			idleOnly = r.PerBlockPJ[i]
		}
	}
	if tap <= 0 {
		t.Fatal("bus-tapped component consumed nothing")
	}
	// The tapped component must burn clearly more than a purely idle
	// custom block of similar size.
	if tap < idleOnly {
		t.Fatalf("tap %g <= idle decoder %g", tap, idleOnly)
	}
}

func TestReportHelpers(t *testing.T) {
	r := rtlpower.Report{TotalPJ: 2e6, Cycles: 1000}
	if r.TotalUJ() != 2 {
		t.Fatalf("TotalUJ = %g", r.TotalUJ())
	}
	mw := r.AveragePowerMW(187)
	// 2000 pJ/cycle * 187e6 cycles/s = 374 mW.
	if math.Abs(mw-374) > 1 {
		t.Fatalf("power = %g mW, want ~374", mw)
	}
	var empty rtlpower.Report
	if empty.AveragePowerMW(187) != 0 {
		t.Fatal("power of empty report")
	}
}

func TestEstimateProgram(t *testing.T) {
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.New(proc.TIE).Assemble("t", loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := rtlpower.New(proc, testTech())
	rep, res, err := e.EstimateProgram(context.Background(), prog, iss.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalPJ <= 0 || res.Stats.Cycles == 0 {
		t.Fatal("estimate program produced nothing")
	}
	if rep.Cycles != res.Stats.Cycles {
		t.Fatalf("cycle mismatch: %d vs %d", rep.Cycles, res.Stats.Cycles)
	}
}

func TestNewRejectsBadTech(t *testing.T) {
	proc, _ := procgen.Generate(procgen.Default(), nil)
	bad := rtlpower.DefaultTechnology()
	bad.Detail = -1
	if _, err := rtlpower.New(proc, bad); err == nil {
		t.Fatal("bad technology accepted")
	}
}
