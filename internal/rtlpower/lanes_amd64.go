//go:build amd64

package rtlpower

// countStripes8SSE2 is the SIMD form of the 8-lane walker
// (lanes_amd64.s): two 4-wide xorshift32 vectors with branchless
// compare-accumulate toggle counting, the same lockstep-round contract
// as countStripes8Go. SSE2 only — part of the amd64 baseline, so no
// runtime feature detection is needed.
//
//go:noescape
func countStripes8SSE2(w *walk8)

// countStripes16AVX2 is the 16-lane AVX2 tier (lanes16_amd64.s): two
// 8-wide YMM xorshift32 vectors with the remaining-draw counters held
// in YMM registers too, so the per-round min reduction and drained-lane
// detection are vectorized. Call only when cpufeat.AVX2 is set — the
// dispatch ladder guarantees this via SupportedKernels.
//
//go:noescape
func countStripes16AVX2(w *walk16)

// countStripes32AVX512 is the 32-lane AVX-512 tier (lanes32_amd64.s):
// two 16-wide ZMM vectors, unsigned VPCMPUD compares into opmasks and
// masked counter adds — no sign-bias trick needed. Requires the
// F+BW+DQ+VL subset (cpufeat.AVX512).
//
//go:noescape
func countStripes32AVX512(w *walk32)

// countStripes8 runs one 8-lane walk; on amd64 it is the SIMD walker.
func countStripes8(w *walk8) { countStripes8SSE2(w) }

// countStripes16 and countStripes32 run the wide walks; on amd64 the
// dispatch ladder only selects them on feature-checked hosts.
func countStripes16(w *walk16) { countStripes16AVX2(w) }
func countStripes32(w *walk32) { countStripes32AVX512(w) }
