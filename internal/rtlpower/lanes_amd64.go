//go:build amd64

package rtlpower

// countStripes8SSE2 is the SIMD form of the 8-lane walker
// (lanes_amd64.s): two 4-wide xorshift32 vectors with branchless
// compare-accumulate toggle counting, the same lockstep-round contract
// as countStripes8Go. SSE2 only — part of the amd64 baseline, so no
// runtime feature detection is needed.
//
//go:noescape
func countStripes8SSE2(w *walk8)

// countStripes8 runs one 8-lane walk; on amd64 it is the SIMD walker.
func countStripes8(w *walk8) { countStripes8SSE2(w) }
