package rtlpower

import (
	"fmt"
	"sort"
	"strings"

	"xtenergy/internal/procgen"
)

// BlockEnergy is one row of a per-block power breakdown.
type BlockEnergy struct {
	Name    string
	Kind    procgen.BlockKind
	PJ      float64
	Percent float64
}

// Breakdown returns the per-block energies sorted descending, with
// percentages of the total — the report a designer reads off an
// RTL-level power estimator.
func (r Report) Breakdown(proc *procgen.Processor) ([]BlockEnergy, error) {
	if len(r.PerBlockPJ) != len(proc.Blocks) {
		return nil, fmt.Errorf("rtlpower: report has %d blocks, processor has %d",
			len(r.PerBlockPJ), len(proc.Blocks))
	}
	out := make([]BlockEnergy, len(proc.Blocks))
	for i, b := range proc.Blocks {
		out[i] = BlockEnergy{Name: b.Name, Kind: b.Kind, PJ: r.PerBlockPJ[i]}
		if r.TotalPJ > 0 {
			out[i].Percent = 100 * r.PerBlockPJ[i] / r.TotalPJ
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].PJ > out[b].PJ })
	return out, nil
}

// BaseCustomSplit returns the energy consumed by the base core versus
// the custom (TIE) hardware — the first question asked of an extended
// processor's power profile.
func (r Report) BaseCustomSplit(proc *procgen.Processor) (basePJ, customPJ float64, err error) {
	if len(r.PerBlockPJ) != len(proc.Blocks) {
		return 0, 0, fmt.Errorf("rtlpower: report has %d blocks, processor has %d",
			len(r.PerBlockPJ), len(proc.Blocks))
	}
	for i, b := range proc.Blocks {
		if b.Kind == procgen.BlockCustom {
			customPJ += r.PerBlockPJ[i]
		} else {
			basePJ += r.PerBlockPJ[i]
		}
	}
	return basePJ, customPJ, nil
}

// FormatBreakdown renders a breakdown as a text table with bars.
func FormatBreakdown(rows []BlockEnergy, clockMHz float64, cycles uint64) string {
	var b strings.Builder
	b.WriteString("per-block energy breakdown\n")
	fmt.Fprintf(&b, "%-18s %14s %8s  %s\n", "block", "energy (nJ)", "share", "")
	for _, r := range rows {
		bar := strings.Repeat("#", int(r.Percent/2+0.5))
		fmt.Fprintf(&b, "%-18s %14.2f %7.1f%%  %s\n", r.Name, r.PJ*1e-3, r.Percent, bar)
	}
	if cycles > 0 && clockMHz > 0 {
		var tot float64
		for _, r := range rows {
			tot += r.PJ
		}
		fmt.Fprintf(&b, "total %.3f uJ over %d cycles = %.1f mW at %.0f MHz\n",
			tot*1e-6, cycles, tot/float64(cycles)*clockMHz*1e6*1e-9, clockMHz)
	}
	return b.String()
}
