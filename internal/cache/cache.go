// Package cache implements the set-associative cache timing model used by
// the instruction-set simulator. The paper's processor configuration has
// 4-way set-associative 16 KB instruction and data caches; cache misses
// (and uncached fetches) are among the macro-model's non-ideal-case
// variables, so the simulator must count them faithfully.
//
// Only hit/miss behaviour is modeled (true LRU replacement, write-through
// with write-allocate for data); cache contents are tags, not data — the
// functional memory image lives in the ISS.
//
// Not to be confused with internal/memo, the content-addressed store
// that memoizes estimation results: this package models the *simulated
// processor's* caches, it caches nothing for the tools themselves.
package cache

import "fmt"

// Config describes a cache geometry.
type Config struct {
	// SizeBytes is the total capacity, e.g. 16*1024.
	SizeBytes int
	// LineBytes is the line (block) size, e.g. 32.
	LineBytes int
	// Ways is the set associativity, e.g. 4.
	Ways int
	// MissPenalty is the stall, in cycles, added per miss.
	MissPenalty int
}

// Validate checks that the geometry is self-consistent: all parameters
// positive, power-of-two line count, and capacity divisible into sets.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d is not a power of two", c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache: size %d not a multiple of line size %d", c.SizeBytes, c.LineBytes)
	}
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	if c.MissPenalty < 0 {
		return fmt.Errorf("cache: negative miss penalty %d", c.MissPenalty)
	}
	return nil
}

// DefaultI returns the paper's instruction-cache configuration:
// 4-way, 16 KB, 32-byte lines.
func DefaultI() Config {
	return Config{SizeBytes: 16 * 1024, LineBytes: 32, Ways: 4, MissPenalty: 8}
}

// DefaultD returns the paper's data-cache configuration.
func DefaultD() Config {
	return Config{SizeBytes: 16 * 1024, LineBytes: 32, Ways: 4, MissPenalty: 10}
}

// Cache is a set-associative tag array with true-LRU replacement.
type Cache struct {
	cfg       Config
	sets      int
	lineShift uint
	setMask   uint32
	// tags[set*ways+way]; valid[...] same indexing.
	tags  []uint32
	valid []bool
	// lru[set*ways+way] holds a recency stamp; larger = more recent.
	lru   []uint64
	clock uint64

	hits, misses uint64
}

// New builds a cache from cfg. It panics if cfg is invalid; use
// cfg.Validate to check first when the geometry is user-supplied.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		lineShift: shift,
		setMask:   uint32(sets - 1),
		tags:      make([]uint32, lines),
		valid:     make([]bool, lines),
		lru:       make([]uint64, lines),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Access performs one access at byte address addr and returns whether it
// hit. On a miss the line is allocated (LRU victim within the set).
func (c *Cache) Access(addr uint32) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line >> uint(bitsFor(c.sets))
	base := set * c.cfg.Ways
	c.clock++
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.lru[i] = c.clock
			c.hits++
			return true
		}
	}
	// Miss: fill the LRU way (preferring an invalid way).
	victim := base
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if !c.valid[i] {
			victim = i
			break
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	c.tags[victim] = tag
	c.valid[victim] = true
	c.lru[victim] = c.clock
	c.misses++
	return false
}

// Probe reports whether addr would hit, without updating any state.
func (c *Cache) Probe(addr uint32) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line >> uint(bitsFor(c.sets))
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			return true
		}
	}
	return false
}

// Hits returns the cumulative hit count.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the cumulative miss count.
func (c *Cache) Misses() uint64 { return c.misses }

// MissPenalty returns the configured per-miss stall in cycles.
func (c *Cache) MissPenalty() int { return c.cfg.MissPenalty }

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
	}
	c.clock = 0
	c.hits = 0
	c.misses = 0
}

func bitsFor(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
