package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultI()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 32, Ways: 4},
		{SizeBytes: 16384, LineBytes: 0, Ways: 4},
		{SizeBytes: 16384, LineBytes: 32, Ways: 0},
		{SizeBytes: 16384, LineBytes: 33, Ways: 4}, // non-power-of-two line
		{SizeBytes: 16384, LineBytes: 32, Ways: 3}, // lines not divisible
		{SizeBytes: 100, LineBytes: 32, Ways: 1},   // size not multiple of line
		{SizeBytes: 16384, LineBytes: 32, Ways: 4, MissPenalty: -1},
		{SizeBytes: 3 * 1024, LineBytes: 32, Ways: 4}, // set count not power of two (24 sets)
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestDefaultGeometry(t *testing.T) {
	// Paper configuration: 4-way 16 KB.
	for _, cfg := range []Config{DefaultI(), DefaultD()} {
		if cfg.SizeBytes != 16*1024 || cfg.Ways != 4 {
			t.Fatalf("default geometry %+v, want 4-way 16KB", cfg)
		}
	}
	c := New(DefaultI())
	if c.Sets() != 16*1024/32/4 {
		t.Fatalf("sets = %d", c.Sets())
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(DefaultI())
	if c.Access(0x100) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x100) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x11F) { // same 32-byte line
		t.Fatal("same-line access missed")
	}
	if c.Access(0x120) { // next line
		t.Fatal("next-line cold access hit")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/2", c.Hits(), c.Misses())
	}
}

func TestAssociativityHoldsConflicts(t *testing.T) {
	// Four addresses mapping to the same set must all fit in a 4-way
	// cache; a fifth evicts the LRU.
	cfg := Config{SizeBytes: 4096, LineBytes: 32, Ways: 4, MissPenalty: 8}
	c := New(cfg)
	setStride := uint32(cfg.SizeBytes / cfg.Ways) // 1024: same set, different tag
	for i := uint32(0); i < 4; i++ {
		if c.Access(i * setStride) {
			t.Fatalf("cold access %d hit", i)
		}
	}
	for i := uint32(0); i < 4; i++ {
		if !c.Access(i * setStride) {
			t.Fatalf("way %d evicted prematurely", i)
		}
	}
	// Fifth tag evicts LRU (tag 0, the least recently touched).
	if c.Access(4 * setStride) {
		t.Fatal("fifth tag hit")
	}
	if c.Access(0) {
		t.Fatal("LRU line survived eviction")
	}
	if !c.Access(2 * setStride) {
		t.Fatal("recently used line was evicted")
	}
}

func TestLRUOrdering(t *testing.T) {
	cfg := Config{SizeBytes: 128, LineBytes: 32, Ways: 2, MissPenalty: 1}
	c := New(cfg) // 2 sets, 2 ways
	setStride := uint32(64)
	a, b, d := 0*setStride, 1*setStride, 2*setStride // same set (set 0)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a most recent
	c.Access(d) // evicts b
	if !c.Access(a) {
		t.Fatal("a evicted despite being MRU")
	}
	if c.Access(b) {
		t.Fatal("b survived despite being LRU")
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	c := New(DefaultD())
	if c.Probe(0x40) {
		t.Fatal("probe hit cold cache")
	}
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("probe changed statistics")
	}
	c.Access(0x40)
	if !c.Probe(0x40) {
		t.Fatal("probe missed resident line")
	}
}

func TestReset(t *testing.T) {
	c := New(DefaultI())
	c.Access(0)
	c.Access(0)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("reset did not clear statistics")
	}
	if c.Access(0) {
		t.Fatal("line survived reset")
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted invalid config")
		}
	}()
	New(Config{SizeBytes: 100, LineBytes: 32, Ways: 4})
}

func TestWorkingSetFitsAfterWarmup(t *testing.T) {
	// A working set smaller than the cache must stop missing after one
	// pass, regardless of access order.
	c := New(DefaultD())
	addrs := make([]uint32, 256) // 256 lines x 32B = 8KB < 16KB
	for i := range addrs {
		addrs[i] = uint32(i) * 32
	}
	for _, a := range addrs {
		c.Access(a)
	}
	missesAfterWarm := c.Misses()
	r := rand.New(rand.NewSource(1))
	for pass := 0; pass < 4; pass++ {
		r.Shuffle(len(addrs), func(i, j int) { addrs[i], addrs[j] = addrs[j], addrs[i] })
		for _, a := range addrs {
			if !c.Access(a) {
				t.Fatal("fitting working set missed after warmup")
			}
		}
	}
	if c.Misses() != missesAfterWarm {
		t.Fatal("misses grew on a fitting working set")
	}
}

func TestThrashingWorkingSetMisses(t *testing.T) {
	// A strided working set twice the cache size must keep missing.
	c := New(DefaultD())
	var misses uint64
	for pass := 0; pass < 3; pass++ {
		before := c.Misses()
		for a := uint32(0); a < 32*1024; a += 32 {
			c.Access(a)
		}
		misses = c.Misses() - before
	}
	if misses != 1024 { // every line of the final pass must miss
		t.Fatalf("final pass misses = %d, want 1024", misses)
	}
}

// Property: hits + misses == total accesses.
func TestAccountingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		c := New(Config{SizeBytes: 1024, LineBytes: 32, Ways: 2, MissPenalty: 5})
		r := rand.New(rand.NewSource(seed))
		total := int(n) + 1
		for i := 0; i < total; i++ {
			c.Access(uint32(r.Intn(4096)))
		}
		return c.Hits()+c.Misses() == uint64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: immediately repeating any access hits.
func TestRepeatHitsProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := New(Config{SizeBytes: 2048, LineBytes: 64, Ways: 4, MissPenalty: 5})
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			a := uint32(r.Intn(1 << 20))
			c.Access(a)
			if !c.Access(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
