package experiments

import (
	"fmt"
	"math"
	"strings"

	"xtenergy/internal/core"
	"xtenergy/internal/workloads"
)

// Seed-stability study: the reference estimator's toggle sampling is
// seeded; re-characterizing under different seeds perturbs every
// measured energy. A robust characterization flow must recover nearly
// the same coefficients regardless — large seed sensitivity would mean
// the regression is reading noise, not silicon.

// StabilityRow is one coefficient's spread across seeds.
type StabilityRow struct {
	Variable string
	MeanPJ   float64
	StdPJ    float64
	// CVPct is the coefficient of variation (std/|mean|) in percent;
	// 0 for coefficients whose mean is ~0.
	CVPct float64
}

// StabilityResult is the Monte-Carlo characterization study.
type StabilityResult struct {
	Seeds int
	Rows  []StabilityRow
	// MaxMajorCVPct is the largest CV among "major" coefficients (those
	// with |mean| >= 10 pJ); small coefficients are dominated by noise
	// and excluded from the headline number.
	MaxMajorCVPct float64
}

// Stability re-characterizes the processor under n different technology
// seeds and reports the coefficient spread.
func (s *Suite) Stability(n int) (StabilityResult, error) {
	if n < 2 {
		return StabilityResult{}, fmt.Errorf("experiments: stability needs at least 2 seeds")
	}
	suite := workloads.CharacterizationSuite()
	coefs := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		tech := s.Tech
		tech.Seed = s.Tech.Seed + uint32(i)*0x9E3779B9
		cr, err := core.Characterize(s.context(), s.Config, tech, suite, core.Options{Regress: s.Regress})
		if err != nil {
			return StabilityResult{}, fmt.Errorf("experiments: seed %d: %w", i, err)
		}
		coefs = append(coefs, cr.Model.Coef[:])
	}

	res := StabilityResult{Seeds: n}
	for j := 0; j < core.NumVars; j++ {
		var mean float64
		for _, c := range coefs {
			mean += c[j]
		}
		mean /= float64(n)
		var sq float64
		for _, c := range coefs {
			d := c[j] - mean
			sq += d * d
		}
		std := math.Sqrt(sq / float64(n-1))
		row := StabilityRow{Variable: core.VarName(j), MeanPJ: mean, StdPJ: std}
		if math.Abs(mean) > 1e-9 {
			row.CVPct = 100 * std / math.Abs(mean)
		}
		res.Rows = append(res.Rows, row)
		if math.Abs(mean) >= 10 && row.CVPct > res.MaxMajorCVPct {
			res.MaxMajorCVPct = row.CVPct
		}
	}
	return res, nil
}

// FormatStability renders the seed-stability study.
func FormatStability(r StabilityResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SEED STABILITY: coefficients across %d characterization seeds\n", r.Seeds)
	fmt.Fprintf(&b, "%-20s %12s %10s %8s\n", "coefficient", "mean (pJ)", "std (pJ)", "CV")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-20s %12.1f %10.2f %7.2f%%\n", row.Variable, row.MeanPJ, row.StdPJ, row.CVPct)
	}
	fmt.Fprintf(&b, "max CV among major coefficients: %.2f%%\n", r.MaxMajorCVPct)
	return b.String()
}
