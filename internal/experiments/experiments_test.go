package experiments

import (
	"strings"
	"sync"
	"testing"

	"xtenergy/internal/core"
)

// The experiments share one Fast suite (characterization and Table II
// are cached inside it) to keep the package's test time reasonable.
var (
	suiteOnce sync.Once
	suite     *Suite
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() { suite = Fast() })
	return suite
}

func TestTable1(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 21 {
		t.Fatalf("Table I has %d rows, want 21", len(rows))
	}
	for _, r := range rows {
		if r.Variable == "" || r.Description == "" {
			t.Fatalf("row missing metadata: %+v", r)
		}
	}
	text := FormatTable1(rows)
	for _, want := range []string{"TABLE I", "arith", "hw:table"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Table I text missing %q", want)
		}
	}
}

func TestFig3ReproducesErrorBands(t *testing.T) {
	s := testSuite(t)
	f, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 40 {
		t.Fatalf("Fig 3 has %d points", len(f.Points))
	}
	// Paper bands: max < 8.9%, RMS 3.8%. Accept the same magnitude.
	if f.MaxAbsPct >= 10 {
		t.Fatalf("max fitting error %.2f%%, paper band is <8.9%%", f.MaxAbsPct)
	}
	if f.RMSPct >= 5 {
		t.Fatalf("RMS fitting error %.2f%%, paper reports 3.8%%", f.RMSPct)
	}
	if f.RMSPct <= 0.05 {
		t.Fatalf("RMS fitting error %.3f%% is implausibly small (interpolation?)", f.RMSPct)
	}
	text := FormatFig3(f)
	if !strings.Contains(text, "FIG. 3") {
		t.Fatal("Fig 3 text malformed")
	}
}

func TestTable2ReproducesErrorBands(t *testing.T) {
	s := testSuite(t)
	tab, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("Table II has %d rows, want 10", len(tab.Rows))
	}
	// Paper: max 8.5%, mean 3.3%. Accept the same magnitude.
	if tab.MaxAbsPct >= 10 {
		t.Fatalf("max application error %.1f%%, paper band is 8.5%%", tab.MaxAbsPct)
	}
	if tab.MeanAbsPct >= 5 {
		t.Fatalf("mean |error| %.1f%%, paper reports 3.3%%", tab.MeanAbsPct)
	}
	for _, r := range tab.Rows {
		if r.EstimateUJ <= 0 || r.ReferenceUJ <= 0 {
			t.Fatalf("non-positive energies for %s", r.Application)
		}
	}
	text := FormatTable2(tab)
	for _, want := range []string{"TABLE II", "ins_sort", "seq_mult"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Table II text missing %q", want)
		}
	}
}

func TestFig4TracksAndOrders(t *testing.T) {
	s := testSuite(t)
	points, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("Fig 4 has %d points", len(points))
	}
	// Relative accuracy: both estimators rank the choices identically.
	if !Fig4Tracks(points) {
		t.Fatalf("profiles do not track: %+v", points)
	}
	// The base configuration must be the most expensive under both
	// estimators and the fold configuration among the cheapest.
	if points[0].ReferenceUJ <= points[3].ReferenceUJ {
		t.Fatalf("rs_base not more expensive than rs_gffold: %+v", points)
	}
	// Each choice's estimate must be within 15% of its reference (the
	// relative-accuracy experiment tolerates more than Table II).
	for _, p := range points {
		rel := (p.EstimateUJ - p.ReferenceUJ) / p.ReferenceUJ
		if rel < -0.15 || rel > 0.15 {
			t.Fatalf("%s estimate off by %.1f%%", p.Choice, 100*rel)
		}
	}
	if !strings.Contains(FormatFig4(points), "FIG. 4") {
		t.Fatal("Fig 4 text malformed")
	}
}

func TestAblations(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationResult{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	full, ok := byName["hybrid-21var"]
	if !ok {
		t.Fatal("full model ablation row missing")
	}
	instOnly, ok := byName["instruction-only"]
	if !ok {
		t.Fatal("instruction-only ablation missing")
	}
	// The hybrid formulation is the paper's point: dropping the
	// structural variables must hurt out-of-sample accuracy clearly.
	if instOnly.AppMeanAbsPct < 1.5*full.AppMeanAbsPct {
		t.Fatalf("instruction-only (%.2f%%) not clearly worse than hybrid (%.2f%%)",
			instOnly.AppMeanAbsPct, full.AppMeanAbsPct)
	}
	if instOnly.TrainRMSPct < full.TrainRMSPct {
		t.Fatal("instruction-only fits training better than the hybrid?")
	}
	// The nonnegative variant must not produce wildly different app
	// errors than the plain fit.
	nn := byName["hybrid-nonneg"]
	if nn.AppMeanAbsPct > 2*full.AppMeanAbsPct+2 {
		t.Fatalf("nonnegative fit diverged: %.2f%% vs %.2f%%", nn.AppMeanAbsPct, full.AppMeanAbsPct)
	}
	if !strings.Contains(FormatAblations(rows), "ABLATIONS") {
		t.Fatal("ablation text malformed")
	}
}

func TestMappings(t *testing.T) {
	full := FullMapping()
	inst := InstructionOnlyMapping()
	lump := LumpedCyclesMapping()
	var v [21]float64
	for i := range v {
		v[i] = float64(i + 1)
	}
	if got := full.Transform(v); len(got) != 21 || got[20] != 21 {
		t.Fatalf("full mapping wrong: %v", got)
	}
	if got := inst.Transform(v); len(got) != 11 || got[10] != 11 {
		t.Fatalf("instruction-only mapping wrong: %v", got)
	}
	got := lump.Transform(v)
	if len(got) != 16 {
		t.Fatalf("lumped mapping length %d, want 16", len(got))
	}
	if got[0] != 1+2+3+4+5+6 {
		t.Fatalf("lumped cycles = %g, want 21", got[0])
	}
	if got[1] != 7 { // icache-miss follows
		t.Fatalf("lumped mapping shifted wrong: %v", got)
	}
}

func TestSpeedupQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup timing is slow")
	}
	s := testSuite(t)
	r, err := s.Speedup()
	if err != nil {
		t.Fatal(err)
	}
	// The reference path must be at least two orders of magnitude
	// slower (the paper reports three against true gate-level RTL).
	// The race detector slows the ISS-bound macro leg and the
	// arithmetic-bound reference leg by very different factors, so the
	// ratio is only asserted in uninstrumented builds.
	if !raceEnabled && r.Speedup < 50 {
		t.Fatalf("speedup only %.0fx", r.Speedup)
	}
	if !strings.Contains(FormatSpeedup(r), "SPEEDUP") {
		t.Fatal("speedup text malformed")
	}
}

func TestConfigSensitivity(t *testing.T) {
	s := testSuite(t)
	r, err := s.ConfigSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	// Each configuration's own model stays in the paper's error band.
	if r.BaseSelfMeanPct >= 5 || r.AltSelfMeanPct >= 5 {
		t.Fatalf("self-applied models degraded: %.2f%% / %.2f%%", r.BaseSelfMeanPct, r.AltSelfMeanPct)
	}
	// Applying the wrong configuration's model must be clearly worse.
	if r.CrossMeanPct < 1.3*r.AltSelfMeanPct {
		t.Fatalf("cross-applied model (%.2f%%) not clearly worse than self (%.2f%%)",
			r.CrossMeanPct, r.AltSelfMeanPct)
	}
	// Halving the caches and lengthening the miss penalty must raise the
	// per-miss coefficients.
	if r.AltCoef[core.VICacheMiss] <= r.BaseCoef[core.VICacheMiss] {
		t.Fatalf("icache-miss coefficient did not rise: %.1f -> %.1f",
			r.BaseCoef[core.VICacheMiss], r.AltCoef[core.VICacheMiss])
	}
	if r.AltCoef[core.VDCacheMiss] <= r.BaseCoef[core.VDCacheMiss] {
		t.Fatalf("dcache-miss coefficient did not rise: %.1f -> %.1f",
			r.BaseCoef[core.VDCacheMiss], r.AltCoef[core.VDCacheMiss])
	}
	if !strings.Contains(FormatConfigSensitivity(r), "CONFIG SENSITIVITY") {
		t.Fatal("config text malformed")
	}
}

func TestExtendedValidation(t *testing.T) {
	s := testSuite(t)
	v, err := s.Validation()
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Rows) != 6 {
		t.Fatalf("validation has %d rows, want 6", len(v.Rows))
	}
	if v.MaxAbsPct >= 10 {
		t.Fatalf("validation max error %.1f%%, outside the paper band", v.MaxAbsPct)
	}
	if v.MeanAbsPct >= 6 {
		t.Fatalf("validation mean |error| %.1f%%", v.MeanAbsPct)
	}
	if !strings.Contains(FormatValidation(v), "EXTENDED VALIDATION") {
		t.Fatal("validation text malformed")
	}
}

func TestCrossValidation(t *testing.T) {
	s := testSuite(t)
	cv, err := s.CrossValidation()
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.Points) != 40 {
		t.Fatalf("LOOCV has %d points", len(cv.Points))
	}
	// Every variable must be identifiable without any single program.
	if cv.Unidentifiable != 0 {
		t.Fatalf("%d programs are sole anchors of a variable", cv.Unidentifiable)
	}
	// Out-of-sample error is necessarily worse than the in-sample fit but
	// must stay bounded (no program should be wildly unpredictable).
	if cv.MeanAbsPct >= 15 {
		t.Fatalf("LOOCV mean |err| = %.1f%%", cv.MeanAbsPct)
	}
	if cv.MaxAbsPct >= 100 {
		t.Fatalf("LOOCV max |err| = %.1f%%: a program anchors its own variables", cv.MaxAbsPct)
	}
	if !strings.Contains(FormatCrossValidation(cv), "LEAVE-ONE-OUT") {
		t.Fatal("LOOCV text malformed")
	}
}

func TestStability(t *testing.T) {
	if testing.Short() {
		t.Skip("stability re-characterizes several times")
	}
	s := testSuite(t)
	r, err := s.Stability(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seeds != 3 || len(r.Rows) != 21 {
		t.Fatalf("stability shape wrong: %d seeds, %d rows", r.Seeds, len(r.Rows))
	}
	// The characterization must be robust to the reference model's
	// sampling seed: major coefficients should move by well under 10%.
	if r.MaxMajorCVPct >= 10 {
		t.Fatalf("max major coefficient CV = %.2f%%", r.MaxMajorCVPct)
	}
	if !strings.Contains(FormatStability(r), "SEED STABILITY") {
		t.Fatal("stability text malformed")
	}
	if _, err := s.Stability(1); err == nil {
		t.Fatal("single-seed stability accepted")
	}
}

func TestPerOpcodeAblationUnderdetermined(t *testing.T) {
	s := testSuite(t)
	vars, obs, solvable, err := s.PerOpcodeAblation()
	if err != nil {
		t.Fatal(err)
	}
	if vars <= obs {
		t.Fatalf("per-opcode model has %d variables for %d observations; expected underdetermined", vars, obs)
	}
	if solvable {
		t.Fatal("per-opcode model unexpectedly solvable")
	}
	// The opcode columns alone must exceed the paper's 6 classes by far.
	if vars < 45 {
		t.Fatalf("only %d per-opcode variables; suite uses too few opcodes", vars)
	}
}
