//go:build race

package experiments

// raceEnabled reports whether the binary was built with the race
// detector. Its instrumentation slows the two legs of the speedup
// measurement by very different factors, so timing-ratio assertions
// are skipped when it is on.
const raceEnabled = true
