package experiments

import (
	"strings"
	"testing"
)

// TestSabotageTolerance is the ISSUE's headline acceptance criterion:
// with 20% of the characterization suite sabotaged (all six chaos modes
// represented), the Partial policy must drop exactly the sabotaged
// workloads — each with its typed fault kind — recover the
// flaky-but-retryable one, and fit major coefficients within 5% of the
// clean fit.
func TestSabotageTolerance(t *testing.T) {
	s := testSuite(t)
	r, err := s.Sabotage()
	if err != nil {
		t.Fatal(err)
	}
	if r.Total != 40 || r.Sabotaged != 8 {
		t.Fatalf("study shape: %d sabotaged of %d, want 8 of 40", r.Sabotaged, r.Total)
	}

	// Exactly the sabotaged workloads are dropped, with the kind their
	// failure mode maps to and the attempts their retry policy allows
	// (hard faults: 1; transient stall/flaky under Retries=1: 2).
	wantFailures := map[string]struct {
		kind     string
		attempts int
	}{
		"tp02_alu_blend":       {"bad-measurement", 2}, // flaky, exhausts the retry budget
		"tp15_cover_mult":      {"mem-fault", 1},
		"tp24_cover_table":     {"panic", 1},
		"tp25_hybrid_mult":     {"bad-measurement", 1}, // NaN energy
		"tp31_hybrid_tiemac":   {"mem-fault", 1},
		"tp34_hybrid_table":    {"cancelled", 2},       // stalled stream, deadline is transient
		"tp37_memheavy_custom": {"bad-measurement", 1}, // dropped batches
		"tp40_mixed_custom":    {"bad-measurement", 1}, // NaN energy
	}
	if len(r.Failures) != len(wantFailures) {
		t.Fatalf("%d failures, want %d: %+v", len(r.Failures), len(wantFailures), r.Failures)
	}
	for _, f := range r.Failures {
		want, ok := wantFailures[f.Name]
		if !ok {
			t.Errorf("unexpected failure %s (%s)", f.Name, f.Kind())
			continue
		}
		if f.Kind() != want.kind {
			t.Errorf("%s failed as %s, want %s", f.Name, f.Kind(), want.kind)
		}
		if f.Attempts != want.attempts {
			t.Errorf("%s took %d attempts, want %d", f.Name, f.Attempts, want.attempts)
		}
		if _, ok := f.Fault(); !ok {
			t.Errorf("%s failure is not a typed fault: %v", f.Name, f.Err)
		}
	}
	// The recoverable flaky workload survived via retry.
	for _, f := range r.Failures {
		if f.Name == "tp05_load_stream" {
			t.Fatal("tp05_load_stream was dropped; it must recover on its retry")
		}
	}

	// The acceptance bar: major coefficients within 5% of the clean fit.
	if len(r.Rows) == 0 {
		t.Fatal("no major coefficients compared")
	}
	if r.MaxMajorDriftPct >= 5 {
		t.Fatalf("max major-coefficient drift %.2f%%, bar is 5%%:\n%s",
			r.MaxMajorDriftPct, FormatSabotage(r))
	}

	text := FormatSabotage(r)
	for _, want := range []string{"SABOTAGE TOLERANCE", "mem-fault", "bad-measurement", "max major-coefficient drift"} {
		if !strings.Contains(text, want) {
			t.Fatalf("sabotage text missing %q:\n%s", want, text)
		}
	}
}
