package experiments

import (
	"fmt"
	"math"
	"strings"

	"xtenergy/internal/core"
	"xtenergy/internal/isa"
	"xtenergy/internal/linalg"
	"xtenergy/internal/regress"
)

// The ablations probe the design choices DESIGN.md calls out: the hybrid
// instruction-level + structural formulation (vs. instruction-level
// only), the clustering of ~80 instructions into six classes (vs. one
// lumped cycle count), and the regression variant (plain pseudo-inverse
// vs. ridge vs. nonnegative). Each ablated model is refitted on the same
// characterization measurements and judged on the same out-of-sample
// applications.

// Mapping is an ablated variable set: a projection of the full
// 21-variable vector onto the ablation's variables.
type Mapping struct {
	Name      string
	VarCount  int
	Transform func(core.Vars) []float64
}

// FullMapping keeps all 21 variables (the paper's model).
func FullMapping() Mapping {
	return Mapping{
		Name:     "hybrid-21var",
		VarCount: core.NumVars,
		Transform: func(v core.Vars) []float64 {
			out := make([]float64, core.NumVars)
			copy(out, v[:])
			return out
		},
	}
}

// InstructionOnlyMapping drops the ten structural variables: custom
// hardware energy is invisible except through the side-effect term.
func InstructionOnlyMapping() Mapping {
	return Mapping{
		Name:     "instruction-only",
		VarCount: core.VCustomBase,
		Transform: func(v core.Vars) []float64 {
			out := make([]float64, core.VCustomBase)
			copy(out, v[:core.VCustomBase])
			return out
		},
	}
}

// LumpedCyclesMapping collapses the six class-cycle variables into one
// total base-cycle count (the "no clustering at all" underfit).
func LumpedCyclesMapping() Mapping {
	n := core.NumVars - 5 // 6 class vars -> 1
	return Mapping{
		Name:     "lumped-cycles",
		VarCount: n,
		Transform: func(v core.Vars) []float64 {
			out := make([]float64, 0, n)
			total := 0.0
			for i := core.VArith; i <= core.VBranchUntaken; i++ {
				total += v[i]
			}
			out = append(out, total)
			out = append(out, v[core.VICacheMiss:]...)
			return out
		},
	}
}

// AblationResult summarizes one model variant's quality.
type AblationResult struct {
	Name string
	// TrainRMSPct is the RMS relative fitting error on the
	// characterization suite.
	TrainRMSPct float64
	// AppMeanAbsPct / AppMaxAbsPct are Table II-style errors on the ten
	// held-out applications.
	AppMeanAbsPct float64
	AppMaxAbsPct  float64
}

// appObservation caches one application's variables and reference
// energy so every ablation reuses the same measurements.
type appObservation struct {
	name   string
	vars   core.Vars
	cycles uint64
	refPJ  float64
}

func (s *Suite) appObservations() ([]appObservation, error) {
	if s.appObs != nil {
		return s.appObs, nil
	}
	t2, err := s.Table2()
	if err != nil {
		return nil, err
	}
	_ = t2
	return s.appObs, nil
}

// Ablations fits each variant and scores it on the applications.
func (s *Suite) Ablations() ([]AblationResult, error) {
	cr, err := s.Characterization()
	if err != nil {
		return nil, err
	}
	apps, err := s.appObservations()
	if err != nil {
		return nil, err
	}

	type variant struct {
		mapping Mapping
		opts    regress.Options
	}
	variants := []variant{
		{FullMapping(), regress.Options{}},
		{InstructionOnlyMapping(), regress.Options{}},
		{LumpedCyclesMapping(), regress.Options{}},
		{Mapping{Name: "hybrid-nonneg", VarCount: core.NumVars, Transform: FullMapping().Transform}, regress.Options{NonNegative: true}},
		{Mapping{Name: "hybrid-ridge", VarCount: core.NumVars, Transform: FullMapping().Transform}, regress.Options{Ridge: 1e4}},
	}

	var out []AblationResult
	for _, v := range variants {
		res, err := s.runAblation(cr, apps, v.mapping, v.opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", v.mapping.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func (s *Suite) runAblation(cr *core.CharacterizationResult, apps []appObservation, m Mapping, opts regress.Options) (AblationResult, error) {
	rows := make([][]float64, len(cr.Observations))
	y := make([]float64, len(cr.Observations))
	for i, o := range cr.Observations {
		rows[i] = m.Transform(o.Vars)
		y[i] = o.MeasuredPJ
	}

	// Drop identically-zero columns (unused categories under this
	// mapping) to keep the system full rank.
	used := make([]int, 0, m.VarCount)
	for j := 0; j < m.VarCount; j++ {
		for _, r := range rows {
			if r[j] != 0 {
				used = append(used, j)
				break
			}
		}
	}
	x := linalg.NewMatrix(len(rows), len(used))
	for i, r := range rows {
		for jj, j := range used {
			x.Set(i, jj, r[j])
		}
	}
	fit, err := regress.FitLinear(x, y, opts)
	if err != nil {
		return AblationResult{}, err
	}

	coef := make([]float64, m.VarCount)
	for jj, j := range used {
		coef[j] = fit.Coef[jj]
	}

	res := AblationResult{Name: m.Name, TrainRMSPct: 100 * fit.RMSRel}
	var totAbs float64
	for _, a := range apps {
		est := linalg.Dot(coef, m.Transform(a.vars))
		errPct := 0.0
		if a.refPJ != 0 {
			errPct = 100 * (est - a.refPJ) / a.refPJ
		}
		if ab := math.Abs(errPct); ab > res.AppMaxAbsPct {
			res.AppMaxAbsPct = ab
		}
		totAbs += math.Abs(errPct)
	}
	res.AppMeanAbsPct = totAbs / float64(len(apps))
	return res, nil
}

// FormatAblations renders the ablation comparison.
func FormatAblations(rows []AblationResult) string {
	var b strings.Builder
	b.WriteString("ABLATIONS: model variants, fitted on the same suite, scored on the 10 apps\n")
	fmt.Fprintf(&b, "%-20s %14s %16s %15s\n", "variant", "train RMS", "app mean |err|", "app max |err|")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %13.2f%% %15.2f%% %14.2f%%\n", r.Name, r.TrainRMSPct, r.AppMeanAbsPct, r.AppMaxAbsPct)
	}
	return b.String()
}

// PerOpcodeAblation attempts the un-clustered model: one coefficient per
// base opcode (plus the event, side-effect and structural variables)
// instead of the paper's six instruction classes. With ~80 base opcodes
// this needs more observations than any reasonable characterization
// suite provides — the concrete reason the paper clusters instructions.
// It returns the variable and observation counts and whether the fit was
// solvable.
func (s *Suite) PerOpcodeAblation() (variables, observations int, solvable bool, err error) {
	cr, err := s.Characterization()
	if err != nil {
		return 0, 0, false, err
	}
	obs := cr.Observations

	// Columns: every opcode executed anywhere in the suite, plus the
	// non-class variables of the full model.
	var opcodes []int
	for op := 0; op < isa.NumOpcodes; op++ {
		for i := range obs {
			if obs[i].OpcodeExec[op] != 0 {
				opcodes = append(opcodes, op)
				break
			}
		}
	}
	extra := core.NumVars - 6 // events + side effect + structural
	variables = len(opcodes) + extra
	observations = len(obs)
	if observations < variables {
		return variables, observations, false, nil
	}

	x := linalg.NewMatrix(observations, variables)
	y := make([]float64, observations)
	for i := range obs {
		for jj, op := range opcodes {
			x.Set(i, jj, float64(obs[i].OpcodeExec[op]))
		}
		for k := 0; k < extra; k++ {
			x.Set(i, len(opcodes)+k, obs[i].Vars[6+k])
		}
		y[i] = obs[i].MeasuredPJ
	}
	if _, ferr := regress.FitLinear(x, y, regress.Options{}); ferr != nil {
		return variables, observations, false, nil
	}
	return variables, observations, true, nil
}
