package experiments

import (
	"fmt"
	"math"
	"strings"

	"xtenergy/internal/core"
	"xtenergy/internal/linalg"
	"xtenergy/internal/regress"
)

// Leave-one-out cross-validation of the characterization suite: for each
// test program, the model is refitted on the remaining programs and
// asked to predict the held-out one. This measures the generalization of
// the suite itself (the paper's Fig. 3 measures in-sample fit; LOOCV is
// the stricter out-of-sample view of the same data), and flags programs
// whose variables are only identified by themselves.

// CrossValidationPoint is one held-out prediction.
type CrossValidationPoint struct {
	Name string
	// ErrPct is the signed prediction error in percent; NaN if the
	// reduced suite could not identify the held-out program's variables
	// (the point is excluded from the aggregates and counted in
	// Unidentifiable).
	ErrPct float64
}

// CrossValidationResult aggregates the LOOCV sweep.
type CrossValidationResult struct {
	Points         []CrossValidationPoint
	MeanAbsPct     float64
	MaxAbsPct      float64
	RMSPct         float64
	Unidentifiable int
}

// CrossValidation runs leave-one-out over the cached characterization
// observations. No simulation is re-run — only the regression.
func (s *Suite) CrossValidation() (CrossValidationResult, error) {
	cr, err := s.Characterization()
	if err != nil {
		return CrossValidationResult{}, err
	}
	obs := cr.Observations
	n := len(obs)
	if n < 3 {
		return CrossValidationResult{}, fmt.Errorf("experiments: too few observations for LOOCV")
	}

	var res CrossValidationResult
	var sumAbs, sumSq float64
	counted := 0
	for hold := 0; hold < n; hold++ {
		coef, ok, err := fitWithout(obs, hold)
		if err != nil {
			return CrossValidationResult{}, err
		}
		p := CrossValidationPoint{Name: obs[hold].Name, ErrPct: math.NaN()}
		if ok {
			pred := linalg.Dot(coef, obs[hold].Vars[:])
			if obs[hold].MeasuredPJ != 0 {
				p.ErrPct = 100 * (pred - obs[hold].MeasuredPJ) / obs[hold].MeasuredPJ
			}
		}
		if math.IsNaN(p.ErrPct) {
			res.Unidentifiable++
		} else {
			a := math.Abs(p.ErrPct)
			sumAbs += a
			sumSq += p.ErrPct * p.ErrPct
			if a > res.MaxAbsPct {
				res.MaxAbsPct = a
			}
			counted++
		}
		res.Points = append(res.Points, p)
	}
	if counted > 0 {
		res.MeanAbsPct = sumAbs / float64(counted)
		res.RMSPct = math.Sqrt(sumSq / float64(counted))
	}
	return res, nil
}

// fitWithout refits the 21-variable model excluding observation hold.
// ok is false when the held-out program uses a variable the reduced
// suite cannot identify (a column that is zero everywhere else).
func fitWithout(obs []core.Observation, hold int) (coef []float64, ok bool, err error) {
	rows := make([][]float64, 0, len(obs)-1)
	y := make([]float64, 0, len(obs)-1)
	for i := range obs {
		if i == hold {
			continue
		}
		rows = append(rows, obs[i].Vars[:])
		y = append(y, obs[i].MeasuredPJ)
	}
	used := make([]int, 0, core.NumVars)
	for j := 0; j < core.NumVars; j++ {
		for _, r := range rows {
			if r[j] != 0 {
				used = append(used, j)
				break
			}
		}
	}
	// If the held-out program uses variables outside the reduced column
	// set, it cannot be predicted.
	for j := 0; j < core.NumVars; j++ {
		if obs[hold].Vars[j] != 0 && !contains(used, j) {
			return nil, false, nil
		}
	}
	x := linalg.NewMatrix(len(rows), len(used))
	for i, r := range rows {
		for jj, j := range used {
			x.Set(i, jj, r[j])
		}
	}
	fit, err := regress.FitLinear(x, y, regress.Options{})
	if err != nil {
		if err == linalg.ErrRankDeficient {
			return nil, false, nil
		}
		return nil, false, err
	}
	full := make([]float64, core.NumVars)
	for jj, j := range used {
		full[j] = fit.Coef[jj]
	}
	return full, true, nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// FormatCrossValidation renders the LOOCV sweep.
func FormatCrossValidation(r CrossValidationResult) string {
	var b strings.Builder
	b.WriteString("LEAVE-ONE-OUT CROSS-VALIDATION of the characterization suite\n")
	for i, p := range r.Points {
		if math.IsNaN(p.ErrPct) {
			fmt.Fprintf(&b, "%2d %-24s (unidentifiable without itself)\n", i+1, p.Name)
			continue
		}
		n := int(math.Abs(p.ErrPct)*2 + 0.5)
		if n > 60 {
			n = 60
		}
		bar := strings.Repeat("#", n)
		fmt.Fprintf(&b, "%2d %-24s %+7.2f%% %s\n", i+1, p.Name, p.ErrPct, bar)
	}
	fmt.Fprintf(&b, "mean |err| = %.2f%%, max |err| = %.2f%%, RMS = %.2f%% (%d unidentifiable)\n",
		r.MeanAbsPct, r.MaxAbsPct, r.RMSPct, r.Unidentifiable)
	return b.String()
}
