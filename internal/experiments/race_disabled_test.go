//go:build !race

package experiments

// raceEnabled reports whether the binary was built with the race
// detector. See race_enabled_test.go.
const raceEnabled = false
