package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"xtenergy/internal/chaos"
	"xtenergy/internal/core"
	"xtenergy/internal/workloads"
)

// Sabotage-tolerance study: the characterization flow claims to degrade
// gracefully when reference measurements fail. This experiment proves
// it quantitatively — 20% of the test suite is sabotaged through the
// internal/chaos harness (memory faults, NaN energies, a stalled
// stream, dropped trace batches, a panicking worker, a flaky oracle)
// and the partial fit's major coefficients are compared against the
// clean fit's.

// SabotagePlan is the study's standard 8-of-40 sabotage (20% of the
// characterization suite). The victims are chosen for redundancy, not
// at random: each sabotaged program's columns stay identified by the
// banded cover design's surviving programs. Sole-identifier programs
// (tp09_branch_untaken, tp14_uncached, ...) must never be sabotaged —
// dropping one of those moves its coefficient by 50-200% and no fitter
// can recover information that was measured exactly once. One extra
// workload (tp05) is made flaky-but-recoverable: it must survive via
// retry, not be dropped.
func SabotagePlan() chaos.Plan {
	return chaos.Plan{
		"tp15_cover_mult":      {Mode: chaos.MemFault, PC: -1},
		"tp25_hybrid_mult":     {Mode: chaos.NaNEnergy},
		"tp24_cover_table":     {Mode: chaos.PanicWorker},
		"tp34_hybrid_table":    {Mode: chaos.StallStream},
		"tp31_hybrid_tiemac":   {Mode: chaos.MemFault, PC: -1},
		"tp37_memheavy_custom": {Mode: chaos.DropBatches},
		"tp40_mixed_custom":    {Mode: chaos.NaNEnergy},
		// Exhausts the retry budget (Retries=1 → 2 attempts) before
		// recovering: it must be dropped with attempts=2.
		"tp02_alu_blend": {Mode: chaos.Flaky, FailFirst: 3},
		// Recovers on its second attempt — exercises the retry path
		// without exceeding the 20% sabotage budget.
		"tp05_load_stream": {Mode: chaos.Flaky, FailFirst: 1},
	}
}

// SabotageRow is one major coefficient's clean-vs-partial comparison.
type SabotageRow struct {
	Variable  string
	CleanPJ   float64
	PartialPJ float64
	DriftPct  float64 // 100*|partial-clean|/|clean|
}

// SabotageResult is the sabotage-tolerance study.
type SabotageResult struct {
	Total     int // suite size
	Sabotaged int // workloads expected to fail
	Failures  []core.Failure
	Rows      []SabotageRow // major coefficients only (|clean| >= 10 pJ)
	// MaxMajorDriftPct is the headline number: the largest relative
	// coefficient change among major coefficients. The acceptance bar
	// is 5%.
	MaxMajorDriftPct float64
}

// Sabotage characterizes the suite twice — clean, then with the
// standard sabotage plan under the Partial policy (per-workload
// timeout, one retry) — and reports the failure roster and the major
// coefficients' drift.
func (s *Suite) Sabotage() (SabotageResult, error) {
	cleanCR, err := s.Characterization()
	if err != nil {
		return SabotageResult{}, err
	}

	plan := SabotagePlan()
	progs := workloads.CharacterizationSuite()
	opts := core.Options{
		Regress: s.Regress,
		Partial: true,
		Timeout: 5 * time.Second,
		Retries: 1,
		Backoff: s.Backoff,
		Measure: plan.Measure(),
	}
	partialCR, err := core.Characterize(s.context(), s.Config, s.Tech, progs, opts)
	if err != nil {
		return SabotageResult{}, fmt.Errorf("experiments: sabotaged characterization: %w", err)
	}

	res := SabotageResult{
		Total:     len(progs),
		Sabotaged: len(plan) - 1, // tp05 recovers via retry
		Failures:  partialCR.Failures,
	}
	for i := 0; i < core.NumVars; i++ {
		clean := cleanCR.Model.Coef[i]
		if math.Abs(clean) < 10 {
			continue
		}
		part := partialCR.Model.Coef[i]
		drift := 100 * math.Abs(part-clean) / math.Abs(clean)
		res.Rows = append(res.Rows, SabotageRow{
			Variable: core.VarName(i), CleanPJ: clean, PartialPJ: part, DriftPct: drift,
		})
		if drift > res.MaxMajorDriftPct {
			res.MaxMajorDriftPct = drift
		}
	}
	return res, nil
}

// FormatSabotage renders the sabotage-tolerance study.
func FormatSabotage(r SabotageResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SABOTAGE TOLERANCE: %d of %d workloads sabotaged, partial fit vs clean fit\n",
		r.Sabotaged, r.Total)
	fmt.Fprintf(&b, "dropped workloads (%d):\n", len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  %-22s %-16s attempts=%d\n", f.Name, f.Kind(), f.Attempts)
	}
	fmt.Fprintf(&b, "major coefficients (|clean| >= 10 pJ):\n")
	fmt.Fprintf(&b, "  %-20s %12s %12s %8s\n", "coefficient", "clean (pJ)", "partial (pJ)", "drift")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-20s %12.1f %12.1f %7.2f%%\n", row.Variable, row.CleanPJ, row.PartialPJ, row.DriftPct)
	}
	fmt.Fprintf(&b, "max major-coefficient drift: %.2f%% (bar: 5%%)\n", r.MaxMajorDriftPct)
	return b.String()
}
