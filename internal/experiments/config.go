package experiments

import (
	"fmt"
	"math"
	"strings"

	"xtenergy/internal/cache"
	"xtenergy/internal/core"
	"xtenergy/internal/procgen"
	"xtenergy/internal/workloads"
)

// The paper's premise is that the macro-model characterizes one
// *processor family* (base configuration + technology): changing the
// configurable options — cache architecture, optional functional units —
// changes the coefficients, so each configuration is characterized once
// and then reused for any custom-instruction extension. This experiment
// demonstrates both halves: re-characterizing a second configuration
// restores accuracy, while applying the first configuration's model to
// the second degrades it.

// AltConfig returns a second base configuration: half-size, 2-way
// caches with a longer miss penalty, and no 32-bit multiplier option.
func AltConfig() procgen.Config {
	cfg := procgen.Default()
	cfg.Name = "T1040-small-cache"
	cfg.ICache = cache.Config{SizeBytes: 8 * 1024, LineBytes: 32, Ways: 2, MissPenalty: 12}
	cfg.DCache = cache.Config{SizeBytes: 8 * 1024, LineBytes: 32, Ways: 2, MissPenalty: 14}
	cfg.HasMul32 = false
	return cfg
}

// ConfigSensitivityResult summarizes the configuration experiment.
type ConfigSensitivityResult struct {
	BaseName, AltName string

	// Self-application errors (Table II-style mean/max |error| on the
	// ten apps) of each configuration's own model.
	BaseSelfMeanPct, BaseSelfMaxPct float64
	AltSelfMeanPct, AltSelfMaxPct   float64

	// Cross-application: the base configuration's model estimating
	// applications running on the alternative configuration.
	CrossMeanPct, CrossMaxPct float64

	// Selected coefficient changes between the two characterizations.
	BaseCoef, AltCoef core.Vars
}

// ConfigSensitivity characterizes the alternative configuration and
// scores self- and cross-applied models on the ten applications.
func (s *Suite) ConfigSensitivity() (ConfigSensitivityResult, error) {
	baseCR, err := s.Characterization()
	if err != nil {
		return ConfigSensitivityResult{}, err
	}
	if _, err := s.Table2(); err != nil { // fills the base app cache
		return ConfigSensitivityResult{}, err
	}

	altCfg := AltConfig()
	altCR, err := core.Characterize(s.context(), altCfg, s.Tech, workloads.CharacterizationSuite(), core.Options{Regress: s.Regress})
	if err != nil {
		return ConfigSensitivityResult{}, fmt.Errorf("experiments: alt characterization: %w", err)
	}

	res := ConfigSensitivityResult{
		BaseName: s.Config.Name,
		AltName:  altCfg.Name,
		BaseCoef: baseCR.Model.Coef,
		AltCoef:  altCR.Model.Coef,
	}

	// Base model on base processor (from the cached Table II data).
	for _, a := range s.appObs {
		errPct := 100 * (baseCR.Model.EstimatePJ(a.vars) - a.refPJ) / a.refPJ
		res.BaseSelfMeanPct += math.Abs(errPct)
		if math.Abs(errPct) > res.BaseSelfMaxPct {
			res.BaseSelfMaxPct = math.Abs(errPct)
		}
	}
	res.BaseSelfMeanPct /= float64(len(s.appObs))

	// Alt processor: run each app once, score both models against the
	// alt reference.
	var altSelfTot, crossTot float64
	apps := workloads.Applications()
	for _, w := range apps {
		est, err := altCR.Model.EstimateWorkload(altCfg, w)
		if err != nil {
			return res, err
		}
		ref, err := core.ReferenceEnergy(s.context(), altCfg, s.Tech, w)
		if err != nil {
			return res, err
		}
		selfPct := 100 * (est.EnergyPJ - ref.EnergyPJ) / ref.EnergyPJ
		crossPct := 100 * (baseCR.Model.EstimatePJ(est.Vars) - ref.EnergyPJ) / ref.EnergyPJ
		altSelfTot += math.Abs(selfPct)
		crossTot += math.Abs(crossPct)
		if math.Abs(selfPct) > res.AltSelfMaxPct {
			res.AltSelfMaxPct = math.Abs(selfPct)
		}
		if math.Abs(crossPct) > res.CrossMaxPct {
			res.CrossMaxPct = math.Abs(crossPct)
		}
	}
	res.AltSelfMeanPct = altSelfTot / float64(len(apps))
	res.CrossMeanPct = crossTot / float64(len(apps))
	return res, nil
}

// FormatConfigSensitivity renders the configuration experiment.
func FormatConfigSensitivity(r ConfigSensitivityResult) string {
	var b strings.Builder
	b.WriteString("CONFIG SENSITIVITY: the macro-model is per processor configuration\n")
	fmt.Fprintf(&b, "%-42s %14s %13s\n", "model applied to apps on...", "mean |err|", "max |err|")
	fmt.Fprintf(&b, "%-42s %13.2f%% %12.2f%%\n",
		r.BaseName+" model on "+r.BaseName, r.BaseSelfMeanPct, r.BaseSelfMaxPct)
	fmt.Fprintf(&b, "%-42s %13.2f%% %12.2f%%\n",
		r.AltName+" model on "+r.AltName, r.AltSelfMeanPct, r.AltSelfMaxPct)
	fmt.Fprintf(&b, "%-42s %13.2f%% %12.2f%%\n",
		r.BaseName+" model on "+r.AltName+" (wrong)", r.CrossMeanPct, r.CrossMaxPct)
	b.WriteString("coefficient shifts under the small-cache/no-multiplier configuration:\n")
	for _, i := range []int{core.VICacheMiss, core.VDCacheMiss, core.VArith, core.VLoad} {
		fmt.Fprintf(&b, "  %-16s %9.1f -> %9.1f pJ\n", core.VarName(i), r.BaseCoef[i], r.AltCoef[i])
	}
	return b.String()
}
