// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V): Table I (the 21 fitted energy coefficients),
// Fig. 3 (fitting error per test program), Table II (application energy
// estimates vs. the RTL reference), Fig. 4 (relative accuracy across the
// Reed-Solomon custom-instruction choices), and the speedup comparison,
// plus the ablation studies called out in DESIGN.md.
//
// Every reference measurement in this package is trace-free: the
// characterization and Table II legs stream the ISS directly into the
// incremental RTL estimator (rtlpower.StreamEstimator) instead of
// materializing []iss.TraceEntry, so the experiments run in O(1) trace
// memory regardless of workload length.
package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"xtenergy/internal/core"
	"xtenergy/internal/engine"
	"xtenergy/internal/hwlib"
	"xtenergy/internal/procgen"
	"xtenergy/internal/regress"
	"xtenergy/internal/rtlpower"
	"xtenergy/internal/workloads"
)

// Suite drives the experiments for one processor configuration and
// technology. Characterization is performed once and cached.
type Suite struct {
	Config  procgen.Config
	Tech    rtlpower.Technology
	Regress regress.Options

	// Ctx, when non-nil, bounds every reference measurement the suite
	// runs (the CLIs pass their signal-cancelled context so ^C / SIGTERM
	// interrupts a long characterization instead of being ignored).
	Ctx context.Context

	// Fault-tolerance knobs, forwarded to core.Characterize: Partial
	// drops failed workloads instead of aborting, Timeout bounds each
	// workload's reference leg, Retries re-runs transient failures,
	// Backoff paces those retries (0 = default, negative = immediate).
	Partial bool
	Timeout time.Duration
	Retries int
	Backoff time.Duration

	// Parallelism bounds concurrent workload legs in characterization;
	// 0 means runtime.GOMAXPROCS(0).
	Parallelism int

	charResult *core.CharacterizationResult
	appObs     []appObservation
}

// context returns the suite's run context (Background when unset).
func (s *Suite) context() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// charOpts assembles the core characterization options from the
// suite's knobs.
func (s *Suite) charOpts() core.Options {
	return core.Options{
		Regress:     s.Regress,
		Partial:     s.Partial,
		Timeout:     s.Timeout,
		Retries:     s.Retries,
		Backoff:     s.Backoff,
		Parallelism: s.Parallelism,
	}
}

// Default returns the paper-faithful suite (full-detail reference
// model).
func Default() *Suite {
	return &Suite{Config: procgen.Default(), Tech: rtlpower.DefaultTechnology()}
}

// Fast returns a suite using the reduced-resolution reference model, for
// tests and quick runs; expected energies are unchanged.
func Fast() *Suite {
	return &Suite{Config: procgen.Default(), Tech: rtlpower.FastTechnology()}
}

// Characterization builds (or returns the cached) macro-model from the
// 25-program suite. It resolves through the content-addressed engine,
// so a repeat run — in this suite, another tool, or another process —
// recalls the fitted model from the artifact store instead of
// re-simulating the suite (partial/fault-injecting runs bypass the
// store inside the engine).
func (s *Suite) Characterization() (*core.CharacterizationResult, error) {
	if s.charResult != nil {
		return s.charResult, nil
	}
	res, _, err := engine.Default().Characterize(s.context(), engine.CharacterizeSpec{
		Config: s.Config, Tech: s.Tech,
		Workloads: workloads.CharacterizationSuite(), Opts: s.charOpts(),
	})
	if err != nil {
		return nil, err
	}
	s.charResult = res
	return res, nil
}

// ---- Table I ----

// Table1Row is one energy coefficient of the characterized processor.
type Table1Row struct {
	Variable    string
	Description string
	ValuePJ     float64
	// StdErrPJ is the regression standard error of the coefficient
	// (0 when undefined).
	StdErrPJ float64
}

var table1Descriptions = map[string]string{
	"arith":              "arithmetic instruction (per cycle)",
	"load":               "load instruction (per cycle)",
	"store":              "store instruction (per cycle)",
	"jump":               "jump instruction (per cycle)",
	"branch-taken":       "branch taken (per cycle)",
	"branch-untaken":     "branch untaken (per cycle)",
	"icache-miss":        "instruction cache miss (per miss)",
	"dcache-miss":        "data cache miss (per miss)",
	"uncached-fetch":     "uncached instruction fetch (per fetch)",
	"interlock":          "processor interlock (per stall)",
	"custom-side-effect": "side effects due to custom instructions (per cycle)",
}

// Table1 returns the fitted coefficients in the paper's Table I order.
func (s *Suite) Table1() ([]Table1Row, error) {
	cr, err := s.Characterization()
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, core.NumVars)
	for i := 0; i < core.NumVars; i++ {
		name := core.VarName(i)
		desc := table1Descriptions[name]
		if desc == "" {
			desc = "custom hw: " + hwlib.Category(i-core.VCustomBase).String() + " (per active cycle, unit complexity)"
		}
		rows = append(rows, Table1Row{
			Variable:    name,
			Description: desc,
			ValuePJ:     cr.Model.Coef[i],
			StdErrPJ:    cr.Model.CoefStdErr[i],
		})
	}
	return rows, nil
}

// FormatTable1 renders Table I as text.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("TABLE I: Energy coefficients of the characterized processor\n")
	fmt.Fprintf(&b, "%-20s %-52s %12s %10s\n", "coefficient", "description", "value (pJ)", "std err")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %-52s %12.1f %10.1f\n", r.Variable, r.Description, r.ValuePJ, r.StdErrPJ)
	}
	return b.String()
}

// ---- Fig. 3 ----

// Fig3Point is the fitting error of one test program.
type Fig3Point struct {
	Index      int
	Name       string
	RelErrPct  float64 // signed, percent
	MeasuredUJ float64
}

// Fig3Summary aggregates the fitting-error profile.
type Fig3Summary struct {
	Points    []Fig3Point
	MaxAbsPct float64
	RMSPct    float64
}

// Fig3 returns the per-test-program fitting errors (paper: max < 8.9%,
// RMS 3.8%).
func (s *Suite) Fig3() (Fig3Summary, error) {
	cr, err := s.Characterization()
	if err != nil {
		return Fig3Summary{}, err
	}
	var sum Fig3Summary
	var sq float64
	for i, o := range cr.Observations {
		pct := 100 * o.RelErr
		sum.Points = append(sum.Points, Fig3Point{
			Index: i + 1, Name: o.Name, RelErrPct: pct, MeasuredUJ: o.MeasuredPJ * 1e-6,
		})
		if a := abs(pct); a > sum.MaxAbsPct {
			sum.MaxAbsPct = a
		}
		sq += pct * pct
	}
	sum.RMSPct = math.Sqrt(sq / float64(len(cr.Observations)))
	return sum, nil
}

// FormatFig3 renders the fitting-error figure as a text bar chart.
func FormatFig3(f Fig3Summary) string {
	var b strings.Builder
	b.WriteString("FIG. 3: Fitting error of the test programs\n")
	for _, p := range f.Points {
		bar := strings.Repeat("#", int(abs(p.RelErrPct)*4+0.5))
		fmt.Fprintf(&b, "%2d %-22s %+6.2f%% %s\n", p.Index, p.Name, p.RelErrPct, bar)
	}
	fmt.Fprintf(&b, "max |error| = %.2f%% (paper: <8.9%%), RMS = %.2f%% (paper: 3.8%%)\n",
		f.MaxAbsPct, f.RMSPct)
	return b.String()
}

// ---- Table II ----

// Table2Row is one application's estimate-vs-reference comparison.
type Table2Row struct {
	Application string
	EstimateUJ  float64
	ReferenceUJ float64
	ErrPct      float64 // signed
}

// Table2Summary is the Table II reproduction.
type Table2Summary struct {
	Rows       []Table2Row
	MaxAbsPct  float64 // paper: 8.5%
	MeanAbsPct float64 // paper: 3.3%
}

// Table2 runs the ten application benchmarks through both the
// macro-model and the reference estimator.
func (s *Suite) Table2() (Table2Summary, error) {
	cr, err := s.Characterization()
	if err != nil {
		return Table2Summary{}, err
	}
	rows, obs, err := s.compareApps(cr, workloads.Applications())
	if err != nil {
		return Table2Summary{}, err
	}
	sum := summarize(rows)
	s.appObs = obs
	return sum, nil
}

// compareApps runs the fast and reference paths for each workload in
// parallel (both legs are independent per application) and returns the
// per-app rows in input order.
func (s *Suite) compareApps(cr *core.CharacterizationResult, apps []core.Workload) ([]Table2Row, []appObservation, error) {
	rows := make([]Table2Row, len(apps))
	obs := make([]appObservation, len(apps))
	errs := make([]error, len(apps))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range apps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			w := apps[i]
			est, err := cr.Model.EstimateWorkload(s.Config, w)
			if err != nil {
				errs[i] = err
				return
			}
			ref, err := core.ReferenceEnergy(s.context(), s.Config, s.Tech, w)
			if err != nil {
				errs[i] = err
				return
			}
			errPct := 0.0
			if ref.EnergyPJ != 0 {
				errPct = 100 * (est.EnergyPJ - ref.EnergyPJ) / ref.EnergyPJ
			}
			rows[i] = Table2Row{
				Application: w.Name,
				EstimateUJ:  est.EnergyUJ(),
				ReferenceUJ: ref.EnergyUJ(),
				ErrPct:      errPct,
			}
			obs[i] = appObservation{
				name: w.Name, vars: est.Vars, cycles: est.Cycles, refPJ: ref.EnergyPJ,
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return rows, obs, nil
}

// summarize aggregates per-app rows into the Table II summary.
func summarize(rows []Table2Row) Table2Summary {
	sum := Table2Summary{Rows: rows}
	var totAbs float64
	for _, r := range rows {
		if a := abs(r.ErrPct); a > sum.MaxAbsPct {
			sum.MaxAbsPct = a
		}
		totAbs += abs(r.ErrPct)
	}
	if len(rows) > 0 {
		sum.MeanAbsPct = totAbs / float64(len(rows))
	}
	return sum
}

// FormatTable2 renders Table II as text.
func FormatTable2(t Table2Summary) string {
	var b strings.Builder
	b.WriteString("TABLE II: Application energy estimates, macro-model vs. RTL reference\n")
	fmt.Fprintf(&b, "%-18s %14s %16s %9s\n", "application", "estimate (uJ)", "reference (uJ)", "error")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-18s %14.2f %16.2f %+8.1f%%\n", r.Application, r.EstimateUJ, r.ReferenceUJ, r.ErrPct)
	}
	fmt.Fprintf(&b, "max |error| = %.1f%% (paper: 8.5%%), mean |error| = %.1f%% (paper: 3.3%%)\n",
		t.MaxAbsPct, t.MeanAbsPct)
	return b.String()
}

// ---- Fig. 4 ----

// Fig4Point is one Reed-Solomon custom-instruction choice.
type Fig4Point struct {
	Choice      string
	EstimateUJ  float64
	ReferenceUJ float64
	Cycles      uint64
}

// Fig4 compares the macro-model and reference energies across the four
// Reed-Solomon configurations; the paper's claim is relative accuracy —
// the two profiles track each other.
func (s *Suite) Fig4() ([]Fig4Point, error) {
	cr, err := s.Characterization()
	if err != nil {
		return nil, err
	}
	var out []Fig4Point
	for _, w := range workloads.ReedSolomonConfigurations() {
		est, err := cr.Model.EstimateWorkload(s.Config, w)
		if err != nil {
			return nil, err
		}
		ref, err := core.ReferenceEnergy(s.context(), s.Config, s.Tech, w)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig4Point{
			Choice:      w.Name,
			EstimateUJ:  est.EnergyUJ(),
			ReferenceUJ: ref.EnergyUJ(),
			Cycles:      est.Cycles,
		})
	}
	return out, nil
}

// Fig4Tracks reports whether the two profiles rank the configurations
// identically (the relative-accuracy property).
func Fig4Tracks(points []Fig4Point) bool {
	estOrder := rankOrder(points, func(p Fig4Point) float64 { return p.EstimateUJ })
	refOrder := rankOrder(points, func(p Fig4Point) float64 { return p.ReferenceUJ })
	for i := range estOrder {
		if estOrder[i] != refOrder[i] {
			return false
		}
	}
	return true
}

func rankOrder(points []Fig4Point, key func(Fig4Point) float64) []int {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return key(points[idx[a]]) < key(points[idx[b]]) })
	return idx
}

// FormatFig4 renders the Reed-Solomon design-space figure as text.
func FormatFig4(points []Fig4Point) string {
	var b strings.Builder
	b.WriteString("FIG. 4: Reed-Solomon energy across custom-instruction choices\n")
	fmt.Fprintf(&b, "%-12s %10s %14s %16s\n", "choice", "cycles", "estimate (uJ)", "reference (uJ)")
	for _, p := range points {
		fmt.Fprintf(&b, "%-12s %10d %14.2f %16.2f\n", p.Choice, p.Cycles, p.EstimateUJ, p.ReferenceUJ)
	}
	fmt.Fprintf(&b, "profiles track: %v\n", Fig4Tracks(points))
	return b.String()
}

// ---- Speedup ----

// SpeedupResult compares the wall-clock cost of the two estimation
// paths over the ten applications.
type SpeedupResult struct {
	MacroModel time.Duration
	Reference  time.Duration
	Speedup    float64
}

// Speedup times macro-model estimation (ISS + resource analysis + dot
// product) against the RTL-level reference (ISS streaming into the
// structural per-net simulation) over all ten applications. The reference runs at
// full netlist resolution (Detail 1.0) regardless of the suite's
// technology, since that is the honest cost of the slow path. The paper
// reports an average speedup of three orders of magnitude against
// gate-level RTL simulation.
func (s *Suite) Speedup() (SpeedupResult, error) {
	cr, err := s.Characterization()
	if err != nil {
		return SpeedupResult{}, err
	}
	refTech := s.Tech
	refTech.Detail = 1.0
	apps := workloads.Applications()

	start := time.Now()
	for _, w := range apps {
		if _, err := cr.Model.EstimateWorkload(s.Config, w); err != nil {
			return SpeedupResult{}, err
		}
	}
	macro := time.Since(start)

	start = time.Now()
	for _, w := range apps {
		if _, err := core.ReferenceEnergy(s.context(), s.Config, refTech, w); err != nil {
			return SpeedupResult{}, err
		}
	}
	ref := time.Since(start)

	out := SpeedupResult{MacroModel: macro, Reference: ref}
	if macro > 0 {
		out.Speedup = float64(ref) / float64(macro)
	}
	return out, nil
}

// FormatSpeedup renders the speedup comparison.
func FormatSpeedup(r SpeedupResult) string {
	return fmt.Sprintf("SPEEDUP: macro-model %v vs. reference %v over 10 apps => %.0fx\n(note: the reference's per-net simulation resolution scales this; the paper reports ~1000x\nagainst gate-level RTL simulation, which resolves every net of the real netlist)\n",
		r.MacroModel, r.Reference, r.Speedup)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ---- Extended validation (beyond the paper) ----

// Validation runs the six extra held-out applications (CRC32, matrix
// multiply, histogram, IIR filter, string search, 8-point DCT) through
// both paths —
// a broader out-of-sample check than Table II, exercising hardware
// tables, immediate-operand custom instructions, and the sequential
// multiplier in fresh combinations.
func (s *Suite) Validation() (Table2Summary, error) {
	cr, err := s.Characterization()
	if err != nil {
		return Table2Summary{}, err
	}
	rows, _, err := s.compareApps(cr, workloads.ValidationApplications())
	if err != nil {
		return Table2Summary{}, err
	}
	return summarize(rows), nil
}

// FormatValidation renders the extended validation table.
func FormatValidation(t Table2Summary) string {
	var b strings.Builder
	b.WriteString("EXTENDED VALIDATION: six additional held-out applications\n")
	fmt.Fprintf(&b, "%-18s %14s %16s %9s\n", "application", "estimate (uJ)", "reference (uJ)", "error")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-18s %14.2f %16.2f %+8.1f%%\n", r.Application, r.EstimateUJ, r.ReferenceUJ, r.ErrPct)
	}
	fmt.Fprintf(&b, "max |error| = %.1f%%, mean |error| = %.1f%%\n", t.MaxAbsPct, t.MeanAbsPct)
	return b.String()
}
