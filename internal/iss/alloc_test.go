package iss_test

import (
	"fmt"
	"testing"

	"xtenergy/internal/asm"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
)

// countdown returns a program that retires roughly 2n+2 instructions.
func countdown(t *testing.T, a *asm.Assembler, n int) *iss.Program {
	t.Helper()
	prog, err := a.Assemble("countdown", fmt.Sprintf(`
 movi a2, %d
loop:
 addi a2, a2, -1
 bnez a2, loop
 ret
`, n))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestRunSteadyStateAllocs pins the hot loop's allocation behavior: a
// run allocates a constant amount (the Result and first-run lazy state),
// independent of how many instructions retire. Every per-step structure
// — the plan record, the scratch trace entry, the exec dispatch — is
// prebuilt or reused, so retiring 100x more instructions must not
// allocate a single extra object.
func TestRunSteadyStateAllocs(t *testing.T) {
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	a := asm.New(proc.TIE)
	short := countdown(t, a, 1_000)
	long := countdown(t, a, 100_000)

	sim := iss.New(proc)
	run := func(p *iss.Program) func() {
		return func() {
			if _, err := sim.Run(p, iss.Options{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm up both programs so plan construction and lazy simulator
	// state are paid before measuring.
	run(short)()
	run(long)()

	allocsShort := testing.AllocsPerRun(10, run(short))
	allocsLong := testing.AllocsPerRun(10, run(long))
	if allocsShort != allocsLong {
		t.Errorf("allocations scale with run length: %.1f allocs for ~2k instrs vs %.1f for ~200k", allocsShort, allocsLong)
	}
	// The constant is the Result allocation; a handful is tolerable, a
	// per-step term is not.
	if allocsLong > 4 {
		t.Errorf("steady-state run allocates %.1f objects; want <= 4", allocsLong)
	}
}
