package iss_test

import (
	"testing"
)

// branchProbe runs a branch with the given operand values and reports
// whether it was taken (a1 = 1 if taken).
func branchProbe(t *testing.T, op string, a, b int32) bool {
	t.Helper()
	src := `
    movi a2, ` + itoa(a) + `
    movi a3, ` + itoa(b) + `
    movi a1, 0
    ` + op + ` a2, a3, taken
    ret
taken:
    movi a1, 1
    ret
`
	res, _ := runSrc(t, src)
	return res.Regs[1] == 1
}

func itoa(v int32) string {
	// Small helper to avoid importing strconv in many call sites.
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func TestBranchRRSemantics(t *testing.T) {
	cases := []struct {
		op    string
		a, b  int32
		taken bool
	}{
		{"beq", 5, 5, true}, {"beq", 5, 6, false},
		{"bne", 5, 6, true}, {"bne", 5, 5, false},
		{"blt", -1, 0, true}, {"blt", 0, -1, false}, {"blt", 3, 3, false},
		{"bge", 3, 3, true}, {"bge", -1, 0, false},
		{"bltu", 1, -1, true},  // 1 < 0xFFFFFFFF unsigned
		{"bltu", -1, 1, false}, // 0xFFFFFFFF !< 1
		{"bgeu", -1, 1, true}, {"bgeu", 1, -1, false},
		{"bany", 0x0F, 0x10, false}, {"bany", 0x0F, 0x18, true},
		{"bnone", 0x0F, 0x10, true}, {"bnone", 0x0F, 0x18, false},
		{"ball", 0x1F, 0x18, true}, {"ball", 0x0F, 0x18, false},
		{"bnall", 0x0F, 0x18, true}, {"bnall", 0x1F, 0x18, false},
	}
	for _, tc := range cases {
		if got := branchProbe(t, tc.op, tc.a, tc.b); got != tc.taken {
			t.Errorf("%s %d,%d taken=%v, want %v", tc.op, tc.a, tc.b, got, tc.taken)
		}
	}
}

// branchRIProbe tests the register-immediate branch forms.
func branchRIProbe(t *testing.T, op string, a int32, c int32) bool {
	t.Helper()
	src := `
    movi a2, ` + itoa(a) + `
    movi a1, 0
    ` + op + ` a2, ` + itoa(c) + `, taken
    ret
taken:
    movi a1, 1
    ret
`
	res, _ := runSrc(t, src)
	return res.Regs[1] == 1
}

func TestBranchRISemantics(t *testing.T) {
	cases := []struct {
		op    string
		a, c  int32
		taken bool
	}{
		{"beqi", 7, 7, true}, {"beqi", 7, -7, false},
		{"beqi", -4, -4, true},
		{"bnei", 7, 8, true}, {"bnei", 7, 7, false},
		{"blti", -5, -4, true}, {"blti", -4, -5, false},
		{"bgei", 0, 0, true}, {"bgei", -1, 0, false},
		{"bltui", 3, 9, true}, {"bltui", 9, 3, false},
		{"bgeui", 9, 3, true}, {"bgeui", 3, 9, false},
		{"bbsi", 0x10, 4, true}, {"bbsi", 0x10, 3, false},
		{"bbci", 0x10, 3, true}, {"bbci", 0x10, 4, false},
	}
	for _, tc := range cases {
		if got := branchRIProbe(t, tc.op, tc.a, tc.c); got != tc.taken {
			t.Errorf("%s %d,%d taken=%v, want %v", tc.op, tc.a, tc.c, got, tc.taken)
		}
	}
}

func TestBranchZeroForms(t *testing.T) {
	cases := []struct {
		op    string
		a     int32
		taken bool
	}{
		{"beqz", 0, true}, {"beqz", 1, false},
		{"bnez", 1, true}, {"bnez", 0, false},
		{"bltz", -1, true}, {"bltz", 0, false},
		{"bgez", 0, true}, {"bgez", -1, false},
	}
	for _, tc := range cases {
		src := `
    movi a2, ` + itoa(tc.a) + `
    movi a1, 0
    ` + tc.op + ` a2, taken
    ret
taken:
    movi a1, 1
    ret
`
		res, _ := runSrc(t, src)
		if got := res.Regs[1] == 1; got != tc.taken {
			t.Errorf("%s %d taken=%v, want %v", tc.op, tc.a, got, tc.taken)
		}
	}
}

func TestCallXAndJXThroughRegisters(t *testing.T) {
	// callx through a register-held target; the callee returns via jx a0.
	res, _ := runSrc(t, `
start:
    movi a2, 3
    movi a4, fn
    callx a4
    mov a1, a2
    j end
fn:
    slli a2, a2, 4
    jx a0
end:
`)
	if res.Regs[1] != 48 {
		t.Fatalf("callx result = %d, want 48", res.Regs[1])
	}
}

func TestNestedCallsWithManualLinkSave(t *testing.T) {
	// a0 is the only link register; nested calls save it manually.
	res, _ := runSrc(t, `
start:
    movi a2, 1
    call outer
    mov a1, a2
    j end
outer:
    mov a9, a0          ; save link
    addi a2, a2, 10
    call inner
    addi a2, a2, 100
    jx a9
inner:
    addi a2, a2, 1000
    jx a0
end:
`)
	if res.Regs[1] != 1111 {
		t.Fatalf("nested call result = %d, want 1111", res.Regs[1])
	}
}

func TestBackwardJumpLoop(t *testing.T) {
	// j as a loop closer (always taken, jump class).
	res, _ := runSrc(t, `
start:
    movi a2, 0
    movi a3, 5
loop:
    addi a2, a2, 1
    beq a2, a3, done
    j loop
done:
    mov a1, a2
    ret
`)
	if res.Regs[1] != 5 {
		t.Fatalf("loop result = %d", res.Regs[1])
	}
}
