package iss_test

import (
	"encoding/binary"
	"testing"

	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
)

// FuzzSimulatorNeverPanics feeds raw instruction words to the simulator
// and requires the taxonomy's contract: every run either halts cleanly
// or returns a typed *iss.Fault — the simulator must never panic and
// never return an untyped runtime error, no matter the program.
func FuzzSimulatorNeverPanics(f *testing.F) {
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		f.Fatal(err)
	}

	// Seeds: a tight loop, loads at hostile addresses, a custom opcode
	// on an extension-less processor, and raw junk.
	seed := func(words ...uint32) []byte {
		b := make([]byte, 4*len(words))
		for i, w := range words {
			binary.LittleEndian.PutUint32(b[4*i:], w)
		}
		return b
	}
	f.Add(seed(0))
	f.Add(seed(0xFFFF_FFFF))
	f.Add([]byte{1, 2, 3}) // sub-word tail
	f.Add(seed(0xDEAD_BEEF, 0x0BAD_F00D, 0x1234_5678, 0x8765_4321))

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxWords = 256
		var code []isa.Instr
		for i := 0; i+4 <= len(data) && len(code) < maxWords; i += 4 {
			in, err := isa.Decode(binary.LittleEndian.Uint32(data[i:]))
			if err != nil {
				continue // undecodable word: not an executable program
			}
			code = append(code, in)
		}
		if len(code) == 0 {
			return
		}
		prog := &iss.Program{Name: "fuzz", Code: code}
		if err := prog.Validate(); err != nil {
			return // malformed image: rejected pre-flight, by design
		}
		_, err := iss.New(proc).Run(prog, iss.Options{MaxCycles: 100_000})
		if err == nil {
			return
		}
		if _, ok := iss.AsFault(err); !ok {
			t.Fatalf("untyped runtime error: %v", err)
		}
	})
}
