// Package iss is the XT32 instruction-set simulator.
//
// It plays the role of the Xtensa SDK's instruction set simulator in the
// paper's flow (Fig. 2, steps 6 and 9): it executes a program — base
// instructions plus any TIE custom instructions — functionally, with a
// cycle-approximate timing model (five-stage pipeline interlocks, taken/
// untaken branch costs, 4-way set-associative I/D caches, uncached
// fetches), and gathers exactly the execution statistics the energy
// macro-model consumes. It can also record a dynamic execution trace for
// the RTL-level reference power estimator and for dynamic resource-usage
// analysis.
package iss

import (
	"fmt"
	"sync"

	"xtenergy/internal/isa"
	"xtenergy/internal/plan"
	"xtenergy/internal/tie"
)

// Segment is an initialized data region of a program image.
type Segment struct {
	// Addr is the start byte address within cacheable RAM.
	Addr uint32
	// Bytes is the initial content.
	Bytes []byte
}

// Program is an executable program image: code, initialized data, and
// layout metadata. Instruction i resides at byte address CodeBase+4*i.
type Program struct {
	// Name labels the program in reports.
	Name string
	// Code is the instruction stream.
	Code []isa.Instr
	// Data lists initialized data segments.
	Data []Segment
	// Entry is the word index where execution starts.
	Entry int
	// Uncached flags instructions that reside in the uncached region
	// (fetches bypass the I-cache and count as uncached instruction
	// fetches). Nil means fully cached; otherwise it must have the same
	// length as Code.
	Uncached []bool
	// CodeBase is the byte address of Code[0]; it determines I-cache
	// indexing. The default 0 is fine for standalone programs.
	CodeBase uint32
	// Labels maps code labels to their instruction index (populated by
	// the assembler; used for region-level energy profiling).
	Labels map[string]int
	// Lines maps each instruction index to its 1-based source line
	// (populated by the assembler; used by diagnostics such as xlint).
	// Nil means no source information; otherwise it must have the same
	// length as Code.
	Lines []int

	// Cached predecoded plan (see Plan). Guarded by planMu; keyed by the
	// compiled extension it was resolved against.
	planMu   sync.Mutex
	planComp *tie.Compiled
	plan     *plan.Plan
}

// Plan returns the program's predecoded instruction plan resolved
// against comp, building it on first use and caching it afterwards. The
// returned plan is immutable, so one build amortizes across every
// consumer of the same program/extension pair — repeated simulator runs,
// the parallel characterization workers, xlint, and the reference
// estimator all share it. A different comp (or nil) rebuilds.
//
// Callers must not mutate Code, Uncached, or CodeBase after the first
// Plan call: the cached records would go stale.
func (p *Program) Plan(comp *tie.Compiled) *plan.Plan {
	p.planMu.Lock()
	defer p.planMu.Unlock()
	if p.plan == nil || p.planComp != comp {
		p.plan = plan.Build(p.Code, p.CodeBase, p.Uncached, comp)
		p.planComp = comp
	}
	return p.plan
}

// Line returns the 1-based source line of instruction index i, or 0 when
// no source information is available.
func (p *Program) Line(i int) int {
	if p.Lines == nil || i < 0 || i >= len(p.Lines) {
		return 0
	}
	return p.Lines[i]
}

// Validate checks structural invariants of the program image.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("iss: program %q has no code", p.Name)
	}
	if p.Entry < 0 || p.Entry >= len(p.Code) {
		return fmt.Errorf("iss: program %q entry %d out of range [0,%d)", p.Name, p.Entry, len(p.Code))
	}
	if p.Uncached != nil && len(p.Uncached) != len(p.Code) {
		return fmt.Errorf("iss: program %q has %d uncached flags for %d instructions", p.Name, len(p.Uncached), len(p.Code))
	}
	if p.Lines != nil && len(p.Lines) != len(p.Code) {
		return fmt.Errorf("iss: program %q has %d source lines for %d instructions", p.Name, len(p.Lines), len(p.Code))
	}
	for i, in := range p.Code {
		if _, ok := isa.Lookup(in.Op); !ok {
			return fmt.Errorf("iss: program %q instruction %d has invalid opcode", p.Name, i)
		}
	}
	return nil
}

// IsUncached reports whether instruction index i lies in the uncached
// region.
func (p *Program) IsUncached(i int) bool {
	return p.Uncached != nil && i >= 0 && i < len(p.Uncached) && p.Uncached[i]
}
