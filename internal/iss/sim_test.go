package iss_test

import (
	"strings"
	"testing"

	"xtenergy/internal/asm"
	"xtenergy/internal/hwlib"
	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/tie"
)

// runSrc assembles and runs src on a base processor, returning the
// result and the simulator (for memory inspection).
func runSrc(t *testing.T, src string) (*iss.Result, *iss.Simulator) {
	t.Helper()
	return runSrcExt(t, src, nil)
}

func runSrcExt(t *testing.T, src string, ext *tie.Extension) (*iss.Result, *iss.Simulator) {
	t.Helper()
	proc, err := procgen.Generate(procgen.Default(), ext)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.New(proc.TIE).Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	sim := iss.New(proc)
	res, err := sim.Run(prog, iss.Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	return res, sim
}

// Table-driven semantics checks: each program leaves its result in a1.
func TestBaseSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want uint32
	}{
		{"add", "movi a2, 7\n movi a3, 5\n add a1, a2, a3\n ret", 12},
		{"addi_neg", "movi a2, 7\n addi a1, a2, -10\n ret", 0xFFFFFFFD},
		{"sub", "movi a2, 7\n movi a3, 5\n sub a1, a2, a3\n ret", 2},
		{"neg", "movi a2, 5\n neg a1, a2\n ret", 0xFFFFFFFB},
		{"and", "movi a2, 12\n movi a3, 10\n and a1, a2, a3\n ret", 8},
		{"andi", "movi a2, 255\n andi a1, a2, 0x0F\n ret", 15},
		{"or", "movi a2, 12\n movi a3, 10\n or a1, a2, a3\n ret", 14},
		{"xor", "movi a2, 12\n movi a3, 10\n xor a1, a2, a3\n ret", 6},
		{"not", "movi a2, 0\n not a1, a2\n ret", 0xFFFFFFFF},
		{"sll", "movi a2, 1\n movi a3, 4\n sll a1, a2, a3\n ret", 16},
		{"slli", "movi a2, 3\n slli a1, a2, 2\n ret", 12},
		{"srl", "movi a2, 16\n movi a3, 2\n srl a1, a2, a3\n ret", 4},
		{"srli", "movi a2, -1\n srli a1, a2, 28\n ret", 15},
		{"sra_neg", "movi a2, -8\n movi a3, 2\n sra a1, a2, a3\n ret", 0xFFFFFFFE},
		{"srai", "movi a2, -16\n srai a1, a2, 2\n ret", 0xFFFFFFFC},
		{"slt_true", "movi a2, -1\n movi a3, 1\n slt a1, a2, a3\n ret", 1},
		{"slt_false", "movi a2, 1\n movi a3, -1\n slt a1, a2, a3\n ret", 0},
		{"sltu", "movi a2, -1\n movi a3, 1\n sltu a1, a2, a3\n ret", 0}, // 0xFFFFFFFF !< 1 unsigned
		{"slti", "movi a2, 3\n slti a1, a2, 5\n ret", 1},
		{"sltiu", "movi a2, 3\n sltiu a1, a2, 2\n ret", 0},
		{"movi", "movi a1, -100\n ret", 0xFFFFFF9C},
		{"mov", "movi a2, 42\n mov a1, a2\n ret", 42},
		{"moveqz_take", "movi a1, 1\n movi a2, 9\n movi a3, 0\n moveqz a1, a2, a3\n ret", 9},
		{"moveqz_keep", "movi a1, 1\n movi a2, 9\n movi a3, 5\n moveqz a1, a2, a3\n ret", 1},
		{"movnez", "movi a1, 1\n movi a2, 9\n movi a3, 5\n movnez a1, a2, a3\n ret", 9},
		{"movltz", "movi a1, 1\n movi a2, 9\n movi a3, -5\n movltz a1, a2, a3\n ret", 9},
		{"movgez", "movi a1, 1\n movi a2, 9\n movi a3, 5\n movgez a1, a2, a3\n ret", 9},
		{"mul", "movi a2, 7\n movi a3, -3\n mul a1, a2, a3\n ret", 0xFFFFFFEB},
		{"mulh", "movi a2, -1\n movi a3, 2\n mulh a1, a2, a3\n ret", 0xFFFFFFFF},
		{"mulhu", "movi a2, -1\n movi a3, 2\n mulhu a1, a2, a3\n ret", 1},
		{"min", "movi a2, -5\n movi a3, 3\n min a1, a2, a3\n ret", 0xFFFFFFFB},
		{"max", "movi a2, -5\n movi a3, 3\n max a1, a2, a3\n ret", 3},
		{"minu", "movi a2, -5\n movi a3, 3\n minu a1, a2, a3\n ret", 3},
		{"maxu", "movi a2, -5\n movi a3, 3\n maxu a1, a2, a3\n ret", 0xFFFFFFFB},
		{"abs", "movi a2, -9\n abs a1, a2\n ret", 9},
		{"sext8", "movi a2, 0x80\n sext8 a1, a2\n ret", 0xFFFFFF80},
		{"sext16", "movi a2, 0x8000\n sext16 a1, a2\n ret", 0xFFFF8000},
		{"clamps_hi", "movi a2, 300\n clamps a1, a2, 8\n ret", 127},
		{"clamps_lo", "movi a2, -300\n clamps a1, a2, 8\n ret", 0xFFFFFF80},
		{"clamps_pass", "movi a2, 100\n clamps a1, a2, 8\n ret", 100},
		{"nsau", "movi a2, 1\n nsau a1, a2\n ret", 31},
		{"nsau_zero", "movi a2, 0\n nsau a1, a2\n ret", 32},
		{"nsa_one", "movi a2, 1\n nsa a1, a2\n ret", 30},
		{"nsa_zero", "movi a2, 0\n nsa a1, a2\n ret", 31},
		{"nsa_minus1", "movi a2, -1\n nsa a1, a2\n ret", 31},
		// extui imm: shift=4, width-1=7 -> imm = 4 | 7<<5 = 228.
		{"extui", "movi a2, 0xABC0\n extui a1, a2, 228\n ret", 0xBC},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, _ := runSrc(t, tc.src)
			if res.Regs[1] != tc.want {
				t.Fatalf("a1 = %#x, want %#x", res.Regs[1], tc.want)
			}
		})
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	res, sim := runSrc(t, `
    movi a2, 0x1000
    movi a3, -2
    s32i a3, a2, 0
    l32i a1, a2, 0
    l16ui a4, a2, 0
    l16si a5, a2, 0
    l8ui a6, a2, 0
    l8si a7, a2, 0
    movi a8, 0x1234
    s16i a8, a2, 8
    l16ui a9, a2, 8
    s8i a8, a2, 12
    l8ui a10, a2, 12
    ret
`)
	if res.Regs[1] != 0xFFFFFFFE {
		t.Fatalf("l32i = %#x", res.Regs[1])
	}
	if res.Regs[4] != 0xFFFE {
		t.Fatalf("l16ui = %#x", res.Regs[4])
	}
	if res.Regs[5] != 0xFFFFFFFE {
		t.Fatalf("l16si = %#x", res.Regs[5])
	}
	if res.Regs[6] != 0xFE {
		t.Fatalf("l8ui = %#x", res.Regs[6])
	}
	if res.Regs[7] != 0xFFFFFFFE {
		t.Fatalf("l8si = %#x", res.Regs[7])
	}
	if res.Regs[9] != 0x1234 {
		t.Fatalf("s16i/l16ui = %#x", res.Regs[9])
	}
	if res.Regs[10] != 0x34 {
		t.Fatalf("s8i/l8ui = %#x", res.Regs[10])
	}
	w, err := sim.ReadWord(0x1000)
	if err != nil || w != 0xFFFFFFFE {
		t.Fatalf("memory word = %#x, %v", w, err)
	}
}

func TestL32RLoadsLiteral(t *testing.T) {
	res, _ := runSrc(t, `
    l32r a1, lit
    ret
.data 0x1000
lit: .word 123456
`)
	if res.Regs[1] != 123456 {
		t.Fatalf("l32r = %d", res.Regs[1])
	}
}

func TestUnalignedAccessFails(t *testing.T) {
	proc, _ := procgen.Generate(procgen.Default(), nil)
	prog, err := asm.New(proc.TIE).Assemble("t", "movi a2, 0x1001\n l32i a1, a2, 0\n ret")
	if err != nil {
		t.Fatal(err)
	}
	_, err = iss.New(proc).Run(prog, iss.Options{})
	if err == nil || !strings.Contains(err.Error(), "unaligned") {
		t.Fatalf("unaligned access: %v", err)
	}
}

func TestOutOfRangeAccessFails(t *testing.T) {
	proc, _ := procgen.Generate(procgen.Default(), nil)
	prog, err := asm.New(proc.TIE).Assemble("t", "movi a2, 0x1FFFC\n slli a2, a2, 8\n l32i a1, a2, 0\n ret")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := iss.New(proc).Run(prog, iss.Options{}); err == nil {
		t.Fatal("out-of-range access succeeded")
	}
}

func TestBranchesAndLoops(t *testing.T) {
	res, _ := runSrc(t, `
    movi a2, 0
    movi a3, 10
loop:
    addi a2, a2, 1
    blt a2, a3, loop
    mov a1, a2
    ret
`)
	if res.Regs[1] != 10 {
		t.Fatalf("loop result = %d", res.Regs[1])
	}
	st := res.Stats
	// 9 taken + 1 untaken blt.
	if st.ClassCycles[iss.CBranchUntaken] != 1 {
		t.Fatalf("untaken cycles = %d, want 1", st.ClassCycles[iss.CBranchUntaken])
	}
	if st.ClassCycles[iss.CBranchTaken] != 9*3 {
		t.Fatalf("taken cycles = %d, want 27 (9 x (1+2))", st.ClassCycles[iss.CBranchTaken])
	}
}

func TestCallRet(t *testing.T) {
	res, _ := runSrc(t, `
start:
    movi a2, 5
    call double
    mov a1, a2
    j end
double:
    add a2, a2, a2
    jx a0
end:
`)
	if res.Regs[1] != 10 {
		t.Fatalf("call/ret result = %d", res.Regs[1])
	}
	if res.Stats.ClassCycles[iss.CJump] == 0 {
		t.Fatal("no jump cycles recorded")
	}
}

func TestBitBranches(t *testing.T) {
	res, _ := runSrc(t, `
    movi a2, 0x10
    movi a1, 0
    bbsi a2, 4, set1
    j next
set1:
    movi a1, 1
next:
    bbci a2, 3, set2
    ret
set2:
    addi a1, a1, 2
    ret
`)
	if res.Regs[1] != 3 {
		t.Fatalf("bit branches result = %d, want 3", res.Regs[1])
	}
}

func TestHaltByFallingOffEnd(t *testing.T) {
	res, _ := runSrc(t, "movi a1, 7\n")
	if res.Regs[1] != 7 {
		t.Fatal("program did not run")
	}
}

func TestWatchdog(t *testing.T) {
	proc, _ := procgen.Generate(procgen.Default(), nil)
	prog, err := asm.New(proc.TIE).Assemble("t", "loop:\n j loop\n")
	if err != nil {
		t.Fatal(err)
	}
	_, err = iss.New(proc).Run(prog, iss.Options{MaxCycles: 1000})
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("watchdog: %v", err)
	}
}

func TestInterlockCounting(t *testing.T) {
	res, _ := runSrc(t, `
    movi a2, 0x1000
    movi a3, 1
    s32i a3, a2, 0
    l32i a4, a2, 0
    add a5, a4, a4      ; load-use
    l32i a6, a2, 0
    nop
    add a7, a6, a6      ; gap: no interlock
    mul a8, a5, a7
    add a9, a8, a8      ; mult-use
    ret
`)
	if res.Stats.Interlocks != 2 {
		t.Fatalf("interlocks = %d, want 2", res.Stats.Interlocks)
	}
}

func TestCacheMissCounting(t *testing.T) {
	// Stride over 64KB: every line access misses after warmup.
	res, _ := runSrc(t, `
    movi a2, 0x4000
    movi a3, 2048
loop:
    l32i a4, a2, 0
    addi a2, a2, 32
    addi a3, a3, -1
    bnez a3, loop
    ret
`)
	if res.Stats.DCacheMisses != 2048 {
		t.Fatalf("dcache misses = %d, want 2048", res.Stats.DCacheMisses)
	}
	if res.Stats.ICacheMisses == 0 {
		t.Fatal("no cold icache misses")
	}
	if res.Stats.StallCycles == 0 {
		t.Fatal("no stall cycles for misses")
	}
}

func TestUncachedFetchCounting(t *testing.T) {
	res, _ := runSrc(t, `
    movi a2, 4
    j unc
.uncached
unc:
    addi a2, a2, -1
    bnez a2, unc
.cached
    ret
`)
	// 4 iterations x 2 instructions in the uncached region.
	if res.Stats.UncachedFetches != 8 {
		t.Fatalf("uncached fetches = %d, want 8", res.Stats.UncachedFetches)
	}
}

func TestClassCycleAccounting(t *testing.T) {
	res, _ := runSrc(t, `
    movi a2, 1
    movi a3, 2
    add a4, a2, a3
    ret
`)
	st := res.Stats
	if st.ClassCycles[iss.CArith] != 3 {
		t.Fatalf("arith cycles = %d, want 3", st.ClassCycles[iss.CArith])
	}
	// ret: 1 cycle, jump class (halt, no redirect penalty).
	if st.ClassCycles[iss.CJump] != 1 {
		t.Fatalf("jump cycles = %d, want 1", st.ClassCycles[iss.CJump])
	}
	total := st.BaseCycles() + st.CustomCycles + st.StallCycles
	if total != st.Cycles {
		t.Fatalf("cycle accounting: %d classified vs %d total", total, st.Cycles)
	}
	if st.Retired != 4 {
		t.Fatalf("retired = %d", st.Retired)
	}
}

func TestTraceCollection(t *testing.T) {
	res, _ := runSrc(t, "movi a1, 1\n movi a2, 2\n add a3, a1, a2\n ret\n")
	if len(res.Trace) != 4 {
		t.Fatalf("trace length = %d", len(res.Trace))
	}
	add := res.Trace[2]
	if add.RsVal != 1 || add.RtVal != 2 || add.Result != 3 {
		t.Fatalf("trace operands: %+v", add)
	}
	if add.PC != 2 {
		t.Fatalf("trace pc = %d", add.PC)
	}
	// Without the option, no trace.
	proc, _ := procgen.Generate(procgen.Default(), nil)
	prog, _ := asm.New(proc.TIE).Assemble("t", "ret\n")
	r2, err := iss.New(proc).Run(prog, iss.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Trace != nil {
		t.Fatal("trace collected without option")
	}
}

func TestCustomInstructionExecution(t *testing.T) {
	ext := &tie.Extension{
		Name:          "e",
		NumCustomRegs: 1,
		Instructions: []*tie.Instruction{
			{
				Name: "addacc", Latency: 3, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []tie.DatapathElem{{
					Component: hwlib.Component{Name: "au", Cat: hwlib.TIEAdd, Width: 32}, OnBus: true,
				}},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					s.Regs[0] += op.RsVal + op.RtVal
					return s.Regs[0]
				},
			},
			{
				Name: "spin", Latency: 2, // no regfile access
				Datapath: []tie.DatapathElem{{
					Component: hwlib.Component{Name: "su", Cat: hwlib.CustomRegister, Width: 32},
				}},
				Semantics: func(s *tie.State, _ tie.Operands) uint32 {
					s.Regs[0]++
					return 0
				},
			},
		},
	}
	res, _ := runSrcExt(t, `
    movi a2, 10
    movi a3, 20
    addacc a1, a2, a3
    addacc a1, a1, a3
    spin a0, a0, a0
    ret
`, ext)
	if res.Regs[1] != 80 { // 30 then 30+30+20=80
		t.Fatalf("custom result = %d, want 80", res.Regs[1])
	}
	st := res.Stats
	if st.CustomCycles != 3+3+2 {
		t.Fatalf("custom cycles = %d, want 8", st.CustomCycles)
	}
	if st.CustomRegfileCycles != 6 {
		t.Fatalf("custom regfile cycles = %d, want 6 (spin excluded)", st.CustomRegfileCycles)
	}
	if st.CustomExec[0] != 2 || st.CustomExec[1] != 1 {
		t.Fatalf("custom exec counts = %v", st.CustomExec)
	}
	if res.TIE == nil || res.TIE.Regs[0] != 81 {
		t.Fatalf("TIE state = %+v, want acc 81", res.TIE)
	}
}

func TestStatsString(t *testing.T) {
	res, _ := runSrc(t, "movi a1, 1\n ret\n")
	s := res.Stats.String()
	for _, want := range []string{"cycles=", "arith", "icache-miss"} {
		if !strings.Contains(s, want) {
			t.Fatalf("stats string missing %q:\n%s", want, s)
		}
	}
}

func TestProgramValidate(t *testing.T) {
	p := &iss.Program{Name: "x"}
	if p.Validate() == nil {
		t.Fatal("empty program validated")
	}
	p.Code = []isa.Instr{{Op: isa.OpNOP}}
	p.Entry = 5
	if p.Validate() == nil {
		t.Fatal("out-of-range entry validated")
	}
	p.Entry = 0
	p.Uncached = []bool{true, false}
	if p.Validate() == nil {
		t.Fatal("mismatched uncached flags validated")
	}
	p.Uncached = nil
	p.Code = []isa.Instr{{}}
	if p.Validate() == nil {
		t.Fatal("invalid opcode validated")
	}
}

func TestCPI(t *testing.T) {
	res, _ := runSrc(t, "movi a1, 1\n movi a2, 2\n ret\n")
	if cpi := res.Stats.CPI(); cpi <= 0 {
		t.Fatalf("cpi = %g", cpi)
	}
	var empty iss.Stats
	if empty.CPI() != 0 {
		t.Fatal("CPI of empty stats")
	}
}

func TestCustomImmediateExecution(t *testing.T) {
	ext := &tie.Extension{
		Name: "e",
		Instructions: []*tie.Instruction{
			{
				Name: "addk", Latency: 1, ReadsGeneral: true, WritesGeneral: true, ImmOperand: true,
				Datapath: []tie.DatapathElem{{
					Component: hwlib.Component{Name: "u", Cat: hwlib.TIEAdd, Width: 32},
				}},
				Semantics: func(_ *tie.State, op tie.Operands) uint32 {
					return op.RsVal + uint32(op.Imm)
				},
			},
		},
	}
	res, _ := runSrcExt(t, `
    movi a2, 100
    addk a1, a2, -5
    addk a3, a1, 31
    ret
`, ext)
	if res.Regs[1] != 95 {
		t.Fatalf("addk a1 = %d, want 95", res.Regs[1])
	}
	if res.Regs[3] != 126 {
		t.Fatalf("addk a3 = %d, want 126", res.Regs[3])
	}
}
