package iss

import (
	"fmt"
	"strings"

	"xtenergy/internal/isa"
)

// NumBaseClasses is the number of dynamic base-instruction energy
// classes tracked by the macro-model (arith, load, store, jump,
// branch-taken, branch-untaken).
const NumBaseClasses = 6

// Base-class indices into Stats.ClassCycles, in the paper's Table I
// order.
const (
	CArith = iota
	CLoad
	CStore
	CJump
	CBranchTaken
	CBranchUntaken
)

// ClassName returns the display name of base-class index c.
func ClassName(c int) string {
	switch c {
	case CArith:
		return "arith"
	case CLoad:
		return "load"
	case CStore:
		return "store"
	case CJump:
		return "jump"
	case CBranchTaken:
		return "branch-taken"
	case CBranchUntaken:
		return "branch-untaken"
	}
	return fmt.Sprintf("class(%d)", c)
}

// Stats holds the execution statistics of one simulated program run —
// precisely the observables the energy macro-model is parameterized on
// (paper Section IV-B.1), plus bookkeeping useful for reports.
type Stats struct {
	// ClassCycles is the number of cycles taken by each base-instruction
	// class in the dynamic execution trace (N_ar, N_ld, N_st, N_j, N_bt,
	// N_bu), including control-flow penalty cycles attributed to the
	// redirecting instruction.
	ClassCycles [NumBaseClasses]uint64

	// Non-ideal-case event counts: N_icm, N_dcm, N_unc, N_ilk.
	ICacheMisses    uint64
	DCacheMisses    uint64
	UncachedFetches uint64
	Interlocks      uint64

	// CustomRegfileCycles is N_cir: cycles taken by custom instructions
	// that access the general register file (the custom-to-base side
	// effect).
	CustomRegfileCycles uint64

	// CustomCycles is the total number of cycles spent executing custom
	// instructions (their structural energy is captured by the
	// per-category variables from resource analysis).
	CustomCycles uint64

	// CustomExec counts executions per custom-instruction ID.
	CustomExec []uint64

	// Cycles is the total cycle count including all stalls.
	Cycles uint64
	// StallCycles is the portion of Cycles due to cache misses,
	// uncached fetches and interlocks.
	StallCycles uint64
	// Retired is the number of retired instructions.
	Retired uint64
	// OpcodeExec counts executions per opcode (used by the per-opcode
	// ablation model).
	OpcodeExec [isa.NumOpcodes]uint64
}

// BaseCycles returns the sum of the six class cycle counters.
func (s *Stats) BaseCycles() uint64 {
	var t uint64
	for _, c := range s.ClassCycles {
		t += c
	}
	return t
}

// CustomExecCount returns the execution count of custom instruction id,
// tolerating ids beyond the recorded range.
func (s *Stats) CustomExecCount(id int) uint64 {
	if id < 0 || id >= len(s.CustomExec) {
		return 0
	}
	return s.CustomExec[id]
}

// CPI returns cycles per retired instruction.
func (s *Stats) CPI() float64 {
	if s.Retired == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Retired)
}

// String formats a human-readable statistics report.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d retired=%d cpi=%.3f\n", s.Cycles, s.Retired, s.CPI())
	for c := 0; c < NumBaseClasses; c++ {
		fmt.Fprintf(&b, "  %-15s %12d cycles\n", ClassName(c), s.ClassCycles[c])
	}
	fmt.Fprintf(&b, "  %-15s %12d cycles\n", "custom", s.CustomCycles)
	fmt.Fprintf(&b, "  icache-miss=%d dcache-miss=%d uncached-fetch=%d interlock=%d\n",
		s.ICacheMisses, s.DCacheMisses, s.UncachedFetches, s.Interlocks)
	fmt.Fprintf(&b, "  custom-regfile-cycles=%d stall-cycles=%d\n", s.CustomRegfileCycles, s.StallCycles)
	return b.String()
}

// TraceEntry records one retired instruction for RTL power estimation
// and resource-usage analysis (the paper's "dynamic execution trace").
type TraceEntry struct {
	// PC is the word index of the instruction.
	PC int32
	// Instr is the retired instruction.
	Instr isa.Instr
	// Cycles is the total cycles charged to the instruction, including
	// penalties and stalls. Wide enough that it is never clamped, so
	// summing trace cycles always agrees with Stats.Cycles.
	Cycles uint32
	// Events.
	ICMiss, DCMiss, Uncached, Interlock, Taken bool
	// Operand and result values, for switching-activity computation in
	// the RTL reference model.
	RsVal, RtVal, Result uint32
	// Addr is the effective memory address of a load/store.
	Addr uint32
}
