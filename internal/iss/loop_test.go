package iss_test

import (
	"strings"
	"testing"

	"xtenergy/internal/asm"
	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
)

// runLoops assembles and runs src on a core with the zero-overhead loop
// option enabled.
func runLoops(t *testing.T, src string) *iss.Result {
	t.Helper()
	cfg := procgen.Default()
	cfg.HasLoops = true
	proc, err := procgen.Generate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.New(proc.TIE).Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := iss.New(proc).Run(prog, iss.Options{MaxCycles: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestZeroOverheadLoop(t *testing.T) {
	res := runLoops(t, `
    movi a2, 10
    movi a3, 0
    loop a2, done
    addi a3, a3, 1
    addi a4, a4, 2
done:
    mov a1, a3
    ret
`)
	if res.Regs[1] != 10 {
		t.Fatalf("loop iterations = %d, want 10", res.Regs[1])
	}
	// Zero overhead: no branch cycles at all from the loop.
	if res.Stats.ClassCycles[iss.CBranchTaken] != 0 {
		t.Fatalf("hardware loop charged %d taken-branch cycles", res.Stats.ClassCycles[iss.CBranchTaken])
	}
}

func TestLoopCyclesBeatBranchLoop(t *testing.T) {
	hw := runLoops(t, `
    movi a2, 100
    loop a2, done
    addi a3, a3, 1
    xor a4, a4, a3
done:
    ret
`)
	sw := runLoops(t, `
    movi a2, 100
again:
    addi a3, a3, 1
    xor a4, a4, a3
    addi a2, a2, -1
    bnez a2, again
    ret
`)
	if hw.Regs[3] != sw.Regs[3] {
		t.Fatalf("loop results differ: %d vs %d", hw.Regs[3], sw.Regs[3])
	}
	// The hardware loop saves the decrement and the taken-branch bubble:
	// 2 body cycles/iter vs 2+1+3 for the software loop.
	if hw.Stats.Cycles >= sw.Stats.Cycles {
		t.Fatalf("hardware loop not faster: %d vs %d cycles", hw.Stats.Cycles, sw.Stats.Cycles)
	}
	saved := float64(sw.Stats.Cycles-hw.Stats.Cycles) / float64(sw.Stats.Cycles)
	if saved < 0.4 {
		t.Fatalf("hardware loop saved only %.0f%% of cycles", saved*100)
	}
}

func TestLoopNEZSkipsZeroCount(t *testing.T) {
	res := runLoops(t, `
    movi a2, 0
    movi a3, 7
    loopnez a2, done
    movi a3, 99
done:
    mov a1, a3
    ret
`)
	if res.Regs[1] != 7 {
		t.Fatalf("loopnez did not skip: a3 = %d", res.Regs[1])
	}
}

func TestLoopCountOneRunsOnce(t *testing.T) {
	// LOOP requires a count of at least 1 (Xtensa leaves count 0
	// undefined for plain LOOP; programs use LOOPNEZ when the count can
	// be zero). Count 1 runs the body exactly once.
	res := runLoops(t, `
    movi a2, 1
    movi a3, 0
    loop a2, done
    addi a3, a3, 1
done:
    mov a1, a3
    ret
`)
	if res.Regs[1] != 1 {
		t.Fatalf("count-1 loop ran %d times", res.Regs[1])
	}
}

func TestLoopIllegalWithoutOption(t *testing.T) {
	proc, err := procgen.Generate(procgen.Default(), nil) // HasLoops off
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.New(proc.TIE).Assemble("t", `
    movi a2, 3
    loop a2, done
    nop
done:
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = iss.New(proc).Run(prog, iss.Options{})
	if err == nil || !strings.Contains(err.Error(), "illegal instruction") {
		t.Fatalf("loop without the option: %v", err)
	}
}

func TestLoopBadTarget(t *testing.T) {
	cfg := procgen.Default()
	cfg.HasLoops = true
	proc, err := procgen.Generate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A backward loop target is malformed: the assembler rejects it
	// outright with a source diagnostic.
	_, err = asm.New(proc.TIE).Assemble("t", `
back:
    movi a2, 3
    loop a2, back
    ret
`)
	if err == nil {
		t.Fatal("backward loop target assembled")
	}

	// A hand-built image with the same defect still faults at runtime
	// (the simulator's own guard, independent of the assembler).
	prog := &iss.Program{Name: "badloop", Code: []isa.Instr{
		{Op: isa.OpMOVI, Rd: 2, Imm: 3},
		{Op: isa.OpLOOP, Rs: 2, Imm: -2},
		{Op: isa.OpRET},
	}}
	if _, err := iss.New(proc).Run(prog, iss.Options{}); err == nil {
		t.Fatal("backward loop target accepted")
	}
}

func TestNestedControlFlowInsideLoop(t *testing.T) {
	// Branches inside the loop body work; a branch that lands exactly on
	// the loop end triggers the loop-back.
	res := runLoops(t, `
    movi a2, 6
    movi a3, 0
    movi a5, 0
    loop a2, done
    addi a3, a3, 1
    bbci a3, 0, even    ; skip the increment on odd counts
    addi a5, a5, 1
even:
done:
    mov a1, a5
    ret
`)
	// a3 counts 1..6; a5 increments when a3 is odd: 1,3,5 -> 3 times.
	if res.Regs[1] != 3 {
		t.Fatalf("conditional body result = %d, want 3", res.Regs[1])
	}
	if res.Regs[3] != 6 {
		t.Fatalf("loop ran %d times, want 6", res.Regs[3])
	}
}
