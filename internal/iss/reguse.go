package iss

import (
	"xtenergy/internal/isa"
	"xtenergy/internal/plan"
	"xtenergy/internal/tie"
)

// RegUse is the register-port model of one instruction. It is defined in
// internal/plan — the predecoded program IR every per-instruction
// consumer shares — and aliased here for the simulator's public API.
type RegUse = plan.RegUse

// RegUseOf computes the register ports of in. It is a thin wrapper over
// the plan-level derivation: the simulator executes from predecoded plan
// records whose Use field is produced by exactly this function, so the
// hazard model seen by callers (xlint's validation tests, dynamic
// resource analysis) can never disagree with what the pipeline did.
func RegUseOf(comp *tie.Compiled, in isa.Instr) RegUse {
	return plan.RegUseOf(comp, in)
}
