package iss_test

import (
	"testing"

	"xtenergy/internal/asm"
	"xtenergy/internal/isa"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
)

// TestRegUseOfMatchesDefs cross-checks the architectural read/write
// bitmasks against the ISA definition table for every base opcode: the
// bus-latched operand ports must always be a subset of the architectural
// sets, and the Rd write bit must track WritesRd.
func TestRegUseOfMatchesDefs(t *testing.T) {
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		d, ok := isa.Lookup(op)
		if !ok {
			continue
		}
		in := isa.Instr{Op: op, Rd: 5, Rs: 6, Rt: 7}
		u := iss.RegUseOf(nil, in)
		if u.ReadsRs != d.ReadsRs || u.ReadsRt != d.ReadsRt || u.WritesRd != d.WritesRd {
			t.Errorf("%s: port flags (%v,%v,%v) disagree with defs (%v,%v,%v)",
				d.Name, u.ReadsRs, u.ReadsRt, u.WritesRd, d.ReadsRs, d.ReadsRt, d.WritesRd)
		}
		if d.ReadsRs && u.Reads&(1<<6) == 0 {
			t.Errorf("%s: ReadsRs set but Rs bit missing from Reads", d.Name)
		}
		if d.ReadsRt && u.Reads&(1<<7) == 0 {
			t.Errorf("%s: ReadsRt set but Rt bit missing from Reads", d.Name)
		}
		if d.WritesRd && u.Writes&(1<<5) == 0 {
			t.Errorf("%s: WritesRd set but Rd bit missing from Writes", d.Name)
		}
		if !d.WritesRd && op != isa.OpCALL && op != isa.OpCALLX && u.Writes != 0 {
			t.Errorf("%s: no Rd write but Writes=%#x", d.Name, u.Writes)
		}
		if u.IsLoad != (d.Class == isa.ClassLoad) {
			t.Errorf("%s: IsLoad=%v, class=%v", d.Name, u.IsLoad, d.Class)
		}
	}
}

// TestRegUseOfArchitecturalExtras pins the reads/writes that go beyond
// the bus-latched operand fields: store data registers, conditional-move
// old values, and the link register a0.
func TestRegUseOfArchitecturalExtras(t *testing.T) {
	cases := []struct {
		name        string
		in          isa.Instr
		wantR, want uint64 // extra Reads bits, extra Writes bits
	}{
		{"s32i_reads_rd", isa.Instr{Op: isa.OpS32I, Rd: 3, Rs: 4}, 1 << 3, 0},
		{"s8i_reads_rd", isa.Instr{Op: isa.OpS8I, Rd: 9, Rs: 4}, 1 << 9, 0},
		{"moveqz_reads_rd", isa.Instr{Op: isa.OpMOVEQZ, Rd: 2, Rs: 3, Rt: 4}, 1 << 2, 0},
		{"ret_reads_a0", isa.Instr{Op: isa.OpRET}, 1 << 0, 0},
		{"call_writes_a0", isa.Instr{Op: isa.OpCALL}, 0, 1 << 0},
		{"callx_writes_a0", isa.Instr{Op: isa.OpCALLX, Rs: 5}, 0, 1 << 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := iss.RegUseOf(nil, tc.in)
			if tc.wantR != 0 && u.Reads&tc.wantR != tc.wantR {
				t.Errorf("Reads=%#x missing bits %#x", u.Reads, tc.wantR)
			}
			if tc.want != 0 && u.Writes&tc.want != tc.want {
				t.Errorf("Writes=%#x missing bits %#x", u.Writes, tc.want)
			}
		})
	}

	// L32R is a load whose Rs field is a literal-pool index, not a register.
	u := iss.RegUseOf(nil, isa.Instr{Op: isa.OpL32R, Rd: 2, Rs: 63})
	if u.ReadsRs || u.Reads&(1<<63) != 0 {
		t.Errorf("L32R must not read its Rs literal index: %+v", u)
	}
	if !u.IsLoad {
		t.Error("L32R must classify as a load for hazard purposes")
	}
}

// TestRegUseOfCustomForms verifies the immediate/register distinction for
// TIE instructions: the immediate form's Rt field is a constant, not a
// register read (the phantom-interlock class fixed in PR 1).
func TestRegUseOfCustomForms(t *testing.T) {
	proc, err := procgen.Generate(procgen.Default(), immExt())
	if err != nil {
		t.Fatal(err)
	}
	addk, ok := proc.TIE.IDByName("addk")
	if !ok {
		t.Fatal("addk not compiled")
	}
	gadd, ok := proc.TIE.IDByName("gadd")
	if !ok {
		t.Fatal("gadd not compiled")
	}

	imm := iss.RegUseOf(proc.TIE, isa.Instr{Op: isa.OpCUSTOM, CustomID: addk, Rd: 1, Rs: 2, Rt: 3})
	if !imm.ReadsRs || imm.ReadsRt {
		t.Errorf("imm form: ReadsRs=%v ReadsRt=%v, want true,false", imm.ReadsRs, imm.ReadsRt)
	}
	if imm.Reads != 1<<2 || imm.Writes != 1<<1 || !imm.WritesRd {
		t.Errorf("imm form: Reads=%#x Writes=%#x WritesRd=%v", imm.Reads, imm.Writes, imm.WritesRd)
	}

	reg := iss.RegUseOf(proc.TIE, isa.Instr{Op: isa.OpCUSTOM, CustomID: gadd, Rd: 1, Rs: 2, Rt: 3})
	if !reg.ReadsRs || !reg.ReadsRt || reg.Reads != 1<<2|1<<3 {
		t.Errorf("reg form: ReadsRs=%v ReadsRt=%v Reads=%#x", reg.ReadsRs, reg.ReadsRt, reg.Reads)
	}

	// A nil compilation reports no ports for custom instructions.
	none := iss.RegUseOf(nil, isa.Instr{Op: isa.OpCUSTOM, CustomID: addk, Rs: 2})
	if none.Reads != 0 || none.Writes != 0 {
		t.Errorf("nil compiled: Reads=%#x Writes=%#x, want 0,0", none.Reads, none.Writes)
	}
}

// TestRecordUninitReads exercises the dynamic ground truth the xlint
// initialization analysis is validated against: reads of never-written
// registers are recorded once per (pc, register), a0 counts as
// initialized (reset loads the halt sentinel), and clean programs record
// nothing.
func TestRecordUninitReads(t *testing.T) {
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func(src string) *iss.Result {
		t.Helper()
		prog := mustAssembleSrc(t, src)
		res, err := iss.New(proc).Run(prog, iss.Options{RecordUninitReads: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// a3 is read before any write; a2 is written first. The add reads
	// both a2 (clean) and a3 (dirty) at pc 1.
	res := run(`
    movi a2, 7
    add a1, a2, a3
    ret
`)
	if len(res.UninitReads) != 1 || res.UninitReads[0] != (iss.UninitRead{PC: 1, Reg: 3}) {
		t.Fatalf("UninitReads = %v, want [{PC:1 Reg:3}]", res.UninitReads)
	}

	// The same pc re-executed in a loop reports the register once.
	res = run(`
    movi a2, 3
loop:
    add a1, a1, a4
    addi a2, a2, -1
    bnez a2, loop
    ret
`)
	var hits int
	for _, ur := range res.UninitReads {
		if ur.Reg == 4 {
			hits++
		}
	}
	if hits != 1 {
		t.Fatalf("a4 reported %d times, want 1 (dedup per pc,reg): %v", hits, res.UninitReads)
	}
	// a1 is also read uninitialized by the add.
	if len(res.UninitReads) != 2 {
		t.Fatalf("UninitReads = %v, want a1 and a4", res.UninitReads)
	}

	// ret reads a0, which reset initializes: a clean program records nothing.
	res = run(`
    movi a2, 1
    add a1, a2, a2
    ret
`)
	if len(res.UninitReads) != 0 {
		t.Fatalf("clean program recorded %v", res.UninitReads)
	}
}

func mustAssembleSrc(t *testing.T, src string) *iss.Program {
	t.Helper()
	prog, err := asm.New(nil).Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}
