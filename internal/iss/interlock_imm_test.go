package iss_test

import (
	"testing"

	"xtenergy/internal/hwlib"
	"xtenergy/internal/tie"
)

// immExt declares two TIE instructions over the same adder datapath:
// addk (immediate form: the third assembler operand is a 6-bit signed
// constant carried in the Rt field) and gadd (register form).
func immExt() *tie.Extension {
	dp := []tie.DatapathElem{{
		Component: hwlib.Component{Name: "u", Cat: hwlib.TIEAdd, Width: 32},
	}}
	return &tie.Extension{
		Name: "ilk",
		Instructions: []*tie.Instruction{
			{
				Name: "addk", Latency: 1, ReadsGeneral: true, WritesGeneral: true, ImmOperand: true,
				Datapath: dp,
				Semantics: func(_ *tie.State, op tie.Operands) uint32 {
					return op.RsVal + uint32(op.Imm)
				},
			},
			{
				Name: "gadd", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
				Datapath: dp,
				Semantics: func(_ *tie.State, op tie.Operands) uint32 {
					return op.RsVal + op.RtVal
				},
			},
		},
	}
}

// Regression test for the phantom-interlock bug: an immediate-form TIE
// instruction carries its 6-bit constant in the Rt field, so the
// interlock checker must not compare those bits against the previous
// load's destination register. Here the load writes a3 and the
// following addk's immediate is 3 — exactly the aliasing that used to
// charge a spurious stall and inflate N_ilk.
func TestImmediateOperandNoPhantomInterlock(t *testing.T) {
	res, _ := runSrcExt(t, `
    movi a2, 8
    l32i a3, a2, 0
    addk a1, a2, 3
    ret
`, immExt())
	if res.Stats.Interlocks != 0 {
		t.Fatalf("Interlocks = %d, want 0: immediate field must not arm the interlock comparator", res.Stats.Interlocks)
	}
}

// The fix must remove only the phantom stalls: real dependences of
// custom instructions on a preceding load still interlock, through
// either the Rs field of the immediate form or the Rt field of the
// register form.
func TestImmediateOperandGenuineInterlocksRemain(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"imm_form_rs_dependence", `
    movi a2, 8
    l32i a3, a2, 0
    addk a1, a3, 3
    ret
`},
		{"reg_form_rt_dependence", `
    movi a2, 8
    l32i a3, a2, 0
    gadd a1, a2, a3
    ret
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, _ := runSrcExt(t, tc.src, immExt())
			if res.Stats.Interlocks != 1 {
				t.Fatalf("Interlocks = %d, want 1 (genuine load-use dependence)", res.Stats.Interlocks)
			}
		})
	}
}
