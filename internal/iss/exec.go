package iss

import (
	"math/bits"

	"xtenergy/internal/isa"
	"xtenergy/internal/plan"
)

// Base-instruction execution is table-driven: execTable holds one
// function per opcode, built once at package init, and the retire loop
// dispatches with a single indexed load instead of walking a 70-case
// switch per instruction. Each function receives the predecoded plan
// record for its site, so operand-form decisions (register vs constant
// Rt, branch targets, cycle counts) were all made at plan-build time.
//
// The accounting contract is exact: every function charges the same
// class-cycle buckets, in the same order, with the same pipeline flush
// and penalty arithmetic as the original switch — the differential
// equivalence suite in internal/core holds the table to bit-identical
// traces, stats, and energies.

// baseResult is the outcome of executing one base instruction.
type baseResult struct {
	cycles int
	nextPC int
	halt   bool
}

// execFn executes one base instruction. rs and rt are the operand
// registers' values, latched by the caller (unconditionally, so
// out-of-range register encodings fault at the same point they always
// did); te receives the data-dependent trace fields.
type execFn func(s *Simulator, rec *plan.Rec, pc int, rs, rt uint32, te *TraceEntry) (baseResult, error)

// branchClose settles a conditional branch: taken pays the redirect
// penalty and flushes the hazard window; both outcomes close the entry's
// cycles into the corresponding branch class bucket.
//
//xtenergy:hotpath
func (s *Simulator) branchClose(res *baseResult, target int, taken bool, te *TraceEntry) {
	te.Taken = taken
	if taken {
		res.cycles += s.pipe.TakenPenalty
		res.nextPC = target
		s.stats.ClassCycles[CBranchTaken] += uint64(res.cycles)
		s.pipe.Flush()
	} else {
		s.stats.ClassCycles[CBranchUntaken] += uint64(res.cycles)
	}
}

// jumpClose settles an unconditional transfer to target.
//
//xtenergy:hotpath
func (s *Simulator) jumpClose(res *baseResult, target int) {
	res.cycles += s.pipe.JumpPenalty
	res.nextPC = target
	s.stats.ClassCycles[CJump] += uint64(res.cycles)
	s.pipe.Flush()
}

// alu builds the handler for a plain arithmetic-class instruction that
// writes f(in, rs, rt) to Rd.
//
//xtenergy:hotpath
func alu(f func(in isa.Instr, rs, rt uint32) uint32) execFn {
	return func(s *Simulator, rec *plan.Rec, pc int, rs, rt uint32, te *TraceEntry) (baseResult, error) {
		v := f(rec.Instr, rs, rt)
		s.regs[rec.Instr.Rd] = v
		te.Result = v
		s.stats.ClassCycles[CArith] += uint64(rec.Def.Cycles)
		return baseResult{cycles: rec.Def.Cycles, nextPC: pc + 1}, nil
	}
}

// cmov builds a conditional-move handler: Rd keeps its old value when
// the condition on rt fails (which is why conditional moves read Rd).
//
//xtenergy:hotpath
func cmov(cond func(rt uint32) bool) execFn {
	return func(s *Simulator, rec *plan.Rec, pc int, rs, rt uint32, te *TraceEntry) (baseResult, error) {
		v := s.regs[rec.Instr.Rd]
		if cond(rt) {
			v = rs
		}
		s.regs[rec.Instr.Rd] = v
		te.Result = v
		s.stats.ClassCycles[CArith] += uint64(rec.Def.Cycles)
		return baseResult{cycles: rec.Def.Cycles, nextPC: pc + 1}, nil
	}
}

// loadOp builds a load handler. pcRel marks L32R's absolute addressing;
// ext applies sign extension (nil for zero-extending loads).
//
//xtenergy:hotpath
func loadOp(size int, ext func(v uint32) uint32, pcRel bool) execFn {
	return func(s *Simulator, rec *plan.Rec, pc int, rs, rt uint32, te *TraceEntry) (baseResult, error) {
		res := baseResult{cycles: rec.Def.Cycles, nextPC: pc + 1}
		addr := rs + uint32(rec.Instr.Imm)
		if pcRel {
			addr = uint32(rec.Instr.Imm)
		}
		v, err := s.load(addr, size)
		if err != nil {
			return res, err
		}
		if ext != nil {
			v = ext(v)
		}
		te.Addr = addr
		if !s.dc.Access(addr) {
			s.stats.DCacheMisses++
			pen := s.dc.MissPenalty()
			s.stats.StallCycles += uint64(pen)
			res.cycles += pen
			te.DCMiss = true
		}
		s.regs[rec.Instr.Rd] = v
		te.Result = v
		s.stats.ClassCycles[CLoad] += uint64(rec.Def.Cycles)
		return res, nil
	}
}

// storeOp builds a store handler (the store data register is Rd).
//
//xtenergy:hotpath
func storeOp(size int) execFn {
	return func(s *Simulator, rec *plan.Rec, pc int, rs, rt uint32, te *TraceEntry) (baseResult, error) {
		res := baseResult{cycles: rec.Def.Cycles, nextPC: pc + 1}
		addr := rs + uint32(rec.Instr.Imm)
		val := s.regs[rec.Instr.Rd]
		if err := s.store(addr, size, val); err != nil {
			return res, err
		}
		te.Addr = addr
		te.Result = val
		if !s.dc.Access(addr) {
			s.stats.DCacheMisses++
			pen := s.dc.MissPenalty()
			s.stats.StallCycles += uint64(pen)
			res.cycles += pen
			te.DCMiss = true
		}
		s.stats.ClassCycles[CStore] += uint64(rec.Def.Cycles)
		return res, nil
	}
}

// brRR builds a register-register conditional branch handler; the taken
// target comes predecoded from the plan record.
//
//xtenergy:hotpath
func brRR(cond func(rs, rt uint32) bool) execFn {
	return func(s *Simulator, rec *plan.Rec, pc int, rs, rt uint32, te *TraceEntry) (baseResult, error) {
		res := baseResult{cycles: rec.Def.Cycles, nextPC: pc + 1}
		s.branchClose(&res, rec.Target, cond(rs, rt), te)
		return res, nil
	}
}

// brSI builds a signed register-immediate branch handler; the 6-bit
// constant carried in the Rt field is predecoded into rec.SImm.
//
//xtenergy:hotpath
func brSI(cond func(rs, k int32) bool) execFn {
	return func(s *Simulator, rec *plan.Rec, pc int, rs, rt uint32, te *TraceEntry) (baseResult, error) {
		res := baseResult{cycles: rec.Def.Cycles, nextPC: pc + 1}
		s.branchClose(&res, rec.Target, cond(int32(rs), rec.SImm), te)
		return res, nil
	}
}

// brRt builds a branch handler whose condition reads the raw Rt field
// (unsigned-immediate compares and bit tests).
//
//xtenergy:hotpath
func brRt(cond func(rs uint32, rtField uint8) bool) execFn {
	return func(s *Simulator, rec *plan.Rec, pc int, rs, rt uint32, te *TraceEntry) (baseResult, error) {
		res := baseResult{cycles: rec.Def.Cycles, nextPC: pc + 1}
		s.branchClose(&res, rec.Target, cond(rs, rec.Instr.Rt), te)
		return res, nil
	}
}

// brZ builds a register-zero compare branch handler.
//
//xtenergy:hotpath
func brZ(cond func(rs uint32) bool) execFn {
	return func(s *Simulator, rec *plan.Rec, pc int, rs, rt uint32, te *TraceEntry) (baseResult, error) {
		res := baseResult{cycles: rec.Def.Cycles, nextPC: pc + 1}
		s.branchClose(&res, rec.Target, cond(rs), te)
		return res, nil
	}
}

func execJ(s *Simulator, rec *plan.Rec, pc int, rs, rt uint32, te *TraceEntry) (baseResult, error) {
	res := baseResult{cycles: rec.Def.Cycles, nextPC: pc + 1}
	s.jumpClose(&res, rec.Target)
	return res, nil
}

func execJX(s *Simulator, rec *plan.Rec, pc int, rs, rt uint32, te *TraceEntry) (baseResult, error) {
	res := baseResult{cycles: rec.Def.Cycles, nextPC: pc + 1}
	if rs == haltPC {
		res.halt = true
		s.stats.ClassCycles[CJump] += uint64(res.cycles)
		return res, nil
	}
	s.jumpClose(&res, int(rs))
	return res, nil
}

func execCALL(s *Simulator, rec *plan.Rec, pc int, rs, rt uint32, te *TraceEntry) (baseResult, error) {
	res := baseResult{cycles: rec.Def.Cycles, nextPC: pc + 1}
	s.regs[0] = uint32(pc + 1)
	s.jumpClose(&res, rec.Target)
	return res, nil
}

func execCALLX(s *Simulator, rec *plan.Rec, pc int, rs, rt uint32, te *TraceEntry) (baseResult, error) {
	res := baseResult{cycles: rec.Def.Cycles, nextPC: pc + 1}
	s.regs[0] = uint32(pc + 1)
	s.jumpClose(&res, int(rs))
	return res, nil
}

func execRET(s *Simulator, rec *plan.Rec, pc int, rs, rt uint32, te *TraceEntry) (baseResult, error) {
	res := baseResult{cycles: rec.Def.Cycles, nextPC: pc + 1}
	target := s.regs[0]
	if target == haltPC {
		res.halt = true
		s.stats.ClassCycles[CJump] += uint64(res.cycles)
		return res, nil
	}
	s.jumpClose(&res, int(target))
	return res, nil
}

// loopOp builds the zero-overhead loop setup handler (the configurable
// loop option); the loop end address is predecoded into rec.Target.
//
//xtenergy:hotpath
func loopOp(nez bool) execFn {
	return func(s *Simulator, rec *plan.Rec, pc int, rs, rt uint32, te *TraceEntry) (baseResult, error) {
		res := baseResult{cycles: rec.Def.Cycles, nextPC: pc + 1}
		if !s.proc.Config.HasLoops {
			return res, newFault(FaultIllegalInstr, "illegal instruction: %s requires the zero-overhead loop option", rec.Instr.Op.Name())
		}
		end := rec.Target
		if end <= pc+1 || end > len(s.prog.Code) {
			return res, newFault(FaultIllegalInstr, "%s target %d out of range", rec.Instr.Op.Name(), end)
		}
		if nez && rs == 0 {
			// Skip the body entirely; treated like a taken redirect.
			res.cycles += s.pipe.TakenPenalty
			res.nextPC = end
			s.stats.ClassCycles[CArith] += uint64(res.cycles)
			s.pipe.Flush()
			s.loopActive = false
			return res, nil
		}
		s.loopActive = true
		s.loopBegin = pc + 1
		s.loopEnd = end
		s.loopCount = rs - 1
		s.stats.ClassCycles[CArith] += uint64(res.cycles)
		return res, nil
	}
}

func execNOP(s *Simulator, rec *plan.Rec, pc int, rs, rt uint32, te *TraceEntry) (baseResult, error) {
	s.stats.ClassCycles[CArith] += uint64(rec.Def.Cycles)
	return baseResult{cycles: rec.Def.Cycles, nextPC: pc + 1}, nil
}

// execTable is the per-opcode dispatch table, built once. A nil entry
// means the opcode has no base-ISA semantics (OpInvalid, and OpCUSTOM,
// which the retire loop routes to execCustom before dispatch); hitting
// one raises an illegal-instruction fault.
var execTable = func() [isa.NumOpcodes]execFn {
	var t [isa.NumOpcodes]execFn

	// --- arithmetic / logic ---
	t[isa.OpADD] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return rs + rt })
	t[isa.OpADDI] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return rs + uint32(in.Imm) })
	t[isa.OpSUB] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return rs - rt })
	t[isa.OpNEG] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return -rs })
	t[isa.OpAND] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return rs & rt })
	t[isa.OpANDI] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return rs & uint32(in.Imm) })
	t[isa.OpOR] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return rs | rt })
	t[isa.OpORI] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return rs | uint32(in.Imm) })
	t[isa.OpXOR] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return rs ^ rt })
	t[isa.OpXORI] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return rs ^ uint32(in.Imm) })
	t[isa.OpNOT] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return ^rs })
	t[isa.OpSLL] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return rs << (rt & 31) })
	t[isa.OpSLLI] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return rs << (uint32(in.Imm) & 31) })
	t[isa.OpSRL] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return rs >> (rt & 31) })
	t[isa.OpSRLI] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return rs >> (uint32(in.Imm) & 31) })
	t[isa.OpSRA] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return uint32(int32(rs) >> (rt & 31)) })
	t[isa.OpSRAI] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return uint32(int32(rs) >> (uint32(in.Imm) & 31)) })
	t[isa.OpSLT] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return boolToU32(int32(rs) < int32(rt)) })
	t[isa.OpSLTI] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return boolToU32(int32(rs) < in.Imm) })
	t[isa.OpSLTU] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return boolToU32(rs < rt) })
	t[isa.OpSLTIU] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return boolToU32(rs < uint32(in.Imm)) })
	t[isa.OpMOVI] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return uint32(in.Imm) })
	t[isa.OpMOV] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return rs })
	t[isa.OpMOVEQZ] = cmov(func(rt uint32) bool { return rt == 0 })
	t[isa.OpMOVNEZ] = cmov(func(rt uint32) bool { return rt != 0 })
	t[isa.OpMOVLTZ] = cmov(func(rt uint32) bool { return int32(rt) < 0 })
	t[isa.OpMOVGEZ] = cmov(func(rt uint32) bool { return int32(rt) >= 0 })
	t[isa.OpMUL] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return rs * rt })
	t[isa.OpMULH] = alu(func(in isa.Instr, rs, rt uint32) uint32 {
		return uint32(uint64(int64(int32(rs))*int64(int32(rt))) >> 32)
	})
	t[isa.OpMULHU] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return uint32(uint64(rs) * uint64(rt) >> 32) })
	t[isa.OpMIN] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return minS(rs, rt) })
	t[isa.OpMAX] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return maxS(rs, rt) })
	t[isa.OpMINU] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return minU(rs, rt) })
	t[isa.OpMAXU] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return maxU(rs, rt) })
	t[isa.OpABS] = alu(func(in isa.Instr, rs, rt uint32) uint32 {
		if int32(rs) < 0 {
			return -rs
		}
		return rs
	})
	t[isa.OpSEXT8] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return uint32(int32(int8(rs))) })
	t[isa.OpSEXT16] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return uint32(int32(int16(rs))) })
	t[isa.OpCLAMPS] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return clamps(rs, in.Imm) })
	t[isa.OpNSA] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return nsa(rs) })
	t[isa.OpNSAU] = alu(func(in isa.Instr, rs, rt uint32) uint32 { return uint32(bits.LeadingZeros32(rs)) })
	t[isa.OpEXTUI] = alu(func(in isa.Instr, rs, rt uint32) uint32 {
		// Imm packs the field: bits [4:0] = shift, bits [9:5] = width-1.
		shift := uint32(in.Imm) & 31
		width := (uint32(in.Imm)>>5)&31 + 1
		return (rs >> shift) & ((1 << width) - 1)
	})
	t[isa.OpNOP] = execNOP

	// --- loads / stores ---
	sx8 := func(v uint32) uint32 { return uint32(int32(int8(v))) }
	sx16 := func(v uint32) uint32 { return uint32(int32(int16(v))) }
	t[isa.OpL8UI] = loadOp(1, nil, false)
	t[isa.OpL8SI] = loadOp(1, sx8, false)
	t[isa.OpL16UI] = loadOp(2, nil, false)
	t[isa.OpL16SI] = loadOp(2, sx16, false)
	t[isa.OpL32I] = loadOp(4, nil, false)
	t[isa.OpL32R] = loadOp(4, nil, true)
	t[isa.OpS8I] = storeOp(1)
	t[isa.OpS16I] = storeOp(2)
	t[isa.OpS32I] = storeOp(4)

	// --- jumps and loops ---
	t[isa.OpJ] = execJ
	t[isa.OpJX] = execJX
	t[isa.OpCALL] = execCALL
	t[isa.OpCALLX] = execCALLX
	t[isa.OpRET] = execRET
	t[isa.OpLOOP] = loopOp(false)
	t[isa.OpLOOPNEZ] = loopOp(true)

	// --- branches: register-register ---
	t[isa.OpBEQ] = brRR(func(rs, rt uint32) bool { return rs == rt })
	t[isa.OpBNE] = brRR(func(rs, rt uint32) bool { return rs != rt })
	t[isa.OpBLT] = brRR(func(rs, rt uint32) bool { return int32(rs) < int32(rt) })
	t[isa.OpBGE] = brRR(func(rs, rt uint32) bool { return int32(rs) >= int32(rt) })
	t[isa.OpBLTU] = brRR(func(rs, rt uint32) bool { return rs < rt })
	t[isa.OpBGEU] = brRR(func(rs, rt uint32) bool { return rs >= rt })
	t[isa.OpBANY] = brRR(func(rs, rt uint32) bool { return rs&rt != 0 })
	t[isa.OpBNONE] = brRR(func(rs, rt uint32) bool { return rs&rt == 0 })
	t[isa.OpBALL] = brRR(func(rs, rt uint32) bool { return rs&rt == rt })
	t[isa.OpBNALL] = brRR(func(rs, rt uint32) bool { return rs&rt != rt })

	// --- branches: register-immediate (constant in Rt field) ---
	t[isa.OpBEQI] = brSI(func(rs, k int32) bool { return rs == k })
	t[isa.OpBNEI] = brSI(func(rs, k int32) bool { return rs != k })
	t[isa.OpBLTI] = brSI(func(rs, k int32) bool { return rs < k })
	t[isa.OpBGEI] = brSI(func(rs, k int32) bool { return rs >= k })
	t[isa.OpBLTUI] = brRt(func(rs uint32, rtField uint8) bool { return rs < uint32(rtField) })
	t[isa.OpBGEUI] = brRt(func(rs uint32, rtField uint8) bool { return rs >= uint32(rtField) })

	// --- branches: register-zero and bit tests ---
	t[isa.OpBEQZ] = brZ(func(rs uint32) bool { return rs == 0 })
	t[isa.OpBNEZ] = brZ(func(rs uint32) bool { return rs != 0 })
	t[isa.OpBLTZ] = brZ(func(rs uint32) bool { return int32(rs) < 0 })
	t[isa.OpBGEZ] = brZ(func(rs uint32) bool { return int32(rs) >= 0 })
	t[isa.OpBBCI] = brRt(func(rs uint32, rtField uint8) bool { return rs&(1<<(rtField&31)) == 0 })
	t[isa.OpBBSI] = brRt(func(rs uint32, rtField uint8) bool { return rs&(1<<(rtField&31)) != 0 })

	return t
}()

func boolToU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func minS(a, b uint32) uint32 {
	if int32(a) < int32(b) {
		return a
	}
	return b
}

func maxS(a, b uint32) uint32 {
	if int32(a) > int32(b) {
		return a
	}
	return b
}

func minU(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func maxU(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// clamps clamps the signed value v to the range of a bits-bit signed
// integer (bits is clipped to 1..31).
func clamps(v uint32, bitsImm int32) uint32 {
	b := bitsImm
	if b < 1 {
		b = 1
	}
	if b > 31 {
		b = 31
	}
	max := int32(1)<<(b-1) - 1
	min := -int32(1) << (b - 1)
	sv := int32(v)
	if sv > max {
		return uint32(max)
	}
	if sv < min {
		return uint32(min)
	}
	return v
}

// nsa returns the Xtensa normalization shift amount for a signed value:
// the number of left shifts needed to normalize it (31 for 0 and -1).
func nsa(v uint32) uint32 {
	x := v
	if int32(v) < 0 {
		x = ^v
	}
	if x == 0 {
		return 31
	}
	return uint32(bits.LeadingZeros32(x)) - 1
}
