package iss

import (
	"math/bits"

	"xtenergy/internal/isa"
)

// baseResult is the outcome of executing one base instruction.
type baseResult struct {
	cycles int
	nextPC int
	halt   bool
}

func signExtend6(v uint8) int32 {
	return int32(int8(v<<2)) >> 2
}

// execBase executes one base-ISA instruction, updates architectural
// state and class-cycle statistics, and fills the data-dependent fields
// of the trace entry.
func (s *Simulator) execBase(in isa.Instr, pc int, te *TraceEntry) (baseResult, error) {
	d := in.Def()
	rs := s.regs[in.Rs]
	rt := s.regs[in.Rt]
	te.RsVal, te.RtVal = rs, rt

	res := baseResult{cycles: d.Cycles, nextPC: pc + 1}
	writeRd := func(v uint32) {
		s.regs[in.Rd] = v
		te.Result = v
	}
	branch := func(taken bool) {
		te.Taken = taken
		if taken {
			res.cycles += s.pipe.TakenPenalty
			res.nextPC = pc + 1 + int(in.Imm)
			s.stats.ClassCycles[CBranchTaken] += uint64(res.cycles)
			s.pipe.Flush()
		} else {
			s.stats.ClassCycles[CBranchUntaken] += uint64(res.cycles)
		}
	}
	jump := func(target int) {
		res.cycles += s.pipe.JumpPenalty
		res.nextPC = target
		s.stats.ClassCycles[CJump] += uint64(res.cycles)
		s.pipe.Flush()
	}

	switch in.Op {
	// --- arithmetic / logic ---
	case isa.OpADD:
		writeRd(rs + rt)
	case isa.OpADDI:
		writeRd(rs + uint32(in.Imm))
	case isa.OpSUB:
		writeRd(rs - rt)
	case isa.OpNEG:
		writeRd(-rs)
	case isa.OpAND:
		writeRd(rs & rt)
	case isa.OpANDI:
		writeRd(rs & uint32(in.Imm))
	case isa.OpOR:
		writeRd(rs | rt)
	case isa.OpORI:
		writeRd(rs | uint32(in.Imm))
	case isa.OpXOR:
		writeRd(rs ^ rt)
	case isa.OpXORI:
		writeRd(rs ^ uint32(in.Imm))
	case isa.OpNOT:
		writeRd(^rs)
	case isa.OpSLL:
		writeRd(rs << (rt & 31))
	case isa.OpSLLI:
		writeRd(rs << (uint32(in.Imm) & 31))
	case isa.OpSRL:
		writeRd(rs >> (rt & 31))
	case isa.OpSRLI:
		writeRd(rs >> (uint32(in.Imm) & 31))
	case isa.OpSRA:
		writeRd(uint32(int32(rs) >> (rt & 31)))
	case isa.OpSRAI:
		writeRd(uint32(int32(rs) >> (uint32(in.Imm) & 31)))
	case isa.OpSLT:
		writeRd(boolToU32(int32(rs) < int32(rt)))
	case isa.OpSLTI:
		writeRd(boolToU32(int32(rs) < in.Imm))
	case isa.OpSLTU:
		writeRd(boolToU32(rs < rt))
	case isa.OpSLTIU:
		writeRd(boolToU32(rs < uint32(in.Imm)))
	case isa.OpMOVI:
		writeRd(uint32(in.Imm))
	case isa.OpMOV:
		writeRd(rs)
	case isa.OpMOVEQZ:
		if rt == 0 {
			writeRd(rs)
		} else {
			writeRd(s.regs[in.Rd])
		}
	case isa.OpMOVNEZ:
		if rt != 0 {
			writeRd(rs)
		} else {
			writeRd(s.regs[in.Rd])
		}
	case isa.OpMOVLTZ:
		if int32(rt) < 0 {
			writeRd(rs)
		} else {
			writeRd(s.regs[in.Rd])
		}
	case isa.OpMOVGEZ:
		if int32(rt) >= 0 {
			writeRd(rs)
		} else {
			writeRd(s.regs[in.Rd])
		}
	case isa.OpMUL:
		writeRd(rs * rt)
	case isa.OpMULH:
		writeRd(uint32(uint64(int64(int32(rs))*int64(int32(rt))) >> 32))
	case isa.OpMULHU:
		writeRd(uint32(uint64(rs) * uint64(rt) >> 32))
	case isa.OpMIN:
		writeRd(minS(rs, rt))
	case isa.OpMAX:
		writeRd(maxS(rs, rt))
	case isa.OpMINU:
		writeRd(minU(rs, rt))
	case isa.OpMAXU:
		writeRd(maxU(rs, rt))
	case isa.OpABS:
		if int32(rs) < 0 {
			writeRd(-rs)
		} else {
			writeRd(rs)
		}
	case isa.OpSEXT8:
		writeRd(uint32(int32(int8(rs))))
	case isa.OpSEXT16:
		writeRd(uint32(int32(int16(rs))))
	case isa.OpCLAMPS:
		writeRd(clamps(rs, in.Imm))
	case isa.OpNSA:
		writeRd(nsa(rs))
	case isa.OpNSAU:
		writeRd(uint32(bits.LeadingZeros32(rs)))
	case isa.OpEXTUI:
		// Imm packs the field: bits [4:0] = shift, bits [9:5] = width-1.
		shift := uint32(in.Imm) & 31
		width := (uint32(in.Imm)>>5)&31 + 1
		writeRd((rs >> shift) & ((1 << width) - 1))
	case isa.OpNOP:
		// nothing

	// --- loads ---
	case isa.OpL8UI, isa.OpL8SI, isa.OpL16UI, isa.OpL16SI, isa.OpL32I, isa.OpL32R:
		var addr uint32
		if in.Op == isa.OpL32R {
			addr = uint32(in.Imm)
		} else {
			addr = rs + uint32(in.Imm)
		}
		size := loadSize(in.Op)
		v, err := s.load(addr, size)
		if err != nil {
			return res, err
		}
		switch in.Op {
		case isa.OpL8SI:
			v = uint32(int32(int8(v)))
		case isa.OpL16SI:
			v = uint32(int32(int16(v)))
		}
		te.Addr = addr
		if !s.dc.Access(addr) {
			s.stats.DCacheMisses++
			pen := s.dc.MissPenalty()
			s.stats.StallCycles += uint64(pen)
			res.cycles += pen
			te.DCMiss = true
		}
		writeRd(v)
		s.stats.ClassCycles[CLoad] += uint64(d.Cycles)
		return res, nil

	// --- stores ---
	case isa.OpS8I, isa.OpS16I, isa.OpS32I:
		addr := rs + uint32(in.Imm)
		size := storeSize(in.Op)
		val := s.regs[in.Rd] // store data register is Rd
		if err := s.store(addr, size, val); err != nil {
			return res, err
		}
		te.Addr = addr
		te.Result = val
		if !s.dc.Access(addr) {
			s.stats.DCacheMisses++
			pen := s.dc.MissPenalty()
			s.stats.StallCycles += uint64(pen)
			res.cycles += pen
			te.DCMiss = true
		}
		s.stats.ClassCycles[CStore] += uint64(d.Cycles)
		return res, nil

	// --- jumps ---
	case isa.OpJ:
		jump(int(in.Imm))
		return res, nil
	case isa.OpJX:
		if rs == haltPC {
			res.halt = true
			s.stats.ClassCycles[CJump] += uint64(res.cycles)
			return res, nil
		}
		jump(int(rs))
		return res, nil
	case isa.OpCALL:
		s.regs[0] = uint32(pc + 1)
		jump(int(in.Imm))
		return res, nil
	case isa.OpCALLX:
		s.regs[0] = uint32(pc + 1)
		jump(int(rs))
		return res, nil
	case isa.OpRET:
		target := s.regs[0]
		if target == haltPC {
			res.halt = true
			s.stats.ClassCycles[CJump] += uint64(res.cycles)
			return res, nil
		}
		jump(int(target))
		return res, nil

	// --- zero-overhead loops (configurable option) ---
	case isa.OpLOOP, isa.OpLOOPNEZ:
		if !s.proc.Config.HasLoops {
			return res, newFault(FaultIllegalInstr, "illegal instruction: %s requires the zero-overhead loop option", in.Op.Name())
		}
		end := pc + 1 + int(in.Imm)
		if end <= pc+1 || end > len(s.prog.Code) {
			return res, newFault(FaultIllegalInstr, "%s target %d out of range", in.Op.Name(), end)
		}
		if in.Op == isa.OpLOOPNEZ && rs == 0 {
			// Skip the body entirely; treated like a taken redirect.
			res.cycles += s.pipe.TakenPenalty
			res.nextPC = end
			s.stats.ClassCycles[CArith] += uint64(res.cycles)
			s.pipe.Flush()
			s.loopActive = false
			return res, nil
		}
		s.loopActive = true
		s.loopBegin = pc + 1
		s.loopEnd = end
		s.loopCount = rs - 1
		s.stats.ClassCycles[CArith] += uint64(res.cycles)
		return res, nil

	// --- branches: register-register ---
	case isa.OpBEQ:
		branch(rs == rt)
		return res, nil
	case isa.OpBNE:
		branch(rs != rt)
		return res, nil
	case isa.OpBLT:
		branch(int32(rs) < int32(rt))
		return res, nil
	case isa.OpBGE:
		branch(int32(rs) >= int32(rt))
		return res, nil
	case isa.OpBLTU:
		branch(rs < rt)
		return res, nil
	case isa.OpBGEU:
		branch(rs >= rt)
		return res, nil
	case isa.OpBANY:
		branch(rs&rt != 0)
		return res, nil
	case isa.OpBNONE:
		branch(rs&rt == 0)
		return res, nil
	case isa.OpBALL:
		branch(rs&rt == rt)
		return res, nil
	case isa.OpBNALL:
		branch(rs&rt != rt)
		return res, nil

	// --- branches: register-immediate (constant in Rt field) ---
	case isa.OpBEQI:
		branch(int32(rs) == signExtend6(in.Rt))
		return res, nil
	case isa.OpBNEI:
		branch(int32(rs) != signExtend6(in.Rt))
		return res, nil
	case isa.OpBLTI:
		branch(int32(rs) < signExtend6(in.Rt))
		return res, nil
	case isa.OpBGEI:
		branch(int32(rs) >= signExtend6(in.Rt))
		return res, nil
	case isa.OpBLTUI:
		branch(rs < uint32(in.Rt))
		return res, nil
	case isa.OpBGEUI:
		branch(rs >= uint32(in.Rt))
		return res, nil

	// --- branches: register-zero and bit tests ---
	case isa.OpBEQZ:
		branch(rs == 0)
		return res, nil
	case isa.OpBNEZ:
		branch(rs != 0)
		return res, nil
	case isa.OpBLTZ:
		branch(int32(rs) < 0)
		return res, nil
	case isa.OpBGEZ:
		branch(int32(rs) >= 0)
		return res, nil
	case isa.OpBBCI:
		branch(rs&(1<<(in.Rt&31)) == 0)
		return res, nil
	case isa.OpBBSI:
		branch(rs&(1<<(in.Rt&31)) != 0)
		return res, nil

	default:
		return res, newFault(FaultIllegalInstr, "unimplemented opcode %s", in.Op.Name())
	}

	// Fallthrough: plain arithmetic-class instructions.
	s.stats.ClassCycles[CArith] += uint64(d.Cycles)
	return res, nil
}

func loadSize(op isa.Opcode) int {
	switch op {
	case isa.OpL8UI, isa.OpL8SI:
		return 1
	case isa.OpL16UI, isa.OpL16SI:
		return 2
	default:
		return 4
	}
}

func storeSize(op isa.Opcode) int {
	switch op {
	case isa.OpS8I:
		return 1
	case isa.OpS16I:
		return 2
	default:
		return 4
	}
}

func boolToU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func minS(a, b uint32) uint32 {
	if int32(a) < int32(b) {
		return a
	}
	return b
}

func maxS(a, b uint32) uint32 {
	if int32(a) > int32(b) {
		return a
	}
	return b
}

func minU(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func maxU(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// clamps clamps the signed value v to the range of a bits-bit signed
// integer (bits is clipped to 1..31).
func clamps(v uint32, bitsImm int32) uint32 {
	b := bitsImm
	if b < 1 {
		b = 1
	}
	if b > 31 {
		b = 31
	}
	max := int32(1)<<(b-1) - 1
	min := -int32(1) << (b - 1)
	sv := int32(v)
	if sv > max {
		return uint32(max)
	}
	if sv < min {
		return uint32(min)
	}
	return v
}

// nsa returns the Xtensa normalization shift amount for a signed value:
// the number of left shifts needed to normalize it (31 for 0 and -1).
func nsa(v uint32) uint32 {
	x := v
	if int32(v) < 0 {
		x = ^v
	}
	if x == 0 {
		return 31
	}
	return uint32(bits.LeadingZeros32(x)) - 1
}
