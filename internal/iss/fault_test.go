package iss_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"xtenergy/internal/asm"
	"xtenergy/internal/hwlib"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/tie"
)

// faultFrom runs src on a base processor and requires a typed fault.
func faultFrom(t *testing.T, src string, opts iss.Options) *iss.Fault {
	t.Helper()
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.New(proc.TIE).Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = iss.New(proc).Run(prog, opts)
	if err == nil {
		t.Fatal("run succeeded, want fault")
	}
	f, ok := iss.AsFault(err)
	if !ok {
		t.Fatalf("error is not a *iss.Fault: %v", err)
	}
	return f
}

func TestMemFaultSite(t *testing.T) {
	f := faultFrom(t, "movi a2, 0x1001\n l32i a1, a2, 0\n ret", iss.Options{})
	if f.Kind != iss.FaultMem {
		t.Fatalf("kind = %s, want mem-fault", f.Kind)
	}
	if f.Addr != 0x1001 {
		t.Fatalf("addr = %#x, want 0x1001", f.Addr)
	}
	if f.PC != 1 {
		t.Fatalf("pc = %d, want 1 (the l32i)", f.PC)
	}
	if f.Prog != "t" {
		t.Fatalf("prog = %q", f.Prog)
	}
	// The error string keeps the legacy "unaligned" marker and carries
	// the site.
	msg := f.Error()
	for _, want := range []string{"unaligned", "mem-fault", "pc 1", "addr 0x1001"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
	if f.IsTransient() {
		t.Fatal("memory fault must not be transient")
	}
}

func TestMemFaultOutOfRange(t *testing.T) {
	f := faultFrom(t, "movi a2, 0x1FFFC\n slli a2, a2, 8\n l32i a1, a2, 0\n ret", iss.Options{})
	if f.Kind != iss.FaultMem {
		t.Fatalf("kind = %s, want mem-fault", f.Kind)
	}
	if !strings.Contains(f.Error(), "beyond") {
		t.Fatalf("error %q missing RAM-bound detail", f.Error())
	}
}

func TestWatchdogFault(t *testing.T) {
	f := faultFrom(t, "loop:\n j loop\n", iss.Options{MaxCycles: 1000})
	if f.Kind != iss.FaultWatchdog {
		t.Fatalf("kind = %s, want watchdog", f.Kind)
	}
	if !strings.Contains(f.Error(), "exceeded") {
		t.Fatalf("error %q missing legacy watchdog marker", f.Error())
	}
	if f.IsTransient() {
		t.Fatal("watchdog fault must not be transient")
	}
}

func TestCancelledFault(t *testing.T) {
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.New(proc.TIE).Assemble("t", "loop:\n j loop\n")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = iss.New(proc).RunContext(ctx, prog, iss.Options{})
	f, ok := iss.AsFault(err)
	if !ok || f.Kind != iss.FaultCancelled {
		t.Fatalf("want cancelled fault, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("fault does not wrap context.Canceled: %v", err)
	}
	// Explicit cancellation is not worth retrying...
	if f.IsTransient() {
		t.Fatal("explicit cancellation must not be transient")
	}
	// ...but a deadline is (machine load), and so is the explicit flag.
	if !(&iss.Fault{Kind: iss.FaultCancelled, Err: context.DeadlineExceeded}).IsTransient() {
		t.Fatal("deadline cancellation must be transient")
	}
	if !(&iss.Fault{Kind: iss.FaultMeasurement, Transient: true}).IsTransient() {
		t.Fatal("explicit Transient flag ignored")
	}
}

func TestCustomOpPanicBecomesFault(t *testing.T) {
	ext := &tie.Extension{
		Name: "e",
		Instructions: []*tie.Instruction{{
			Name: "boom", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
			Datapath: []tie.DatapathElem{{
				Component: hwlib.Component{Name: "u", Cat: hwlib.TIEAdd, Width: 32},
			}},
			Semantics: func(_ *tie.State, _ tie.Operands) uint32 { panic("semantics bug") },
		}},
	}
	proc, err := procgen.Generate(procgen.Default(), ext)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.New(proc.TIE).Assemble("t", "movi a2, 1\n boom a1, a2, a2\n ret")
	if err != nil {
		t.Fatal(err)
	}
	_, err = iss.New(proc).Run(prog, iss.Options{})
	f, ok := iss.AsFault(err)
	if !ok || f.Kind != iss.FaultCustomOp {
		t.Fatalf("want custom-op fault, got %v", err)
	}
	if !strings.Contains(f.Error(), "boom") || !strings.Contains(f.Error(), "semantics bug") {
		t.Fatalf("fault does not name the instruction: %v", f)
	}
	if f.PC != 1 {
		t.Fatalf("pc = %d, want 1", f.PC)
	}
}

func TestInjectFaultFillsSite(t *testing.T) {
	proc, err := procgen.Generate(procgen.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.New(proc.TIE).Assemble("t", "movi a1, 1\n movi a2, 2\n add a3, a1, a2\n ret")
	if err != nil {
		t.Fatal(err)
	}
	_, err = iss.New(proc).Run(prog, iss.Options{
		InjectFault: func(pc int, cycle uint64) *iss.Fault {
			if pc == 2 {
				return &iss.Fault{Kind: iss.FaultMem, Addr: 0xdead_beef, Msg: "injected"}
			}
			return nil
		},
	})
	f, ok := iss.AsFault(err)
	if !ok {
		t.Fatalf("want fault, got %v", err)
	}
	if f.Kind != iss.FaultMem || f.Addr != 0xdead_beef {
		t.Fatalf("injected fault mangled: %+v", f)
	}
	if f.PC != 2 || f.Prog != "t" {
		t.Fatalf("site not filled: pc=%d prog=%q", f.PC, f.Prog)
	}
	if f.Instr.String() == "" {
		t.Fatal("instruction not filled")
	}
}

func TestFaultKindNames(t *testing.T) {
	want := map[iss.FaultKind]string{
		iss.FaultMem:          "mem-fault",
		iss.FaultIllegalInstr: "illegal-instr",
		iss.FaultWatchdog:     "watchdog",
		iss.FaultCustomOp:     "custom-op",
		iss.FaultCancelled:    "cancelled",
		iss.FaultPanic:        "panic",
		iss.FaultMeasurement:  "bad-measurement",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("kind %d = %q, want %q", k, k.String(), name)
		}
	}
}
