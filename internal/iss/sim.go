package iss

import (
	"context"
	"fmt"

	"xtenergy/internal/cache"
	"xtenergy/internal/isa"
	"xtenergy/internal/pipeline"
	"xtenergy/internal/plan"
	"xtenergy/internal/procgen"
	"xtenergy/internal/tie"
)

// haltPC is the link-register sentinel: a RET (or JX) to this value halts
// the program. The simulator initializes a0 to it, so a top-level "ret"
// ends the run.
const haltPC = 0xFFFF_FFFF

// UncachedFetchPenalty is the stall, in cycles, charged per uncached
// instruction fetch (bus access instead of I-cache). Exported because the
// RTL reference power model needs to know how long the bus is busy.
const UncachedFetchPenalty = 6

// Options configures a simulation run.
type Options struct {
	// CollectTrace records a TraceEntry per retired instruction
	// (the materialized-trace mode; O(retired instructions) memory).
	CollectTrace bool
	// TraceSink, when non-nil, streams the execution trace instead:
	// every retired instruction is delivered, in order, in batches of up
	// to TraceBatchSize entries. The batch slice is owned by the
	// simulator and reused after the call returns, so a sink that keeps
	// entries beyond the call must copy them. Returning a non-nil error
	// aborts the run. TraceSink keeps trace consumers (e.g. the RTL
	// reference estimator) at O(1) memory regardless of run length, and
	// may be combined with CollectTrace.
	TraceSink func(batch []TraceEntry) error
	// RecordUninitReads tracks which general registers have been written
	// (the link register a0 counts as written: reset initializes it to
	// the halt sentinel) and records every architectural read of a
	// never-written register in Result.UninitReads, deduplicated per
	// (pc, register). It is the dynamic ground truth the xlint static
	// initialization analysis is validated against.
	RecordUninitReads bool
	// MaxCycles aborts runaway programs; 0 means the default (200M).
	// Exceeding it raises a FaultWatchdog fault.
	MaxCycles uint64
	// InjectFault, when non-nil, is consulted before every retired
	// instruction with the upcoming pc and the current cycle count;
	// returning a non-nil fault aborts the run at that site (the
	// simulator fills in the program, pc, instruction, and cycle).
	// This is the seam the internal/chaos fault-injection harness
	// uses; leave nil in production runs.
	InjectFault func(pc int, cycle uint64) *Fault
	// RegProbe, when non-nil, observes the architectural register file
	// immediately before each instruction executes: it is called with
	// the upcoming pc and the live register array (read-only; the array
	// is the simulator's own state, so the probe must not write to it or
	// retain the pointer past the call). This is the dynamic oracle the
	// xlint abstract interpreter's soundness tests are validated
	// against: every observed value must lie inside the statically
	// inferred interval at that pc.
	RegProbe func(pc int, regs *[isa.NumRegs]uint32)
}

// UninitRead records one dynamic read of a never-written register.
type UninitRead struct {
	// PC is the word index of the reading instruction.
	PC int
	// Reg is the register number that was read before any write.
	Reg uint8
}

// TraceBatchSize is the number of retired instructions delivered per
// TraceSink call (the final batch may be shorter). The batch buffer is
// allocated once per Run, so the retire loop stays allocation-free.
const TraceBatchSize = 256

// DefaultMaxCycles is the watchdog limit when Options.MaxCycles is 0.
const DefaultMaxCycles = 200_000_000

// Result is the outcome of a simulation run.
type Result struct {
	// Stats are the macro-model execution statistics.
	Stats Stats
	// Trace is the dynamic execution trace (nil unless requested).
	Trace []TraceEntry
	// Regs is the final general register file.
	Regs [isa.NumRegs]uint32
	// TIE is the final custom state (nil when the processor has no
	// extension or no custom registers).
	TIE *tie.State
	// UninitReads lists reads of never-written registers, one entry per
	// distinct (pc, register) pair in first-occurrence order (nil unless
	// Options.RecordUninitReads was set).
	UninitReads []UninitRead
}

// Simulator executes XT32 programs on a generated processor instance.
// A Simulator is not safe for concurrent use; create one per goroutine.
type Simulator struct {
	proc *procgen.Processor

	regs [isa.NumRegs]uint32
	tie  *tie.State
	mem  []byte

	ic, dc *cache.Cache
	pipe   *pipeline.Model

	prog  *Program
	plan  *plan.Plan
	stats Stats
	trace []TraceEntry

	// Streaming-trace state: sink is Options.TraceSink for the current
	// run; batch is the reusable fixed-size delivery buffer.
	sink  func(batch []TraceEntry) error
	batch []TraceEntry

	// probe is Options.RegProbe for the current run.
	probe func(pc int, regs *[isa.NumRegs]uint32)

	// entry is the scratch trace entry for the step in flight. It lives
	// on the simulator (not the step frame) because its address crosses
	// the indirect exec-table call, which would otherwise force a heap
	// allocation per retired instruction.
	entry TraceEntry

	// Uninitialized-read tracking (Options.RecordUninitReads): written is
	// the bitmask of registers written so far, uninit the recorded reads,
	// and uninitSeen deduplicates per (pc, register).
	trackInit  bool
	written    uint64
	uninit     []UninitRead
	uninitSeen map[int]uint64

	// Zero-overhead loop state (the configurable loop option): when
	// loopActive and execution reaches loopEnd, control returns to
	// loopBegin until the count is exhausted — with no branch penalty.
	loopActive bool
	loopBegin  int
	loopEnd    int
	loopCount  uint32
}

// New returns a simulator for the given processor.
func New(p *procgen.Processor) *Simulator {
	s := &Simulator{
		proc: p,
		mem:  make([]byte, p.Config.MemBytes),
		ic:   cache.New(p.Config.ICache),
		dc:   cache.New(p.Config.DCache),
		pipe: pipeline.New(),
	}
	if p.TIE.Ext != nil && p.TIE.Ext.NumCustomRegs > 0 {
		s.tie = tie.NewState(p.TIE.Ext.NumCustomRegs)
	}
	return s
}

// Processor returns the processor the simulator was built for.
func (s *Simulator) Processor() *procgen.Processor { return s.proc }

// Run executes prog to completion and returns its statistics. It is
// RunContext without cancellation.
func (s *Simulator) Run(prog *Program, opts Options) (*Result, error) {
	return s.RunContext(context.Background(), prog, opts)
}

// RunContext executes prog to completion and returns its statistics.
//
// Every runtime failure — memory fault, illegal instruction, watchdog
// expiry, custom-instruction failure, cancellation — is returned as a
// *Fault carrying the faulting site, so callers can errors.As their way
// to the kind, pc, and cycle. Panics inside instruction execution are
// recovered into faults; the simulator never tears down the process.
// (Pre-flight image problems from Program.Validate remain plain errors:
// they describe a malformed image, not a run.)
//
// ctx is checked once per TraceBatchSize retired instructions — the
// same granularity at which trace batches are delivered — so the check
// adds O(1) overhead and cancellation is observed within one batch
// boundary. A cancelled run returns a FaultCancelled fault wrapping
// ctx.Err().
func (s *Simulator) RunContext(ctx context.Context, prog *Program, opts Options) (res *Result, err error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	s.reset(prog)
	if opts.CollectTrace {
		s.trace = make([]TraceEntry, 0, 4096)
	}
	s.sink = opts.TraceSink
	if s.sink != nil {
		if s.batch == nil {
			s.batch = make([]TraceEntry, 0, TraceBatchSize)
		}
		s.batch = s.batch[:0]
	}
	s.probe = opts.RegProbe
	s.trackInit = opts.RecordUninitReads
	if s.trackInit {
		s.uninitSeen = make(map[int]uint64)
	}
	maxCycles := opts.MaxCycles
	if maxCycles == 0 {
		maxCycles = DefaultMaxCycles
	}

	pc := prog.Entry
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, s.site(newFault(FaultPanic, "recovered: %v", r), pc)
		}
	}()

	// Cancellation is polled every TraceBatchSize retirements whether or
	// not a sink is attached, keeping the check off the per-instruction
	// path.
	untilCheck := 0

	for {
		if pc == len(prog.Code) {
			break // fell off the end: normal halt
		}
		if pc < 0 || pc > len(prog.Code) {
			f := newFault(FaultIllegalInstr, "pc %d out of range [0,%d]", pc, len(prog.Code))
			f.Prog, f.Cycle = prog.Name, s.stats.Cycles
			return nil, f
		}
		if s.stats.Cycles > maxCycles {
			return nil, s.site(newFault(FaultWatchdog, "exceeded %d cycles (runaway program?)", maxCycles), pc)
		}
		if untilCheck <= 0 {
			untilCheck = TraceBatchSize
			select {
			case <-ctx.Done():
				f := newFault(FaultCancelled, "run interrupted")
				f.Err = ctx.Err()
				return nil, s.site(f, pc)
			default:
			}
		}
		untilCheck--
		if opts.InjectFault != nil {
			if f := opts.InjectFault(pc, s.stats.Cycles); f != nil {
				f.PC = -1 // the injection point is the site, whatever the hook set
				return nil, s.site(f, pc)
			}
		}
		next, halt, err := s.step(pc, opts.CollectTrace)
		if err != nil {
			return nil, s.site(err, pc)
		}
		if halt {
			break
		}
		pc = next
	}

	if s.sink != nil && len(s.batch) > 0 {
		if err := s.sink(s.batch); err != nil {
			return nil, s.site(err, pc)
		}
		s.batch = s.batch[:0]
	}

	res = &Result{Stats: s.stats, Trace: s.trace, Regs: s.regs, UninitReads: s.uninit}
	if s.tie != nil {
		res.TIE = s.tie.Clone()
	}
	return res, nil
}

// site attaches the faulting site to an error bubbling out of the run
// loop: a *Fault anywhere in the chain gets its program, pc,
// instruction, and cycle filled in (when not already set); any other
// error (e.g. a trace-sink failure) is wrapped with the site as text.
func (s *Simulator) site(err error, pc int) error {
	if f, ok := AsFault(err); ok {
		if f.Prog == "" {
			f.Prog = s.prog.Name
		}
		if f.PC < 0 {
			f.PC = pc
			if pc >= 0 && pc < len(s.prog.Code) {
				f.Instr = s.prog.Code[pc]
			}
			f.Cycle = s.stats.Cycles
		}
		if f == err {
			return f
		}
		return err
	}
	return fmt.Errorf("iss: %s at pc %d: %w", s.prog.Name, pc, err)
}

// UninitReads returns the uninitialized-register reads recorded during
// the most recent Run with Options.RecordUninitReads — including runs
// that ended in an error, for which Run returns no Result (the recorded
// prefix up to the fault is still meaningful to differential tests).
func (s *Simulator) UninitReads() []UninitRead { return s.uninit }

func (s *Simulator) reset(prog *Program) {
	s.prog = prog
	s.plan = prog.Plan(s.proc.TIE)
	s.regs = [isa.NumRegs]uint32{}
	s.regs[0] = haltPC // link register sentinel: top-level ret halts
	for i := range s.mem {
		s.mem[i] = 0
	}
	for _, seg := range prog.Data {
		copy(s.mem[seg.Addr:], seg.Bytes)
	}
	s.ic.Reset()
	s.dc.Reset()
	s.pipe.Reset()
	s.loopActive = false
	s.written = 1 << 0 // a0 holds the halt sentinel from reset
	s.uninit = nil
	s.uninitSeen = nil
	s.stats = Stats{}
	if n := s.proc.TIE.NumInstructions(); n > 0 {
		s.stats.CustomExec = make([]uint64, n)
	}
	if s.tie != nil {
		s.tie.Reset()
	}
	s.trace = nil
}

// step retires the instruction at pc and returns the next pc. All
// static per-instruction metadata — register ports, hazard view, fetch
// address, branch targets, custom-instruction attributes — comes from
// the predecoded plan record; the loop only computes what depends on
// dynamic state.
//
//xtenergy:hotpath
func (s *Simulator) step(pc int, collect bool) (next int, halt bool, err error) {
	rec := &s.plan.Recs[pc]
	in := rec.Instr

	if s.probe != nil {
		s.probe(pc, &s.regs)
	}

	te := &s.entry
	*te = TraceEntry{}
	cycles := 0

	// --- Fetch ---
	if rec.Uncached {
		s.stats.UncachedFetches++
		s.stats.StallCycles += UncachedFetchPenalty
		cycles += UncachedFetchPenalty
		te.Uncached = true
	} else {
		if !s.ic.Access(rec.FetchAddr) {
			s.stats.ICacheMisses++
			pen := s.ic.MissPenalty()
			s.stats.StallCycles += uint64(pen)
			cycles += pen
			te.ICMiss = true
		}
	}

	// --- Interlock detection ---
	stall := s.pipe.Interlock(rec.PUse)
	if stall > 0 {
		s.stats.Interlocks++
		s.stats.StallCycles += uint64(stall)
		cycles += stall
		te.Interlock = true
	}

	// --- Execute ---
	s.stats.Retired++
	s.stats.OpcodeExec[in.Op]++

	if s.trackInit {
		if unread := rec.Use.Reads &^ s.written &^ s.uninitSeen[pc]; unread != 0 {
			s.uninitSeen[pc] |= unread
			for r := 0; r < isa.NumRegs; r++ {
				if unread&(1<<r) != 0 {
					s.uninit = append(s.uninit, UninitRead{PC: pc, Reg: uint8(r)})
				}
			}
		}
		s.written |= rec.Use.Writes
	}

	if in.IsCustom() {
		n, err := s.execCustom(rec, te)
		if err != nil {
			return 0, false, err
		}
		cycles += n
		if err := s.finishEntry(te, pc, in, cycles, collect); err != nil {
			return 0, false, err
		}
		return s.loopBack(pc + 1), false, nil
	}

	// The operand registers are latched unconditionally, exactly as the
	// operand buses do: an out-of-range register encoding faults here,
	// before dispatch, for every base instruction.
	rs := s.regs[in.Rs]
	rt := s.regs[in.Rt]
	te.RsVal, te.RtVal = rs, rt

	fn := execTable[in.Op]
	if fn == nil {
		return 0, false, newFault(FaultIllegalInstr, "unimplemented opcode %s", in.Op.Name())
	}
	r, err := fn(s, rec, pc, rs, rt, te)
	if err != nil {
		return 0, false, err
	}
	cycles += r.cycles
	if err := s.finishEntry(te, pc, in, cycles, collect); err != nil {
		return 0, false, err
	}
	if r.halt {
		return 0, true, nil
	}
	return s.loopBack(r.nextPC), false, nil
}

// loopBack applies the zero-overhead loop option: reaching the loop end
// redirects to the loop begin with no bubble (the hardware tracks the
// addresses in dedicated registers).
//
//xtenergy:hotpath
func (s *Simulator) loopBack(next int) int {
	if s.loopActive && next == s.loopEnd {
		if s.loopCount > 0 {
			s.loopCount--
			return s.loopBegin
		}
		s.loopActive = false
	}
	return next
}

// execCustom executes a TIE instruction and returns its cycle cost. The
// plan record carries the resolved instruction and its predecoded
// immediate; an unresolved record (undefined custom ID) re-queries the
// extension on the cold path so the fault wraps the original error.
func (s *Simulator) execCustom(rec *plan.Rec, te *TraceEntry) (int, error) {
	in := rec.Instr
	ci := rec.CI
	if ci == nil {
		_, err := s.proc.TIE.Instruction(in.CustomID)
		f := newFault(FaultIllegalInstr, "custom instruction not in extension")
		f.Err = err
		return 0, f
	}
	ops := tie.Operands{Rd: in.Rd, Rs: in.Rs, Rt: in.Rt, Imm: in.Imm}
	if ci.ImmOperand {
		// The Rt field carries a 6-bit signed constant decoded by the
		// generated immediate-generation logic (plan.DecodeImm6).
		ops.Imm = rec.SImm
	}
	if ci.ReadsGeneral {
		ops.RsVal = s.regs[in.Rs]
		if !ci.ImmOperand {
			ops.RtVal = s.regs[in.Rt]
		}
		te.RsVal, te.RtVal = ops.RsVal, ops.RtVal
	}
	st := s.tie
	if st == nil {
		st = &tie.State{}
	}
	result, err := runSemantics(ci, st, ops)
	if err != nil {
		return 0, err
	}
	if ci.WritesGeneral {
		s.regs[in.Rd] = result
		te.Result = result
	}

	s.stats.CustomCycles += uint64(ci.Latency)
	s.stats.CustomExec[in.CustomID]++
	if ci.AccessesGeneralRegfile() {
		s.stats.CustomRegfileCycles += uint64(ci.Latency)
	}
	return ci.Latency, nil
}

// runSemantics executes a custom instruction's semantics with a panic
// guard: user-provided TIE semantics that panic surface as a custom-op
// fault instead of killing the process.
func runSemantics(ci *tie.Instruction, st *tie.State, ops tie.Operands) (v uint32, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = newFault(FaultCustomOp, "custom instruction %s panicked: %v", ci.Name, r)
		}
	}()
	return ci.Semantics(st, ops), nil
}

func (s *Simulator) finishEntry(te *TraceEntry, pc int, in isa.Instr, cycles int, collect bool) error {
	s.stats.Cycles += uint64(cycles)
	if !collect && s.sink == nil {
		return nil
	}
	te.PC = int32(pc)
	te.Instr = in
	te.Cycles = uint32(cycles)
	if collect {
		s.trace = append(s.trace, *te)
	}
	if s.sink != nil {
		s.batch = append(s.batch, *te)
		if len(s.batch) == cap(s.batch) {
			err := s.sink(s.batch)
			s.batch = s.batch[:0]
			if err != nil {
				return fmt.Errorf("trace sink: %w", err)
			}
		}
	}
	return nil
}

// --- memory access helpers (little endian, bounds- and alignment-checked) ---

func (s *Simulator) load(addr uint32, size int) (uint32, error) {
	if err := s.checkMem(addr, size); err != nil {
		return 0, err
	}
	switch size {
	case 1:
		return uint32(s.mem[addr]), nil
	case 2:
		return uint32(s.mem[addr]) | uint32(s.mem[addr+1])<<8, nil
	default:
		return uint32(s.mem[addr]) | uint32(s.mem[addr+1])<<8 |
			uint32(s.mem[addr+2])<<16 | uint32(s.mem[addr+3])<<24, nil
	}
}

func (s *Simulator) store(addr uint32, size int, v uint32) error {
	if err := s.checkMem(addr, size); err != nil {
		return err
	}
	switch size {
	case 1:
		s.mem[addr] = byte(v)
	case 2:
		s.mem[addr] = byte(v)
		s.mem[addr+1] = byte(v >> 8)
	default:
		s.mem[addr] = byte(v)
		s.mem[addr+1] = byte(v >> 8)
		s.mem[addr+2] = byte(v >> 16)
		s.mem[addr+3] = byte(v >> 24)
	}
	return nil
}

func (s *Simulator) checkMem(addr uint32, size int) error {
	if addr%uint32(size) != 0 {
		f := newFault(FaultMem, "unaligned %d-byte access", size)
		f.Addr = addr
		return f
	}
	if int(addr)+size > len(s.mem) {
		f := newFault(FaultMem, "access beyond %d-byte RAM", len(s.mem))
		f.Addr = addr
		return f
	}
	return nil
}

// ReadMem copies out sz bytes of simulated memory starting at addr (for
// tests and tools inspecting program results).
func (s *Simulator) ReadMem(addr uint32, sz int) ([]byte, error) {
	if err := s.checkMem(addr, 1); err != nil {
		return nil, err
	}
	if int(addr)+sz > len(s.mem) {
		return nil, fmt.Errorf("iss: read of %d bytes at %#x beyond RAM", sz, addr)
	}
	out := make([]byte, sz)
	copy(out, s.mem[addr:])
	return out, nil
}

// ReadWord returns the 32-bit little-endian word at addr.
func (s *Simulator) ReadWord(addr uint32) (uint32, error) {
	return s.load(addr, 4)
}
