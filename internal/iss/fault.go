package iss

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"xtenergy/internal/isa"
)

// FaultKind classifies a structured simulation failure. The first five
// kinds are raised by the simulator itself; FaultPanic,
// FaultMeasurement, and FaultArtifact extend the taxonomy to the
// surrounding pipeline (worker legs recovered from panics, unusable
// reference measurements, corrupt cached artifacts), so one errors.As
// target covers every failure mode a characterization run can produce.
type FaultKind uint8

const (
	// FaultMem is a data-memory fault: an unaligned or out-of-range
	// load/store. Fault.Addr holds the offending address.
	FaultMem FaultKind = iota
	// FaultIllegalInstr is an illegal or unimplemented instruction,
	// a custom opcode the processor's extension does not define, an
	// option-gated instruction on a processor without the option, or
	// wild control flow (pc outside the program image).
	FaultIllegalInstr
	// FaultWatchdog means the Options.MaxCycles watchdog expired
	// (runaway program).
	FaultWatchdog
	// FaultCustomOp is a failure inside a custom (TIE) instruction:
	// its semantics function panicked.
	FaultCustomOp
	// FaultCancelled means the run was interrupted through its
	// context, either by explicit cancellation or by a deadline.
	// Fault.Err wraps the context error, so errors.Is against
	// context.Canceled / context.DeadlineExceeded works.
	FaultCancelled
	// FaultPanic is a panic recovered outside custom semantics —
	// inside the simulator proper or inside a characterization worker
	// leg — converted to an error instead of tearing down the process.
	FaultPanic
	// FaultMeasurement marks a reference measurement that completed
	// but is unusable (NaN/Inf energy, trace-integrity mismatch, or a
	// failure injected by the chaos harness). Raised by downstream
	// consumers (internal/core, internal/chaos), not by the simulator.
	FaultMeasurement
	// FaultArtifact marks a corrupted or truncated entry in the
	// content-addressed artifact store (internal/memo): the checksum or
	// framing of a cached result did not verify. The store falls back
	// to recomputation, so this fault is observability, not failure —
	// it reaches callers through counters and hooks, never as a
	// request error.
	FaultArtifact
)

// String returns the stable, hyphenated kind name used in reports.
func (k FaultKind) String() string {
	switch k {
	case FaultMem:
		return "mem-fault"
	case FaultIllegalInstr:
		return "illegal-instr"
	case FaultWatchdog:
		return "watchdog"
	case FaultCustomOp:
		return "custom-op"
	case FaultCancelled:
		return "cancelled"
	case FaultPanic:
		return "panic"
	case FaultMeasurement:
		return "bad-measurement"
	case FaultArtifact:
		return "corrupt-artifact"
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Fault is a structured simulator (or pipeline) failure: the kind plus
// the faulting site. Every runtime error returned by Simulator.Run wraps
// a *Fault, so callers can errors.As their way to the faulting program
// counter, instruction, and cycle instead of parsing message strings.
type Fault struct {
	// Kind classifies the fault.
	Kind FaultKind
	// Prog is the name of the program that faulted.
	Prog string
	// PC is the word index of the faulting instruction; -1 when the
	// fault has no meaningful instruction site (e.g. a measurement
	// fault).
	PC int
	// Cycle is the simulated cycle count at the fault.
	Cycle uint64
	// Instr is the faulting instruction (zero value when PC is -1 or
	// out of the program image).
	Instr isa.Instr
	// Addr is the faulting data address (memory faults only).
	Addr uint32
	// Msg is the human-readable detail.
	Msg string
	// Err is the wrapped cause, if any (e.g. a context error); Unwrap
	// exposes it to errors.Is/As.
	Err error
	// Transient marks a fault worth retrying: the same run could
	// plausibly succeed on another attempt (a flaky external oracle,
	// injected by the chaos harness). Deadline-induced cancellations
	// are implicitly transient — see IsTransient.
	Transient bool
}

// Error formats the fault with its site.
func (f *Fault) Error() string {
	var b strings.Builder
	b.WriteString("iss: ")
	if f.Prog != "" {
		b.WriteString(f.Prog)
		b.WriteString(": ")
	}
	fmt.Fprintf(&b, "%s fault", f.Kind)
	if f.PC >= 0 {
		fmt.Fprintf(&b, " at pc %d (%s), cycle %d", f.PC, f.Instr.String(), f.Cycle)
	}
	if f.Kind == FaultMem {
		fmt.Fprintf(&b, ", addr %#x", f.Addr)
	}
	if f.Msg != "" {
		b.WriteString(": ")
		b.WriteString(f.Msg)
	}
	if f.Err != nil {
		fmt.Fprintf(&b, ": %v", f.Err)
	}
	return b.String()
}

// Unwrap exposes the wrapped cause (e.g. context.Canceled).
func (f *Fault) Unwrap() error { return f.Err }

// IsTransient reports whether retrying the run could plausibly succeed:
// explicitly transient faults, plus cancellations caused by a deadline
// (a per-workload timeout under machine load) rather than by an
// explicit cancel.
func (f *Fault) IsTransient() bool {
	if f.Transient {
		return true
	}
	return f.Kind == FaultCancelled && errors.Is(f.Err, context.DeadlineExceeded)
}

// AsFault unwraps err to the innermost *Fault, if any.
func AsFault(err error) (*Fault, bool) {
	var f *Fault
	ok := errors.As(err, &f)
	return f, ok
}

// newFault builds a site-less fault; the simulator's run loop fills in
// the site (program, pc, instruction, cycle) when it propagates one.
func newFault(kind FaultKind, format string, args ...any) *Fault {
	return &Fault{Kind: kind, PC: -1, Msg: fmt.Sprintf(format, args...)}
}
