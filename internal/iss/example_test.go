package iss_test

import (
	"fmt"

	"xtenergy/internal/asm"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
)

// Run executes a program and returns the execution statistics the
// energy macro-model consumes.
func ExampleSimulator_Run() {
	proc, _ := procgen.Generate(procgen.Default(), nil)
	prog, _ := asm.New(proc.TIE).Assemble("demo", `
start:
    movi a2, 5
    movi a3, 0
loop:
    add a3, a3, a2
    addi a2, a2, -1
    bnez a2, loop
    ret
`)
	res, err := iss.New(proc).Run(prog, iss.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("sum = %d, retired = %d\n", res.Regs[3], res.Stats.Retired)
	// Output:
	// sum = 15, retired = 18
}
