package workloads

import (
	"sort"

	"xtenergy/internal/core"
)

// All returns every built-in workload: the characterization suite, the
// Table II applications, the extended validation applications, and the
// Reed-Solomon configurations.
func All() []core.Workload {
	var ws []core.Workload
	ws = append(ws, CharacterizationSuite()...)
	ws = append(ws, Applications()...)
	ws = append(ws, ValidationApplications()...)
	ws = append(ws, ReedSolomonConfigurations()...)
	return ws
}

// ByName finds any built-in workload by name.
func ByName(name string) (core.Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return core.Workload{}, false
}

// Names returns the sorted names of all built-in workloads.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, w := range all {
		out[i] = w.Name
	}
	sort.Strings(out)
	return out
}
