package workloads

import (
	"xtenergy/internal/hwlib"
	"xtenergy/internal/tie"
)

// gfTables builds the GF(2^8) log/antilog tables with generator α = 2.
// exp is doubled in length so exp[log a + log b] needs no modular
// reduction when indexed with a sum < 510.
func gfTables() (logT [256]uint32, expT [512]uint32) {
	x := uint32(1)
	for i := 0; i < 255; i++ {
		expT[i] = x
		logT[x] = uint32(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x100 | gfPoly // reduce modulo the field polynomial
		}
	}
	for i := 255; i < 512; i++ {
		expT[i] = expT[i-255]
	}
	return
}

// rsGenPoly returns the coefficients g[0..deg-1] of the Reed-Solomon
// generator polynomial Π (x - α^i), i = 0..deg-1 (the x^deg coefficient
// is an implicit 1).
func rsGenPoly(deg int) []uint32 {
	g := []uint32{1}
	root := uint32(1) // α^0
	for i := 0; i < deg; i++ {
		next := make([]uint32, len(g)+1)
		for j, c := range g {
			next[j] ^= gfMulByte(c, root)
			next[j+1] ^= c
		}
		g = next
		root = gfMulByte(root, 2) // α^(i+1)
	}
	return g[:deg]
}

// GFMulExtension is the Reed-Solomon choice C2: a single-cycle GF(2^8)
// multiplier built from hardware log/antilog tables.
func GFMulExtension() *tie.Extension {
	return &tie.Extension{
		Name: "gfmul",
		Instructions: []*tie.Instruction{
			{
				Name: "gfmul", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "gf_tab", Cat: hwlib.Table, Width: 8, Entries: 512}, true),
					dp(hwlib.Component{Name: "gf_add", Cat: hwlib.AddSubCmp, Width: 9}, false),
					dp(hwlib.Component{Name: "gf_zero", Cat: hwlib.LogicRedMux, Width: 8}, false),
				},
				Semantics: func(_ *tie.State, op tie.Operands) uint32 {
					return gfMulByte(op.RsVal, op.RtVal)
				},
			},
		},
	}
}

// GFMacExtension is choice C3: setfb latches the LFSR feedback byte into
// a custom register; gfmac computes rs ^ fb*rt in one cycle.
func GFMacExtension() *tie.Extension {
	return &tie.Extension{
		Name:          "gfmac",
		NumCustomRegs: 1,
		Instructions: []*tie.Instruction{
			{
				Name: "setfb", Latency: 1, ReadsGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "gm_fb", Cat: hwlib.CustomRegister, Width: 8}, true),
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					s.Regs[0] = op.RsVal & 0xFF
					return 0
				},
			},
			{
				Name: "gfmac", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "gm_tab", Cat: hwlib.Table, Width: 8, Entries: 512}, true),
					dp(hwlib.Component{Name: "gm_add", Cat: hwlib.AddSubCmp, Width: 9}, false),
					dp(hwlib.Component{Name: "gm_xor", Cat: hwlib.LogicRedMux, Width: 8}, false),
					dp(hwlib.Component{Name: "gm_fb", Cat: hwlib.CustomRegister, Width: 8}, false),
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					return (op.RsVal ^ gfMulByte(s.Regs[0], op.RtVal)) & 0xFF
				},
			},
		},
	}
}

// GFParExtension is choice C4: the generator coefficients live in a
// custom register file (loaded once by setcoef), setfb latches the
// feedback byte, and gfpar computes one full LFSR tap update
// rs ^ fb*g[rt-index] without touching the coefficient in the general
// register file.
func GFParExtension() *tie.Extension {
	return &tie.Extension{
		Name:          "gfpar",
		NumCustomRegs: 9, // fb + 8 generator coefficients
		Instructions: []*tie.Instruction{
			{
				Name: "setfb", Latency: 1, ReadsGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "gp_fb", Cat: hwlib.CustomRegister, Width: 8}, true),
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					s.Regs[0] = op.RsVal & 0xFF
					return 0
				},
			},
			{
				Name: "setcoef", Latency: 1, ReadsGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "gp_coefs", Cat: hwlib.CustomRegister, Width: 64}, true),
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					// rs = coefficient value, rt = coefficient index.
					idx := 1 + int(op.RtVal)%8
					s.Regs[idx] = op.RsVal & 0xFF
					return 0
				},
			},
			{
				Name: "gfpar", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "gp_tab", Cat: hwlib.Table, Width: 8, Entries: 512}, true),
					dp(hwlib.Component{Name: "gp_add", Cat: hwlib.AddSubCmp, Width: 9}, false),
					dp(hwlib.Component{Name: "gp_csa", Cat: hwlib.TIECsa, Width: 16}, false),
					dp(hwlib.Component{Name: "gp_coefs", Cat: hwlib.CustomRegister, Width: 64}, false),
					dp(hwlib.Component{Name: "gp_fb", Cat: hwlib.CustomRegister, Width: 8}, false),
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					// rs = parity byte from the previous tap, rt = tap index.
					idx := 1 + int(op.RtVal)%8
					return (op.RsVal ^ gfMulByte(s.Regs[0], s.Regs[idx])) & 0xFF
				},
			},
		},
	}
}
