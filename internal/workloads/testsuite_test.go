package workloads

import (
	"testing"

	"xtenergy/internal/core"
	"xtenergy/internal/hwlib"
	"xtenergy/internal/iss"
	"xtenergy/internal/procgen"
	"xtenergy/internal/resource"
)

func TestSuiteSize(t *testing.T) {
	suite := CharacterizationSuite()
	if len(suite) != 40 {
		t.Fatalf("suite has %d programs, want 40", len(suite))
	}
	names := map[string]bool{}
	for _, w := range suite {
		if names[w.Name] {
			t.Fatalf("duplicate program name %s", w.Name)
		}
		names[w.Name] = true
	}
}

func TestSuiteAllProgramsRun(t *testing.T) {
	cfg := procgen.Default()
	for _, w := range CharacterizationSuite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			proc, prog, err := w.Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := iss.New(proc).Run(prog, iss.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Cycles < 500 {
				t.Fatalf("program too short to characterize: %d cycles", res.Stats.Cycles)
			}
			if res.Stats.Cycles > 2_000_000 {
				t.Fatalf("program too long for the reference estimator: %d cycles", res.Stats.Cycles)
			}
		})
	}
}

// The suite must cover every macro-model variable: each of the 21
// variables must be nonzero in at least two programs (so no coefficient
// is pinned to a single observation).
func TestSuiteCoversAllVariables(t *testing.T) {
	cfg := procgen.Default()
	counts := make([]int, core.NumVars)
	for _, w := range CharacterizationSuite() {
		proc, prog, err := w.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := iss.New(proc).Run(prog, iss.Options{})
		if err != nil {
			t.Fatal(err)
		}
		vars, err := core.Extract(proc.TIE, &res.Stats)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vars {
			if v != 0 {
				counts[i]++
			}
		}
	}
	for i, c := range counts {
		min := 2
		if i == core.VUncachedFetch {
			min = 1 // only the dedicated uncached program exercises it
		}
		if c < min {
			t.Errorf("variable %s covered by %d programs, want >= %d", core.VarName(i), c, min)
		}
	}
}

// Every custom-hardware category must appear at at least two different
// complexities across the suite (otherwise unit energy and width scaling
// are not separable).
func TestSuiteCoversCategoriesAtMultipleWidths(t *testing.T) {
	cfg := procgen.Default()
	weights := make(map[hwlib.Category]map[float64]bool)
	for _, w := range CharacterizationSuite() {
		if w.Ext == nil {
			continue
		}
		proc, _, err := w.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, comp := range proc.TIE.Components {
			if weights[comp.Cat] == nil {
				weights[comp.Cat] = map[float64]bool{}
			}
			weights[comp.Cat][comp.Complexity()] = true
		}
	}
	for _, cat := range hwlib.Categories() {
		if len(weights[cat]) < 2 {
			t.Errorf("category %s appears at %d complexities, want >= 2", cat, len(weights[cat]))
		}
	}
}

// Specific non-ideal-case programs must actually produce their events in
// quantity.
func TestSuiteEventPrograms(t *testing.T) {
	cfg := procgen.Default()
	run := func(name string) *iss.Stats {
		for _, w := range CharacterizationSuite() {
			if w.Name == name {
				proc, prog, err := w.Build(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := iss.New(proc).Run(prog, iss.Options{})
				if err != nil {
					t.Fatal(err)
				}
				return &res.Stats
			}
		}
		t.Fatalf("program %s not in suite", name)
		return nil
	}
	if st := run("tp12_dcache_stride"); st.DCacheMisses < 5000 {
		t.Errorf("dcache program misses = %d", st.DCacheMisses)
	}
	if st := run("tp13_icache_big"); st.ICacheMisses < 1000 {
		t.Errorf("icache program misses = %d", st.ICacheMisses)
	}
	if st := run("tp14_uncached"); st.UncachedFetches < 1000 {
		t.Errorf("uncached program fetches = %d", st.UncachedFetches)
	}
	if st := run("tp11_interlock"); st.Interlocks < 5000 {
		t.Errorf("interlock program stalls = %d", st.Interlocks)
	}
	if st := run("tp08_branch_taken"); st.ClassCycles[iss.CBranchTaken] < 3*st.ClassCycles[iss.CBranchUntaken] {
		t.Errorf("taken program not taken-dominated: %d vs %d",
			st.ClassCycles[iss.CBranchTaken], st.ClassCycles[iss.CBranchUntaken])
	}
	if st := run("tp09_branch_untaken"); st.ClassCycles[iss.CBranchUntaken] < st.ClassCycles[iss.CBranchTaken] {
		t.Errorf("untaken program not untaken-dominated")
	}
}

// The suite and the applications must not overlap (Table II apps are
// out-of-sample: "different from the test programs used in
// macro-modeling").
func TestSuiteDisjointFromApplications(t *testing.T) {
	suite := map[string]bool{}
	for _, w := range CharacterizationSuite() {
		suite[w.Name] = true
	}
	for _, a := range Applications() {
		if suite[a.Name] {
			t.Fatalf("application %s appears in the characterization suite", a.Name)
		}
	}
}

// Structural variables of a cover program must line up with the
// resource analyzer's view (sanity link between suite and analysis).
func TestCoverProgramStructuralVars(t *testing.T) {
	cfg := procgen.Default()
	var w core.Workload
	for _, cand := range CharacterizationSuite() {
		if cand.Name == "tp15_cover_mult" {
			w = cand
		}
	}
	proc, prog, err := w.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := iss.New(proc).Run(prog, iss.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vars, err := resource.FromStats(proc.TIE, &res.Stats)
	if err != nil {
		t.Fatal(err)
	}
	if vars[hwlib.Multiplier] <= 0 {
		t.Fatal("mult cover program has no multiplier activity")
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	names := map[string]bool{}
	for _, w := range all {
		if names[w.Name] {
			t.Fatalf("duplicate workload name %s", w.Name)
		}
		names[w.Name] = true
	}
	if len(all) != 40+10+6+4 {
		t.Fatalf("registry has %d workloads, want 60", len(all))
	}
	if _, ok := ByName("des"); !ok {
		t.Fatal("ByName failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("bogus name found")
	}
	ns := Names()
	if len(ns) != len(all) {
		t.Fatal("Names length mismatch")
	}
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatal("Names not sorted")
		}
	}
}
