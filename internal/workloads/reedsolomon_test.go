package workloads

import (
	"testing"

	"xtenergy/internal/core"
)

func TestGFTables(t *testing.T) {
	logT, expT := gfTables()
	// exp[log[a]] == a for all nonzero a.
	for a := uint32(1); a < 256; a++ {
		if expT[logT[a]] != a {
			t.Fatalf("exp[log[%d]] = %d", a, expT[logT[a]])
		}
	}
	// The doubled half matches.
	for i := 0; i < 255; i++ {
		if expT[i] != expT[i+255] {
			t.Fatalf("exp doubling broken at %d", i)
		}
	}
	// Table-based multiply agrees with the bitwise reference.
	for a := uint32(1); a < 256; a += 7 {
		for b := uint32(1); b < 256; b += 11 {
			got := expT[logT[a]+logT[b]]
			if want := gfMulByte(a, b); got != want {
				t.Fatalf("gf %d*%d = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestGFMulProperties(t *testing.T) {
	// Commutativity, identity, zero, distributivity over XOR.
	for a := uint32(0); a < 256; a += 5 {
		for b := uint32(0); b < 256; b += 7 {
			if gfMulByte(a, b) != gfMulByte(b, a) {
				t.Fatalf("not commutative at %d,%d", a, b)
			}
			c := (a + 13*b) & 0xFF
			lhs := gfMulByte(a, b^c)
			rhs := gfMulByte(a, b) ^ gfMulByte(a, c)
			if lhs != rhs {
				t.Fatalf("not distributive at %d,%d,%d", a, b, c)
			}
		}
		if gfMulByte(a, 1) != a || gfMulByte(a, 0) != 0 {
			t.Fatalf("identity/zero broken at %d", a)
		}
	}
}

func TestRSGenPoly(t *testing.T) {
	g := rsGenPoly(rsDeg)
	if len(g) != rsDeg {
		t.Fatalf("generator has %d coefficients", len(g))
	}
	for i, c := range g {
		if c == 0 || c > 255 {
			t.Fatalf("coefficient %d = %d", i, c)
		}
	}
	// The generator must vanish at each root α^i: evaluate
	// g(x) = x^deg + Σ g[j] x^j at x = α^i.
	root := uint32(1)
	for i := 0; i < rsDeg; i++ {
		// Horner over GF(256) with the implicit leading 1.
		val := uint32(1)
		for j := rsDeg - 1; j >= 0; j-- {
			val = gfMulByte(val, root) ^ g[j]
		}
		if val != 0 {
			t.Fatalf("generator does not vanish at alpha^%d: %d", i, val)
		}
		root = gfMulByte(root, 2)
	}
}

// All four Reed-Solomon configurations must compute the same parity as
// the Go reference encoder — the custom-instruction variants are
// *implementations*, not approximations.
func TestAllRSConfigurationsAgree(t *testing.T) {
	want := rsEncodeRef(rsMessage(), rsGenPoly(rsDeg))
	for _, w := range ReedSolomonConfigurations() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			_, sim := runApp(t, w)
			got, err := sim.ReadMem(rsOutAddr, rsDeg)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < rsDeg; j++ {
				if uint32(got[j]) != want[j] {
					t.Fatalf("parity[%d] = %#x, want %#x", j, got[j], want[j])
				}
			}
		})
	}
}

func TestRSConfigurationCyclesDecrease(t *testing.T) {
	// More custom hardware -> fewer cycles: C1 > C2 > C3 > C4.
	var prev uint64
	for i, w := range ReedSolomonConfigurations() {
		res, _ := runApp(t, w)
		if i > 0 && res.Stats.Cycles >= prev {
			t.Fatalf("%s cycles %d >= previous %d", w.Name, res.Stats.Cycles, prev)
		}
		prev = res.Stats.Cycles
	}
}

func TestRSConfigurationNames(t *testing.T) {
	want := []string{"rs_base", "rs_gfmul", "rs_gfmac", "rs_gffold"}
	cfgs := ReedSolomonConfigurations()
	for i, w := range cfgs {
		if w.Name != want[i] {
			t.Fatalf("config %d = %s, want %s", i, w.Name, want[i])
		}
	}
	if cfgs[0].Ext != nil {
		t.Fatal("rs_base must be a base-only configuration")
	}
	for _, w := range cfgs[1:] {
		if w.Ext == nil {
			t.Fatalf("%s missing its extension", w.Name)
		}
	}
}

func TestRSCustomConfigsUseCustomHardware(t *testing.T) {
	for _, w := range ReedSolomonConfigurations()[1:] {
		res, _ := runApp(t, w)
		if res.Stats.CustomCycles == 0 {
			t.Fatalf("%s executed no custom instructions", w.Name)
		}
	}
}

var _ = core.Workload{} // keep the core import for helper signatures

func TestSyndromesOfCleanCodewordAreZero(t *testing.T) {
	msg := rsMessage()
	par := rsEncodeRef(msg, rsGenPoly(rsDeg))
	cw := make([]uint32, 0, rsCwLen)
	cw = append(cw, msg...)
	for j := rsDeg - 1; j >= 0; j-- {
		cw = append(cw, par[j])
	}
	for i, s := range rsSyndromesRef(cw) {
		if s != 0 {
			t.Fatalf("syndrome %d of a clean codeword = %#x", i, s)
		}
	}
}

// All four configurations must compute the same (nonzero) syndromes of
// the corrupted codeword, matching the Go reference decoder.
func TestAllRSConfigurationsComputeSameSyndromes(t *testing.T) {
	msg := rsMessage()
	par := rsEncodeRef(msg, rsGenPoly(rsDeg))
	want := rsSyndromesRef(rsCodewordRef(msg, par))
	nonzero := false
	for _, s := range want {
		if s != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("corrupted codeword has zero syndromes; test data degenerate")
	}
	for _, w := range ReedSolomonConfigurations() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			_, sim := runApp(t, w)
			got, err := sim.ReadMem(rsSynAddr, rsDeg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < rsDeg; i++ {
				if uint32(got[i]) != want[i] {
					t.Fatalf("syndrome[%d] = %#x, want %#x", i, got[i], want[i])
				}
			}
		})
	}
}

// After syndrome computation, every configuration corrects the single
// corrupted byte in place: the codeword buffer must equal the clean
// codeword exactly.
func TestAllRSConfigurationsCorrectTheError(t *testing.T) {
	msg := rsMessage()
	par := rsEncodeRef(msg, rsGenPoly(rsDeg))
	clean := make([]uint32, 0, rsCwLen)
	clean = append(clean, msg...)
	for j := rsDeg - 1; j >= 0; j-- {
		clean = append(clean, par[j])
	}
	for _, w := range ReedSolomonConfigurations() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			_, sim := runApp(t, w)
			got, err := sim.ReadMem(rsCwAddr, rsCwLen)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < rsCwLen; i++ {
				if uint32(got[i]) != clean[i] {
					t.Fatalf("codeword[%d] = %#x, want %#x (correction failed)", i, got[i], clean[i])
				}
			}
		})
	}
}
