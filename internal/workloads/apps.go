package workloads

import (
	"fmt"

	"xtenergy/internal/core"
)

// Applications returns the ten application benchmarks of the paper's
// Table II, in table order: Ins sort, Gcd, Alphablend, Add4, Bubsort,
// DES, Accumulate, Drawline, Multi accumulate, Seq mult. Each
// incorporates its own custom instructions, and none of them appears in
// the characterization suite.
func Applications() []core.Workload {
	return []core.Workload{
		InsSort(), Gcd(), Alphablend(), Add4(), Bubsort(),
		DES(), Accumulate(), Drawline(), MultiAccumulate(), SeqMult(),
	}
}

// ApplicationByName returns the named Table II application.
func ApplicationByName(name string) (core.Workload, bool) {
	for _, w := range Applications() {
		if w.Name == name {
			return w, true
		}
	}
	return core.Workload{}, false
}

// Sizes and layout shared with the verification tests.
const (
	insSortN     = 96
	insSortAddr  = 0x1000
	gcdPairs     = 80
	gcdOutAddr   = 0x3000
	blendN       = 320
	blendOutAddr = 0x8000
	add4N        = 400
	add4OutAddr  = 0x8000
	bubsortN     = 64
	bubsortAddr  = 0x1000
	desBlocks    = 8
	desRounds    = 16
	accN         = 600
	accOutAddr   = 0x4000
	macN         = 400
	macOutAddr   = 0x4000
	seqMultN     = 300
	seqOutAddr   = 0x4000
	fbAddr       = 0x8000 // drawline framebuffer (64x64 bytes)
	fbStride     = 64
)

func insSortData() []uint32 {
	v := randWords(insSortN, 41)
	for i := range v {
		v[i] %= 100000 // keep values positive and comparable as signed
	}
	return v
}

// InsSort is insertion sort over 96 words, with the comparison done by
// the custom "sgt" comparator instruction.
func InsSort() core.Workload {
	src := fmt.Sprintf(`start:
    movi a2, %d
    movi a3, %d
    movi a4, 1
i_outer:
    bge a4, a3, i_done
    slli a5, a4, 2
    add a5, a5, a2
    l32i a6, a5, 0      ; key
    mov a7, a4          ; j
i_inner:
    beqz a7, i_insert
    slli a8, a7, 2
    add a8, a8, a2
    l32i a9, a8, -4     ; arr[j-1]
    sgt a10, a9, a6     ; custom comparator
    beqz a10, i_insert
    s32i a9, a8, 0
    addi a7, a7, -1
    j i_inner
i_insert:
    slli a8, a7, 2
    add a8, a8, a2
    s32i a6, a8, 0
    addi a4, a4, 1
    j i_outer
i_done:
    ret
.data %d
%s`, insSortAddr, insSortN, insSortAddr, wordData("arr", insSortData()))
	return core.Workload{Name: "ins_sort", Source: src, Ext: MinMaxExtension()}
}

func gcdData() []uint32 {
	v := randWords(gcdPairs*2, 43)
	for i := range v {
		v[i] = v[i]%100000 + 1
	}
	return v
}

// Gcd computes binary GCDs over 80 pairs using the custom "norm"
// normalization instruction, xor-accumulating the results.
func Gcd() core.Workload {
	src := fmt.Sprintf(`start:
    movi a2, pairs
    movi a3, %d
    movi a12, 0
g_loop:
    l32i a4, a2, 0
    l32i a5, a2, 4
    norm a4, a4, a4
    norm a5, a5, a5
g_inner:
    beq a4, a5, g_one
    bltu a4, a5, g_vbig
    sub a4, a4, a5
    norm a4, a4, a4
    j g_inner
g_vbig:
    sub a5, a5, a4
    norm a5, a5, a5
    j g_inner
g_one:
    xor a12, a12, a4
    addi a2, a2, 8
    addi a3, a3, -1
    bnez a3, g_loop
    movi a6, %d
    s32i a12, a6, 0
    ret
.data 0x1000
%s`, gcdPairs, gcdOutAddr, wordData("pairs", gcdData()))
	return core.Workload{Name: "gcd", Source: src, Ext: NormExtension()}
}

func blendData() (a, b []uint32) {
	return randWords(blendN, 51), randWords(blendN, 52)
}

// Alphablend blends two packed-pixel images with the custom "blend8"
// instruction (alpha factor held in a TIE register).
func Alphablend() core.Workload {
	imga, imgb := blendData()
	src := fmt.Sprintf(`start:
    movi a4, 180
    setalpha a4, a4, a4
    movi a2, imga
    movi a3, imgb
    movi a5, %d
    movi a6, %d
b_loop:
    l32i a7, a2, 0
    l32i a8, a3, 0
    blend8 a9, a7, a8
    s32i a9, a5, 0
    addi a2, a2, 4
    addi a3, a3, 4
    addi a5, a5, 4
    addi a6, a6, -1
    bnez a6, b_loop
    ret
.data 0x1000
%s%s`, blendOutAddr, blendN, wordData("imga", imga), wordData("imgb", imgb))
	return core.Workload{Name: "alphablend", Source: src, Ext: BlendExtension()}
}

func add4Data() (a, b []uint32) {
	return randWords(add4N, 61), randWords(add4N, 62)
}

// Add4 performs packed saturating byte addition of two arrays with the
// custom TIE adder instruction "add4".
func Add4() core.Workload {
	va, vb := add4Data()
	src := fmt.Sprintf(`start:
    movi a2, veca
    movi a3, vecb
    movi a5, %d
    movi a6, %d
q_loop:
    l32i a7, a2, 0
    l32i a8, a3, 0
    add4 a9, a7, a8
    s32i a9, a5, 0
    addi a2, a2, 4
    addi a3, a3, 4
    addi a5, a5, 4
    addi a6, a6, -1
    bnez a6, q_loop
    ret
.data 0x1000
%s%s`, add4OutAddr, add4N, wordData("veca", va), wordData("vecb", vb))
	return core.Workload{Name: "add4", Source: src, Ext: Add4Extension()}
}

func bubsortData() []uint32 {
	v := randWords(bubsortN, 71)
	for i := range v {
		v[i] %= 1000000
	}
	return v
}

// Bubsort is bubble sort over 64 words built on the custom
// compare-select pair pmin/pmax.
func Bubsort() core.Workload {
	src := fmt.Sprintf(`start:
    movi a2, %d
    movi a3, %d
    addi a4, a3, -1
s_outer:
    beqz a4, s_done
    movi a5, 0
    mov a6, a2
s_inner:
    l32i a7, a6, 0
    l32i a8, a6, 4
    pmin a9, a7, a8
    pmax a10, a7, a8
    s32i a9, a6, 0
    s32i a10, a6, 4
    addi a6, a6, 4
    addi a5, a5, 1
    blt a5, a4, s_inner
    addi a4, a4, -1
    j s_outer
s_done:
    ret
.data %d
%s`, bubsortAddr, bubsortN, bubsortAddr, wordData("arr", bubsortData()))
	return core.Workload{Name: "bubsort", Source: src, Ext: MinMaxExtension()}
}

func desData() (blocks, keys []uint32) {
	return randWords(desBlocks*2, 81), randWords(desRounds, 82)
}

// DES runs a 16-round Feistel cipher over 8 blocks with the custom
// hardware S-box ("dsbox") and round permutation ("dperm").
func DES() core.Workload {
	blocks, keys := desData()
	src := fmt.Sprintf(`start:
    movi a2, blocks
    movi a3, %d
d_blk:
    l32i a4, a2, 0      ; L
    l32i a5, a2, 4      ; R
    movi a6, keys
    movi a7, %d
d_round:
    l32i a8, a6, 0
    xor a9, a5, a8
    dperm a10, a9, a8
    dsbox a11, a10, a4  ; f(R,K) ^ L
    mov a4, a5
    mov a5, a11
    addi a6, a6, 4
    addi a7, a7, -1
    bnez a7, d_round
    s32i a4, a2, 0
    s32i a5, a2, 4
    addi a2, a2, 8
    addi a3, a3, -1
    bnez a3, d_blk
    ret
.data 0x1000
%s%s`, desBlocks, desRounds, wordData("blocks", blocks), wordData("keys", keys))
	return core.Workload{Name: "des", Source: src, Ext: DESExtension()}
}

func accData() []uint32 {
	v := randWords(accN, 91)
	for i := range v {
		v[i] %= 1 << 20
	}
	return v
}

// Accumulate sums a 600-element array into the TIE accumulator with the
// custom "acc" instruction.
func Accumulate() core.Workload {
	src := fmt.Sprintf(`start:
    clracc a1, a1, a1
    movi a2, arr
    movi a3, %d
a_loop:
    l32i a4, a2, 0
    acc a4, a4, a4
    addi a2, a2, 4
    addi a3, a3, -1
    bnez a3, a_loop
    rdacc a5, a0, a0    ; low word  (rt field = 0)
    rdacc a6, a0, a1    ; high word (rt field != 0)
    movi a7, %d
    s32i a5, a7, 0
    s32i a6, a7, 4
    ret
.data 0x1000
%s`, accN, accOutAddr, wordData("arr", accData()))
	return core.Workload{Name: "accumulate", Source: src, Ext: MACExtension()}
}

// drawSegments returns the endpoints of the line segments drawn by the
// Drawline benchmark, packed as x0,y0,x1,y1 quadruples within a 64x64
// framebuffer.
func drawSegments() []uint32 {
	g := newLCG(95)
	segs := make([]uint32, 0, 4*12)
	for i := 0; i < 12; i++ {
		segs = append(segs, g.nextN(64), g.nextN(64), g.nextN(64), g.nextN(64))
	}
	return segs
}

// Drawline rasterizes 12 Bresenham line segments into a byte
// framebuffer, using the custom "absd" absolute-difference instruction.
func Drawline() core.Workload {
	src := fmt.Sprintf(`start:
    movi a2, segs
    movi a3, 12
w_seg:
    l32i a4, a2, 0      ; x0
    l32i a5, a2, 4      ; y0
    l32i a6, a2, 8      ; x1
    l32i a7, a2, 12     ; y1
    absd a8, a6, a4     ; dx = |x1-x0|
    absd a9, a7, a5
    neg a9, a9          ; dy = -|y1-y0|
    movi a10, 1
    blt a4, a6, w_sx
    movi a10, -1
w_sx:
    movi a11, 1
    blt a5, a7, w_sy
    movi a11, -1
w_sy:
    add a12, a8, a9     ; err = dx + dy
w_plot:
    slli a13, a5, 6     ; y*64
    add a13, a13, a4
    movi a14, %d
    add a13, a13, a14
    movi a14, 1
    s8i a14, a13, 0
    bne a4, a6, w_go
    beq a5, a7, w_next
w_go:
    slli a13, a12, 1    ; e2 = 2*err
    blt a13, a9, w_skipx
    add a12, a12, a9
    add a4, a4, a10
w_skipx:
    blt a8, a13, w_skipy
    add a12, a12, a8
    add a5, a5, a11
w_skipy:
    j w_plot
w_next:
    addi a2, a2, 16
    addi a3, a3, -1
    bnez a3, w_seg
    ret
.data 0x1000
%s`, fbAddr, wordData("segs", drawSegments()))
	return core.Workload{Name: "drawline", Source: src, Ext: NormExtension()}
}

func macVectors() (a, b []uint32) {
	va := randWords(macN, 96)
	vb := randWords(macN, 97)
	for i := range va {
		va[i] &= 0xFFFF
		vb[i] &= 0xFFFF
	}
	return va, vb
}

// MultiAccumulate computes four chunked dot products with the custom
// 16-bit multiply-accumulate instruction "mac16".
func MultiAccumulate() core.Workload {
	va, vb := macVectors()
	src := fmt.Sprintf(`start:
    movi a9, %d         ; result cursor
    movi a2, veca
    movi a3, vecb
    movi a11, 4         ; chunks
m_chunk:
    clracc a1, a1, a1
    movi a4, %d         ; chunk length
m_loop:
    l32i a5, a2, 0
    l32i a6, a3, 0
    mac16 a5, a5, a6
    addi a2, a2, 4
    addi a3, a3, 4
    addi a4, a4, -1
    bnez a4, m_loop
    rdacc a7, a0, a0
    s32i a7, a9, 0
    addi a9, a9, 4
    addi a11, a11, -1
    bnez a11, m_chunk
    ret
.data 0x1000
%s%s`, macOutAddr, macN/4, wordData("veca", va), wordData("vecb", vb))
	return core.Workload{Name: "multi_accumulate", Source: src, Ext: MACExtension()}
}

func seqMultData() (a, b []uint32) {
	return randWords(seqMultN, 98), randWords(seqMultN, 99)
}

// SeqMult multiplies two arrays elementwise on the 4-cycle sequential
// TIE multiplier ("smul"/"smulh"), xor-accumulating a 64-bit checksum.
func SeqMult() core.Workload {
	va, vb := seqMultData()
	src := fmt.Sprintf(`start:
    movi a2, veca
    movi a3, vecb
    movi a4, %d
    movi a10, 0
    movi a11, 0
x_loop:
    l32i a5, a2, 0
    l32i a6, a3, 0
    smul a7, a5, a6     ; 4-cycle sequential multiply (low)
    smulh a8, a0, a0    ; high word from TIE register
    xor a10, a10, a7
    xor a11, a11, a8
    addi a2, a2, 4
    addi a3, a3, 4
    addi a4, a4, -1
    bnez a4, x_loop
    movi a9, %d
    s32i a10, a9, 0
    s32i a11, a9, 4
    ret
.data 0x1000
%s%s`, seqMultN, seqOutAddr, wordData("veca", va), wordData("vecb", vb))
	return core.Workload{Name: "seq_mult", Source: src, Ext: SeqMultExtension()}
}
