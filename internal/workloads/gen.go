package workloads

import (
	"fmt"
	"strings"
)

// lcg is the deterministic generator used for synthetic program data, so
// every workload is reproducible.
type lcg struct{ state uint32 }

func newLCG(seed uint32) *lcg { return &lcg{state: seed*2654435761 + 1} }

func (g *lcg) next() uint32 {
	g.state = g.state*1664525 + 1013904223
	return g.state
}

// nextN returns a value in [0, n).
func (g *lcg) nextN(n uint32) uint32 { return g.next() % n }

// randWords returns n deterministic pseudo-random words.
func randWords(n int, seed uint32) []uint32 {
	g := newLCG(seed)
	out := make([]uint32, n)
	for i := range out {
		out[i] = g.next()
	}
	return out
}

// wordData renders a labeled .word block (eight words per line).
func wordData(label string, vals []uint32) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", label)
	for i := 0; i < len(vals); i += 8 {
		b.WriteString(".word ")
		for j := i; j < i+8 && j < len(vals); j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", int32(vals[j]))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// byteData renders a labeled .byte block.
func byteData(label string, vals []uint32) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", label)
	for i := 0; i < len(vals); i += 16 {
		b.WriteString(".byte ")
		for j := i; j < i+16 && j < len(vals); j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", vals[j]&0xFF)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// arithBlock generates n register-to-register instructions over the
// scratch registers a16..a27 with a controllable opcode mix. mix selects
// the flavor: "alu", "shift", "mul", or "blend" (all of them).
func arithBlock(n int, seed uint32, mix string) string {
	g := newLCG(seed)
	reg := func() string { return fmt.Sprintf("a%d", 16+g.nextN(12)) }
	var ops []string
	switch mix {
	case "alu":
		ops = []string{"add", "sub", "and", "or", "xor", "min", "max", "slt", "moveqz"}
	case "shift":
		ops = []string{"sll", "srl", "sra", "slli", "srli", "srai"}
	case "mul":
		ops = []string{"mul", "mulh", "mulhu", "add"}
	default:
		ops = []string{"add", "sub", "and", "or", "xor", "sll", "srl", "mul", "min", "maxu", "abs", "neg"}
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		op := ops[g.nextN(uint32(len(ops)))]
		switch op {
		case "slli", "srli", "srai":
			fmt.Fprintf(&b, "    %s %s, %s, %d\n", op, reg(), reg(), 1+g.nextN(30))
		case "abs", "neg":
			fmt.Fprintf(&b, "    %s %s, %s\n", op, reg(), reg())
		default:
			fmt.Fprintf(&b, "    %s %s, %s, %s\n", op, reg(), reg(), reg())
		}
	}
	return b.String()
}

// seedScratch emits code to give the scratch registers a16..a27 varied
// initial values.
func seedScratch(seed uint32) string {
	g := newLCG(seed)
	var b strings.Builder
	for r := 16; r < 28; r++ {
		fmt.Fprintf(&b, "    movi a%d, %d\n", r, int32(g.next()%100000)-50000)
	}
	return b.String()
}

// loopAround wraps a body in a counted loop using a15 as the counter.
func loopAround(label string, iters int, body string) string {
	return fmt.Sprintf(`    movi a15, %d
%s:
%s    addi a15, a15, -1
    bnez a15, %s
`, iters, label, body, label)
}
