package workloads_test

import (
	"testing"

	"xtenergy/internal/procgen"
	"xtenergy/internal/workloads"
	"xtenergy/internal/xlint"
)

// TestWorkloadsLintClean sweeps the static analyzer over every
// registered workload: the corpus must analyze with no finding at
// warning severity or above. Notes (guaranteed interlocks) are allowed —
// several kernels deliberately keep a load-use pair when unrolling would
// cost more than the stall.
//
// The characterization suite is exempt from the two dataflow checks:
// its stress kernels intentionally write ALU-toggling results nobody
// reads and read reset-zero scratch registers (defined behavior on this
// core — the register file resets to zero). Every structural check
// (operand ranges, TIE validity, control-flow targets, option gating,
// reachability) still applies to them.
func TestWorkloadsLintClean(t *testing.T) {
	cfg := procgen.Default()
	stress := make(map[string]bool)
	for _, w := range workloads.CharacterizationSuite() {
		stress[w.Name] = true
	}
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			proc, prog, err := w.Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var opts []xlint.Option
			if stress[w.Name] {
				opts = append(opts, xlint.Disable("dead-write", "uninit-read"))
			}
			rep := xlint.Analyze(prog, proc, opts...)
			for _, f := range rep.Findings {
				if f.Sev >= xlint.SevWarn {
					t.Errorf("%s", f)
				}
			}
		})
	}
}
