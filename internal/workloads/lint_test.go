package workloads_test

import (
	"testing"

	"xtenergy/internal/procgen"
	"xtenergy/internal/workloads"
	"xtenergy/internal/xlint"
)

// TestWorkloadsLintClean sweeps the static analyzer over every
// registered workload: the corpus must analyze with no finding at
// warning severity or above. Notes (guaranteed interlocks) are allowed —
// several kernels deliberately keep a load-use pair when unrolling would
// cost more than the stall.
//
// Exemptions come from the workload's own LintExempt annotation, set at
// its definition site (the characterization stress kernels exempt the
// two dataflow checks their toggling patterns intentionally violate).
func TestWorkloadsLintClean(t *testing.T) {
	cfg := procgen.Default()
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			proc, prog, err := w.Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var opts []xlint.Option
			if len(w.LintExempt) > 0 {
				if err := xlint.ValidateCodes(w.LintExempt); err != nil {
					t.Fatalf("bad LintExempt annotation: %v", err)
				}
				opts = append(opts, xlint.Disable(w.LintExempt...))
			}
			rep := xlint.Analyze(prog, proc, opts...)
			for _, f := range rep.Findings {
				if f.Sev >= xlint.SevWarn {
					t.Errorf("%s", f)
				}
			}
		})
	}
}
