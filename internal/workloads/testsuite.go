package workloads

import (
	"fmt"

	"xtenergy/internal/core"
	"xtenergy/internal/hwlib"
)

// CharacterizationSuite returns the test programs used to build the
// energy macro-model (the suite behind the paper's Fig. 3). Regression
// characterization is in situ, so the requirement is diversity: the
// suite covers the six base instruction classes, the four non-ideal
// cases, custom-to-base side effects, and all ten custom-hardware
// library categories — each category at several widths, latencies and
// densities so that the 21 coefficients are well identified.
//
// The paper uses 25 Tensilica benchmark programs; our synthetic programs
// are individually less diverse, so the suite holds 40 (14 base-only, 10
// cover, 10 width-rotated hybrids, 5 density variants, 1 mixed) to keep
// the regression comfortably over-determined. See EXPERIMENTS.md.
// stressExempt marks a characterization stress kernel's intentional
// dataflow violations: these programs write ALU-toggling results nobody
// reads and read reset-zero scratch registers (defined behavior on this
// core — the register file resets to zero). Only the two dataflow codes
// are exempted; every structural check still applies.
var stressExempt = []string{"dead-write", "uninit-read"}

func CharacterizationSuite() []core.Workload {
	ws := []core.Workload{
		tpALUMix(), tpALUDep(), tpShift(), tpMul(),
		tpLoadStream(), tpStoreStream(), tpMemcpy(),
		tpBranchTaken(), tpBranchUntaken(), tpCalls(),
		tpInterlock(), tpDCacheStride(), tpICacheBig(), tpUncached(),
	}
	ws = append(ws, coverPrograms()...)
	ws = append(ws, hybridPrograms()...)
	ws = append(ws, densityPrograms()...)
	ws = append(ws, tpMixedCustom())
	return ws
}

func tpALUMix() core.Workload {
	src := "start:\n" + seedScratch(11) +
		loopAround("l_mix", 150, arithBlock(48, 101, "alu")) +
		"    ret\n"
	return core.Workload{Name: "tp01_alu_mix", Source: src, LintExempt: stressExempt}
}

func tpALUDep() core.Workload {
	// A large straight-line body (~18 KB of code): this program carries
	// both an ALU-blend mix and instruction-cache capacity misses, so the
	// icache-miss coefficient is not anchored by tp13 alone.
	src := "start:\n" + seedScratch(12) +
		loopAround("l_dep", 6, arithBlock(4600, 202, "blend")) +
		"    ret\n"
	return core.Workload{Name: "tp02_alu_blend", Source: src, LintExempt: stressExempt}
}

func tpShift() core.Workload {
	src := "start:\n" + seedScratch(13) +
		loopAround("l_sh", 140, arithBlock(40, 303, "shift")) +
		"    ret\n"
	return core.Workload{Name: "tp03_shift", Source: src, LintExempt: stressExempt}
}

func tpMul() core.Workload {
	src := "start:\n" + seedScratch(14) +
		loopAround("l_mu", 110, arithBlock(36, 404, "mul")) +
		"    ret\n"
	return core.Workload{Name: "tp04_mul", Source: src, LintExempt: stressExempt}
}

func tpLoadStream() core.Workload {
	src := fmt.Sprintf(`start:
    movi a2, arr
    movi a3, 240
l_ld:
    l32i a4, a2, 0
    l32i a5, a2, 4
    l32i a6, a2, 8
    l32i a7, a2, 12
    l16ui a8, a2, 16
    l8ui a9, a2, 20
    add a10, a4, a5
    add a10, a10, a6
    addi a2, a2, 24
    addi a3, a3, -1
    bnez a3, l_ld
    movi a15, 18
l_rep:
    movi a2, arr
    movi a3, 240
l_ld2:
    l32i a4, a2, 0
    l32i a5, a2, 12
    addi a2, a2, 24
    addi a3, a3, -1
    bnez a3, l_ld2
    addi a15, a15, -1
    bnez a15, l_rep
    ret
.data 0x1000
%s`, wordData("arr", randWords(1500, 7)))
	return core.Workload{Name: "tp05_load_stream", Source: src, LintExempt: stressExempt}
}

func tpStoreStream() core.Workload {
	src := `start:
    movi a2, 0x2000
    movi a4, 12345
    movi a5, 777
    movi a15, 16
l_rep:
    movi a2, 0x2000
    movi a3, 300
l_st:
    s32i a4, a2, 0
    s32i a5, a2, 4
    s16i a4, a2, 8
    s8i a5, a2, 10
    add a4, a4, a5
    addi a2, a2, 12
    addi a3, a3, -1
    bnez a3, l_st
    addi a15, a15, -1
    bnez a15, l_rep
    ret
`
	return core.Workload{Name: "tp06_store_stream", Source: src, LintExempt: stressExempt}
}

func tpMemcpy() core.Workload {
	// Source (12 KB) plus destination (12 KB) exceed the 16 KB D-cache,
	// so later passes keep missing: a second anchor for the dcache-miss
	// coefficient besides tp12.
	src := fmt.Sprintf(`start:
    movi a15, 14
l_rep:
    movi a2, src_a
    movi a3, 0x9000
    movi a4, 1536
l_cp:
    l32i a5, a2, 0
    l32i a6, a2, 4
    s32i a5, a3, 0
    s32i a6, a3, 4
    addi a2, a2, 8
    addi a3, a3, 8
    addi a4, a4, -1
    bnez a4, l_cp
    addi a15, a15, -1
    bnez a15, l_rep
    ret
.data 0x1000
%s`, wordData("src_a", randWords(3072, 9)))
	return core.Workload{Name: "tp07_memcpy", Source: src, LintExempt: stressExempt}
}

func tpBranchTaken() core.Workload {
	body := ""
	for i := 0; i < 16; i++ {
		body += fmt.Sprintf("    beq a16, a16, t%d\n    nop\nt%d:\n    addi a17, a17, 1\n", i, i)
	}
	src := "start:\n    movi a16, 5\n    movi a17, 0\n" +
		loopAround("l_bt", 250, body) + "    ret\n"
	return core.Workload{Name: "tp08_branch_taken", Source: src, LintExempt: stressExempt}
}

func tpBranchUntaken() core.Workload {
	body := ""
	for i := 0; i < 20; i++ {
		body += fmt.Sprintf("    bne a16, a16, u%d\n    addi a17, a17, 3\nu%d:\n", i, i)
	}
	src := "start:\n    movi a16, 5\n    movi a17, 0\n" +
		loopAround("l_bu", 240, body) + "    ret\n"
	return core.Workload{Name: "tp09_branch_untaken", Source: src, LintExempt: stressExempt}
}

func tpCalls() core.Workload {
	src := `start:
    movi a14, 400
    movi a16, 1
    movi a17, 2
l_call:
    call f1
    call f2
    call f1
    j l_j1
l_j1:
    j l_j2
l_j2:
    addi a14, a14, -1
    bnez a14, l_call
    j done
f1:
    add a16, a16, a17
    xor a17, a17, a16
    jx a0
.uncached
f2:
    sub a17, a17, a16
    slli a16, a16, 1
    srli a16, a16, 1
    jx a0
.cached
done:
`
	return core.Workload{Name: "tp10_calls", Source: src, LintExempt: stressExempt}
}

func tpInterlock() core.Workload {
	src := fmt.Sprintf(`start:
    movi a15, 120
l_rep:
    movi a2, arr
    movi a3, 60
l_il:
    l32i a4, a2, 0
    add a5, a4, a4      ; load-use interlock
    l32i a6, a2, 4
    sub a7, a6, a5      ; load-use interlock
    mul a8, a7, a5
    add a9, a8, a8      ; mult interlock
    addi a2, a2, 8
    addi a3, a3, -1
    bnez a3, l_il
    addi a15, a15, -1
    bnez a15, l_rep
    ret
.data 0x1000
%s`, wordData("arr", randWords(128, 21)))
	return core.Workload{Name: "tp11_interlock", Source: src, LintExempt: stressExempt}
}

func tpDCacheStride() core.Workload {
	// Walks 96 KB with a cache-line stride: far beyond the 16 KB D-cache,
	// so every pass misses throughout.
	src := `start:
    movi a15, 7
l_rep:
    movi a2, 0x4000
    movi a3, 3072
l_dc:
    l32i a4, a2, 0
    add a5, a5, a4
    s32i a5, a2, 4
    addi a2, a2, 32
    addi a3, a3, -1
    bnez a3, l_dc
    addi a15, a15, -1
    bnez a15, l_rep
    ret
`
	return core.Workload{Name: "tp12_dcache_stride", Source: src, LintExempt: stressExempt}
}

func tpICacheBig() core.Workload {
	// A 5600-instruction straight-line body (~22 KB of code) looped a few
	// times: the 16 KB I-cache thrashes with capacity misses.
	src := "start:\n" + seedScratch(15) +
		loopAround("l_ic", 5, arithBlock(5600, 505, "blend")) +
		"    ret\n"
	return core.Workload{Name: "tp13_icache_big", Source: src, LintExempt: stressExempt}
}

func tpUncached() core.Workload {
	src := `start:
    movi a16, 900
    movi a17, 3
    j l_unc
.uncached
l_unc:
    add a18, a17, a16
    xor a19, a18, a17
    sub a17, a18, a19
    or a20, a17, a16
    addi a16, a16, -1
    bnez a16, l_unc
.cached
    ret
`
	return core.Workload{Name: "tp14_uncached", Source: src, LintExempt: stressExempt}
}

// coverPrograms builds the ten custom-hardware characterization
// programs. Extension i exercises three categories (heavy/medium/light,
// see makeCoverExt), and each program runs two loops with different
// custom-instruction densities, base-instruction mixes, and iteration
// counts, so the regression can separate the structural coefficients
// from each other and from the instruction-level variables.
func coverPrograms() []core.Workload {
	var out []core.Workload
	for i := 0; i < hwlib.NumCategories; i++ {
		ext := makeCoverExt(i, 0)
		iters1 := 170 + 41*i
		iters2 := 110 + 29*((i+5)%hwlib.NumCategories)
		body1 := `    xa a18, a16, a17
    add a19, a18, a16
    j c_hop
c_hop:
    xa a20, a19, a18
    xb a21, a20, a17
    bne a20, a20, c_nt
c_nt:
    xor a16, a21, a20
    addi a17, a17, 7
`
		body2 := `    l32i a22, a2, 0
    xc a23, a22, a16
    add a16, a16, a23
    xb a24, a16, a22
    s32i a24, a2, 4
    addi a2, a2, 8
    blt a2, a3, k_wrap
    movi a2, arr
k_wrap:
`
		src := fmt.Sprintf(`start:
    movi a16, %d
    movi a17, %d
    movi a2, arr
    movi a3, arr+1000
%s%s    ret
.data 0x1000
%s`,
			1200+97*i, 500+13*i,
			loopAround("l_cov1", iters1, body1),
			loopAround("l_cov2", iters2, body2),
			wordData("arr", randWords(256, uint32(300+i))))
		out = append(out, core.Workload{
			Name:       fmt.Sprintf("tp%02d_cover_%s", 15+i, catSlug(hwlib.Category(i))),
			Source:     src,
			Ext:        ext,
			LintExempt: stressExempt,
		})
	}
	return out
}

// hybridPrograms reuses the cover categories with rotated width tiers
// (variant 1) and inverted instruction densities: the light instruction
// dominates and the loop mixes in stores, multiplies and untaken
// branches, so the hybrid rows are far from collinear with the cover
// rows.
func hybridPrograms() []core.Workload {
	var out []core.Workload
	for i := 0; i < hwlib.NumCategories; i++ {
		ext := makeCoverExt(i, 1)
		iters1 := 140 + 31*((i+4)%hwlib.NumCategories)
		iters2 := 90 + 19*i
		body1 := `    xc a18, a16, a17
    mul a19, a18, a16
    xc a20, a19, a18
    xc a21, a20, a17
    bne a21, a21, h_skip
    sub a16, a21, a20
h_skip:
    addi a17, a17, 3
`
		body2 := `    l32i a22, a2, 0
    xb a23, a22, a16
    j h_hop
h_hop:
    xa a24, a16, a22
    s32i a24, a2, 4
    s32i a23, a2, 8
    addi a2, a2, 12
    blt a2, a3, h_wrap
    movi a2, arr
h_wrap:
`
		src := fmt.Sprintf(`start:
    movi a16, %d
    movi a17, %d
    movi a2, arr
    movi a3, arr+1200
%s%s    ret
.data 0x1000
%s`,
			800+53*i, 250+29*i,
			loopAround("h_l1", iters1, body1),
			loopAround("h_l2", iters2, body2),
			wordData("arr", randWords(320, uint32(600+i))))
		out = append(out, core.Workload{
			Name:       fmt.Sprintf("tp%02d_hybrid_%s", 25+i, catSlug(hwlib.Category(i))),
			Source:     src,
			Ext:        ext,
			LintExempt: stressExempt,
		})
	}
	return out
}

// densityPrograms varies the custom-instruction density from back-to-back
// to sparse, on extensions whose primary latencies differ, pinning down
// the custom-side-effect (per-cycle) versus per-instruction split.
func densityPrograms() []core.Workload {
	specs := []struct {
		name    string
		extIdx  int
		variant int
		body    string
		iters   int
	}{
		{"tp35_dense_custom", 2, 0, `    xa a18, a16, a17
    xa a19, a18, a16
    j d35_hop
d35_hop:
    xa a20, a19, a18
    xb a21, a20, a19
    xb a22, a21, a20
    xc a16, a22, a21
`, 300},
		{"tp36_sparse_custom", 5, 1, arithBlock(18, 909, "alu") + `    xa a18, a16, a17
` + arithBlock(14, 910, "alu"), 160},
		{"tp37_memheavy_custom", 8, 0, `    l32i a18, a2, 0
    l32i a19, a2, 4
    xa a20, a18, a19
    bne a18, a18, d_nt37
d_nt37:
    s32i a20, a2, 8
    addi a2, a2, 12
    blt a2, a3, d_wrap
    movi a2, arr
d_wrap:
`, 420},
		{"tp38_branchy_custom", 1, 1, `    xb a18, a16, a17
    beq a18, a16, d_nt
    addi a17, a17, 1
d_nt:
    xc a19, a17, a18
    bnez a19, d_t
    nop
d_t:
    add a16, a16, a19
`, 260},
		{"tp39_longlat_custom", 9, 0, `    xa a18, a16, a17
    add a19, a18, a16
    xa a20, a19, a17
    xor a16, a20, a19
`, 340},
	}
	var out []core.Workload
	for _, sp := range specs {
		ext := makeCoverExt(sp.extIdx, sp.variant)
		src := fmt.Sprintf(`start:
    movi a16, 3111
    movi a17, 271
    movi a2, arr
    movi a3, arr+900
%s    ret
.data 0x1000
%s`,
			loopAround("d_loop", sp.iters, sp.body),
			wordData("arr", randWords(240, 777)))
		out = append(out, core.Workload{Name: sp.name, Source: src, Ext: ext, LintExempt: stressExempt})
	}
	return out
}

func catSlug(cat hwlib.Category) string {
	slugs := [hwlib.NumCategories]string{
		"mult", "addsub", "logic", "shifter", "custreg",
		"tiemult", "tiemac", "tieadd", "tiecsa", "table",
	}
	return slugs[cat]
}

func tpMixedCustom() core.Workload {
	src := fmt.Sprintf(`start:
    movi a3, arr+1000
    movi a16, 4021
    movi a17, 917
    movi a2, arr
    movi a15, 260
l_mx:
    l32i a18, a2, 0
    xmix1 a19, a18, a16
    xmix2 a20, a19, a17
    add a16, a16, a20
    xmix1 a21, a17, a19
    s32i a21, a2, 4
    addi a2, a2, 8
    blt a2, a3, l_keep
    movi a2, arr
l_keep:
    addi a15, a15, -1
    bnez a15, l_mx
    ret
.data 0x1000
%s`, wordData("arr", randWords(256, 33)))
	return core.Workload{Name: "tp40_mixed_custom", Source: src, Ext: mixedCoverExtension(), LintExempt: stressExempt}
}
