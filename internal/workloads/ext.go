// Package workloads provides the program suite of the reproduction: the
// characterization test programs (25, as in the paper's Fig. 3), the ten
// application benchmarks of Table II, and the Reed-Solomon kernel with
// four custom-instruction choices of Fig. 4 — all written in XT32
// assembly with TIE extensions built from the custom hardware library.
package workloads

import (
	"math/bits"

	"xtenergy/internal/hwlib"
	"xtenergy/internal/tie"
)

// gfPoly is the GF(2^8) reduction polynomial used by the Reed-Solomon
// workloads (x^8+x^4+x^3+x^2+1).
const gfPoly = 0x1D

// gfMulByte multiplies two GF(2^8) elements.
func gfMulByte(a, b uint32) uint32 {
	a &= 0xFF
	b &= 0xFF
	var p uint32
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a = (a << 1) & 0xFF
		if hi != 0 {
			a ^= gfPoly
		}
		b >>= 1
	}
	return p
}

func dp(c hwlib.Component, onBus bool) tie.DatapathElem {
	return tie.DatapathElem{Component: c, OnBus: onBus}
}

// MinMaxExtension returns the sorting extension: pmin/pmax single-cycle
// compare-select instructions (comparator + mux latched off the operand
// buses).
func MinMaxExtension() *tie.Extension {
	return &tie.Extension{
		Name: "minmax",
		Instructions: []*tie.Instruction{
			{
				Name: "pmin", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "mm_cmp", Cat: hwlib.AddSubCmp, Width: 32}, true),
					dp(hwlib.Component{Name: "mm_mux", Cat: hwlib.LogicRedMux, Width: 32}, false),
				},
				Semantics: func(_ *tie.State, op tie.Operands) uint32 {
					if int32(op.RsVal) < int32(op.RtVal) {
						return op.RsVal
					}
					return op.RtVal
				},
			},
			{
				Name: "pmax", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "mm_cmp", Cat: hwlib.AddSubCmp, Width: 32}, true),
					dp(hwlib.Component{Name: "mm_mux", Cat: hwlib.LogicRedMux, Width: 32}, false),
				},
				Semantics: func(_ *tie.State, op tie.Operands) uint32 {
					if int32(op.RsVal) > int32(op.RtVal) {
						return op.RsVal
					}
					return op.RtVal
				},
			},
			{
				Name: "sgt", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "mm_cmp", Cat: hwlib.AddSubCmp, Width: 32}, true),
				},
				Semantics: func(_ *tie.State, op tie.Operands) uint32 {
					if int32(op.RsVal) > int32(op.RtVal) {
						return 1
					}
					return 0
				},
			},
		},
	}
}

// NormExtension returns the GCD helper extension: norm computes
// rs >> trailing_zeros(rs) in one cycle (priority logic + barrel
// shifter), and absd computes |rs - rt|.
func NormExtension() *tie.Extension {
	return &tie.Extension{
		Name: "norm",
		Instructions: []*tie.Instruction{
			{
				Name: "norm", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "nm_pri", Cat: hwlib.LogicRedMux, Width: 32}, true),
					dp(hwlib.Component{Name: "nm_shift", Cat: hwlib.Shifter, Width: 32}, false),
				},
				Semantics: func(_ *tie.State, op tie.Operands) uint32 {
					v := op.RsVal
					if v == 0 {
						return 0
					}
					return v >> uint(bits.TrailingZeros32(v))
				},
			},
			{
				Name: "absd", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "nm_sub", Cat: hwlib.AddSubCmp, Width: 32}, true),
					dp(hwlib.Component{Name: "nm_neg", Cat: hwlib.LogicRedMux, Width: 32}, false),
				},
				Semantics: func(_ *tie.State, op tie.Operands) uint32 {
					d := int32(op.RsVal) - int32(op.RtVal)
					if d < 0 {
						d = -d
					}
					return uint32(d)
				},
			},
		},
	}
}

// BlendExtension returns the alpha-blending extension: setalpha loads
// the blend factor into a custom register; blend8 blends four packed
// 8-bit channels in one cycle.
func BlendExtension() *tie.Extension {
	return &tie.Extension{
		Name:          "blend",
		NumCustomRegs: 1,
		Instructions: []*tie.Instruction{
			{
				Name: "setalpha", Latency: 1, ReadsGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "bl_areg", Cat: hwlib.CustomRegister, Width: 8}, true),
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					s.Regs[0] = op.RsVal & 0xFF
					return 0
				},
			},
			{
				Name: "blend8", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "bl_mul", Cat: hwlib.Multiplier, Width: 16}, true),
					dp(hwlib.Component{Name: "bl_add", Cat: hwlib.AddSubCmp, Width: 16}, false),
					dp(hwlib.Component{Name: "bl_pack", Cat: hwlib.LogicRedMux, Width: 32}, false),
					dp(hwlib.Component{Name: "bl_areg", Cat: hwlib.CustomRegister, Width: 8}, false),
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					alpha := s.Regs[0] & 0xFF
					var out uint32
					for i := 0; i < 4; i++ {
						sh := uint(8 * i)
						a := (op.RsVal >> sh) & 0xFF
						b := (op.RtVal >> sh) & 0xFF
						c := (a*alpha + b*(255-alpha)) >> 8
						out |= (c & 0xFF) << sh
					}
					return out
				},
			},
		},
	}
}

// Add4Extension returns the packed-add extension: add4 performs four
// saturating 8-bit additions per cycle on a specialized TIE adder.
func Add4Extension() *tie.Extension {
	return &tie.Extension{
		Name: "add4",
		Instructions: []*tie.Instruction{
			{
				Name: "add4", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "a4_add", Cat: hwlib.TIEAdd, Width: 32}, true),
					dp(hwlib.Component{Name: "a4_sat", Cat: hwlib.LogicRedMux, Width: 32}, false),
				},
				Semantics: func(_ *tie.State, op tie.Operands) uint32 {
					var out uint32
					for i := 0; i < 4; i++ {
						sh := uint(8 * i)
						s := ((op.RsVal >> sh) & 0xFF) + ((op.RtVal >> sh) & 0xFF)
						if s > 255 {
							s = 255
						}
						out |= s << sh
					}
					return out
				},
			},
		},
	}
}

// desSBoxTable builds a deterministic 64-entry substitution table for
// the DES-like workload.
func desSBoxTable() []uint32 {
	t := make([]uint32, 64)
	st := uint32(0x9E3779B9)
	for i := range t {
		st ^= st << 13
		st ^= st >> 17
		st ^= st << 5
		t[i] = st
	}
	return t
}

// DESExtension returns the block-cipher extension: dsbox performs the
// round substitution through a hardware lookup table, dperm the round
// permutation/rotation.
func DESExtension() *tie.Extension {
	ext := &tie.Extension{
		Name:   "des",
		Tables: map[string][]uint32{"sbox": desSBoxTable()},
	}
	ext.Instructions = []*tie.Instruction{
		{
			Name: "dsbox", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
			Datapath: []tie.DatapathElem{
				dp(hwlib.Component{Name: "des_sbox", Cat: hwlib.Table, Width: 32, Entries: 64}, true),
				dp(hwlib.Component{Name: "des_sel", Cat: hwlib.LogicRedMux, Width: 32}, false),
			},
			Semantics: func(_ *tie.State, op tie.Operands) uint32 {
				// Substitute each of four 6-bit groups through the table.
				var out uint32
				for i := 0; i < 4; i++ {
					g := (op.RsVal >> uint(6*i)) & 0x3F
					out ^= ext.TableValue("sbox", g) >> uint(8*i)
				}
				return out ^ op.RtVal
			},
		},
		{
			Name: "dperm", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
			Datapath: []tie.DatapathElem{
				dp(hwlib.Component{Name: "des_perm", Cat: hwlib.Shifter, Width: 32}, true),
				dp(hwlib.Component{Name: "des_mix", Cat: hwlib.LogicRedMux, Width: 32}, false),
			},
			Semantics: func(_ *tie.State, op tie.Operands) uint32 {
				r := op.RtVal & 31
				return bits.RotateLeft32(op.RsVal, int(r)) ^ (op.RsVal >> 16)
			},
		},
	}
	return ext
}

// MACExtension returns the accumulate extension: clracc clears the
// 64-bit accumulator, acc adds one operand, mac16 multiply-accumulates
// 16x16 products, and rdacc reads the accumulator back.
func MACExtension() *tie.Extension {
	return &tie.Extension{
		Name:          "mac",
		NumCustomRegs: 2, // 64-bit accumulator as two 32-bit registers
		Instructions: []*tie.Instruction{
			{
				Name: "clracc", Latency: 1, ReadsGeneral: false, WritesGeneral: false,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "mac_acc", Cat: hwlib.CustomRegister, Width: 64}, false),
				},
				Semantics: func(s *tie.State, _ tie.Operands) uint32 {
					s.Regs[0], s.Regs[1] = 0, 0
					return 0
				},
			},
			{
				Name: "acc", Latency: 1, ReadsGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "mac_add", Cat: hwlib.TIEAdd, Width: 32}, true),
					dp(hwlib.Component{Name: "mac_acc", Cat: hwlib.CustomRegister, Width: 64}, false),
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					lo := uint64(s.Regs[0]) | uint64(s.Regs[1])<<32
					lo += uint64(op.RsVal)
					s.Regs[0], s.Regs[1] = uint32(lo), uint32(lo>>32)
					return 0
				},
			},
			{
				Name: "mac16", Latency: 1, ReadsGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "mac_mul", Cat: hwlib.TIEMac, Width: 16}, true),
					dp(hwlib.Component{Name: "mac_csa", Cat: hwlib.TIECsa, Width: 40}, false),
					dp(hwlib.Component{Name: "mac_acc", Cat: hwlib.CustomRegister, Width: 64}, false),
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					a := int64(int16(op.RsVal))
					b := int64(int16(op.RtVal))
					acc := int64(uint64(s.Regs[0]) | uint64(s.Regs[1])<<32)
					acc += a * b
					s.Regs[0], s.Regs[1] = uint32(acc), uint32(uint64(acc)>>32)
					return 0
				},
			},
			{
				Name: "rdacc", Latency: 1, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "mac_acc", Cat: hwlib.CustomRegister, Width: 64}, false),
					dp(hwlib.Component{Name: "mac_rdmux", Cat: hwlib.LogicRedMux, Width: 32}, false),
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					if op.Rt != 0 {
						return s.Regs[1]
					}
					return s.Regs[0]
				},
			},
		},
	}
}

// SeqMultExtension returns the sequential-multiplier extension: smul is
// a 4-cycle iterative 32x32 multiplier built from a TIE multiplier slice
// and a carry-save adder.
func SeqMultExtension() *tie.Extension {
	return &tie.Extension{
		Name:          "seqmult",
		NumCustomRegs: 1,
		Instructions: []*tie.Instruction{
			{
				Name: "smul", Latency: 4, ReadsGeneral: true, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "sm_mul", Cat: hwlib.TIEMult, Width: 32}, true),
					dp(hwlib.Component{Name: "sm_csa", Cat: hwlib.TIECsa, Width: 64}, false),
					dp(hwlib.Component{Name: "sm_reg", Cat: hwlib.CustomRegister, Width: 32}, false),
				},
				Semantics: func(s *tie.State, op tie.Operands) uint32 {
					p := op.RsVal * op.RtVal
					s.Regs[0] = uint32((uint64(op.RsVal) * uint64(op.RtVal)) >> 32)
					return p
				},
			},
			{
				Name: "smulh", Latency: 1, WritesGeneral: true,
				Datapath: []tie.DatapathElem{
					dp(hwlib.Component{Name: "sm_reg", Cat: hwlib.CustomRegister, Width: 32}, false),
					dp(hwlib.Component{Name: "sm_rdmux", Cat: hwlib.LogicRedMux, Width: 32}, false),
				},
				Semantics: func(s *tie.State, _ tie.Operands) uint32 {
					return s.Regs[0]
				},
			},
		},
	}
}
