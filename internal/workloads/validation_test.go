package workloads

import (
	"testing"
)

func TestCRC32Correct(t *testing.T) {
	_, sim := runApp(t, CRC32())
	got, err := sim.ReadWord(crcOutAddr)
	if err != nil {
		t.Fatal(err)
	}
	if want := crcRef(crcMessage()); got != want {
		t.Fatalf("crc = %#x, want %#x", got, want)
	}
}

func TestCRCTableMatchesStdlibPolynomial(t *testing.T) {
	// Spot-check a few entries of the reflected CRC-32 table against
	// hand-computed values.
	tab := crcTable()
	if tab[0] != 0 {
		t.Fatalf("table[0] = %#x", tab[0])
	}
	if tab[1] != 0x77073096 {
		t.Fatalf("table[1] = %#x, want 0x77073096", tab[1])
	}
	if tab[255] != 0x2D02EF8D {
		t.Fatalf("table[255] = %#x, want 0x2D02EF8D", tab[255])
	}
}

func TestMatMulCorrect(t *testing.T) {
	_, sim := runApp(t, MatMul())
	a, b := matData()
	for i := 0; i < matDim; i++ {
		for j := 0; j < matDim; j++ {
			var want int64
			for k := 0; k < matDim; k++ {
				// mac16 multiplies the low 16 bits as signed values.
				want += int64(int16(a[i*matDim+k])) * int64(int16(b[k*matDim+j]))
			}
			got, err := sim.ReadWord(uint32(matCAddr + 4*(i*matDim+j)))
			if err != nil {
				t.Fatal(err)
			}
			if got != uint32(want) {
				t.Fatalf("c[%d][%d] = %#x, want %#x", i, j, got, uint32(want))
			}
		}
	}
}

func TestHistogramCorrect(t *testing.T) {
	_, sim := runApp(t, Histogram())
	var want [16]uint32
	for _, s := range histData() {
		want[(s>>4)&0xF]++
	}
	for bin := 0; bin < 16; bin++ {
		got, err := sim.ReadWord(uint32(histOutAddr + 4*bin))
		if err != nil {
			t.Fatal(err)
		}
		if got != want[bin] {
			t.Fatalf("bin %d = %d, want %d", bin, got, want[bin])
		}
	}
}

func TestIIRCorrect(t *testing.T) {
	_, sim := runApp(t, IIRFilter())
	want := iirRef(iirData())
	for i := range want {
		got, err := sim.ReadWord(uint32(iirOutAddr + 4*i))
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("y[%d] = %#x, want %#x", i, got, want[i])
		}
	}
}

func TestStrSearchCorrect(t *testing.T) {
	_, sim := runApp(t, StrSearch())
	got, err := sim.ReadWord(strOutAddr)
	if err != nil {
		t.Fatal(err)
	}
	want := strSearchRef()
	if want < 3 {
		t.Fatalf("test data degenerate: only %d planted matches", want)
	}
	if got != want {
		t.Fatalf("matches = %d, want %d", got, want)
	}
}

func TestValidationAppsDisjointAndCustom(t *testing.T) {
	suite := map[string]bool{}
	for _, w := range CharacterizationSuite() {
		suite[w.Name] = true
	}
	for _, w := range Applications() {
		suite[w.Name] = true
	}
	for _, w := range ValidationApplications() {
		if suite[w.Name] {
			t.Fatalf("validation app %s overlaps another suite", w.Name)
		}
		if w.Ext == nil {
			t.Fatalf("validation app %s has no extension", w.Name)
		}
		res, _ := runApp(t, w)
		if res.Stats.CustomCycles == 0 {
			t.Fatalf("validation app %s executes no custom instructions", w.Name)
		}
	}
}

func TestDCT8Correct(t *testing.T) {
	_, sim := runApp(t, DCT8())
	want := dctRef()
	for i := range want {
		got, err := sim.ReadWord(uint32(dctOutAddr + 4*i))
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("dct[%d] = %#x, want %#x", i, got, want[i])
		}
	}
}
