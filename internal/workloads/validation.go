package workloads

import (
	"fmt"

	"xtenergy/internal/core"
	"xtenergy/internal/hwlib"
	"xtenergy/internal/tie"
)

// ValidationApplications returns six additional held-out applications
// used to stress the macro-model beyond the paper's Table II set: a
// table-driven CRC32, an 8x8 integer matrix multiply, a byte histogram
// (with an immediate-operand custom instruction), an IIR biquad filter,
// a packed-byte substring search, and an 8-point integer DCT. None of
// them appears in the characterization suite, and each is functionally
// verified against a Go mirror implementation in the tests.
func ValidationApplications() []core.Workload {
	return []core.Workload{
		CRC32(), MatMul(), Histogram(), IIRFilter(), StrSearch(), DCT8(),
	}
}

const (
	crcMsgLen   = 384
	crcOutAddr  = 0x5000
	matDim      = 8
	matAAddr    = 0x1000
	matBAddr    = 0x1200
	matCAddr    = 0x5000
	histN       = 1024
	histOutAddr = 0x5000
	iirN        = 256
	iirOutAddr  = 0x6000
	strHayLen   = 600
	strOutAddr  = 0x5000
)

// crcTable builds the standard reflected CRC-32 (polynomial 0xEDB88320)
// lookup table.
func crcTable() []uint32 {
	t := make([]uint32, 256)
	for i := range t {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = 0xEDB88320 ^ (c >> 1)
			} else {
				c >>= 1
			}
		}
		t[i] = c
	}
	return t
}

func crcMessage() []uint32 {
	v := randWords(crcMsgLen, 1201)
	for i := range v {
		v[i] &= 0xFF
	}
	return v
}

// crcRef mirrors the CRC kernel.
func crcRef(msg []uint32) uint32 {
	t := crcTable()
	crc := ^uint32(0)
	for _, b := range msg {
		crc = (crc >> 8) ^ t[(crc^b)&0xFF]
	}
	return ^crc
}

// CRC32Extension provides crcstep: one CRC byte step through a hardware
// table.
func CRC32Extension() *tie.Extension {
	ext := &tie.Extension{
		Name:   "crc32",
		Tables: map[string][]uint32{"crc": crcTable()},
	}
	ext.Instructions = []*tie.Instruction{{
		Name: "crcstep", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
		Datapath: []tie.DatapathElem{
			dp(hwlib.Component{Name: "crc_tab", Cat: hwlib.Table, Width: 32, Entries: 256}, true),
			dp(hwlib.Component{Name: "crc_xor", Cat: hwlib.LogicRedMux, Width: 32}, false),
		},
		Semantics: func(_ *tie.State, op tie.Operands) uint32 {
			return (op.RsVal >> 8) ^ ext.TableValue("crc", (op.RsVal^op.RtVal)&0xFF)
		},
	}}
	return ext
}

// CRC32 computes a table-driven CRC-32 of a 384-byte message with the
// crcstep custom instruction.
func CRC32() core.Workload {
	src := fmt.Sprintf(`start:
    movi a2, msg
    movi a3, %d
    movi a4, -1         ; crc = 0xFFFFFFFF
c_loop:
    l8ui a5, a2, 0
    crcstep a4, a4, a5
    addi a2, a2, 1
    addi a3, a3, -1
    bnez a3, c_loop
    not a4, a4
    movi a6, %d
    s32i a4, a6, 0
    ret
.data 0x1000
%s`, crcMsgLen, crcOutAddr, byteData("msg", crcMessage()))
	return core.Workload{Name: "crc32", Source: src, Ext: CRC32Extension()}
}

func matData() (a, b []uint32) {
	a = randWords(matDim*matDim, 1301)
	b = randWords(matDim*matDim, 1302)
	for i := range a {
		a[i] &= 0x7FFF
		b[i] &= 0x7FFF
	}
	return
}

// MatMul multiplies two 8x8 matrices of 15-bit values using the MAC
// extension's multiply-accumulate.
func MatMul() core.Workload {
	a, b := matData()
	src := fmt.Sprintf(`start:
    movi a2, 0          ; i
m_i:
    movi a3, 0          ; j
m_j:
    clracc a0, a0, a0
    movi a4, 0          ; k
m_k:
    ; a[i][k]
    slli a5, a2, 5      ; i*8*4
    slli a6, a4, 2
    add a5, a5, a6
    movi a7, %d
    add a5, a5, a7
    l32i a8, a5, 0
    ; b[k][j]
    slli a5, a4, 5
    slli a6, a3, 2
    add a5, a5, a6
    movi a7, %d
    add a5, a5, a7
    l32i a9, a5, 0
    mac16 a0, a8, a9
    addi a4, a4, 1
    blti a4, %d, m_k
    ; c[i][j] = acc
    rdacc a10, a0, a0
    slli a5, a2, 5
    slli a6, a3, 2
    add a5, a5, a6
    movi a7, %d
    add a5, a5, a7
    s32i a10, a5, 0
    addi a3, a3, 1
    blti a3, %d, m_j
    addi a2, a2, 1
    blti a2, %d, m_i
    ret
.data %d
%s.data %d
%s`, matAAddr, matBAddr, matDim, matCAddr, matDim, matDim,
		matAAddr, wordData("mata", a), matBAddr, wordData("matb", b))
	return core.Workload{Name: "matmul", Source: src, Ext: MACExtension()}
}

func histData() []uint32 {
	v := randWords(histN, 1401)
	for i := range v {
		v[i] &= 0xFF
	}
	return v
}

// HistExtension provides binsel, an immediate-operand custom
// instruction extracting a 4-bit histogram bin from a sample at a
// compile-time-selected shift.
func HistExtension() *tie.Extension {
	return &tie.Extension{
		Name: "hist",
		Instructions: []*tie.Instruction{{
			Name: "binsel", Latency: 1, ReadsGeneral: true, WritesGeneral: true, ImmOperand: true,
			Datapath: []tie.DatapathElem{
				dp(hwlib.Component{Name: "hs_shift", Cat: hwlib.Shifter, Width: 32}, true),
				dp(hwlib.Component{Name: "hs_mask", Cat: hwlib.LogicRedMux, Width: 8}, false),
			},
			Semantics: func(_ *tie.State, op tie.Operands) uint32 {
				return (op.RsVal >> uint(op.Imm&31)) & 0xF
			},
		}},
	}
}

// Histogram builds a 16-bin histogram of the high nibbles of 1024 byte
// samples.
func Histogram() core.Workload {
	src := fmt.Sprintf(`start:
    movi a2, samples
    movi a3, %d
h_loop:
    l8ui a4, a2, 0
    binsel a5, a4, 4    ; bin = (sample >> 4) & 0xF
    slli a5, a5, 2
    movi a6, %d
    add a5, a5, a6
    l32i a7, a5, 0
    addi a7, a7, 1
    s32i a7, a5, 0
    addi a2, a2, 1
    addi a3, a3, -1
    bnez a3, h_loop
    ret
.data 0x1000
%s`, histN, histOutAddr, byteData("samples", histData()))
	return core.Workload{Name: "histogram", Source: src, Ext: HistExtension()}
}

func iirData() []uint32 {
	v := randWords(iirN, 1501)
	for i := range v {
		v[i] = uint32(int32(v[i]%2000) - 1000)
	}
	return v
}

// iirRef mirrors the biquad kernel: y[n] = (b0*x[n] + b1*x[n-1] -
// a1*y[n-1]) >> 8, in 32-bit wraparound arithmetic.
func iirRef(x []uint32) []uint32 {
	const b0, b1, a1 = 96, 64, 32
	out := make([]uint32, len(x))
	var x1, y1 uint32
	for i, xn := range x {
		y := (b0*xn + b1*x1 - a1*y1)
		y = uint32(int32(y) >> 8)
		out[i] = y
		x1, y1 = xn, y
	}
	return out
}

// IIRFilter runs a first-order IIR section over 256 samples using the
// sequential multiplier extension.
func IIRFilter() core.Workload {
	src := fmt.Sprintf(`start:
    movi a2, xin
    movi a3, %d
    movi a4, %d         ; out ptr
    movi a10, 0         ; x[n-1]
    movi a11, 0         ; y[n-1]
    movi a20, 96        ; b0
    movi a21, 64        ; b1
    movi a22, 32        ; a1
f_loop:
    l32i a5, a2, 0      ; x[n]
    smul a6, a5, a20    ; b0*x
    smul a7, a10, a21   ; b1*x1
    add a6, a6, a7
    smul a7, a11, a22   ; a1*y1
    sub a6, a6, a7
    srai a6, a6, 8
    s32i a6, a4, 0
    mov a10, a5
    mov a11, a6
    addi a2, a2, 4
    addi a4, a4, 4
    addi a3, a3, -1
    bnez a3, f_loop
    ret
.data 0x1000
%s`, iirN, iirOutAddr, wordData("xin", iirData()))
	return core.Workload{Name: "iir", Source: src, Ext: SeqMultExtension()}
}

func strHaystack() []uint32 {
	g := newLCG(1601)
	v := make([]uint32, strHayLen)
	for i := range v {
		v[i] = 'a' + g.nextN(4) // small alphabet -> many near-matches
	}
	// Plant the needle a few times.
	needle := strNeedle()
	for _, pos := range []int{37, 256, 511} {
		copy(v[pos:], needle)
	}
	return v
}

func strNeedle() []uint32 { return []uint32{'a', 'b', 'b', 'a', 'c'} }

// strSearchRef counts occurrences of the needle.
func strSearchRef() uint32 {
	hay, needle := strHaystack(), strNeedle()
	var count uint32
	for i := 0; i+len(needle) <= len(hay); i++ {
		ok := true
		for j := range needle {
			if hay[i+j] != needle[j] {
				ok = false
				break
			}
		}
		if ok {
			count++
		}
	}
	return count
}

// StrExtension provides bcmp4, comparing four packed bytes and
// returning a mismatch mask.
func StrExtension() *tie.Extension {
	return &tie.Extension{
		Name: "strsearch",
		Instructions: []*tie.Instruction{{
			Name: "bcmp4", Latency: 1, ReadsGeneral: true, WritesGeneral: true,
			Datapath: []tie.DatapathElem{
				dp(hwlib.Component{Name: "sc_cmp", Cat: hwlib.AddSubCmp, Width: 32}, true),
				dp(hwlib.Component{Name: "sc_red", Cat: hwlib.LogicRedMux, Width: 32}, false),
			},
			Semantics: func(_ *tie.State, op tie.Operands) uint32 {
				var mask uint32
				for i := 0; i < 4; i++ {
					sh := uint(8 * i)
					if (op.RsVal>>sh)&0xFF != (op.RtVal>>sh)&0xFF {
						mask |= 1 << uint(i)
					}
				}
				return mask
			},
		}},
	}
}

// StrSearch counts needle occurrences in a 600-byte haystack; the inner
// comparison checks four bytes at a time with bcmp4 and the fifth with a
// base compare.
func StrSearch() core.Workload {
	needle := strNeedle()
	packed := needle[0] | needle[1]<<8 | needle[2]<<16 | needle[3]<<24
	src := fmt.Sprintf(`start:
    movi a2, hay
    movi a3, %d         ; positions to test
    movi a4, %d         ; packed first 4 needle bytes
    movi a5, %d         ; 5th needle byte
    movi a12, 0         ; count
s_loop:
    l8ui a6, a2, 0
    l8ui a7, a2, 1
    l8ui a8, a2, 2
    l8ui a9, a2, 3
    slli a7, a7, 8
    slli a8, a8, 16
    slli a9, a9, 24
    or a6, a6, a7
    or a6, a6, a8
    or a6, a6, a9
    bcmp4 a10, a6, a4
    bnez a10, s_next
    l8ui a11, a2, 4
    bne a11, a5, s_next
    addi a12, a12, 1
s_next:
    addi a2, a2, 1
    addi a3, a3, -1
    bnez a3, s_loop
    movi a6, %d
    s32i a12, a6, 0
    ret
.data 0x1000
%s`, strHayLen-len(needle)+1, int32(packed), needle[4], strOutAddr,
		byteData("hay", strHaystack()))
	return core.Workload{Name: "strsearch", Source: src, Ext: StrExtension()}
}

const (
	dctBlocks  = 16
	dctOutAddr = 0x6800
	dctInAddr  = 0x1000
	dctCoAddr  = 0x3000
)

// dctCoefs returns the 8x8 DCT-II coefficient matrix scaled by 256
// (row k, column n: cos((2n+1)k*pi/16)).
func dctCoefs() []uint32 {
	// Precomputed round(cos((2n+1)k*pi/16)*256) values; row 0 is the DC
	// row (all 256).
	rows := [8][8]int32{
		{256, 256, 256, 256, 256, 256, 256, 256},
		{251, 213, 142, 50, -50, -142, -213, -251},
		{237, 98, -98, -237, -237, -98, 98, 237},
		{213, -50, -251, -142, 142, 251, 50, -213},
		{181, -181, -181, 181, 181, -181, -181, 181},
		{142, -251, 50, 213, -213, -50, 251, -142},
		{98, -237, 237, -98, -98, 237, -237, 98},
		{50, -142, 213, -251, 251, -213, 142, -50},
	}
	out := make([]uint32, 64)
	for k := 0; k < 8; k++ {
		for n := 0; n < 8; n++ {
			out[k*8+n] = uint32(rows[k][n])
		}
	}
	return out
}

func dctSamples() []uint32 {
	v := randWords(dctBlocks*8, 1701)
	for i := range v {
		v[i] = uint32(int32(v[i]%255) - 127)
	}
	return v
}

// dctRef mirrors the kernel: per block, y[k] = (sum_n x[n]*c[k][n]) >> 8
// in the same 16-bit-operand arithmetic as mac16.
func dctRef() []uint32 {
	x := dctSamples()
	c := dctCoefs()
	out := make([]uint32, dctBlocks*8)
	for b := 0; b < dctBlocks; b++ {
		for k := 0; k < 8; k++ {
			var acc int64
			for n := 0; n < 8; n++ {
				acc += int64(int16(x[b*8+n])) * int64(int16(c[k*8+n]))
			}
			out[b*8+k] = uint32(int32(acc) >> 8)
		}
	}
	return out
}

// DCT8 computes 16 blocks of an 8-point integer DCT-II on the MAC
// extension — a classic media kernel for the configurable-processor
// domain the paper targets.
func DCT8() core.Workload {
	src := fmt.Sprintf(`start:
    movi a2, %d         ; sample block pointer
    movi a9, %d         ; output pointer
    movi a12, %d        ; blocks
t_block:
    movi a3, %d         ; coefficient row pointer
    movi a11, 8         ; rows
t_row:
    clracc a0, a0, a0
    mov a4, a2
    mov a5, a3
    movi a6, 8
t_mac:
    l32i a7, a4, 0
    l32i a8, a5, 0
    mac16 a0, a7, a8
    addi a4, a4, 4
    addi a5, a5, 4
    addi a6, a6, -1
    bnez a6, t_mac
    rdacc a10, a0, a0
    srai a10, a10, 8
    s32i a10, a9, 0
    addi a9, a9, 4
    addi a3, a3, 32     ; next coefficient row
    addi a11, a11, -1
    bnez a11, t_row
    addi a2, a2, 32     ; next sample block
    addi a12, a12, -1
    bnez a12, t_block
    ret
.data %d
%s.data %d
%s`, dctInAddr, dctOutAddr, dctBlocks, dctCoAddr, dctInAddr,
		wordData("samples", dctSamples()), dctCoAddr, wordData("coefs", dctCoefs()))
	return core.Workload{Name: "dct8", Source: src, Ext: MACExtension()}
}
